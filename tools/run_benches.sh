#!/usr/bin/env bash
# Runs the whole bench suite and collects one BENCH_<name>.json per bench
# (schema "sld-bench-result/v1", see DESIGN.md "Performance observability").
#
# Usage:
#   tools/run_benches.sh [--fast] [--bench-dir DIR] [--out DIR]
#                        [--repeats N] [--warmup N] [--only NAME]
#
#   --fast        pass --fast to every bench (CI-sized sweeps)
#   --bench-dir   directory holding the bench binaries (default: build/bench)
#   --out         output directory for BENCH_*.json (default: bench-results)
#   --repeats N   measured repetitions per bench (default: 1)
#   --warmup N    unmeasured warmup repetitions per bench (default: 0)
#   --only NAME   run a single bench (by binary name) instead of the suite
#
# The suite is every fig*/ext_*/ablation_* binary (which picks up
# ext_alert_storm, the ingestion overload bench, automatically), plus
# overheads_table and micro_hotpaths (the hot-path microbench speaks the
# same protocol as every figure bench). Mode variants reuse a binary with
# extra flags under a distinct result name: ext_alert_storm_storm is
# `ext_alert_storm --storm` (the alert-storm telemetry scenario) and
# ext_framing_dos_framing is `ext_framing_dos --framing` (the framing
# lifecycle deep-dive); both are also selectable via --only.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_DIR=build/bench
OUT_DIR=bench-results
FAST=""
REPEATS=1
WARMUP=0
ONLY=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) FAST="--fast"; shift ;;
    --bench-dir) BENCH_DIR="$2"; shift 2 ;;
    --out) OUT_DIR="$2"; shift 2 ;;
    --repeats) REPEATS="$2"; shift 2 ;;
    --warmup) WARMUP="$2"; shift 2 ;;
    --only) ONLY="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,18p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "run_benches.sh: unknown flag $1" >&2; exit 2 ;;
  esac
done

if [[ ! -d "$BENCH_DIR" ]]; then
  echo "run_benches.sh: bench dir '$BENCH_DIR' not found (build first:" \
       "cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build" \
       "build -j)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

benches=()
for b in "$BENCH_DIR"/fig* "$BENCH_DIR"/ext_* "$BENCH_DIR"/ablation_* \
         "$BENCH_DIR"/overheads_table "$BENCH_DIR"/micro_hotpaths; do
  [[ -x "$b" && -f "$b" ]] || continue
  benches+=("$b")
done
# name:binary:extra flags — run `binary` with the flags, report as `name`.
# ext_parallel_scaling_jobs4 is the same sweep fanned over 4 executor
# workers; bench_compare.py --speedup gates its events/sec against the
# serial run's.
modes=("ext_alert_storm_storm:ext_alert_storm:--storm"
       "ext_framing_dos_framing:ext_framing_dos:--framing"
       "ext_parallel_scaling_jobs4:ext_parallel_scaling:--jobs 4")

if [[ -n "$ONLY" ]]; then
  only_mode=""
  for m in "${modes[@]}"; do
    [[ "${m%%:*}" == "$ONLY" ]] && only_mode="$m"
  done
  if [[ -n "$only_mode" ]]; then
    benches=()
    modes=("$only_mode")
  else
    benches=("$BENCH_DIR/$ONLY")
    [[ -x "${benches[0]}" ]] || { echo "run_benches.sh: no bench '$ONLY' in $BENCH_DIR" >&2; exit 2; }
    modes=()
  fi
fi
if [[ ${#benches[@]} -eq 0 && ${#modes[@]} -eq 0 ]]; then
  echo "run_benches.sh: no bench binaries in $BENCH_DIR" >&2
  exit 2
fi

failures=0
written=0
run_one() {  # run_one NAME EXE [EXTRA_FLAGS...]
  local name="$1" exe="$2"; shift 2
  local json="$OUT_DIR/BENCH_${name}.json"
  echo "== $name -> $json" >&2
  # Bench stdout is the figure's CSV — keep it out of the result capture.
  if "$exe" $FAST "$@" --repeats "$REPEATS" --warmup "$WARMUP" \
       --json "$json" > /dev/null; then
    written=$((written + 1))
  else
    echo "run_benches.sh: $name FAILED" >&2
    failures=$((failures + 1))
  fi
}

for b in "${benches[@]}"; do
  run_one "$(basename "$b")" "$b"
done
for m in "${modes[@]}"; do
  name="${m%%:*}"
  rest="${m#*:}"
  bin="${rest%%:*}"
  flags="${rest#*:}"
  [[ -x "$BENCH_DIR/$bin" ]] || continue
  run_one "$name" "$BENCH_DIR/$bin" $flags
done

if [[ $failures -gt 0 ]]; then
  echo "run_benches.sh: $failures bench(es) failed" >&2
  exit 1
fi
echo "run_benches.sh: wrote $written result files to $OUT_DIR" >&2
