#!/usr/bin/env python3
"""Forensic reporting over the simulator's JSONL event traces.

Usage:
    trace_report.py TRACE.jsonl             # human-readable report
    trace_report.py --validate TRACE.jsonl  # schema check, exit 1 on errors

The trace format is one JSON object per line, `{"t": <sim ns>, "e":
"<event type>", ...}`, produced by the `--trace FILE` flag of the benches
(see DESIGN.md "Observability" for the full event taxonomy). The report
reconstructs, per revoked beacon, the causal chain probe -> inconsistency
verdict -> alert -> counter crossing -> revocation, flags false positives
with the ground truth carried in `node.beacon` records, and summarizes
retry storms. Stdlib only.
"""

import argparse
import collections
import json
import sys

# Required fields per event type. A field listed here must be present;
# extra fields are always allowed (the schema is append-only).
SCHEMA = {
    # Channel packet fates.
    "pkt.send": ["node", "src", "dst", "type", "bytes"],
    "pkt.deliver": ["src", "dst", "type", "wormhole", "delay_ns"],
    "pkt.loss": ["src", "dst"],
    "pkt.out_of_range": ["src", "dst"],
    "pkt.suppressed": ["src", "dst"],
    "pkt.fault_drop": ["src", "dst"],
    "pkt.duplicate": ["src", "dst"],
    "pkt.corrupt": ["src", "dst"],
    "pkt.crash_tx": ["node"],
    "pkt.crash_rx": ["node"],
    "pkt.partition_drop": ["src", "dst"],
    # ARQ.
    "arq.timeout": ["node", "target", "kind", "attempt"],
    "arq.retry": ["node", "target", "kind", "attempt"],
    "arq.giveup": ["node", "target", "kind", "attempt"],
    # Probe / query lifecycle.
    "probe.send": ["node", "det_id", "target", "nonce", "attempt", "retx"],
    "probe.reply": ["node", "target", "nonce", "dist_ft", "rtt_cycles"],
    "query.send": ["node", "target", "nonce", "attempt", "retx"],
    "query.reply": ["node", "target", "nonce", "dist_ft", "rtt_cycles"],
    "query.verdict": ["node", "target", "verdict"],
    "query.accept": ["node", "target", "effective_malicious"],
    # Detection stages.
    "detect.consistency": [
        "node", "target", "measured_ft", "expected_ft", "deviation_ft",
        "threshold_ft", "malicious",
    ],
    "detect.wormhole": ["node", "target", "role", "detected"],
    "detect.rtt": ["node", "target", "role", "rtt_cycles", "x_max_cycles",
                   "replay"],
    "detect.verdict": ["node", "target", "outcome"],
    # Alert transport + base station.
    "alert.submit": ["reporter", "target", "collusion"],
    "alert.delivered": ["reporter", "target", "attempt"],
    "alert.lost": ["reporter", "target", "attempt"],
    "alert.retry": ["reporter", "target", "attempt", "delay_ns"],
    "alert.giveup": ["reporter", "target", "attempt"],
    # Alerts that died with their crashed reporter (volatile ARQ state).
    "alert.reporter_down": ["reporter", "target", "attempt"],
    "bs.alert": ["reporter", "target", "disposition", "alert_counter",
                 "report_counter"],
    "bs.revoke": ["target", "alert_counter", "threshold"],
    # Durability + failover lifecycle (role: takeover | restart | fence).
    "bs.snapshot": ["records", "wal_tail"],
    "bs.failover": ["epoch", "role"],
    # Ingestion overload path (reason: queue_full | rate_limited; from/to:
    # closed | shedding | degraded | recovering).
    "bs.shed": ["reporter", "target", "reason", "shard"],
    "bs.breaker": ["from", "to"],
    "bs.shard_commit": ["shard", "batch", "queue_depth"],
    # Evidence-lifecycle revocation (framing resistance). bs.escalate fires
    # when escalated evidence overrides the coverage guard; the census
    # event records the usable-beacon count of one grid cell.
    "bs.quarantine": ["target", "evidence"],
    "bs.exonerate": ["target", "evidence"],
    "bs.escalate": ["target", "evidence", "usable"],
    "coverage.usable_beacons": ["cx", "cy", "usable"],
    "dissem.miss": ["sensor", "target"],
    # Trial lifecycle.
    "trial.start": ["seed", "nodes", "beacons", "malicious", "sensors"],
    "trial.end": ["seed", "malicious_revoked", "benign_revoked",
                  "sensors_localized"],
    "node.beacon": ["id", "x", "y", "malicious"],
    # Crash-recovery lifecycle (chaos schedules).
    "node.reboot": ["node", "down_ns"],
    "partition.start": ["nodes_a"],
    "partition.heal": ["duration_ns"],
    # Sensor outcomes.
    "sensor.drop_revoked": ["node", "target"],
    "sensor.localized": ["node", "err_ft", "refs"],
    "sensor.unlocalized": ["node", "refs"],
    # Streaming telemetry (timeseries/v1; ts.meta opens each trial's stream
    # and, like trial.start, resets the monotone-time cursor).
    "ts.meta": ["schema", "cadence_ns", "seed"],
    "ts.window": ["idx", "start", "end", "counters", "deltas", "gauges",
                  "hists"],
    # SLO monitor transitions ("windows" = the sustain/clear streak length
    # that triggered the transition).
    "slo.breach": ["rule", "value", "threshold", "window", "windows"],
    "slo.recover": ["rule", "value", "threshold", "window", "windows"],
}

# Events that open a new trial/stream segment and reset the monotone-time
# validation cursor.
RESET_EVENTS = ("trial.start", "ts.meta")

VERDICT_EVENTS = ("detect.verdict", "query.verdict")


def load(path):
    """Yields (line_number, record) pairs; raises on unparsable lines."""
    with open(path, "r", encoding="utf-8") as fh:
        for n, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            yield n, json.loads(line)


def validate(path):
    errors = []
    count = 0
    last_t_per_trial = None
    try:
        for n, rec in load(path):
            count += 1
            if not isinstance(rec, dict):
                errors.append(f"line {n}: not a JSON object")
                continue
            t = rec.get("t")
            if not isinstance(t, int):
                errors.append(f"line {n}: 't' missing or not an integer")
            etype = rec.get("e")
            if not isinstance(etype, str):
                errors.append(f"line {n}: 'e' missing or not a string")
                continue
            if etype not in SCHEMA:
                errors.append(f"line {n}: unknown event type '{etype}'")
                continue
            missing = [k for k in SCHEMA[etype] if k not in rec]
            if missing:
                errors.append(
                    f"line {n}: {etype} missing field(s) {missing}")
            # Sim time is monotone within a trial (trial.start resets it).
            if etype in RESET_EVENTS:
                last_t_per_trial = t
            elif isinstance(t, int) and last_t_per_trial is not None:
                if t < last_t_per_trial:
                    errors.append(
                        f"line {n}: time went backwards ({t} < "
                        f"{last_t_per_trial})")
                else:
                    last_t_per_trial = t
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(str(exc))
    for e in errors[:50]:
        print(f"INVALID: {e}", file=sys.stderr)
    if len(errors) > 50:
        print(f"... and {len(errors) - 50} more", file=sys.stderr)
    if errors:
        return 1
    print(f"OK: {count} records, all schema-valid")
    return 0


def ms(t_ns):
    return t_ns / 1e6


def report(path, chains):
    records = [rec for _, rec in load(path)]
    by_type = collections.Counter(rec.get("e", "?") for rec in records)

    print(f"=== trace report: {path} ===")
    print(f"{len(records)} records, {by_type.get('trial.start', 0)} trial(s)")
    print()
    print("-- event counts --")
    for etype, n in sorted(by_type.items(), key=lambda kv: -kv[1]):
        print(f"  {etype:24s} {n}")
    print()

    # Verdict breakdowns.
    for event in VERDICT_EVENTS:
        key = "outcome" if event == "detect.verdict" else "verdict"
        verdicts = collections.Counter(
            rec[key] for rec in records if rec.get("e") == event)
        if verdicts:
            print(f"-- {event} breakdown --")
            for v, n in sorted(verdicts.items(), key=lambda kv: -kv[1]):
                print(f"  {v:24s} {n}")
            print()

    # Ground truth and revocations (IDs are per-trial; trials share a
    # deployment schema so the malicious set is keyed by (trial, id)).
    trial = -1
    malicious = set()
    revokes = []  # (trial, t, target, counter, threshold)
    for rec in records:
        etype = rec.get("e")
        if etype == "trial.start":
            trial += 1
        elif etype == "node.beacon" and rec.get("malicious"):
            malicious.add((trial, rec["id"]))
        elif etype == "bs.revoke":
            revokes.append((trial, rec["t"], rec["target"],
                            rec["alert_counter"], rec["threshold"]))

    if revokes:
        print("-- revocations --")
        fp = 0
        for tr, t, target, counter, threshold in revokes:
            truth = ("true detection" if (tr, target) in malicious
                     else "FALSE POSITIVE")
            fp += (tr, target) not in malicious
            print(f"  trial {tr} [{ms(t):10.3f} ms] beacon {target} revoked "
                  f"(counter {counter} > {threshold}) — {truth}")
        print(f"  {len(revokes)} revocation(s), {fp} false positive(s)")
        print()

    # False-positive forensics: which alerts built up a benign target's
    # counter, and what did the reporters measure?
    fp_targets = {(tr, target) for tr, _, target, _, _ in revokes
                  if (tr, target) not in malicious}
    if fp_targets:
        print("-- false-positive forensics --")
        trial = -1
        for rec in records:
            etype = rec.get("e")
            if etype == "trial.start":
                trial += 1
            elif (etype == "bs.alert"
                  and (trial, rec["target"]) in fp_targets
                  and rec["disposition"].startswith("accepted")):
                print(f"  trial {trial} [{ms(rec['t']):10.3f} ms] "
                      f"{rec['reporter']} -> {rec['target']} accepted "
                      f"(counter {rec['alert_counter']})")
            elif (etype == "detect.consistency"
                  and (trial, rec["target"]) in fp_targets
                  and rec["malicious"]):
                print(f"  trial {trial} [{ms(rec['t']):10.3f} ms] node "
                      f"{rec['node']} measured {rec['measured_ft']:.1f} ft "
                      f"vs expected {rec['expected_ft']:.1f} ft "
                      f"(threshold {rec['threshold_ft']:.1f})")
        print()

    # Crash recovery / chaos lifecycle: reboots, failovers, partitions.
    reboots = [rec for rec in records if rec.get("e") == "node.reboot"]
    roles = collections.Counter(
        rec["role"] for rec in records if rec.get("e") == "bs.failover")
    partitions = by_type.get("partition.start", 0)
    if reboots or roles or partitions:
        print("-- crash recovery --")
        if reboots:
            mean_down = sum(r["down_ns"] for r in reboots) / len(reboots)
            print(f"  node reboots: {len(reboots)} "
                  f"(mean downtime {ms(mean_down):.1f} ms)")
        for role, n in sorted(roles.items()):
            print(f"  bs.failover {role}: {n}")
        if partitions:
            healed = by_type.get("partition.heal", 0)
            print(f"  partitions: {partitions} started, {healed} healed")
        dropped = by_type.get("pkt.partition_drop", 0)
        orphaned = by_type.get("alert.reporter_down", 0)
        if dropped:
            print(f"  deliveries dropped at partition cuts: {dropped}")
        if orphaned:
            print(f"  alerts lost to reporter crashes: {orphaned}")
        print()

    # Ingestion overload: sheds by reason, breaker moves, commit batching.
    sheds = collections.Counter(
        rec["reason"] for rec in records if rec.get("e") == "bs.shed")
    breaker_moves = collections.Counter(
        (rec["from"], rec["to"]) for rec in records
        if rec.get("e") == "bs.breaker")
    batches = [rec["batch"] for rec in records
               if rec.get("e") == "bs.shard_commit"]
    if sheds or breaker_moves or batches:
        print("-- ingestion overload --")
        for reason, n in sorted(sheds.items()):
            print(f"  shed ({reason}): {n}")
        for (src, dst), n in sorted(breaker_moves.items()):
            print(f"  breaker {src} -> {dst}: {n}")
        if batches:
            print(f"  shard commits: {len(batches)} batch(es), "
                  f"largest {max(batches)} record(s)")
        print()

    # Quarantine timeline: every suspect's quarantine / escalation /
    # exoneration in time order, annotated with ground truth, plus the
    # coverage floor the guard observed across its cell censuses.
    lifecycle_kinds = ("bs.quarantine", "bs.escalate", "bs.exonerate")
    lifecycle = []
    census = []
    trial = -1
    for rec in records:
        etype = rec.get("e")
        if etype == "trial.start":
            trial += 1
        elif etype in lifecycle_kinds:
            lifecycle.append((trial, rec))
        elif etype == "coverage.usable_beacons":
            census.append(rec)
    if lifecycle or census:
        print("-- quarantine timeline --")
        for tr, rec in lifecycle:
            truth = ("malicious" if (tr, rec["target"]) in malicious
                     else "benign")
            kind = rec["e"].split(".", 1)[1]
            extra = (f", cell usable {rec['usable']}"
                     if rec["e"] == "bs.escalate" else "")
            print(f"  trial {tr} [{ms(rec['t']):10.3f} ms] {kind:10s} "
                  f"beacon {rec['target']} (evidence {rec['evidence']:.2f}"
                  f"{extra}) — {truth}")
        quarantines = sum(r["e"] == "bs.quarantine" for _, r in lifecycle)
        escalations = sum(r["e"] == "bs.escalate" for _, r in lifecycle)
        exonerations = sum(r["e"] == "bs.exonerate" for _, r in lifecycle)
        print(f"  {quarantines} quarantine(s), {escalations} "
              f"escalation(s), {exonerations} exoneration(s)")
        if census:
            floor = min(rec["usable"] for rec in census)
            cells = {(rec["cx"], rec["cy"]) for rec in census}
            print(f"  coverage censuses: {len(census)} over {len(cells)} "
                  f"cell(s), min usable {floor}")
        print()

    # SLO breach timeline: every monitor transition in time order, with
    # the trial health verdict it adds up to.
    slo_events = [rec for rec in records
                  if rec.get("e") in ("slo.breach", "slo.recover")]
    if slo_events:
        print("-- SLO breach timeline --")
        active = set()
        for rec in slo_events:
            if rec["e"] == "slo.breach":
                active.add(rec["rule"])
                kind = "BREACH "
            else:
                active.discard(rec["rule"])
                kind = "recover"
            print(f"  [{ms(rec['t']):10.3f} ms] {kind} {rec['rule']:16s} "
                  f"value {rec['value']} vs {rec['threshold']} "
                  f"(window {rec['window']}, streak {rec['windows']})")
        breaches = sum(rec["e"] == "slo.breach" for rec in slo_events)
        verdict = "UNHEALTHY" if active else "healthy"
        print(f"  {breaches} breach(es), {len(slo_events) - breaches} "
              f"recovery(ies); end-of-stream verdict: {verdict}"
              + (f" (still in breach: {', '.join(sorted(active))})"
                 if active else ""))
        print()

    # Retry storms: nodes with the most ARQ retries.
    retries = collections.Counter(
        (rec["node"], rec["kind"]) for rec in records
        if rec.get("e") == "arq.retry")
    if retries:
        print("-- retry storms (top 10 node/kind) --")
        for (node, kind), n in retries.most_common(10):
            print(f"  node {node} ({kind}): {n} retransmissions")
        alert_retries = by_type.get("alert.retry", 0)
        giveups = by_type.get("arq.giveup", 0) + by_type.get(
            "alert.giveup", 0)
        print(f"  alert retries: {alert_retries}, giveups: {giveups}")
        print()

    if chains:
        report_chains(records, malicious)


def report_chains(records, malicious):
    """Per revoked beacon: the full probe -> alert -> revocation chain."""
    print("-- causal chains (per revoked beacon) --")
    trial = -1
    revoked = set()
    for rec in records:
        if rec.get("e") == "trial.start":
            trial += 1
        elif rec.get("e") == "bs.revoke":
            revoked.add((trial, rec["target"]))
    trial = -1
    shown = collections.Counter()
    for rec in records:
        etype = rec.get("e")
        if etype == "trial.start":
            trial += 1
            continue
        target = rec.get("target")
        if (trial, target) not in revoked:
            continue
        stamp = f"  trial {trial} [{ms(rec['t']):10.3f} ms]"
        if etype == "detect.consistency" and rec["malicious"]:
            if shown[(trial, target, etype)] >= 3:
                continue  # a few exemplars per target suffice
            shown[(trial, target, etype)] += 1
            print(f"{stamp} node {rec['node']}: beacon {target} measured "
                  f"{rec['measured_ft']:.1f} ft vs expected "
                  f"{rec['expected_ft']:.1f} ft -> inconsistent")
        elif etype == "detect.verdict" and rec["outcome"] == "alert":
            if shown[(trial, target, etype)] >= 3:
                continue
            shown[(trial, target, etype)] += 1
            print(f"{stamp} node {rec['node']}: verdict alert on {target}")
        elif etype == "alert.submit":
            print(f"{stamp} {rec['reporter']} submits alert on {target}")
        elif etype == "bs.alert" and rec["disposition"].startswith("accept"):
            print(f"{stamp} base station accepts "
                  f"{rec['reporter']} -> {target} "
                  f"(counter {rec['alert_counter']})")
        elif etype == "bs.revoke":
            truth = ("true detection" if (trial, target) in malicious
                     else "FALSE POSITIVE")
            print(f"{stamp} *** {target} REVOKED "
                  f"(counter {rec['alert_counter']} > {rec['threshold']}) "
                  f"— {truth} ***")
    print()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace file (from --trace FILE)")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check only; exit nonzero on any error")
    ap.add_argument("--no-chains", action="store_true",
                    help="skip the per-revocation causal chains")
    args = ap.parse_args()
    if args.validate:
        sys.exit(validate(args.trace))
    try:
        report(args.trace, chains=not args.no_chains)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc!r}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
