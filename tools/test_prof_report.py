#!/usr/bin/env python3
"""Unit tests for prof_report.py: span-tree flattening, counter tracks
from timeseries windows, and the structural Chrome-trace validator.

Run from tools/:  python3 -m unittest test_prof_report
(registered as the `prof_report_unittest` ctest target).
"""

import contextlib
import io
import json
import os
import tempfile
import unittest

import prof_report

PROFILE = {
    "schema": "sld-profile/v1",
    "spans": [{
        "name": "trial", "calls": 1, "total_ns": 10_000, "self_ns": 4_000,
        "children": [
            {"name": "sched.event", "calls": 7, "total_ns": 5_000,
             "self_ns": 3_000, "children": [
                 {"name": "channel.transmit", "calls": 3,
                  "total_ns": 2_000, "self_ns": 2_000, "children": []}]},
            {"name": "trial.teardown", "calls": 1, "total_ns": 1_000,
             "self_ns": 1_000, "children": []},
        ],
    }],
}

TS_LINES = [
    {"t": 0, "e": "ts.meta", "schema": "timeseries/v1",
     "cadence_ns": 1000, "seed": 1},
    {"t": 1000, "e": "ts.window", "idx": 0, "start": 0, "end": 1000,
     "counters": {"mem.scheduler.allocs": 5},
     "deltas": {"mem.scheduler.allocs": 5},
     "gauges": {"mem.rss_kb": 2048.0},
     "hists": {"hot.queue_depth": {"count": 9, "p50": 2, "p90": 5,
                                   "p99": 7}}},
    {"t": 2000, "e": "ts.window", "idx": 1, "start": 1000, "end": 2000,
     "counters": {"mem.scheduler.allocs": 8},
     "deltas": {"mem.scheduler.allocs": 3},
     "gauges": {"mem.rss_kb": 2112.0}, "hists": {}},
]


def run_main(argv):
    with contextlib.redirect_stdout(io.StringIO()) as out, \
            contextlib.redirect_stderr(io.StringIO()) as err:
        code = prof_report.main(argv)
    return code, out.getvalue(), err.getvalue()


class Fixtures(unittest.TestCase):
    def write(self, content, suffix):
        f = tempfile.NamedTemporaryFile("w", suffix=suffix, delete=False)
        f.write(content)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name

    def write_profile(self, doc=PROFILE):
        return self.write(json.dumps(doc), ".json")

    def write_timeseries(self, lines=TS_LINES):
        return self.write(
            "".join(json.dumps(rec) + "\n" for rec in lines), ".jsonl")

    def out_path(self):
        f = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name


class SpanFlattening(Fixtures):
    def test_spans_become_nested_complete_events(self):
        events = prof_report.spans_to_events(PROFILE, "mem")
        by_name = {e["name"]: e for e in events}
        self.assertEqual(len(events), 4)
        for e in events:
            self.assertEqual(e["ph"], "X")
        trial = by_name["trial"]
        sched = by_name["sched.event"]
        xmit = by_name["channel.transmit"]
        tear = by_name["trial.teardown"]
        # dur is total_ns in microseconds.
        self.assertAlmostEqual(trial["dur"], 10.0)
        self.assertAlmostEqual(sched["dur"], 5.0)
        # Children nest inside the parent's synthesized range; siblings
        # are laid out sequentially.
        self.assertGreaterEqual(sched["ts"], trial["ts"])
        self.assertLessEqual(sched["ts"] + sched["dur"],
                             trial["ts"] + trial["dur"])
        self.assertGreaterEqual(xmit["ts"], sched["ts"])
        self.assertAlmostEqual(tear["ts"], sched["ts"] + sched["dur"])
        # Exact aggregates ride in args.
        self.assertEqual(sched["args"],
                         {"calls": 7, "total_ns": 5000, "self_ns": 3000})

    def test_wrong_schema_rejected(self):
        with self.assertRaises(ValueError):
            prof_report.spans_to_events({"schema": "bogus", "spans": []},
                                        "mem")


class CounterTracks(Fixtures):
    def test_windows_become_counter_samples(self):
        events = prof_report.timeseries_to_events(
            [json.dumps(r) for r in TS_LINES], "mem")
        allocs = [e for e in events
                  if e["name"] == "mem.scheduler.allocs"]
        # Counter tracks carry the per-window DELTA, not the cumulative.
        self.assertEqual([e["args"]["value"] for e in allocs], [5, 3])
        # Sampled at window end, ns -> us.
        self.assertEqual([e["ts"] for e in allocs], [1.0, 2.0])
        rss = [e for e in events if e["name"] == "mem.rss_kb"]
        self.assertEqual([e["args"]["value"] for e in rss],
                         [2048.0, 2112.0])
        p99 = [e for e in events if e["name"] == "hot.queue_depth.p99"]
        self.assertEqual([e["args"]["value"] for e in p99], [7])
        for e in events:
            self.assertEqual(e["ph"], "C")

    def test_stream_without_meta_header_rejected(self):
        with self.assertRaises(ValueError):
            prof_report.timeseries_to_events(
                [json.dumps(TS_LINES[1])], "mem")


class EndToEnd(Fixtures):
    def test_convert_then_validate(self):
        out = self.out_path()
        code, stdout, _ = run_main(["--profile", self.write_profile(),
                                    "--timeseries",
                                    self.write_timeseries(),
                                    "-o", out])
        self.assertEqual(code, 0)
        self.assertIn("4 spans", stdout)
        code, stdout, _ = run_main(["--validate", out])
        self.assertEqual(code, 0)
        self.assertIn("ok:", stdout)
        doc = json.load(open(out, encoding="utf-8"))
        self.assertIn("traceEvents", doc)

    def test_profile_only_and_timeseries_only(self):
        for argv in (["--profile", self.write_profile()],
                     ["--timeseries", self.write_timeseries()]):
            out = self.out_path()
            code, _, _ = run_main(argv + ["-o", out])
            self.assertEqual(code, 0, argv)
            code, _, _ = run_main(["--validate", out])
            self.assertEqual(code, 0, argv)

    def test_bad_profile_is_input_error(self):
        bad = self.write("{not json", ".json")
        code, _, err = run_main(["--profile", bad, "-o", self.out_path()])
        self.assertEqual(code, 2)
        self.assertIn("prof_report:", err)


class Validator(Fixtures):
    def _validate(self, doc):
        return run_main(["--validate", self.write(json.dumps(doc),
                                                  ".json")])

    def test_rejects_missing_trace_events(self):
        code, _, err = self._validate({"foo": []})
        self.assertEqual(code, 1)
        self.assertIn("traceEvents", err)

    def test_rejects_empty_trace_events(self):
        code, _, err = self._validate({"traceEvents": []})
        self.assertEqual(code, 1)
        self.assertIn("empty", err)

    def test_rejects_complete_event_without_dur(self):
        code, _, err = self._validate({"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "pid": 1}]})
        self.assertEqual(code, 1)
        self.assertIn("dur", err)

    def test_rejects_counter_without_value(self):
        code, _, err = self._validate({"traceEvents": [
            {"name": "x", "ph": "C", "ts": 0, "pid": 1, "args": {}}]})
        self.assertEqual(code, 1)
        self.assertIn("args.value", err)

    def test_rejects_unknown_phase(self):
        code, _, err = self._validate({"traceEvents": [
            {"name": "x", "ph": "Z", "ts": 0, "pid": 1}]})
        self.assertEqual(code, 1)
        self.assertIn("phase", err)


if __name__ == "__main__":
    unittest.main()
