#!/usr/bin/env python3
"""Unit tests for trace_report.py: schema validation on known-good and
deliberately corrupted JSONL fixtures, plus a report() smoke test.

Run from tools/:  python3 -m unittest test_trace_report
(registered as the `trace_report_unittest` ctest target).
"""

import contextlib
import io
import json
import os
import tempfile
import unittest

import trace_report

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
GOOD = os.path.join(FIXTURES, "trace_good.jsonl")
CORRUPT = os.path.join(FIXTURES, "trace_corrupt.jsonl")


def validate_quietly(path):
    with contextlib.redirect_stdout(io.StringIO()) as out, \
            contextlib.redirect_stderr(io.StringIO()) as err:
        code = trace_report.validate(path)
    return code, out.getvalue(), err.getvalue()


class ValidateGoodTrace(unittest.TestCase):
    def test_known_good_fixture_passes(self):
        code, out, err = validate_quietly(GOOD)
        self.assertEqual(code, 0, err)
        self.assertIn("all schema-valid", out)

    def test_good_fixture_covers_core_event_families(self):
        with open(GOOD, encoding="utf-8") as fh:
            events = {json.loads(line)["e"] for line in fh if line.strip()}
        for family in ("trial.start", "pkt.send", "detect.consistency",
                       "bs.alert", "bs.revoke", "bs.quarantine",
                       "bs.exonerate", "coverage.usable_beacons",
                       "arq.retry", "trial.end"):
            self.assertIn(family, events)

    def test_every_good_record_is_in_schema(self):
        with open(GOOD, encoding="utf-8") as fh:
            for line in fh:
                rec = json.loads(line)
                self.assertIn(rec["e"], trace_report.SCHEMA)
                for field in trace_report.SCHEMA[rec["e"]]:
                    self.assertIn(field, rec, f"{rec['e']} missing {field}")


class ValidateCorruptTraces(unittest.TestCase):
    def _validate_lines(self, lines):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as fh:
            fh.write("\n".join(lines) + "\n")
            path = fh.name
        try:
            return validate_quietly(path)
        finally:
            os.unlink(path)

    def test_corrupt_fixture_fails_with_each_corruption_reported(self):
        code, _, err = validate_quietly(CORRUPT)
        self.assertEqual(code, 1)
        self.assertIn("missing field", err)          # pkt.send without bytes
        self.assertIn("unknown event type", err)     # pkt.teleport
        self.assertIn("time went backwards", err)    # 500 after 1000
        self.assertIn("not an integer", err)         # "t": "soon"

    def test_missing_required_field_fails(self):
        code, _, err = self._validate_lines([
            '{"t": 0, "e": "bs.revoke", "target": 2}',
        ])
        self.assertEqual(code, 1)
        self.assertIn("missing field", err)

    def test_unknown_event_type_fails(self):
        code, _, err = self._validate_lines([
            '{"t": 0, "e": "no.such.event"}',
        ])
        self.assertEqual(code, 1)
        self.assertIn("unknown event type", err)

    def test_time_backwards_within_trial_fails(self):
        code, _, err = self._validate_lines([
            '{"t": 0, "e": "trial.start", "seed": 1, "nodes": 1,'
            ' "beacons": 1, "malicious": 0, "sensors": 0}',
            '{"t": 500, "e": "pkt.loss", "src": 1, "dst": 2}',
            '{"t": 100, "e": "pkt.loss", "src": 1, "dst": 2}',
        ])
        self.assertEqual(code, 1)
        self.assertIn("time went backwards", err)

    def test_trial_start_resets_the_clock(self):
        code, _, err = self._validate_lines([
            '{"t": 0, "e": "trial.start", "seed": 1, "nodes": 1,'
            ' "beacons": 1, "malicious": 0, "sensors": 0}',
            '{"t": 900, "e": "pkt.loss", "src": 1, "dst": 2}',
            '{"t": 0, "e": "trial.start", "seed": 2, "nodes": 1,'
            ' "beacons": 1, "malicious": 0, "sensors": 0}',
            '{"t": 10, "e": "pkt.loss", "src": 1, "dst": 2}',
        ])
        self.assertEqual(code, 0, err)

    def test_unparsable_json_fails(self):
        code, _, err = self._validate_lines(['{"t": 0, "e": "pkt.loss",'])
        self.assertEqual(code, 1)
        self.assertTrue(err.strip(), "expected a parse error report")

    def test_non_object_line_fails(self):
        code, _, err = self._validate_lines(['[1, 2, 3]'])
        self.assertEqual(code, 1)
        self.assertIn("not a JSON object", err)


class ChaosEvents(unittest.TestCase):
    """The crash-recovery / chaos event family added for the chaos
    campaign: schema-valid lines pass, and the report summarizes them."""

    CHAOS_LINES = [
        '{"t": 0, "e": "trial.start", "seed": 1, "nodes": 10, "beacons": 3,'
        ' "malicious": 1, "sensors": 7}',
        '{"t": 5, "e": "partition.start", "nodes_a": 4}',
        '{"t": 6, "e": "pkt.partition_drop", "src": 1, "dst": 2}',
        '{"t": 9, "e": "partition.heal", "duration_ns": 4}',
        '{"t": 10, "e": "node.reboot", "node": 7, "down_ns": 100}',
        '{"t": 11, "e": "alert.reporter_down", "reporter": 4, "target": 2,'
        ' "attempt": 1}',
        '{"t": 12, "e": "bs.snapshot", "records": 8, "wal_tail": 2}',
        '{"t": 13, "e": "bs.failover", "epoch": 2, "role": "takeover"}',
        '{"t": 14, "e": "bs.failover", "epoch": 2, "role": "fence"}',
        '{"t": 20, "e": "trial.end", "seed": 1, "malicious_revoked": 1,'
        ' "benign_revoked": 0, "sensors_localized": 7}',
    ]

    def _write(self, lines):
        fh = tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False)
        fh.write("\n".join(lines) + "\n")
        fh.close()
        self.addCleanup(os.unlink, fh.name)
        return fh.name

    def test_chaos_events_are_schema_valid(self):
        code, out, err = validate_quietly(self._write(self.CHAOS_LINES))
        self.assertEqual(code, 0, err)
        self.assertIn("all schema-valid", out)

    def test_chaos_events_require_their_fields(self):
        for bad in ('{"t": 1, "e": "node.reboot", "node": 7}',
                    '{"t": 1, "e": "bs.failover", "epoch": 2}',
                    '{"t": 1, "e": "partition.start"}',
                    '{"t": 1, "e": "pkt.partition_drop", "src": 1}'):
            code, _, err = validate_quietly(self._write([bad]))
            self.assertEqual(code, 1, bad)
            self.assertIn("missing field", err)

    def test_report_summarizes_crash_recovery(self):
        with contextlib.redirect_stdout(io.StringIO()) as out:
            trace_report.report(self._write(self.CHAOS_LINES), chains=False)
        text = out.getvalue()
        self.assertIn("crash recovery", text)
        self.assertIn("node reboots: 1", text)
        self.assertIn("bs.failover takeover: 1", text)
        self.assertIn("partitions: 1 started, 1 healed", text)
        self.assertIn("reporter crashes: 1", text)


class OverloadEvents(unittest.TestCase):
    """The ingestion-overload event family (alert-storm PR): sheds,
    breaker transitions and shard commit batches."""

    STORM_LINES = [
        '{"t": 0, "e": "trial.start", "seed": 1, "nodes": 10, "beacons": 3,'
        ' "malicious": 1, "sensors": 7}',
        '{"t": 5, "e": "bs.shed", "reporter": 9, "target": 2,'
        ' "reason": "rate_limited", "shard": 0}',
        '{"t": 6, "e": "bs.shed", "reporter": 8, "target": 3,'
        ' "reason": "queue_full", "shard": 1}',
        '{"t": 7, "e": "bs.breaker", "from": "closed", "to": "shedding"}',
        '{"t": 8, "e": "bs.breaker", "from": "shedding", "to": "degraded"}',
        '{"t": 9, "e": "bs.shard_commit", "shard": 1, "batch": 4,'
        ' "queue_depth": 2}',
        '{"t": 20, "e": "trial.end", "seed": 1, "malicious_revoked": 1,'
        ' "benign_revoked": 0, "sensors_localized": 7}',
    ]

    def _write(self, lines):
        fh = tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False)
        fh.write("\n".join(lines) + "\n")
        fh.close()
        self.addCleanup(os.unlink, fh.name)
        return fh.name

    def test_overload_events_are_schema_valid(self):
        code, out, err = validate_quietly(self._write(self.STORM_LINES))
        self.assertEqual(code, 0, err)
        self.assertIn("all schema-valid", out)

    def test_overload_events_require_their_fields(self):
        for bad in ('{"t": 1, "e": "bs.shed", "reporter": 9, "target": 2}',
                    '{"t": 1, "e": "bs.breaker", "from": "closed"}',
                    '{"t": 1, "e": "bs.shard_commit", "shard": 0}'):
            code, _, err = validate_quietly(self._write([bad]))
            self.assertEqual(code, 1, bad)
            self.assertIn("missing field", err)

    def test_report_summarizes_overload(self):
        with contextlib.redirect_stdout(io.StringIO()) as out:
            trace_report.report(self._write(self.STORM_LINES), chains=False)
        text = out.getvalue()
        self.assertIn("ingestion overload", text)
        self.assertIn("shed (queue_full): 1", text)
        self.assertIn("shed (rate_limited): 1", text)
        self.assertIn("breaker closed -> shedding: 1", text)
        self.assertIn("shard commits: 1 batch(es), largest 4 record(s)", text)


class TelemetryEvents(unittest.TestCase):
    """The streaming-telemetry event family (timeseries/v1 + SLO monitor):
    ts.meta/ts.window/slo.breach/slo.recover validate, ts.meta resets the
    monotone clock, and the report renders the breach timeline."""

    TS_LINES = [
        '{"t": 0, "e": "ts.meta", "schema": "timeseries/v1",'
        ' "cadence_ns": 1000, "seed": 7}',
        '{"t": 1000, "e": "ts.window", "idx": 0, "start": 0, "end": 1000,'
        ' "counters": {"c": 3}, "deltas": {"c": 3}, "gauges": {"g": 1.5},'
        ' "hists": {}}',
        '{"t": 1000, "e": "slo.breach", "rule": "flood", "value": 3000.0,'
        ' "threshold": 50.0, "window": 0, "windows": 1}',
        '{"t": 2000, "e": "ts.window", "idx": 1, "start": 1000, "end": 2000,'
        ' "counters": {"c": 3}, "deltas": {"c": 0}, "gauges": {"g": 0.0},'
        ' "hists": {}}',
        '{"t": 2000, "e": "slo.recover", "rule": "flood", "value": 0.0,'
        ' "threshold": 50.0, "window": 1, "windows": 1}',
    ]

    def _write(self, lines):
        fh = tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False)
        fh.write("\n".join(lines) + "\n")
        fh.close()
        self.addCleanup(os.unlink, fh.name)
        return fh.name

    def test_telemetry_events_are_schema_valid(self):
        code, out, err = validate_quietly(self._write(self.TS_LINES))
        self.assertEqual(code, 0, err)
        self.assertIn("all schema-valid", out)

    def test_telemetry_events_require_their_fields(self):
        for bad in ('{"t": 1, "e": "ts.meta", "schema": "timeseries/v1"}',
                    '{"t": 1, "e": "ts.window", "idx": 0, "start": 0,'
                    ' "end": 1}',
                    '{"t": 1, "e": "slo.breach", "rule": "flood"}',
                    '{"t": 1, "e": "slo.recover", "rule": "flood"}'):
            code, _, err = validate_quietly(self._write([bad]))
            self.assertEqual(code, 1, bad)
            self.assertIn("missing field", err)

    def test_ts_meta_resets_the_clock_like_trial_start(self):
        code, _, err = validate_quietly(self._write([
            '{"t": 0, "e": "trial.start", "seed": 1, "nodes": 1,'
            ' "beacons": 1, "malicious": 0, "sensors": 0}',
            '{"t": 900, "e": "pkt.loss", "src": 1, "dst": 2}',
            '{"t": 0, "e": "ts.meta", "schema": "timeseries/v1",'
            ' "cadence_ns": 1000, "seed": 2}',
            '{"t": 10, "e": "pkt.loss", "src": 1, "dst": 2}',
        ]))
        self.assertEqual(code, 0, err)

    def test_report_renders_breach_timeline(self):
        with contextlib.redirect_stdout(io.StringIO()) as out:
            trace_report.report(self._write(self.TS_LINES), chains=False)
        text = out.getvalue()
        self.assertIn("SLO breach timeline", text)
        self.assertIn("BREACH  flood", text)
        self.assertIn("recover flood", text)
        self.assertIn("1 breach(es), 1 recovery(ies)", text)
        self.assertIn("verdict: healthy", text)

    def test_report_flags_unrecovered_breach_as_unhealthy(self):
        with contextlib.redirect_stdout(io.StringIO()) as out:
            trace_report.report(self._write(self.TS_LINES[:3]), chains=False)
        text = out.getvalue()
        self.assertIn("verdict: UNHEALTHY", text)
        self.assertIn("still in breach: flood", text)


class LifecycleEvents(unittest.TestCase):
    """The evidence-lifecycle event family (framing-resistance PR):
    quarantine / escalate / exonerate transitions and the coverage-guard
    cell censuses."""

    LIFECYCLE_LINES = [
        '{"t": 0, "e": "trial.start", "seed": 1, "nodes": 10, "beacons": 4,'
        ' "malicious": 1, "sensors": 6}',
        '{"t": 0, "e": "node.beacon", "id": 2, "x": 400.0, "y": 250.0,'
        ' "malicious": true}',
        '{"t": 5, "e": "coverage.usable_beacons", "cx": 1, "cy": 0,'
        ' "usable": 3}',
        '{"t": 5, "e": "bs.quarantine", "target": 2, "evidence": 3.2}',
        '{"t": 6, "e": "coverage.usable_beacons", "cx": 0, "cy": 1,'
        ' "usable": 0}',
        '{"t": 6, "e": "bs.escalate", "target": 3, "evidence": 6.1,'
        ' "usable": 0}',
        '{"t": 6, "e": "bs.quarantine", "target": 3, "evidence": 6.1}',
        '{"t": 9, "e": "bs.exonerate", "target": 3, "evidence": 0.3}',
        '{"t": 20, "e": "trial.end", "seed": 1, "malicious_revoked": 0,'
        ' "benign_revoked": 0, "sensors_localized": 6}',
    ]

    def _write(self, lines):
        fh = tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False)
        fh.write("\n".join(lines) + "\n")
        fh.close()
        self.addCleanup(os.unlink, fh.name)
        return fh.name

    def test_lifecycle_events_are_schema_valid(self):
        code, out, err = validate_quietly(self._write(self.LIFECYCLE_LINES))
        self.assertEqual(code, 0, err)
        self.assertIn("all schema-valid", out)

    def test_lifecycle_events_require_their_fields(self):
        for bad in ('{"t": 1, "e": "bs.quarantine", "target": 2}',
                    '{"t": 1, "e": "bs.exonerate", "evidence": 0.4}',
                    '{"t": 1, "e": "bs.escalate", "target": 3,'
                    ' "evidence": 6.1}',
                    '{"t": 1, "e": "coverage.usable_beacons", "cx": 1,'
                    ' "cy": 0}'):
            code, _, err = validate_quietly(self._write([bad]))
            self.assertEqual(code, 1, bad)
            self.assertIn("missing field", err)

    def test_report_renders_quarantine_timeline(self):
        with contextlib.redirect_stdout(io.StringIO()) as out:
            trace_report.report(self._write(self.LIFECYCLE_LINES),
                                chains=False)
        text = out.getvalue()
        self.assertIn("quarantine timeline", text)
        self.assertIn("quarantine beacon 2", text)
        self.assertIn("— malicious", text)
        self.assertIn("escalate   beacon 3", text)
        self.assertIn("cell usable 0", text)
        self.assertIn("exonerate  beacon 3", text)
        self.assertIn("— benign", text)
        self.assertIn("2 quarantine(s), 1 escalation(s), 1 exoneration(s)",
                      text)
        self.assertIn("coverage censuses: 2 over 2 cell(s), min usable 0",
                      text)


class ReportSmoke(unittest.TestCase):
    def test_report_renders_revocation_and_chain(self):
        with contextlib.redirect_stdout(io.StringIO()) as out:
            trace_report.report(GOOD, chains=True)
        text = out.getvalue()
        self.assertIn("trace report", text)
        self.assertIn("revocations", text)
        self.assertIn("beacon 2 revoked", text)
        self.assertIn("true detection", text)
        self.assertIn("causal chains", text)
        # The malicious beacon's chain must surface the inconsistency.
        self.assertIn("inconsistent", text)


if __name__ == "__main__":
    unittest.main()
