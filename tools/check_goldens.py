#!/usr/bin/env python3
"""Golden-summary regression check for the figure benches.

Runs every bench listed in the goldens file at `--fast --trials 1 --seed 1`
(a deterministic, sub-second configuration), hashes its stdout (the
TrialSummary CSV tables), and compares against the checked-in hash. Any
drift in simulation results — intended or not — shows up as a failing
`bench_goldens` ctest; intended drift is recorded with --update.

A goldens entry is `<binary>[:flag,flag,...] <sha256>`: the optional
comma-separated suffix appends mode flags to the standard argument set, so
one binary can be pinned in several modes (e.g. `ext_alert_storm` and
`ext_alert_storm:--storm`).

Usage:
  check_goldens.py --bench-dir build/bench --goldens tests/goldens/bench_goldens.txt
  check_goldens.py --bench-dir build/bench --goldens ... --update
"""

import argparse
import hashlib
import os
import subprocess
import sys

BENCH_ARGS = ["--fast", "--trials", "1", "--seed", "1"]


def read_goldens(path):
    goldens = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, digest = line.split()
            goldens[name] = digest
    return goldens


def write_goldens(path, goldens):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# sha256 of each bench's stdout at "
                f"`{' '.join(BENCH_ARGS)}`.\n")
        f.write("# Regenerate with: tools/check_goldens.py --update "
                "--bench-dir <build>/bench --goldens <this file>\n")
        for name in sorted(goldens):
            f.write(f"{name} {goldens[name]}\n")


def split_entry(name):
    """'ext_alert_storm:--storm' -> ('ext_alert_storm', ['--storm'])."""
    binary, _, flags = name.partition(":")
    return binary, [f for f in flags.split(",") if f]


def run_bench(bench_dir, name):
    binary, extra = split_entry(name)
    exe = os.path.join(bench_dir, binary)
    if not os.path.exists(exe):
        return None, f"missing bench binary: {exe}"
    try:
        out = subprocess.run([exe] + BENCH_ARGS + extra, capture_output=True,
                             timeout=300, check=True)
    except subprocess.CalledProcessError as e:
        return None, f"{name} exited {e.returncode}: {e.stderr.decode()[:500]}"
    except subprocess.TimeoutExpired:
        return None, f"{name} timed out"
    return hashlib.sha256(out.stdout).hexdigest(), None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True,
                        help="directory holding the bench binaries")
    parser.add_argument("--goldens", required=True,
                        help="checked-in goldens file")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the goldens file from current output")
    args = parser.parse_args()

    goldens = read_goldens(args.goldens)
    if not goldens:
        print(f"no goldens in {args.goldens}", file=sys.stderr)
        return 1

    failures = []
    fresh = {}
    for name, expected in sorted(goldens.items()):
        digest, err = run_bench(args.bench_dir, name)
        if err:
            failures.append(err)
            print(f"ERROR {name}: {err}")
            continue
        fresh[name] = digest
        if args.update:
            print(f"update {name} {digest}")
        elif digest == expected:
            print(f"ok    {name}")
        else:
            failures.append(name)
            print(f"DRIFT {name}: expected {expected}, got {digest}")

    if args.update:
        if failures:
            print("refusing to update with failing benches", file=sys.stderr)
            return 1
        write_goldens(args.goldens, fresh)
        print(f"wrote {len(fresh)} goldens to {args.goldens}")
        return 0

    if failures:
        print(f"\n{len(failures)} golden mismatch(es). If the change is "
              "intended, regenerate with --update.", file=sys.stderr)
        return 1
    print(f"all {len(goldens)} bench goldens match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
