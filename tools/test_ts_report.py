#!/usr/bin/env python3
"""Unit tests for ts_report.py: timeseries/v1 validation on known-good and
deliberately corrupted fixtures, sparkline rendering, dashboard output, and
the --expect-breach/--expect-recover CI assertions.

Run from tools/:  python3 -m unittest test_ts_report
(registered as the `ts_report_unittest` ctest target).
"""

import contextlib
import io
import os
import tempfile
import unittest

import ts_report

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
GOOD = os.path.join(FIXTURES, "ts_good.jsonl")
CORRUPT = os.path.join(FIXTURES, "ts_corrupt.jsonl")


def run_quietly(fn, *args, **kwargs):
    with contextlib.redirect_stdout(io.StringIO()) as out, \
            contextlib.redirect_stderr(io.StringIO()) as err:
        code = fn(*args, **kwargs)
    return code, out.getvalue(), err.getvalue()


def write_lines(lines):
    fh = tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False)
    fh.write("\n".join(lines) + "\n")
    fh.close()
    return fh.name


class ValidateGoodStream(unittest.TestCase):
    def test_known_good_fixture_passes(self):
        code, out, err = run_quietly(ts_report.validate, GOOD)
        self.assertEqual(code, 0, err)
        self.assertIn("self-consistent", out)

    def test_good_fixture_exercises_all_four_event_types(self):
        import json
        with open(GOOD, encoding="utf-8") as fh:
            events = {json.loads(line)["e"] for line in fh if line.strip()}
        self.assertEqual(events, {"ts.meta", "ts.window",
                                  "slo.breach", "slo.recover"})


class ValidateCorruptStream(unittest.TestCase):
    def test_corrupt_fixture_reports_each_corruption(self):
        code, _, err = run_quietly(ts_report.validate, CORRUPT)
        self.assertEqual(code, 1)
        self.assertIn("ts.window before any ts.meta", err)
        self.assertIn("'timeseries/v2' != 'timeseries/v1'", err)
        self.assertIn("end 250000000 <= start 260000000", err)
        self.assertIn("delta 7 != cumulative step 2", err)
        self.assertIn("has no delta", err)            # shed counter
        self.assertIn("went backwards", err)          # accepted 1 < 2
        self.assertIn("unexpected event 'pkt.send'", err)
        self.assertIn("slo.breach missing field(s)", err)

    def test_non_contiguous_window_index_fails(self):
        path = write_lines([
            '{"t": 0, "e": "ts.meta", "schema": "timeseries/v1", '
            '"cadence_ns": 100, "seed": 1}',
            '{"t": 100, "e": "ts.window", "idx": 0, "start": 0, "end": 100, '
            '"counters": {}, "deltas": {}, "gauges": {}, "hists": {}}',
            '{"t": 300, "e": "ts.window", "idx": 2, "start": 100, '
            '"end": 300, "counters": {}, "deltas": {}, "gauges": {}, '
            '"hists": {}}',
        ])
        try:
            code, _, err = run_quietly(ts_report.validate, path)
        finally:
            os.unlink(path)
        self.assertEqual(code, 1)
        self.assertIn("not contiguous", err)

    def test_gap_between_window_edges_fails(self):
        path = write_lines([
            '{"t": 0, "e": "ts.meta", "schema": "timeseries/v1", '
            '"cadence_ns": 100, "seed": 1}',
            '{"t": 100, "e": "ts.window", "idx": 0, "start": 0, "end": 100, '
            '"counters": {}, "deltas": {}, "gauges": {}, "hists": {}}',
            '{"t": 250, "e": "ts.window", "idx": 1, "start": 150, '
            '"end": 250, "counters": {}, "deltas": {}, "gauges": {}, '
            '"hists": {}}',
        ])
        try:
            code, _, err = run_quietly(ts_report.validate, path)
        finally:
            os.unlink(path)
        self.assertEqual(code, 1)
        self.assertIn("start 150 != previous end 100", err)

    def test_second_trial_segment_resets_counter_baseline(self):
        # A fresh ts.meta starts a new trial: counters restart from 0
        # without tripping the monotonicity check.
        path = write_lines([
            '{"t": 0, "e": "ts.meta", "schema": "timeseries/v1", '
            '"cadence_ns": 100, "seed": 1}',
            '{"t": 100, "e": "ts.window", "idx": 0, "start": 0, "end": 100, '
            '"counters": {"c": 9}, "deltas": {"c": 9}, "gauges": {}, '
            '"hists": {}}',
            '{"t": 0, "e": "ts.meta", "schema": "timeseries/v1", '
            '"cadence_ns": 100, "seed": 2}',
            '{"t": 100, "e": "ts.window", "idx": 0, "start": 0, "end": 100, '
            '"counters": {"c": 2}, "deltas": {"c": 2}, "gauges": {}, '
            '"hists": {}}',
        ])
        try:
            code, _, err = run_quietly(ts_report.validate, path)
        finally:
            os.unlink(path)
        self.assertEqual(code, 0, err)


class Sparklines(unittest.TestCase):
    def test_zero_series_renders_blank(self):
        self.assertEqual(ts_report.sparkline([0, 0, 0]), "   ")

    def test_peak_maps_to_top_of_ramp(self):
        line = ts_report.sparkline([0, 5, 10])
        self.assertEqual(len(line), 3)
        self.assertEqual(line[0], ts_report.RAMP[0])
        self.assertEqual(line[2], ts_report.RAMP[-1])

    def test_long_series_is_downsampled_by_chunk_max(self):
        values = [0] * 100 + [7] + [0] * 99
        line = ts_report.sparkline(values, width=50)
        self.assertLessEqual(len(line), 50)
        self.assertIn(ts_report.RAMP[-1], line)  # spike survives downsample

    def test_breach_ticks_mark_breach_and_recover_windows(self):
        windows = [{"idx": i} for i in range(4)]
        events = [
            {"e": "slo.breach", "rule": "r", "window": 1},
            {"e": "slo.recover", "rule": "r", "window": 3},
        ]
        self.assertEqual(ts_report.breach_ticks(windows, events), " ^ v")


class Reports(unittest.TestCase):
    def test_report_renders_sparklines_and_slo_transitions(self):
        code, out, _ = run_quietly(ts_report.report, GOOD)
        self.assertEqual(code, 0)
        self.assertIn("timeline report", out)
        self.assertIn("4 windows x 250 ms", out)
        self.assertIn("bs.ingest.rate_limited", out)
        self.assertIn("^ breach, v recover", out)
        self.assertIn("BREACH  flood", out)
        self.assertIn("recover flood", out)
        self.assertIn("verdict: healthy", out)

    def test_dashboard_aggregates_queue_depth_and_curates_tracks(self):
        code, out, _ = run_quietly(ts_report.report, GOOD, dashboard=True)
        self.assertEqual(code, 0)
        self.assertIn("storm/failover dashboard", out)
        self.assertIn("bs.ingest.queue_depth(total)", out)
        self.assertIn("bs.ingest.breaker_state", out)

    def test_dashboard_surfaces_rss_gauge_when_sampled(self):
        # A --rss stream carries a mem.rss_kb gauge per window; the
        # dashboard's curated tracks include it.
        path = write_lines([
            '{"t": 0, "e": "ts.meta", "schema": "timeseries/v1", '
            '"cadence_ns": 1000, "seed": 1}',
            '{"t": 1000, "e": "ts.window", "idx": 0, "start": 0, '
            '"end": 1000, "counters": {}, "deltas": {}, '
            '"gauges": {"mem.rss_kb": 2048.0}, "hists": {}}',
            '{"t": 2000, "e": "ts.window", "idx": 1, "start": 1000, '
            '"end": 2000, "counters": {}, "deltas": {}, '
            '"gauges": {"mem.rss_kb": 2112.0}, "hists": {}}',
        ])
        try:
            code, out, _ = run_quietly(ts_report.report, path,
                                       dashboard=True)
        finally:
            os.unlink(path)
        self.assertEqual(code, 0)
        self.assertIn("mem.rss_kb", out)

    def test_metric_filter_rejects_unknown_names(self):
        code, _, err = run_quietly(ts_report.report, GOOD,
                                   metrics=["no.such.metric"])
        self.assertEqual(code, 1)
        self.assertIn("no.such.metric", err)

    def test_empty_stream_is_an_error(self):
        path = write_lines(["", ""])
        try:
            code, _, err = run_quietly(ts_report.report, path)
        finally:
            os.unlink(path)
        self.assertEqual(code, 1)
        self.assertIn("no ts.meta", err)


class Expectations(unittest.TestCase):
    def test_met_expectations_pass(self):
        code, out, _ = run_quietly(ts_report.check_expectations, GOOD,
                                   ["flood"], ["flood"])
        self.assertEqual(code, 0)
        self.assertIn("expectations met", out)

    def test_unmet_breach_expectation_fails(self):
        code, _, err = run_quietly(ts_report.check_expectations, GOOD,
                                   ["pressure"], [])
        self.assertEqual(code, 1)
        self.assertIn("expected slo.breach for rule 'pressure'", err)

    def test_unmet_recover_expectation_fails(self):
        code, _, err = run_quietly(ts_report.check_expectations, GOOD,
                                   [], ["pressure"])
        self.assertEqual(code, 1)
        self.assertIn("expected slo.recover for rule 'pressure'", err)


if __name__ == "__main__":
    unittest.main()
