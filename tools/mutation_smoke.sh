#!/usr/bin/env bash
# Mutation smoke test: applies ~10 curated single-line mutants to the
# detection/revocation/sim sources and verifies the test suite kills every
# one (at least one registered test fails per mutant). A mutant that
# survives means a guard has no test teeth — the script fails loudly.
#
# Uses a dedicated build tree (build-mutation, RelWithDebInfo with runtime
# invariants ON) and rebuilds only the test targets each mutant needs, so a
# full run stays tractable on a single-core box.
#
# Usage: tools/mutation_smoke.sh [jobs]
set -uo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${1:-$(nproc)}"
build="$repo/build-mutation"

# --- mutant table ---------------------------------------------------------
# Each mutant: file | exact old text | exact new text | test targets to
# rebuild+run (space-separated gtest names; each must contain >=1 failure).
MUTANT_NAMES=()
MUTANT_FILES=()
MUTANT_OLDS=()
MUTANT_NEWS=()
MUTANT_TESTS=()

add_mutant() {
  MUTANT_NAMES+=("$1")
  MUTANT_FILES+=("$2")
  MUTANT_OLDS+=("$3")
  MUTANT_NEWS+=("$4")
  MUTANT_TESTS+=("$5")
}

add_mutant "bs-threshold-off-by-one" \
  "src/revocation/base_station.cpp" \
  "if (alerts > config_.alert_threshold) {" \
  "if (alerts >= config_.alert_threshold) {" \
  "test_properties_revocation"

add_mutant "bs-drop-alert-increment" \
  "src/revocation/base_station.cpp" \
  "  ++alerts;
  ++stats_.alerts_accepted;" \
  "  ++stats_.alerts_accepted;" \
  "test_properties_revocation"

add_mutant "bs-quota-off-by-one" \
  "src/revocation/base_station.cpp" \
  "if (reports > config_.report_quota) {" \
  "if (reports >= config_.report_quota) {" \
  "test_properties_revocation"

add_mutant "consistency-flip-comparison" \
  "src/detection/beacon_check.cpp" \
  "r.malicious = r.deviation_ft > max_error_ft_;" \
  "r.malicious = r.deviation_ft < max_error_ft_;" \
  "test_properties_detection"

add_mutant "replay-flip-comparison" \
  "src/detection/replay_filter.cpp" \
  "return observed_rtt_cycles > config_.rtt_x_max_cycles;" \
  "return observed_rtt_cycles < config_.rtt_x_max_cycles;" \
  "test_replay_filter"

add_mutant "arq-backoff-exponent" \
  "src/sim/arq.cpp" \
  "static_cast<double>(attempt));" \
  "static_cast<double>(attempt + 1));" \
  "test_properties_sim"

add_mutant "probe-retry-off-by-one" \
  "src/core/nodes.cpp" \
  "if (probe.attempt < ctx_.config.arq.max_retries) {" \
  "if (probe.attempt <= ctx_.config.arq.max_retries) {" \
  "test_invariants"

add_mutant "scheduler-boundary-exclusive" \
  "src/sim/scheduler.cpp" \
  "while (!queue_.empty() && queue_.next_time() <= until) {" \
  "while (!queue_.empty() && queue_.next_time() < until) {" \
  "test_properties_sim"

add_mutant "rtt-keep-mac-delay" \
  "src/ranging/rtt.hpp" \
  "return (t4_cycles - t1_cycles) - (t3_cycles - t2_cycles);" \
  "return (t4_cycles - t1_cycles);" \
  "test_properties_detection"

add_mutant "channel-drop-delivery-count" \
  "src/sim/channel.cpp" \
  "  ++stats_.deliveries;" \
  "  " \
  "test_properties_sim"

add_mutant "detector-swallow-alert" \
  "src/detection/detector.cpp" \
  "outcome = ProbeOutcome::kAlert;" \
  "outcome = ProbeOutcome::kConsistent;" \
  "test_invariants"

# --- helpers --------------------------------------------------------------

apply_patch() {  # file old new  (exact-string replace; must match exactly once)
  python3 - "$repo/$1" "$2" "$3" <<'EOF'
import sys
path, old, new = sys.argv[1], sys.argv[2], sys.argv[3]
src = open(path, encoding="utf-8").read()
n = src.count(old)
if n != 1:
    sys.exit(f"expected exactly 1 occurrence in {path}, found {n}")
open(path, "w", encoding="utf-8").write(src.replace(old, new, 1))
EOF
}

restore() {  # file  (put back the pristine copy saved before mutation)
  cp "$backup_dir/$(basename "$1")" "$repo/$1"
}

build_and_run() {  # test targets...; nonzero if any binary fails (or build breaks)
  cmake --build "$build" -j "$jobs" --target "$@" > /dev/null 2>&1 || return 2
  local t rc=0
  for t in "$@"; do
    "$build/tests/$t" > /dev/null 2>&1 || rc=1
  done
  return $rc
}

# --- run ------------------------------------------------------------------

backup_dir="$(mktemp -d)"
trap 'rm -rf "$backup_dir"' EXIT

echo "=== configure ($build, RelWithDebInfo + invariants ON) ==="
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLD_INVARIANTS=ON -DSLD_BUILD_BENCH=OFF -DSLD_BUILD_EXAMPLES=OFF \
  > /dev/null

all_tests="$(printf '%s\n' "${MUTANT_TESTS[@]}" | tr ' ' '\n' | sort -u | tr '\n' ' ')"
echo "=== clean-tree baseline: ${all_tests}==="
# shellcheck disable=SC2086
if ! build_and_run $all_tests; then
  echo "FAIL: suite does not pass on the unmutated tree; fix that first." >&2
  exit 1
fi
echo "ok: clean tree passes"

survived=()
for i in "${!MUTANT_NAMES[@]}"; do
  name="${MUTANT_NAMES[$i]}"
  file="${MUTANT_FILES[$i]}"
  echo "=== mutant $((i + 1))/${#MUTANT_NAMES[@]}: $name ($file) ==="
  cp "$repo/$file" "$backup_dir/$(basename "$file")"
  if ! apply_patch "$file" "${MUTANT_OLDS[$i]}" "${MUTANT_NEWS[$i]}"; then
    echo "FAIL: could not apply $name — source drifted from mutant table" >&2
    restore "$file"
    exit 1
  fi
  # shellcheck disable=SC2086
  build_and_run ${MUTANT_TESTS[$i]}
  rc=$?
  restore "$file"
  if [[ $rc -eq 0 ]]; then
    echo "SURVIVED: $name — no test failed under this mutant"
    survived+=("$name")
  else
    echo "killed: $name (tests: ${MUTANT_TESTS[$i]})"
  fi
done

echo "=== restore clean build ==="
# shellcheck disable=SC2086
build_and_run $all_tests || {
  echo "FAIL: suite broken after restore — tree may be dirty" >&2
  exit 1
}

if [[ ${#survived[@]} -gt 0 ]]; then
  echo "FAIL: ${#survived[@]} mutant(s) survived: ${survived[*]}" >&2
  exit 1
fi
echo "=== mutation smoke OK: all ${#MUTANT_NAMES[@]} mutants killed ==="
