#!/usr/bin/env python3
"""Plot the figure-reproduction bench outputs.

Usage:
    for b in build/bench/fig*; do name=$(basename "$b");
        "$b" > "out/$name.csv"; done
    python3 tools/plot_figures.py out/ plots/

Each bench prints one or more CSV blocks ('# title' line, a header line,
then rows). This script renders every block as a PNG, grouping rows into
series by the categorical columns (m, tau1, tau2, Na, Nc, P, kind...).
Requires matplotlib; prints a summary and exits cleanly without it.
"""

import os
import sys


def parse_blocks(path):
    """Yields (title, header, rows) for each CSV block in a bench output."""
    title, header, rows = None, None, []
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if header and rows:
                    yield title, header, rows
                    header, rows = None, []
                title = line.lstrip("# ")
                continue
            cells = line.split(",")
            if header is None:
                header = cells
            elif len(cells) == len(header):
                rows.append(cells)
    if header and rows:
        yield title, header, rows


SERIES_KEYS = ("m", "tau1", "tau2", "Na", "Nc", "P", "kind", "scheme",
               "variant", "collusion", "positions")


def plot_block(plt, title, header, rows, out_path):
    x_col = 0
    # Numeric y columns are everything after the x and series columns.
    series_cols = [i for i, h in enumerate(header)
                   if h in SERIES_KEYS and i != x_col]
    y_cols = [i for i in range(len(header))
              if i != x_col and i not in series_cols]

    def key_of(row):
        return ", ".join(f"{header[i]}={row[i]}" for i in series_cols)

    groups = {}
    for row in rows:
        groups.setdefault(key_of(row), []).append(row)

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for label, grp in groups.items():
        try:
            xs = [float(r[x_col]) for r in grp]
        except ValueError:
            continue  # categorical x: skip plotting, table-only block
        for y in y_cols:
            try:
                ys = [float(r[y]) for r in grp]
            except ValueError:
                continue
            suffix = header[y] if len(y_cols) > 1 else ""
            name = ", ".join(filter(None, [label, suffix]))
            ax.plot(xs, ys, marker=".", label=name or None)
    ax.set_xlabel(header[x_col])
    ax.set_title(title, fontsize=9)
    if len(groups) > 1 or len(y_cols) > 1:
        ax.legend(fontsize=6)
    fig.tight_layout()
    fig.savefig(out_path, dpi=130)
    plt.close(fig)


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    in_dir, out_dir = sys.argv[1], sys.argv[2]
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; CSV outputs are already usable "
              "as-is in any plotting tool.")
        return 0

    os.makedirs(out_dir, exist_ok=True)
    count = 0
    for name in sorted(os.listdir(in_dir)):
        base = os.path.splitext(name)[0]
        for i, (title, header, rows) in enumerate(
                parse_blocks(os.path.join(in_dir, name))):
            out = os.path.join(out_dir, f"{base}_{i}.png")
            plot_block(plt, title, header, rows, out)
            print(f"wrote {out} ({len(rows)} rows)")
            count += 1
    print(f"{count} plots rendered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
