#!/usr/bin/env bash
# Tier-1 gate: build Release and Sanitize (ASan+UBSan) configurations, run
# the full gtest suite on each, then run one traced smoke trial and
# schema-validate the emitted JSONL trace. Exits nonzero on the first
# failure.
#
# Usage: tools/run_tier1.sh [jobs]
#
# Environment:
#   SLD_JUNIT_DIR  if set, ctest also writes <dir>/<config>.junit.xml
#                  (consumed by CI for test-report artifacts)
#   SLD_CHAOS=1    also run the full chaos campaign (tools/run_chaos.sh:
#                  200 seeded fault schedules with SLD_INVARIANT forced on)
#   SLD_STORM=1    also run an alert-storm-only chaos slice (the overload
#                  pipeline's bounded-harm and latency oracles under
#                  Zipf-skewed floods composed with crash/partition faults)
#   SLD_FRAMING=1  also run a framing-only chaos slice (colluding cliques
#                  running coordinated framing waves against the evidence
#                  lifecycle: zero permanent benign revocations and the
#                  coverage floor held, with invariants forced on)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${1:-$(nproc)}"

# Use ccache transparently when the host has it (CI restores its cache).
launcher_args=()
if command -v ccache > /dev/null 2>&1; then
  launcher_args=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_config() {
  local name="$1" build_type="$2" dir="$repo/build-$1"
  local junit_args=()
  if [[ -n "${SLD_JUNIT_DIR:-}" ]]; then
    mkdir -p "$SLD_JUNIT_DIR"
    junit_args=(--output-junit "$SLD_JUNIT_DIR/$name.junit.xml")
  fi
  echo "=== [$name] configure ($build_type) ==="
  cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE="$build_type" \
    -DSLD_BUILD_BENCH=ON -DSLD_BUILD_EXAMPLES=OFF "${launcher_args[@]}"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${junit_args[@]}"
  echo "=== [$name] traced smoke trial ==="
  "$dir/bench/ext_fault_tolerance" --fast --trials 1 \
    --trace "$dir/smoke_trace.jsonl" > /dev/null
  python3 "$repo/tools/trace_report.py" --validate "$dir/smoke_trace.jsonl"
}

run_config release Release
run_config sanitize Sanitize

if [[ "${SLD_CHAOS:-0}" == "1" ]]; then
  echo "=== chaos campaign (SLD_CHAOS=1) ==="
  "$repo/tools/run_chaos.sh" 200 "$jobs"
fi

if [[ "${SLD_STORM:-0}" == "1" ]]; then
  echo "=== alert-storm chaos slice (SLD_STORM=1) ==="
  SLD_CHAOS_FLAGS="--storm" "$repo/tools/run_chaos.sh" 100 "$jobs"
fi

if [[ "${SLD_FRAMING:-0}" == "1" ]]; then
  echo "=== framing chaos slice (SLD_FRAMING=1) ==="
  SLD_CHAOS_FLAGS="--framing" "$repo/tools/run_chaos.sh" 100 "$jobs"
fi

echo "=== tier-1 OK: Release + Sanitize suites passed ==="
