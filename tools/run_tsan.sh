#!/usr/bin/env bash
# TSan tier: build the Tsan configuration (-fsanitize=thread, see the
# top-level CMakeLists.txt build-type block) and run the concurrency
# surface under it — the executor pool and equivalence suites, the
# profiler's cross-thread merge, and the chaos campaign fanned over 4
# pool workers (plain and alert-storm). Any data race aborts the run
# (halt_on_error=1), so a green exit means the parallel trial path is
# race-clean, not just correct-by-luck.
#
# This is deliberately a focused slice, not the full suite: TSan costs
# 5-15x wall clock, and the single-threaded tests add no race coverage.
#
# Usage: tools/run_tsan.sh [jobs]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${1:-$(nproc)}"
dir="$repo/build-tsan"

# Use ccache transparently when the host has it (CI restores its cache).
launcher_args=()
if command -v ccache > /dev/null 2>&1; then
  launcher_args=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "=== [tsan] configure (Tsan) ==="
cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=Tsan \
  -DSLD_BUILD_BENCH=OFF -DSLD_BUILD_EXAMPLES=OFF "${launcher_args[@]}"
echo "=== [tsan] build ==="
cmake --build "$dir" -j "$jobs" --target \
  test_executor_pool test_executor test_profiler test_memstats chaos_campaign

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

echo "=== [tsan] executor pool property tests ==="
"$dir/tests/test_executor_pool"
echo "=== [tsan] serial-vs-parallel equivalence suite ==="
"$dir/tests/test_executor"
echo "=== [tsan] profiler cross-thread merge ==="
"$dir/tests/test_profiler"
echo "=== [tsan] memstats thread-local accounting, 4 workers ==="
"$dir/tests/test_memstats"
echo "=== [tsan] chaos campaign, 4 workers ==="
"$dir/tests/chaos/chaos_campaign" --schedules 12 --base-seed 1 --fast --jobs 4
echo "=== [tsan] alert-storm chaos slice, 4 workers ==="
"$dir/tests/chaos/chaos_campaign" --schedules 8 --base-seed 1 --fast --storm \
  --jobs 4

echo "=== tsan OK: concurrency slice is race-clean ==="
