#!/usr/bin/env python3
"""Chrome-trace / Perfetto exporter for sld profiler + telemetry output.

Usage:
    prof_report.py [--profile PROF.json] [--timeseries TS.jsonl] -o OUT.json
    prof_report.py --validate OUT.json [OUT.json ...]

Converts either or both of:

  * an `sld-profile/v1` snapshot (bench --profile FILE): the aggregated
    span tree becomes one flame-graph lane of "ph":"X" complete events.
    The profiler keeps totals, not per-call records, so timestamps are
    synthesized — each span starts where its parent (or elder sibling)
    left off and spans its total_ns. Wall positions are therefore
    schematic; widths, nesting, and the {calls, total_ns, self_ns} args
    are exact.

  * a `timeseries/v1` JSONL stream (bench --timeseries FILE): every
    per-window counter delta and gauge (the `mem.*` allocation mirrors,
    `hot.*` queue-depth/fan-out instruments, `mem.rss_kb`, breaker
    states, ...) becomes a "ph":"C" counter track sampled at the window
    edge; histogram quantiles surface as `<name>.p99` tracks. Window
    timestamps are sim time, so these tracks are deterministic.

The output is the Chrome Trace Event JSON-object format — load it at
chrome://tracing or ui.perfetto.dev. --validate structurally checks a
produced file (stdlib only, no jsonschema): traceEvents array, required
keys and types per phase, non-negative ts/dur. Exit codes: 0 ok,
1 validation failure, 2 bad input.
"""

import argparse
import json
import sys

PROFILE_SCHEMA = "sld-profile/v1"
TS_SCHEMA = "timeseries/v1"

# Trace-event layout: one fake process, spans and counters on separate
# tracks so Perfetto renders the flame lane above the counter tracks.
PID = 1
TID_SPANS = 1


def _meta(name, args, tid=None):
    ev = {"name": name, "ph": "M", "pid": PID, "args": args}
    if tid is not None:
        ev["tid"] = tid
    return ev


def spans_to_events(doc, path):
    """Flattens the sld-profile/v1 span tree into complete ("ph":"X")
    events with synthesized sequential timestamps (microseconds)."""
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"{path}: schema is '{doc.get('schema')}', "
            f"expected '{PROFILE_SCHEMA}'")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        raise ValueError(f"{path}: missing 'spans' array")

    events = []

    def emit(span, start_us):
        for key in ("name", "calls", "total_ns", "self_ns"):
            if key not in span:
                raise ValueError(f"{path}: span missing '{key}'")
        dur_us = span["total_ns"] / 1000.0
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": start_us,
            "dur": dur_us,
            "pid": PID,
            "tid": TID_SPANS,
            "args": {
                "calls": span["calls"],
                "total_ns": span["total_ns"],
                "self_ns": span["self_ns"],
            },
        })
        cursor = start_us
        for child in span.get("children", []):
            cursor = emit(child, cursor)
        return start_us + dur_us

    cursor = 0.0
    for root in spans:
        cursor = emit(root, cursor)
    return events


def _counter(name, ts_us, value):
    return {"name": name, "ph": "C", "ts": ts_us, "pid": PID,
            "args": {"value": value}}


def timeseries_to_events(lines, path):
    """Turns ts.window records into "ph":"C" counter tracks: one track
    per counter delta, gauge, and histogram p99, sampled at window-end
    sim time (ns -> us)."""
    events = []
    saw_meta = False
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}:{lineno}: {e}") from e
        kind = rec.get("e")
        if kind == "ts.meta":
            if rec.get("schema") != TS_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: schema is '{rec.get('schema')}', "
                    f"expected '{TS_SCHEMA}'")
            saw_meta = True
        elif kind == "ts.window":
            ts_us = rec.get("end", rec.get("t", 0)) / 1000.0
            for name, val in rec.get("deltas", {}).items():
                events.append(_counter(name, ts_us, val))
            for name, val in rec.get("gauges", {}).items():
                events.append(_counter(name, ts_us, val))
            for name, q in rec.get("hists", {}).items():
                events.append(_counter(name + ".p99", ts_us,
                                       q.get("p99", 0)))
        # Other record kinds (slo.breach markers, trial events when the
        # stream aliases the trace sink) carry no per-window samples.
    if not saw_meta:
        raise ValueError(f"{path}: no ts.meta header — not a "
                         f"{TS_SCHEMA} stream")
    return events


def build_trace(profile_path, timeseries_path):
    events = [_meta("process_name", {"name": "sld"})]
    if profile_path:
        with open(profile_path, encoding="utf-8") as f:
            doc = json.load(f)
        events.append(_meta("thread_name", {"name": "profiler spans"},
                            tid=TID_SPANS))
        events.extend(spans_to_events(doc, profile_path))
    if timeseries_path:
        with open(timeseries_path, encoding="utf-8") as f:
            events.extend(timeseries_to_events(f, timeseries_path))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _check(cond, path, msg):
    if not cond:
        raise ValueError(f"{path}: {msg}")


def validate_trace(path):
    """Structural check of a Chrome-trace JSON file produced by this
    tool (or anything trace-viewer-compatible in the JSON-object form)."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    _check(isinstance(doc, dict), path, "top level is not an object")
    events = doc.get("traceEvents")
    _check(isinstance(events, list), path, "traceEvents is not an array")
    _check(len(events) > 0, path, "traceEvents is empty")
    num = (int, float)
    for i, ev in enumerate(events):
        ctx = f"traceEvents[{i}]"
        _check(isinstance(ev, dict), path, f"{ctx}: not an object")
        _check(isinstance(ev.get("name"), str), path,
               f"{ctx}: missing string 'name'")
        ph = ev.get("ph")
        _check(ph in ("X", "C", "M", "I", "B", "E"), path,
               f"{ctx}: unsupported phase '{ph}'")
        _check(isinstance(ev.get("pid"), int), path,
               f"{ctx}: missing int 'pid'")
        if ph == "M":
            continue
        ts = ev.get("ts")
        _check(isinstance(ts, num) and not isinstance(ts, bool), path,
               f"{ctx}: missing numeric 'ts'")
        _check(ts >= 0, path, f"{ctx}: negative ts")
        if ph == "X":
            dur = ev.get("dur")
            _check(isinstance(dur, num) and not isinstance(dur, bool),
                   path, f"{ctx}: 'X' event missing numeric 'dur'")
            _check(dur >= 0, path, f"{ctx}: negative dur")
        if ph == "C":
            value = (ev.get("args") or {}).get("value")
            _check(isinstance(value, num) and not isinstance(value, bool),
                   path, f"{ctx}: 'C' event missing numeric args.value")
    return len(events)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--profile", metavar="FILE",
                    help="sld-profile/v1 snapshot (bench --profile)")
    ap.add_argument("--timeseries", metavar="FILE",
                    help="timeseries/v1 JSONL stream (bench --timeseries)")
    ap.add_argument("-o", "--output", metavar="FILE",
                    help="write the Chrome-trace JSON here "
                         "(default: stdout)")
    ap.add_argument("--validate", nargs="+", metavar="FILE",
                    help="structurally check Chrome-trace files instead "
                         "of converting")
    args = ap.parse_args(argv)

    if args.validate:
        failures = 0
        for path in args.validate:
            try:
                n = validate_trace(path)
                print(f"ok: {path} ({n} events)")
            except (OSError, json.JSONDecodeError, ValueError) as e:
                print(f"invalid: {e}", file=sys.stderr)
                failures += 1
        return 1 if failures else 0

    if not args.profile and not args.timeseries:
        ap.error("need --profile and/or --timeseries (or --validate)")
    try:
        trace = build_trace(args.profile, args.timeseries)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"prof_report: {e}", file=sys.stderr)
        return 2
    out = json.dumps(trace, indent=1)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(out + "\n")
        spans = sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
        counters = sum(1 for e in trace["traceEvents"] if e["ph"] == "C")
        print(f"wrote {args.output}: {spans} spans, "
              f"{counters} counter samples")
    else:
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
