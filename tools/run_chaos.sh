#!/usr/bin/env bash
# Chaos campaign gate: build an optimized configuration with SLD_INVARIANT
# checks forced ON, then run >= 200 seeded randomized fault schedules
# (crash/reboot windows, partitions, clock drift, loss/duplication, WAL-backed
# base-station outages, standby failover) through the convergence oracles in
# tests/chaos/chaos_campaign.cpp. Exits nonzero if any schedule fails; each
# failure prints a one-line `SLD_CHAOS_SEED=<seed>` repro and, because
# --trace-dir is set, a JSONL trace of the failing schedule for forensics.
#
# Usage: tools/run_chaos.sh [schedules] [jobs]
#
# Environment:
#   SLD_CHAOS_SEED   replay exactly one schedule instead of the campaign
#   SLD_CHAOS_TRACE  override the trace output directory
#   SLD_CHAOS_FLAGS  extra flags passed through to chaos_campaign
#                    (e.g. "--storm" for the alert-storm-only family,
#                    "--fast" for CI-sized schedules)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
schedules="${1:-200}"
jobs="${2:-$(nproc)}"
dir="$repo/build-chaos"
trace_dir="${SLD_CHAOS_TRACE:-$dir/chaos-traces}"

launcher_args=()
if command -v ccache > /dev/null 2>&1; then
  launcher_args=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "=== [chaos] configure (RelWithDebInfo, SLD_INVARIANTS=ON) ==="
cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLD_INVARIANTS=ON -DSLD_BUILD_BENCH=OFF -DSLD_BUILD_EXAMPLES=OFF \
  "${launcher_args[@]}"
echo "=== [chaos] build ==="
cmake --build "$dir" --target chaos_campaign -j "$jobs"

extra_flags=()
if [[ -n "${SLD_CHAOS_FLAGS:-}" ]]; then
  # shellcheck disable=SC2206  # deliberate word-splitting of the flag string
  extra_flags=(${SLD_CHAOS_FLAGS})
fi

mkdir -p "$trace_dir"
echo "=== [chaos] campaign: $schedules schedules ${SLD_CHAOS_FLAGS:-} ==="
"$dir/tests/chaos/chaos_campaign" --schedules "$schedules" --base-seed 1 \
  --trace-dir "$trace_dir" "${extra_flags[@]}"

echo "=== chaos OK: $schedules schedules, zero oracle/invariant failures ==="
