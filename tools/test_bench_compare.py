#!/usr/bin/env python3
"""Unit tests for bench_compare.py: schema validation on known-good and
deliberately broken fixtures, and the regression gate on a no-regression
pair vs an injected ~50% slowdown.

Run from tools/:  python3 -m unittest test_bench_compare
(registered as the `bench_compare_unittest` ctest target).
"""

import contextlib
import io
import json
import os
import tempfile
import unittest

import bench_compare

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
BASELINE = os.path.join(FIXTURES, "bench_baseline")
CANDIDATE = os.path.join(FIXTURES, "bench_candidate")
MALFORMED = os.path.join(FIXTURES, "bench_malformed.json")
WRONG_SCHEMA = os.path.join(FIXTURES, "bench_wrong_schema.json")
MISSING_FIELD = os.path.join(FIXTURES, "bench_missing_field.json")
GOOD = os.path.join(BASELINE, "BENCH_fig06_revocation_rate.json")


def run_main(argv):
    with contextlib.redirect_stdout(io.StringIO()) as out, \
            contextlib.redirect_stderr(io.StringIO()) as err:
        code = bench_compare.main(argv)
    return code, out.getvalue(), err.getvalue()


class ValidateFixtures(unittest.TestCase):
    def test_good_file_passes(self):
        code, out, _ = run_main(["--validate", GOOD])
        self.assertEqual(code, 0)
        self.assertIn("ok:", out)

    def test_malformed_json_rejected(self):
        code, _, err = run_main(["--validate", MALFORMED])
        self.assertEqual(code, 1)
        self.assertIn("invalid:", err)

    def test_wrong_schema_tag_rejected(self):
        code, _, err = run_main(["--validate", WRONG_SCHEMA])
        self.assertEqual(code, 1)
        self.assertIn("schema", err)

    def test_missing_field_rejected(self):
        code, _, err = run_main(["--validate", MISSING_FIELD])
        self.assertEqual(code, 1)
        self.assertIn("wall_ms", err)

    def test_load_result_raises_on_malformed(self):
        with self.assertRaises(bench_compare.SchemaError):
            bench_compare.load_result(MALFORMED)


class CompareGate(unittest.TestCase):
    def test_identical_dirs_pass(self):
        code, out, _ = run_main([BASELINE, BASELINE])
        self.assertEqual(code, 0)
        self.assertIn("no regressions", out)

    def test_injected_regression_exits_nonzero(self):
        # Candidate holds fig06 within noise and fig11 slowed by 50%.
        code, out, _ = run_main([BASELINE, CANDIDATE])
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("fig11_deployment", out)
        # The within-noise bench is reported ok, not as a regression.
        for line in out.splitlines():
            if line.startswith("fig06_revocation_rate"):
                self.assertTrue(line.rstrip().endswith("ok"))
                break
        else:
            self.fail("fig06 row missing from the delta table")

    def test_threshold_can_waive_the_regression(self):
        code, _, _ = run_main([BASELINE, CANDIDATE, "--threshold-pct", "60"])
        self.assertEqual(code, 0)

    def test_mad_mult_widens_noise_floor(self):
        # 50% delta, baseline median 100, summed MADs 4: 13 * 4 / 100 = 52%.
        code, _, _ = run_main([BASELINE, CANDIDATE, "--mad-mult", "13"])
        self.assertEqual(code, 0)

    def test_single_files_compare(self):
        code, out, _ = run_main([GOOD, GOOD])
        self.assertEqual(code, 0)
        self.assertIn("fig06_revocation_rate", out)

    def test_disjoint_sets_are_an_error(self):
        other = os.path.join(CANDIDATE, "BENCH_fig11_deployment.json")
        code, _, err = run_main([GOOD, other])
        self.assertEqual(code, 2)
        self.assertIn("in common", err)

    def test_malformed_candidate_is_input_error(self):
        code, _, err = run_main([GOOD, MALFORMED])
        self.assertEqual(code, 2)
        self.assertIn("bench_compare:", err)


class SpeedupGate(unittest.TestCase):
    """--speedup mode: events_per_sec ratio against --min-speedup (the
    ext_parallel_scaling jobs-scaling gate)."""

    def _with_rate(self, rate):
        doc = bench_compare.load_result(GOOD)
        doc["throughput"]["events_per_sec"] = rate
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        json.dump(doc, f)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name

    def test_sufficient_speedup_passes(self):
        base = self._with_rate(1000.0)
        cand = self._with_rate(2600.0)
        code, out, _ = run_main(["--speedup", base, cand])
        self.assertEqual(code, 0)
        self.assertIn("2.60x", out)

    def test_insufficient_speedup_fails(self):
        base = self._with_rate(1000.0)
        cand = self._with_rate(1200.0)
        code, out, _ = run_main(["--speedup", base, cand])
        self.assertEqual(code, 1)
        self.assertIn("TOO SLOW", out)

    def test_min_speedup_flag_lowers_the_floor(self):
        base = self._with_rate(1000.0)
        cand = self._with_rate(1200.0)
        code, _, _ = run_main(
            ["--speedup", base, cand, "--min-speedup", "1.1"])
        self.assertEqual(code, 0)

    def test_identical_files_fail_the_default_floor(self):
        code, out, _ = run_main(["--speedup", GOOD, GOOD])
        self.assertEqual(code, 1)
        self.assertIn("1.00x", out)


class ExactGate(unittest.TestCase):
    """--exact / --require-equal: the deterministic memstats-counter gate
    (the CI mem-smoke job's regression and jobs-invariance checks)."""

    def _with_memstats(self, **overrides):
        doc = bench_compare.load_result(GOOD)
        ms = {f: 100 for f in bench_compare.EXACT_FIELDS}
        ms.update(overrides)
        doc["memstats"] = ms
        f = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False)
        json.dump(doc, f)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name

    def test_equal_counts_pass_both_modes(self):
        base = self._with_memstats()
        for flag in ("--exact", "--require-equal"):
            code, out, _ = run_main([flag, base, base])
            self.assertEqual(code, 0, flag)
            self.assertIn("gate clean", out)

    def test_extra_allocs_fail_and_are_named(self):
        base = self._with_memstats()
        cand = self._with_memstats(allocs=101)
        code, out, _ = run_main(["--exact", base, cand])
        self.assertEqual(code, 1)
        # The exit-1 summary line names the bench AND the metric.
        summary = out.splitlines()[-1]
        self.assertIn("memstats.allocs", summary)
        self.assertIn("100 -> 101", summary)
        self.assertIn("fig06_revocation_rate", summary)

    def test_fewer_scans_pass_exact_but_fail_require_equal(self):
        base = self._with_memstats()
        cand = self._with_memstats(scans=99)
        code, _, _ = run_main(["--exact", base, cand])
        self.assertEqual(code, 0)
        code, out, _ = run_main(["--require-equal", base, cand])
        self.assertEqual(code, 1)
        self.assertIn("memstats.scans", out.splitlines()[-1])

    def test_missing_memstats_on_one_side_fails(self):
        base = self._with_memstats()
        code, out, _ = run_main(["--exact", base, GOOD])
        self.assertEqual(code, 1)
        self.assertIn("missing in candidate", out.splitlines()[-1])

    def test_no_memstats_anywhere_fails_closed(self):
        # A gate that gated nothing is a misconfigured job, not a pass.
        code, out, _ = run_main(["--exact", GOOD, GOOD])
        self.assertEqual(code, 1)
        self.assertIn("--memstats", out)

    def test_peak_live_bytes_is_not_gated(self):
        base = self._with_memstats(peak_live_bytes=1000)
        cand = self._with_memstats(peak_live_bytes=9999)
        code, _, _ = run_main(["--require-equal", base, cand])
        self.assertEqual(code, 0)


class NamedRegressionSummary(unittest.TestCase):
    def test_wall_time_summary_names_bench_and_metric(self):
        code, out, _ = run_main([BASELINE, CANDIDATE])
        self.assertEqual(code, 1)
        summary = out.splitlines()[-1]
        self.assertIn("fig11_deployment[wall_ms.median", summary)

    def test_speedup_summary_names_bench_and_metric(self):
        code, out, _ = run_main(["--speedup", GOOD, GOOD])
        self.assertEqual(code, 1)
        summary = out.splitlines()[-1]
        self.assertIn("fig06_revocation_rate[events_per_sec 1.00x]",
                      summary)


class SelfCheck(unittest.TestCase):
    def test_self_check_passes(self):
        code, out, _ = run_main(["--self-check"])
        self.assertEqual(code, 0)
        self.assertIn("PASS", out)
        self.assertNotIn("FAIL", out)


if __name__ == "__main__":
    unittest.main()
