#!/usr/bin/env python3
"""Perf-regression gate over sld-bench-result/v1 files.

Usage:
    bench_compare.py BASELINE CANDIDATE [--threshold-pct P] [--mad-mult K]
    bench_compare.py --speedup BASELINE CANDIDATE --min-speedup X
    bench_compare.py --exact BASELINE CANDIDATE
    bench_compare.py --require-equal BASELINE CANDIDATE
    bench_compare.py --validate FILE [FILE ...]
    bench_compare.py --self-check

BASELINE and CANDIDATE are each a BENCH_<name>.json file or a directory of
them (as produced by tools/run_benches.sh); directories are matched by
file name. A bench regresses when its candidate median wall time exceeds
the baseline median by more than the noise threshold:

    allowed = max(threshold_pct/100, mad_mult * (mad_b + mad_c) / median_b)

i.e. the gate never fires inside the measured noise floor (median absolute
deviations of both runs, scaled by --mad-mult) nor under a flat relative
floor (--threshold-pct, default 10%). With --repeats 1 the MADs are zero
and the flat floor alone applies. Exit codes: 0 no regression, 1 at least
one regression (or validation failure), 2 bad input. Stdlib only.

--speedup inverts the gate: the CANDIDATE must be FASTER than the
BASELINE by at least --min-speedup x, measured on
throughput.events_per_sec (the jobs-scaling gate: baseline = --jobs 1,
candidate = --jobs N of the same bench at the same seed).

--exact gates on the deterministic integer counters of the "memstats"
block (present when the bench ran with --memstats): the candidate FAILS
if any of allocs / alloc_bytes / frees / freed_bytes / max_queue_depth /
sift_up_steps / sift_down_steps / scans / scan_nodes EXCEEDS the
baseline. No noise floor: these counts are pure functions of (code,
flags, seed), so a +1 is a real regression. peak_live_bytes and the
derived p99/mean fields are excluded — they are thread-layout- or
float-sensitive. --require-equal is the stricter variant: ANY difference
(either direction) fails; use it to assert --jobs 1 vs --jobs N
invariance of the memstats roll-up.

Every exit-1 summary line names exactly which bench and metric failed.

See DESIGN.md "Performance observability" for the result schema.
"""

import argparse
import json
import os
import sys

SCHEMA_NAME = "sld-bench-result/v1"

# Deterministic integer counters of the optional "memstats" block, gated
# exactly (no noise floor). peak_live_bytes is deliberately absent: it is
# a sum of per-thread high-water marks, so it varies with thread layout.
EXACT_FIELDS = (
    "allocs", "alloc_bytes", "frees", "freed_bytes", "max_queue_depth",
    "sift_up_steps", "sift_down_steps", "scans", "scan_nodes",
)

# Required fields (and subfields) of a result file. Append-only: extra
# fields are always allowed, so producers can grow the schema freely.
REQUIRED = {
    "schema": str,
    "name": str,
    "args": dict,
    "wall_ms": dict,
    "throughput": dict,
    "peak_rss_bytes": int,
    "host": dict,
}
REQUIRED_WALL = {"repeats": list, "median": (int, float), "mad": (int, float)}
REQUIRED_ARGS = {"trials": int, "seed": int, "fast": bool,
                 "repeats": int, "warmup": int}
REQUIRED_THROUGHPUT = {"sim_events": int, "packets": int, "trials": int}


class SchemaError(Exception):
    pass


def _require(obj, spec, ctx):
    for key, typ in spec.items():
        if key not in obj:
            raise SchemaError(f"{ctx}: missing field '{key}'")
        if not isinstance(obj[key], typ):
            raise SchemaError(
                f"{ctx}: field '{key}' has type {type(obj[key]).__name__}")
        # bool is an int subclass; "int" fields must not be booleans.
        if typ is int and isinstance(obj[key], bool):
            raise SchemaError(f"{ctx}: field '{key}' is a bool, expected int")


def load_result(path):
    """Loads and schema-checks one result file. Raises SchemaError."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SchemaError(f"{path}: {e}") from e
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not an object")
    _require(doc, REQUIRED, path)
    if doc["schema"] != SCHEMA_NAME:
        raise SchemaError(
            f"{path}: schema is '{doc['schema']}', expected '{SCHEMA_NAME}'")
    _require(doc["wall_ms"], REQUIRED_WALL, f"{path}: wall_ms")
    _require(doc["args"], REQUIRED_ARGS, f"{path}: args")
    _require(doc["throughput"], REQUIRED_THROUGHPUT, f"{path}: throughput")
    if not doc["wall_ms"]["repeats"]:
        raise SchemaError(f"{path}: wall_ms.repeats is empty")
    for v in doc["wall_ms"]["repeats"]:
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            raise SchemaError(f"{path}: non-numeric entry in wall_ms.repeats")
    if doc["wall_ms"]["median"] < 0 or doc["wall_ms"]["mad"] < 0:
        raise SchemaError(f"{path}: negative wall_ms statistics")
    return doc


def collect(path):
    """Returns {bench name: result dict} for a file or directory."""
    if os.path.isdir(path):
        out = {}
        for fn in sorted(os.listdir(path)):
            if fn.startswith("BENCH_") and fn.endswith(".json"):
                doc = load_result(os.path.join(path, fn))
                out[doc["name"]] = doc
        if not out:
            raise SchemaError(f"{path}: no BENCH_*.json files")
        return out
    doc = load_result(path)
    return {doc["name"]: doc}


def compare_one(base, cand, threshold_pct, mad_mult):
    """Returns (delta_frac, allowed_frac, regressed)."""
    mb = base["wall_ms"]["median"]
    mc = cand["wall_ms"]["median"]
    if mb <= 0:
        # A zero-time baseline cannot regress measurably; never gate on it.
        return 0.0, threshold_pct / 100.0, False
    noise = mad_mult * (base["wall_ms"]["mad"] + cand["wall_ms"]["mad"]) / mb
    allowed = max(threshold_pct / 100.0, noise)
    delta = (mc - mb) / mb
    return delta, allowed, delta > allowed


def run_compare(baseline_path, candidate_path, threshold_pct, mad_mult):
    base = collect(baseline_path)
    cand = collect(candidate_path)
    common = sorted(set(base) & set(cand))
    if not common:
        raise SchemaError("no bench names in common between baseline and "
                          "candidate")

    header = (f"{'bench':34s} {'base_ms':>10s} {'cand_ms':>10s} "
              f"{'delta':>8s} {'allowed':>8s}  verdict")
    print(header)
    print("-" * len(header))
    regressed = []
    for name in common:
        delta, allowed, bad = compare_one(base[name], cand[name],
                                          threshold_pct, mad_mult)
        if bad:
            regressed.append(f"{name}[wall_ms.median {delta * 100:+.1f}%]")
        verdict = "REGRESSION" if bad else "ok"
        print(f"{name:34s} {base[name]['wall_ms']['median']:10.2f} "
              f"{cand[name]['wall_ms']['median']:10.2f} "
              f"{delta * 100:+7.1f}% {allowed * 100:7.1f}%  {verdict}")
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"# only in baseline (skipped): {', '.join(only_base)}")
    if only_cand:
        print(f"# only in candidate (skipped): {', '.join(only_cand)}")
    if regressed:
        print(f"# {len(regressed)} regression(s) out of {len(common)} "
              f"bench(es): {', '.join(regressed)}")
        return 1
    print(f"# no regressions across {len(common)} bench(es)")
    return 0


def speedup_of(base, cand):
    """candidate events/sec over baseline events/sec (0.0 when the
    baseline rate is missing or zero — which then always fails the gate)."""
    eb = base["throughput"].get("events_per_sec") or 0.0
    ec = cand["throughput"].get("events_per_sec") or 0.0
    if eb <= 0:
        return 0.0
    return ec / eb


def run_speedup(baseline_path, candidate_path, min_speedup):
    base = collect(baseline_path)
    cand = collect(candidate_path)
    common = sorted(set(base) & set(cand))
    if not common:
        raise SchemaError("no bench names in common between baseline and "
                          "candidate")
    header = (f"{'bench':34s} {'base_ev/s':>12s} {'cand_ev/s':>12s} "
              f"{'speedup':>8s} {'floor':>6s}  verdict")
    print(header)
    print("-" * len(header))
    failed = []
    for name in common:
        s = speedup_of(base[name], cand[name])
        bad = s < min_speedup
        if bad:
            failed.append(f"{name}[events_per_sec {s:.2f}x]")
        print(f"{name:34s} "
              f"{base[name]['throughput'].get('events_per_sec') or 0:12.0f} "
              f"{cand[name]['throughput'].get('events_per_sec') or 0:12.0f} "
              f"{s:7.2f}x {min_speedup:5.2f}x  "
              f"{'TOO SLOW' if bad else 'ok'}")
    if failed:
        print(f"# {len(failed)} bench(es) under the {min_speedup:.2f}x "
              f"speedup floor: {', '.join(failed)}")
        return 1
    print(f"# all {len(common)} bench(es) at or above "
          f"{min_speedup:.2f}x")
    return 0


def exact_failures(ms_b, ms_c, require_equal):
    """Returns [(field, base, cand)] for every EXACT_FIELDS counter that
    fails the gate (candidate > baseline, or any difference when
    require_equal)."""
    out = []
    for field in EXACT_FIELDS:
        vb = ms_b.get(field, 0)
        vc = ms_c.get(field, 0)
        if (vb != vc) if require_equal else (vc > vb):
            out.append((field, vb, vc))
    return out


def run_exact(baseline_path, candidate_path, require_equal):
    """Exact-count gate over the memstats block. In --exact mode the
    candidate fails when any EXACT_FIELDS counter exceeds the baseline;
    with require_equal, any difference in either direction fails."""
    base = collect(baseline_path)
    cand = collect(candidate_path)
    common = sorted(set(base) & set(cand))
    if not common:
        raise SchemaError("no bench names in common between baseline and "
                          "candidate")
    mode = "require-equal" if require_equal else "exact"
    header = (f"{'bench.metric':48s} {'base':>14s} {'cand':>14s}  verdict")
    print(header)
    print("-" * len(header))
    failed = []
    skipped = []
    gated = 0
    for name in common:
        ms_b = base[name].get("memstats")
        ms_c = cand[name].get("memstats")
        if ms_b is None and ms_c is None:
            skipped.append(name)
            continue
        if ms_b is None or ms_c is None:
            side = "baseline" if ms_b is None else "candidate"
            failed.append(f"{name}[memstats missing in {side}]")
            print(f"{name + '.memstats':48s} {'-':>14s} {'-':>14s}  "
                  f"MISSING ({side})")
            continue
        gated += 1
        bad_fields = {f for f, _, _ in
                      exact_failures(ms_b, ms_c, require_equal)}
        for field in EXACT_FIELDS:
            vb = ms_b.get(field, 0)
            vc = ms_c.get(field, 0)
            bad = field in bad_fields
            if bad:
                failed.append(f"{name}[memstats.{field} {vb} -> {vc}]")
            verdict = ("DIFFERS" if require_equal else "REGRESSION") \
                if bad else "ok"
            print(f"{name + '.' + field:48s} {vb:14d} {vc:14d}  {verdict}")
    if skipped:
        print(f"# no memstats block on either side (skipped): "
              f"{', '.join(skipped)}")
    if failed:
        print(f"# {len(failed)} {mode} failure(s): {', '.join(failed)}")
        return 1
    if gated == 0:
        # An exact gate that gated nothing is a misconfigured CI job, not
        # a pass: the bench was probably run without --memstats.
        print(f"# {mode} gate matched no memstats blocks "
              f"(run the benches with --memstats)")
        return 1
    print(f"# {mode} gate clean across {gated} bench(es), "
          f"{len(EXACT_FIELDS)} counters each")
    return 0


def _synthetic(name, medians, mad=0.0):
    return {
        "schema": SCHEMA_NAME,
        "name": name,
        "args": {"trials": 1, "seed": 1, "fast": True,
                 "repeats": len(medians), "warmup": 0},
        "wall_ms": {"repeats": medians,
                    "median": sorted(medians)[len(medians) // 2],
                    "mad": mad},
        "throughput": {"sim_events": 10, "packets": 5, "trials": 1},
        "peak_rss_bytes": 1 << 20,
        "host": {"os": "self-check"},
    }


def self_check():
    """Exercises the gate logic on synthetic results; exits nonzero on any
    surprise. Cheap enough for CI to run on every push."""
    checks = []

    # Identical runs: never a regression.
    a = _synthetic("x", [100.0])
    d, _, bad = compare_one(a, a, 10.0, 3.0)
    checks.append(("identical inputs pass", not bad and d == 0.0))

    # A 50% slowdown trips the default 10% floor.
    b = _synthetic("x", [150.0])
    _, _, bad = compare_one(a, b, 10.0, 3.0)
    checks.append(("50% slowdown is a regression", bad))

    # A 5% delta stays inside the 10% floor.
    c = _synthetic("x", [105.0])
    _, _, bad = compare_one(a, c, 10.0, 3.0)
    checks.append(("5% delta is inside the flat floor", bad is False))

    # Wide MADs raise the allowance above the flat floor.
    noisy_a = _synthetic("x", [100.0, 90.0, 110.0], mad=10.0)
    noisy_b = _synthetic("x", [125.0, 115.0, 135.0], mad=10.0)
    _, allowed, bad = compare_one(noisy_a, noisy_b, 10.0, 3.0)
    checks.append(("MAD noise widens the allowance", allowed > 0.10))
    checks.append(("25% delta inside 3*(10+10)/100 noise passes", not bad))

    # Speedups never fire.
    fast = _synthetic("x", [50.0])
    _, _, bad = compare_one(a, fast, 10.0, 3.0)
    checks.append(("speedup passes", not bad))

    # --speedup gate: events/sec ratio against the floor.
    slow_tp = _synthetic("x", [100.0])
    slow_tp["throughput"]["events_per_sec"] = 1000.0
    fast_tp = _synthetic("x", [100.0])
    fast_tp["throughput"]["events_per_sec"] = 3000.0
    checks.append(("3x throughput clears a 2.5x floor",
                   speedup_of(slow_tp, fast_tp) >= 2.5))
    checks.append(("1x throughput fails a 2.5x floor",
                   speedup_of(slow_tp, slow_tp) < 2.5))
    no_tp = _synthetic("x", [100.0])
    checks.append(("missing events_per_sec fails closed",
                   speedup_of(no_tp, fast_tp) == 0.0))

    # Exact memstats gate: +1 alloc is a regression, equal counts pass,
    # fewer allocs pass --exact but fail --require-equal.
    ms = {f: 100 for f in EXACT_FIELDS}
    ms_more = dict(ms, allocs=101)
    ms_less = dict(ms, scans=99)
    checks.append(("equal counts pass the exact gate",
                   exact_failures(ms, ms, False) == []))
    checks.append(("one extra alloc fails the exact gate",
                   exact_failures(ms, ms_more, False) ==
                   [("allocs", 100, 101)]))
    checks.append(("fewer scans pass --exact",
                   exact_failures(ms, ms_less, False) == []))
    checks.append(("fewer scans fail --require-equal",
                   exact_failures(ms, ms_less, True) ==
                   [("scans", 100, 99)]))
    checks.append(("missing candidate field gates as 0",
                   exact_failures({"allocs": 1}, {}, True) ==
                   [("allocs", 1, 0)]))

    # Schema validation rejects a wrong schema tag.
    broken = _synthetic("x", [1.0])
    broken["schema"] = "bogus/v0"
    try:
        _require(broken, REQUIRED, "synthetic")
        rejected = broken["schema"] != SCHEMA_NAME
    except SchemaError:
        rejected = True
    checks.append(("wrong schema tag is rejected", rejected))

    ok = True
    for label, passed in checks:
        print(f"{'PASS' if passed else 'FAIL'}: {label}")
        ok = ok and passed
    return 0 if ok else 1


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?", help="baseline file or directory")
    ap.add_argument("candidate", nargs="?", help="candidate file or directory")
    ap.add_argument("--threshold-pct", type=float, default=10.0,
                    help="flat relative regression floor in percent "
                         "(default: 10)")
    ap.add_argument("--mad-mult", type=float, default=3.0,
                    help="noise allowance = this many summed MADs "
                         "(default: 3)")
    ap.add_argument("--validate", nargs="+", metavar="FILE",
                    help="schema-check result files instead of comparing")
    ap.add_argument("--self-check", action="store_true",
                    help="run the built-in gate-logic checks and exit")
    ap.add_argument("--speedup", action="store_true",
                    help="gate on CANDIDATE being at least --min-speedup "
                         "times BASELINE's events_per_sec instead of on "
                         "wall-time regression")
    ap.add_argument("--min-speedup", type=float, default=2.5,
                    help="required events_per_sec ratio for --speedup "
                         "(default: 2.5)")
    ap.add_argument("--exact", action="store_true",
                    help="gate on the deterministic memstats counters: "
                         "fail if any exceeds the baseline (no noise "
                         "floor)")
    ap.add_argument("--require-equal", action="store_true",
                    help="like --exact but ANY memstats-counter "
                         "difference fails (jobs-invariance gate)")
    args = ap.parse_args(argv)

    if args.self_check:
        return self_check()

    if args.validate:
        failures = 0
        for path in args.validate:
            try:
                doc = load_result(path)
                print(f"ok: {path} ({doc['name']})")
            except SchemaError as e:
                print(f"invalid: {e}", file=sys.stderr)
                failures += 1
        return 1 if failures else 0

    if not args.baseline or not args.candidate:
        ap.error("need BASELINE and CANDIDATE (or --validate/--self-check)")
    try:
        if args.exact or args.require_equal:
            return run_exact(args.baseline, args.candidate,
                             args.require_equal)
        if args.speedup:
            return run_speedup(args.baseline, args.candidate,
                               args.min_speedup)
        return run_compare(args.baseline, args.candidate,
                           args.threshold_pct, args.mad_mult)
    except SchemaError as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
