#!/usr/bin/env python3
"""Timeline reporting over `timeseries/v1` telemetry streams.

Usage:
    ts_report.py TS.jsonl                     # per-metric sparkline report
    ts_report.py --validate TS.jsonl          # schema check, exit 1 on errors
    ts_report.py --dashboard TS.jsonl         # storm/failover dashboard
    ts_report.py --metric NAME TS.jsonl       # only the named metric(s)
    ts_report.py --expect-breach RULE --expect-recover RULE TS.jsonl
                                              # CI assertions, exit 1 if unmet

The stream is produced by the `--timeseries FILE` bench flag (or a
telemetry-enabled SystemConfig): one `ts.meta` header per trial followed by
one `ts.window` record per closed sampling window, with `slo.breach` /
`slo.recover` transitions interleaved (see DESIGN.md "Streaming telemetry &
SLO monitors"). Validation checks the schema AND the stream's internal
arithmetic: contiguous window indices and edges, per-window deltas
consistent with the cumulative counters, cumulative counters monotone.
Stdlib only.
"""

import argparse
import json
import sys

SCHEMA_NAME = "timeseries/v1"

# Sparkline intensity ramp, blank = zero, '@' = the metric's maximum.
RAMP = " .:-=+*#%@"

# The dashboard's curated tracks (shown when present in the stream).
DASHBOARD_COUNTERS = [
    "bs.ingest.submitted",
    "bs.ingest.accepted",
    "bs.ingest.rate_limited",
    "bs.ingest.shed",
    "bs.ingest.committed",
    "bs.revocations",
    "channel.tx",
    "channel.drops",
    "alerts.submitted",
]
DASHBOARD_GAUGES = [
    "bs.ingest.breaker_state",
    "bs.cluster.in_service",
    "sched.pending",
    "mem.rss_kb",
]


def load(path):
    """Yields (line_number, record) pairs; raises on unparsable lines."""
    with open(path, "r", encoding="utf-8") as fh:
        for n, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            yield n, json.loads(line)


# --- validation -------------------------------------------------------------

REQUIRED = {
    "ts.meta": ["schema", "cadence_ns", "seed"],
    "ts.window": ["idx", "start", "end", "counters", "deltas", "gauges",
                  "hists"],
    "slo.breach": ["rule", "value", "threshold", "window", "windows"],
    "slo.recover": ["rule", "value", "threshold", "window", "windows"],
}


def validate(path):
    errors = []
    count = 0
    in_segment = False
    prev_idx = None
    prev_end = None
    prev_counters = {}
    try:
        for n, rec in load(path):
            count += 1
            if not isinstance(rec, dict):
                errors.append(f"line {n}: not a JSON object")
                continue
            etype = rec.get("e")
            if not isinstance(etype, str):
                errors.append(f"line {n}: 'e' missing or not a string")
                continue
            if etype not in REQUIRED:
                errors.append(
                    f"line {n}: unexpected event '{etype}' in a "
                    f"timeseries stream")
                continue
            missing = [k for k in REQUIRED[etype] if k not in rec]
            if missing:
                errors.append(f"line {n}: {etype} missing field(s) {missing}")
                continue
            if etype == "ts.meta":
                if rec["schema"] != SCHEMA_NAME:
                    errors.append(
                        f"line {n}: schema '{rec['schema']}' != "
                        f"'{SCHEMA_NAME}'")
                if not isinstance(rec["cadence_ns"], int) or \
                        rec["cadence_ns"] <= 0:
                    errors.append(f"line {n}: cadence_ns must be a positive "
                                  f"integer")
                in_segment = True
                prev_idx = None
                prev_end = None
                prev_counters = {}
            elif etype == "ts.window":
                if not in_segment:
                    errors.append(f"line {n}: ts.window before any ts.meta")
                    in_segment = True  # report it once, keep checking
                idx, start, end = rec["idx"], rec["start"], rec["end"]
                if prev_idx is not None and idx != prev_idx + 1:
                    errors.append(
                        f"line {n}: window idx {idx} is not contiguous "
                        f"(previous {prev_idx})")
                if end <= start:
                    errors.append(
                        f"line {n}: window end {end} <= start {start}")
                if prev_end is not None and start != prev_end:
                    errors.append(
                        f"line {n}: window start {start} != previous "
                        f"end {prev_end}")
                counters, deltas = rec["counters"], rec["deltas"]
                for name, cum in counters.items():
                    before = prev_counters.get(name, 0)
                    if cum < before:
                        errors.append(
                            f"line {n}: counter '{name}' went backwards "
                            f"({cum} < {before})")
                    delta = deltas.get(name)
                    if delta is None:
                        errors.append(
                            f"line {n}: counter '{name}' has no delta")
                    elif cum - before != delta:
                        errors.append(
                            f"line {n}: '{name}' delta {delta} != "
                            f"cumulative step {cum - before}")
                prev_idx, prev_end = idx, end
                prev_counters = dict(counters)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(str(exc))
    for e in errors[:50]:
        print(f"INVALID: {e}", file=sys.stderr)
    if len(errors) > 50:
        print(f"... and {len(errors) - 50} more", file=sys.stderr)
    if errors:
        return 1
    print(f"OK: {count} records, all schema-valid and self-consistent")
    return 0


# --- report -----------------------------------------------------------------

def parse_stream(path):
    """Returns (meta, windows, slo_events) from the first trial segment."""
    meta = None
    windows = []
    slo_events = []
    for _, rec in load(path):
        etype = rec.get("e")
        if etype == "ts.meta":
            if meta is not None:
                break  # report the first trial only
            meta = rec
        elif etype == "ts.window":
            windows.append(rec)
        elif etype in ("slo.breach", "slo.recover"):
            slo_events.append(rec)
    return meta, windows, slo_events


def sparkline(values, width=72):
    """One character per window (chunk-maxed down to `width` columns)."""
    if not values:
        return ""
    if len(values) > width:
        chunk = (len(values) + width - 1) // width
        values = [max(values[i:i + chunk])
                  for i in range(0, len(values), chunk)]
    peak = max(values)
    if peak <= 0:
        return RAMP[0] * len(values)
    out = []
    for v in values:
        level = int(v / peak * (len(RAMP) - 1) + 0.5)
        out.append(RAMP[max(0, min(level, len(RAMP) - 1))])
    return "".join(out)


def series(windows, kind, name):
    """Per-window series for a metric: counter deltas or gauge values."""
    return [w[kind].get(name, 0) for w in windows]


def all_metric_names(windows, kind):
    names = []
    for w in windows:
        for name in w[kind]:
            if name not in names:
                names.append(name)
    return names


def breach_ticks(windows, slo_events):
    """A marker line aligned with the sparklines: '^' at breach windows,
    'v' at recoveries (both, if they collide, show as '!')."""
    marks = [" "] * len(windows)
    index_of = {w["idx"]: i for i, w in enumerate(windows)}
    for rec in slo_events:
        i = index_of.get(rec["window"])
        if i is None:
            continue
        mark = "^" if rec["e"] == "slo.breach" else "v"
        marks[i] = "!" if marks[i] not in (" ", mark) else mark
    return "".join(marks)


def print_timeline(meta, windows, slo_events, counters, gauges):
    cadence_ms = meta["cadence_ns"] / 1e6
    span_ms = windows[-1]["end"] / 1e6 if windows else 0.0
    print(f"{len(windows)} windows x {cadence_ms:g} ms "
          f"(span {span_ms:g} ms), seed {meta.get('seed')}")
    print()
    name_w = max((len(n) for n in counters + gauges), default=0)
    for name in counters:
        vals = series(windows, "deltas", name)
        if not any(vals):
            continue
        peak = max(vals)
        total = sum(vals)
        print(f"  {name:{name_w}s} |{sparkline(vals)}| "
              f"peak {peak}/win, total {total}")
    for name in gauges:
        vals = series(windows, "gauges", name)
        if not any(vals):
            continue
        print(f"  {name:{name_w}s} |{sparkline(vals)}| "
              f"peak {max(vals):g}")
    ticks = breach_ticks(windows, slo_events)
    if ticks.strip():
        pad = " " * name_w
        print(f"  {pad} |{ticks}| ^ breach, v recover")
    print()


def print_slo_timeline(slo_events):
    if not slo_events:
        return
    print("-- SLO transitions --")
    active = set()
    for rec in slo_events:
        if rec["e"] == "slo.breach":
            active.add(rec["rule"])
            kind = "BREACH "
        else:
            active.discard(rec["rule"])
            kind = "recover"
        print(f"  [{rec['t'] / 1e6:10.3f} ms] {kind} {rec['rule']:16s} "
              f"value {rec['value']} vs {rec['threshold']} "
              f"(window {rec['window']})")
    verdict = "UNHEALTHY" if active else "healthy"
    print(f"  end-of-stream verdict: {verdict}"
          + (f" (still in breach: {', '.join(sorted(active))})"
             if active else ""))
    print()


def report(path, metrics=None, dashboard=False):
    meta, windows, slo_events = parse_stream(path)
    if meta is None or not windows:
        print("error: no ts.meta/ts.window records found", file=sys.stderr)
        return 1
    title = "storm/failover dashboard" if dashboard else "timeline report"
    print(f"=== {title}: {path} ===")
    if dashboard:
        counters = [n for n in DASHBOARD_COUNTERS
                    if n in all_metric_names(windows, "deltas")]
        gauges = [n for n in DASHBOARD_GAUGES
                  if n in all_metric_names(windows, "gauges")]
        # Aggregate per-shard queue depths into one track.
        depth_names = [n for n in all_metric_names(windows, "gauges")
                       if n.startswith("bs.ingest.queue_depth.")]
        if depth_names:
            for w in windows:
                w["gauges"]["bs.ingest.queue_depth(total)"] = sum(
                    w["gauges"].get(n, 0) for n in depth_names)
            gauges.insert(0, "bs.ingest.queue_depth(total)")
    elif metrics:
        counters = [n for n in metrics
                    if n in all_metric_names(windows, "deltas")]
        gauges = [n for n in metrics
                  if n in all_metric_names(windows, "gauges")]
        unknown = [n for n in metrics if n not in counters + gauges]
        if unknown:
            print(f"error: metric(s) not in stream: {unknown}",
                  file=sys.stderr)
            return 1
    else:
        counters = all_metric_names(windows, "deltas")
        gauges = all_metric_names(windows, "gauges")
    print_timeline(meta, windows, slo_events, counters, gauges)
    print_slo_timeline(slo_events)
    return 0


def check_expectations(path, expect_breach, expect_recover):
    """CI assertions: exit nonzero unless the named rules transitioned."""
    _, _, slo_events = parse_stream(path)
    breached = {rec["rule"] for rec in slo_events
                if rec["e"] == "slo.breach"}
    recovered = {rec["rule"] for rec in slo_events
                 if rec["e"] == "slo.recover"}
    failures = []
    for rule in expect_breach:
        if rule not in breached:
            failures.append(f"expected slo.breach for rule '{rule}', "
                            f"saw breaches for {sorted(breached) or 'none'}")
    for rule in expect_recover:
        if rule not in recovered:
            failures.append(
                f"expected slo.recover for rule '{rule}', saw recoveries "
                f"for {sorted(recovered) or 'none'}")
    for f in failures:
        print(f"UNMET: {f}", file=sys.stderr)
    if not failures:
        print(f"expectations met: breach={sorted(expect_breach)} "
              f"recover={sorted(expect_recover)}")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("stream", help="timeseries/v1 JSONL (from --timeseries)")
    ap.add_argument("--validate", action="store_true",
                    help="schema + consistency check only; exit nonzero on "
                         "any error")
    ap.add_argument("--dashboard", action="store_true",
                    help="curated ingest/failover tracks instead of every "
                         "metric")
    ap.add_argument("--metric", action="append", default=[],
                    help="only this metric (repeatable)")
    ap.add_argument("--expect-breach", action="append", default=[],
                    metavar="RULE",
                    help="exit 1 unless this rule fired slo.breach "
                         "(repeatable)")
    ap.add_argument("--expect-recover", action="append", default=[],
                    metavar="RULE",
                    help="exit 1 unless this rule fired slo.recover "
                         "(repeatable)")
    args = ap.parse_args()
    if args.validate:
        sys.exit(validate(args.stream))
    try:
        code = 0
        if args.expect_breach or args.expect_recover:
            code = check_expectations(args.stream, args.expect_breach,
                                      args.expect_recover)
        else:
            code = report(args.stream, metrics=args.metric,
                          dashboard=args.dashboard)
        sys.exit(code)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc!r}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
