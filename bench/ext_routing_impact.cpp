// Extension bench: what secure location discovery buys the protocols that
// consume locations. GPSR-style geographic forwarding routes over the
// *believed* positions produced by localization; this bench measures the
// end-to-end delivery rate with (a) ground-truth positions, (b) positions
// localized under attack with revocation disabled, and (c) positions
// localized under the full detection + revocation pipeline.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "core/nodes.hpp"
#include "core/secure_localization.hpp"
#include "routing/gpsr.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

/// Builds the routing topology for a finished trial: physical links from
/// true positions, believed positions from each sensor's localization
/// result (nodes that failed to localize keep their last-known truth,
/// the common fallback).
sld::routing::Topology topology_for(
    sld::core::SecureLocalizationSystem& system) {
  const auto& deployment = system.deployment();
  sld::routing::Topology topo(deployment.config.comm_range_ft);
  for (const auto& n : deployment.nodes) topo.add_node(n.id, n.position);
  for (const auto* node : system.network().nodes()) {
    const auto* sensor = dynamic_cast<const sld::core::SensorNode*>(node);
    if (sensor != nullptr && sensor->result().has_value())
      topo.set_believed_position(sensor->id(), sensor->result()->position);
  }
  topo.build_links();
  return topo;
}

double delivery_rate(const sld::routing::Topology& topo,
                     std::uint64_t pair_seed, std::size_t pairs) {
  sld::routing::GpsrRouter router(&topo);
  sld::util::Rng rng(pair_seed);
  const auto& ids = topo.node_ids();
  std::size_t delivered = 0, attempted = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto src = ids[rng.uniform_u64(ids.size())];
    const auto dst = ids[rng.uniform_u64(ids.size())];
    if (src == dst) continue;
    ++attempted;
    if (router.route(src, dst).delivered()) ++delivered;
  }
  return attempted ? static_cast<double>(delivered) /
                         static_cast<double>(attempted)
                   : 0.0;
}

/// Everything one trial contributes to the fold, computed inside the
/// run_indexed worker (the topologies need the live systems, so routing
/// runs there too and only plain numbers cross the thread boundary).
struct TrialResult {
  sld::core::TrialSummary attacked_summary;
  sld::core::TrialSummary secured_summary;
  double truth_r = 0.0;
  double attacked_r = 0.0;
  double secured_r = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const std::size_t pairs = args.fast ? 100 : 300;

  return sld::bench::run_main(
      "ext_routing_impact", args, [&](sld::bench::BenchIteration& it) {
        const auto results = sld::core::run_indexed(
            args.trials, args.jobs, [&](std::size_t t) {
              const std::uint64_t seed = args.seed + t;

              sld::core::SystemConfig attacked_cfg;
              attacked_cfg.strategy =
                  sld::attack::MaliciousStrategyConfig::with_effectiveness(
                      0.8);
              attacked_cfg.seed = seed;
              // Isolate the compromised-beacon effect: no wormhole here.
              attacked_cfg.paper_wormhole = false;
              attacked_cfg.revocation.alert_threshold = 1000000;  // off
              attacked_cfg.memstats = args.memstats;
              sld::core::SecureLocalizationSystem attacked(attacked_cfg);
              TrialResult r;
              r.attacked_summary = attacked.run();
              auto attacked_topo = topology_for(attacked);

              sld::core::SystemConfig secured_cfg = attacked_cfg;
              secured_cfg.revocation =
                  sld::revocation::RevocationConfig{};  // on
              sld::core::SecureLocalizationSystem secured(secured_cfg);
              r.secured_summary = secured.run();
              auto secured_topo = topology_for(secured);

              // Ground truth baseline shares the secured deployment's
              // physics.
              sld::routing::Topology truth_topo(
                  secured.deployment().config.comm_range_ft);
              for (const auto& n : secured.deployment().nodes)
                truth_topo.add_node(n.id, n.position);
              truth_topo.build_links();

              r.truth_r = delivery_rate(truth_topo, seed * 13 + 1, pairs);
              r.attacked_r =
                  delivery_rate(attacked_topo, seed * 13 + 1, pairs);
              r.secured_r =
                  delivery_rate(secured_topo, seed * 13 + 1, pairs);
              return r;
            });

        sld::util::RunningStat truth_rate, attacked_rate, secured_rate;
        sld::util::RunningStat attacked_err, secured_err;
        for (const auto& r : results) {
          it.add_trial(r.attacked_summary);
          it.add_trial(r.secured_summary);
          truth_rate.add(r.truth_r);
          attacked_rate.add(r.attacked_r);
          secured_rate.add(r.secured_r);
          attacked_err.add(r.attacked_summary.mean_localization_error_ft);
          secured_err.add(r.secured_summary.mean_localization_error_ft);
        }

        sld::util::Table table({"positions", "gpsr_delivery_rate",
                                "mean_localization_error_ft"});
        table.row().cell("ground_truth").cell(truth_rate.mean()).cell(0.0);
        table.row()
            .cell("attacked_no_revocation")
            .cell(attacked_rate.mean())
            .cell(attacked_err.mean());
        table.row()
            .cell("attacked_with_revocation")
            .cell(secured_rate.mean())
            .cell(secured_err.mean());
        table.print_csv(
            it.out(),
            "Extension: GPSR delivery rate over believed positions — "
            "ground truth vs attacked (P=0.8) vs secured");
      });
}
