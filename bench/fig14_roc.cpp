// Figure 14: ROC curves — detection rate vs false positive rate for
// N_a in {5, 10} malicious beacons and tau2 in {2, 3, 4}, sweeping tau1.
// Malicious beacons collude to flood alerts against benign beacons, and P
// is chosen by the attacker to maximize N' (as in the paper). Each point
// is one (tau1, tau2, N_a) operating point averaged over --trials runs.
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const std::vector<std::uint32_t> tau1_sweep =
      args.fast ? std::vector<std::uint32_t>{0, 2, 6, 10}
                : std::vector<std::uint32_t>{0, 1, 2, 3, 4, 6, 8, 10, 14, 20};

  return sld::bench::run_main(
      "fig14_roc", args, [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"Na", "tau2", "tau1", "false_positive_rate",
                                "fp_rate_theory_Nf", "detection_rate",
                                "attacker_P"});
        for (const std::size_t na : {5, 10}) {
          for (const std::uint32_t tau2 : {2, 3, 4}) {
            for (const std::uint32_t tau1 : tau1_sweep) {
              sld::core::ExperimentConfig e;
              e.base.deployment.malicious_beacon_count = na;
              e.base.revocation.report_quota = tau1;
              e.base.revocation.alert_threshold = tau2;
              e.base.collusion = true;
              e.base.seed = args.seed + na * 1000 + tau2 * 100 + tau1;
              e.base.memstats = args.memstats;
              e.trials = args.trials;
              e.jobs = args.jobs;

              // The attacker plays the P that maximizes expected damage for
              // this operating point (evaluated at the geometric requester
              // count of the paper deployment, ~60).
              auto params = sld::core::model_params_for(e.base, 60.0);
              double attacker_P = 0.0;
              sld::analysis::max_affected_nonbeacon_nodes(params,
                                                          &attacker_P);
              e.base.strategy =
                  sld::attack::MaliciousStrategyConfig::with_effectiveness(
                      attacker_P);

              const auto agg = sld::core::run_experiment(e);
              it.add_experiment(agg, e.trials);
              // The paper's N_f bound as an analytic overlay (capped at 1).
              const double benign =
                  static_cast<double>(e.base.deployment.beacon_count - na);
              const double fp_theory = std::min(
                  1.0, sld::analysis::false_positive_count(params) / benign);
              table.row()
                  .cell(static_cast<long long>(na))
                  .cell(static_cast<long long>(tau2))
                  .cell(static_cast<long long>(tau1))
                  .cell(agg.false_positive_rate.mean())
                  .cell(fp_theory)
                  .cell(agg.detection_rate.mean())
                  .cell(attacker_P);
            }
          }
        }
        table.print_csv(it.out(),
                        "Figure 14: ROC (detection vs false positives) under "
                        "colluding alert floods, N_a in {5,10}, tau2 in "
                        "{2,3,4}, sweeping tau1");
      });
}
