// Extension bench (paper §6 future work): distributed revocation without
// the base station. The detection phase runs unchanged; every alert is
// then replayed as a one-hop local *vote* instead of a base-station
// report, and each node aggregates only the votes whose reporters it can
// physically hear. Compared against the centralized scheme on the same
// trials: how much revocation coverage is lost by going local, and how
// well the distinct-voter threshold resists colluding floods.
#include <iostream>
#include <unordered_map>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "core/secure_localization.hpp"
#include "revocation/distributed.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct DistributedOutcome {
  double malicious_coverage = 0.0;  // avg frac of in-range listeners that
                                    // blacklist a malicious beacon
  double benign_wrongly_blacklisted = 0.0;  // avg count per listener
};

DistributedOutcome evaluate(const sld::core::SecureLocalizationSystem& system,
                            const sld::core::TrialSummary& summary,
                            const sld::revocation::DistributedConfig& cfg) {
  const auto& deployment = system.deployment();
  const double range = deployment.config.comm_range_ft;

  // Reporter positions (all reporters are beacons).
  std::unordered_map<sld::sim::NodeId, sld::util::Vec2> beacon_pos;
  std::unordered_map<sld::sim::NodeId, bool> beacon_malicious;
  for (const auto* b : deployment.beacons()) {
    beacon_pos[b->id] = b->position;
    beacon_malicious[b->id] = b->malicious;
  }

  DistributedOutcome out;
  sld::util::RunningStat coverage;
  sld::util::RunningStat wrong;

  // Every node in the field is a listener.
  for (const auto& listener : deployment.nodes) {
    sld::revocation::VoteAggregator agg(cfg);
    for (const auto& vote : summary.raw.alert_log) {
      const auto it = beacon_pos.find(vote.reporter);
      if (it == beacon_pos.end()) continue;
      if (sld::util::distance(listener.position, it->second) > range)
        continue;  // out of earshot
      agg.on_vote(vote.reporter, vote.target);
    }
    int wrongly = 0;
    for (const auto target : agg.blacklist()) {
      const auto mit = beacon_malicious.find(target);
      if (mit != beacon_malicious.end() && !mit->second) ++wrongly;
    }
    wrong.add(wrongly);
    // Coverage: for each malicious beacon in range of this listener, did
    // the listener blacklist it?
    for (const auto* m : deployment.malicious_beacons()) {
      if (sld::util::distance(listener.position, m->position) > range)
        continue;
      coverage.add(agg.is_blacklisted(m->id) ? 1.0 : 0.0);
    }
  }
  out.malicious_coverage = coverage.mean();
  out.benign_wrongly_blacklisted = wrong.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "ext_distributed_revocation", args,
      [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"collusion", "vote_threshold",
                                "centralized_detection",
                                "centralized_fp_rate", "distributed_coverage",
                                "distributed_wrong_per_node"});

        for (const bool collusion : {false, true}) {
          for (const std::uint32_t threshold : {2u, 3u, 4u}) {
            // Each trial's local-vote replay needs the live system, so it
            // runs inside the run_indexed worker; the fold below walks the
            // results in index order, keeping stdout byte-identical at any
            // --jobs level.
            struct TrialResult {
              sld::core::TrialSummary summary;
              DistributedOutcome dist;
            };
            const auto results = sld::core::run_indexed(
                args.trials, args.jobs, [&](std::size_t t) {
                  sld::core::SystemConfig config;
                  config.strategy = sld::attack::MaliciousStrategyConfig::
                      with_effectiveness(0.5);
                  config.collusion = collusion;
                  config.seed = args.seed + t * 31 + threshold;
                  config.memstats = args.memstats;
                  sld::core::SecureLocalizationSystem system(config);
                  TrialResult r;
                  r.summary = system.run();
                  sld::revocation::DistributedConfig dcfg;
                  dcfg.vote_threshold = threshold;
                  r.dist = evaluate(system, r.summary, dcfg);
                  return r;
                });

            sld::util::RunningStat cd, cf, dc_cov, dc_wrong;
            for (const auto& r : results) {
              it.add_trial(r.summary);
              cd.add(r.summary.detection_rate);
              cf.add(r.summary.false_positive_rate);
              dc_cov.add(r.dist.malicious_coverage);
              dc_wrong.add(r.dist.benign_wrongly_blacklisted);
            }
            table.row()
                .cell(collusion ? "yes" : "no")
                .cell(static_cast<long long>(threshold))
                .cell(cd.mean())
                .cell(cf.mean())
                .cell(dc_cov.mean())
                .cell(dc_wrong.mean());
          }
        }
        table.print_csv(it.out(),
                        "Extension: distributed (local-vote) revocation vs "
                        "the centralized base-station scheme, P = 0.5");
      });
}
