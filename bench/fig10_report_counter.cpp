// Figure 10: probability P_o that a benign beacon's report counter exceeds
// tau1 (so its honest alerts start being dropped), versus tau1, for N_c in
// {10, 50, 100, 150, 200}. Paper parameters: N = 1000, N_b = 100,
// N_a = 10, N_w = 10, p_d = 0.9, tau2 = 2, m = 8, P = 0.1. The paper picks
// tau1 = 10 as the smallest quota with P_o ~ 0.
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "fig10_report_counter", args, [&](sld::bench::BenchIteration& it) {
        sld::analysis::ModelParams params;
        params.wormhole_count = 10;
        params.alert_threshold = 2;
        params.detecting_ids = 8;
        const double P = 0.1;

        sld::util::Table table({"tau1", "Nc", "Po"});
        for (const std::size_t nc : {10, 50, 100, 150, 200}) {
          params.requesters_per_beacon = nc;
          for (std::uint32_t tau1 = 0; tau1 <= 20; ++tau1) {
            params.report_quota = tau1;
            table.row()
                .cell(static_cast<long long>(tau1))
                .cell(static_cast<long long>(nc))
                .cell(sld::analysis::report_counter_overflow_probability(
                    params, P));
            it.add_events(1);
          }
        }
        table.print_csv(
            it.out(),
            "Figure 10: P_o (report counter > tau1) vs tau1 for N_c in "
            "{10,50,100,150,200}; N=1000 Nb=100 Na=10 Nw=10 pd=0.9 tau2=2 "
            "m=8 P=0.1");
      });
}
