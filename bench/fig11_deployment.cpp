// Figure 11: the deployment of beacon nodes in the 1000x1000 ft sensing
// field — benign beacons as open circles, malicious as solid circles in
// the paper; here one CSV row per beacon, plus the wormhole endpoints of
// the §4 setup.
#include <iostream>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "sim/deployment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "fig11_deployment", args, [&](sld::bench::BenchIteration& it) {
        sld::util::Rng rng(args.seed);
        const auto deployment =
            sld::sim::deploy_random(sld::sim::DeploymentConfig{}, rng);
        it.add_events(deployment.nodes.size());

        sld::util::Table table({"id", "x_ft", "y_ft", "kind"});
        for (const auto* b : deployment.beacons()) {
          table.row()
              .cell(static_cast<long long>(b->id))
              .cell(b->position.x)
              .cell(b->position.y)
              .cell(b->malicious ? "malicious_beacon" : "benign_beacon");
        }
        table.row().cell(0).cell(100.0).cell(100.0).cell("wormhole_mouth_A");
        table.row().cell(0).cell(800.0).cell(700.0).cell("wormhole_mouth_B");
        table.print_csv(
            it.out(),
            "Figure 11: deployment of 100 beacon nodes (10 malicious) "
            "in a 1000x1000 ft field, wormhole (100,100)-(800,700)");
        it.out() << "\n# sensors deployed (not plotted in the paper's "
                    "figure): "
                 << deployment.sensors().size() << "\n";
      });
}
