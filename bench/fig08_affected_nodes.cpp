// Figure 8: average number N' of non-beacon requesters still accepting a
// malicious beacon's signal after all detected malicious beacons are
// revoked, versus P, for tau2 in {2,3,4} x m in {4,8} (N_c = 100). N' grows
// with tau2 (revocation needs more alerts) and shrinks with m (detection is
// more likely).
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "fig08_affected_nodes", args, [&](sld::bench::BenchIteration& it) {
        sld::analysis::ModelParams params;

        sld::util::Table table({"P", "tau2", "m", "N_affected"});
        for (const std::uint32_t tau2 : {2, 3, 4}) {
          for (const std::size_t m : {8, 4}) {
            params.alert_threshold = tau2;
            params.detecting_ids = m;
            for (double P = 0.0; P <= 1.0 + 1e-9; P += 0.02) {
              if (P > 1.0) P = 1.0;
              table.row()
                  .cell(P)
                  .cell(static_cast<long long>(tau2))
                  .cell(static_cast<long long>(m))
                  .cell(sld::analysis::affected_nonbeacon_nodes(params, P));
              it.add_events(1);
            }
          }
        }
        table.print_csv(it.out(),
                        "Figure 8: N' vs P for tau2 in {2,3,4} x m in {4,8}, "
                        "N_c=100");
      });
}
