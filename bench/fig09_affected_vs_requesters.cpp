// Figure 9: maximum damage N' an optimal attacker can do (choosing P to
// maximize N') versus N_c, for m in {2,4,8} x tau2 in {2,3}. The paper's
// shape: N' rises dramatically at small N_c, peaks, then drops once extra
// requesters mean extra detecting-beacon alerts.
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "fig09_affected_vs_requesters", args,
      [&](sld::bench::BenchIteration& it) {
        sld::analysis::ModelParams params;

        sld::util::Table table(
            {"Nc", "m", "tau2", "N_affected_max", "argmax_P"});
        for (const std::size_t m : {8, 4, 2}) {
          for (const std::uint32_t tau2 : {2, 3}) {
            params.detecting_ids = m;
            params.alert_threshold = tau2;
            for (std::size_t nc = 2; nc <= 250; nc += 4) {
              params.requesters_per_beacon = nc;
              double argmax = 0.0;
              const double peak =
                  sld::analysis::max_affected_nonbeacon_nodes(params,
                                                              &argmax);
              table.row()
                  .cell(static_cast<long long>(nc))
                  .cell(static_cast<long long>(m))
                  .cell(static_cast<long long>(tau2))
                  .cell(peak)
                  .cell(argmax);
              it.add_events(1);
            }
          }
        }
        table.print_csv(it.out(),
                        "Figure 9: max_P N' vs N_c for m in {2,4,8} x tau2 "
                        "in {2,3} (attacker plays argmax P)");
      });
}
