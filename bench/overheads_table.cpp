// Overheads (paper §2.3 and §3.2 "Overheads" paragraphs, quantified).
// The paper argues the scheme's costs are practical: beacon signals are
// unicast (per-requester) instead of broadcast, each benign beacon probes
// only the few beacons in its range (m packets each), and "only a limited
// number of alerts need to be delivered to the base station". This bench
// counts every message of a paper-scale trial and reports the per-node and
// per-phase communication overheads, plus the base station's workload.
#include <iostream>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "core/secure_localization.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main("overheads_table", args,
                              [&](sld::bench::BenchIteration& it) {
  // Per-node radio energies are read off the live channel, so each trial
  // ships them out of its run_indexed worker as (is_beacon, energy_uj)
  // pairs in deployment order; the fold below replays them in index order
  // so stdout is byte-identical at any --jobs level.
  struct TrialResult {
    sld::core::TrialSummary summary;
    std::vector<std::pair<bool, double>> node_energy;
  };
  const auto results =
      sld::core::run_indexed(args.trials, args.jobs, [&](std::size_t t) {
        sld::core::SystemConfig config;
        config.strategy =
            sld::attack::MaliciousStrategyConfig::with_effectiveness(0.3);
        config.seed = args.seed + t;
        config.memstats = args.memstats;
        sld::core::SecureLocalizationSystem system(config);
        TrialResult r;
        r.summary = system.run();
        for (const auto& spec : system.deployment().nodes) {
          const auto radio = system.network().channel().node_radio(spec.id);
          r.node_energy.emplace_back(spec.beacon, radio.energy_uj());
        }
        return r;
      });

  sld::util::RunningStat probes, probe_per_beacon, sensor_msgs,
      sensor_per_node, alerts, alerts_per_beacon, bs_processed, revocations,
      transmissions, beacon_energy, sensor_energy;
  for (const auto& r : results) {
    const auto& s = r.summary;
    it.add_trial(s);

    // Per-node radio energy, split by role.
    for (const auto& [is_beacon, energy_uj] : r.node_energy)
      (is_beacon ? beacon_energy : sensor_energy).add(energy_uj);

    const double benign = static_cast<double>(s.benign_beacons);
    const double sensors = static_cast<double>(s.sensors);
    probes.add(static_cast<double>(s.raw.probes_sent));
    probe_per_beacon.add(static_cast<double>(s.raw.probes_sent) / benign);
    sensor_msgs.add(static_cast<double>(s.raw.sensor_requests));
    sensor_per_node.add(static_cast<double>(s.raw.sensor_requests) / sensors);
    alerts.add(static_cast<double>(s.raw.alerts_submitted));
    alerts_per_beacon.add(static_cast<double>(s.raw.alerts_submitted) /
                          benign);
    bs_processed.add(static_cast<double>(s.base_station.alerts_received));
    revocations.add(static_cast<double>(s.base_station.revocations));
    transmissions.add(static_cast<double>(s.channel.transmissions));
  }

  sld::util::Table table({"quantity", "mean_per_trial", "per_node"});
  table.row()
      .cell("probe requests (m=8 IDs x in-range beacons)")
      .cell(probes.mean())
      .cell(probe_per_beacon.mean());
  table.row()
      .cell("sensor beacon requests (unicast)")
      .cell(sensor_msgs.mean())
      .cell(sensor_per_node.mean());
  table.row()
      .cell("alerts to base station")
      .cell(alerts.mean())
      .cell(alerts_per_beacon.mean());
  table.row()
      .cell("base-station alert processings")
      .cell(bs_processed.mean())
      .cell(0.0);
  table.row().cell("revocations issued").cell(revocations.mean()).cell(0.0);
  table.row()
      .cell("total radio transmissions")
      .cell(transmissions.mean())
      .cell(transmissions.mean() / 1000.0);
  table.row()
      .cell("radio energy per beacon (uJ, CC1000-class)")
      .cell(beacon_energy.mean())
      .cell(beacon_energy.max());
  table.row()
      .cell("radio energy per sensor (uJ, CC1000-class)")
      .cell(sensor_energy.mean())
      .cell(sensor_energy.max());
  table.print_csv(
      it.out(),
      "Overheads: per-phase message counts at paper scale (N=1000, "
      "N_b=100, N_a=10, m=8, P=0.3) — the paper's 'practical trade-off' "
      "claim quantified");
  it.out() << "\n# per_node column: probes per benign beacon, requests "
              "per sensor, alerts per benign beacon, transmissions per "
              "node; for the energy rows it is the per-node maximum\n";
  });
}
