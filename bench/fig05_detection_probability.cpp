// Figure 5: relationship between the per-detecting-node detection
// probability P_r = 1 - (1 - P)^m and the attack effectiveness P, for
// m in {1, 2, 4, 8} detecting IDs. Analytic curves plus a Monte-Carlo
// cross-check through the actual Detector pipeline.
#include <iostream>

#include "analysis/formulas.hpp"
#include "attack/strategy.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "detection/detector.hpp"
#include "ranging/rssi.hpp"
#include "ranging/rtt.hpp"
#include "util/table.hpp"

namespace {

/// Fraction of simulated detecting nodes (with `m` detecting IDs) that
/// catch a malicious beacon of effectiveness `P`, via the full pipeline.
double monte_carlo_pr(double P, std::size_t m, std::size_t nodes,
                      sld::util::Rng& rng) {
  using namespace sld;
  ranging::ProbabilisticWormholeDetector wh(0.9);
  detection::DetectorConfig cfg;
  cfg.replay.rtt_x_max_cycles = 7124.0;
  detection::Detector detector(cfg, &wh);
  ranging::RssiRangingModel rssi{ranging::RssiConfig{}};
  ranging::MoteTimingModel timing;

  const auto strategy_cfg =
      attack::MaliciousStrategyConfig::with_effectiveness(P);
  const util::Vec2 beacon_pos{500, 500};
  const util::Vec2 detector_pos{460, 460};
  const double d = util::distance(beacon_pos, detector_pos);

  std::size_t detected = 0;
  sim::NodeId next_id = 1;
  for (std::size_t node = 0; node < nodes; ++node) {
    attack::MaliciousBeaconStrategy strategy(strategy_cfg, rng());
    bool caught = false;
    for (std::size_t k = 0; k < m && !caught; ++k) {
      const auto reply = strategy.craft_reply(next_id++, 1, beacon_pos);
      detection::SignalObservation obs;
      obs.receiver_position = detector_pos;
      obs.claimed_position = reply.claimed_position;
      obs.measured_distance_ft =
          rssi.measure_manipulated(d, reply.range_manipulation_ft, rng);
      obs.observed_rtt_cycles =
          timing.sample_rtt_cycles(d, rng) + reply.processing_bias_cycles;
      obs.target_range_ft = 150.0;
      obs.sender_faked_wormhole_indication = reply.fake_wormhole_indication;
      caught = detector.evaluate(obs, rng) == detection::ProbeOutcome::kAlert;
    }
    if (caught) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(nodes);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const std::size_t mc_nodes = args.fast ? 500 : 5000;

  return sld::bench::run_main(
      "fig05_detection_probability", args,
      [&](sld::bench::BenchIteration& it) {
        sld::util::Rng rng(args.seed);
        sld::util::Table table({"P", "m", "Pr_analytic", "Pr_monte_carlo"});
        for (const std::size_t m : {1, 2, 4, 8}) {
          for (double P = 0.0; P <= 1.0 + 1e-9; P += 0.05) {
            if (P > 1.0) P = 1.0;
            table.row()
                .cell(P)
                .cell(static_cast<long long>(m))
                .cell(sld::analysis::detection_probability(P, m))
                .cell(monte_carlo_pr(P, m, mc_nodes, rng));
            it.add_events(mc_nodes);
          }
        }
        table.print_csv(
            it.out(),
            "Figure 5: P_r vs P for m in {1,2,4,8} detecting IDs "
            "(analytic + Monte-Carlo through the Detector pipeline)");
      });
}
