// Figure 7: revocation detection rate P_d versus the number of requesting
// nodes N_c contacting a malicious beacon, for P in {0.1, 0.2, 0.3, 0.4}
// (m = 8, tau2 = 2). "The detection rate increases when more requesting
// nodes contact a malicious beacon node."
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "fig07_revocation_vs_requesters", args,
      [&](sld::bench::BenchIteration& it) {
        sld::analysis::ModelParams params;
        params.detecting_ids = 8;
        params.alert_threshold = 2;

        sld::util::Table table({"Nc", "P", "Pd"});
        for (const double P : {0.1, 0.2, 0.3, 0.4}) {
          for (std::size_t nc = 2; nc <= 200; nc += 2) {
            params.requesters_per_beacon = nc;
            table.row()
                .cell(static_cast<long long>(nc))
                .cell(P)
                .cell(sld::analysis::revocation_probability(params, P));
            it.add_events(1);
          }
        }
        table.print_csv(
            it.out(),
            "Figure 7: P_d vs N_c for P in {.1,.2,.3,.4}, m=8, tau2=2");
      });
}
