// Extension bench: counter-based revocation (§3.1) vs the trust-weighted
// suspiciousness model, replayed over identical alert streams from full
// trials. The counter scheme treats every accepted alert equally, so
// colluding floods buy N_a(tau1+1)/(tau2+1) benign revocations; trust
// weighting discounts reporters who are themselves heavily accused.
//
// Trials fan out over run_indexed (--jobs N): each index runs its full
// trial AND the trust-model replay inside the worker, so the fold below
// only reads finished per-trial results in index order — stdout is
// byte-identical at any jobs level.
#include <iostream>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "core/secure_localization.hpp"
#include "revocation/suspiciousness.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct TrialResult {
  sld::core::TrialSummary summary;
  double trust_det = 0.0;
  double trust_fp = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "ext_suspiciousness", args, [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"collusion", "scheme", "detection_rate",
                                "false_positive_rate"});
        for (const bool collusion : {false, true}) {
          const auto results = sld::core::run_indexed(
              args.trials, args.jobs, [&](std::size_t t) {
                sld::core::SystemConfig config;
                config.strategy =
                    sld::attack::MaliciousStrategyConfig::with_effectiveness(
                        0.5);
                config.collusion = collusion;
                config.seed = args.seed + 97 * t;
                config.memstats = args.memstats;
                sld::core::SecureLocalizationSystem system(config);
                TrialResult r;
                r.summary = system.run();

                // Replay the identical alert stream through the trust
                // model (inside the worker: it needs the live deployment).
                std::vector<sld::sim::AlertPayload> alerts;
                alerts.reserve(r.summary.raw.alert_log.size());
                for (const auto& a : r.summary.raw.alert_log)
                  alerts.push_back({a.reporter, a.target});
                const auto trust =
                    sld::revocation::evaluate_suspiciousness(alerts);

                std::size_t mal_revoked = 0, ben_revoked = 0;
                for (const auto* m :
                     system.deployment().malicious_beacons())
                  if (trust.revoked.contains(m->id)) ++mal_revoked;
                for (const auto* b : system.deployment().benign_beacons())
                  if (trust.revoked.contains(b->id)) ++ben_revoked;
                r.trust_det = static_cast<double>(mal_revoked) /
                              static_cast<double>(r.summary.malicious_beacons);
                r.trust_fp = static_cast<double>(ben_revoked) /
                             static_cast<double>(r.summary.benign_beacons);
                return r;
              });

          sld::util::RunningStat counter_det, counter_fp, trust_det,
              trust_fp;
          for (const auto& r : results) {
            it.add_trial(r.summary);
            counter_det.add(r.summary.detection_rate);
            counter_fp.add(r.summary.false_positive_rate);
            trust_det.add(r.trust_det);
            trust_fp.add(r.trust_fp);
          }
          table.row()
              .cell(collusion ? "yes" : "no")
              .cell("counter(tau1=10,tau2=2)")
              .cell(counter_det.mean())
              .cell(counter_fp.mean());
          table.row()
              .cell(collusion ? "yes" : "no")
              .cell("trust_weighted")
              .cell(trust_det.mean())
              .cell(trust_fp.mean());
        }
        table.print_csv(it.out(),
                        "Extension: counter-based vs trust-weighted "
                        "revocation on identical alert streams, P = 0.5");
      });
}
