// Extension bench: framing denial-of-service against the revocation scheme.
//
// The collusion bench floods; this bench frames. The deployed malicious
// beacons run the coverage-directed framing plan (attack/framing): they
// pick the benign beacons whose loss starves localization coverage the
// most, pace accusations under the per-reporter tau1 budget so every
// alert is accepted, and re-accuse in waves. The sweep raises the framing
// intensity (re-accusation waves) against both defenses: the paper's
// permanent scheme ("permanent": any accused benign beacon whose counter
// crosses tau2 is gone forever) and the evidence lifecycle + localization
// fallback ladder ("lifecycle": quarantine with decay, corroboration
// before permanence, coverage guard, centroid fallback). Columns report
// the harm: permanently revoked benign beacons, quarantine/exoneration
// churn, the sparsest cell's usable-beacon floor, and the localization
// error p99 — detection of the actual colluders must not regress.
//
// `--framing` switches to a single-cell deep-dive instead of the sweep:
// one lifecycle-enabled station cluster (no radio network) with a WAL and
// two scheduled primary outages, a clustered colluder clique framing the
// sparse-cell beacons with waves snapped to the outage recovery edges,
// and honest witnesses corroborating against one real colluder. A 500 ms
// TimeseriesSampler watches the lifecycle instruments and an SLO monitor
// (default rules below, override with --slo) judges the run: quarantine
// waves are expected breaches; the coverage-floor rule must never fire.
// --timeseries captures the same windows as a `timeseries/v1` stream for
// tools/ts_report.py.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "attack/framing.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "revocation/failover.hpp"
#include "sim/deployment.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace sld;

struct FramingKnobs {
  std::uint32_t targets = 4;
  std::uint32_t waves = 2;  // deep-dive; the sweep sweeps this
};

core::SystemConfig scaled_config(const bench::BenchArgs& args) {
  core::SystemConfig c;
  if (args.fast) {
    // Same density as the paper at ~1/3 scale.
    c.deployment.total_nodes = 300;
    c.deployment.beacon_count = 30;
    c.deployment.malicious_beacon_count = 3;
    c.deployment.field = util::Rect::square(550.0);
    c.rtt_calibration_samples = 2000;
  }
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.8);
  return c;
}

// --- framing deep-dive ----------------------------------------------------

constexpr sim::SimTime kTimelineEnd = 20 * sim::kSecond;
constexpr sim::SimTime kFramingWindow = 16 * sim::kSecond;
constexpr std::int64_t kCadence = 500 * sim::kMillisecond;

/// The quarantine rule breaching is the attack becoming visible in
/// telemetry (expected; it recovers between waves). The floor rule is the
/// defense's contract: the sparsest occupied cell never drops below one
/// usable beacon, so a healthy verdict means the coverage guard held.
constexpr const char* kDefaultFramingSlo =
    "frame rate(bs.quarantines) > 0 sustain=1 clear=2;"
    "floor gauge(coverage.min_usable) < 1 sustain=1 clear=1";

struct Submission {
  sim::SimTime t = 0;
  sim::NodeId reporter = 0;
  sim::NodeId target = 0;
};

/// Raises a monotone mirror counter to a live station statistic.
void sync_counter(obs::Counter& c, std::uint64_t live) {
  if (live > c.value()) c.inc(live - c.value());
}

void run_framing(const FramingKnobs& knobs, const bench::BenchArgs& args,
                 bench::BenchIteration& it) {
  // Hand-placed roster over a 500x500 field with 250 ft lifecycle cells:
  // one dense cell, two medium cells, and a sparse two-beacon cell whose
  // members the framing plan ranks as the most coverage-critical targets.
  std::vector<std::pair<sim::NodeId, util::Vec2>> benign;
  sim::NodeId next_id = sim::kFirstBeaconId;
  const auto place = [&](double x, double y) {
    benign.emplace_back(next_id++, util::Vec2{x, y});
  };
  for (int i = 0; i < 8; ++i)  // dense cell (0,0)
    place(30.0 + 25.0 * i, 40.0 + 20.0 * (i % 3));
  for (int i = 0; i < 6; ++i)  // cell (1,0)
    place(280.0 + 30.0 * i, 60.0 + 30.0 * (i % 2));
  for (int i = 0; i < 4; ++i)  // cell (0,1)
    place(60.0 + 40.0 * i, 300.0 + 25.0 * i);
  place(330.0, 330.0);  // sparse cell (1,1): the framing plan's bullseye
  place(420.0, 410.0);
  // Honest witnesses ringing the colluder clique: inside plausible range
  // of the clique, mutually independent, one per surrounding cell.
  const std::size_t first_witness = benign.size();
  place(190.0, 210.0);
  place(300.0, 190.0);
  place(185.0, 300.0);

  // A clustered colluder clique: mutually closer than the lifecycle's
  // independence radius, so their accusations corroborate as ONE witness —
  // enough to quarantine, never enough to permanently revoke.
  std::vector<std::pair<sim::NodeId, util::Vec2>> colluders = {
      {next_id + 0, util::Vec2{240.0, 240.0}},
      {next_id + 1, util::Vec2{248.0, 246.0}},
      {next_id + 2, util::Vec2{243.0, 252.0}},
  };

  revocation::RevocationConfig rc;  // paper defaults: tau1 10, tau2 2
  rc.lifecycle.enabled = true;
  // A 2.5 s half-life scales the decay dynamics onto the 20 s timeline:
  // framed evidence quarantines on each wave, then decays past the clear
  // threshold before the trial ends, so the end-of-run settle exonerates.
  rc.lifecycle.half_life_ns = 2500 * sim::kMillisecond;

  revocation::FailoverConfig fc;
  fc.durable.enabled = true;
  fc.durable.fsync_every_records = 1;
  // Two primary outages; the framing waves snap to the recovery edges,
  // accusing the station while it is rebuilding lifecycle state from the
  // WAL — the hardest case for quarantine agreement across a restart.
  fc.primary_outages = {{5 * sim::kSecond, 6 * sim::kSecond},
                       {10 * sim::kSecond, 11 * sim::kSecond}};

  revocation::BaseStationCluster cluster(rc, fc);
  std::vector<std::pair<sim::NodeId, util::Vec2>> roster = benign;
  roster.insert(roster.end(), colluders.begin(), colluders.end());
  cluster.set_beacon_roster(roster);

  attack::FramingConfig fcfg;
  fcfg.enabled = true;
  fcfg.targets = knobs.targets;
  fcfg.waves = knobs.waves;
  fcfg.window_ns = kFramingWindow;
  fcfg.cell_ft = rc.lifecycle.cell_ft;
  std::vector<std::pair<sim::SimTime, sim::SimTime>> outages;
  for (const auto& o : fc.primary_outages) outages.emplace_back(o.start, o.end);
  util::Rng rng(args.seed);
  const attack::FramingPlan plan = attack::plan_framing(
      colluders, benign, fcfg, rc.report_quota, /*window_start=*/0, outages,
      rng);

  // Workload: the framing schedule, plus honest witnesses near the clique
  // corroborating against colluder 0 — geometrically independent and
  // plausibly in range, so the real attacker IS permanently revoked while
  // every framed benign beacon survives.
  std::vector<Submission> subs;
  for (const auto& a : plan.alerts)
    subs.push_back(Submission{a.at, a.reporter, a.target});
  std::vector<sim::NodeId> witnesses;
  for (std::size_t w = first_witness; w < benign.size(); ++w)
    witnesses.push_back(benign[w].first);
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t w = 0; w < witnesses.size(); ++w) {
      subs.push_back(Submission{
          2 * sim::kSecond +
              static_cast<sim::SimTime>(round * witnesses.size() + w) * 500 *
                  sim::kMillisecond,
          witnesses[w], colluders[0].first});
    }
  }
  std::stable_sort(subs.begin(), subs.end(),
                   [](const Submission& a, const Submission& b) {
                     return a.t < b.t;
                   });

  // Lifecycle instruments in a per-run registry, same names the full
  // system registers (core/secure_localization.cpp), so --slo specs port.
  obs::MetricsRegistry reg;
  obs::Counter& submitted_c = reg.counter("alerts.submitted");
  obs::Counter& accepted_c = reg.counter("bs.alerts_accepted");
  obs::Counter& quarantines_c = reg.counter("bs.quarantines");
  obs::Counter& exonerations_c = reg.counter("bs.exonerations");
  obs::Counter& escalations_c = reg.counter("bs.escalations");
  obs::Counter& refusals_c = reg.counter("bs.guard_refusals");
  obs::Counter& revocations_c = reg.counter("bs.revocations");
  obs::Gauge& min_usable_g = reg.gauge("coverage.min_usable");
  obs::Gauge& evidence_g = reg.gauge("bs.evidence.framed_max");
  obs::Gauge& in_service_g = reg.gauge("bs.cluster.in_service");

  const auto trace_sink = it.report() ? args.open_trace_sink() : nullptr;
  const auto ts_sink = it.report() ? args.open_timeseries_sink() : nullptr;

  sim::SimTime sim_now = 0;
  obs::Tracer tracer(trace_sink.get(), [&sim_now] {
    return static_cast<std::int64_t>(sim_now);
  });
  cluster.set_tracer(tracer);
  if (tracer.on()) {
    tracer.emit(tracer.event("trial.start")
                    .f("seed", args.seed)
                    .f("nodes", static_cast<std::uint64_t>(roster.size()))
                    .f("beacons", static_cast<std::uint64_t>(roster.size()))
                    .f("malicious",
                       static_cast<std::uint64_t>(colluders.size()))
                    .f("sensors", static_cast<std::uint64_t>(0)));
  }

  obs::TimeseriesOptions topt;
  topt.enabled = true;
  topt.cadence_ns = kCadence;
  topt.ring_capacity = 64;  // >= the 40 windows of the 20 s timeline
  topt.sink = ts_sink.get();
  topt.sample_rss = args.rss;
  obs::Gauge* rss_gauge = topt.sample_rss ? &reg.gauge("mem.rss_kb") : nullptr;
  obs::TimeseriesSampler sampler(reg, topt);
  sampler.set_presample_hook([&](std::int64_t t) {
    const auto now = static_cast<sim::SimTime>(t);
    cluster.advance(now);
    const revocation::BaseStation& bs = cluster.authority();
    sync_counter(accepted_c, bs.stats().alerts_accepted);
    sync_counter(quarantines_c, bs.stats().quarantines);
    sync_counter(exonerations_c, bs.stats().exonerations);
    sync_counter(escalations_c, bs.stats().escalations);
    sync_counter(refusals_c, bs.stats().guard_refusals);
    sync_counter(revocations_c, bs.stats().revocations);
    std::uint32_t min_usable = 0;
    bool first = true;
    for (const auto& cell : bs.lifecycle().census_all(now)) {
      if (first || cell.usable < min_usable) min_usable = cell.usable;
      first = false;
    }
    min_usable_g.set(static_cast<double>(min_usable));
    double max_evidence = 0.0;
    for (const sim::NodeId target : plan.targets)
      max_evidence = std::max(max_evidence, bs.evidence(target, now));
    evidence_g.set(max_evidence);
    in_service_g.set(cluster.in_service() ? 1.0 : 0.0);
    if (rss_gauge != nullptr)
      rss_gauge->set(static_cast<double>(obs::current_rss_kb()));
  });

  obs::SloMonitor slo(args.parse_slo(kDefaultFramingSlo));
  slo.add_tracer(tracer);
  if (ts_sink != nullptr && ts_sink.get() != trace_sink.get()) {
    slo.add_tracer(obs::Tracer(ts_sink.get(), [&sim_now] {
      return static_cast<std::int64_t>(sim_now);
    }));
  }
  sampler.set_window_observer(
      [&slo](const obs::WindowSample& w) { slo.on_window(w); });

  std::uint64_t nonce = 1;
  std::uint64_t lost_outage = 0;
  sampler.begin(0, args.seed);
  for (const Submission& s : subs) {
    sim_now = s.t;
    // Close due windows BEFORE the submission: a window captures strictly
    // pre-edge state, same contract as the scheduler time probe.
    sampler.advance_to(static_cast<std::int64_t>(s.t));
    submitted_c.inc();
    if (!cluster.available(s.t)) {
      ++lost_outage;  // accusations into a dead station are simply lost
      ++nonce;
      continue;
    }
    cluster.process_alert(s.t, s.reporter, s.target, nonce++);
  }
  sim_now = kTimelineEnd;
  sampler.advance_to(static_cast<std::int64_t>(kTimelineEnd));
  cluster.advance(kTimelineEnd);
  cluster.settle(kTimelineEnd);
  sampler.finish(static_cast<std::int64_t>(kTimelineEnd));

  // Per-window telemetry table straight from the ring (deterministic: the
  // whole timeline is a pure function of knobs and seed).
  util::Table table({"window", "t_ms", "submitted", "accepted", "quarantines",
                     "exonerations", "guard_refusals", "revocations",
                     "min_usable", "evidence_max", "in_service"});
  for (const obs::WindowSample& w : sampler.ring()) {
    const auto delta_of = [&w](const char* name) -> long long {
      const std::uint64_t* d = w.delta(name);
      return d == nullptr ? 0 : static_cast<long long>(*d);
    };
    const auto gauge_of = [&w](const char* name) -> double {
      const double* g = w.gauge(name);
      return g == nullptr ? 0.0 : *g;
    };
    table.row()
        .cell(static_cast<long long>(w.index))
        .cell(static_cast<long long>(w.t_end_ns / sim::kMillisecond))
        .cell(delta_of("alerts.submitted"))
        .cell(delta_of("bs.alerts_accepted"))
        .cell(delta_of("bs.quarantines"))
        .cell(delta_of("bs.exonerations"))
        .cell(delta_of("bs.guard_refusals"))
        .cell(delta_of("bs.revocations"))
        .cell(gauge_of("coverage.min_usable"))
        .cell(gauge_of("bs.evidence.framed_max"))
        .cell(gauge_of("bs.cluster.in_service"));
  }
  table.print_csv(it.out(),
                  "Framing deep-dive: 500 ms lifecycle telemetry windows "
                  "over a 20 s timeline, waves snapped to WAL-recovery "
                  "edges of two primary outages");

  // Zero-harm check rides along: no framed benign beacon may be
  // PERMANENTLY revoked, while the corroborated colluder must be.
  const revocation::BaseStation& bs = cluster.authority();
  std::size_t benign_revoked = 0;
  std::size_t benign_quarantined = 0;
  for (const auto& [id, pos] : benign) {
    if (bs.is_revoked(id)) ++benign_revoked;
    if (bs.is_quarantined(id, kTimelineEnd)) ++benign_quarantined;
  }
  std::size_t colluders_revoked = 0;
  for (const auto& [id, pos] : colluders)
    if (bs.is_revoked(id)) ++colluders_revoked;
  it.out() << "framing targets=" << plan.targets.size()
           << " alerts=" << plan.alerts.size()
           << " lost_outage=" << lost_outage << "\n";
  it.out() << "benign permanently_revoked=" << benign_revoked
           << " quarantined_at_end=" << benign_quarantined
           << " exonerations=" << bs.stats().exonerations
           << " guard_refusals=" << bs.stats().guard_refusals << "\n";
  it.out() << "colluders revoked=" << colluders_revoked
           << " coverage_floor_violations="
           << bs.stats().coverage_floor_violations << "\n";
  it.out() << "slo_verdict healthy=" << (slo.healthy() ? 1 : 0)
           << " rules=" << slo.rules().size()
           << " breaches=" << slo.breaches()
           << " recovers=" << slo.recovers() << " active=" << slo.active()
           << "\n";
  for (const obs::SloMonitor::LogEntry& e : slo.log()) {
    it.out() << "slo_" << (e.breach ? "breach" : "recover")
             << " rule=" << e.rule << " window=" << e.window
             << " t_ms=" << e.t_ns / sim::kMillisecond << "\n";
  }

  it.add_events(subs.size());
  it.add_trials(1);
}

}  // namespace

int main(int argc, char** argv) {
  FramingKnobs knobs;
  bool framing = false;
  const auto args = bench::BenchArgs::parse(
      argc, argv,
      [&](const std::string& a, const auto& next) {
        if (a == "--targets") {
          knobs.targets = static_cast<std::uint32_t>(
              bench::parse_positive_ll("--targets", next("--targets")));
          return true;
        }
        if (a == "--waves") {
          knobs.waves = static_cast<std::uint32_t>(
              bench::parse_positive_ll("--waves", next("--waves")));
          return true;
        }
        if (a == "--framing") {
          framing = true;
          return true;
        }
        return false;
      },
      "  --targets N    benign beacons the colluders frame, > 0 "
      "(default 4)\n"
      "  --waves W      re-accusation waves in the deep-dive, > 0 "
      "(default 2; the sweep sweeps this)\n"
      "  --framing      single-cell deep-dive: 500 ms lifecycle telemetry "
      "windows + SLO verdict\n");

  if (framing) {
    return bench::run_main("ext_framing_dos_framing", args,
                           [&](bench::BenchIteration& it) {
                             run_framing(knobs, args, it);
                           });
  }

  return bench::run_main("ext_framing_dos", args, [&](bench::BenchIteration&
                                                          it) {
    // Trace only the reported iteration: warmup/measurement repeats would
    // otherwise duplicate every event in the sink.
    const auto trace_sink = it.report() ? args.open_trace_sink() : nullptr;
    const std::vector<std::uint32_t> wave_sweep =
        args.fast ? std::vector<std::uint32_t>{0, 2, 4}
                  : std::vector<std::uint32_t>{0, 1, 2, 4, 6};

    util::Table table({"scheme", "waves", "framing_alerts", "detection_rate",
                       "false_positive_rate", "benign_revoked",
                       "benign_quarantined", "exonerations",
                       "min_cell_usable", "p99_err_ft", "centroid_frac"});
    for (const bool lifecycle_on : {false, true}) {
      for (const std::uint32_t waves : wave_sweep) {
        core::ExperimentConfig e;
        e.base = scaled_config(args);
        e.base.seed = args.seed;
        e.base.memstats = args.memstats;
        e.trials = args.trials;
        e.jobs = args.jobs;
        e.base.framing.enabled = waves > 0;
        e.base.framing.waves = waves;
        e.base.framing.targets = knobs.targets;
        if (lifecycle_on) {
          // The defended configuration: evidence lifecycle at the station
          // plus the localization fallback ladder at the sensors.
          e.base.revocation.lifecycle.enabled = true;
          e.base.fallback.enabled = true;
        }
        e.base.trace_sink = trace_sink.get();
        e.keep_trial_summaries = true;
        const auto agg = core::run_experiment(e);
        it.add_experiment(agg, e.trials);

        double framing_alerts = 0.0, benign_revoked = 0.0;
        double benign_quarantined = 0.0, exonerations = 0.0;
        double p99 = 0.0, centroid_frac = 0.0;
        std::uint32_t min_usable = 0;
        bool first = true;
        for (const auto& t : agg.trials) {
          framing_alerts += static_cast<double>(t.raw.framing_alerts_submitted);
          benign_revoked += static_cast<double>(t.benign_revoked);
          benign_quarantined += static_cast<double>(t.benign_quarantined);
          exonerations += static_cast<double>(t.base_station.exonerations);
          p99 += t.p99_localization_error_ft;
          if (t.sensors_localized > 0)
            centroid_frac += static_cast<double>(t.raw.sensors_tier_centroid) /
                             static_cast<double>(t.sensors_localized);
          if (first || t.min_cell_usable < min_usable)
            min_usable = t.min_cell_usable;
          first = false;
        }
        const double n = agg.trials.empty()
                             ? 1.0
                             : static_cast<double>(agg.trials.size());
        table.row()
            .cell(lifecycle_on ? "lifecycle" : "permanent")
            .cell(static_cast<long long>(waves))
            .cell(framing_alerts / n)
            .cell(agg.detection_rate.mean())
            .cell(agg.false_positive_rate.mean())
            .cell(benign_revoked / n)
            .cell(benign_quarantined / n)
            .cell(exonerations / n)
            .cell(static_cast<long long>(min_usable))
            .cell(p99 / n)
            .cell(centroid_frac / n);
      }
    }
    table.print_csv(it.out(),
                    "Framing DoS: coverage-directed framing waves vs the "
                    "permanent scheme and the evidence lifecycle + fallback "
                    "ladder (paper tau1/tau2 defaults)");
  });
}
