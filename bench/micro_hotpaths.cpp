// google-benchmark microbenchmarks for the library's hot paths: the MAC
// primitive, multilateration solve, event-queue churn, RTT sampling, and a
// full small-scale trial.
#include <benchmark/benchmark.h>

#include "analysis/formulas.hpp"
#include "core/secure_localization.hpp"
#include "crypto/siphash.hpp"
#include "crypto/tesla.hpp"
#include "localization/multilateration.hpp"
#include "ranging/rtt.hpp"
#include "routing/gpsr.hpp"
#include "sim/event.hpp"
#include "util/rng.hpp"

namespace {

void BM_SipHash64ByteMessage(benchmark::State& state) {
  sld::crypto::Key128 key{};
  for (std::uint8_t i = 0; i < 16; ++i) key[i] = i;
  std::vector<std::uint8_t> msg(64, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sld::crypto::siphash24(key, msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SipHash64ByteMessage);

void BM_MultilaterationSolve(benchmark::State& state) {
  sld::util::Rng rng(1);
  const sld::util::Vec2 truth{500, 500};
  sld::localization::LocationReferences refs;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0));
       ++i) {
    const sld::util::Vec2 b{truth.x + rng.uniform(-150, 150),
                            truth.y + rng.uniform(-150, 150)};
    refs.push_back({i, b, sld::util::distance(truth, b) + rng.uniform(-4, 4)});
  }
  sld::localization::MultilaterationSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(refs));
  }
}
BENCHMARK(BM_MultilaterationSolve)->Arg(4)->Arg(8)->Arg(16);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sld::sim::EventQueue q;
    for (int i = 0; i < 1000; ++i)
      q.push(static_cast<sld::sim::SimTime>((i * 7919) % 1000), []() {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_RttSample(benchmark::State& state) {
  sld::ranging::MoteTimingModel model;
  sld::util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample_rtt_cycles(75.0, rng));
  }
}
BENCHMARK(BM_RttSample);

void BM_GpsrRoute(benchmark::State& state) {
  sld::util::Rng rng(3);
  sld::sim::DeploymentConfig dc;
  dc.total_nodes = 300;
  dc.beacon_count = 0;
  dc.malicious_beacon_count = 0;
  const auto deployment = sld::sim::deploy_random(dc, rng);
  sld::routing::Topology topo(150.0);
  for (const auto& n : deployment.nodes) topo.add_node(n.id, n.position);
  topo.build_links();
  sld::routing::GpsrRouter router(&topo);
  const auto& ids = topo.node_ids();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto src = ids[i % ids.size()];
    const auto dst = ids[(i * 37 + 11) % ids.size()];
    benchmark::DoNotOptimize(router.route(src, dst));
    ++i;
  }
}
BENCHMARK(BM_GpsrRoute);

void BM_AnalysisRevocationProbability(benchmark::State& state) {
  sld::analysis::ModelParams params;
  double P = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sld::analysis::revocation_probability(params, P));
    P += 0.001;
    if (P > 0.99) P = 0.01;
  }
}
BENCHMARK(BM_AnalysisRevocationProbability);

void BM_TeslaChainSetup(benchmark::State& state) {
  sld::crypto::Key128 seed{};
  seed.fill(0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sld::crypto::TeslaKeyChain(
        seed, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TeslaChainSetup)->Arg(100)->Arg(1000);

void BM_FullSmallTrial(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sld::core::SystemConfig c;
    c.deployment.total_nodes = 200;
    c.deployment.beacon_count = 20;
    c.deployment.malicious_beacon_count = 2;
    c.deployment.field = sld::util::Rect::square(450.0);
    c.rtt_calibration_samples = 1000;
    c.strategy =
        sld::attack::MaliciousStrategyConfig::with_effectiveness(0.3);
    c.seed = seed++;
    sld::core::SecureLocalizationSystem system(c);
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(BM_FullSmallTrial)->Unit(benchmark::kMillisecond);

}  // namespace
