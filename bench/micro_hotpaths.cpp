// Hot-path microbenchmarks on the standard bench protocol: the MAC
// primitive, multilateration solve, explicit-heap event-queue churn, RTT
// sampling, GPSR routing, TESLA chain setup, and a batch of full
// small-scale trials through run_experiment.
//
// Output discipline: every row prints an operation count and a
// deterministic checksum — never a time — so stdout is a pure function of
// (flags, seed), byte-identical across --jobs levels and across --memstats
// on/off, and the golden-summary check covers this bench like any figure
// bench. Wall time, throughput, and the memstats roll-up ride exclusively
// in the --json result.
#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "crypto/siphash.hpp"
#include "crypto/tesla.hpp"
#include "localization/multilateration.hpp"
#include "obs/memstats.hpp"
#include "ranging/rtt.hpp"
#include "routing/gpsr.hpp"
#include "sim/event.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t checksum_fold(std::uint64_t acc, std::uint64_t v) {
  acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const std::size_t scale = args.fast ? 1 : 10;

  return sld::bench::run_main(
      "micro_hotpaths", args, [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"workload", "ops", "checksum"});

        // --- siphash over a 64-byte message ------------------------------
        {
          sld::crypto::Key128 key{};
          for (std::uint8_t i = 0; i < 16; ++i) key[i] = i;
          std::vector<std::uint8_t> msg(64, 0xab);
          const std::size_t n = 20'000 * scale;
          std::uint64_t sum = 0;
          for (std::size_t i = 0; i < n; ++i) {
            msg[0] = static_cast<std::uint8_t>(i);
            sum = checksum_fold(sum, sld::crypto::siphash24(key, msg));
          }
          table.row().cell("siphash_64b").cell(n).cell(sum);
        }

        // --- multilateration solve at 4/8/16 references ------------------
        for (const std::size_t nrefs : {4u, 8u, 16u}) {
          sld::util::Rng rng(args.seed);
          const sld::util::Vec2 truth{500, 500};
          sld::localization::LocationReferences refs;
          for (std::uint32_t i = 0; i < nrefs; ++i) {
            const sld::util::Vec2 b{truth.x + rng.uniform(-150, 150),
                                    truth.y + rng.uniform(-150, 150)};
            refs.push_back(
                {i, b, sld::util::distance(truth, b) + rng.uniform(-4, 4)});
          }
          sld::localization::MultilaterationSolver solver;
          const std::size_t n = 2'000 * scale;
          std::uint64_t sum = 0;
          for (std::size_t i = 0; i < n; ++i) {
            const auto r = solver.solve(refs);
            sum = checksum_fold(
                sum, r ? static_cast<std::uint64_t>(
                             std::llround(r->position.x * 16.0 +
                                          r->position.y))
                       : 0);
          }
          table.row()
              .cell("mlat_solve_" + std::to_string(nrefs))
              .cell(n)
              .cell(sum);
        }

        // --- event-queue churn (the explicit binary heap) ----------------
        // Also the micro-scale memstats subject: push allocates under the
        // "scheduler" scope, so the per-thread delta around the loop is
        // exactly this workload's allocation bill.
        {
          sld::obs::MemScopeStats before;
          if (args.memstats) {
            sld::obs::Memstats::set_enabled(true);
            before = sld::obs::Memstats::thread_totals_for("scheduler");
          }
          const std::size_t rounds = 3 * scale;
          const std::size_t events = 1000;
          std::uint64_t sum = 0;
          std::uint64_t sift_up = 0;
          std::uint64_t sift_down = 0;
          for (std::size_t r = 0; r < rounds; ++r) {
            sld::sim::EventQueue q;
            for (std::size_t i = 0; i < events; ++i)
              q.push(static_cast<sld::sim::SimTime>((i * 7919 + r) % events),
                     []() {});
            while (!q.empty()) {
              sum = checksum_fold(
                  sum, static_cast<std::uint64_t>(q.pop().when));
            }
            sift_up += q.sift_up_steps();
            sift_down += q.sift_down_steps();
          }
          table.row().cell("event_churn").cell(rounds * events).cell(sum);
          table.row()
              .cell("event_churn_sift_steps")
              .cell(static_cast<std::size_t>(sift_up + sift_down))
              .cell(checksum_fold(sift_up, sift_down));
          it.add_events(rounds * events);
          if (args.memstats) {
            const auto after =
                sld::obs::Memstats::thread_totals_for("scheduler");
            sld::obs::MemHotTotals t;
            t.enabled = true;
            t.allocs = after.allocs - before.allocs;
            t.alloc_bytes = after.alloc_bytes - before.alloc_bytes;
            t.frees = after.frees - before.frees;
            t.freed_bytes = after.freed_bytes - before.freed_bytes;
            t.max_queue_depth = events;
            t.sift_up_steps = sift_up;
            t.sift_down_steps = sift_down;
            it.add_memhot(t);
          }
        }

        // --- RTT sampling -------------------------------------------------
        {
          sld::ranging::MoteTimingModel model;
          sld::util::Rng rng(args.seed + 1);
          const std::size_t n = 10'000 * scale;
          double cycles = 0.0;
          for (std::size_t i = 0; i < n; ++i)
            cycles += model.sample_rtt_cycles(75.0, rng);
          table.row().cell("rtt_sample").cell(n).cell(
              static_cast<std::uint64_t>(cycles));
        }

        // --- GPSR routing on a 300-node topology -------------------------
        {
          sld::util::Rng rng(args.seed + 2);
          sld::sim::DeploymentConfig dc;
          dc.total_nodes = 300;
          dc.beacon_count = 0;
          dc.malicious_beacon_count = 0;
          const auto deployment = sld::sim::deploy_random(dc, rng);
          sld::routing::Topology topo(150.0);
          for (const auto& n : deployment.nodes)
            topo.add_node(n.id, n.position);
          topo.build_links();
          sld::routing::GpsrRouter router(&topo);
          const auto& ids = topo.node_ids();
          const std::size_t n = 5'000 * scale;
          std::uint64_t hops = 0;
          for (std::size_t i = 0; i < n; ++i) {
            const auto src = ids[i % ids.size()];
            const auto dst = ids[(i * 37 + 11) % ids.size()];
            hops += router.route(src, dst).path.size();
          }
          table.row().cell("gpsr_route").cell(n).cell(hops);
        }

        // --- TESLA chain setup -------------------------------------------
        {
          sld::crypto::Key128 seed{};
          seed.fill(0x42);
          const std::size_t n = 20 * scale;
          std::uint64_t sum = 0;
          for (std::size_t i = 0; i < n; ++i) {
            const sld::crypto::TeslaKeyChain chain(seed, 100 + i);
            sum = checksum_fold(sum, chain.commitment()[0]);
          }
          table.row().cell("tesla_chain").cell(n).cell(sum);
        }

        // --- full small trials through run_experiment --------------------
        // Exercises the whole stack (scheduler, channel, detection,
        // revocation) and is where --jobs and --memstats flow end to end:
        // the memstats roll-up merged here is identical at any jobs level.
        {
          sld::core::ExperimentConfig e;
          e.base.deployment.total_nodes = 200;
          e.base.deployment.beacon_count = 20;
          e.base.deployment.malicious_beacon_count = 2;
          e.base.deployment.field = sld::util::Rect::square(450.0);
          e.base.rtt_calibration_samples = 1000;
          e.base.strategy =
              sld::attack::MaliciousStrategyConfig::with_effectiveness(0.3);
          e.base.seed = args.seed;
          e.base.memstats = args.memstats;
          e.trials = args.trials;
          e.jobs = args.jobs;
          const auto agg = sld::core::run_experiment(e);
          it.add_experiment(agg, e.trials);
          table.row()
              .cell("small_trials")
              .cell(static_cast<std::size_t>(agg.total_sched_events))
              .cell(checksum_fold(agg.total_packets,
                                  static_cast<std::uint64_t>(
                                      std::llround(
                                          agg.detection_rate.mean() *
                                          1e6))));
        }

        table.print_csv(it.out(),
                        "Micro hotpaths: deterministic op counts and "
                        "checksums (times ride in --json only)");
      });
}
