// Figure 6: revocation detection rate P_d versus attack effectiveness P.
//  (a) tau2 in {2, 3, 4, 5} with m = 8;
//  (b) m in {1, 2, 4, 8} with tau2 = 4.
// N_c = 100 requesters per beacon (see DESIGN.md "Recovered constants").
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "fig06_revocation_rate", args, [&](sld::bench::BenchIteration& it) {
        std::ostream& out = it.out();
        sld::analysis::ModelParams params;  // paper defaults, N_c = 100

        {
          sld::util::Table table({"P", "tau2", "Pd"});
          params.detecting_ids = 8;
          for (const std::uint32_t tau2 : {2, 3, 4, 5}) {
            params.alert_threshold = tau2;
            for (double P = 0.0; P <= 1.0 + 1e-9; P += 0.02) {
              if (P > 1.0) P = 1.0;
              table.row().cell(P).cell(static_cast<long long>(tau2)).cell(
                  sld::analysis::revocation_probability(params, P));
              it.add_events(1);
            }
          }
          table.print_csv(out,
                          "Figure 6(a): P_d vs P for tau2 in {2,3,4,5}, "
                          "m=8, N_c=100");
        }
        out << "\n";
        {
          sld::util::Table table({"P", "m", "Pd"});
          params.alert_threshold = 4;
          for (const std::size_t m : {1, 2, 4, 8}) {
            params.detecting_ids = m;
            for (double P = 0.0; P <= 1.0 + 1e-9; P += 0.02) {
              if (P > 1.0) P = 1.0;
              table.row().cell(P).cell(static_cast<long long>(m)).cell(
                  sld::analysis::revocation_probability(params, P));
              it.add_events(1);
            }
          }
          table.print_csv(out,
                          "Figure 6(b): P_d vs P for m in {1,2,4,8}, "
                          "tau2=4, N_c=100");
        }
      });
}
