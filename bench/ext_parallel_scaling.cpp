// Extension (beyond the paper): throughput scaling of the parallel trial
// executor (core/executor.hpp). The workload is a fixed sweep of
// attacker-effectiveness points, each run as one multi-trial experiment,
// so `--jobs N` fans the trials across N workers while the printed tables
// stay byte-identical to `--jobs 1` — the goldens file pins this binary
// both plain and with `--jobs 4` to the SAME hash, turning the golden
// check into a standing serial-vs-parallel equivalence proof. Speed lives
// in the --json result (events_per_sec); CI runs jobs 1/2/4 and gates the
// jobs-4 speedup with bench_compare.py --speedup.
//
// Trials per point are `--trials` x 8 so even the goldens configuration
// (--trials 1) gives each worker real work instead of degenerating to the
// serial path (jobs are clamped to the trial count).
#include <iostream>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "sim/deployment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const double step = args.fast ? 0.3 : 0.15;
  const std::size_t trials_per_point = args.trials * 8;

  return sld::bench::run_main(
      "ext_parallel_scaling", args, [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"P", "trials", "detection_rate", "ci95",
                                "false_positive_rate", "mean_loc_error_ft"});
        for (double P = step; P <= 0.9 + 1e-9; P += step) {
          sld::core::ExperimentConfig e;
          e.base.strategy =
              sld::attack::MaliciousStrategyConfig::with_effectiveness(P);
          if (args.fast) {
            // Same density as the paper at ~1/3 scale: keeps the smoke /
            // goldens run sub-second per trial while leaving enough work
            // per trial for the scaling measurement to mean something.
            e.base.deployment.total_nodes = 300;
            e.base.deployment.beacon_count = 30;
            e.base.deployment.malicious_beacon_count = 3;
            e.base.deployment.field = sld::util::Rect::square(550.0);
            e.base.rtt_calibration_samples = 2000;
          }
          e.base.seed = args.seed + static_cast<std::uint64_t>(P * 1000);
          e.base.memstats = args.memstats;
          e.trials = trials_per_point;
          e.jobs = args.jobs;
          const auto agg = sld::core::run_experiment(e);
          it.add_experiment(agg, e.trials);
          table.row()
              .cell(P)
              .cell(trials_per_point)
              .cell(agg.detection_rate.mean())
              .cell(agg.detection_rate.ci95_halfwidth())
              .cell(agg.false_positive_rate.mean())
              .cell(agg.mean_localization_error_ft.mean());
        }
        table.print_csv(it.out(),
                        "Extension: parallel-executor workload (aggregates "
                        "are jobs-invariant; speed is in --json)");
      });
}
