#include "bench_runner.hpp"

#include <sys/resource.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace sld::bench {

namespace {

/// A stream that swallows everything (warmup / non-reporting repeats).
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

double median_of(std::vector<double> xs) {
  const std::size_t n = xs.size();
  std::sort(xs.begin(), xs.end());
  return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/// Median absolute deviation — the noise scale bench_compare.py uses.
double mad_of(const std::vector<double>& xs) {
  const double med = median_of(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (const double x : xs) dev.push_back(std::abs(x - med));
  return median_of(std::move(dev));
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char num[40];
  std::snprintf(num, sizeof(num), "%.10g", v);
  out += num;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  out += '"';
}

/// Peak resident set size of this process, bytes (ru_maxrss is KiB on
/// Linux).
std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

std::string build_result_json(const char* name, const BenchArgs& args,
                              const std::vector<double>& wall_ms,
                              const BenchIteration& last) {
  const double median_ms = median_of(wall_ms);
  const double mad_ms = mad_of(wall_ms);
  const double secs = median_ms / 1000.0;

  std::string out;
  out.reserve(2048);
  out += "{\"schema\":\"sld-bench-result/v1\",\"name\":";
  append_quoted(out, name);
  out += ",\"args\":{\"trials\":";
  out += std::to_string(args.trials);
  out += ",\"seed\":";
  out += std::to_string(args.seed);
  out += ",\"fast\":";
  out += args.fast ? "true" : "false";
  out += ",\"repeats\":";
  out += std::to_string(args.repeats);
  out += ",\"warmup\":";
  out += std::to_string(args.warmup);
  out += ",\"jobs\":";
  out += std::to_string(args.jobs);
  out += "},\"wall_ms\":{\"repeats\":[";
  for (std::size_t i = 0; i < wall_ms.size(); ++i) {
    if (i) out += ',';
    append_number(out, wall_ms[i]);
  }
  out += "],\"median\":";
  append_number(out, median_ms);
  out += ",\"mad\":";
  append_number(out, mad_ms);
  out += "},\"throughput\":{\"sim_events\":";
  out += std::to_string(last.sim_events());
  out += ",\"packets\":";
  out += std::to_string(last.packets());
  out += ",\"trials\":";
  out += std::to_string(last.trials());
  out += ",\"events_per_sec\":";
  append_number(out, secs > 0.0
                         ? static_cast<double>(last.sim_events()) / secs
                         : 0.0);
  out += ",\"packets_per_sec\":";
  append_number(out, secs > 0.0
                         ? static_cast<double>(last.packets()) / secs
                         : 0.0);
  out += "},\"peak_rss_bytes\":";
  out += std::to_string(peak_rss_bytes());

  // Memory & hot-path roll-up, present only when the bench ran with
  // --memstats. The integer fields are exact (identical at any --jobs);
  // the derived ratios and p99s ride along for humans and dashboards.
  if (last.memhot().enabled) {
    const obs::MemHotTotals& m = last.memhot();
    const double events = static_cast<double>(last.sim_events());
    out += ",\"memstats\":{\"allocs\":";
    out += std::to_string(m.allocs);
    out += ",\"alloc_bytes\":";
    out += std::to_string(m.alloc_bytes);
    out += ",\"frees\":";
    out += std::to_string(m.frees);
    out += ",\"freed_bytes\":";
    out += std::to_string(m.freed_bytes);
    out += ",\"peak_live_bytes\":";
    out += std::to_string(m.peak_live_bytes);
    out += ",\"allocs_per_event\":";
    append_number(out, events > 0.0
                           ? static_cast<double>(m.allocs) / events
                           : 0.0);
    out += ",\"bytes_per_event\":";
    append_number(out, events > 0.0
                           ? static_cast<double>(m.alloc_bytes) / events
                           : 0.0);
    out += ",\"max_queue_depth\":";
    out += std::to_string(m.max_queue_depth);
    out += ",\"queue_depth_p99\":";
    append_number(out, m.queue_depth_p99);
    out += ",\"sift_up_steps\":";
    out += std::to_string(m.sift_up_steps);
    out += ",\"sift_down_steps\":";
    out += std::to_string(m.sift_down_steps);
    out += ",\"scans\":";
    out += std::to_string(m.scans);
    out += ",\"scan_nodes\":";
    out += std::to_string(m.scan_nodes);
    out += ",\"scan_fanout_mean\":";
    append_number(out, m.scan_fanout_mean());
    out += ",\"packet_lifetime_p99_ns\":";
    append_number(out, m.packet_lifetime_p99_ns);
    out += "}";
  }

  out += ",\"host\":{";
  struct utsname un {};
  const bool have_uname = uname(&un) == 0;
  out += "\"os\":";
  append_quoted(out, have_uname ? un.sysname : "unknown");
  out += ",\"arch\":";
  append_quoted(out, have_uname ? un.machine : "unknown");
  out += ",\"hostname\":";
  append_quoted(out, have_uname ? un.nodename : "unknown");
  const long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  out += ",\"cpus\":";
  out += std::to_string(cpus > 0 ? cpus : 0);
  out += ",\"compiler\":";
#if defined(__VERSION__)
  append_quoted(out, __VERSION__);
#else
  append_quoted(out, "unknown");
#endif
  out += ",\"build\":";
#if defined(SLD_BENCH_BUILD_TYPE)
  append_quoted(out, SLD_BENCH_BUILD_TYPE);
#else
  append_quoted(out, "unknown");
#endif
  out += ",\"git\":";
#if defined(SLD_BENCH_GIT_SHA)
  append_quoted(out, SLD_BENCH_GIT_SHA);
#else
  append_quoted(out, "unknown");
#endif
  out += "},\"timestamp_unix\":";
  out += std::to_string(static_cast<long long>(std::time(nullptr)));
  out += "}\n";
  return out;
}

}  // namespace

void BenchIteration::add_experiment(const core::AggregateSummary& agg,
                                    std::uint64_t trials) {
  sim_events_ += agg.total_sched_events;
  packets_ += agg.total_packets;
  trials_ += trials;
  memhot_.merge(agg.memhot);
}

void BenchIteration::add_trial(const core::TrialSummary& summary) {
  sim_events_ += summary.sched_events;
  packets_ += summary.channel.transmissions;
  trials_ += 1;
  memhot_.merge(summary.memhot);
}

int run_main(const char* name, const BenchArgs& args, const BenchBody& body) {
  NullBuffer null_buffer;
  std::ostream null_out(&null_buffer);

  obs::Profiler& profiler = obs::Profiler::instance();
  if (!args.profile_path.empty()) {
    profiler.reset();
    obs::Profiler::set_enabled(true);
  }

  for (std::size_t w = 0; w < args.warmup; ++w) {
    BenchIteration it(null_out, /*report=*/false);
    body(it);
  }

  std::vector<double> wall_ms;
  wall_ms.reserve(args.repeats);
  BenchIteration last(null_out, false);
  for (std::size_t r = 0; r < args.repeats; ++r) {
    const bool report = r + 1 == args.repeats;
    BenchIteration it(report ? std::cout : null_out, report);
    const auto start = std::chrono::steady_clock::now();
    body(it);
    wall_ms.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    last = it;
  }

  if (args.memstats) std::cerr << obs::Memstats::format_table();

  if (!args.profile_path.empty()) {
    obs::Profiler::set_enabled(false);
    std::ofstream profile_out(args.profile_path);
    if (!profile_out) {
      std::cerr << "--profile: cannot open " << args.profile_path << "\n";
      return 2;
    }
    profile_out << profiler.snapshot_json() << "\n";
    std::cerr << profiler.format_table();
  }

  if (!args.json_path.empty()) {
    std::ofstream json_out(args.json_path);
    if (!json_out) {
      std::cerr << "--json: cannot open " << args.json_path << "\n";
      return 2;
    }
    json_out << build_result_json(name, args, wall_ms, last);
    if (!json_out) {
      std::cerr << "--json: write failed: " << args.json_path << "\n";
      return 2;
    }
  }
  return 0;
}

}  // namespace sld::bench
