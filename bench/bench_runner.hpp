// Unified bench-result protocol (see DESIGN.md "Performance
// observability").
//
// Every figure/extension/ablation bench hands its whole workload to
// `run_main`, which runs the standard measurement loop — `--warmup N`
// unmeasured repetitions, then `--repeats N` measured ones — and, when
// `--json FILE` is given, emits one schema-versioned machine-readable
// result ("sld-bench-result/v1"): per-repeat wall times with median + MAD,
// simulated-events/sec and packets/sec throughput, peak RSS, and
// host/compiler/git metadata. tools/bench_compare.py consumes these files
// to gate perf regressions.
//
// The workload writes its human-readable tables to `it.out()`, which is
// real stdout only on the reporting (last measured) repetition — so with
// the default flags (one repeat, no warmup) bench stdout is byte-for-byte
// what it was before the protocol existed, and the golden-summary check
// keeps passing. Workloads must be deterministic functions of BenchArgs:
// every repetition re-runs identical work.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/secure_localization.hpp"
#include "obs/memstats.hpp"

namespace sld::bench {

/// Per-repetition context handed to the bench workload.
class BenchIteration {
 public:
  BenchIteration(std::ostream& out, bool report)
      : out_(&out), report_(report) {}

  /// Destination of the bench's human-readable output. Real stdout on the
  /// reporting repetition, a swallow-everything stream otherwise.
  std::ostream& out() const { return *out_; }

  /// True exactly once per bench invocation (the last measured repeat);
  /// guard side effects like --metrics files with this.
  bool report() const { return report_; }

  // --- throughput accounting for the JSON result --------------------------
  void add_events(std::uint64_t n) { sim_events_ += n; }
  void add_packets(std::uint64_t n) { packets_ += n; }
  void add_trials(std::uint64_t n) { trials_ += n; }
  /// Credits a whole experiment's scheduler events, transmissions, trials
  /// (and its memstats roll-up, if the experiment ran with memstats on).
  void add_experiment(const core::AggregateSummary& agg,
                      std::uint64_t trials);
  /// Credits one directly-run trial.
  void add_trial(const core::TrialSummary& summary);
  /// Folds a memory/hot-path roll-up produced outside run_experiment (e.g.
  /// a micro-workload that read Memstats directly).
  void add_memhot(const obs::MemHotTotals& totals) { memhot_.merge(totals); }

  std::uint64_t sim_events() const { return sim_events_; }
  std::uint64_t packets() const { return packets_; }
  std::uint64_t trials() const { return trials_; }
  const obs::MemHotTotals& memhot() const { return memhot_; }

 private:
  std::ostream* out_;
  bool report_;
  std::uint64_t sim_events_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t trials_ = 0;
  obs::MemHotTotals memhot_;
};

using BenchBody = std::function<void(BenchIteration&)>;

/// The standard bench main: measurement loop + optional --json result +
/// optional --profile snapshot. Returns the process exit code.
int run_main(const char* name, const BenchArgs& args, const BenchBody& body);

}  // namespace sld::bench
