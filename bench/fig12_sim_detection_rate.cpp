// Figure 12: detection rate versus P — full event-driven simulation
// against the theoretical analysis, at the paper's §4 scale (1000 nodes,
// 100 beacons, 10 malicious, wormhole (100,100)-(800,700), m=8, p_d=0.9,
// tau1=10, tau2=2). The theory curve is evaluated at the measured average
// requester count, the same coupling the paper uses.
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const double step = args.fast ? 0.2 : 0.05;

  return sld::bench::run_main(
      "fig12_sim_detection_rate", args,
      [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"P", "detection_rate_sim", "ci95",
                                "detection_rate_theory", "measured_Nc"});
        for (double P = step; P <= 1.0 + 1e-9; P += step) {
          if (P > 1.0) P = 1.0;
          sld::core::ExperimentConfig e;
          e.base.strategy =
              sld::attack::MaliciousStrategyConfig::with_effectiveness(P);
          e.base.seed = args.seed + static_cast<std::uint64_t>(P * 1000);
          e.base.memstats = args.memstats;
          e.trials = args.trials;
          e.jobs = args.jobs;
          const auto agg = sld::core::run_experiment(e);
          it.add_experiment(agg, e.trials);

          const auto params = sld::core::model_params_for(
              e.base, agg.requesters_per_malicious.mean());
          table.row()
              .cell(P)
              .cell(agg.detection_rate.mean())
              .cell(agg.detection_rate.ci95_halfwidth())
              .cell(sld::analysis::revocation_probability(params, P))
              .cell(agg.requesters_per_malicious.mean());
        }
        table.print_csv(it.out(),
                        "Figure 12: detection rate vs P, simulation vs "
                        "theory (tau1=10, tau2=2, m=8, p_d=0.9)");
      });
}
