// Figure 4: cumulative distribution of the round-trip time between two
// neighbour motes with no replay attack, measured 10,000 times, in CPU
// clock cycles. The paper reports a narrow S-curve whose width is about
// 4.5 bit-times (1728 cycles); x_min and x_max bound the no-attack RTT and
// x_max becomes the local-replay detector's acceptance threshold.
#include <iostream>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "ranging/rtt.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const std::size_t samples = args.fast ? 2000 : 10000;

  return sld::bench::run_main(
      "fig04_rtt_cdf", args, [&](sld::bench::BenchIteration& it) {
        std::ostream& out = it.out();
        sld::ranging::MoteTimingModel model;
        sld::util::Rng rng(args.seed);
        const auto cal =
            sld::ranging::calibrate_rtt(model, samples, 150.0, rng);
        it.add_events(samples);

        sld::util::Table table({"rtt_cycles", "cumulative_distribution"});
        const double lo = cal.x_min_cycles - 100.0;
        const double hi = cal.x_max_cycles + 100.0;
        constexpr int kPoints = 60;
        for (int i = 0; i <= kPoints; ++i) {
          const double x = lo + (hi - lo) * i / kPoints;
          table.row().cell(x).cell(cal.cdf.at(x));
        }
        table.print_csv(
            out, "Figure 4: cumulative distribution of RTT (no attack), " +
                     std::to_string(samples) + " measurements");

        out << "\n# summary\n"
            << "x_min_cycles," << cal.x_min_cycles << "\n"
            << "x_max_cycles," << cal.x_max_cycles << "\n"
            << "span_cycles," << cal.x_max_cycles - cal.x_min_cycles << "\n"
            << "span_bits,"
            << (cal.x_max_cycles - cal.x_min_cycles) / 384.0 << "\n"
            << "# paper: span ~ 4.5 bit-times; one bit = 384 CPU cycles\n";
      });
}
