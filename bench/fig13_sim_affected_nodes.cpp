// Figure 13: average number N' of requesting non-beacon nodes accepting
// the malicious beacon signals from a malicious beacon node, versus P —
// full simulation against theory at the paper's §4 scale.
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);
  const double step = args.fast ? 0.2 : 0.05;

  return sld::bench::run_main(
      "fig13_sim_affected_nodes", args,
      [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"P", "N_affected_sim", "ci95",
                                "N_affected_theory", "measured_Nc"});
        for (double P = step; P <= 1.0 + 1e-9; P += step) {
          if (P > 1.0) P = 1.0;
          sld::core::ExperimentConfig e;
          e.base.strategy =
              sld::attack::MaliciousStrategyConfig::with_effectiveness(P);
          e.base.seed =
              args.seed + 7000 + static_cast<std::uint64_t>(P * 1000);
          e.base.memstats = args.memstats;
          e.trials = args.trials;
          e.jobs = args.jobs;
          const auto agg = sld::core::run_experiment(e);
          it.add_experiment(agg, e.trials);

          const auto params = sld::core::model_params_for(
              e.base, agg.requesters_per_malicious.mean());
          table.row()
              .cell(P)
              .cell(agg.affected_per_malicious.mean())
              .cell(agg.affected_per_malicious.ci95_halfwidth())
              .cell(sld::analysis::affected_nonbeacon_nodes(params, P))
              .cell(agg.requesters_per_malicious.mean());
        }
        table.print_csv(it.out(),
                        "Figure 13: N' (affected non-beacon requesters per "
                        "malicious beacon) vs P, simulation vs theory");
      });
}
