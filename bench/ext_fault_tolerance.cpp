// Extension bench: fault tolerance of detection + revocation.
//
// Sweeps channel loss {0, 0.05, 0.1, 0.2} x loss model {i.i.d.,
// Gilbert-Elliott bursty} and reports, with ARQ retries off vs on:
// detection rate, false-positive rate, mean malicious-revocation latency,
// and the radio-energy overhead of the retries. This is the paper's
// Figure 5/6 story re-examined without the "reliable delivery via
// retransmission" assumption: the metrics must degrade gracefully with
// loss, and retries must buy the degradation back.
// With --chaos-sweep, a second table runs the same trials under the chaos
// fault families (crash/reboot windows, a partition, clock drift, WAL-backed
// base-station outages, standby failover) and reports recovery accounting
// next to the detection metrics. Off by default: the standard sweep output
// stays byte-identical for the golden hash.
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "sim/deployment.hpp"
#include "util/table.hpp"

namespace {

sld::core::SystemConfig scaled_config(const sld::bench::BenchArgs& args) {
  sld::core::SystemConfig c;
  if (args.fast) {
    // Same density as the paper at ~1/3 scale.
    c.deployment.total_nodes = 300;
    c.deployment.beacon_count = 30;
    c.deployment.malicious_beacon_count = 3;
    c.deployment.field = sld::util::Rect::square(550.0);
    c.rtt_calibration_samples = 2000;
  }
  c.strategy = sld::attack::MaliciousStrategyConfig::with_effectiveness(0.8);
  return c;
}

// The named chaos families of the --chaos-sweep table. Node ids are valid
// at both bench scales (beacons from kFirstBeaconId, sensors from
// kNonBeaconIdBase).
std::vector<std::pair<const char*, void (*)(sld::core::SystemConfig&)>>
chaos_scenarios() {
  using sld::core::SystemConfig;
  namespace sim = sld::sim;
  static const auto crash_reboot = [](SystemConfig& c) {
    // Two benign beacons and two sensors reboot mid-probe-phase.
    for (const sim::NodeId beacon :
         {sim::kFirstBeaconId + 3, sim::kFirstBeaconId + 7}) {
      // The probe/alert burst rides the first ~0.5 s: start the window
      // inside it so in-flight reporter state is genuinely lost.
      c.faults.crashes.push_back(
          {beacon, 200 * sim::kMillisecond, 9 * sim::kSecond});
    }
    for (const sim::NodeId sensor :
         {sim::kNonBeaconIdBase + 0, sim::kNonBeaconIdBase + 11}) {
      c.faults.crashes.push_back(
          {sensor, 30 * sim::kSecond, c.sensor_phase_start + 200 * sim::kMillisecond});
    }
  };
  static const auto partition = [](SystemConfig& c) {
    sim::PartitionWindow w;
    for (sim::NodeId b = sim::kFirstBeaconId; b < sim::kFirstBeaconId + 5; ++b)
      w.side_a.push_back(b);
    // Cut while probe/alert traffic is still in the air.
    w.start = 100 * sim::kMillisecond;
    w.end = 4 * sim::kSecond;
    c.faults.partitions.push_back(std::move(w));
  };
  static const auto drift = [](SystemConfig& c) {
    c.faults.clock_drift.max_drift_ppm = 50.0;
  };
  static const auto bs_outage = [](SystemConfig& c) {
    c.failover.durable.enabled = true;
    c.failover.durable.fsync_every_records = 2;
    c.failover.primary_outages = {{0, 2 * sim::kSecond}};
  };
  static const auto standby = [](SystemConfig& c) {
    c.failover.durable.enabled = true;
    c.failover.standby_enabled = true;
    c.failover.primary_outages = {{1 * sim::kSecond, 3600 * sim::kSecond}};
  };
  static const auto combined = [](SystemConfig& c) {
    crash_reboot(c);
    partition(c);
    drift(c);
    standby(c);
  };
  return {{"none", +[](SystemConfig&) {}},
          {"crash_reboot", +crash_reboot},
          {"partition", +partition},
          {"clock_drift", +drift},
          {"bs_outage_wal", +bs_outage},
          {"standby_failover", +standby},
          {"combined", +combined}};
}

}  // namespace

int main(int argc, char** argv) {
  double burst_len = 4.0;
  const auto args = sld::bench::BenchArgs::parse(
      argc, argv,
      [&](const std::string& a, const auto& next) {
        if (a == "--burst-len") {
          burst_len =
              sld::bench::parse_positive_double("--burst-len",
                                                next("--burst-len"));
          return true;
        }
        return false;
      },
      "  --burst-len L  Gilbert-Elliott average burst length, > 0 "
      "(default 4)\n");

  return sld::bench::run_main("ext_fault_tolerance", args,
                              [&](sld::bench::BenchIteration& it) {
  // Trace and metrics side effects belong to the reporting repetition
  // only (every repetition runs identical deterministic work).
  const auto trace_sink =
      it.report() ? args.open_trace_sink() : nullptr;
  std::ofstream metrics_out;
  if (it.report() && !args.metrics_path.empty()) {
    metrics_out.open(args.metrics_path);
    if (!metrics_out) {
      std::cerr << "--metrics: cannot open " << args.metrics_path << "\n";
      std::exit(2);
    }
    metrics_out << "[";
  }
  std::size_t metrics_entries = 0;
  const double losses[] = {0.0, 0.05, 0.1, 0.2};

  sld::util::Table table(
      {"loss_model", "loss_rate", "arq", "detection_rate", "ci95",
       "false_positive_rate", "revocation_latency_ms", "probe_timeouts",
       "retransmissions", "radio_energy_uj"});

  for (const bool bursty : {false, true}) {
    for (const double loss : losses) {
      for (const bool arq_on : {false, true}) {
        sld::core::ExperimentConfig e;
        e.base = scaled_config(args);
        e.base.seed = args.seed;
        e.base.memstats = args.memstats;
        e.trials = args.trials;
        e.jobs = args.jobs;
        if (bursty) {
          if (loss > 0.0)
            e.base.faults.burst =
                sld::sim::GilbertElliottConfig::for_average_loss(loss,
                                                                 burst_len);
        } else {
          e.base.faults.loss_probability = loss;
        }
        // The alert transport (multi-hop to the base station) sees the
        // same per-attempt loss as the radio links.
        e.base.alert_loss_probability = loss;
        if (arq_on) {
          e.base.arq.enabled = true;
          e.base.arq.initial_timeout_ns = 250 * sld::sim::kMillisecond;
          e.base.arq.max_retries = 4;
        }
        e.base.trace_sink = trace_sink.get();
        e.keep_trial_summaries = true;
        const auto agg = sld::core::run_experiment(e);
        it.add_experiment(agg, e.trials);

        std::uint64_t probe_timeouts = 0, retx = 0;
        for (std::size_t ti = 0; ti < agg.trials.size(); ++ti) {
          const auto& t = agg.trials[ti];
          probe_timeouts += t.raw.probe_no_response;
          retx += t.raw.probe_retransmissions + t.raw.sensor_retransmissions +
                  t.raw.alert_retransmissions;
          if (metrics_out.is_open()) {
            if (metrics_entries++) metrics_out << ",";
            metrics_out << "\n{\"loss_model\":\""
                        << (bursty ? "bursty" : "iid")
                        << "\",\"loss_rate\":" << loss << ",\"arq\":\""
                        << (arq_on ? "on" : "off") << "\",\"trial\":" << ti
                        << ",\"seed\":" << (args.seed + ti)
                        << ",\"metrics\":" << t.metrics_json << "}";
          }
        }
        table.row()
            .cell(bursty ? "bursty" : "iid")
            .cell(loss)
            .cell(arq_on ? "on" : "off")
            .cell(agg.detection_rate.mean())
            .cell(agg.detection_rate.ci95_halfwidth())
            .cell(agg.false_positive_rate.mean())
            .cell(agg.revocation_latency_ms.mean())
            .cell(probe_timeouts)
            .cell(retx)
            .cell(agg.radio_energy_uj.mean());
      }
    }
  }
  table.print_csv(it.out(),
                  "Fault tolerance: detection/revocation vs channel loss "
                  "(iid + Gilbert-Elliott burst len 4), ARQ off vs on "
                  "(timeout 250 ms, 4 retries, exp. backoff)");

  if (args.chaos_sweep) {
    sld::util::Table chaos(
        {"scenario", "detection_rate", "ci95", "false_positive_rate",
         "revocation_latency_ms", "bs_restarts", "bs_failovers", "wal_lost",
         "station_unavailable", "partition_drops", "reporter_crash_drops"});
    for (const auto& [name, apply] : chaos_scenarios()) {
      sld::core::ExperimentConfig e;
      e.base = scaled_config(args);
      e.base.seed = args.seed;
      e.base.memstats = args.memstats;
      e.trials = args.trials;
      e.jobs = args.jobs;
      e.base.arq.enabled = true;
      e.base.arq.initial_timeout_ns = 250 * sld::sim::kMillisecond;
      e.base.arq.max_retries = 4;
      apply(e.base);
      e.base.trace_sink = trace_sink.get();
      e.keep_trial_summaries = true;
      const auto agg = sld::core::run_experiment(e);
      it.add_experiment(agg, e.trials);

      std::uint64_t restarts = 0, failovers = 0, wal_lost = 0,
                    unavailable = 0, partition_drops = 0, reporter_drops = 0;
      for (const auto& t : agg.trials) {
        restarts += t.cluster.restarts;
        failovers += t.cluster.failovers;
        wal_lost += t.durable.records_lost;
        unavailable += t.raw.alerts_station_unavailable;
        partition_drops += t.channel.partition_drops;
        reporter_drops += t.raw.alerts_dropped_reporter_crash;
      }
      chaos.row()
          .cell(name)
          .cell(agg.detection_rate.mean())
          .cell(agg.detection_rate.ci95_halfwidth())
          .cell(agg.false_positive_rate.mean())
          .cell(agg.revocation_latency_ms.mean())
          .cell(restarts)
          .cell(failovers)
          .cell(wal_lost)
          .cell(unavailable)
          .cell(partition_drops)
          .cell(reporter_drops);
    }
    chaos.print_csv(it.out(),
                    "Chaos sweep: detection/revocation under crash/reboot, "
                    "partition, clock drift, and base-station outage "
                    "families (ARQ on)");
  }
  if (metrics_out.is_open()) metrics_out << "\n]\n";
  });
}
