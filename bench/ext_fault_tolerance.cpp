// Extension bench: fault tolerance of detection + revocation.
//
// Sweeps channel loss {0, 0.05, 0.1, 0.2} x loss model {i.i.d.,
// Gilbert-Elliott bursty} and reports, with ARQ retries off vs on:
// detection rate, false-positive rate, mean malicious-revocation latency,
// and the radio-energy overhead of the retries. This is the paper's
// Figure 5/6 story re-examined without the "reliable delivery via
// retransmission" assumption: the metrics must degrade gracefully with
// loss, and retries must buy the degradation back.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

namespace {

sld::core::SystemConfig scaled_config(const sld::bench::BenchArgs& args) {
  sld::core::SystemConfig c;
  if (args.fast) {
    // Same density as the paper at ~1/3 scale.
    c.deployment.total_nodes = 300;
    c.deployment.beacon_count = 30;
    c.deployment.malicious_beacon_count = 3;
    c.deployment.field = sld::util::Rect::square(550.0);
    c.rtt_calibration_samples = 2000;
  }
  c.strategy = sld::attack::MaliciousStrategyConfig::with_effectiveness(0.8);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main("ext_fault_tolerance", args,
                              [&](sld::bench::BenchIteration& it) {
  // Trace and metrics side effects belong to the reporting repetition
  // only (every repetition runs identical deterministic work).
  const auto trace_sink =
      it.report() ? args.open_trace_sink() : nullptr;
  std::ofstream metrics_out;
  if (it.report() && !args.metrics_path.empty()) {
    metrics_out.open(args.metrics_path);
    if (!metrics_out) {
      std::cerr << "--metrics: cannot open " << args.metrics_path << "\n";
      std::exit(2);
    }
    metrics_out << "[";
  }
  std::size_t metrics_entries = 0;
  const double losses[] = {0.0, 0.05, 0.1, 0.2};
  const double kBurstLen = 4.0;

  sld::util::Table table(
      {"loss_model", "loss_rate", "arq", "detection_rate", "ci95",
       "false_positive_rate", "revocation_latency_ms", "probe_timeouts",
       "retransmissions", "radio_energy_uj"});

  for (const bool bursty : {false, true}) {
    for (const double loss : losses) {
      for (const bool arq_on : {false, true}) {
        sld::core::ExperimentConfig e;
        e.base = scaled_config(args);
        e.base.seed = args.seed;
        e.trials = args.trials;
        if (bursty) {
          if (loss > 0.0)
            e.base.faults.burst =
                sld::sim::GilbertElliottConfig::for_average_loss(loss,
                                                                 kBurstLen);
        } else {
          e.base.faults.loss_probability = loss;
        }
        // The alert transport (multi-hop to the base station) sees the
        // same per-attempt loss as the radio links.
        e.base.alert_loss_probability = loss;
        if (arq_on) {
          e.base.arq.enabled = true;
          e.base.arq.initial_timeout_ns = 250 * sld::sim::kMillisecond;
          e.base.arq.max_retries = 4;
        }
        e.base.trace_sink = trace_sink.get();
        e.keep_trial_summaries = true;
        const auto agg = sld::core::run_experiment(e);
        it.add_experiment(agg, e.trials);

        std::uint64_t probe_timeouts = 0, retx = 0;
        for (std::size_t ti = 0; ti < agg.trials.size(); ++ti) {
          const auto& t = agg.trials[ti];
          probe_timeouts += t.raw.probe_no_response;
          retx += t.raw.probe_retransmissions + t.raw.sensor_retransmissions +
                  t.raw.alert_retransmissions;
          if (metrics_out.is_open()) {
            if (metrics_entries++) metrics_out << ",";
            metrics_out << "\n{\"loss_model\":\""
                        << (bursty ? "bursty" : "iid")
                        << "\",\"loss_rate\":" << loss << ",\"arq\":\""
                        << (arq_on ? "on" : "off") << "\",\"trial\":" << ti
                        << ",\"seed\":" << (args.seed + ti)
                        << ",\"metrics\":" << t.metrics_json << "}";
          }
        }
        table.row()
            .cell(bursty ? "bursty" : "iid")
            .cell(loss)
            .cell(arq_on ? "on" : "off")
            .cell(agg.detection_rate.mean())
            .cell(agg.detection_rate.ci95_halfwidth())
            .cell(agg.false_positive_rate.mean())
            .cell(agg.revocation_latency_ms.mean())
            .cell(probe_timeouts)
            .cell(retx)
            .cell(agg.radio_energy_uj.mean());
      }
    }
  }
  table.print_csv(it.out(),
                  "Fault tolerance: detection/revocation vs channel loss "
                  "(iid + Gilbert-Elliott burst len 4), ARQ off vs on "
                  "(timeout 250 ms, 4 retries, exp. backoff)");
  if (metrics_out.is_open()) metrics_out << "\n]\n";
  });
}
