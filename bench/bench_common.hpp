// Shared helpers for the figure-reproduction benches: a tiny flag parser
// (--trials N, --seed S, --fast) so every bench can be re-run with more
// statistical power without recompiling.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

namespace sld::bench {

struct BenchArgs {
  std::size_t trials = 5;
  std::uint64_t seed = 1;
  bool fast = false;  // benches may shrink sweeps under --fast

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next_value = [&](const char* flag) -> long long {
        if (i + 1 >= argc) {
          std::cerr << flag << " requires a value\n";
          std::exit(2);
        }
        return std::atoll(argv[++i]);
      };
      if (a == "--trials") {
        args.trials = static_cast<std::size_t>(next_value("--trials"));
      } else if (a == "--seed") {
        args.seed = static_cast<std::uint64_t>(next_value("--seed"));
      } else if (a == "--fast") {
        args.fast = true;
      } else if (a == "--help" || a == "-h") {
        std::cout << "usage: " << argv[0]
                  << " [--trials N] [--seed S] [--fast]\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << a << "\n";
        std::exit(2);
      }
    }
    return args;
  }
};

}  // namespace sld::bench
