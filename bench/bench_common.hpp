// Shared helpers for the figure-reproduction benches: a tiny flag parser
// (--trials N, --seed S, --fast, --trace FILE, --metrics FILE) so every
// bench can be re-run with more statistical power — or full forensics —
// without recompiling.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "obs/trace.hpp"

namespace sld::bench {

struct BenchArgs {
  std::size_t trials = 5;
  std::uint64_t seed = 1;
  bool fast = false;  // benches may shrink sweeps under --fast
  /// JSONL trace destination ("--trace FILE"); empty means tracing off.
  std::string trace_path;
  /// Per-trial metrics snapshot destination ("--metrics FILE").
  std::string metrics_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next_arg = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::cerr << flag << " requires a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      auto next_value = [&](const char* flag) -> long long {
        const char* text = next_arg(flag);
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(text, &end, 10);
        if (end == text || *end != '\0') {
          std::cerr << flag << ": not a number: '" << text << "'\n";
          std::exit(2);
        }
        if (errno == ERANGE) {
          std::cerr << flag << ": out of range: '" << text << "'\n";
          std::exit(2);
        }
        if (v < 0) {
          std::cerr << flag << ": must be non-negative: '" << text << "'\n";
          std::exit(2);
        }
        return v;
      };
      if (a == "--trials") {
        args.trials = static_cast<std::size_t>(next_value("--trials"));
      } else if (a == "--seed") {
        args.seed = static_cast<std::uint64_t>(next_value("--seed"));
      } else if (a == "--fast") {
        args.fast = true;
      } else if (a == "--trace") {
        args.trace_path = next_arg("--trace");
      } else if (a == "--metrics") {
        args.metrics_path = next_arg("--metrics");
      } else if (a == "--help" || a == "-h") {
        std::cout << "usage: " << argv[0]
                  << " [--trials N] [--seed S] [--fast]"
                  << " [--trace FILE] [--metrics FILE]\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << a << "\n";
        std::exit(2);
      }
    }
    return args;
  }

  /// Opens the --trace sink, or returns nullptr when tracing is off.
  /// Wire the raw pointer into SystemConfig::trace_sink; the unique_ptr
  /// must outlive every trial that uses it.
  std::unique_ptr<sld::obs::JsonlSink> open_trace_sink() const {
    if (trace_path.empty()) return nullptr;
    try {
      return std::make_unique<sld::obs::JsonlSink>(trace_path);
    } catch (const std::exception& e) {
      std::cerr << "--trace: " << e.what() << "\n";
      std::exit(2);
    }
  }
};

}  // namespace sld::bench
