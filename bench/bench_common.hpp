// Shared helpers for the figure-reproduction benches: a tiny flag parser
// so every bench can be re-run with more statistical power — or full
// forensics — without recompiling. Flags (all documented in DESIGN.md
// "Bench flags"):
//   --trials N     trials per sweep point
//   --seed S       base RNG seed
//   --fast         shrink sweeps for smoke runs
//   --repeats N    measured repetitions of the whole workload (default 1)
//   --warmup N     unmeasured warmup repetitions (default 0)
//   --trace FILE   JSONL event trace of every trial
//   --metrics FILE per-trial metrics snapshots (benches that support it)
//   --json FILE    machine-readable BENCH result (bench_runner.hpp)
//   --profile FILE hierarchical profiler JSON; table goes to stderr
//   --chaos-sweep  add a chaos column (benches that support it)
//   --timeseries FILE  timeseries/v1 telemetry stream (supporting benches)
//   --slo SPEC     SLO rules, inline or @file (supporting benches)
//   --jobs N       worker threads per experiment (1 = serial, 0 = hardware)
//   --memstats     allocation + hot-path telemetry (table on stderr,
//                  "memstats" block in --json)
//   --rss          sample peak RSS into the telemetry stream (mem.rss_kb)
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace sld::bench {

/// Strict whole-string integer parse for bench flags: garbage, trailing
/// text, or out-of-range input exits(2) with a flag-prefixed message.
inline long long parse_strict_ll(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << flag << ": not a number: '" << text << "'\n";
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::cerr << flag << ": out of range: '" << text << "'\n";
    std::exit(2);
  }
  return v;
}

/// Strict whole-string floating-point parse; rejects garbage, trailing
/// text, infinities and NaN.
inline double parse_strict_double(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::cerr << flag << ": not a number: '" << text << "'\n";
    std::exit(2);
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    std::cerr << flag << ": out of range: '" << text << "'\n";
    std::exit(2);
  }
  return v;
}

/// As parse_strict_ll but additionally rejects zero and negative values —
/// shard counts, queue bounds and flood volumes must be positive.
inline long long parse_positive_ll(const char* flag, const char* text) {
  const long long v = parse_strict_ll(flag, text);
  if (v <= 0) {
    std::cerr << flag << ": must be positive: '" << text << "'\n";
    std::exit(2);
  }
  return v;
}

/// As parse_strict_double but additionally rejects zero and negative
/// values — rates, burst lengths and Zipf exponents must be positive.
inline double parse_positive_double(const char* flag, const char* text) {
  const double v = parse_strict_double(flag, text);
  if (v <= 0.0) {
    std::cerr << flag << ": must be positive: '" << text << "'\n";
    std::exit(2);
  }
  return v;
}

struct BenchArgs {
  std::size_t trials = 5;
  std::uint64_t seed = 1;
  bool fast = false;  // benches may shrink sweeps under --fast
  /// Measured repetitions of the whole workload ("--repeats N"). The
  /// human-readable tables print once (on the last repeat); wall time is
  /// recorded per repeat and summarised as median + MAD.
  std::size_t repeats = 1;
  /// Unmeasured warmup repetitions before the measured ones.
  std::size_t warmup = 0;
  /// JSONL trace destination ("--trace FILE"); empty means tracing off.
  std::string trace_path;
  /// Per-trial metrics snapshot destination ("--metrics FILE").
  std::string metrics_path;
  /// Machine-readable bench-result destination ("--json FILE"); empty
  /// means no BENCH_*.json is written.
  std::string json_path;
  /// Profiler snapshot destination ("--profile FILE"); empty means the
  /// profiler stays off (zero overhead).
  std::string profile_path;
  /// Extend the sweep with a chaos configuration (crash windows, a
  /// partition, clock drift, a WAL-backed base-station outage) in benches
  /// that support it ("--chaos-sweep"). Off by default so the standard
  /// sweep output — and its golden hash — is byte-identical.
  bool chaos_sweep = false;
  /// `timeseries/v1` JSONL destination ("--timeseries FILE"); empty means
  /// no telemetry stream (benches that support it).
  std::string timeseries_path;
  /// SLO rule spec ("--slo SPEC"): inline rules separated by ';', or
  /// "@file" to read a rule file. Empty means the bench's defaults.
  std::string slo_spec;
  /// Worker threads per experiment ("--jobs N"): 1 (the default) runs the
  /// classic serial loop, 0 means hardware concurrency, N>1 runs trials on
  /// the work-stealing executor. Every aggregate, golden, and stream is
  /// byte-identical across values (tests/test_executor.cpp) — only wall
  /// time changes.
  std::size_t jobs = 1;
  /// Memory & hot-path micro-observability ("--memstats"): per-scope
  /// allocation counts, queue-depth / sift / scan-fanout statistics.
  /// Summary table on stderr; a "memstats" block in --json. Off by
  /// default — stdout (and the golden hash) is byte-identical either way.
  bool memstats = false;
  /// Sample peak process RSS into the telemetry stream as a `mem.rss_kb`
  /// gauge ("--rss"; requires --timeseries to be visible anywhere). Off by
  /// default: RSS is host state and varies machine to machine.
  bool rss = false;

  /// Called for every flag parse() itself does not recognise. Pull value
  /// operands with the provided `next(flag)` callback; return true when
  /// the flag was consumed, false to make parse() reject it as unknown.
  using ExtraFlagFn = std::function<bool(
      const std::string& flag,
      const std::function<const char*(const char*)>& next)>;

  static BenchArgs parse(int argc, char** argv) {
    return parse(argc, argv, nullptr, nullptr);
  }

  /// Like parse() but benches may register extra flags (strictly parsed
  /// via the parse_* helpers above); `extra_help` lines are appended to
  /// the --help text.
  static BenchArgs parse(int argc, char** argv, const ExtraFlagFn& extra,
                         const char* extra_help) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const std::function<const char*(const char*)> next_arg =
          [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::cerr << flag << " requires a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      auto next_value = [&](const char* flag) -> long long {
        const long long v = parse_strict_ll(flag, next_arg(flag));
        if (v < 0) {
          std::cerr << flag << ": must be non-negative: '"
                    << argv[i] << "'\n";
          std::exit(2);
        }
        return v;
      };
      if (a == "--trials") {
        args.trials = static_cast<std::size_t>(next_value("--trials"));
      } else if (a == "--seed") {
        args.seed = static_cast<std::uint64_t>(next_value("--seed"));
      } else if (a == "--fast") {
        args.fast = true;
      } else if (a == "--repeats") {
        args.repeats = static_cast<std::size_t>(next_value("--repeats"));
        if (args.repeats == 0) {
          std::cerr << "--repeats: must be at least 1\n";
          std::exit(2);
        }
      } else if (a == "--warmup") {
        args.warmup = static_cast<std::size_t>(next_value("--warmup"));
      } else if (a == "--trace") {
        args.trace_path = next_arg("--trace");
      } else if (a == "--metrics") {
        args.metrics_path = next_arg("--metrics");
      } else if (a == "--json") {
        args.json_path = next_arg("--json");
      } else if (a == "--profile") {
        args.profile_path = next_arg("--profile");
      } else if (a == "--chaos-sweep") {
        args.chaos_sweep = true;
      } else if (a == "--timeseries") {
        args.timeseries_path = next_arg("--timeseries");
      } else if (a == "--slo") {
        args.slo_spec = next_arg("--slo");
      } else if (a == "--jobs") {
        args.jobs = static_cast<std::size_t>(next_value("--jobs"));
      } else if (a == "--memstats") {
        args.memstats = true;
      } else if (a == "--rss") {
        args.rss = true;
      } else if (a == "--help" || a == "-h") {
        std::cout
            << "usage: " << argv[0]
            << " [--trials N] [--seed S] [--fast]"
            << " [--repeats N] [--warmup N]"
            << " [--trace FILE] [--metrics FILE]"
            << " [--json FILE] [--profile FILE] [--chaos-sweep]\n"
            << "  --trials N     trials per sweep point (default 5)\n"
            << "  --seed S       base RNG seed (default 1)\n"
            << "  --fast         shrink sweeps for smoke runs\n"
            << "  --repeats N    measured repetitions of the workload "
               "(default 1)\n"
            << "  --warmup N     unmeasured warmup repetitions (default 0)\n"
            << "  --trace FILE   JSONL event trace of every trial\n"
            << "  --metrics FILE per-trial metrics snapshots\n"
            << "  --json FILE    machine-readable bench result "
               "(sld-bench-result/v1)\n"
            << "  --profile FILE profiler JSON snapshot; top-self-time "
               "table on stderr\n"
            << "  --chaos-sweep  add a chaos configuration to the sweep "
               "(benches that support it)\n"
            << "  --timeseries FILE  timeseries/v1 telemetry JSONL "
               "(benches that support it)\n"
            << "  --slo SPEC     SLO rules, inline or @file: "
            << sld::obs::slo_spec_grammar() << "\n"
            << "  --jobs N       worker threads per experiment "
               "(default 1 = serial, 0 = hardware concurrency)\n"
            << "  --memstats     allocation + hot-path telemetry "
               "(stderr table; \"memstats\" block in --json)\n"
            << "  --rss          sample peak RSS into the telemetry "
               "stream (mem.rss_kb gauge)\n";
        if (extra_help != nullptr) std::cout << extra_help;
        std::exit(0);
      } else if (extra && extra(a, next_arg)) {
        // consumed by the bench's own flag table
      } else {
        std::cerr << "unknown flag: " << a << "\n";
        std::exit(2);
      }
    }
    return args;
  }

  /// Opens the --trace sink, or returns nullptr when tracing is off.
  /// Wire the raw pointer into SystemConfig::trace_sink; the unique_ptr
  /// must outlive every trial that uses it.
  std::unique_ptr<sld::obs::JsonlSink> open_trace_sink() const {
    if (trace_path.empty()) return nullptr;
    try {
      return std::make_unique<sld::obs::JsonlSink>(trace_path);
    } catch (const std::exception& e) {
      std::cerr << "--trace: " << e.what() << "\n";
      std::exit(2);
    }
  }

  /// Opens the --timeseries sink, or nullptr when telemetry streaming is
  /// off. Same ownership contract as open_trace_sink().
  std::unique_ptr<sld::obs::JsonlSink> open_timeseries_sink() const {
    if (timeseries_path.empty()) return nullptr;
    try {
      return std::make_unique<sld::obs::JsonlSink>(timeseries_path);
    } catch (const std::exception& e) {
      std::cerr << "--timeseries: " << e.what() << "\n";
      std::exit(2);
    }
  }

  /// Parses --slo (reading "@file" specs from disk). Returns `fallback`
  /// when no spec was given; exits(2) on malformed rules, matching the
  /// strict-flag convention.
  std::vector<sld::obs::SloRule> parse_slo(
      const std::string& fallback = "") const {
    std::string spec = slo_spec.empty() ? fallback : slo_spec;
    if (spec.empty()) return {};
    if (spec[0] == '@') {
      std::ifstream in(spec.substr(1));
      if (!in.is_open()) {
        std::cerr << "--slo: cannot open " << spec.substr(1) << "\n";
        std::exit(2);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      spec = buf.str();
    }
    try {
      return sld::obs::parse_slo_spec(spec);
    } catch (const std::exception& e) {
      std::cerr << "--slo: " << e.what() << "\n";
      std::exit(2);
    }
  }
};

}  // namespace sld::bench
