// Extension bench: alert-storm survival of the ingestion pipeline.
//
// Feeds a synthetic alert workload straight into an IngestPipeline +
// BaseStationCluster pair (no radio network: this isolates the ingestion
// path): honest reporters accuse every malicious target once, while a
// sweep of flooder counts sprays Zipf-skewed forged alerts at benign
// targets. Each flooder count runs with admission control off (sharded
// bounded queues only) and on (pair dedup + per-reporter token buckets +
// priority shedding), reporting accepted/shed/rate-limited fractions, the
// commit-latency p99, the revocation latency p99 (first accusation ->
// revoking commit), and the harm done: benign vs malicious revocations.
// The report quota is opened wide so the contrast isolates admission as
// the defense — with it off the hottest victim's counter grows with the
// flood; with it on every benign counter is capped at the flooder count,
// below tau2, at ANY flood intensity.
//
// `--storm` switches to a single-cell deep-dive instead of the sweep: one
// admission-on pipeline, honest traffic spread over a 15 s timeline, the
// whole flood compressed into a 3 s burst, with a 250 ms-cadence
// TimeseriesSampler watching the pipeline instruments and an SLO monitor
// (default rules below, override with --slo) judging the run window by
// window. The report is the per-window telemetry table plus the breach log
// and health verdict; --timeseries captures the same windows as a
// `timeseries/v1` stream for tools/ts_report.py.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "obs/memstats.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "revocation/failover.hpp"
#include "revocation/shard.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sld;

struct StormKnobs {
  std::uint32_t shards = 4;
  double reporter_rate_per_s = 5.0;
  double zipf_exponent = 1.0;
  std::size_t flood_per_flooder = 200;
};

struct Submission {
  sim::SimTime t = 0;
  sim::NodeId reporter = 0;
  sim::NodeId target = 0;
  std::uint64_t nonce = 0;
};

constexpr sim::NodeId kMaliciousBase = 1;
constexpr sim::NodeId kBenignBase = 100;
constexpr sim::NodeId kHonestBase = 300;
constexpr sim::NodeId kFlooderBase = 500;
constexpr sim::SimTime kStormWindow = 10 * sim::kSecond;

/// One storm cell: returns the pipeline stats plus the derived outcome
/// columns, everything a pure function of (knobs, flooders, seed).
struct CellResult {
  revocation::IngestStats stats;
  std::size_t benign_revoked = 0;
  std::size_t malicious_revoked = 0;
  double commit_p99_ms = 0.0;
  double revocation_p99_ms = 0.0;
};

CellResult run_cell(const StormKnobs& knobs, std::size_t flooders,
                    bool admission_on, std::size_t honest,
                    std::size_t malicious, std::size_t benign,
                    std::uint64_t seed, obs::TraceSink* sink) {
  revocation::RevocationConfig rc;
  // tau2 sits above the flooder-count sweep's maximum so the pair-dedup
  // cap (counter <= #flooders) makes zero benign harm achievable; the
  // quota is opened wide so it is admission, not tau1, doing the work.
  rc.alert_threshold = 24;
  rc.report_quota = 100'000;

  revocation::BaseStationCluster cluster(rc, revocation::FailoverConfig{});

  revocation::IngestConfig ic;
  ic.shard.count = knobs.shards;
  ic.shard.queue_capacity = 16;
  ic.shard.service_time_ns = 10 * sim::kMillisecond;
  ic.admission.enabled = admission_on;
  ic.admission.reporter_rate_per_s = knobs.reporter_rate_per_s;
  ic.admission.reporter_burst = 8.0;
  revocation::IngestPipeline pipeline(ic, cluster);

  // Each cell is its own trace "trial": events are stamped with the
  // submission clock, and the trial.start record resets the validator's
  // monotone-time cursor between cells.
  sim::SimTime sim_now = 0;
  obs::Tracer tracer(sink,
                     [&sim_now] { return static_cast<std::int64_t>(sim_now); });
  cluster.set_tracer(tracer);
  pipeline.set_tracer(tracer);
  if (tracer.on()) {
    tracer.emit(
        tracer.event("trial.start")
            .f("seed", seed)
            .f("nodes", static_cast<std::uint64_t>(honest + flooders +
                                                   malicious + benign))
            .f("beacons", static_cast<std::uint64_t>(malicious + benign))
            .f("malicious", static_cast<std::uint64_t>(malicious))
            .f("sensors", static_cast<std::uint64_t>(0)));
  }

  // Workload: honest accusations spread over the window, flooders firing
  // Zipf-skewed forged alerts over the same window. One generation pass,
  // then a stable sort by time, keeps the interleave deterministic.
  util::Rng rng(seed);
  std::vector<Submission> subs;
  std::uint64_t nonce = 1;
  for (std::size_t h = 0; h < honest; ++h) {
    for (std::size_t m = 0; m < malicious; ++m) {
      Submission s;
      s.t = static_cast<sim::SimTime>(
          rng.uniform_u64(static_cast<std::uint64_t>(kStormWindow)));
      s.reporter = kHonestBase + static_cast<sim::NodeId>(h);
      s.target = kMaliciousBase + static_cast<sim::NodeId>(m);
      s.nonce = nonce++;
      subs.push_back(s);
    }
  }
  const util::ZipfSampler zipf(benign, knobs.zipf_exponent);
  for (std::size_t f = 0; f < flooders; ++f) {
    for (std::size_t k = 0; k < knobs.flood_per_flooder; ++k) {
      Submission s;
      s.t = static_cast<sim::SimTime>(
          rng.uniform_u64(static_cast<std::uint64_t>(kStormWindow)));
      s.reporter = kFlooderBase + static_cast<sim::NodeId>(f);
      s.target =
          kBenignBase + static_cast<sim::NodeId>(zipf.sample(rng.uniform01()));
      s.nonce = nonce++;
      subs.push_back(s);
    }
  }
  std::stable_sort(subs.begin(), subs.end(),
                   [](const Submission& a, const Submission& b) {
                     return a.t < b.t;
                   });

  std::vector<double> commit_ms;
  std::vector<double> revocation_ms;
  std::unordered_map<sim::NodeId, sim::SimTime> first_accusation;
  pipeline.set_commit_hook([&](sim::NodeId /*reporter*/, sim::NodeId target,
                               revocation::AlertDisposition disposition,
                               sim::SimTime enqueued_at,
                               sim::SimTime committed_at) {
    commit_ms.push_back(static_cast<double>(committed_at - enqueued_at) /
                        static_cast<double>(sim::kMillisecond));
    if (disposition == revocation::AlertDisposition::kAcceptedAndRevoked) {
      const auto it = first_accusation.find(target);
      const sim::SimTime since =
          it == first_accusation.end() ? enqueued_at : it->second;
      revocation_ms.push_back(static_cast<double>(committed_at - since) /
                              static_cast<double>(sim::kMillisecond));
    }
  });

  for (const Submission& s : subs) {
    sim_now = s.t;
    first_accusation.try_emplace(s.target, s.t);
    pipeline.submit(s.t, s.reporter, s.target, s.nonce);
  }
  sim_now = kStormWindow;
  pipeline.drain(kStormWindow);

  CellResult r;
  r.stats = pipeline.stats();
  const auto& bs = cluster.authority();
  for (std::size_t m = 0; m < malicious; ++m) {
    if (bs.is_revoked(kMaliciousBase + static_cast<sim::NodeId>(m)))
      ++r.malicious_revoked;
  }
  for (std::size_t b = 0; b < benign; ++b) {
    if (bs.is_revoked(kBenignBase + static_cast<sim::NodeId>(b)))
      ++r.benign_revoked;
  }
  if (!commit_ms.empty())
    r.commit_p99_ms = util::EmpiricalCdf(std::move(commit_ms)).quantile(0.99);
  if (!revocation_ms.empty())
    r.revocation_p99_ms =
        util::EmpiricalCdf(std::move(revocation_ms)).quantile(0.99);
  return r;
}

// --- storm mode -----------------------------------------------------------

constexpr sim::SimTime kStormEnd = 15 * sim::kSecond;
constexpr sim::SimTime kBurstStart = 4 * sim::kSecond;
constexpr sim::SimTime kBurstEnd = 7 * sim::kSecond;
constexpr std::int64_t kStormCadence = 250 * sim::kMillisecond;
/// Storm flooders cycle their forged accusations through this many victim
/// ids — every alert names a fresh (reporter, target) pair, so pair-dedup
/// cannot absorb the flood and the token buckets + queue bounds are the
/// defenses actually on trial. The pool is large enough that no victim's
/// counter approaches tau2 (3200 forged alerts / 997 victims ≈ 3 each).
constexpr std::size_t kStormVictimPool = 997;

// The flood rate-limit spike is the breach signal (the 3 s burst pushes
// rate(bs.ingest.rate_limited) three orders of magnitude above quiet-time
// levels); the breaker gauge tracks shedding pressure with a slow clear so
// the recovery edge lands after the queues visibly drain.
constexpr const char* kDefaultStormSlo =
    "flood    rate(bs.ingest.rate_limited) > 50 sustain=2 clear=2;"
    "pressure gauge(bs.ingest.breaker_state) >= 1 sustain=1 clear=4";

/// Raises a monotone mirror counter to a live pipeline statistic.
void sync_counter(obs::Counter& c, std::uint64_t live) {
  if (live > c.value()) c.inc(live - c.value());
}

void run_storm(const StormKnobs& knobs, const bench::BenchArgs& args,
               bench::BenchIteration& it) {
  const std::size_t honest = 40;
  const std::size_t malicious = 6;
  const std::size_t benign = 30;
  const std::size_t flooders = 16;

  revocation::RevocationConfig rc;
  rc.alert_threshold = 24;
  rc.report_quota = 100'000;
  revocation::BaseStationCluster cluster(rc, revocation::FailoverConfig{});

  revocation::IngestConfig ic;
  ic.shard.count = knobs.shards;
  ic.shard.queue_capacity = 16;
  ic.shard.service_time_ns = 10 * sim::kMillisecond;
  ic.admission.enabled = true;
  // The burst must overwhelm BOTH defenses for the timeline to show them:
  // its instantaneous rate (~1000/s) blows through the token buckets, and
  // what the buckets admit still exceeds the shards' aggregate service
  // rate, so queues fill and the breaker enters shedding.
  ic.admission.reporter_rate_per_s = knobs.reporter_rate_per_s;
  ic.admission.reporter_burst = 16.0;
  revocation::IngestPipeline pipeline(ic, cluster);

  // Pipeline instruments live in a per-run registry, same names as the
  // full system's (core/nodes.cpp) so --slo specs port across both.
  obs::MetricsRegistry reg;
  revocation::IngestPipeline::Instruments ins;
  ins.accepted = &reg.counter("bs.ingest.accepted");
  ins.shed = &reg.counter("bs.ingest.shed");
  ins.rate_limited = &reg.counter("bs.ingest.rate_limited");
  ins.deferred = &reg.counter("bs.ingest.deferred");
  ins.latency_ms = &reg.histogram("bs.ingest.latency_ms", 0.1, 60'000.0, 32,
                                  obs::HistogramScale::kLog);
  for (std::uint32_t i = 0; i < ic.shard.count; ++i) {
    ins.queue_depth.push_back(
        &reg.gauge("bs.ingest.queue_depth.s" + std::to_string(i)));
  }
  ins.breaker_state = &reg.gauge("bs.ingest.breaker_state");
  obs::Counter& submitted_c = reg.counter("bs.ingest.submitted");
  obs::Counter& committed_c = reg.counter("bs.ingest.committed");
  pipeline.set_instruments(std::move(ins));

  // Trace/telemetry sinks only on the reported repeat, as in sweep mode.
  const auto trace_sink = it.report() ? args.open_trace_sink() : nullptr;
  const auto ts_sink = it.report() ? args.open_timeseries_sink() : nullptr;

  sim::SimTime sim_now = 0;
  obs::Tracer tracer(trace_sink.get(), [&sim_now] {
    return static_cast<std::int64_t>(sim_now);
  });
  cluster.set_tracer(tracer);
  pipeline.set_tracer(tracer);
  if (tracer.on()) {
    tracer.emit(
        tracer.event("trial.start")
            .f("seed", args.seed)
            .f("nodes", static_cast<std::uint64_t>(honest + flooders +
                                                   malicious + benign))
            .f("beacons", static_cast<std::uint64_t>(malicious + benign))
            .f("malicious", static_cast<std::uint64_t>(malicious))
            .f("sensors", static_cast<std::uint64_t>(0)));
  }

  obs::TimeseriesOptions topt;
  topt.enabled = true;
  topt.cadence_ns = kStormCadence;
  topt.ring_capacity = 64;  // >= the 60 windows of the 15 s timeline
  topt.sink = ts_sink.get();
  topt.sample_rss = args.rss;
  // --rss: peak-RSS gauge refreshed per window, same pattern as the
  // in-system sampler (the stream gains host state; window timing and the
  // stdout table stay deterministic — mem.rss_kb never feeds the table).
  obs::Gauge* rss_gauge =
      topt.sample_rss ? &reg.gauge("mem.rss_kb") : nullptr;
  obs::TimeseriesSampler sampler(reg, topt);
  // The bench owns the timeline, so (unlike the in-system hook, which must
  // stay read-only) the presample hook may advance the pipeline to the
  // window edge: commits due before the edge land inside the window.
  sampler.set_presample_hook([&](std::int64_t t) {
    pipeline.advance(static_cast<sim::SimTime>(t));
    sync_counter(submitted_c, pipeline.stats().submitted);
    sync_counter(committed_c, pipeline.stats().committed);
    if (rss_gauge != nullptr)
      rss_gauge->set(static_cast<double>(obs::current_rss_kb()));
  });

  obs::SloMonitor slo(args.parse_slo(kDefaultStormSlo));
  slo.add_tracer(tracer);
  if (ts_sink != nullptr && ts_sink.get() != trace_sink.get()) {
    slo.add_tracer(obs::Tracer(ts_sink.get(), [&sim_now] {
      return static_cast<std::int64_t>(sim_now);
    }));
  }
  sampler.set_window_observer(
      [&slo](const obs::WindowSample& w) { slo.on_window(w); });

  // Workload: honest accusations over the whole timeline, the entire
  // flood compressed into [kBurstStart, kBurstEnd).
  util::Rng rng(args.seed);
  std::vector<Submission> subs;
  std::uint64_t nonce = 1;
  for (std::size_t h = 0; h < honest; ++h) {
    for (std::size_t m = 0; m < malicious; ++m) {
      Submission s;
      s.t = static_cast<sim::SimTime>(
          rng.uniform_u64(static_cast<std::uint64_t>(kStormEnd)));
      s.reporter = kHonestBase + static_cast<sim::NodeId>(h);
      s.target = kMaliciousBase + static_cast<sim::NodeId>(m);
      s.nonce = nonce++;
      subs.push_back(s);
    }
  }
  for (std::size_t f = 0; f < flooders; ++f) {
    for (std::size_t k = 0; k < knobs.flood_per_flooder; ++k) {
      Submission s;
      s.t = kBurstStart + static_cast<sim::SimTime>(rng.uniform_u64(
                              static_cast<std::uint64_t>(kBurstEnd -
                                                         kBurstStart)));
      s.reporter = kFlooderBase + static_cast<sim::NodeId>(f);
      s.target = kBenignBase +
                 static_cast<sim::NodeId>(
                     (f * knobs.flood_per_flooder + k) % kStormVictimPool);
      s.nonce = nonce++;
      subs.push_back(s);
    }
  }
  std::stable_sort(subs.begin(), subs.end(),
                   [](const Submission& a, const Submission& b) {
                     return a.t < b.t;
                   });

  sampler.begin(0, args.seed);
  for (const Submission& s : subs) {
    sim_now = s.t;
    // Close due windows BEFORE the submission: a window captures strictly
    // pre-edge state, same contract as the scheduler time probe.
    sampler.advance_to(static_cast<std::int64_t>(s.t));
    pipeline.submit(s.t, s.reporter, s.target, s.nonce);
  }
  sim_now = kStormEnd;
  sampler.advance_to(static_cast<std::int64_t>(kStormEnd));
  pipeline.drain(kStormEnd);
  sampler.finish(static_cast<std::int64_t>(kStormEnd));

  // Per-window telemetry table straight from the ring (deterministic: the
  // whole timeline is a pure function of knobs and seed).
  util::Table table({"window", "t_ms", "submitted", "accepted",
                     "rate_limited", "shed", "committed", "rl_per_s",
                     "queue_depth", "breaker"});
  for (const obs::WindowSample& w : sampler.ring()) {
    double depth = 0.0;
    for (std::uint32_t i = 0; i < ic.shard.count; ++i) {
      const double* d =
          w.gauge("bs.ingest.queue_depth.s" + std::to_string(i));
      if (d != nullptr) depth += *d;
    }
    const auto delta_of = [&w](const char* name) -> long long {
      const std::uint64_t* d = w.delta(name);
      return d == nullptr ? 0 : static_cast<long long>(*d);
    };
    const double* breaker = w.gauge("bs.ingest.breaker_state");
    table.row()
        .cell(static_cast<long long>(w.index))
        .cell(static_cast<long long>(w.t_end_ns / sim::kMillisecond))
        .cell(delta_of("bs.ingest.submitted"))
        .cell(delta_of("bs.ingest.accepted"))
        .cell(delta_of("bs.ingest.rate_limited"))
        .cell(delta_of("bs.ingest.shed"))
        .cell(delta_of("bs.ingest.committed"))
        .cell(w.rate_per_s("bs.ingest.rate_limited"))
        .cell(depth)
        .cell(breaker == nullptr ? 0.0 : *breaker);
  }
  table.print_csv(it.out(),
                  "Alert storm deep-dive: 250 ms telemetry windows over a "
                  "15 s timeline with the flood compressed into [4 s, 7 s)");

  // Zero-harm check rides along: the flood must not revoke any victim.
  std::size_t malicious_revoked = 0;
  std::size_t victims_revoked = 0;
  const auto& bs = cluster.authority();
  for (std::size_t m = 0; m < malicious; ++m) {
    if (bs.is_revoked(kMaliciousBase + static_cast<sim::NodeId>(m)))
      ++malicious_revoked;
  }
  for (std::size_t b = 0; b < kStormVictimPool; ++b) {
    if (bs.is_revoked(kBenignBase + static_cast<sim::NodeId>(b)))
      ++victims_revoked;
  }
  it.out() << "revoked malicious=" << malicious_revoked
           << " benign=" << victims_revoked << "\n";
  it.out() << "slo_verdict healthy=" << (slo.healthy() ? 1 : 0)
           << " rules=" << slo.rules().size()
           << " breaches=" << slo.breaches()
           << " recovers=" << slo.recovers()
           << " active=" << slo.active() << "\n";
  for (const obs::SloMonitor::LogEntry& e : slo.log()) {
    it.out() << "slo_" << (e.breach ? "breach" : "recover") << " rule="
             << e.rule << " window=" << e.window
             << " t_ms=" << e.t_ns / sim::kMillisecond << "\n";
  }

  it.add_events(pipeline.stats().submitted);
  it.add_trials(1);
}

}  // namespace

int main(int argc, char** argv) {
  StormKnobs knobs;
  bool storm = false;
  bool rate_set = false;
  const auto args = bench::BenchArgs::parse(
      argc, argv,
      [&](const std::string& a, const auto& next) {
        if (a == "--shards") {
          knobs.shards = static_cast<std::uint32_t>(
              bench::parse_positive_ll("--shards", next("--shards")));
          return true;
        }
        if (a == "--rate") {
          knobs.reporter_rate_per_s =
              bench::parse_positive_double("--rate", next("--rate"));
          rate_set = true;
          return true;
        }
        if (a == "--storm") {
          storm = true;
          return true;
        }
        if (a == "--zipf") {
          knobs.zipf_exponent =
              bench::parse_positive_double("--zipf", next("--zipf"));
          return true;
        }
        if (a == "--flood") {
          knobs.flood_per_flooder = static_cast<std::size_t>(
              bench::parse_positive_ll("--flood", next("--flood")));
          return true;
        }
        return false;
      },
      "  --shards N     ingestion shards, > 0 (default 4)\n"
      "  --rate R       admission tokens per reporter-second, > 0 "
      "(default 5; 40 under --storm)\n"
      "  --zipf S       flood target-popularity exponent, > 0 (default 1)\n"
      "  --flood K      forged alerts per flooder, > 0 (default 200)\n"
      "  --storm        single-cell deep-dive: 250 ms telemetry windows + "
      "SLO verdict\n");

  // Storm mode defaults the token rate high enough that the burst
  // saturates the shards (queues fill, breaker trips) and not just the
  // buckets; an explicit --rate still wins.
  if (storm && !rate_set) knobs.reporter_rate_per_s = 40.0;

  if (storm) {
    return bench::run_main("ext_alert_storm_storm", args,
                           [&](bench::BenchIteration& it) {
                             run_storm(knobs, args, it);
                           });
  }

  return bench::run_main("ext_alert_storm", args, [&](bench::BenchIteration&
                                                          it) {
    // Trace only the reported iteration: warmup/measurement repeats would
    // otherwise duplicate every event in the sink.
    const auto trace_sink = it.report() ? args.open_trace_sink() : nullptr;
    const std::size_t honest = args.fast ? 30 : 40;
    const std::size_t malicious = args.fast ? 4 : 6;
    const std::size_t benign = args.fast ? 20 : 30;
    const std::vector<std::size_t> flooder_sweep =
        args.fast ? std::vector<std::size_t>{0, 8, 24}
                  : std::vector<std::size_t>{0, 4, 8, 16, 24};

    util::Table table({"admission", "flooders", "submitted", "accepted",
                       "committed", "shed_frac", "rate_limited_frac",
                       "pair_dup_frac", "priority_admits", "commit_p99_ms",
                       "revocation_p99_ms", "benign_revoked",
                       "malicious_revoked"});
    for (const bool admission_on : {false, true}) {
      for (const std::size_t flooders : flooder_sweep) {
        const CellResult r =
            run_cell(knobs, flooders, admission_on, honest, malicious,
                     benign, args.seed, trace_sink.get());
        const auto& in = r.stats;
        const double denom =
            in.submitted == 0 ? 1.0 : static_cast<double>(in.submitted);
        table.row()
            .cell(admission_on ? "on" : "off")
            .cell(flooders)
            .cell(in.submitted)
            .cell(in.accepted)
            .cell(in.committed)
            .cell(static_cast<double>(in.shed) / denom)
            .cell(static_cast<double>(in.rate_limited) / denom)
            .cell(static_cast<double>(in.pair_duplicates) / denom)
            .cell(in.priority_admits)
            .cell(r.commit_p99_ms)
            .cell(r.revocation_p99_ms)
            .cell(r.benign_revoked)
            .cell(r.malicious_revoked);
        it.add_events(in.submitted);
        it.add_trials(1);
      }
    }
    table.print_csv(it.out(),
                    "Alert storm: ingestion pipeline under Zipf-skewed "
                    "collusion floods, admission control off vs on "
                    "(tau2 24, quota opened wide)");
  });
}
