// Ablation (beyond the paper): contribution of each pipeline stage.
// Rows compare the full system against variants with the wormhole detector
// disabled (p_d = 0), the malicious strategy stripped of its evasion
// levers, fewer detecting IDs, and a disabled revocation threshold —
// isolating where the detection and false-positive numbers come from.
#include <iostream>

#include "bench_common.hpp"
#include "bench_runner.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

namespace {

sld::core::SystemConfig base_config(const sld::bench::BenchArgs& args) {
  sld::core::SystemConfig c;
  c.strategy = sld::attack::MaliciousStrategyConfig::with_effectiveness(0.3);
  c.seed = args.seed;
  c.memstats = args.memstats;
  return c;
}

void run_row(sld::bench::BenchIteration& it, sld::util::Table& table,
             const std::string& name, const sld::core::SystemConfig& config,
             std::size_t trials, std::size_t jobs) {
  sld::core::ExperimentConfig e{config, trials};
  e.jobs = jobs;
  const auto agg = sld::core::run_experiment(e);
  it.add_experiment(agg, e.trials);
  table.row()
      .cell(name)
      .cell(agg.detection_rate.mean())
      .cell(agg.false_positive_rate.mean())
      .cell(agg.affected_per_malicious.mean())
      .cell(agg.mean_localization_error_ft.mean());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = sld::bench::BenchArgs::parse(argc, argv);

  return sld::bench::run_main(
      "ablation_filters", args, [&](sld::bench::BenchIteration& it) {
        sld::util::Table table({"variant", "detection_rate",
                                "false_positive_rate", "N_affected",
                                "mean_loc_error_ft"});

        run_row(it, table, "full_system(P=0.3)", base_config(args),
                args.trials, args.jobs);

        {
          auto c = base_config(args);
          c.wormhole_detection_rate = 0.0;  // wormhole detector off
          run_row(it, table, "no_wormhole_detector", c, args.trials, args.jobs);
        }
        {
          auto c = base_config(args);
          c.detecting_ids = 1;  // single detecting ID
          run_row(it, table, "m=1_detecting_id", c, args.trials, args.jobs);
        }
        {
          auto c = base_config(args);
          c.revocation.alert_threshold = 1000000;  // revocation off
          run_row(it, table, "no_revocation", c, args.trials, args.jobs);
        }
        {
          auto c = base_config(args);
          // Attacker uses every evasion lever instead of plain
          // effectiveness: same P = 0.3 but split across
          // wormhole/local-replay fakery.
          c.strategy = sld::attack::MaliciousStrategyConfig{};
          c.strategy.p_normal = 0.3;
          c.strategy.p_fake_wormhole = 0.3;
          c.strategy.p_fake_local_replay =
              0.3878;  // (1-.3)(1-.3)(1-.3878) ~ 0.3
          run_row(it, table, "evasive_attacker(sameP)", c, args.trials,
                  args.jobs);
        }
        {
          auto c = base_config(args);
          c.ranging_type =
              sld::core::RangingType::kToa;  // §2.3: feature-agnostic
          run_row(it, table, "toa_ranging(sameP)", c, args.trials, args.jobs);
        }
        {
          auto c = base_config(args);
          c.wormhole_detector_type =
              sld::core::SystemConfig::WormholeDetectorType::kGeographicLeash;
          run_row(it, table, "geographic_leash_detector", c, args.trials,
                  args.jobs);
        }
        {
          auto c = base_config(args);
          c.deployment.malicious_beacon_count = 0;  // honest baseline
          run_row(it, table, "no_attackers", c, args.trials, args.jobs);
        }

        table.print_csv(it.out(),
                        "Ablation: per-stage contribution of the detection "
                        "pipeline (P = 0.3 unless noted)");
      });
}
