// Quickstart: stand up the paper's full system in a dozen lines — deploy a
// sensor network with compromised beacons, run the detection + revocation
// pipeline, and inspect what happened.
//
//   $ ./quickstart
//
#include <cstdio>

#include "core/secure_localization.hpp"

int main() {
  using namespace sld;

  // 1. Configure. Defaults reproduce the paper's ICDCS'05 evaluation:
  //    1000 nodes in a 1000x1000 ft field, 100 beacons (10 compromised),
  //    a wormhole between (100,100) and (800,700), m = 8 detecting IDs,
  //    thresholds tau1 = 10 and tau2 = 2.
  core::SystemConfig config;
  config.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.4);
  config.seed = 2026;

  // 2. Run one trial: RTT calibration, probing phase, base-station
  //    revocation, then sensor localization.
  core::SecureLocalizationSystem system(config);
  const core::TrialSummary s = system.run();

  // 3. Inspect.
  std::printf("=== secure location discovery: trial summary ===\n");
  std::printf("beacons:            %zu benign, %zu malicious\n",
              s.benign_beacons, s.malicious_beacons);
  std::printf("RTT filter x_max:   %.0f CPU cycles (calibrated, Fig. 4)\n",
              s.rtt_x_max_cycles);
  std::printf("probes sent:        %llu (%llu flagged malicious)\n",
              static_cast<unsigned long long>(s.raw.probes_sent),
              static_cast<unsigned long long>(s.raw.consistency_flags));
  std::printf("alerts submitted:   %llu\n",
              static_cast<unsigned long long>(s.raw.alerts_submitted));
  std::printf("malicious revoked:  %zu / %zu (detection rate %.2f)\n",
              s.malicious_revoked, s.malicious_beacons, s.detection_rate);
  std::printf("benign revoked:     %zu (false positive rate %.3f)\n",
              s.benign_revoked, s.false_positive_rate);
  std::printf("affected sensors:   %.2f per malicious beacon (N')\n",
              s.avg_affected_per_malicious);
  std::printf("localization:       %zu/%zu sensors fixed, mean error %.2f ft\n",
              s.sensors_localized, s.sensors, s.mean_localization_error_ft);
  return 0;
}
