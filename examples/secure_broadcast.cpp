// Securing the revocation broadcast with uTESLA (paper reference [24]).
// The base station's revocation notices are broadcasts: if they were
// protected by a single shared key, any compromised node could forge
// "revoke beacon 7" and erase benign beacons from the network. This
// example walks the full uTESLA flow for a batch of revocations and then
// shows two attacks failing: a forged revocation (wrong key chain) and a
// replayed-late packet (security condition).
//
//   $ ./secure_broadcast
//
#include <cstdio>

#include "crypto/tesla.hpp"
#include "sim/message.hpp"

int main() {
  using namespace sld;
  using crypto::TeslaBroadcaster;
  using crypto::TeslaReceiver;

  crypto::TeslaConfig cfg;
  cfg.interval = 500 * sim::kMillisecond;
  cfg.disclosure_lag = 2;
  cfg.max_clock_skew = 50 * sim::kMillisecond;
  cfg.chain_length = 100;

  crypto::Key128 chain_seed{};
  chain_seed.fill(0xb5);
  TeslaBroadcaster base_station(cfg, chain_seed);
  // Sensors are provisioned with the chain commitment at deployment time.
  TeslaReceiver sensor(cfg, base_station.commitment());

  std::printf("=== uTESLA-secured revocation broadcast ===\n");
  std::printf("interval 500 ms, disclosure lag 2, chain length %zu\n\n",
              cfg.chain_length);

  // The base station revokes beacons 7 and 23 during interval 1.
  const sim::NodeId revoked[] = {7, 23};
  sim::SimTime now = 200 * sim::kMillisecond;
  for (const auto beacon : revoked) {
    sim::RevocationPayload payload{beacon};
    const auto packet = base_station.authenticate(payload.serialize(), now);
    const bool buffered =
        sensor.on_packet(packet, now + 20 * sim::kMillisecond);
    std::printf("broadcast: revoke beacon %-3u  interval %zu  -> %s\n",
                beacon, packet.interval,
                buffered ? "buffered (key not yet public)" : "REJECTED");
    now += 30 * sim::kMillisecond;
  }

  // An attacker forges a revocation of benign beacon 55 with a made-up key.
  {
    crypto::Key128 bogus{};
    bogus.fill(0x66);
    TeslaBroadcaster attacker(cfg, bogus);  // different (unknown) chain
    sim::RevocationPayload payload{55};
    const auto forged = attacker.authenticate(payload.serialize(), now);
    sensor.on_packet(forged, now + 20 * sim::kMillisecond);
    const auto disclosure = attacker.disclosure_at(3 * cfg.interval);
    const bool key_ok =
        disclosure ? sensor.on_disclosure(*disclosure) : false;
    std::printf("attacker:  revoke beacon 55   -> key disclosure %s\n",
                key_ok ? "ACCEPTED (!!)" : "rejected (not on the chain)");
  }

  // The genuine key for interval 1 is disclosed during interval 3.
  const auto disclosure = base_station.disclosure_at(2 * cfg.interval + 1);
  if (disclosure && sensor.on_disclosure(*disclosure)) {
    for (const auto& payload : sensor.take_authenticated()) {
      const auto rev = sim::RevocationPayload::parse(payload);
      std::printf("sensor:    authenticated revocation of beacon %u\n",
                  rev.revoked);
    }
  }

  // A captured packet replayed after its key went public must be dropped.
  {
    sim::RevocationPayload payload{88};
    const auto old_packet =
        base_station.authenticate(payload.serialize(),
                                  200 * sim::kMillisecond);
    const bool accepted =
        sensor.on_packet(old_packet, 5 * sim::kSecond);  // way too late
    std::printf("replayer:  revoke beacon 88   -> %s\n",
                accepted ? "buffered (!!)"
                         : "rejected (security condition: key already "
                           "public)");
  }

  const auto& st = sensor.stats();
  std::printf("\nsensor stats: %llu authenticated, %llu unsafe-rejected, "
              "%llu bad-key disclosures\n",
              static_cast<unsigned long long>(st.authenticated),
              static_cast<unsigned long long>(st.rejected_unsafe),
              static_cast<unsigned long long>(st.rejected_bad_key));
  return 0;
}
