// Revocation-threshold tuning — the §3.2 design procedure as a tool.
// Given deployment parameters, it tabulates for each candidate (tau1, tau2)
// pair the quantities a deployer must trade off:
//   P_d   revocation probability of a malicious beacon (at the attacker's
//         damage-maximizing P),
//   N'    expected residual damage at that P,
//   N_f   worst-case benign beacons revoked (wormhole noise + collusion),
//   P_o   probability a benign reporter's quota overflows.
// It then recommends the pair minimizing N_f subject to P_o ~ 0 and
// P_d above a floor — the paper's own selection logic.
//
//   $ ./revocation_tuning
//
#include <cstdio>
#include <initializer_list>

#include "analysis/formulas.hpp"

int main() {
  using namespace sld::analysis;

  ModelParams base;  // paper deployment: N=1000, Nb=100, Na=10, Nw=10
  std::printf("=== revocation threshold tuning (paper section 3.2) ===\n");
  std::printf("N=%zu Nb=%zu Na=%zu Nw=%zu p_d=%.1f m=%zu Nc=%zu\n\n",
              base.total_nodes, base.beacon_count, base.malicious_count,
              base.wormhole_count, base.wormhole_detection_rate,
              base.detecting_ids, base.requesters_per_beacon);

  std::printf("%-6s %-6s %-10s %-10s %-10s %-12s %-10s\n", "tau1", "tau2",
              "P_attack", "P_d", "N'", "N_f", "P_o");

  double best_nf = 1e18;
  std::uint32_t best_tau1 = 0, best_tau2 = 0;
  for (const std::uint32_t tau2 : {1, 2, 3, 4, 5}) {
    for (const std::uint32_t tau1 : {2, 5, 10, 15, 20}) {
      ModelParams p = base;
      p.report_quota = tau1;
      p.alert_threshold = tau2;

      double attacker_P = 0.0;
      const double damage = max_affected_nonbeacon_nodes(p, &attacker_P);
      const double pd = revocation_probability(p, attacker_P);
      const double nf = false_positive_count(p);
      const double po = report_counter_overflow_probability(p, attacker_P);

      std::printf("%-6u %-6u %-10.3f %-10.3f %-10.3f %-12.2f %-10.2e\n",
                  tau1, tau2, attacker_P, pd, damage, nf, po);

      // Selection: quota must not drop honest alerts, revocation must stay
      // likely, then minimize false positives.
      if (po < 1e-4 && pd > 0.5 && nf < best_nf) {
        best_nf = nf;
        best_tau1 = tau1;
        best_tau2 = tau2;
      }
    }
  }

  if (best_tau1 != 0 || best_tau2 != 0) {
    std::printf("\ngrid scan pick: tau1 = %u, tau2 = %u "
                "(N_f <= %.1f, P_o ~ 0, P_d > 0.5)\n",
                best_tau1, best_tau2, best_nf);
  } else {
    std::printf("\nno pair met the grid scan's constraints.\n");
  }

  // The library's implementation of the same procedure.
  if (const auto choice = choose_thresholds(base)) {
    std::printf("choose_thresholds(): tau1 = %u, tau2 = %u  "
                "(attacker P = %.3f, P_d = %.2f, N' <= %.2f, N_f = %.1f)\n",
                choice->tau1, choice->tau2, choice->attacker_P,
                choice->detection, choice->max_damage,
                choice->false_positives);
  }
  std::printf("paper's choice for this deployment: tau1 = 10, tau2 = 2.\n");
  return 0;
}
