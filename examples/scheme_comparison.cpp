// Localization-scheme comparison under compromised beacons — the library
// tour. One deployment, one set of lying beacons, five estimators:
//
//   centroid        range-free, no defence (Bulusu et al.)
//   range_free      SerLoc-style disk-intersection CoG (related work [16])
//   mmse            plain multilateration (what the paper protects)
//   robust_mmse     residual-filtering multilateration (extension)
//   mmse+revocation multilateration fed only non-revoked beacons — the
//                   paper's full pipeline, approximated here by dropping
//                   the known-detected beacons
//
// It prints each scheme's mean error with and without the attack, showing
// (a) every undefended scheme degrades, range-free ones included, and
// (b) what the detection + revocation layer restores.
//
//   $ ./scheme_comparison
//
#include <cstdio>
#include <vector>

#include "localization/centroid.hpp"
#include "localization/multilateration.hpp"
#include "localization/range_free.hpp"
#include "localization/robust.hpp"
#include "ranging/rssi.hpp"
#include "sim/deployment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace sld;

struct Scenario {
  sim::Deployment deployment;
  ranging::RssiRangingModel rssi{ranging::RssiConfig{}};
  util::Rng rng{7};

  /// References a sensor at `truth` collects; malicious beacons lie by
  /// `lie` feet and manipulate the measured distance by `delta` feet.
  localization::LocationReferences references_for(const util::Vec2& truth,
                                                  bool attack,
                                                  bool drop_malicious) {
    localization::LocationReferences refs;
    for (const auto* b : deployment.beacons()) {
      const double d = util::distance(truth, b->position);
      if (d > deployment.config.comm_range_ft) continue;
      if (b->malicious && attack && drop_malicious) continue;  // revoked
      localization::LocationReference r;
      r.beacon_id = b->id;
      if (b->malicious && attack) {
        r.beacon_position = b->position + util::Vec2{80.0, 60.0};  // lie
        r.measured_distance_ft =
            rssi.measure_manipulated(d, -120.0, rng);
      } else {
        r.beacon_position = b->position;
        r.measured_distance_ft = rssi.measure(d, rng);
      }
      refs.push_back(r);
    }
    return refs;
  }
};

struct SchemeStats {
  util::RunningStat clean, attacked, secured;
};

}  // namespace

int main() {
  util::Rng deploy_rng(99);
  sim::DeploymentConfig dc;
  dc.beacon_count = 100;
  dc.malicious_beacon_count = 20;  // heavy compromise to stress schemes
  Scenario scenario{sim::deploy_random(dc, deploy_rng)};

  SchemeStats centroid, range_free, mmse, robust, secured_mmse;
  localization::MultilaterationSolver solver;

  int evaluated = 0;
  for (const auto* s : scenario.deployment.sensors()) {
    if (++evaluated > 300) break;
    const auto truth = s->position;
    const auto clean = scenario.references_for(truth, false, false);
    const auto attacked = scenario.references_for(truth, true, false);
    const auto secured = scenario.references_for(truth, true, true);
    if (clean.size() < 4 || attacked.size() < 4) continue;

    const auto eval = [&](const localization::LocationReferences& refs,
                          util::RunningStat& c_stat,
                          util::RunningStat& m_stat,
                          util::RunningStat& r_stat,
                          util::RunningStat& rf_stat) {
      if (const auto e = localization::centroid_estimate(refs))
        c_stat.add(util::distance(*e, truth));
      if (const auto e = solver.solve(refs))
        m_stat.add(util::distance(e->position, truth));
      if (const auto e = localization::robust_multilateration(refs))
        r_stat.add(util::distance(e->fit.position, truth));
      std::vector<util::Vec2> heard;
      for (const auto& r : refs) heard.push_back(r.beacon_position);
      if (const auto e = localization::range_free_estimate(heard))
        rf_stat.add(util::distance(e->position, truth));
    };

    eval(clean, centroid.clean, mmse.clean, robust.clean, range_free.clean);
    eval(attacked, centroid.attacked, mmse.attacked, robust.attacked,
         range_free.attacked);
    if (const auto e = solver.solve(secured))
      secured_mmse.secured.add(util::distance(e->position, truth));
  }

  std::printf("=== localization schemes vs 20%% compromised beacons ===\n");
  std::printf("(mean error in feet over %zu sensors)\n\n",
              mmse.clean.count());
  std::printf("%-24s %-12s %-12s\n", "scheme", "no attack", "under attack");
  std::printf("%-24s %-12.2f %-12.2f\n", "centroid", centroid.clean.mean(),
              centroid.attacked.mean());
  std::printf("%-24s %-12.2f %-12.2f\n", "range_free(SerLoc-ish)",
              range_free.clean.mean(), range_free.attacked.mean());
  std::printf("%-24s %-12.2f %-12.2f\n", "mmse", mmse.clean.mean(),
              mmse.attacked.mean());
  std::printf("%-24s %-12.2f %-12.2f\n", "robust_mmse", robust.clean.mean(),
              robust.attacked.mean());
  std::printf("%-24s %-12s %-12.2f\n", "mmse + revocation", "-",
              secured_mmse.secured.mean());
  std::printf(
      "\nreading: every scheme that trusts beacon locations degrades under\n"
      "attack — including range-free ones, which is the paper's related-\n"
      "work point about [16]. Robust estimation helps but cannot beat a\n"
      "large compromised fraction; removing the beacons (detection +\n"
      "revocation) restores near-clean accuracy.\n");
  return 0;
}
