// Battlefield target tracking — the motivating application from the
// paper's introduction. Sensors first discover their own locations using
// beacon nodes; a target then moves through the field, and every sensor
// that detects it reports "target seen at my position". The fused track is
// only as good as the sensors' self-localization, so compromised beacon
// nodes translate directly into wrong tracks — unless they are detected
// and revoked.
//
// The example runs the same scenario twice: once with the paper's
// detection + revocation pipeline enabled, once with it disabled
// (tau2 = infinity, i.e. alerts are collected but nobody is revoked), and
// compares the fused track error.
//
//   $ ./battlefield_tracking
//
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/nodes.hpp"
#include "core/secure_localization.hpp"

namespace {

using sld::util::Vec2;

struct TrackPoint {
  Vec2 true_position;
  Vec2 fused_estimate;
  int reporting_sensors = 0;
};

/// Runs one localization trial and fuses target detections along a path.
std::vector<TrackPoint> run_scenario(bool revocation_enabled,
                                     double attack_effectiveness,
                                     std::uint64_t seed) {
  sld::core::SystemConfig config;
  config.strategy = sld::attack::MaliciousStrategyConfig::with_effectiveness(
      attack_effectiveness);
  config.seed = seed;
  if (!revocation_enabled) {
    // Alerts still flow, but the threshold is unreachable: no revocation.
    config.revocation.alert_threshold = 1000000;
  }

  sld::core::SecureLocalizationSystem system(config);
  system.run();

  // Collect every sensor's self-estimate.
  struct LocalizedSensor {
    Vec2 true_pos;
    Vec2 est_pos;
  };
  std::vector<LocalizedSensor> sensors;
  for (const auto* node : system.network().nodes()) {
    const auto* sensor = dynamic_cast<const sld::core::SensorNode*>(node);
    if (sensor == nullptr || !sensor->result().has_value()) continue;
    sensors.push_back({sensor->position(), sensor->result()->position});
  }

  // March a target across the diagonal; sensors within 100 ft sensing
  // range report it at their own believed position.
  std::vector<TrackPoint> track;
  constexpr double kSensingRange = 100.0;
  for (double t = 0.0; t <= 1.0 + 1e-9; t += 0.1) {
    TrackPoint point;
    point.true_position = {150.0 + 700.0 * t, 200.0 + 600.0 * t};
    Vec2 sum;
    for (const auto& s : sensors) {
      if (sld::util::distance(s.true_pos, point.true_position) <=
          kSensingRange) {
        sum += s.est_pos;
        ++point.reporting_sensors;
      }
    }
    if (point.reporting_sensors > 0)
      point.fused_estimate = sum / point.reporting_sensors;
    track.push_back(point);
  }
  return track;
}

double mean_track_error(const std::vector<TrackPoint>& track) {
  double sum = 0.0;
  int n = 0;
  for (const auto& p : track) {
    if (p.reporting_sensors == 0) continue;
    sum += sld::util::distance(p.true_position, p.fused_estimate);
    ++n;
  }
  return n ? sum / n : 0.0;
}

}  // namespace

int main() {
  constexpr double kAttack = 0.6;
  constexpr std::uint64_t kSeed = 77;

  std::printf("=== battlefield tracking with compromised beacons ===\n");
  std::printf("attack effectiveness P = %.1f, seed = %llu\n\n", kAttack,
              static_cast<unsigned long long>(kSeed));

  const auto unprotected = run_scenario(false, kAttack, kSeed);
  const auto protected_run = run_scenario(true, kAttack, kSeed);

  std::printf("%-6s %-22s %-26s %-26s\n", "step", "target(true)",
              "fused(no revocation)", "fused(with revocation)");
  for (std::size_t i = 0; i < unprotected.size(); ++i) {
    const auto& u = unprotected[i];
    const auto& p = protected_run[i];
    std::printf("%-6zu (%6.1f,%6.1f)      (%6.1f,%6.1f) n=%-3d     "
                "(%6.1f,%6.1f) n=%-3d\n",
                i, u.true_position.x, u.true_position.y, u.fused_estimate.x,
                u.fused_estimate.y, u.reporting_sensors, p.fused_estimate.x,
                p.fused_estimate.y, p.reporting_sensors);
  }

  std::printf("\nmean fused-track error without revocation: %.2f ft\n",
              mean_track_error(unprotected));
  std::printf("mean fused-track error with revocation:    %.2f ft\n",
              mean_track_error(protected_run));
  return 0;
}
