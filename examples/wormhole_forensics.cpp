// Wormhole forensics — a close-up of the replay-filtering pipeline
// (paper §2.2). A wormhole tunnels beacon traffic between two corners of
// the field; this example shows, counter by counter, how (a) sensors near
// the far mouth receive beacon signals claiming impossible origins, (b)
// the wormhole detector discards most of them, and (c) detecting beacon
// nodes avoid false-accusing the benign beacons at the other end — and
// what breaks when the wormhole detector is turned off (p_d = 0).
//
//   $ ./wormhole_forensics
//
#include <cstdio>

#include "core/secure_localization.hpp"

namespace {

sld::core::TrialSummary run_with_detector(double p_d) {
  sld::core::SystemConfig config;
  // Benign network: all beacons honest; the only adversary is the
  // wormhole between (100,100) and (800,700).
  config.deployment.malicious_beacon_count = 0;
  config.wormhole_detection_rate = p_d;
  config.seed = 424242;
  sld::core::SecureLocalizationSystem system(config);
  return system.run();
}

void report(const char* title, const sld::core::TrialSummary& s) {
  std::printf("--- %s ---\n", title);
  std::printf("wormhole deliveries:          %llu\n",
              static_cast<unsigned long long>(s.channel.wormhole_deliveries));
  std::printf("probe signals flagged:        %llu\n",
              static_cast<unsigned long long>(s.raw.consistency_flags));
  std::printf("  attributed to wormhole:     %llu (correctly discarded)\n",
              static_cast<unsigned long long>(s.raw.probe_ignored_wormhole));
  std::printf("  false alerts submitted:     %llu\n",
              static_cast<unsigned long long>(s.raw.alerts_submitted));
  std::printf("benign beacons revoked:       %zu of %zu\n", s.benign_revoked,
              s.benign_beacons);
  std::printf("sensor refs dropped (wormhole stage): %llu\n",
              static_cast<unsigned long long>(s.raw.sensor_discarded_wormhole));
  std::printf("sensors localized:            %zu/%zu, mean error %.2f ft\n\n",
              s.sensors_localized, s.sensors, s.mean_localization_error_ft);
}

}  // namespace

int main() {
  std::printf("=== wormhole forensics: (100,100) <-> (800,700) tunnel ===\n");
  std::printf("all 100 beacons are honest; the wormhole replays their "
              "signals across the field\n\n");

  const auto with_detector = run_with_detector(0.9);
  report("wormhole detector ON (p_d = 0.9, the paper's setting)",
         with_detector);

  const auto without_detector = run_with_detector(0.0);
  report("wormhole detector OFF (p_d = 0)", without_detector);

  std::printf(
      "reading: with p_d = 0.9 nearly all tunneled beacon signals are\n"
      "attributed to the wormhole and ignored, so benign beacons survive;\n"
      "with the detector off, every tunneled probe looks like a lying\n"
      "beacon, false alerts flood the base station, and benign beacons at\n"
      "both mouths get revoked — exactly the false-positive mechanism the\n"
      "paper's N_f analysis bounds.\n");
  return 0;
}
