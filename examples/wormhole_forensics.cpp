// Wormhole forensics — a close-up of the replay-filtering pipeline
// (paper §2.2). A wormhole tunnels beacon traffic between two corners of
// the field; this example shows, counter by counter, how (a) sensors near
// the far mouth receive beacon signals claiming impossible origins, (b)
// the wormhole detector discards most of them, and (c) detecting beacon
// nodes avoid false-accusing the benign beacons at the other end — and
// what breaks when the wormhole detector is turned off (p_d = 0).
//
// The second half runs a trial with malicious beacons under a MemorySink
// trace and replays the structured events into a revocation timeline: for
// each revoked beacon, the probes, the inconsistency that fired (measured
// vs expected distance), the alert, the counter crossing, and the
// revocation — each stamped with its simulation time.
//
//   $ ./wormhole_forensics
//
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/secure_localization.hpp"
#include "obs/trace.hpp"

namespace {

sld::core::TrialSummary run_with_detector(double p_d) {
  sld::core::SystemConfig config;
  // Benign network: all beacons honest; the only adversary is the
  // wormhole between (100,100) and (800,700).
  config.deployment.malicious_beacon_count = 0;
  config.wormhole_detection_rate = p_d;
  config.seed = 424242;
  sld::core::SecureLocalizationSystem system(config);
  return system.run();
}

void report(const char* title, const sld::core::TrialSummary& s) {
  std::printf("--- %s ---\n", title);
  std::printf("wormhole deliveries:          %llu\n",
              static_cast<unsigned long long>(s.channel.wormhole_deliveries));
  std::printf("probe signals flagged:        %llu\n",
              static_cast<unsigned long long>(s.raw.consistency_flags));
  std::printf("  attributed to wormhole:     %llu (correctly discarded)\n",
              static_cast<unsigned long long>(s.raw.probe_ignored_wormhole));
  std::printf("  false alerts submitted:     %llu\n",
              static_cast<unsigned long long>(s.raw.alerts_submitted));
  std::printf("benign beacons revoked:       %zu of %zu\n", s.benign_revoked,
              s.benign_beacons);
  std::printf("sensor refs dropped (wormhole stage): %llu\n",
              static_cast<unsigned long long>(s.raw.sensor_discarded_wormhole));
  std::printf("sensors localized:            %zu/%zu, mean error %.2f ft\n\n",
              s.sensors_localized, s.sensors, s.mean_localization_error_ft);
}

// --- minimal JSONL field extraction --------------------------------------
// The trace records are flat JSON objects our own Event builder wrote, so
// simple string scans are exact here. Full parsing lives in
// tools/trace_report.py; this example only needs a handful of fields.

std::string field_raw(const std::string& line, const char* key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  auto end = start;
  if (end < line.size() && line[end] == '"') {
    ++end;
    while (end < line.size() && line[end] != '"') ++end;
    return line.substr(start + 1, end - start - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

double field_num(const std::string& line, const char* key) {
  const std::string raw = field_raw(line, key);
  return raw.empty() ? 0.0 : std::strtod(raw.c_str(), nullptr);
}

double sim_ms(const std::string& line) { return field_num(line, "t") / 1e6; }

void print_revocation_timeline(const std::vector<std::string>& lines) {
  // Ground truth + the set of targets that ended up revoked.
  std::unordered_set<std::string> malicious;
  std::unordered_set<std::string> revoked;
  for (const auto& line : lines) {
    const std::string type = field_raw(line, "e");
    if (type == "node.beacon" && field_raw(line, "malicious") == "true")
      malicious.insert(field_raw(line, "id"));
    else if (type == "bs.revoke")
      revoked.insert(field_raw(line, "target"));
  }
  std::printf("%zu beacon(s) revoked, %zu malicious ground truth\n\n",
              revoked.size(), malicious.size());

  std::unordered_map<std::string, std::size_t> shown_per_target;
  for (const auto& line : lines) {
    const std::string type = field_raw(line, "e");
    const std::string target = field_raw(line, "target");
    if (!revoked.contains(target)) continue;
    if (type == "detect.consistency") {
      // One inconsistency exemplar per target keeps the timeline short.
      if (field_raw(line, "malicious") != "true") continue;
      if (shown_per_target[target]++ > 0) continue;
      std::printf(
          "[%9.3f ms] node %s probed beacon %s: measured %.1f ft vs "
          "expected %.1f ft (threshold %.1f ft) -> inconsistent\n",
          sim_ms(line), field_raw(line, "node").c_str(), target.c_str(),
          field_num(line, "measured_ft"), field_num(line, "expected_ft"),
          field_num(line, "threshold_ft"));
    } else if (type == "alert.submit") {
      std::printf("[%9.3f ms] node %s reported an alert against %s\n",
                  sim_ms(line), field_raw(line, "reporter").c_str(),
                  target.c_str());
    } else if (type == "bs.alert") {
      std::printf(
          "[%9.3f ms] base station: alert %s -> %s (%s), alert counter "
          "now %s\n",
          sim_ms(line), field_raw(line, "reporter").c_str(), target.c_str(),
          field_raw(line, "disposition").c_str(),
          field_raw(line, "alert_counter").c_str());
    } else if (type == "bs.revoke") {
      std::printf(
          "[%9.3f ms] *** beacon %s REVOKED (counter %s > tau2 = %s) — "
          "%s ***\n",
          sim_ms(line), target.c_str(),
          field_raw(line, "alert_counter").c_str(),
          field_raw(line, "threshold").c_str(),
          malicious.contains(target) ? "true detection" : "FALSE POSITIVE");
    }
  }
}

}  // namespace

int main() {
  std::printf("=== wormhole forensics: (100,100) <-> (800,700) tunnel ===\n");
  std::printf("all 100 beacons are honest; the wormhole replays their "
              "signals across the field\n\n");

  const auto with_detector = run_with_detector(0.9);
  report("wormhole detector ON (p_d = 0.9, the paper's setting)",
         with_detector);

  const auto without_detector = run_with_detector(0.0);
  report("wormhole detector OFF (p_d = 0)", without_detector);

  std::printf(
      "reading: with p_d = 0.9 nearly all tunneled beacon signals are\n"
      "attributed to the wormhole and ignored, so benign beacons survive;\n"
      "with the detector off, every tunneled probe looks like a lying\n"
      "beacon, false alerts flood the base station, and benign beacons at\n"
      "both mouths get revoked — exactly the false-positive mechanism the\n"
      "paper's N_f analysis bounds.\n\n");

  // --- traced malicious run: replay the trace as a revocation timeline ---
  std::printf("=== revocation timeline (traced run, 10 malicious beacons, "
              "effectiveness 0.8) ===\n");
  sld::obs::MemorySink sink;
  {
    sld::core::SystemConfig config;
    config.strategy =
        sld::attack::MaliciousStrategyConfig::with_effectiveness(0.8);
    config.seed = 7;
    config.trace_sink = &sink;
    sld::core::SecureLocalizationSystem system(config);
    const auto s = system.run();
    std::printf("trace: %zu records; detection rate %.2f\n",
                sink.lines().size(), s.detection_rate);
  }
  print_revocation_timeline(sink.lines());
  return 0;
}
