# Empty compiler generated dependencies file for sld_detection.
# This may be replaced when dependencies are built.
