file(REMOVE_RECURSE
  "libsld_detection.a"
)
