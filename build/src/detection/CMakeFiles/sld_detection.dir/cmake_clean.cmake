file(REMOVE_RECURSE
  "CMakeFiles/sld_detection.dir/angle_check.cpp.o"
  "CMakeFiles/sld_detection.dir/angle_check.cpp.o.d"
  "CMakeFiles/sld_detection.dir/beacon_check.cpp.o"
  "CMakeFiles/sld_detection.dir/beacon_check.cpp.o.d"
  "CMakeFiles/sld_detection.dir/detector.cpp.o"
  "CMakeFiles/sld_detection.dir/detector.cpp.o.d"
  "CMakeFiles/sld_detection.dir/replay_filter.cpp.o"
  "CMakeFiles/sld_detection.dir/replay_filter.cpp.o.d"
  "libsld_detection.a"
  "libsld_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
