
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detection/angle_check.cpp" "src/detection/CMakeFiles/sld_detection.dir/angle_check.cpp.o" "gcc" "src/detection/CMakeFiles/sld_detection.dir/angle_check.cpp.o.d"
  "/root/repo/src/detection/beacon_check.cpp" "src/detection/CMakeFiles/sld_detection.dir/beacon_check.cpp.o" "gcc" "src/detection/CMakeFiles/sld_detection.dir/beacon_check.cpp.o.d"
  "/root/repo/src/detection/detector.cpp" "src/detection/CMakeFiles/sld_detection.dir/detector.cpp.o" "gcc" "src/detection/CMakeFiles/sld_detection.dir/detector.cpp.o.d"
  "/root/repo/src/detection/replay_filter.cpp" "src/detection/CMakeFiles/sld_detection.dir/replay_filter.cpp.o" "gcc" "src/detection/CMakeFiles/sld_detection.dir/replay_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sld_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ranging/CMakeFiles/sld_ranging.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sld_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
