file(REMOVE_RECURSE
  "libsld_routing.a"
)
