
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/gpsr.cpp" "src/routing/CMakeFiles/sld_routing.dir/gpsr.cpp.o" "gcc" "src/routing/CMakeFiles/sld_routing.dir/gpsr.cpp.o.d"
  "/root/repo/src/routing/topology.cpp" "src/routing/CMakeFiles/sld_routing.dir/topology.cpp.o" "gcc" "src/routing/CMakeFiles/sld_routing.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sld_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sld_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
