file(REMOVE_RECURSE
  "CMakeFiles/sld_routing.dir/gpsr.cpp.o"
  "CMakeFiles/sld_routing.dir/gpsr.cpp.o.d"
  "CMakeFiles/sld_routing.dir/topology.cpp.o"
  "CMakeFiles/sld_routing.dir/topology.cpp.o.d"
  "libsld_routing.a"
  "libsld_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
