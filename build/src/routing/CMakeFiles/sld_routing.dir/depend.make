# Empty dependencies file for sld_routing.
# This may be replaced when dependencies are built.
