# Empty dependencies file for sld_localization.
# This may be replaced when dependencies are built.
