
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localization/centroid.cpp" "src/localization/CMakeFiles/sld_localization.dir/centroid.cpp.o" "gcc" "src/localization/CMakeFiles/sld_localization.dir/centroid.cpp.o.d"
  "/root/repo/src/localization/dv_hop.cpp" "src/localization/CMakeFiles/sld_localization.dir/dv_hop.cpp.o" "gcc" "src/localization/CMakeFiles/sld_localization.dir/dv_hop.cpp.o.d"
  "/root/repo/src/localization/iterative.cpp" "src/localization/CMakeFiles/sld_localization.dir/iterative.cpp.o" "gcc" "src/localization/CMakeFiles/sld_localization.dir/iterative.cpp.o.d"
  "/root/repo/src/localization/multilateration.cpp" "src/localization/CMakeFiles/sld_localization.dir/multilateration.cpp.o" "gcc" "src/localization/CMakeFiles/sld_localization.dir/multilateration.cpp.o.d"
  "/root/repo/src/localization/range_free.cpp" "src/localization/CMakeFiles/sld_localization.dir/range_free.cpp.o" "gcc" "src/localization/CMakeFiles/sld_localization.dir/range_free.cpp.o.d"
  "/root/repo/src/localization/robust.cpp" "src/localization/CMakeFiles/sld_localization.dir/robust.cpp.o" "gcc" "src/localization/CMakeFiles/sld_localization.dir/robust.cpp.o.d"
  "/root/repo/src/localization/triangulation.cpp" "src/localization/CMakeFiles/sld_localization.dir/triangulation.cpp.o" "gcc" "src/localization/CMakeFiles/sld_localization.dir/triangulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ranging/CMakeFiles/sld_ranging.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sld_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sld_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
