file(REMOVE_RECURSE
  "CMakeFiles/sld_localization.dir/centroid.cpp.o"
  "CMakeFiles/sld_localization.dir/centroid.cpp.o.d"
  "CMakeFiles/sld_localization.dir/dv_hop.cpp.o"
  "CMakeFiles/sld_localization.dir/dv_hop.cpp.o.d"
  "CMakeFiles/sld_localization.dir/iterative.cpp.o"
  "CMakeFiles/sld_localization.dir/iterative.cpp.o.d"
  "CMakeFiles/sld_localization.dir/multilateration.cpp.o"
  "CMakeFiles/sld_localization.dir/multilateration.cpp.o.d"
  "CMakeFiles/sld_localization.dir/range_free.cpp.o"
  "CMakeFiles/sld_localization.dir/range_free.cpp.o.d"
  "CMakeFiles/sld_localization.dir/robust.cpp.o"
  "CMakeFiles/sld_localization.dir/robust.cpp.o.d"
  "CMakeFiles/sld_localization.dir/triangulation.cpp.o"
  "CMakeFiles/sld_localization.dir/triangulation.cpp.o.d"
  "libsld_localization.a"
  "libsld_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
