file(REMOVE_RECURSE
  "libsld_localization.a"
)
