file(REMOVE_RECURSE
  "libsld_revocation.a"
)
