# Empty dependencies file for sld_revocation.
# This may be replaced when dependencies are built.
