file(REMOVE_RECURSE
  "CMakeFiles/sld_revocation.dir/base_station.cpp.o"
  "CMakeFiles/sld_revocation.dir/base_station.cpp.o.d"
  "CMakeFiles/sld_revocation.dir/dissemination.cpp.o"
  "CMakeFiles/sld_revocation.dir/dissemination.cpp.o.d"
  "CMakeFiles/sld_revocation.dir/distributed.cpp.o"
  "CMakeFiles/sld_revocation.dir/distributed.cpp.o.d"
  "CMakeFiles/sld_revocation.dir/suspiciousness.cpp.o"
  "CMakeFiles/sld_revocation.dir/suspiciousness.cpp.o.d"
  "libsld_revocation.a"
  "libsld_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
