
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/active_wormhole.cpp" "src/attack/CMakeFiles/sld_attack.dir/active_wormhole.cpp.o" "gcc" "src/attack/CMakeFiles/sld_attack.dir/active_wormhole.cpp.o.d"
  "/root/repo/src/attack/collusion.cpp" "src/attack/CMakeFiles/sld_attack.dir/collusion.cpp.o" "gcc" "src/attack/CMakeFiles/sld_attack.dir/collusion.cpp.o.d"
  "/root/repo/src/attack/masquerade.cpp" "src/attack/CMakeFiles/sld_attack.dir/masquerade.cpp.o" "gcc" "src/attack/CMakeFiles/sld_attack.dir/masquerade.cpp.o.d"
  "/root/repo/src/attack/replay.cpp" "src/attack/CMakeFiles/sld_attack.dir/replay.cpp.o" "gcc" "src/attack/CMakeFiles/sld_attack.dir/replay.cpp.o.d"
  "/root/repo/src/attack/strategy.cpp" "src/attack/CMakeFiles/sld_attack.dir/strategy.cpp.o" "gcc" "src/attack/CMakeFiles/sld_attack.dir/strategy.cpp.o.d"
  "/root/repo/src/attack/wormhole.cpp" "src/attack/CMakeFiles/sld_attack.dir/wormhole.cpp.o" "gcc" "src/attack/CMakeFiles/sld_attack.dir/wormhole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sld_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sld_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
