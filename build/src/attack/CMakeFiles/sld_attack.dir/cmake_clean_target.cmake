file(REMOVE_RECURSE
  "libsld_attack.a"
)
