# Empty dependencies file for sld_attack.
# This may be replaced when dependencies are built.
