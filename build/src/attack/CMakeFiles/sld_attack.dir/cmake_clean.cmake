file(REMOVE_RECURSE
  "CMakeFiles/sld_attack.dir/active_wormhole.cpp.o"
  "CMakeFiles/sld_attack.dir/active_wormhole.cpp.o.d"
  "CMakeFiles/sld_attack.dir/collusion.cpp.o"
  "CMakeFiles/sld_attack.dir/collusion.cpp.o.d"
  "CMakeFiles/sld_attack.dir/masquerade.cpp.o"
  "CMakeFiles/sld_attack.dir/masquerade.cpp.o.d"
  "CMakeFiles/sld_attack.dir/replay.cpp.o"
  "CMakeFiles/sld_attack.dir/replay.cpp.o.d"
  "CMakeFiles/sld_attack.dir/strategy.cpp.o"
  "CMakeFiles/sld_attack.dir/strategy.cpp.o.d"
  "CMakeFiles/sld_attack.dir/wormhole.cpp.o"
  "CMakeFiles/sld_attack.dir/wormhole.cpp.o.d"
  "libsld_attack.a"
  "libsld_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
