file(REMOVE_RECURSE
  "libsld_analysis.a"
)
