# Empty compiler generated dependencies file for sld_analysis.
# This may be replaced when dependencies are built.
