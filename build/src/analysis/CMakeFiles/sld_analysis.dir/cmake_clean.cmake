file(REMOVE_RECURSE
  "CMakeFiles/sld_analysis.dir/formulas.cpp.o"
  "CMakeFiles/sld_analysis.dir/formulas.cpp.o.d"
  "libsld_analysis.a"
  "libsld_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
