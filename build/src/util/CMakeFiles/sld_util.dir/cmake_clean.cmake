file(REMOVE_RECURSE
  "CMakeFiles/sld_util.dir/bytes.cpp.o"
  "CMakeFiles/sld_util.dir/bytes.cpp.o.d"
  "CMakeFiles/sld_util.dir/geometry.cpp.o"
  "CMakeFiles/sld_util.dir/geometry.cpp.o.d"
  "CMakeFiles/sld_util.dir/rng.cpp.o"
  "CMakeFiles/sld_util.dir/rng.cpp.o.d"
  "CMakeFiles/sld_util.dir/stats.cpp.o"
  "CMakeFiles/sld_util.dir/stats.cpp.o.d"
  "CMakeFiles/sld_util.dir/table.cpp.o"
  "CMakeFiles/sld_util.dir/table.cpp.o.d"
  "libsld_util.a"
  "libsld_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
