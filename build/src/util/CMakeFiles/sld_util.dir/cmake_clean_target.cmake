file(REMOVE_RECURSE
  "libsld_util.a"
)
