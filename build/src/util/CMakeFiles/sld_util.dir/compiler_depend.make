# Empty compiler generated dependencies file for sld_util.
# This may be replaced when dependencies are built.
