
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/cipher.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/cipher.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/cipher.cpp.o.d"
  "/root/repo/src/crypto/detecting_ids.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/detecting_ids.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/detecting_ids.cpp.o.d"
  "/root/repo/src/crypto/key_pool.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/key_pool.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/key_pool.cpp.o.d"
  "/root/repo/src/crypto/mac.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/mac.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/mac.cpp.o.d"
  "/root/repo/src/crypto/pairwise.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/pairwise.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/pairwise.cpp.o.d"
  "/root/repo/src/crypto/polynomial_pool.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/polynomial_pool.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/polynomial_pool.cpp.o.d"
  "/root/repo/src/crypto/siphash.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/siphash.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/siphash.cpp.o.d"
  "/root/repo/src/crypto/tesla.cpp" "src/crypto/CMakeFiles/sld_crypto.dir/tesla.cpp.o" "gcc" "src/crypto/CMakeFiles/sld_crypto.dir/tesla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
