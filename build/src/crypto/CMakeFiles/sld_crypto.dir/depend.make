# Empty dependencies file for sld_crypto.
# This may be replaced when dependencies are built.
