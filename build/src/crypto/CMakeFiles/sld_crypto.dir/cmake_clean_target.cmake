file(REMOVE_RECURSE
  "libsld_crypto.a"
)
