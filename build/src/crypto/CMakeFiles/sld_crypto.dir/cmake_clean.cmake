file(REMOVE_RECURSE
  "CMakeFiles/sld_crypto.dir/cipher.cpp.o"
  "CMakeFiles/sld_crypto.dir/cipher.cpp.o.d"
  "CMakeFiles/sld_crypto.dir/detecting_ids.cpp.o"
  "CMakeFiles/sld_crypto.dir/detecting_ids.cpp.o.d"
  "CMakeFiles/sld_crypto.dir/key_pool.cpp.o"
  "CMakeFiles/sld_crypto.dir/key_pool.cpp.o.d"
  "CMakeFiles/sld_crypto.dir/mac.cpp.o"
  "CMakeFiles/sld_crypto.dir/mac.cpp.o.d"
  "CMakeFiles/sld_crypto.dir/pairwise.cpp.o"
  "CMakeFiles/sld_crypto.dir/pairwise.cpp.o.d"
  "CMakeFiles/sld_crypto.dir/polynomial_pool.cpp.o"
  "CMakeFiles/sld_crypto.dir/polynomial_pool.cpp.o.d"
  "CMakeFiles/sld_crypto.dir/siphash.cpp.o"
  "CMakeFiles/sld_crypto.dir/siphash.cpp.o.d"
  "CMakeFiles/sld_crypto.dir/tesla.cpp.o"
  "CMakeFiles/sld_crypto.dir/tesla.cpp.o.d"
  "libsld_crypto.a"
  "libsld_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
