file(REMOVE_RECURSE
  "libsld_ranging.a"
)
