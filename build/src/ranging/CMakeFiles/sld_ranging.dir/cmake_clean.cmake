file(REMOVE_RECURSE
  "CMakeFiles/sld_ranging.dir/aoa.cpp.o"
  "CMakeFiles/sld_ranging.dir/aoa.cpp.o.d"
  "CMakeFiles/sld_ranging.dir/echo.cpp.o"
  "CMakeFiles/sld_ranging.dir/echo.cpp.o.d"
  "CMakeFiles/sld_ranging.dir/rssi.cpp.o"
  "CMakeFiles/sld_ranging.dir/rssi.cpp.o.d"
  "CMakeFiles/sld_ranging.dir/rtt.cpp.o"
  "CMakeFiles/sld_ranging.dir/rtt.cpp.o.d"
  "CMakeFiles/sld_ranging.dir/tdoa.cpp.o"
  "CMakeFiles/sld_ranging.dir/tdoa.cpp.o.d"
  "CMakeFiles/sld_ranging.dir/time_sync.cpp.o"
  "CMakeFiles/sld_ranging.dir/time_sync.cpp.o.d"
  "CMakeFiles/sld_ranging.dir/toa.cpp.o"
  "CMakeFiles/sld_ranging.dir/toa.cpp.o.d"
  "CMakeFiles/sld_ranging.dir/wormhole_detector.cpp.o"
  "CMakeFiles/sld_ranging.dir/wormhole_detector.cpp.o.d"
  "libsld_ranging.a"
  "libsld_ranging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_ranging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
