# Empty compiler generated dependencies file for sld_ranging.
# This may be replaced when dependencies are built.
