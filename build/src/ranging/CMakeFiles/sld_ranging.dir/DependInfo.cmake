
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ranging/aoa.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/aoa.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/aoa.cpp.o.d"
  "/root/repo/src/ranging/echo.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/echo.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/echo.cpp.o.d"
  "/root/repo/src/ranging/rssi.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/rssi.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/rssi.cpp.o.d"
  "/root/repo/src/ranging/rtt.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/rtt.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/rtt.cpp.o.d"
  "/root/repo/src/ranging/tdoa.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/tdoa.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/tdoa.cpp.o.d"
  "/root/repo/src/ranging/time_sync.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/time_sync.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/time_sync.cpp.o.d"
  "/root/repo/src/ranging/toa.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/toa.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/toa.cpp.o.d"
  "/root/repo/src/ranging/wormhole_detector.cpp" "src/ranging/CMakeFiles/sld_ranging.dir/wormhole_detector.cpp.o" "gcc" "src/ranging/CMakeFiles/sld_ranging.dir/wormhole_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sld_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sld_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
