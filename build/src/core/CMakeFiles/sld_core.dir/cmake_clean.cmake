file(REMOVE_RECURSE
  "CMakeFiles/sld_core.dir/experiment.cpp.o"
  "CMakeFiles/sld_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sld_core.dir/nodes.cpp.o"
  "CMakeFiles/sld_core.dir/nodes.cpp.o.d"
  "CMakeFiles/sld_core.dir/secure_localization.cpp.o"
  "CMakeFiles/sld_core.dir/secure_localization.cpp.o.d"
  "libsld_core.a"
  "libsld_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
