# Empty compiler generated dependencies file for sld_core.
# This may be replaced when dependencies are built.
