file(REMOVE_RECURSE
  "libsld_core.a"
)
