# Empty dependencies file for sld_sim.
# This may be replaced when dependencies are built.
