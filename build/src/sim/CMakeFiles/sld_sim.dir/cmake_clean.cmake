file(REMOVE_RECURSE
  "CMakeFiles/sld_sim.dir/channel.cpp.o"
  "CMakeFiles/sld_sim.dir/channel.cpp.o.d"
  "CMakeFiles/sld_sim.dir/deployment.cpp.o"
  "CMakeFiles/sld_sim.dir/deployment.cpp.o.d"
  "CMakeFiles/sld_sim.dir/event.cpp.o"
  "CMakeFiles/sld_sim.dir/event.cpp.o.d"
  "CMakeFiles/sld_sim.dir/message.cpp.o"
  "CMakeFiles/sld_sim.dir/message.cpp.o.d"
  "CMakeFiles/sld_sim.dir/network.cpp.o"
  "CMakeFiles/sld_sim.dir/network.cpp.o.d"
  "CMakeFiles/sld_sim.dir/node.cpp.o"
  "CMakeFiles/sld_sim.dir/node.cpp.o.d"
  "CMakeFiles/sld_sim.dir/scheduler.cpp.o"
  "CMakeFiles/sld_sim.dir/scheduler.cpp.o.d"
  "libsld_sim.a"
  "libsld_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
