
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/channel.cpp" "src/sim/CMakeFiles/sld_sim.dir/channel.cpp.o" "gcc" "src/sim/CMakeFiles/sld_sim.dir/channel.cpp.o.d"
  "/root/repo/src/sim/deployment.cpp" "src/sim/CMakeFiles/sld_sim.dir/deployment.cpp.o" "gcc" "src/sim/CMakeFiles/sld_sim.dir/deployment.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/sim/CMakeFiles/sld_sim.dir/event.cpp.o" "gcc" "src/sim/CMakeFiles/sld_sim.dir/event.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/sim/CMakeFiles/sld_sim.dir/message.cpp.o" "gcc" "src/sim/CMakeFiles/sld_sim.dir/message.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/sld_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/sld_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/sld_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/sld_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/sld_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/sld_sim.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sld_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
