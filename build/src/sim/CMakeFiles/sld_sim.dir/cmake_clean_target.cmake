file(REMOVE_RECURSE
  "libsld_sim.a"
)
