file(REMOVE_RECURSE
  "CMakeFiles/test_replay_attack.dir/test_replay_attack.cpp.o"
  "CMakeFiles/test_replay_attack.dir/test_replay_attack.cpp.o.d"
  "test_replay_attack"
  "test_replay_attack.pdb"
  "test_replay_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
