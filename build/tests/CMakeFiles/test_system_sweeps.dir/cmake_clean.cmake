file(REMOVE_RECURSE
  "CMakeFiles/test_system_sweeps.dir/test_system_sweeps.cpp.o"
  "CMakeFiles/test_system_sweeps.dir/test_system_sweeps.cpp.o.d"
  "test_system_sweeps"
  "test_system_sweeps.pdb"
  "test_system_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
