# Empty compiler generated dependencies file for test_system_sweeps.
# This may be replaced when dependencies are built.
