file(REMOVE_RECURSE
  "CMakeFiles/test_rssi.dir/test_rssi.cpp.o"
  "CMakeFiles/test_rssi.dir/test_rssi.cpp.o.d"
  "test_rssi"
  "test_rssi.pdb"
  "test_rssi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rssi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
