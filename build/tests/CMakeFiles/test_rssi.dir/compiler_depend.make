# Empty compiler generated dependencies file for test_rssi.
# This may be replaced when dependencies are built.
