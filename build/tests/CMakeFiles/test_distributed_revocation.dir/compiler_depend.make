# Empty compiler generated dependencies file for test_distributed_revocation.
# This may be replaced when dependencies are built.
