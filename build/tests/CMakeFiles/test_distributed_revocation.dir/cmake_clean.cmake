file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_revocation.dir/test_distributed_revocation.cpp.o"
  "CMakeFiles/test_distributed_revocation.dir/test_distributed_revocation.cpp.o.d"
  "test_distributed_revocation"
  "test_distributed_revocation.pdb"
  "test_distributed_revocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
