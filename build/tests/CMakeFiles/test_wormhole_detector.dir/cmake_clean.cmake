file(REMOVE_RECURSE
  "CMakeFiles/test_wormhole_detector.dir/test_wormhole_detector.cpp.o"
  "CMakeFiles/test_wormhole_detector.dir/test_wormhole_detector.cpp.o.d"
  "test_wormhole_detector"
  "test_wormhole_detector.pdb"
  "test_wormhole_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wormhole_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
