# Empty compiler generated dependencies file for test_wormhole_detector.
# This may be replaced when dependencies are built.
