# Empty dependencies file for test_replay_filter.
# This may be replaced when dependencies are built.
