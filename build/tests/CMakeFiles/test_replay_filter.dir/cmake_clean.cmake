file(REMOVE_RECURSE
  "CMakeFiles/test_replay_filter.dir/test_replay_filter.cpp.o"
  "CMakeFiles/test_replay_filter.dir/test_replay_filter.cpp.o.d"
  "test_replay_filter"
  "test_replay_filter.pdb"
  "test_replay_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
