# Empty dependencies file for test_base_station.
# This may be replaced when dependencies are built.
