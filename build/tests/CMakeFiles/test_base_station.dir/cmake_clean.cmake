file(REMOVE_RECURSE
  "CMakeFiles/test_base_station.dir/test_base_station.cpp.o"
  "CMakeFiles/test_base_station.dir/test_base_station.cpp.o.d"
  "test_base_station"
  "test_base_station.pdb"
  "test_base_station[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_base_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
