file(REMOVE_RECURSE
  "CMakeFiles/test_rtt.dir/test_rtt.cpp.o"
  "CMakeFiles/test_rtt.dir/test_rtt.cpp.o.d"
  "test_rtt"
  "test_rtt.pdb"
  "test_rtt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
