# Empty dependencies file for test_rtt.
# This may be replaced when dependencies are built.
