file(REMOVE_RECURSE
  "CMakeFiles/test_system_integration.dir/test_system_integration.cpp.o"
  "CMakeFiles/test_system_integration.dir/test_system_integration.cpp.o.d"
  "test_system_integration"
  "test_system_integration.pdb"
  "test_system_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
