file(REMOVE_RECURSE
  "CMakeFiles/test_multilateration.dir/test_multilateration.cpp.o"
  "CMakeFiles/test_multilateration.dir/test_multilateration.cpp.o.d"
  "test_multilateration"
  "test_multilateration.pdb"
  "test_multilateration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilateration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
