# Empty compiler generated dependencies file for test_multilateration.
# This may be replaced when dependencies are built.
