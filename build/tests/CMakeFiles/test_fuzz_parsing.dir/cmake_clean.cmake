file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_parsing.dir/test_fuzz_parsing.cpp.o"
  "CMakeFiles/test_fuzz_parsing.dir/test_fuzz_parsing.cpp.o.d"
  "test_fuzz_parsing"
  "test_fuzz_parsing.pdb"
  "test_fuzz_parsing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_parsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
