# Empty dependencies file for test_fuzz_parsing.
# This may be replaced when dependencies are built.
