file(REMOVE_RECURSE
  "CMakeFiles/test_theory_vs_sim.dir/test_theory_vs_sim.cpp.o"
  "CMakeFiles/test_theory_vs_sim.dir/test_theory_vs_sim.cpp.o.d"
  "test_theory_vs_sim"
  "test_theory_vs_sim.pdb"
  "test_theory_vs_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theory_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
