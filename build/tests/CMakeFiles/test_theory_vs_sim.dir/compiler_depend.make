# Empty compiler generated dependencies file for test_theory_vs_sim.
# This may be replaced when dependencies are built.
