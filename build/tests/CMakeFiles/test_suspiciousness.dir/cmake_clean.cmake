file(REMOVE_RECURSE
  "CMakeFiles/test_suspiciousness.dir/test_suspiciousness.cpp.o"
  "CMakeFiles/test_suspiciousness.dir/test_suspiciousness.cpp.o.d"
  "test_suspiciousness"
  "test_suspiciousness.pdb"
  "test_suspiciousness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suspiciousness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
