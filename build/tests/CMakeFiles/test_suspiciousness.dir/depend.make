# Empty dependencies file for test_suspiciousness.
# This may be replaced when dependencies are built.
