file(REMOVE_RECURSE
  "CMakeFiles/test_dv_hop.dir/test_dv_hop.cpp.o"
  "CMakeFiles/test_dv_hop.dir/test_dv_hop.cpp.o.d"
  "test_dv_hop"
  "test_dv_hop.pdb"
  "test_dv_hop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dv_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
