# Empty compiler generated dependencies file for test_dv_hop.
# This may be replaced when dependencies are built.
