file(REMOVE_RECURSE
  "CMakeFiles/test_centroid.dir/test_centroid.cpp.o"
  "CMakeFiles/test_centroid.dir/test_centroid.cpp.o.d"
  "test_centroid"
  "test_centroid.pdb"
  "test_centroid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_centroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
