# Empty dependencies file for test_centroid.
# This may be replaced when dependencies are built.
