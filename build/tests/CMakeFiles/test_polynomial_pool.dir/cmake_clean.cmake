file(REMOVE_RECURSE
  "CMakeFiles/test_polynomial_pool.dir/test_polynomial_pool.cpp.o"
  "CMakeFiles/test_polynomial_pool.dir/test_polynomial_pool.cpp.o.d"
  "test_polynomial_pool"
  "test_polynomial_pool.pdb"
  "test_polynomial_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polynomial_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
