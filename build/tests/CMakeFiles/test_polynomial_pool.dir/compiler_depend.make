# Empty compiler generated dependencies file for test_polynomial_pool.
# This may be replaced when dependencies are built.
