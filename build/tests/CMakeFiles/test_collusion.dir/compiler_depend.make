# Empty compiler generated dependencies file for test_collusion.
# This may be replaced when dependencies are built.
