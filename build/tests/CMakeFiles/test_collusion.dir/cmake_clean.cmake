file(REMOVE_RECURSE
  "CMakeFiles/test_collusion.dir/test_collusion.cpp.o"
  "CMakeFiles/test_collusion.dir/test_collusion.cpp.o.d"
  "test_collusion"
  "test_collusion.pdb"
  "test_collusion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
