# Empty dependencies file for test_detector.
# This may be replaced when dependencies are built.
