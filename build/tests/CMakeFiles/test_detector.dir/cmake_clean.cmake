file(REMOVE_RECURSE
  "CMakeFiles/test_detector.dir/test_detector.cpp.o"
  "CMakeFiles/test_detector.dir/test_detector.cpp.o.d"
  "test_detector"
  "test_detector.pdb"
  "test_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
