# Empty dependencies file for test_echo_tdoa.
# This may be replaced when dependencies are built.
