file(REMOVE_RECURSE
  "CMakeFiles/test_echo_tdoa.dir/test_echo_tdoa.cpp.o"
  "CMakeFiles/test_echo_tdoa.dir/test_echo_tdoa.cpp.o.d"
  "test_echo_tdoa"
  "test_echo_tdoa.pdb"
  "test_echo_tdoa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_echo_tdoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
