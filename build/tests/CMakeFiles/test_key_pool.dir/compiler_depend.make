# Empty compiler generated dependencies file for test_key_pool.
# This may be replaced when dependencies are built.
