file(REMOVE_RECURSE
  "CMakeFiles/test_key_pool.dir/test_key_pool.cpp.o"
  "CMakeFiles/test_key_pool.dir/test_key_pool.cpp.o.d"
  "test_key_pool"
  "test_key_pool.pdb"
  "test_key_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
