# Empty compiler generated dependencies file for test_siphash.
# This may be replaced when dependencies are built.
