file(REMOVE_RECURSE
  "CMakeFiles/test_siphash.dir/test_siphash.cpp.o"
  "CMakeFiles/test_siphash.dir/test_siphash.cpp.o.d"
  "test_siphash"
  "test_siphash.pdb"
  "test_siphash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_siphash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
