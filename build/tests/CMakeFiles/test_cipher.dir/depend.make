# Empty dependencies file for test_cipher.
# This may be replaced when dependencies are built.
