
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cipher.cpp" "tests/CMakeFiles/test_cipher.dir/test_cipher.cpp.o" "gcc" "tests/CMakeFiles/test_cipher.dir/test_cipher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/sld_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sld_core.dir/DependInfo.cmake"
  "/root/repo/build/src/localization/CMakeFiles/sld_localization.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/sld_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/detection/CMakeFiles/sld_detection.dir/DependInfo.cmake"
  "/root/repo/build/src/ranging/CMakeFiles/sld_ranging.dir/DependInfo.cmake"
  "/root/repo/build/src/revocation/CMakeFiles/sld_revocation.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sld_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sld_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sld_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sld_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
