file(REMOVE_RECURSE
  "CMakeFiles/test_cipher.dir/test_cipher.cpp.o"
  "CMakeFiles/test_cipher.dir/test_cipher.cpp.o.d"
  "test_cipher"
  "test_cipher.pdb"
  "test_cipher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
