# Empty dependencies file for test_tesla.
# This may be replaced when dependencies are built.
