file(REMOVE_RECURSE
  "CMakeFiles/test_tesla.dir/test_tesla.cpp.o"
  "CMakeFiles/test_tesla.dir/test_tesla.cpp.o.d"
  "test_tesla"
  "test_tesla.pdb"
  "test_tesla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tesla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
