# Empty compiler generated dependencies file for test_formulas.
# This may be replaced when dependencies are built.
