file(REMOVE_RECURSE
  "CMakeFiles/test_formulas.dir/test_formulas.cpp.o"
  "CMakeFiles/test_formulas.dir/test_formulas.cpp.o.d"
  "test_formulas"
  "test_formulas.pdb"
  "test_formulas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
