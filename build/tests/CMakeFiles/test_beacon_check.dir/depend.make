# Empty dependencies file for test_beacon_check.
# This may be replaced when dependencies are built.
