file(REMOVE_RECURSE
  "CMakeFiles/test_beacon_check.dir/test_beacon_check.cpp.o"
  "CMakeFiles/test_beacon_check.dir/test_beacon_check.cpp.o.d"
  "test_beacon_check"
  "test_beacon_check.pdb"
  "test_beacon_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beacon_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
