# Empty dependencies file for test_toa_aoa.
# This may be replaced when dependencies are built.
