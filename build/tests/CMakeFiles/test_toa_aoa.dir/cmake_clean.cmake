file(REMOVE_RECURSE
  "CMakeFiles/test_toa_aoa.dir/test_toa_aoa.cpp.o"
  "CMakeFiles/test_toa_aoa.dir/test_toa_aoa.cpp.o.d"
  "test_toa_aoa"
  "test_toa_aoa.pdb"
  "test_toa_aoa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toa_aoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
