# Empty compiler generated dependencies file for test_robust.
# This may be replaced when dependencies are built.
