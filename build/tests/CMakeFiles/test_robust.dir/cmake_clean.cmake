file(REMOVE_RECURSE
  "CMakeFiles/test_robust.dir/test_robust.cpp.o"
  "CMakeFiles/test_robust.dir/test_robust.cpp.o.d"
  "test_robust"
  "test_robust.pdb"
  "test_robust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
