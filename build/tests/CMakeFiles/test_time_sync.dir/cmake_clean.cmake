file(REMOVE_RECURSE
  "CMakeFiles/test_time_sync.dir/test_time_sync.cpp.o"
  "CMakeFiles/test_time_sync.dir/test_time_sync.cpp.o.d"
  "test_time_sync"
  "test_time_sync.pdb"
  "test_time_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
