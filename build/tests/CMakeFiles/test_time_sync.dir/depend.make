# Empty dependencies file for test_time_sync.
# This may be replaced when dependencies are built.
