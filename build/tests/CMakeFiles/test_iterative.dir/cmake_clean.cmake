file(REMOVE_RECURSE
  "CMakeFiles/test_iterative.dir/test_iterative.cpp.o"
  "CMakeFiles/test_iterative.dir/test_iterative.cpp.o.d"
  "test_iterative"
  "test_iterative.pdb"
  "test_iterative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
