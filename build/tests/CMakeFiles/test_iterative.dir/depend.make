# Empty dependencies file for test_iterative.
# This may be replaced when dependencies are built.
