file(REMOVE_RECURSE
  "CMakeFiles/test_masquerade.dir/test_masquerade.cpp.o"
  "CMakeFiles/test_masquerade.dir/test_masquerade.cpp.o.d"
  "test_masquerade"
  "test_masquerade.pdb"
  "test_masquerade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masquerade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
