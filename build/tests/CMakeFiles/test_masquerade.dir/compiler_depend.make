# Empty compiler generated dependencies file for test_masquerade.
# This may be replaced when dependencies are built.
