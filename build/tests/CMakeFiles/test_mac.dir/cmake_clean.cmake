file(REMOVE_RECURSE
  "CMakeFiles/test_mac.dir/test_mac.cpp.o"
  "CMakeFiles/test_mac.dir/test_mac.cpp.o.d"
  "test_mac"
  "test_mac.pdb"
  "test_mac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
