file(REMOVE_RECURSE
  "CMakeFiles/test_active_wormhole.dir/test_active_wormhole.cpp.o"
  "CMakeFiles/test_active_wormhole.dir/test_active_wormhole.cpp.o.d"
  "test_active_wormhole"
  "test_active_wormhole.pdb"
  "test_active_wormhole[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_active_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
