# Empty dependencies file for test_active_wormhole.
# This may be replaced when dependencies are built.
