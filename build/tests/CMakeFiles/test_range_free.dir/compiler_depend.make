# Empty compiler generated dependencies file for test_range_free.
# This may be replaced when dependencies are built.
