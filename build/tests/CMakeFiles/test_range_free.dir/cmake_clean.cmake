file(REMOVE_RECURSE
  "CMakeFiles/test_range_free.dir/test_range_free.cpp.o"
  "CMakeFiles/test_range_free.dir/test_range_free.cpp.o.d"
  "test_range_free"
  "test_range_free.pdb"
  "test_range_free[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
