file(REMOVE_RECURSE
  "CMakeFiles/test_triangulation.dir/test_triangulation.cpp.o"
  "CMakeFiles/test_triangulation.dir/test_triangulation.cpp.o.d"
  "test_triangulation"
  "test_triangulation.pdb"
  "test_triangulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
