# Empty dependencies file for test_triangulation.
# This may be replaced when dependencies are built.
