# Empty dependencies file for test_detecting_ids.
# This may be replaced when dependencies are built.
