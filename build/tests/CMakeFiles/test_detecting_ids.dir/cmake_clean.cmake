file(REMOVE_RECURSE
  "CMakeFiles/test_detecting_ids.dir/test_detecting_ids.cpp.o"
  "CMakeFiles/test_detecting_ids.dir/test_detecting_ids.cpp.o.d"
  "test_detecting_ids"
  "test_detecting_ids.pdb"
  "test_detecting_ids[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detecting_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
