# Empty compiler generated dependencies file for test_dissemination.
# This may be replaced when dependencies are built.
