file(REMOVE_RECURSE
  "CMakeFiles/test_dissemination.dir/test_dissemination.cpp.o"
  "CMakeFiles/test_dissemination.dir/test_dissemination.cpp.o.d"
  "test_dissemination"
  "test_dissemination.pdb"
  "test_dissemination[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
