# Empty compiler generated dependencies file for test_nodes.
# This may be replaced when dependencies are built.
