# Empty dependencies file for wormhole_forensics.
# This may be replaced when dependencies are built.
