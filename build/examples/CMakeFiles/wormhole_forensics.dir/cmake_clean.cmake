file(REMOVE_RECURSE
  "CMakeFiles/wormhole_forensics.dir/wormhole_forensics.cpp.o"
  "CMakeFiles/wormhole_forensics.dir/wormhole_forensics.cpp.o.d"
  "wormhole_forensics"
  "wormhole_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
