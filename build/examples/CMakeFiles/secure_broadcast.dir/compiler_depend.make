# Empty compiler generated dependencies file for secure_broadcast.
# This may be replaced when dependencies are built.
