file(REMOVE_RECURSE
  "CMakeFiles/secure_broadcast.dir/secure_broadcast.cpp.o"
  "CMakeFiles/secure_broadcast.dir/secure_broadcast.cpp.o.d"
  "secure_broadcast"
  "secure_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
