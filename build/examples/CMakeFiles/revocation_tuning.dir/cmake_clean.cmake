file(REMOVE_RECURSE
  "CMakeFiles/revocation_tuning.dir/revocation_tuning.cpp.o"
  "CMakeFiles/revocation_tuning.dir/revocation_tuning.cpp.o.d"
  "revocation_tuning"
  "revocation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
