# Empty dependencies file for revocation_tuning.
# This may be replaced when dependencies are built.
