file(REMOVE_RECURSE
  "CMakeFiles/battlefield_tracking.dir/battlefield_tracking.cpp.o"
  "CMakeFiles/battlefield_tracking.dir/battlefield_tracking.cpp.o.d"
  "battlefield_tracking"
  "battlefield_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battlefield_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
