# Empty dependencies file for battlefield_tracking.
# This may be replaced when dependencies are built.
