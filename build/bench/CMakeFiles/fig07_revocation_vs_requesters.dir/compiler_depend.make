# Empty compiler generated dependencies file for fig07_revocation_vs_requesters.
# This may be replaced when dependencies are built.
