file(REMOVE_RECURSE
  "CMakeFiles/fig07_revocation_vs_requesters.dir/fig07_revocation_vs_requesters.cpp.o"
  "CMakeFiles/fig07_revocation_vs_requesters.dir/fig07_revocation_vs_requesters.cpp.o.d"
  "fig07_revocation_vs_requesters"
  "fig07_revocation_vs_requesters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_revocation_vs_requesters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
