# Empty dependencies file for fig08_affected_nodes.
# This may be replaced when dependencies are built.
