file(REMOVE_RECURSE
  "CMakeFiles/fig08_affected_nodes.dir/fig08_affected_nodes.cpp.o"
  "CMakeFiles/fig08_affected_nodes.dir/fig08_affected_nodes.cpp.o.d"
  "fig08_affected_nodes"
  "fig08_affected_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_affected_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
