# Empty compiler generated dependencies file for fig06_revocation_rate.
# This may be replaced when dependencies are built.
