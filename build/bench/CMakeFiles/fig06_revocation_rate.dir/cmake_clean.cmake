file(REMOVE_RECURSE
  "CMakeFiles/fig06_revocation_rate.dir/fig06_revocation_rate.cpp.o"
  "CMakeFiles/fig06_revocation_rate.dir/fig06_revocation_rate.cpp.o.d"
  "fig06_revocation_rate"
  "fig06_revocation_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_revocation_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
