# Empty dependencies file for ext_routing_impact.
# This may be replaced when dependencies are built.
