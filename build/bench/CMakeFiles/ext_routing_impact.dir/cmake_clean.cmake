file(REMOVE_RECURSE
  "CMakeFiles/ext_routing_impact.dir/ext_routing_impact.cpp.o"
  "CMakeFiles/ext_routing_impact.dir/ext_routing_impact.cpp.o.d"
  "ext_routing_impact"
  "ext_routing_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_routing_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
