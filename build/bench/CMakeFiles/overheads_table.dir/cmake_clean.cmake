file(REMOVE_RECURSE
  "CMakeFiles/overheads_table.dir/overheads_table.cpp.o"
  "CMakeFiles/overheads_table.dir/overheads_table.cpp.o.d"
  "overheads_table"
  "overheads_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overheads_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
