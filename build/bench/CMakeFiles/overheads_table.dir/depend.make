# Empty dependencies file for overheads_table.
# This may be replaced when dependencies are built.
