file(REMOVE_RECURSE
  "CMakeFiles/micro_hotpaths.dir/micro_hotpaths.cpp.o"
  "CMakeFiles/micro_hotpaths.dir/micro_hotpaths.cpp.o.d"
  "micro_hotpaths"
  "micro_hotpaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hotpaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
