file(REMOVE_RECURSE
  "CMakeFiles/fig05_detection_probability.dir/fig05_detection_probability.cpp.o"
  "CMakeFiles/fig05_detection_probability.dir/fig05_detection_probability.cpp.o.d"
  "fig05_detection_probability"
  "fig05_detection_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_detection_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
