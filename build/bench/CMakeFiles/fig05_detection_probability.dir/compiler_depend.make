# Empty compiler generated dependencies file for fig05_detection_probability.
# This may be replaced when dependencies are built.
