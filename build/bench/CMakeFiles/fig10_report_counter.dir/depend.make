# Empty dependencies file for fig10_report_counter.
# This may be replaced when dependencies are built.
