file(REMOVE_RECURSE
  "CMakeFiles/fig10_report_counter.dir/fig10_report_counter.cpp.o"
  "CMakeFiles/fig10_report_counter.dir/fig10_report_counter.cpp.o.d"
  "fig10_report_counter"
  "fig10_report_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_report_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
