file(REMOVE_RECURSE
  "CMakeFiles/ext_distributed_revocation.dir/ext_distributed_revocation.cpp.o"
  "CMakeFiles/ext_distributed_revocation.dir/ext_distributed_revocation.cpp.o.d"
  "ext_distributed_revocation"
  "ext_distributed_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_distributed_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
