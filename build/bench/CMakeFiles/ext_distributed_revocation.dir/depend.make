# Empty dependencies file for ext_distributed_revocation.
# This may be replaced when dependencies are built.
