file(REMOVE_RECURSE
  "CMakeFiles/fig13_sim_affected_nodes.dir/fig13_sim_affected_nodes.cpp.o"
  "CMakeFiles/fig13_sim_affected_nodes.dir/fig13_sim_affected_nodes.cpp.o.d"
  "fig13_sim_affected_nodes"
  "fig13_sim_affected_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sim_affected_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
