# Empty dependencies file for fig13_sim_affected_nodes.
# This may be replaced when dependencies are built.
