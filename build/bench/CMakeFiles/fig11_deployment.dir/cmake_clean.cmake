file(REMOVE_RECURSE
  "CMakeFiles/fig11_deployment.dir/fig11_deployment.cpp.o"
  "CMakeFiles/fig11_deployment.dir/fig11_deployment.cpp.o.d"
  "fig11_deployment"
  "fig11_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
