# Empty compiler generated dependencies file for fig11_deployment.
# This may be replaced when dependencies are built.
