# Empty compiler generated dependencies file for ext_suspiciousness.
# This may be replaced when dependencies are built.
