file(REMOVE_RECURSE
  "CMakeFiles/ext_suspiciousness.dir/ext_suspiciousness.cpp.o"
  "CMakeFiles/ext_suspiciousness.dir/ext_suspiciousness.cpp.o.d"
  "ext_suspiciousness"
  "ext_suspiciousness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_suspiciousness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
