# Empty compiler generated dependencies file for fig04_rtt_cdf.
# This may be replaced when dependencies are built.
