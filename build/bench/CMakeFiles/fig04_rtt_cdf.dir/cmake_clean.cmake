file(REMOVE_RECURSE
  "CMakeFiles/fig04_rtt_cdf.dir/fig04_rtt_cdf.cpp.o"
  "CMakeFiles/fig04_rtt_cdf.dir/fig04_rtt_cdf.cpp.o.d"
  "fig04_rtt_cdf"
  "fig04_rtt_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rtt_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
