# Empty dependencies file for fig14_roc.
# This may be replaced when dependencies are built.
