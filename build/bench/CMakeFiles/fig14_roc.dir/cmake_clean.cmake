file(REMOVE_RECURSE
  "CMakeFiles/fig14_roc.dir/fig14_roc.cpp.o"
  "CMakeFiles/fig14_roc.dir/fig14_roc.cpp.o.d"
  "fig14_roc"
  "fig14_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
