# Empty dependencies file for fig09_affected_vs_requesters.
# This may be replaced when dependencies are built.
