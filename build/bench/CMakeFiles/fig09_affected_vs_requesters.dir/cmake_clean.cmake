file(REMOVE_RECURSE
  "CMakeFiles/fig09_affected_vs_requesters.dir/fig09_affected_vs_requesters.cpp.o"
  "CMakeFiles/fig09_affected_vs_requesters.dir/fig09_affected_vs_requesters.cpp.o.d"
  "fig09_affected_vs_requesters"
  "fig09_affected_vs_requesters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_affected_vs_requesters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
