file(REMOVE_RECURSE
  "CMakeFiles/fig12_sim_detection_rate.dir/fig12_sim_detection_rate.cpp.o"
  "CMakeFiles/fig12_sim_detection_rate.dir/fig12_sim_detection_rate.cpp.o.d"
  "fig12_sim_detection_rate"
  "fig12_sim_detection_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sim_detection_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
