# Empty compiler generated dependencies file for fig12_sim_detection_rate.
# This may be replaced when dependencies are built.
