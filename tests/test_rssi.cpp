#include "ranging/rssi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sld::ranging {
namespace {

TEST(RssiBoundedUniform, ErrorWithinBound) {
  RssiRangingModel model(RssiConfig{});
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform(0.0, 150.0);
    const double m = model.measure(d, rng);
    EXPECT_LE(std::abs(m - d), 4.0 + 1e-12);
    EXPECT_GE(m, 0.0);
  }
}

TEST(RssiBoundedUniform, ErrorIsUnbiased) {
  RssiRangingModel model(RssiConfig{});
  util::Rng rng(2);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += model.measure(100.0, rng) - 100.0;
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
}

TEST(RssiBoundedUniform, ErrorActuallySpreadsOverBound) {
  RssiRangingModel model(RssiConfig{});
  util::Rng rng(3);
  double max_err = 0.0;
  for (int i = 0; i < 10000; ++i)
    max_err = std::max(max_err, std::abs(model.measure(100.0, rng) - 100.0));
  EXPECT_GT(max_err, 3.5);  // should get close to the 4 ft bound
}

TEST(RssiLogNormal, ErrorClippedToBound) {
  RssiConfig cfg;
  cfg.kind = RssiModelKind::kLogNormalShadowing;
  cfg.shadowing_sigma_db = 6.0;  // heavy shadowing: clipping must engage
  RssiRangingModel model(cfg);
  util::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform(5.0, 150.0);
    const double m = model.measure(d, rng);
    EXPECT_LE(std::abs(m - d), cfg.max_error_ft + 1e-9);
  }
}

TEST(RssiLogNormal, ZeroSigmaIsExact) {
  RssiConfig cfg;
  cfg.kind = RssiModelKind::kLogNormalShadowing;
  cfg.shadowing_sigma_db = 0.0;
  RssiRangingModel model(cfg);
  util::Rng rng(5);
  EXPECT_NEAR(model.measure(100.0, rng), 100.0, 1e-9);
}

TEST(Rssi, ManipulationShiftsMeasurement) {
  RssiRangingModel model(RssiConfig{});
  util::Rng rng(6);
  const double m = model.measure_manipulated(100.0, 60.0, rng);
  EXPECT_GE(m, 156.0 - 1e-9);
  EXPECT_LE(m, 164.0 + 1e-9);
}

TEST(Rssi, NegativeManipulationClampsAtZero) {
  RssiRangingModel model(RssiConfig{});
  util::Rng rng(7);
  EXPECT_EQ(model.measure_manipulated(10.0, -100.0, rng), 0.0);
}

TEST(Rssi, ZeroDistanceSupported) {
  RssiRangingModel model(RssiConfig{});
  util::Rng rng(8);
  const double m = model.measure(0.0, rng);
  EXPECT_GE(m, 0.0);
  EXPECT_LE(m, 4.0 + 1e-12);
}

TEST(Rssi, ConfigValidation) {
  RssiConfig bad;
  bad.max_error_ft = -1.0;
  EXPECT_THROW(RssiRangingModel{bad}, std::invalid_argument);
  bad = RssiConfig{};
  bad.path_loss_exponent = 0.0;
  EXPECT_THROW(RssiRangingModel{bad}, std::invalid_argument);
  bad = RssiConfig{};
  bad.reference_distance_ft = 0.0;
  EXPECT_THROW(RssiRangingModel{bad}, std::invalid_argument);
}

TEST(Rssi, NegativeDistanceRejected) {
  RssiRangingModel model(RssiConfig{});
  util::Rng rng(9);
  EXPECT_THROW(model.measure(-1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace sld::ranging
