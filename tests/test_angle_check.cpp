// Unit tests for the AoA consistency detector (detection/angle_check.hpp):
// benign/malicious verdicts, the short-range floor, boundary strictness,
// wraparound near +-pi, and rigid-motion invariance as a property.
#include <gtest/gtest.h>

#include <cmath>

#include "detection/angle_check.hpp"
#include "prop/prop.hpp"
#include "ranging/aoa.hpp"
#include "util/geometry.hpp"

namespace {

using namespace sld;
using detection::AngleConsistencyCheck;

constexpr double kPi = 3.14159265358979323846;

TEST(AngleCheck, HonestBearingWithinBoundIsBenign) {
  const AngleConsistencyCheck check(/*max_angle_error_rad=*/0.05);
  const util::Vec2 detector{0.0, 0.0};
  const util::Vec2 claimed{100.0, 0.0};
  const double truth = ranging::true_bearing(detector, claimed);
  EXPECT_FALSE(check.is_malicious(detector, claimed, truth));
  EXPECT_FALSE(check.is_malicious(detector, claimed, truth + 0.04));
  EXPECT_FALSE(check.is_malicious(detector, claimed, truth - 0.04));
}

TEST(AngleCheck, LargeBearingMismatchIsMalicious) {
  const AngleConsistencyCheck check(0.05);
  const util::Vec2 detector{0.0, 0.0};
  const util::Vec2 claimed{100.0, 0.0};  // true bearing 0
  EXPECT_TRUE(check.is_malicious(detector, claimed, kPi / 2));
  EXPECT_TRUE(check.is_malicious(detector, claimed, kPi));
  EXPECT_TRUE(check.is_malicious(detector, claimed, -kPi / 2));
}

TEST(AngleCheck, ThresholdIsStrictlyGreater) {
  const AngleConsistencyCheck check(0.05);
  const util::Vec2 detector{0.0, 0.0};
  const util::Vec2 claimed{100.0, 0.0};
  const double truth = ranging::true_bearing(detector, claimed);
  // Exactly at the bound: an honest antenna can produce this, so benign.
  EXPECT_FALSE(check.is_malicious(detector, claimed, truth + 0.05));
  EXPECT_TRUE(check.is_malicious(detector, claimed, truth + 0.050001));
}

TEST(AngleCheck, PointBlankClaimsAreNeverFlagged) {
  // Inside min_meaningful_distance_ft a few feet of honest position error
  // swing the bearing arbitrarily, so the angle check must stay silent
  // even for a wildly wrong bearing.
  const AngleConsistencyCheck check(0.05, /*min_meaningful_distance_ft=*/10.0);
  const util::Vec2 detector{0.0, 0.0};
  const util::Vec2 claimed{3.0, 4.0};  // 5 ft away
  EXPECT_FALSE(check.is_malicious(detector, claimed, kPi));
  EXPECT_FALSE(check.is_malicious(detector, claimed, -kPi / 2));
}

TEST(AngleCheck, WraparoundNearPiIsHandled) {
  const AngleConsistencyCheck check(0.05);
  const util::Vec2 detector{0.0, 0.0};
  const util::Vec2 claimed{-100.0, -0.001};  // true bearing ~ -pi
  const double truth = ranging::true_bearing(detector, claimed);
  // A measurement just across the +-pi seam differs by ~0.02 rad, not ~2 pi.
  const double across_seam = ranging::normalize_angle(truth - 0.02);
  EXPECT_NE(std::signbit(across_seam), std::signbit(truth));
  EXPECT_FALSE(check.is_malicious(detector, claimed, across_seam));
  EXPECT_TRUE(
      check.is_malicious(detector, claimed, ranging::normalize_angle(truth + 0.2)));
}

TEST(AngleCheckProperty, VerdictIsRigidMotionInvariant) {
  // Translating and rotating the whole scene (detector, claimed position,
  // and the measured bearing) must never change the verdict.
  const AngleConsistencyCheck check(0.05);
  struct Scene {
    util::Vec2 detector;
    util::Vec2 claimed;
    double bearing_offset;  // measured = true bearing + offset
    util::Vec2 translation;
    double rotation;
  };
  prop::Gen<Scene> gen;
  gen.generate = [](util::Rng& rng) {
    Scene s;
    s.detector = {rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    // Keep the claim beyond the 10 ft floor so the angular branch decides.
    const double angle = rng.uniform(-kPi, kPi);
    const double dist = rng.uniform(20.0, 600.0);
    s.claimed = s.detector +
                util::Vec2{dist * std::cos(angle), dist * std::sin(angle)};
    // Keep the offset away from the 0.05 rad threshold so float noise from
    // the rotation can't flip a knife-edge verdict.
    do {
      s.bearing_offset = rng.uniform(-0.5, 0.5);
    } while (std::abs(std::abs(s.bearing_offset) - 0.05) < 1e-3);
    s.translation = {rng.uniform(-2000.0, 2000.0), rng.uniform(-2000.0, 2000.0)};
    s.rotation = rng.uniform(-kPi, kPi);
    return s;
  };
  gen.show = [](const Scene& s) {
    std::ostringstream os;
    os << "{det=(" << s.detector.x << "," << s.detector.y << ") claim=("
       << s.claimed.x << "," << s.claimed.y << ") offset=" << s.bearing_offset
       << " T=(" << s.translation.x << "," << s.translation.y
       << ") R=" << s.rotation << "}";
    return os.str();
  };
  auto rotate = [](const util::Vec2& v, double a) {
    return util::Vec2{v.x * std::cos(a) - v.y * std::sin(a),
                      v.x * std::sin(a) + v.y * std::cos(a)};
  };
  EXPECT_TRUE(prop::forall(
      "angle verdict invariant under translation+rotation", gen,
      [&](const Scene& s) {
        const double measured =
            ranging::true_bearing(s.detector, s.claimed) + s.bearing_offset;
        const bool base = check.is_malicious(s.detector, s.claimed,
                                             ranging::normalize_angle(measured));
        const util::Vec2 det2 = rotate(s.detector, s.rotation) + s.translation;
        const util::Vec2 claim2 = rotate(s.claimed, s.rotation) + s.translation;
        const bool moved = check.is_malicious(
            det2, claim2, ranging::normalize_angle(measured + s.rotation));
        return base == moved;
      }));
}

}  // namespace
