#include "localization/triangulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ranging/aoa.hpp"
#include "util/rng.hpp"

namespace sld::localization {
namespace {

/// Bearing of beacon `b` as seen from `node` (what AoA measures).
double bearing_of(const util::Vec2& node, const util::Vec2& b) {
  return ranging::true_bearing(node, b);
}

TEST(Triangulation, ExactWithTwoPerpendicularBearings) {
  const util::Vec2 truth{30, 40};
  std::vector<BearingReference> refs{
      {1, {130, 40}, bearing_of(truth, {130, 40})},   // due east
      {2, {30, 140}, bearing_of(truth, {30, 140})}};  // due north
  const auto result = triangulate(refs);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->position.x, truth.x, 1e-9);
  EXPECT_NEAR(result->position.y, truth.y, 1e-9);
  EXPECT_NEAR(result->rms_residual_ft, 0.0, 1e-9);
}

TEST(Triangulation, ExactWithManyBearings) {
  util::Rng rng(1);
  const util::Vec2 truth{512, 384};
  std::vector<BearingReference> refs;
  for (std::uint32_t i = 0; i < 6; ++i) {
    const util::Vec2 b{truth.x + rng.uniform(-150, 150),
                       truth.y + rng.uniform(-150, 150)};
    refs.push_back({i, b, bearing_of(truth, b)});
  }
  const auto result = triangulate(refs);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(util::distance(result->position, truth), 1e-6);
}

TEST(Triangulation, NoisyBearingsBoundedError) {
  util::Rng rng(2);
  ranging::AoaModel aoa;  // 0.05 rad error bound
  const util::Vec2 truth{500, 500};
  int ok = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<BearingReference> refs;
    for (std::uint32_t i = 0; i < 6; ++i) {
      const util::Vec2 b{truth.x + rng.uniform(-150, 150),
                         truth.y + rng.uniform(-150, 150)};
      if (util::distance(truth, b) < 30) continue;
      refs.push_back({i, b, aoa.measure_bearing(truth, b, rng)});
    }
    if (refs.size() < 3) continue;
    const auto result = triangulate(refs);
    if (!result) continue;
    ++ok;
    // 0.05 rad over <= 212 ft baselines: error stays within ~25 ft.
    EXPECT_LT(util::distance(result->position, truth), 25.0);
  }
  EXPECT_GT(ok, 80);
}

TEST(Triangulation, RejectsDegenerateInputs) {
  EXPECT_FALSE(triangulate({}).has_value());
  EXPECT_FALSE(
      triangulate({{1, {0, 0}, 0.0}}).has_value());  // single bearing
  // Parallel bearings never intersect.
  std::vector<BearingReference> parallel{{1, {0, 0}, 0.0},
                                         {2, {0, 100}, 0.0}};
  EXPECT_FALSE(triangulate(parallel).has_value());
}

TEST(Triangulation, LyingBeaconSkewsFix) {
  const util::Vec2 truth{100, 100};
  std::vector<BearingReference> refs{
      {1, {200, 100}, bearing_of(truth, {200, 100})},
      {2, {100, 200}, bearing_of(truth, {100, 200})},
      {3, {0, 100}, bearing_of(truth, {0, 100})}};
  const auto clean = triangulate(refs);
  ASSERT_TRUE(clean.has_value());
  // Beacon 3 claims a position 90 degrees off its real one.
  refs[2].beacon_position = {100, 0};
  const auto attacked = triangulate(refs);
  ASSERT_TRUE(attacked.has_value());
  EXPECT_GT(util::distance(attacked->position, truth),
            util::distance(clean->position, truth) + 5.0);
}

}  // namespace
}  // namespace sld::localization
