#include <gtest/gtest.h>

#include <cmath>

#include "detection/angle_check.hpp"
#include "ranging/aoa.hpp"
#include "ranging/toa.hpp"
#include "util/rng.hpp"

namespace sld {
namespace {

// --- ToA -------------------------------------------------------------

TEST(Toa, ErrorWithinBound) {
  ranging::ToaRangingModel model;
  util::Rng rng(1);
  const double bound = model.max_error_ft();
  EXPECT_NEAR(bound, 3.93, 0.05);  // 4 ns of sync error ~ 3.9 ft
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform(0.0, 150.0);
    EXPECT_LE(std::abs(model.measure(d, rng) - d), bound + 1e-9);
  }
}

TEST(Toa, ManipulationShiftsDistance) {
  ranging::ToaRangingModel model;
  util::Rng rng(2);
  // +100 ns of timestamp manipulation ~ +98 ft.
  const double m = model.measure_manipulated(50.0, 100.0, rng);
  EXPECT_GT(m, 140.0);
  EXPECT_LT(m, 155.0);
}

TEST(Toa, NonNegativeAndValidated) {
  ranging::ToaRangingModel model;
  util::Rng rng(3);
  EXPECT_GE(model.measure_manipulated(1.0, -1000.0, rng), 0.0);
  EXPECT_THROW(model.measure(-1.0, rng), std::invalid_argument);
  ranging::ToaConfig bad;
  bad.max_sync_error_ns = -1.0;
  EXPECT_THROW(ranging::ToaRangingModel{bad}, std::invalid_argument);
}

// --- AoA -------------------------------------------------------------

TEST(Aoa, NormalizeAngleFoldsIntoRange) {
  EXPECT_NEAR(ranging::normalize_angle(3.0 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(ranging::normalize_angle(-3.0 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(ranging::normalize_angle(0.5), 0.5, 1e-12);
}

TEST(Aoa, TrueBearingCardinalDirections) {
  const util::Vec2 o{0, 0};
  EXPECT_NEAR(ranging::true_bearing(o, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(ranging::true_bearing(o, {0, 1}), M_PI / 2, 1e-12);
  EXPECT_NEAR(std::abs(ranging::true_bearing(o, {-1, 0})), M_PI, 1e-12);
  EXPECT_NEAR(ranging::true_bearing(o, {0, -1}), -M_PI / 2, 1e-12);
}

TEST(Aoa, AngularDistanceWrapsCorrectly) {
  EXPECT_NEAR(ranging::angular_distance(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(ranging::angular_distance(M_PI - 0.05, -M_PI + 0.05), 0.1,
              1e-12);
  EXPECT_NEAR(ranging::angular_distance(1.0, 1.0), 0.0, 1e-12);
}

TEST(Aoa, MeasurementWithinBound) {
  ranging::AoaModel model;
  util::Rng rng(4);
  const util::Vec2 rx{100, 100};
  for (int i = 0; i < 5000; ++i) {
    const util::Vec2 tx{rx.x + rng.uniform(-150, 150),
                        rx.y + rng.uniform(-150, 150)};
    const double measured = model.measure_bearing(rx, tx, rng);
    EXPECT_LE(ranging::angular_distance(measured,
                                        ranging::true_bearing(rx, tx)),
              model.config().max_error_rad + 1e-12);
  }
}

TEST(Aoa, ConfigValidation) {
  ranging::AoaConfig bad;
  bad.max_error_rad = -0.1;
  EXPECT_THROW(ranging::AoaModel{bad}, std::invalid_argument);
  bad.max_error_rad = 4.0;
  EXPECT_THROW(ranging::AoaModel{bad}, std::invalid_argument);
}

// --- AoA consistency check (the paper's detector, angle flavour) ------

TEST(AngleCheck, HonestBearingsNeverFlagged) {
  detection::AngleConsistencyCheck check(0.05);
  ranging::AoaModel aoa;
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const util::Vec2 det{500, 500};
    const util::Vec2 beacon{det.x + rng.uniform(-150, 150),
                            det.y + rng.uniform(-150, 150)};
    if (util::distance(det, beacon) < 10.0) continue;
    const double measured = aoa.measure_bearing(det, beacon, rng);
    EXPECT_FALSE(check.is_malicious(det, beacon, measured));
  }
}

TEST(AngleCheck, PerpendicularLieCaught) {
  detection::AngleConsistencyCheck check(0.05);
  ranging::AoaModel aoa;
  util::Rng rng(6);
  const util::Vec2 det{0, 0};
  const util::Vec2 true_pos{100, 0};
  const util::Vec2 claimed{100, 60};  // ~31 degrees off the true bearing
  for (int i = 0; i < 1000; ++i) {
    const double measured = aoa.measure_bearing(det, true_pos, rng);
    EXPECT_TRUE(check.is_malicious(det, claimed, measured));
  }
}

TEST(AngleCheck, RadialLieInvisibleToAngleAlone) {
  // A lie along the same bearing keeps the angle consistent — the reason
  // AoA-based detection complements rather than replaces range checks.
  detection::AngleConsistencyCheck check(0.05);
  ranging::AoaModel aoa;
  util::Rng rng(7);
  const util::Vec2 det{0, 0};
  const util::Vec2 true_pos{100, 0};
  const util::Vec2 claimed{200, 0};  // same bearing, double the distance
  int flagged = 0;
  for (int i = 0; i < 1000; ++i) {
    if (check.is_malicious(det, claimed,
                           aoa.measure_bearing(det, true_pos, rng)))
      ++flagged;
  }
  EXPECT_EQ(flagged, 0);
}

TEST(AngleCheck, PointBlankClaimsNotFlagged) {
  detection::AngleConsistencyCheck check(0.05, 10.0);
  // A claim 2 ft away: bearings are meaningless, must not flag.
  EXPECT_FALSE(check.is_malicious({0, 0}, {2, 0}, M_PI));
}

TEST(AngleCheck, Validation) {
  EXPECT_THROW(detection::AngleConsistencyCheck(-0.1), std::invalid_argument);
  EXPECT_THROW(detection::AngleConsistencyCheck(4.0), std::invalid_argument);
  EXPECT_THROW(detection::AngleConsistencyCheck(0.05, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sld
