#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.hpp"

namespace sld::sim {
namespace {

/// Records every delivery it receives.
class RecorderNode final : public Node {
 public:
  using Node::Node;
  void on_message(const Delivery& d) override { deliveries.push_back(d); }
  std::vector<Delivery> deliveries;
};

Message make_msg(NodeId src, NodeId dst) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = MsgType::kAppData;
  m.payload = {1, 2, 3};
  return m;
}

class ChannelTest : public ::testing::Test {
 protected:
  Network net{ChannelConfig{}, 99};
};

TEST_F(ChannelTest, DirectDeliveryWithinRange) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].msg.src, 1u);
  EXPECT_FALSE(b.deliveries[0].ctx.via_wormhole);
  EXPECT_EQ(b.deliveries[0].ctx.radiating_position, (util::Vec2{0, 0}));
}

TEST_F(ChannelTest, OutOfRangeIsDropped) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{151, 0}, 150.0);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_EQ(net.channel().stats().out_of_range, 1u);
}

TEST_F(ChannelTest, DeliveryDelayIncludesAirtime) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  // 3 payload + 16 overhead bytes at 19.2 kbps ~ 7.9 ms.
  EXPECT_GE(b.deliveries[0].rx_time, 7 * kMillisecond);
  EXPECT_LE(b.deliveries[0].rx_time, 9 * kMillisecond);
}

TEST_F(ChannelTest, WormholeTunnelsToFarNode) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{100, 100}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{800, 700}, 150.0);
  WormholeLink link;
  link.mouth_a = {100, 100};
  link.mouth_b = {800, 700};
  link.exit_range_ft = 150.0;
  net.channel().add_wormhole(link);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_TRUE(b.deliveries[0].ctx.via_wormhole);
  EXPECT_TRUE(b.deliveries[0].ctx.is_replay);
  // RSSI-relevant: the energy radiates from the exit mouth.
  EXPECT_EQ(b.deliveries[0].ctx.radiating_position, (util::Vec2{800, 700}));
  EXPECT_EQ(net.channel().stats().wormhole_deliveries, 1u);
}

TEST_F(ChannelTest, WormholeIsBidirectional) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{100, 100}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{800, 700}, 150.0);
  WormholeLink link;
  link.mouth_a = {100, 100};
  link.mouth_b = {800, 700};
  link.exit_range_ft = 150.0;
  net.channel().add_wormhole(link);
  net.channel().unicast(b, make_msg(2, 1));
  net.run();
  ASSERT_EQ(a.deliveries.size(), 1u);
  EXPECT_TRUE(a.deliveries[0].ctx.via_wormhole);
}

TEST_F(ChannelTest, WormholeDeliveryCarriesExtraDelay) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{100, 100}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{800, 700}, 150.0);
  WormholeLink link;
  link.mouth_a = {100, 100};
  link.mouth_b = {800, 700};
  link.exit_range_ft = 150.0;
  link.extra_delay_cycles = 5000.0;
  net.channel().add_wormhole(link);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(b.deliveries[0].ctx.extra_delay_cycles, 5000.0);
}

TEST_F(ChannelTest, NearbyNodeGetsAllCopies) {
  // Receiver in range of the sender AND of both wormhole mouths: the
  // direct copy plus one tunnelled copy per traversal direction arrive
  // (protocols dedup by nonce).
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  WormholeLink link;
  link.mouth_a = {10, 0};
  link.mouth_b = {120, 0};
  link.exit_range_ft = 150.0;
  net.channel().add_wormhole(link);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  ASSERT_EQ(b.deliveries.size(), 3u);
  int tunneled = 0;
  for (const auto& d : b.deliveries) tunneled += d.ctx.via_wormhole ? 1 : 0;
  EXPECT_EQ(tunneled, 2);
}

TEST_F(ChannelTest, LossyChannelDropsRoughlyAtRate) {
  ChannelConfig cfg;
  cfg.loss_probability = 0.5;
  Network lossy{cfg, 7};
  auto& a = lossy.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = lossy.emplace_node<RecorderNode>(2, util::Vec2{10, 0}, 150.0);
  for (int i = 0; i < 1000; ++i) lossy.channel().unicast(a, make_msg(1, 2));
  lossy.run();
  EXPECT_GT(b.deliveries.size(), 400u);
  EXPECT_LT(b.deliveries.size(), 600u);
}

class Jammer final : public RadioObserver {
 public:
  explicit Jammer(util::Vec2 pos, bool suppress)
      : pos_(pos), suppress_(suppress) {}
  bool on_overhear(const Message&, const TxContext&) override {
    ++heard;
    return suppress_;
  }
  util::Vec2 observer_position() const override { return pos_; }
  int heard = 0;

 private:
  util::Vec2 pos_;
  bool suppress_;
};

TEST_F(ChannelTest, EavesdropperHearsWithoutSuppressing) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  Jammer ears({50, 0}, /*suppress=*/false);
  net.channel().add_observer(&ears);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  EXPECT_EQ(ears.heard, 1);
  EXPECT_EQ(b.deliveries.size(), 1u);
}

TEST_F(ChannelTest, JammerSuppressesDelivery) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  Jammer jam({50, 0}, /*suppress=*/true);
  net.channel().add_observer(&jam);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_EQ(net.channel().stats().suppressed, 1u);
}

TEST_F(ChannelTest, ObserverOutOfRangeHearsNothing) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  Jammer far({1000, 1000}, /*suppress=*/true);
  net.channel().add_observer(&far);
  net.channel().unicast(a, make_msg(1, 2));
  net.run();
  EXPECT_EQ(far.heard, 0);
}

TEST_F(ChannelTest, AliasRoutesToOwner) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  net.add_alias(5000, b);
  net.channel().unicast(a, make_msg(1, 5000));
  net.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].msg.dst, 5000u);
}

TEST_F(ChannelTest, AliasCollisionRejected) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  EXPECT_THROW(net.add_alias(1, a), std::invalid_argument);
}

TEST_F(ChannelTest, ConnectedCombinesDirectAndWormhole) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{100, 100}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{800, 700}, 150.0);
  auto& c = net.emplace_node<RecorderNode>(3, util::Vec2{150, 100}, 150.0);
  EXPECT_FALSE(net.channel().connected(a, b));
  EXPECT_TRUE(net.channel().connected(a, c));
  WormholeLink link;
  link.mouth_a = {100, 100};
  link.mouth_b = {800, 700};
  link.exit_range_ft = 150.0;
  net.channel().add_wormhole(link);
  EXPECT_TRUE(net.channel().connected(a, b));
}

TEST_F(ChannelTest, PacketAirtimeScalesWithSize) {
  EXPECT_GT(net.channel().packet_airtime_ns(100),
            net.channel().packet_airtime_ns(10));
  EXPECT_DOUBLE_EQ(net.channel().packet_airtime_cycles(0),
                   16.0 * 8.0 * kCyclesPerBit);
}

TEST_F(ChannelTest, PerNodeRadioAccounting) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
  net.channel().unicast(a, make_msg(1, 2));
  net.channel().unicast(a, make_msg(1, 2));
  net.channel().unicast(b, make_msg(2, 1));
  net.run();

  const auto ra = net.channel().node_radio(1);
  const auto rb = net.channel().node_radio(2);
  EXPECT_EQ(ra.packets_sent, 2u);
  EXPECT_EQ(ra.packets_received, 1u);
  EXPECT_EQ(rb.packets_sent, 1u);
  EXPECT_EQ(rb.packets_received, 2u);
  // 3-byte payload + 16 bytes framing per packet.
  EXPECT_EQ(ra.bytes_sent, 2u * 19u);
  EXPECT_EQ(ra.bytes_received, 19u);
  EXPECT_GT(ra.energy_uj(), rb.energy_uj());  // tx costs more than rx
  // Unknown node: zeros.
  EXPECT_EQ(net.channel().node_radio(99).packets_sent, 0u);
}

TEST_F(ChannelTest, InjectRequiresValidRange) {
  TxContext ctx;
  ctx.radiating_position = {0, 0};
  ctx.radiating_range = 0.0;
  EXPECT_THROW(net.channel().inject(ctx, make_msg(1, 2)),
               std::invalid_argument);
}

TEST_F(ChannelTest, DuplicateNodeIdRejected) {
  net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  EXPECT_THROW(net.emplace_node<RecorderNode>(1, util::Vec2{1, 1}, 150.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sld::sim
