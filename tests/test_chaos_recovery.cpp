// System-level crash recovery: rebooting nodes lose their volatile state
// but the trial still completes and accounts for them; a base-station
// outage backed by the WAL plus ARQ retries converges to the same revoked
// set as an uninterrupted run; failover runs surface their recovery
// latency in the instrument registry.
#include <gtest/gtest.h>

#include <string>

#include "core/secure_localization.hpp"

namespace sld::core {
namespace {

SystemConfig small_config() {
  SystemConfig c;
  c.deployment.total_nodes = 300;
  c.deployment.beacon_count = 30;
  c.deployment.malicious_beacon_count = 3;
  c.deployment.field = util::Rect::square(550.0);
  c.rtt_calibration_samples = 2000;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(1.0);
  c.paper_wormhole = false;
  c.seed = 11;
  return c;
}

sim::ArqConfig deterministic_retries(std::size_t max_retries = 6) {
  sim::ArqConfig arq;
  arq.enabled = true;
  arq.initial_timeout_ns = 250 * sim::kMillisecond;
  arq.max_retries = max_retries;
  arq.jitter_fraction = 0.0;  // draws nothing: retry times are scripted
  return arq;
}

TEST(ChaosRecovery, CrashedSensorIsUnlocalizedAndAccounted) {
  SystemConfig c = small_config();
  SecureLocalizationSystem probe(c);
  const auto* victim = probe.deployment().sensors().front();
  ASSERT_NE(victim, nullptr);

  SystemConfig crashed = c;
  crashed.faults.crashes.push_back(
      sim::CrashWindow{victim->id, 0, 3600 * sim::kSecond});
  SecureLocalizationSystem sys(crashed);
  const auto s = sys.run();
  EXPECT_GE(s.sensors_unlocalized, 1u);
  EXPECT_EQ(s.sensors_localized + s.sensors_unlocalized, s.sensors);
  EXPECT_EQ(s.benign_revoked, 0u);
}

TEST(ChaosRecovery, RebootedSensorRecoversAndLocalizes) {
  // A sensor that crashes before its query phase and reboots just after
  // the phase begins loses its scheduled queries (epoch-fenced timers) but
  // reschedules them on reboot: it still localizes, and the network-wide
  // unlocalized count matches the crash-free baseline.
  SystemConfig c = small_config();
  SecureLocalizationSystem baseline(c);
  const auto s_base = baseline.run();
  // Pick a victim that localizes in the baseline (some sensors simply lack
  // coverage and never localize, crash or not).
  sim::NodeId victim = 0;
  for (const auto* spec : baseline.deployment().sensors()) {
    const auto* node =
        dynamic_cast<const SensorNode*>(baseline.network().node(spec->id));
    ASSERT_NE(node, nullptr);
    if (node->result().has_value()) {
      victim = spec->id;
      break;
    }
  }
  ASSERT_NE(victim, 0u);

  SystemConfig crashed = c;
  crashed.faults.crashes.push_back(
      sim::CrashWindow{victim, 30 * sim::kSecond,
                       c.sensor_phase_start + 200 * sim::kMillisecond});
  SecureLocalizationSystem sys(crashed);
  const auto s = sys.run();
  const auto* rebooted =
      dynamic_cast<const SensorNode*>(sys.network().node(victim));
  ASSERT_NE(rebooted, nullptr);
  EXPECT_TRUE(rebooted->result().has_value());
  EXPECT_EQ(s.sensors_unlocalized, s_base.sensors_unlocalized);
}

TEST(ChaosRecovery, CrashedReporterLosesInFlightAlerts) {
  // Crash every benign beacon mid-probe-phase: alerts whose ARQ state
  // lived in the crashed reporters die with them and are accounted.
  SystemConfig c = small_config();
  SecureLocalizationSystem probe(c);
  SystemConfig crashed = c;
  for (const auto* b : probe.deployment().benign_beacons()) {
    crashed.faults.crashes.push_back(sim::CrashWindow{
        b->id, 200 * sim::kMillisecond, 40 * sim::kSecond});
  }
  crashed.arq = deterministic_retries(2);
  SecureLocalizationSystem sys(crashed);
  const auto s = sys.run();
  EXPECT_GT(s.raw.alerts_dropped_reporter_crash, 0u);
  EXPECT_EQ(s.benign_revoked, 0u);
}

TEST(ChaosRecovery, StationOutageWithWalConvergesToUninterruptedSet) {
  // Acceptance bound at system level: a 2 s primary outage covered by a
  // WAL (fsync = 1) and ARQ alert retries revokes exactly the same beacons
  // as the run with an immortal base station.
  SystemConfig base = small_config();
  base.arq = deterministic_retries();
  SecureLocalizationSystem uninterrupted(base);
  const auto s_base = uninterrupted.run();

  SystemConfig outage = base;
  outage.failover.durable.enabled = true;
  outage.failover.durable.fsync_every_records = 1;
  // The alert burst rides the probe phase (first ~0.5 s), so the outage
  // must cover t = 0 to actually be felt.
  outage.failover.primary_outages = {{0, 2 * sim::kSecond}};
  SecureLocalizationSystem sys(outage);
  const auto s = sys.run();

  EXPECT_EQ(s.cluster.restarts, 1u);
  EXPECT_GT(s.raw.alerts_station_unavailable, 0u);
  EXPECT_GT(s.durable.appends, 0u);
  EXPECT_EQ(s.durable.records_lost, 0u);
  EXPECT_EQ(s.malicious_revoked, s_base.malicious_revoked);
  EXPECT_EQ(s.benign_revoked, s_base.benign_revoked);
  for (const auto& [id, truth] : uninterrupted.context().truth) {
    EXPECT_EQ(sys.context().bs().is_revoked(id),
              uninterrupted.context().bs().is_revoked(id))
        << "beacon " << id;
  }
}

TEST(ChaosRecovery, StandbyTakeoverKeepsDetectionAlive) {
  // Kill the primary for the rest of the trial: the standby takes over
  // after its timeout, reconciles from the WAL, and the alert stream
  // (under retries) still reaches the same verdicts.
  SystemConfig base = small_config();
  base.arq = deterministic_retries();
  SecureLocalizationSystem uninterrupted(base);
  const auto s_base = uninterrupted.run();

  SystemConfig failover = base;
  failover.failover.standby_enabled = true;
  failover.failover.durable.enabled = true;
  failover.failover.primary_outages = {
      {1 * sim::kSecond, 3600 * sim::kSecond}};
  SecureLocalizationSystem sys(failover);
  const auto s = sys.run();

  EXPECT_EQ(s.cluster.failovers, 1u);
  EXPECT_EQ(s.malicious_revoked, s_base.malicious_revoked);
  EXPECT_EQ(s.benign_revoked, s_base.benign_revoked);
  // Failover-enabled runs register the recovery-latency histogram.
  EXPECT_NE(s.metrics_json.find("recovery.latency_ms"), std::string::npos);
  // Default runs do not (golden safety).
  EXPECT_EQ(s_base.metrics_json.find("recovery.latency_ms"),
            std::string::npos);
}

}  // namespace
}  // namespace sld::core
