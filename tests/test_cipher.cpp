#include "crypto/cipher.hpp"

#include <gtest/gtest.h>

namespace sld::crypto {
namespace {

Key128 test_key() {
  Key128 k{};
  for (std::uint8_t i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(i * 7);
  return k;
}

TEST(StreamCipher, RoundTrips) {
  const util::Bytes plaintext{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  const auto ct = stream_crypt(test_key(), 42, plaintext);
  EXPECT_NE(ct, plaintext);
  EXPECT_EQ(stream_crypt(test_key(), 42, ct), plaintext);
}

TEST(StreamCipher, NonceChangesKeystream) {
  const util::Bytes plaintext(32, 0);
  const auto a = stream_crypt(test_key(), 1, plaintext);
  const auto b = stream_crypt(test_key(), 2, plaintext);
  EXPECT_NE(a, b);
}

TEST(StreamCipher, KeyChangesKeystream) {
  const util::Bytes plaintext(32, 0);
  Key128 other = test_key();
  other[5] ^= 1;
  EXPECT_NE(stream_crypt(test_key(), 1, plaintext),
            stream_crypt(other, 1, plaintext));
}

TEST(StreamCipher, HandlesOddLengthsAndEmpty) {
  EXPECT_TRUE(stream_crypt(test_key(), 1, util::Bytes{}).empty());
  for (std::size_t len : {1u, 7u, 8u, 9u, 15u, 16u, 17u}) {
    util::Bytes pt(len, 0xab);
    const auto ct = stream_crypt(test_key(), 9, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(stream_crypt(test_key(), 9, ct), pt);
  }
}

TEST(StreamCipher, KeystreamBlocksDiffer) {
  // A constant plaintext must not produce a repeating 8-byte pattern.
  const util::Bytes plaintext(24, 0);
  const auto ct = stream_crypt(test_key(), 3, plaintext);
  const util::Bytes b0(ct.begin(), ct.begin() + 8);
  const util::Bytes b1(ct.begin() + 8, ct.begin() + 16);
  const util::Bytes b2(ct.begin() + 16, ct.begin() + 24);
  EXPECT_NE(b0, b1);
  EXPECT_NE(b1, b2);
}

TEST(SealedBox, RoundTrips) {
  const util::Bytes plaintext{10, 20, 30};
  const auto box = seal(test_key(), 7, 1, 2, plaintext);
  const auto opened = open(test_key(), 7, 1, 2, box);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(SealedBox, TamperDetected) {
  const util::Bytes plaintext{10, 20, 30};
  auto box = seal(test_key(), 7, 1, 2, plaintext);
  box.ciphertext[0] ^= 1;
  EXPECT_FALSE(open(test_key(), 7, 1, 2, box).has_value());
}

TEST(SealedBox, WrongContextRejected) {
  const util::Bytes plaintext{10, 20, 30};
  const auto box = seal(test_key(), 7, 1, 2, plaintext);
  EXPECT_FALSE(open(test_key(), 8, 1, 2, box).has_value());  // wrong nonce
  EXPECT_FALSE(open(test_key(), 7, 3, 2, box).has_value());  // wrong src
  EXPECT_FALSE(open(test_key(), 7, 1, 4, box).has_value());  // wrong dst
  Key128 other = test_key();
  other[0] ^= 1;
  EXPECT_FALSE(open(other, 7, 1, 2, box).has_value());  // wrong key
}

TEST(SealedBox, CiphertextHidesPlaintext) {
  const util::Bytes plaintext(64, 0x55);
  const auto box = seal(test_key(), 7, 1, 2, plaintext);
  EXPECT_NE(box.ciphertext, plaintext);
}

}  // namespace
}  // namespace sld::crypto
