#include "ranging/wormhole_detector.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sld::ranging {
namespace {

WormholeEvidence direct_evidence() {
  WormholeEvidence e;
  e.via_wormhole = false;
  e.receiver_position = {0, 0};
  e.claimed_sender_position = {100, 0};
  e.measured_distance_ft = 100.0;
  e.sender_range_ft = 150.0;
  return e;
}

WormholeEvidence tunneled_evidence() {
  WormholeEvidence e = direct_evidence();
  e.via_wormhole = true;
  e.claimed_sender_position = {800, 700};
  e.measured_distance_ft = 20.0;
  return e;
}

TEST(ProbabilisticDetector, NeverFlagsDirectTraffic) {
  ProbabilisticWormholeDetector det(0.9);
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i)
    EXPECT_FALSE(det.detects(direct_evidence(), rng));
}

TEST(ProbabilisticDetector, FlagsTunneledLinksAtRate) {
  // The p_d draw is per (receiver, sender) link: measure the rate across
  // many distinct links.
  ProbabilisticWormholeDetector det(0.9);
  util::Rng rng(2);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    WormholeEvidence e = tunneled_evidence();
    e.receiver_id = static_cast<std::uint32_t>(i);
    e.sender_id = static_cast<std::uint32_t>(i * 31 + 7);
    if (det.detects(e, rng)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.9, 0.01);
}

TEST(ProbabilisticDetector, VerdictIsStickyPerLink) {
  // Every packet on the same link gets the same verdict (a leash-based
  // detector is deterministic per path) — this is what keeps the false-
  // alert probability per benign pair at (1 - p_d) regardless of how many
  // detecting IDs probe across the tunnel.
  ProbabilisticWormholeDetector det(0.5);
  util::Rng rng(3);
  for (std::uint32_t link = 0; link < 200; ++link) {
    WormholeEvidence e = tunneled_evidence();
    e.receiver_id = link;
    e.sender_id = link + 1000;
    const bool first = det.detects(e, rng);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(det.detects(e, rng), first);
  }
}

TEST(ProbabilisticDetector, SeedChangesLinkVerdicts) {
  ProbabilisticWormholeDetector a(0.5, 1);
  ProbabilisticWormholeDetector b(0.5, 2);
  util::Rng rng(4);
  int differ = 0;
  for (std::uint32_t link = 0; link < 500; ++link) {
    WormholeEvidence e = tunneled_evidence();
    e.receiver_id = link;
    e.sender_id = link + 1;
    if (a.detects(e, rng) != b.detects(e, rng)) ++differ;
  }
  EXPECT_GT(differ, 100);
}

TEST(ProbabilisticDetector, RateZeroAndOne) {
  util::Rng rng(3);
  ProbabilisticWormholeDetector never(0.0);
  ProbabilisticWormholeDetector always(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.detects(tunneled_evidence(), rng));
    EXPECT_TRUE(always.detects(tunneled_evidence(), rng));
  }
}

TEST(ProbabilisticDetector, FakedIndicationAlwaysFires) {
  // A malicious beacon that *wants* to look like a wormhole succeeds even
  // against a weak detector — that is the attacker's p_w lever.
  ProbabilisticWormholeDetector det(0.1);
  util::Rng rng(4);
  WormholeEvidence e = direct_evidence();
  e.sender_faked_indication = true;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(det.detects(e, rng));
}

TEST(ProbabilisticDetector, RejectsBadRate) {
  EXPECT_THROW(ProbabilisticWormholeDetector(-0.1), std::invalid_argument);
  EXPECT_THROW(ProbabilisticWormholeDetector(1.1), std::invalid_argument);
}

TEST(GeographicLeash, FlagsImpossiblyFarClaims) {
  GeographicLeashDetector det(4.0);
  util::Rng rng(5);
  WormholeEvidence e = tunneled_evidence();  // claims (800,700) from (0,0)
  EXPECT_TRUE(det.detects(e, rng));
}

TEST(GeographicLeash, PassesPlausibleClaims) {
  GeographicLeashDetector det(4.0);
  util::Rng rng(6);
  EXPECT_FALSE(det.detects(direct_evidence(), rng));
}

TEST(GeographicLeash, MarginAbsorbsBoundaryError) {
  GeographicLeashDetector strict(0.0);
  GeographicLeashDetector lenient(10.0);
  util::Rng rng(7);
  WormholeEvidence e = direct_evidence();
  e.claimed_sender_position = {155, 0};  // 5 ft beyond range
  EXPECT_TRUE(strict.detects(e, rng));
  EXPECT_FALSE(lenient.detects(e, rng));
}

TEST(GeographicLeash, FakedIndicationAlwaysFires) {
  GeographicLeashDetector det(4.0);
  util::Rng rng(8);
  WormholeEvidence e = direct_evidence();
  e.sender_faked_indication = true;
  EXPECT_TRUE(det.detects(e, rng));
}

TEST(GeographicLeash, RejectsNegativeMargin) {
  EXPECT_THROW(GeographicLeashDetector(-1.0), std::invalid_argument);
}

TEST(TemporalLeash, FlagsExcessiveFlightTime) {
  // 150 ft range: legitimate flight < ~1.2 cycles (+ skew budget 10).
  TemporalLeashDetector det(10.0, 150.0);
  util::Rng rng(10);
  WormholeEvidence e = tunneled_evidence();
  e.has_timestamps = true;
  e.tx_timestamp_cycles = 1000.0;
  e.rx_timestamp_cycles = 1000.0 + det.max_legitimate_flight_cycles() + 1.0;
  EXPECT_TRUE(det.detects(e, rng));
}

TEST(TemporalLeash, PassesDirectFlight) {
  TemporalLeashDetector det(10.0, 150.0);
  util::Rng rng(11);
  WormholeEvidence e = direct_evidence();
  e.has_timestamps = true;
  e.tx_timestamp_cycles = 1000.0;
  // 100 ft flight ~ 0.75 cycles, well within range + skew.
  e.rx_timestamp_cycles = 1000.75;
  EXPECT_FALSE(det.detects(e, rng));
}

TEST(TemporalLeash, SkewBudgetAbsorbsClockError) {
  TemporalLeashDetector tight(0.0, 150.0);
  TemporalLeashDetector loose(50.0, 150.0);
  util::Rng rng(12);
  WormholeEvidence e = direct_evidence();
  e.has_timestamps = true;
  e.tx_timestamp_cycles = 1000.0;
  e.rx_timestamp_cycles = 1030.0;  // 30 cycles of apparent flight
  EXPECT_TRUE(tight.detects(e, rng));
  EXPECT_FALSE(loose.detects(e, rng));
}

TEST(TemporalLeash, NoTimestampsNeverFlags) {
  TemporalLeashDetector det(10.0, 150.0);
  util::Rng rng(13);
  EXPECT_FALSE(det.detects(tunneled_evidence(), rng));
}

TEST(TemporalLeash, FakedIndicationAlwaysFires) {
  TemporalLeashDetector det(10.0, 150.0);
  util::Rng rng(14);
  WormholeEvidence e = direct_evidence();
  e.sender_faked_indication = true;
  EXPECT_TRUE(det.detects(e, rng));
}

TEST(TemporalLeash, Validation) {
  EXPECT_THROW(TemporalLeashDetector(-1.0, 150.0), std::invalid_argument);
  EXPECT_THROW(TemporalLeashDetector(10.0, 0.0), std::invalid_argument);
}

TEST(GeographicLeash, IsDeterministic) {
  GeographicLeashDetector det(4.0);
  util::Rng rng(9);
  const auto e = tunneled_evidence();
  const bool first = det.detects(e, rng);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(det.detects(e, rng), first);
}

}  // namespace
}  // namespace sld::ranging
