// Whole-system metamorphic properties: bit-for-bit seed determinism
// (including traced vs untraced runs), directional monotonicity of
// detection in attack effectiveness and of revocation latency in loss
// rate, and fast-scale theory-vs-simulation agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "analysis/formulas.hpp"
#include "core/config.hpp"
#include "core/secure_localization.hpp"
#include "obs/trace.hpp"
#include "prop/generators.hpp"
#include "prop/prop.hpp"

namespace {

using namespace sld;

/// Down-scaled paper density: ~0.001 nodes/ft^2, 10% beacons.
core::SystemConfig small_config(std::uint64_t seed) {
  core::SystemConfig c;
  c.deployment.total_nodes = 200;
  c.deployment.beacon_count = 20;
  c.deployment.malicious_beacon_count = 3;
  c.deployment.field = util::Rect::square(450.0);
  c.rtt_calibration_samples = 500;
  c.seed = seed;
  return c;
}

/// Every TrialSummary field except metrics_json (whose wall-clock gauges
/// are deliberately not a function of the seed), rendered exactly.
std::string summary_digest(const core::TrialSummary& s) {
  std::ostringstream os;
  os.precision(17);
  os << s.benign_beacons << '|' << s.malicious_beacons << '|' << s.sensors
     << '|' << s.avg_requesters_per_malicious << '|' << s.malicious_revoked
     << '|' << s.benign_revoked << '|' << s.detection_rate << '|'
     << s.false_positive_rate << '|' << s.avg_affected_per_malicious << '|'
     << s.affected_sensor_references << '|' << s.sensors_localized << '|'
     << s.sensors_unlocalized << '|' << s.mean_localization_error_ft << '|'
     << s.max_localization_error_ft << '|'
     << s.mean_malicious_revocation_latency_ms << '|' << s.radio_energy_uj
     << '|' << s.rtt_x_max_cycles << '|' << s.base_station.alerts_received
     << '|' << s.base_station.alerts_accepted << '|'
     << s.base_station.revocations << '|' << s.channel.transmissions << '|'
     << s.channel.delivery_attempts << '|' << s.channel.deliveries << '|'
     << s.channel.losses << '|' << s.channel.dropped_by_fault << '|'
     << s.channel.duplicates << '|' << s.channel.corrupted << '|'
     << s.channel.crashed_drops;
  return os.str();
}

core::TrialSummary run_trial(const core::SystemConfig& config) {
  core::SecureLocalizationSystem system(config);
  return system.run();
}

TEST(SystemProperty, TrialIsAPureFunctionOfConfigAndSeed) {
  // Repeated runs of the same (config, seed) — including fault injection,
  // ARQ, and lossy alert transport — must agree on every summary field.
  struct Case {
    std::uint64_t seed;
    bool faults;
    bool arq;
  };
  prop::Gen<Case> gen;
  gen.generate = [](util::Rng& rng) {
    return Case{rng(), rng.bernoulli(0.5), rng.bernoulli(0.5)};
  };
  gen.show = [](const Case& c) {
    std::ostringstream os;
    os << "{seed=" << c.seed << " faults=" << c.faults << " arq=" << c.arq
       << "}";
    return os.str();
  };
  prop::Config cfg;
  cfg.iterations = 4;
  EXPECT_TRUE(prop::forall(
      "same (config, seed) => identical TrialSummary", gen,
      [](const Case& c) {
        core::SystemConfig config = small_config(c.seed);
        if (c.faults) {
          config.faults.loss_probability = 0.1;
          config.faults.duplicate_probability = 0.05;
          config.faults.corruption_probability = 0.05;
          config.alert_loss_probability = 0.1;
        }
        config.arq.enabled = c.arq;
        return summary_digest(run_trial(config)) ==
               summary_digest(run_trial(config));
      },
      cfg));
}

TEST(SystemProperty, TracingDoesNotPerturbTheTrial) {
  // Tracing draws no randomness, so a traced run must be bit-for-bit
  // identical to an untraced one.
  core::SystemConfig config = small_config(23);
  config.faults.loss_probability = 0.1;
  config.arq.enabled = true;
  const std::string untraced = summary_digest(run_trial(config));

  obs::MemorySink sink;
  config.trace_sink = &sink;
  const std::string traced = summary_digest(run_trial(config));
  EXPECT_EQ(untraced, traced);
  EXPECT_FALSE(sink.lines().empty());
}

TEST(SystemProperty, DetectionRateMonotoneInAttackEffectiveness) {
  // Directional check over fixed seeds: a fully-effective attacker is
  // detected at least as often (summed over seeds) as a quarter-effective
  // one — P_r = 1 - (1 - P)^m is increasing in P.
  double detected_low = 0.0, detected_high = 0.0;
  for (std::uint64_t seed : {3ULL, 7ULL, 13ULL}) {
    core::SystemConfig config = small_config(seed);
    config.paper_wormhole = false;
    config.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.25);
    detected_low += run_trial(config).detection_rate;
    config.strategy = attack::MaliciousStrategyConfig::with_effectiveness(1.0);
    detected_high += run_trial(config).detection_rate;
  }
  EXPECT_GE(detected_high, detected_low);
  EXPECT_GT(detected_high, 0.0);
}

TEST(SystemProperty, RevocationLatencyMonotoneInLossRate) {
  // With ARQ on, a lossy channel can only delay alert pipelines: summed
  // over seeds, mean revocation latency under 25% loss must be at least
  // the lossless latency.
  double lossless = 0.0, lossy = 0.0;
  std::size_t lossless_revoked = 0, lossy_revoked = 0;
  for (std::uint64_t seed : {5ULL, 11ULL, 17ULL}) {
    core::SystemConfig config = small_config(seed);
    config.paper_wormhole = false;
    config.strategy = attack::MaliciousStrategyConfig::with_effectiveness(1.0);
    config.arq.enabled = true;

    auto summary = run_trial(config);
    lossless += summary.mean_malicious_revocation_latency_ms;
    lossless_revoked += summary.malicious_revoked;

    config.faults.loss_probability = 0.25;
    config.alert_loss_probability = 0.25;
    summary = run_trial(config);
    lossy += summary.mean_malicious_revocation_latency_ms;
    lossy_revoked += summary.malicious_revoked;
  }
  ASSERT_GT(lossless_revoked, 0u);
  ASSERT_GT(lossy_revoked, 0u);
  EXPECT_GE(lossy, lossless);
}

TEST(SystemProperty, TheoryVsSimAgreesAtFastScale) {
  // The closed-form P_d (with N_c measured from the trials themselves)
  // must track the simulated detection rate within a loose fast-scale CI.
  const double P = 1.0;
  double sim_rate = 0.0, n_c = 0.0;
  const int kSeeds = 3;
  for (std::uint64_t seed : {29ULL, 31ULL, 37ULL}) {
    core::SystemConfig config = small_config(seed);
    config.paper_wormhole = false;
    config.strategy = attack::MaliciousStrategyConfig::with_effectiveness(P);
    const auto summary = run_trial(config);
    sim_rate += summary.detection_rate / kSeeds;
    n_c += summary.avg_requesters_per_malicious / kSeeds;
  }
  analysis::ModelParams params;
  params.total_nodes = 200;
  params.beacon_count = 20;
  params.malicious_count = 3;
  params.wormhole_count = 0;
  params.requesters_per_beacon =
      static_cast<std::size_t>(std::max(1.0, n_c));
  const double theory = analysis::revocation_probability(params, P);
  // 9 Bernoulli-ish samples (3 malicious beacons x 3 seeds): wide bound.
  EXPECT_NEAR(sim_rate, theory, 0.35);
}

}  // namespace
