#include "sim/event.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sld::sim {
namespace {

TEST(EventQueue, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&]() { order.push_back(3); });
  q.push(10, [&]() { order.push_back(1); });
  q.push(20, [&]() { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5, [&order, i]() { order.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(100, []() {});
  q.push(50, []() {});
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, PopReturnsEventWithMetadata) {
  EventQueue q;
  q.push(77, []() {});
  const Event ev = q.pop();
  EXPECT_EQ(ev.when, 77);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ThrowsOnEmptyAccess) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(1, []() {});
  q.push(2, []() {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&]() { order.push_back(1); });
  q.pop().action();
  q.push(5, [&]() { order.push_back(2); });
  q.push(15, [&]() { order.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace sld::sim
