// Tests of the runtime invariant checker (src/check/invariant.hpp): handler
// install/restore, the failure funnel, build-conditional macro behaviour,
// and a whole-trial smoke run that must not trip a single invariant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "core/config.hpp"
#include "core/secure_localization.hpp"

namespace {

using namespace sld;

// Recording handler: InvariantHandler is a plain function pointer, so the
// sink is a file-local global reset per test.
std::vector<check::InvariantViolation>* g_recorded = nullptr;

void recording_handler(const check::InvariantViolation& violation) {
  if (g_recorded != nullptr) g_recorded->push_back(violation);
}

class RecordViolations {
 public:
  RecordViolations() : scoped_(&recording_handler) { g_recorded = &violations_; }
  ~RecordViolations() { g_recorded = nullptr; }
  const std::vector<check::InvariantViolation>& violations() const {
    return violations_;
  }

 private:
  std::vector<check::InvariantViolation> violations_;
  check::ScopedInvariantHandler scoped_;
};

TEST(Invariants, FailureFunnelReachesInstalledHandler) {
  const std::uint64_t before = check::invariant_failure_count();
  {
    RecordViolations rec;
    check::invariant_failed("file.cpp", 42, "x == y", "x=1 y=2");
    ASSERT_EQ(rec.violations().size(), 1u);
    EXPECT_STREQ(rec.violations()[0].file, "file.cpp");
    EXPECT_EQ(rec.violations()[0].line, 42);
    EXPECT_STREQ(rec.violations()[0].condition, "x == y");
    EXPECT_EQ(rec.violations()[0].message, "x=1 y=2");
  }
  EXPECT_EQ(check::invariant_failure_count(), before + 1);
}

TEST(Invariants, ScopedHandlerRestoresPrevious) {
  auto* const original = check::set_invariant_handler(&recording_handler);
  {
    check::ScopedInvariantHandler inner(nullptr);  // nullptr => default
  }
  // After the scope, our handler must be back.
  EXPECT_EQ(check::set_invariant_handler(original), &recording_handler);
}

TEST(Invariants, MacroFiresExactlyWhenBuildEnablesIt) {
  RecordViolations rec;
  const int x = 3;
  SLD_INVARIANT(x == 4, "x=" << x);
  if (check::invariants_enabled()) {
    ASSERT_EQ(rec.violations().size(), 1u);
    EXPECT_EQ(rec.violations()[0].message, "x=3");
    EXPECT_NE(std::string(rec.violations()[0].condition).find("x == 4"),
              std::string::npos);
  } else {
    EXPECT_TRUE(rec.violations().empty());
  }
}

TEST(Invariants, DisabledMacroEvaluatesNothing) {
  // The condition is only evaluated in checking builds: x advances to 4
  // there (and 4 == 4 passes), and stays untouched in Release.
  RecordViolations rec;
  int x = 3;
  SLD_INVARIANT(++x == 4, "x=" << x);
  if (check::invariants_enabled())
    EXPECT_EQ(x, 4);
  else
    EXPECT_EQ(x, 3);
  EXPECT_TRUE(rec.violations().empty());
}

TEST(Invariants, PassingConditionNeverReports) {
  RecordViolations rec;
  const std::uint64_t before = check::invariant_failure_count();
  SLD_INVARIANT(1 + 1 == 2, "arithmetic broke");
  EXPECT_TRUE(rec.violations().empty());
  EXPECT_EQ(check::invariant_failure_count(), before);
}

TEST(Invariants, FullTrialSmokeRunTripsNoInvariant) {
  // A small but complete trial — probing, detection, revocation, faults,
  // ARQ — exercises every instrumented subsystem. Zero violations expected
  // in any build type (the macro just can't fire in Release).
  const std::uint64_t before = check::invariant_failure_count();
  core::SystemConfig config;
  config.deployment.total_nodes = 120;
  config.deployment.beacon_count = 24;
  config.deployment.malicious_beacon_count = 4;
  config.deployment.field = util::Rect::square(400.0);
  config.rtt_calibration_samples = 500;
  config.faults.loss_probability = 0.1;
  config.faults.duplicate_probability = 0.05;
  config.faults.corruption_probability = 0.05;
  config.arq.enabled = true;
  config.alert_loss_probability = 0.1;
  config.seed = 7;
  core::SecureLocalizationSystem system(config);
  const core::TrialSummary summary = system.run();
  EXPECT_GT(summary.benign_beacons, 0u);
  EXPECT_EQ(check::invariant_failure_count(), before);
}

TEST(Invariants, HighLossArqExhaustionTripsNoInvariant) {
  // Loss heavy enough that many probes/queries/alerts burn through every
  // retry. The retries-bounded invariants in the ARQ paths must hold even
  // when every retransmission budget is exhausted.
  const std::uint64_t before = check::invariant_failure_count();
  core::SystemConfig config;
  config.deployment.total_nodes = 80;
  config.deployment.beacon_count = 16;
  config.deployment.malicious_beacon_count = 3;
  config.deployment.field = util::Rect::square(350.0);
  config.rtt_calibration_samples = 500;
  config.faults.loss_probability = 0.5;
  config.arq.enabled = true;
  config.alert_loss_probability = 0.5;
  config.seed = 11;
  core::SecureLocalizationSystem system(config);
  const core::TrialSummary summary = system.run();
  EXPECT_GT(summary.channel.dropped_by_fault, 0u);
  EXPECT_EQ(check::invariant_failure_count(), before);
}

}  // namespace
