// Parameterized full-system property sweeps: invariants that must hold at
// every operating point of the (tau1, tau2, m, P, loss, N_w) space, run on
// a down-scaled (600-node) deployment for speed.
#include <gtest/gtest.h>

#include "analysis/formulas.hpp"
#include "core/experiment.hpp"

namespace sld::core {
namespace {

SystemConfig sweep_config(std::uint64_t seed) {
  SystemConfig c;
  c.deployment.total_nodes = 600;
  c.deployment.beacon_count = 60;
  c.deployment.malicious_beacon_count = 6;
  c.deployment.field = util::Rect::square(800.0);
  c.rtt_calibration_samples = 2000;
  c.seed = seed;
  return c;
}

void check_trial_invariants(const TrialSummary& s) {
  // Counter accounting.
  EXPECT_LE(s.raw.probe_replies, s.raw.probes_sent);
  EXPECT_LE(s.raw.sensor_replies, s.raw.sensor_requests);
  EXPECT_EQ(s.sensors, s.sensors_localized + s.sensors_unlocalized);
  EXPECT_EQ(s.raw.mac_failures, 0u);
  // Rates are probabilities.
  EXPECT_GE(s.detection_rate, 0.0);
  EXPECT_LE(s.detection_rate, 1.0);
  EXPECT_GE(s.false_positive_rate, 0.0);
  EXPECT_LE(s.false_positive_rate, 1.0);
  // Alert bookkeeping at the base station.
  EXPECT_EQ(s.base_station.alerts_received,
            s.base_station.alerts_accepted +
                s.base_station.alerts_ignored_quota +
                s.base_station.alerts_ignored_revoked);
  // Revocations the summary reports match the base station's.
  EXPECT_EQ(s.malicious_revoked + s.benign_revoked,
            s.base_station.revocations);
}

// --- sweep over attack effectiveness -----------------------------------

class EffectivenessSweep : public ::testing::TestWithParam<double> {};

TEST_P(EffectivenessSweep, InvariantsHoldAndFalsePositivesStayLow) {
  SystemConfig c = sweep_config(11 + static_cast<std::uint64_t>(
                                         GetParam() * 100));
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(GetParam());
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  check_trial_invariants(s);
  // Without collusion, benign beacons are essentially never revoked.
  EXPECT_LE(s.benign_revoked, 3u);
  // Dormant attackers are never detected; active ones eventually are.
  if (GetParam() == 0.0) EXPECT_EQ(s.malicious_revoked, 0u);
}

INSTANTIATE_TEST_SUITE_P(AttackLevels, EffectivenessSweep,
                         ::testing::Values(0.0, 0.05, 0.2, 0.4, 0.6, 0.8,
                                           1.0),
                         [](const auto& info) {
                           return "P" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// --- sweep over detecting IDs -------------------------------------------

class DetectingIdSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DetectingIdSweep, DetectionRateWithinTheoryBand) {
  ExperimentConfig e{sweep_config(23), 3};
  e.base.detecting_ids = GetParam();
  e.base.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.25);
  e.base.paper_wormhole = false;
  const auto agg = run_experiment(e);
  const auto params =
      model_params_for(e.base, agg.requesters_per_malicious.mean());
  const double theory = analysis::revocation_probability(params, 0.25);
  EXPECT_NEAR(agg.detection_rate.mean(), theory, 0.3)
      << "m = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(DetectingIds, DetectingIdSweep,
                         ::testing::Values(1, 2, 4, 8, 16),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param);
                         });

// --- sweep over revocation thresholds ------------------------------------

struct ThresholdCase {
  std::uint32_t tau1;
  std::uint32_t tau2;
};

class ThresholdSweep : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweep, CollusionDamageBoundedByNf) {
  SystemConfig c = sweep_config(31 + GetParam().tau1 + GetParam().tau2);
  c.revocation.report_quota = GetParam().tau1;
  c.revocation.alert_threshold = GetParam().tau2;
  c.collusion = true;
  c.paper_wormhole = false;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.0);
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  check_trial_invariants(s);
  // The paper's worst-case bound N_f = N_a (tau1+1) / (tau2+1), with no
  // wormhole term here.
  const double nf = 6.0 * (GetParam().tau1 + 1) / (GetParam().tau2 + 1);
  EXPECT_LE(static_cast<double>(s.benign_revoked), nf + 1e-9);
  // And the bound is essentially achieved (colluders play optimally).
  EXPECT_GE(static_cast<double>(s.benign_revoked), nf * 0.6 - 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ThresholdSweep,
    ::testing::Values(ThresholdCase{2, 2}, ThresholdCase{5, 2},
                      ThresholdCase{10, 2}, ThresholdCase{10, 3},
                      ThresholdCase{10, 4}, ThresholdCase{20, 4}),
    [](const auto& info) {
      return "tau1_" + std::to_string(info.param.tau1) + "_tau2_" +
             std::to_string(info.param.tau2);
    });

// --- sweep over radio loss ------------------------------------------------

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, SystemSurvivesLossyRadios) {
  SystemConfig c = sweep_config(41 + static_cast<std::uint64_t>(
                                         GetParam() * 100));
  c.channel_loss_probability = GetParam();
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.5);
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  check_trial_invariants(s);
  if (GetParam() > 0.0) EXPECT_GT(s.channel.losses, 0u);
  // Even at 40% loss some sensors still gather three references.
  if (GetParam() <= 0.4) EXPECT_GT(s.sensors_localized, 0u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4),
                         [](const auto& info) {
                           return "loss" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

// --- sweep over wormhole pressure ----------------------------------------

class WormholeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WormholeSweep, FalseAlertsScaleWithTunnels) {
  SystemConfig c = sweep_config(53 + GetParam());
  c.deployment.malicious_beacon_count = 0;  // isolate the wormhole effect
  c.paper_wormhole = false;
  c.extra_random_wormholes = GetParam();
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  check_trial_invariants(s);
  if (GetParam() == 0) {
    EXPECT_EQ(s.raw.alerts_submitted, 0u);
    EXPECT_EQ(s.benign_revoked, 0u);
  }
  // With p_d = 0.9 and tau2 = 2, even several tunnels revoke at most a
  // handful of benign beacons.
  EXPECT_LE(s.false_positive_rate, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Wormholes, WormholeSweep,
                         ::testing::Values(0, 1, 3, 6),
                         [](const auto& info) {
                           return "Nw" + std::to_string(info.param);
                         });

// --- lifecycle detection parity -------------------------------------------

// The evidence-lifecycle scheme (quarantine + corroboration) must not cost
// detection: in the fig12/fig14 scenario (the paper's §4 scale — this is
// the default SystemConfig, where cells hold several beacons and the
// coverage guard rarely has to defer a quarantine) the detection rate with
// the lifecycle on (quarantined counts as detected) stays within 2% of the
// permanent-revocation baseline at the same seeds.

class LifecycleParitySweep : public ::testing::TestWithParam<double> {};

TEST_P(LifecycleParitySweep, DetectionWithinTwoPercentOfPermanent) {
  ExperimentConfig e;
  e.trials = 3;
  e.base.seed = 67 + static_cast<std::uint64_t>(GetParam() * 100);
  e.base.strategy =
      attack::MaliciousStrategyConfig::with_effectiveness(GetParam());

  const auto base = run_experiment(e);

  e.base.revocation.lifecycle.enabled = true;
  e.base.fallback.enabled = true;
  const auto lifecycle = run_experiment(e);

  EXPECT_NEAR(lifecycle.detection_rate.mean(), base.detection_rate.mean(),
              0.02)
      << "P = " << GetParam();
  // The lifecycle never permanently revokes more benign beacons than the
  // permanent scheme does (corroboration only removes revocations).
  EXPECT_LE(lifecycle.false_positive_rate.mean(),
            base.false_positive_rate.mean() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ParityLevels, LifecycleParitySweep,
                         ::testing::Values(0.2, 0.4, 0.8),
                         [](const auto& info) {
                           return "P" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace sld::core
