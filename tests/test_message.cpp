#include "sim/message.hpp"

#include <gtest/gtest.h>

namespace sld::sim {
namespace {

TEST(BeaconRequestPayload, RoundTrip) {
  BeaconRequestPayload p;
  p.nonce = 0x1122334455667788ULL;
  const auto parsed = BeaconRequestPayload::parse(p.serialize());
  EXPECT_EQ(parsed.nonce, p.nonce);
}

TEST(BeaconReplyPayload, RoundTripAllFields) {
  BeaconReplyPayload p;
  p.nonce = 42;
  p.claimed_position = {123.5, -9.25};
  p.processing_bias_cycles = 1234.5;
  p.range_manipulation_ft = -60.0;
  p.fake_wormhole_indication = true;
  const auto parsed = BeaconReplyPayload::parse(p.serialize());
  EXPECT_EQ(parsed.nonce, 42u);
  EXPECT_EQ(parsed.claimed_position, p.claimed_position);
  EXPECT_DOUBLE_EQ(parsed.processing_bias_cycles, 1234.5);
  EXPECT_DOUBLE_EQ(parsed.range_manipulation_ft, -60.0);
  EXPECT_TRUE(parsed.fake_wormhole_indication);
}

TEST(BeaconReplyPayload, HonestDefaults) {
  BeaconReplyPayload p;
  const auto parsed = BeaconReplyPayload::parse(p.serialize());
  EXPECT_EQ(parsed.processing_bias_cycles, 0.0);
  EXPECT_EQ(parsed.range_manipulation_ft, 0.0);
  EXPECT_FALSE(parsed.fake_wormhole_indication);
}

TEST(AlertPayload, RoundTrip) {
  AlertPayload p{17, 93};
  const auto parsed = AlertPayload::parse(p.serialize());
  EXPECT_EQ(parsed.reporter, 17u);
  EXPECT_EQ(parsed.target, 93u);
}

TEST(RevocationPayload, RoundTrip) {
  RevocationPayload p{55};
  EXPECT_EQ(RevocationPayload::parse(p.serialize()).revoked, 55u);
}

TEST(Payloads, TruncatedBytesThrow) {
  BeaconReplyPayload p;
  auto bytes = p.serialize();
  bytes.pop_back();
  EXPECT_THROW(BeaconReplyPayload::parse(bytes), util::TruncatedBuffer);
  EXPECT_THROW(AlertPayload::parse(util::Bytes{1, 2}), util::TruncatedBuffer);
}

TEST(TxContext, DefaultsAreHonest) {
  TxContext ctx;
  EXPECT_EQ(ctx.extra_delay_cycles, 0.0);
  EXPECT_FALSE(ctx.via_wormhole);
  EXPECT_FALSE(ctx.is_replay);
}

}  // namespace
}  // namespace sld::sim
