#include "attack/active_wormhole.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace sld::attack {
namespace {

class RecorderNode final : public sim::Node {
 public:
  using Node::Node;
  void on_message(const sim::Delivery& d) override { inbox.push_back(d); }
  std::vector<sim::Delivery> inbox;
};

sim::Message msg(sim::NodeId src, sim::NodeId dst) {
  sim::Message m;
  m.src = src;
  m.dst = dst;
  m.type = sim::MsgType::kAppData;
  m.payload = {1, 2, 3};
  return m;
}

ActiveWormholeConfig tunnel_config() {
  ActiveWormholeConfig c;
  c.end_a = {100, 100};
  c.end_b = {800, 700};
  c.range_ft = 150.0;
  return c;
}

class ActiveWormholeTest : public ::testing::Test {
 protected:
  sim::Network net{sim::ChannelConfig{}, 9};
};

TEST_F(ActiveWormholeTest, TunnelsAcrossTheField) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{120, 100}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{820, 700}, 150.0);
  ActiveWormhole tunnel(tunnel_config(), net.channel(), net.scheduler());

  net.channel().unicast(a, msg(1, 2));
  net.run();

  ASSERT_EQ(b.inbox.size(), 1u);
  EXPECT_TRUE(b.inbox[0].ctx.via_wormhole);
  EXPECT_TRUE(b.inbox[0].ctx.is_replay);
  EXPECT_EQ(tunnel.packets_tunneled(), 1u);
  // The tunnelled copy radiates from the far mouth.
  EXPECT_EQ(b.inbox[0].ctx.radiating_position, (util::Vec2{800, 700}));
}

TEST_F(ActiveWormholeTest, StoreAndForwardCostsOnePacketAirTime) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{120, 100}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{820, 700}, 150.0);
  ActiveWormhole tunnel(tunnel_config(), net.channel(), net.scheduler());
  (void)tunnel;

  net.channel().unicast(a, msg(1, 2));
  net.run();

  ASSERT_EQ(b.inbox.size(), 1u);
  const double min_delay =
      net.channel().packet_airtime_cycles(b.inbox[0].msg.payload.size());
  // Unlike the idealized zero-latency tunnel, this copy is late enough
  // for the RTT filter (one packet >> the 1728-cycle envelope).
  EXPECT_GE(b.inbox[0].ctx.extra_delay_cycles, min_delay);
  EXPECT_GT(b.inbox[0].ctx.extra_delay_cycles, 4.5 * 384.0);
}

TEST_F(ActiveWormholeTest, DoesNotTunnelItsOwnForwards) {
  // Both ends hear the re-transmission of the other end; without the
  // is_replay guard the packet would ping-pong forever.
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{120, 100}, 150.0);
  net.emplace_node<RecorderNode>(2, util::Vec2{820, 700}, 150.0);
  ActiveWormhole tunnel(tunnel_config(), net.channel(), net.scheduler());

  net.channel().unicast(a, msg(1, 2));
  net.run();
  EXPECT_EQ(tunnel.packets_tunneled(), 1u);
}

TEST_F(ActiveWormholeTest, OutOfEarshotPacketsUntouched) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{400, 400}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{450, 400}, 150.0);
  ActiveWormhole tunnel(tunnel_config(), net.channel(), net.scheduler());

  net.channel().unicast(a, msg(1, 2));
  net.run();
  EXPECT_EQ(tunnel.packets_tunneled(), 0u);
  ASSERT_EQ(b.inbox.size(), 1u);
  EXPECT_FALSE(b.inbox[0].ctx.via_wormhole);
}

TEST_F(ActiveWormholeTest, ProcessingLatencyAccumulates) {
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{120, 100}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{820, 700}, 150.0);
  ActiveWormholeConfig cfg = tunnel_config();
  cfg.processing_cycles = 50000.0;
  ActiveWormhole tunnel(cfg, net.channel(), net.scheduler());
  (void)tunnel;

  net.channel().unicast(a, msg(1, 2));
  net.run();
  ASSERT_EQ(b.inbox.size(), 1u);
  EXPECT_GE(b.inbox[0].ctx.extra_delay_cycles, 50000.0);
}

}  // namespace
}  // namespace sld::attack
