#include "localization/centroid.hpp"

#include <gtest/gtest.h>

namespace sld::localization {
namespace {

TEST(Centroid, AverageOfBeaconPositions) {
  LocationReferences refs{
      {1, {0, 0}, 10}, {2, {100, 0}, 10}, {3, {50, 90}, 10}};
  const auto est = centroid_estimate(refs);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->x, 50.0, 1e-12);
  EXPECT_NEAR(est->y, 30.0, 1e-12);
}

TEST(Centroid, EmptyGivesNothing) {
  EXPECT_FALSE(centroid_estimate({}).has_value());
  EXPECT_FALSE(weighted_centroid_estimate({}).has_value());
}

TEST(Centroid, SingleBeaconIsItsPosition) {
  LocationReferences refs{{1, {42, 17}, 5}};
  const auto est = centroid_estimate(refs);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(*est, (util::Vec2{42, 17}));
}

TEST(Centroid, IgnoresDistances) {
  LocationReferences a{{1, {0, 0}, 1}, {2, {10, 0}, 1}};
  LocationReferences b{{1, {0, 0}, 99}, {2, {10, 0}, 99}};
  EXPECT_EQ(*centroid_estimate(a), *centroid_estimate(b));
}

TEST(WeightedCentroid, CloserBeaconsDominate) {
  LocationReferences refs{{1, {0, 0}, 1.0}, {2, {100, 0}, 99.0}};
  const auto est = weighted_centroid_estimate(refs);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->x, 20.0);  // pulled strongly toward the near beacon
}

TEST(WeightedCentroid, EqualDistancesReduceToCentroid) {
  LocationReferences refs{{1, {0, 0}, 10}, {2, {100, 0}, 10}};
  const auto w = weighted_centroid_estimate(refs);
  const auto c = centroid_estimate(refs);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(w->x, c->x, 1e-9);
}

TEST(WeightedCentroid, RejectsBadEpsilon) {
  LocationReferences refs{{1, {0, 0}, 10}};
  EXPECT_THROW(weighted_centroid_estimate(refs, 0.0), std::invalid_argument);
}

TEST(Centroid, MaliciousBeaconShiftsCentroid) {
  // Why the paper's revocation matters even for range-free schemes: a
  // single lying beacon drags the centroid.
  LocationReferences honest{
      {1, {400, 400}, 10}, {2, {600, 400}, 10}, {3, {500, 600}, 10}};
  auto attacked = honest;
  attacked.push_back({4, {5000, 5000}, 10});
  const auto before = *centroid_estimate(honest);
  const auto after = *centroid_estimate(attacked);
  EXPECT_GT(util::distance(before, after), 1000.0);
}

}  // namespace
}  // namespace sld::localization
