#include "util/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace sld::util {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {3.0, 4.0};
  EXPECT_EQ(v, Vec2(0.0, 0.0));
}

TEST(Vec2, NormOfPythagoreanTriple) {
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm_squared(), 25.0);
}

TEST(Vec2, DistanceIsSymmetric) {
  const Vec2 a{10.0, 20.0};
  const Vec2 b{-5.0, 7.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

TEST(Vec2, DistanceSquaredMatchesDistance) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(distance_squared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

TEST(Vec2, TriangleInequality) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{13.0, -7.0};
  const Vec2 c{-2.0, 9.5};
  EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c) + 1e-12);
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(Rect, SquareField) {
  const Rect field = Rect::square(1000.0);
  EXPECT_EQ(field.width(), 1000.0);
  EXPECT_EQ(field.height(), 1000.0);
  EXPECT_EQ(field.area(), 1e6);
}

TEST(Rect, Contains) {
  const Rect r{0.0, 0.0, 10.0, 20.0};
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({10.0, 20.0}));
  EXPECT_TRUE(r.contains({5.0, 5.0}));
  EXPECT_FALSE(r.contains({-0.1, 5.0}));
  EXPECT_FALSE(r.contains({5.0, 20.1}));
}

TEST(Rect, ClampProjectsOutsidePoints) {
  const Rect r{0.0, 0.0, 10.0, 10.0};
  EXPECT_EQ(r.clamp({-5.0, 5.0}), Vec2(0.0, 5.0));
  EXPECT_EQ(r.clamp({15.0, 25.0}), Vec2(10.0, 10.0));
  EXPECT_EQ(r.clamp({3.0, 4.0}), Vec2(3.0, 4.0));
}

TEST(Rect, StreamOutput) {
  std::ostringstream os;
  os << Rect{0.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(os.str(), "[0, 2] x [1, 3]");
}

}  // namespace
}  // namespace sld::util
