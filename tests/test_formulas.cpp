#include "analysis/formulas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sld::analysis {
namespace {

ModelParams paper_params() { return ModelParams{}; }

TEST(ModelParams, PaperDefaultsValidate) {
  const ModelParams p = paper_params();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.benign_beacons(), 90u);
  EXPECT_EQ(p.nonbeacon_nodes(), 900u);
}

TEST(ModelParams, ValidationCatchesInconsistency) {
  ModelParams p = paper_params();
  p.beacon_count = p.total_nodes + 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = paper_params();
  p.malicious_count = p.beacon_count + 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = paper_params();
  p.wormhole_detection_rate = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = paper_params();
  p.detecting_ids = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(AttackEffectiveness, Formula) {
  EXPECT_DOUBLE_EQ(attack_effectiveness(0.0, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(attack_effectiveness(1.0, 0.0, 0.0), 0.0);
  EXPECT_NEAR(attack_effectiveness(0.2, 0.3, 0.5), 0.8 * 0.7 * 0.5, 1e-12);
  EXPECT_THROW(attack_effectiveness(-0.1, 0, 0), std::invalid_argument);
}

TEST(DetectionProbability, MatchesClosedForm) {
  // P_r = 1 - (1 - P)^m, paper Figure 5.
  EXPECT_DOUBLE_EQ(detection_probability(0.0, 8), 0.0);
  EXPECT_DOUBLE_EQ(detection_probability(1.0, 1), 1.0);
  EXPECT_NEAR(detection_probability(0.3, 1), 0.3, 1e-12);
  EXPECT_NEAR(detection_probability(0.3, 2), 1 - 0.49, 1e-12);
  EXPECT_NEAR(detection_probability(0.2, 8), 1 - std::pow(0.8, 8), 1e-12);
}

TEST(DetectionProbability, MonotoneInPAndM) {
  double prev = -1.0;
  for (double P = 0.0; P <= 1.0; P += 0.05) {
    const double pr = detection_probability(P, 4);
    EXPECT_GE(pr, prev);
    prev = pr;
  }
  for (std::size_t m = 1; m < 16; ++m)
    EXPECT_LE(detection_probability(0.3, m),
              detection_probability(0.3, m + 1));
}

TEST(DetectionProbability, Figure5Shape) {
  // Figure 5: more detecting IDs -> higher P_r at every P; at P = 0.5,
  // m = 8 is nearly certain detection.
  EXPECT_GT(detection_probability(0.5, 8), 0.99);
  EXPECT_LT(detection_probability(0.1, 1), 0.11);
}

TEST(AlertProbability, ScalesWithBenignBeaconFraction) {
  const ModelParams p = paper_params();
  const double pa = alert_probability(p, 0.2);
  // (N_b - N_a)/N = 0.09, P_r(0.2, 8) ~ 0.832.
  EXPECT_NEAR(pa, 0.09 * detection_probability(0.2, 8), 1e-12);
}

TEST(AlertCountPmf, SumsToOne) {
  const ModelParams p = paper_params();
  double sum = 0.0;
  for (std::size_t i = 0; i <= p.requesters_per_beacon; ++i)
    sum += alert_count_pmf(p, 0.3, i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(RevocationProbability, ZeroAttackNeverRevoked) {
  EXPECT_DOUBLE_EQ(revocation_probability(paper_params(), 0.0), 0.0);
}

TEST(RevocationProbability, IncreasesWithP) {
  const ModelParams p = paper_params();
  double prev = -1.0;
  for (double P = 0.0; P <= 1.0; P += 0.1) {
    const double pd = revocation_probability(p, P);
    EXPECT_GE(pd, prev - 1e-12);
    prev = pd;
  }
}

TEST(RevocationProbability, DecreasesWithThreshold) {
  // Figure 6(a): larger tau2 needs more alerts -> lower P_d.
  ModelParams p = paper_params();
  double prev = 1.0;
  for (std::uint32_t tau2 = 2; tau2 <= 5; ++tau2) {
    p.alert_threshold = tau2;
    const double pd = revocation_probability(p, 0.4);
    EXPECT_LE(pd, prev + 1e-12);
    prev = pd;
  }
}

TEST(RevocationProbability, IncreasesWithDetectingIds) {
  // Figure 6(b).
  ModelParams p = paper_params();
  p.alert_threshold = 4;
  double prev = 0.0;
  for (const std::size_t m : {1u, 2u, 4u, 8u}) {
    p.detecting_ids = m;
    const double pd = revocation_probability(p, 0.5);
    EXPECT_GE(pd, prev - 1e-12);
    prev = pd;
  }
}

TEST(RevocationProbability, IncreasesWithRequesters) {
  // Figure 7: more requesters -> more alerts -> higher P_d.
  ModelParams p = paper_params();
  p.alert_threshold = 2;
  double prev = 0.0;
  for (std::size_t nc = 5; nc <= 100; nc += 5) {
    p.requesters_per_beacon = nc;
    const double pd = revocation_probability(p, 0.2);
    EXPECT_GE(pd, prev - 1e-9);
    prev = pd;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(RevocationProbability, MonteCarloAgreement) {
  // Simulate the §3.2 model directly: N_c requesters, each a benign beacon
  // w.p. (N_b-N_a)/N that alerts w.p. P_r; revoke if > tau2 alerts.
  const ModelParams p = paper_params();
  const double P = 0.3;
  const double pa = alert_probability(p, P);
  util::Rng rng(1);
  int revoked = 0;
  constexpr int kTrials = 200000;
  for (int t = 0; t < kTrials; ++t) {
    int alerts = 0;
    for (std::size_t r = 0; r < p.requesters_per_beacon; ++r)
      if (rng.bernoulli(pa)) ++alerts;
    if (alerts > static_cast<int>(p.alert_threshold)) ++revoked;
  }
  EXPECT_NEAR(static_cast<double>(revoked) / kTrials,
              revocation_probability(p, P), 0.005);
}

TEST(AffectedNodes, ZeroAtExtremes) {
  const ModelParams p = paper_params();
  EXPECT_DOUBLE_EQ(affected_nonbeacon_nodes(p, 0.0), 0.0);
  // At P = 1 the beacon is revoked almost surely with N_c = 100, m = 8,
  // so barely any requester keeps the malicious signal.
  EXPECT_LT(affected_nonbeacon_nodes(p, 1.0), 1.0);
}

TEST(AffectedNodes, InteriorMaximum) {
  // Figure 8's hump: N' peaks at an interior P.
  const ModelParams p = paper_params();
  double argmax = 0.0;
  const double peak = max_affected_nonbeacon_nodes(p, &argmax);
  EXPECT_GT(argmax, 0.0);
  EXPECT_LT(argmax, 1.0);
  EXPECT_GT(peak, affected_nonbeacon_nodes(p, 0.001));
  EXPECT_GT(peak, affected_nonbeacon_nodes(p, 0.999));
  EXPECT_GE(peak, affected_nonbeacon_nodes(p, argmax) - 1e-12);
}

TEST(AffectedNodes, LargerTauTwoAllowsMoreDamage) {
  // Figure 8: N' grows with tau2 (harder to revoke).
  ModelParams p = paper_params();
  p.alert_threshold = 2;
  const double small = max_affected_nonbeacon_nodes(p);
  p.alert_threshold = 4;
  const double large = max_affected_nonbeacon_nodes(p);
  EXPECT_GT(large, small);
}

TEST(AffectedNodes, MoreDetectingIdsReducesDamage) {
  ModelParams p = paper_params();
  p.detecting_ids = 8;
  const double strong = max_affected_nonbeacon_nodes(p);
  p.detecting_ids = 4;
  const double weak = max_affected_nonbeacon_nodes(p);
  EXPECT_LT(strong, weak);
}

TEST(AffectedNodes, Figure9ShapeRiseThenFall) {
  // N'max rises with N_c while revocation is unlikely, then falls once
  // more requesters mean more detecting-beacon alerts.
  ModelParams p = paper_params();
  p.detecting_ids = 8;
  p.alert_threshold = 2;
  std::vector<double> curve;
  for (std::size_t nc = 2; nc <= 200; nc += 6) {
    p.requesters_per_beacon = nc;
    curve.push_back(max_affected_nonbeacon_nodes(p));
  }
  const auto peak_it = std::max_element(curve.begin(), curve.end());
  EXPECT_NE(peak_it, curve.begin());
  EXPECT_NE(peak_it, curve.end() - 1);
  EXPECT_LT(curve.back(), *peak_it);
}

TEST(FalsePositives, MatchesClosedForm) {
  const ModelParams p = paper_params();
  // ((1-0.9)*10 + 10*11) / 3 = 111 / 3 = 37.
  EXPECT_NEAR(false_positive_count(p), 37.0, 1e-9);
}

TEST(FalsePositives, TradeoffDirections) {
  // §3.2: decreasing tau1 or increasing tau2 reduces N_f.
  ModelParams p = paper_params();
  const double base = false_positive_count(p);
  p.report_quota = 5;
  EXPECT_LT(false_positive_count(p), base);
  p = paper_params();
  p.alert_threshold = 4;
  EXPECT_LT(false_positive_count(p), base);
}

TEST(ReportCounter, IncrementProbabilitiesInRange) {
  const ModelParams p = paper_params();
  for (double P = 0.05; P < 1.0; P += 0.1) {
    const double p1 = report_increment_prob_malicious(p, P);
    EXPECT_GE(p1, 0.0);
    EXPECT_LE(p1, 1.0);
  }
  const double p2 = report_increment_prob_wormhole(p);
  EXPECT_GE(p2, 0.0);
  EXPECT_LE(p2, 1.0);
}

TEST(ReportCounter, PmfSumsToOne) {
  const ModelParams p = paper_params();
  double sum = 0.0;
  for (std::size_t i = 0; i <= p.malicious_count + p.wormhole_count; ++i)
    sum += report_counter_pmf(p, 0.1, i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ReportCounter, OverflowNegligibleAtPaperThreshold) {
  // Figure 10's conclusion: with tau1 = 10 the probability of a benign
  // beacon's report counter overflowing is close to zero.
  const ModelParams p = paper_params();  // tau1 = 10
  EXPECT_LT(report_counter_overflow_probability(p, 0.1), 1e-6);
}

TEST(ReportCounter, OverflowDecreasesWithTau1) {
  ModelParams p = paper_params();
  double prev = 1.0;
  for (std::uint32_t tau1 = 0; tau1 <= 12; ++tau1) {
    p.report_quota = tau1;
    const double po = report_counter_overflow_probability(p, 0.1);
    EXPECT_LE(po, prev + 1e-12);
    prev = po;
  }
}

// --- metamorphic properties across the parameter space ------------------

TEST(Metamorphic, MoreBenignBeaconsMeanMoreAlerts) {
  // P_a scales with the benign-beacon fraction, so P_d is monotone in it.
  ModelParams p = paper_params();
  double prev = 0.0;
  for (std::size_t nb = 20; nb <= 200; nb += 20) {
    p.beacon_count = nb;
    p.malicious_count = 10;
    const double pd = revocation_probability(p, 0.2);
    EXPECT_GE(pd, prev - 1e-12) << "N_b = " << nb;
    prev = pd;
  }
}

TEST(Metamorphic, AffectedNodesScaleWithNonBeaconFraction) {
  // N' = P (1-P_d) N_c (N - N_b)/N: doubling the non-beacon fraction at
  // fixed P_d doubles the damage.
  ModelParams p = paper_params();
  const double pd = revocation_probability(p, 0.3);
  const double n1 = affected_nonbeacon_nodes(p, 0.3);
  EXPECT_NEAR(n1,
              0.3 * (1.0 - pd) * 100.0 * 900.0 / 1000.0, 1e-9);
}

TEST(Metamorphic, FalsePositivesLinearInQuota) {
  ModelParams p = paper_params();
  p.report_quota = 10;
  const double base = false_positive_count(p);
  p.report_quota = 21;  // tau1+1 doubles: 11 -> 22
  EXPECT_NEAR(false_positive_count(p),
              base + 10.0 * 11.0 / 3.0, 1e-9);
}

TEST(Metamorphic, PerfectWormholeDetectorRemovesWormholeTerm) {
  ModelParams p = paper_params();
  p.wormhole_detection_rate = 1.0;
  EXPECT_NEAR(false_positive_count(p),
              10.0 * 11.0 / 3.0, 1e-9);  // only the collusion term remains
  EXPECT_EQ(report_increment_prob_wormhole(p), 0.0);
}

TEST(Metamorphic, NoMaliciousNoWormholesNoOverflow) {
  ModelParams p = paper_params();
  p.malicious_count = 0;
  p.wormhole_count = 0;
  EXPECT_EQ(report_counter_overflow_probability(p, 0.5), 0.0);
  EXPECT_EQ(false_positive_count(p), 0.0);
}

TEST(Metamorphic, DamageBoundedByRequesterPopulation) {
  // N' can never exceed the expected non-beacon requester count.
  ModelParams p = paper_params();
  for (double P = 0.0; P <= 1.0 + 1e-9; P += 0.05) {
    const double bound = static_cast<double>(p.requesters_per_beacon) *
                         static_cast<double>(p.nonbeacon_nodes()) /
                         static_cast<double>(p.total_nodes);
    EXPECT_LE(affected_nonbeacon_nodes(p, std::min(P, 1.0)), bound + 1e-9);
  }
}

TEST(Metamorphic, RevocationNeedsAlertThresholdReporters) {
  // With fewer possible benign requesters than tau2+1, revocation is
  // impossible no matter how blatant the attack.
  ModelParams p = paper_params();
  p.requesters_per_beacon = 2;  // tau2 = 2 needs 3 alerts
  EXPECT_EQ(revocation_probability(p, 1.0), 0.0);
}

TEST(ChooseThresholds, FindsFeasiblePairAtPaperParameters) {
  const ModelParams p = paper_params();
  const auto choice = analysis::choose_thresholds(p);
  ASSERT_TRUE(choice.has_value());
  EXPECT_LE(choice->max_damage, 5.0);
  EXPECT_LE(choice->quota_overflow, 1e-4);
  // The winning pair keeps false positives at or below the paper pair's
  // N_f (tau1=10, tau2=2 gives 37).
  ModelParams paper_pair = p;
  paper_pair.report_quota = 10;
  paper_pair.alert_threshold = 2;
  EXPECT_LE(choice->false_positives,
            false_positive_count(paper_pair) + 1e-9);
}

TEST(ChooseThresholds, TighterDamageBudgetPrunesLargeTau2) {
  const ModelParams p = paper_params();
  ThresholdSearch strict;
  strict.damage_budget = 2.0;  // only small tau2 keep N' this low
  const auto choice = analysis::choose_thresholds(p, strict);
  ASSERT_TRUE(choice.has_value());
  EXPECT_LE(choice->max_damage, 2.0);
  EXPECT_LE(choice->tau2, 2u);
}

TEST(ChooseThresholds, ImpossibleBudgetGivesNothing) {
  const ModelParams p = paper_params();
  ThresholdSearch impossible;
  impossible.damage_budget = 1e-6;
  EXPECT_FALSE(analysis::choose_thresholds(p, impossible).has_value());
}

TEST(ChooseThresholds, Validation) {
  const ModelParams p = paper_params();
  ThresholdSearch bad;
  bad.tau2_min = 5;
  bad.tau2_max = 2;
  EXPECT_THROW(analysis::choose_thresholds(p, bad), std::invalid_argument);
  bad = ThresholdSearch{};
  bad.damage_budget = 0.0;
  EXPECT_THROW(analysis::choose_thresholds(p, bad), std::invalid_argument);
}

TEST(ReportCounter, MonteCarloAgreement) {
  // Simulate the §3.2 counter model: Bin(N_a, P_1) + Bin(N_w, P_2).
  const ModelParams p = paper_params();
  const double P = 0.1;
  const double p1 = report_increment_prob_malicious(p, P);
  const double p2 = report_increment_prob_wormhole(p);
  util::Rng rng(2);
  constexpr int kTrials = 300000;
  ModelParams small_quota = p;
  small_quota.report_quota = 1;
  int overflow = 0;
  for (int t = 0; t < kTrials; ++t) {
    int counter = 0;
    for (std::size_t j = 0; j < p.malicious_count; ++j)
      if (rng.bernoulli(p1)) ++counter;
    for (std::size_t k = 0; k < p.wormhole_count; ++k)
      if (rng.bernoulli(p2)) ++counter;
    if (counter > 1) ++overflow;
  }
  EXPECT_NEAR(static_cast<double>(overflow) / kTrials,
              report_counter_overflow_probability(small_quota, P), 0.005);
}

}  // namespace
}  // namespace sld::analysis
