// A small property-based testing harness for the sld test suite.
//
// A Gen<T> bundles a generator (seeded from util::Rng, so every case is a
// pure function of its 64-bit case seed), an optional shrinker (candidate
// "smaller" values tried greedily after a failure), and an optional printer.
// forall() runs a predicate over `iterations` generated cases; on the first
// failure it shrinks to a locally-minimal counterexample and reports it via
// ADD_FAILURE together with a one-line repro:
//
//   repro: SLD_PROP_SEED=<seed> ./test_binary --gtest_filter=<Suite.Test>
//
// Setting SLD_PROP_SEED in the environment replays exactly that case (one
// iteration, same seed), which reproduces the failure deterministically.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"

namespace sld::prop {

struct Config {
  /// Cases generated per property (ignored when SLD_PROP_SEED is set).
  std::size_t iterations = 100;
  /// Case i draws from seed base_seed + i.
  std::uint64_t base_seed = 0x5afe5eedULL;
  /// Upper bound on predicate re-evaluations spent shrinking.
  std::size_t max_shrink_steps = 400;
};

/// Value of SLD_PROP_SEED if set and parseable, else `fallback`.
inline std::uint64_t env_seed_or(std::uint64_t fallback, bool* present = nullptr) {
  if (present) *present = false;
  if (const char* s = std::getenv("SLD_PROP_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end != nullptr && end != s && *end == '\0') {
      if (present) *present = true;
      return static_cast<std::uint64_t>(v);
    }
  }
  return fallback;
}

template <typename T>
std::string default_show(const T& value) {
  if constexpr (requires(std::ostream& os, const T& t) { os << t; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<value of " + std::string(typeid(T).name()) + ">";
  }
}

/// A generator: how to produce a T, how to shrink one, how to print one.
template <typename T>
struct Gen {
  std::function<T(util::Rng&)> generate;
  /// Candidate strictly-"smaller" values, most aggressive first. May be
  /// empty (no shrinking).
  std::function<std::vector<T>(const T&)> shrink;
  std::function<std::string(const T&)> show;

  std::string describe(const T& value) const {
    return show ? show(value) : default_show(value);
  }
};

namespace detail {

/// Invokes the predicate; a two-argument predicate additionally receives a
/// fresh Rng deterministically derived from the case seed, so replaying the
/// seed replays the predicate's own randomness too.
template <typename T, typename Pred>
bool holds(Pred& pred, const T& value, std::uint64_t case_seed) {
  if constexpr (std::is_invocable_r_v<bool, Pred, const T&, util::Rng&>) {
    util::Rng rng(case_seed ^ 0x9d2c5680cafef00dULL);
    return pred(value, rng);
  } else {
    static_assert(std::is_invocable_r_v<bool, Pred, const T&>,
                  "predicate must be bool(const T&) or bool(const T&, Rng&)");
    return pred(value);
  }
}

inline std::string current_test_filter() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info == nullptr) return "<test>";
  return std::string(info->test_suite_name()) + "." + info->name();
}

}  // namespace detail

/// Checks `pred` over `cfg.iterations` generated cases. Returns true if the
/// property held for every case; on failure, shrinks and reports exactly one
/// gtest (non-fatal) failure carrying the repro seed.
template <typename T, typename Pred>
bool forall(const std::string& name, const Gen<T>& gen, Pred pred,
            Config cfg = {}) {
  bool forced = false;
  const std::uint64_t forced_seed = env_seed_or(0, &forced);
  const std::size_t iterations = forced ? 1 : cfg.iterations;

  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t case_seed = forced ? forced_seed : cfg.base_seed + i;
    util::Rng gen_rng(case_seed);
    T value = gen.generate(gen_rng);
    if (detail::holds(pred, value, case_seed)) continue;

    // Greedy shrink: repeatedly move to the first failing candidate.
    T minimal = value;
    std::size_t steps = 0;
    bool improved = gen.shrink != nullptr;
    while (improved && steps < cfg.max_shrink_steps) {
      improved = false;
      for (T& candidate : gen.shrink(minimal)) {
        ++steps;
        if (!detail::holds(pred, candidate, case_seed)) {
          minimal = std::move(candidate);
          improved = true;
          break;
        }
        if (steps >= cfg.max_shrink_steps) break;
      }
    }

    ADD_FAILURE() << "property '" << name << "' falsified (case " << i + 1
                  << " of " << iterations << ")\n  counterexample: "
                  << gen.describe(minimal) << "\n  original input:  "
                  << gen.describe(value) << "\n  repro: SLD_PROP_SEED="
                  << case_seed << " ./<test-binary> --gtest_filter="
                  << detail::current_test_filter();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Primitive generators.

/// Uniform integer in [lo, hi], shrinking toward lo.
inline Gen<std::int64_t> int_range(std::int64_t lo, std::int64_t hi) {
  Gen<std::int64_t> g;
  g.generate = [lo, hi](util::Rng& rng) { return rng.uniform_int(lo, hi); };
  g.shrink = [lo](const std::int64_t& v) {
    std::vector<std::int64_t> out;
    if (v == lo) return out;
    out.push_back(lo);
    for (std::int64_t delta = (v - lo) / 2; delta > 0; delta /= 2)
      out.push_back(v - delta);
    return out;
  };
  return g;
}

/// Uniform double in [lo, hi), shrinking toward lo by repeated halving.
inline Gen<double> double_range(double lo, double hi) {
  Gen<double> g;
  g.generate = [lo, hi](util::Rng& rng) { return rng.uniform(lo, hi); };
  g.shrink = [lo](const double& v) {
    std::vector<double> out;
    if (!(v > lo)) return out;
    out.push_back(lo);
    double delta = (v - lo) / 2.0;
    for (int i = 0; i < 8 && delta > 1e-9; ++i, delta /= 2.0)
      out.push_back(v - delta);
    return out;
  };
  return g;
}

/// Fair coin, shrinking true -> false.
inline Gen<bool> boolean() {
  Gen<bool> g;
  g.generate = [](util::Rng& rng) { return rng.bernoulli(0.5); };
  g.shrink = [](const bool& v) {
    return v ? std::vector<bool>{false} : std::vector<bool>{};
  };
  return g;
}

/// Uniform choice from a fixed list (no shrinking: elements are unordered).
template <typename T>
Gen<T> element_of(std::vector<T> choices) {
  Gen<T> g;
  g.generate = [choices](util::Rng& rng) {
    return choices[static_cast<std::size_t>(rng.uniform_u64(choices.size()))];
  };
  return g;
}

/// Vector of `elem` draws with size in [min_size, max_size]. Shrinks by
/// dropping chunks/elements (respecting min_size) and by shrinking single
/// elements in place.
template <typename T>
Gen<std::vector<T>> vector_of(Gen<T> elem, std::size_t min_size,
                              std::size_t max_size) {
  Gen<std::vector<T>> g;
  g.generate = [elem, min_size, max_size](util::Rng& rng) {
    const std::size_t n =
        min_size + static_cast<std::size_t>(
                       rng.uniform_u64(max_size - min_size + 1));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(elem.generate(rng));
    return out;
  };
  g.shrink = [elem, min_size](const std::vector<T>& v) {
    std::vector<std::vector<T>> out;
    // Drop the front/back half, then single elements.
    if (v.size() > min_size) {
      const std::size_t half = std::max(min_size, v.size() / 2);
      out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(half));
      out.emplace_back(v.end() - static_cast<std::ptrdiff_t>(half), v.end());
      for (std::size_t i = 0; i < v.size(); ++i) {
        std::vector<T> smaller = v;
        smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(smaller));
      }
    }
    // Shrink one element in place.
    if (elem.shrink) {
      for (std::size_t i = 0; i < v.size(); ++i) {
        for (T& cand : elem.shrink(v[i])) {
          std::vector<T> copy = v;
          copy[i] = std::move(cand);
          out.push_back(std::move(copy));
        }
      }
    }
    return out;
  };
  g.show = [elem](const std::vector<T>& v) {
    std::ostringstream os;
    os << "[" << v.size() << " elems:";
    const std::size_t shown = std::min<std::size_t>(v.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) os << " " << elem.describe(v[i]);
    if (shown < v.size()) os << " ...";
    os << "]";
    return os.str();
  };
  return g;
}

}  // namespace sld::prop
