// Domain generators for the property suite: deployments, topologies,
// attack strategies, fault configurations, revocation parameters, and wire
// payloads. Each keeps its type's validity constraints under both generate
// and shrink (e.g. malicious_beacon_count <= beacon_count <= total_nodes),
// so properties never see an ill-formed input.
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "attack/strategy.hpp"
#include "prop/prop.hpp"
#include "revocation/base_station.hpp"
#include "sim/deployment.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"

namespace sld::prop {

// ---------------------------------------------------------------------------
// Deployments and topologies.

/// Small-but-varied deployment parameters (sized for fast property runs).
inline Gen<sim::DeploymentConfig> deployment_config() {
  Gen<sim::DeploymentConfig> g;
  g.generate = [](util::Rng& rng) {
    sim::DeploymentConfig c;
    c.total_nodes = 10 + static_cast<std::size_t>(rng.uniform_u64(91));
    c.beacon_count =
        1 + static_cast<std::size_t>(rng.uniform_u64(c.total_nodes));
    c.malicious_beacon_count =
        static_cast<std::size_t>(rng.uniform_u64(c.beacon_count + 1));
    c.field = util::Rect::square(rng.uniform(200.0, 1500.0));
    c.comm_range_ft = rng.uniform(50.0, 400.0);
    return c;
  };
  g.shrink = [](const sim::DeploymentConfig& c) {
    std::vector<sim::DeploymentConfig> out;
    auto clamped = [](sim::DeploymentConfig d) {
      d.beacon_count = std::max<std::size_t>(
          1, std::min(d.beacon_count, d.total_nodes));
      d.malicious_beacon_count =
          std::min(d.malicious_beacon_count, d.beacon_count);
      return d;
    };
    if (c.total_nodes > 10) {
      sim::DeploymentConfig d = c;
      d.total_nodes = std::max<std::size_t>(10, c.total_nodes / 2);
      out.push_back(clamped(d));
    }
    if (c.beacon_count > 1) {
      sim::DeploymentConfig d = c;
      d.beacon_count = std::max<std::size_t>(1, c.beacon_count / 2);
      out.push_back(clamped(d));
    }
    if (c.malicious_beacon_count > 0) {
      sim::DeploymentConfig d = c;
      d.malicious_beacon_count /= 2;
      out.push_back(clamped(d));
    }
    return out;
  };
  g.show = [](const sim::DeploymentConfig& c) {
    std::ostringstream os;
    os << "{N=" << c.total_nodes << " Nb=" << c.beacon_count
       << " Na=" << c.malicious_beacon_count << " field="
       << c.field.width() << "x" << c.field.height()
       << "ft range=" << c.comm_range_ft << "ft}";
    return os.str();
  };
  return g;
}

/// A concrete deployment: random or grid topology over a generated config.
inline Gen<sim::Deployment> deployment() {
  Gen<sim::Deployment> g;
  const Gen<sim::DeploymentConfig> cfg = deployment_config();
  g.generate = [cfg](util::Rng& rng) {
    const sim::DeploymentConfig c = cfg.generate(rng);
    return rng.bernoulli(0.5) ? sim::deploy_random(c, rng)
                              : sim::deploy_grid(c, rng);
  };
  g.show = [cfg](const sim::Deployment& d) {
    return "deployment over " + cfg.describe(d.config);
  };
  return g;
}

// ---------------------------------------------------------------------------
// Attack strategies.

/// Malicious-beacon strategy mixes (paper §2.3), with the magnitude fields
/// left at their paper-consistent defaults. Shrinks toward the pure
/// always-effective attacker (all probabilities zero).
inline Gen<attack::MaliciousStrategyConfig> strategy_config() {
  Gen<attack::MaliciousStrategyConfig> g;
  g.generate = [](util::Rng& rng) {
    attack::MaliciousStrategyConfig s;
    s.p_normal = rng.uniform(0.0, 0.9);
    s.p_fake_wormhole = rng.uniform(0.0, 0.9);
    s.p_fake_local_replay = rng.uniform(0.0, 0.9);
    return s;
  };
  g.shrink = [](const attack::MaliciousStrategyConfig& s) {
    std::vector<attack::MaliciousStrategyConfig> out;
    auto zeroed = [&](double attack::MaliciousStrategyConfig::* field) {
      attack::MaliciousStrategyConfig t = s;
      t.*field = 0.0;
      out.push_back(t);
    };
    if (s.p_normal > 0.0) zeroed(&attack::MaliciousStrategyConfig::p_normal);
    if (s.p_fake_wormhole > 0.0)
      zeroed(&attack::MaliciousStrategyConfig::p_fake_wormhole);
    if (s.p_fake_local_replay > 0.0)
      zeroed(&attack::MaliciousStrategyConfig::p_fake_local_replay);
    return out;
  };
  g.show = [](const attack::MaliciousStrategyConfig& s) {
    std::ostringstream os;
    os << "{pn=" << s.p_normal << " pw=" << s.p_fake_wormhole
       << " pl=" << s.p_fake_local_replay << " P=" << s.effectiveness() << "}";
    return os.str();
  };
  return g;
}

// ---------------------------------------------------------------------------
// Fault configurations.

/// Channel fault plans mixing i.i.d. loss, bursty loss, duplication,
/// corruption, and jitter. Shrinks by switching fault sources off one at a
/// time — the empty plan is the fully-shrunk value.
inline Gen<sim::FaultPlan> fault_plan() {
  Gen<sim::FaultPlan> g;
  g.generate = [](util::Rng& rng) {
    sim::FaultPlan p;
    if (rng.bernoulli(0.6)) p.loss_probability = rng.uniform(0.0, 0.4);
    if (rng.bernoulli(0.4))
      p.burst = sim::GilbertElliottConfig::for_average_loss(
          rng.uniform(0.01, 0.3), rng.uniform(1.5, 6.0));
    if (rng.bernoulli(0.4)) p.duplicate_probability = rng.uniform(0.0, 0.2);
    if (rng.bernoulli(0.4)) p.corruption_probability = rng.uniform(0.0, 0.2);
    if (rng.bernoulli(0.4))
      p.max_extra_delay_ns = static_cast<sim::SimTime>(
          rng.uniform_u64(5'000'000));  // up to 5 ms of jitter
    return p;
  };
  g.shrink = [](const sim::FaultPlan& p) {
    std::vector<sim::FaultPlan> out;
    if (p.loss_probability > 0.0) {
      sim::FaultPlan q = p;
      q.loss_probability = 0.0;
      out.push_back(q);
    }
    if (p.burst.enabled()) {
      sim::FaultPlan q = p;
      q.burst = sim::GilbertElliottConfig{};
      out.push_back(q);
    }
    if (p.duplicate_probability > 0.0) {
      sim::FaultPlan q = p;
      q.duplicate_probability = 0.0;
      out.push_back(q);
    }
    if (p.corruption_probability > 0.0) {
      sim::FaultPlan q = p;
      q.corruption_probability = 0.0;
      out.push_back(q);
    }
    if (p.max_extra_delay_ns > 0) {
      sim::FaultPlan q = p;
      q.max_extra_delay_ns = 0;
      out.push_back(q);
    }
    return out;
  };
  g.show = [](const sim::FaultPlan& p) {
    std::ostringstream os;
    os << "{loss=" << p.loss_probability << " burst="
       << (p.burst.enabled() ? "on" : "off")
       << " dup=" << p.duplicate_probability
       << " corrupt=" << p.corruption_probability
       << " jitter_ns=" << p.max_extra_delay_ns << "}";
    return os.str();
  };
  return g;
}

// ---------------------------------------------------------------------------
// Revocation parameters and alert streams.

inline Gen<revocation::RevocationConfig> revocation_config() {
  Gen<revocation::RevocationConfig> g;
  g.generate = [](util::Rng& rng) {
    revocation::RevocationConfig c;
    c.report_quota = static_cast<std::uint32_t>(rng.uniform_u64(16));
    c.alert_threshold = static_cast<std::uint32_t>(rng.uniform_u64(8));
    return c;
  };
  g.shrink = [](const revocation::RevocationConfig& c) {
    std::vector<revocation::RevocationConfig> out;
    if (c.report_quota > 0) {
      revocation::RevocationConfig d = c;
      d.report_quota /= 2;
      out.push_back(d);
    }
    if (c.alert_threshold > 0) {
      revocation::RevocationConfig d = c;
      d.alert_threshold /= 2;
      out.push_back(d);
    }
    return out;
  };
  g.show = [](const revocation::RevocationConfig& c) {
    std::ostringstream os;
    os << "{tau1=" << c.report_quota << " tau2=" << c.alert_threshold << "}";
    return os.str();
  };
  return g;
}

/// A revocation scenario: tau parameters plus an ordered (reporter, target)
/// alert stream over a deliberately tiny ID universe, so quota exhaustion,
/// threshold crossings, and post-revocation alerts all actually occur.
struct AlertStream {
  revocation::RevocationConfig config;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> alerts;
};

inline Gen<AlertStream> alert_stream() {
  Gen<AlertStream> g;
  const Gen<revocation::RevocationConfig> cfg = revocation_config();
  g.generate = [cfg](util::Rng& rng) {
    AlertStream s;
    s.config = cfg.generate(rng);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_u64(120));
    s.alerts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // 4 reporters x 4 targets forces counter collisions.
      const auto reporter =
          static_cast<sim::NodeId>(100 + rng.uniform_u64(4));
      const auto target = static_cast<sim::NodeId>(1 + rng.uniform_u64(4));
      s.alerts.emplace_back(reporter, target);
    }
    return s;
  };
  g.shrink = [cfg](const AlertStream& s) {
    std::vector<AlertStream> out;
    // Drop alert chunks, then single alerts, then shrink the config.
    if (!s.alerts.empty()) {
      AlertStream half = s;
      half.alerts.resize(s.alerts.size() / 2);
      out.push_back(std::move(half));
      for (std::size_t i = 0; i < s.alerts.size(); ++i) {
        AlertStream smaller = s;
        smaller.alerts.erase(smaller.alerts.begin() +
                             static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(smaller));
      }
    }
    if (cfg.shrink) {
      for (auto& c : cfg.shrink(s.config)) {
        AlertStream t = s;
        t.config = c;
        out.push_back(std::move(t));
      }
    }
    return out;
  };
  g.show = [cfg](const AlertStream& s) {
    std::ostringstream os;
    os << "{" << cfg.describe(s.config) << ", " << s.alerts.size()
       << " alerts:";
    const std::size_t shown = std::min<std::size_t>(s.alerts.size(), 10);
    for (std::size_t i = 0; i < shown; ++i)
      os << " " << s.alerts[i].first << "->" << s.alerts[i].second;
    if (shown < s.alerts.size()) os << " ...";
    os << "}";
    return os.str();
  };
  return g;
}

// ---------------------------------------------------------------------------
// Wire payloads (serialize/parse roundtrip fodder).

inline Gen<sim::BeaconRequestPayload> beacon_request_payload() {
  Gen<sim::BeaconRequestPayload> g;
  g.generate = [](util::Rng& rng) {
    sim::BeaconRequestPayload p;
    p.nonce = rng();
    return p;
  };
  g.show = [](const sim::BeaconRequestPayload& p) {
    return "{nonce=" + std::to_string(p.nonce) + "}";
  };
  return g;
}

inline Gen<sim::BeaconReplyPayload> beacon_reply_payload() {
  Gen<sim::BeaconReplyPayload> g;
  g.generate = [](util::Rng& rng) {
    sim::BeaconReplyPayload p;
    p.nonce = rng();
    p.claimed_position = {rng.uniform(-2000.0, 2000.0),
                          rng.uniform(-2000.0, 2000.0)};
    p.processing_bias_cycles = rng.uniform(-1e5, 1e5);
    p.range_manipulation_ft = rng.uniform(-500.0, 500.0);
    p.fake_wormhole_indication = rng.bernoulli(0.5);
    return p;
  };
  g.show = [](const sim::BeaconReplyPayload& p) {
    std::ostringstream os;
    os << "{nonce=" << p.nonce << " pos=(" << p.claimed_position.x << ","
       << p.claimed_position.y << ") bias=" << p.processing_bias_cycles
       << " manip=" << p.range_manipulation_ft
       << " fake_wh=" << p.fake_wormhole_indication << "}";
    return os.str();
  };
  return g;
}

inline Gen<sim::AlertPayload> alert_payload() {
  Gen<sim::AlertPayload> g;
  g.generate = [](util::Rng& rng) {
    sim::AlertPayload p;
    p.reporter = static_cast<sim::NodeId>(rng());
    p.target = static_cast<sim::NodeId>(rng());
    return p;
  };
  g.show = [](const sim::AlertPayload& p) {
    std::ostringstream os;
    os << "{reporter=" << p.reporter << " target=" << p.target << "}";
    return os.str();
  };
  return g;
}

// ---------------------------------------------------------------------------
// Lifecycle scenarios.

/// A timed accepted-alert history over a small positioned beacon roster —
/// the lifecycle state machine's entire input domain. Times are
/// non-decreasing (the tracker's invariant); some reporters are off-roster
/// so the unknown-vantage paths get exercised too.
struct TimedAlertStream {
  revocation::LifecycleConfig config;
  double quarantine_threshold = 2.0;
  std::vector<std::pair<sim::NodeId, util::Vec2>> roster;
  struct TimedAlert {
    sim::NodeId reporter = 0;
    sim::NodeId target = 0;
    sim::SimTime at = 0;
  };
  std::vector<TimedAlert> alerts;
};

inline Gen<TimedAlertStream> timed_alert_stream() {
  Gen<TimedAlertStream> g;
  g.generate = [](util::Rng& rng) {
    TimedAlertStream s;
    s.config.enabled = true;
    s.config.half_life_ns = static_cast<sim::SimTime>(
        10 * sim::kSecond + rng.uniform_u64(600 * sim::kSecond));
    s.config.min_usable_per_cell =
        static_cast<std::uint32_t>(rng.uniform_u64(3));
    s.quarantine_threshold = 1.0 + static_cast<double>(rng.uniform_u64(4));
    const std::size_t beacons = 3 + static_cast<std::size_t>(rng.uniform_u64(6));
    for (std::size_t i = 0; i < beacons; ++i) {
      s.roster.emplace_back(
          static_cast<sim::NodeId>(1 + i),
          util::Vec2{rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)});
    }
    const std::size_t n = static_cast<std::size_t>(rng.uniform_u64(100));
    sim::SimTime t = 0;
    s.alerts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      t += static_cast<sim::SimTime>(rng.uniform_u64(30 * sim::kSecond));
      TimedAlertStream::TimedAlert a;
      // +2: a couple of reporter ids with no roster position.
      a.reporter = static_cast<sim::NodeId>(1 + rng.uniform_u64(beacons + 2));
      a.target = s.roster[rng.uniform_u64(beacons)].first;
      a.at = t;
      s.alerts.push_back(a);
    }
    return s;
  };
  g.shrink = [](const TimedAlertStream& s) {
    std::vector<TimedAlertStream> out;
    if (!s.alerts.empty()) {
      TimedAlertStream half = s;
      half.alerts.resize(s.alerts.size() / 2);
      out.push_back(std::move(half));
      for (std::size_t i = 0; i < s.alerts.size(); ++i) {
        TimedAlertStream smaller = s;
        smaller.alerts.erase(smaller.alerts.begin() +
                             static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(smaller));
      }
    }
    return out;
  };
  g.show = [](const TimedAlertStream& s) {
    std::ostringstream os;
    os << "{half_life=" << s.config.half_life_ns / sim::kSecond
       << "s qt=" << s.quarantine_threshold << " floor="
       << s.config.min_usable_per_cell << " roster=" << s.roster.size()
       << ", " << s.alerts.size() << " alerts:";
    const std::size_t shown = std::min<std::size_t>(s.alerts.size(), 8);
    for (std::size_t i = 0; i < shown; ++i)
      os << " " << s.alerts[i].reporter << "->" << s.alerts[i].target << "@"
         << s.alerts[i].at;
    if (shown < s.alerts.size()) os << " ...";
    os << "}";
    return os.str();
  };
  return g;
}

inline Gen<sim::RevocationPayload> revocation_payload() {
  Gen<sim::RevocationPayload> g;
  g.generate = [](util::Rng& rng) {
    sim::RevocationPayload p;
    p.revoked = static_cast<sim::NodeId>(rng());
    return p;
  };
  g.show = [](const sim::RevocationPayload& p) {
    return "{revoked=" + std::to_string(p.revoked) + "}";
  };
  return g;
}

}  // namespace sld::prop
