#include "crypto/polynomial_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sld::crypto {
namespace {

TEST(GfArithmetic, AddWrapsAtPrime) {
  EXPECT_EQ(gf::add(gf::kPrime - 1, 1), 0u);
  EXPECT_EQ(gf::add(5, 7), 12u);
  EXPECT_EQ(gf::add(gf::kPrime - 1, gf::kPrime - 1), gf::kPrime - 2);
}

TEST(GfArithmetic, MulMatchesSmallCases) {
  EXPECT_EQ(gf::mul(0, 12345), 0u);
  EXPECT_EQ(gf::mul(1, 12345), 12345u);
  EXPECT_EQ(gf::mul(3, 5), 15u);
}

TEST(GfArithmetic, MulReducesLargeProducts) {
  // (p-1)^2 mod p = 1 since p-1 = -1 (mod p).
  EXPECT_EQ(gf::mul(gf::kPrime - 1, gf::kPrime - 1), 1u);
  // 2^61 mod (2^61 - 1) = 1 -> (2^60)*2 = 1.
  EXPECT_EQ(gf::mul(1ULL << 60, 2), 1u);
}

TEST(GfArithmetic, MulDistributesOverAdd) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = rng.uniform_u64(gf::kPrime);
    const auto b = rng.uniform_u64(gf::kPrime);
    const auto c = rng.uniform_u64(gf::kPrime);
    EXPECT_EQ(gf::mul(a, gf::add(b, c)),
              gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(SymmetricPolynomial, IsSymmetric) {
  util::Rng rng(2);
  SymmetricBivariatePolynomial f(5, rng);
  for (int i = 0; i < 200; ++i) {
    const auto x = rng.uniform_u64(gf::kPrime);
    const auto y = rng.uniform_u64(gf::kPrime);
    EXPECT_EQ(f.evaluate(x, y), f.evaluate(y, x));
  }
}

TEST(SymmetricPolynomial, ShareEvaluationMatchesFull) {
  util::Rng rng(3);
  SymmetricBivariatePolynomial f(7, rng);
  const std::uint64_t u = 12345, v = 67890;
  PolynomialShare share(0, u, f.share_for(u));
  EXPECT_EQ(share.evaluate(v), f.evaluate(u, v));
}

TEST(SymmetricPolynomial, DegreeZeroIsConstant) {
  util::Rng rng(4);
  SymmetricBivariatePolynomial f(0, rng);
  EXPECT_EQ(f.evaluate(1, 2), f.evaluate(999, 3));
}

TEST(PolynomialShare, PairwiseKeysAgree) {
  util::Rng rng(5);
  SymmetricBivariatePolynomial f(10, rng);
  const std::uint64_t u = 42, v = 4242;
  PolynomialShare su(3, u, f.share_for(u));
  PolynomialShare sv(3, v, f.share_for(v));
  EXPECT_EQ(su.evaluate(v), sv.evaluate(u));
  EXPECT_EQ(su.pairwise_key(v), sv.pairwise_key(u));
}

TEST(PolynomialShare, DistinctPairsGetDistinctKeys) {
  util::Rng rng(6);
  SymmetricBivariatePolynomial f(10, rng);
  PolynomialShare s1(0, 1, f.share_for(1));
  EXPECT_NE(s1.pairwise_key(2), s1.pairwise_key(3));
}

TEST(PolynomialShare, EmptyShareRejected) {
  EXPECT_THROW(PolynomialShare(0, 1, {}), std::invalid_argument);
}

TEST(PolynomialPool, ProvisionAndDiscovery) {
  util::Rng rng(7);
  PolynomialPool pool(20, 5, rng);
  const auto a = pool.provision(100, 8, rng);
  const auto b = pool.provision(200, 8, rng);
  EXPECT_EQ(a.size(), 8u);
  // Shares are sorted and distinct.
  std::set<std::uint32_t> ids;
  for (const auto& s : a) ids.insert(s.poly_id());
  EXPECT_EQ(ids.size(), 8u);

  const auto shared = shared_polynomial(a, b);
  if (shared) {
    const auto* sa = &*std::find_if(a.begin(), a.end(), [&](const auto& s) {
      return s.poly_id() == *shared;
    });
    const auto* sb = &*std::find_if(b.begin(), b.end(), [&](const auto& s) {
      return s.poly_id() == *shared;
    });
    EXPECT_EQ(sa->evaluate(200), sb->evaluate(100));
    EXPECT_EQ(sa->evaluate(200), pool.truth(*shared, 100, 200));
  }
}

TEST(PolynomialPool, SharedPolynomialSymmetric) {
  util::Rng rng(8);
  PolynomialPool pool(10, 3, rng);
  const auto a = pool.provision(1, 5, rng);
  const auto b = pool.provision(2, 5, rng);
  EXPECT_EQ(shared_polynomial(a, b), shared_polynomial(b, a));
}

TEST(PolynomialPool, FullPoolAlwaysShares) {
  util::Rng rng(9);
  PolynomialPool pool(5, 3, rng);
  const auto a = pool.provision(1, 5, rng);
  const auto b = pool.provision(2, 5, rng);
  ASSERT_TRUE(shared_polynomial(a, b).has_value());
  EXPECT_EQ(*shared_polynomial(a, b), 0u);  // lowest shared id
}

TEST(PolynomialPool, TCollusionResistanceShapeCheck) {
  // t+1 shares of a degree-t polynomial determine it; t shares do not.
  // Sanity-check the share sizes that property rests on.
  util::Rng rng(10);
  constexpr std::size_t t = 6;
  PolynomialPool pool(1, t, rng);
  const auto shares = pool.provision(77, 1, rng);
  ASSERT_EQ(shares.size(), 1u);
  // A share is t+1 field elements — enough to evaluate, not to reconstruct
  // the bivariate polynomial's (t+1)(t+2)/2 free coefficients.
  SymmetricBivariatePolynomial f(t, rng);
  EXPECT_EQ(f.share_for(77).size(), t + 1);
}

TEST(PolynomialPool, Validation) {
  util::Rng rng(11);
  EXPECT_THROW(PolynomialPool(0, 3, rng), std::invalid_argument);
  PolynomialPool pool(3, 2, rng);
  EXPECT_THROW(pool.provision(1, 4, rng), std::invalid_argument);
  EXPECT_THROW(pool.truth(3, 1, 2), std::out_of_range);
}

}  // namespace
}  // namespace sld::crypto
