// WorkStealingPool (core/executor.hpp) contract tests: every task runs
// exactly once for any worker count, empty and single-task batches never
// deadlock, a throwing task loses nothing and the lowest-index exception
// wins, the pool is reusable across run() calls, and steals are observable
// when a worker's own deque runs dry. The exactly-once property is checked
// both on fixed edge cases and property-style over random batch shapes
// (SLD_PROP_SEED replays a failing case).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "prop/prop.hpp"

namespace {

using sld::core::WorkStealingPool;

/// Runs `tasks` no-op-with-counting tasks and returns per-task execution
/// counts.
std::vector<int> execution_counts(WorkStealingPool& pool,
                                  std::size_t tasks) {
  std::vector<std::atomic<int>> counts(tasks);
  std::vector<std::function<void()>> batch;
  batch.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i)
    batch.push_back([&counts, i] {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
  pool.run(std::move(batch));
  std::vector<int> out;
  out.reserve(tasks);
  for (auto& c : counts) out.push_back(c.load(std::memory_order_relaxed));
  return out;
}

TEST(WorkStealingPoolTest, ResolveJobsMapsZeroToHardware) {
  EXPECT_GE(WorkStealingPool::resolve_jobs(0), 1u);
  EXPECT_EQ(WorkStealingPool::resolve_jobs(1), 1u);
  EXPECT_EQ(WorkStealingPool::resolve_jobs(7), 7u);
}

TEST(WorkStealingPoolTest, EveryTaskRunsExactlyOnceAcrossWorkerSweep) {
  for (std::size_t workers = 1; workers <= 8; ++workers) {
    WorkStealingPool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    for (const std::size_t tasks : {0u, 1u, 2u, 7u, 64u}) {
      const auto counts = execution_counts(pool, tasks);
      ASSERT_EQ(counts.size(), tasks);
      for (std::size_t i = 0; i < tasks; ++i)
        EXPECT_EQ(counts[i], 1) << "workers=" << workers << " task=" << i;
    }
  }
}

TEST(WorkStealingPoolTest, EmptyAndSingleTaskBatchesDoNotDeadlock) {
  WorkStealingPool pool(4);
  for (int round = 0; round < 50; ++round) {
    pool.run({});
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> one;
    one.push_back([&ran] { ran.fetch_add(1); });
    pool.run(std::move(one));
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(WorkStealingPoolTest, ReusableAcrossRunsAndAccumulatesWork) {
  WorkStealingPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> batch;
    for (int i = 0; i < 11; ++i)
      batch.push_back([&total] { total.fetch_add(1); });
    pool.run(std::move(batch));
  }
  EXPECT_EQ(total.load(), 20 * 11);
}

TEST(WorkStealingPoolTest, LowestIndexExceptionWinsAndNothingIsLost) {
  WorkStealingPool pool(4);
  std::vector<std::atomic<int>> counts(16);
  std::vector<std::function<void()>> batch;
  for (std::size_t i = 0; i < counts.size(); ++i)
    batch.push_back([&counts, i] {
      counts[i].fetch_add(1);
      // Three tasks throw; the one with the smallest index must be the
      // one run() reports, regardless of completion order.
      if (i == 3 || i == 9 || i == 12)
        throw std::runtime_error("task " + std::to_string(i));
    });
  try {
    pool.run(std::move(batch));
    FAIL() << "run() swallowed the task exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  // The pool survives a throwing batch.
  const auto counts_after = execution_counts(pool, 8);
  for (const int c : counts_after) EXPECT_EQ(c, 1);
}

TEST(WorkStealingPoolTest, StarvedWorkerStealsFromBlockedOwner) {
  // 2 workers, 4 tasks: round-robin puts tasks {0, 2} in deque 0 and
  // {1, 3} in deque 1. Worker 0 pops its own deque LIFO, so it takes
  // task 2 first — which blocks until task 0 has run. Task 0 now sits in
  // a deque whose owner is wedged, so it can only execute via a steal by
  // worker 1 (FIFO from the front). If stealing were broken this test
  // would deadlock (and the batch would hang) instead of completing.
  WorkStealingPool pool(2);
  std::mutex m;
  std::condition_variable cv;
  bool task0_done = false;
  std::vector<std::function<void()>> batch;
  batch.push_back([&] {
    const std::lock_guard<std::mutex> lock(m);
    task0_done = true;
    cv.notify_all();
  });
  batch.push_back([] {});
  batch.push_back([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return task0_done; });
  });
  batch.push_back([] {});
  const std::uint64_t steals_before = pool.steals();
  pool.run(std::move(batch));
  EXPECT_GE(pool.steals(), steals_before + 1);
}

TEST(WorkStealingPoolTest, PropExactlyOnceOverRandomBatchShapes) {
  // Batch shape = (workers in 1..8, tasks in 0..97): every task runs
  // exactly once, whatever the shape.
  auto gen = sld::prop::int_range(0, 8 * 98 - 1);
  sld::prop::Config cfg;
  cfg.iterations = 40;
  sld::prop::forall<std::int64_t>(
      "pool runs every task exactly once", gen,
      [](const std::int64_t& shape) {
        const std::size_t workers =
            1 + static_cast<std::size_t>(shape) / 98;
        const std::size_t tasks = static_cast<std::size_t>(shape) % 98;
        WorkStealingPool pool(workers);
        const auto counts = execution_counts(pool, tasks);
        for (const int c : counts)
          if (c != 1) return false;
        return counts.size() == tasks;
      },
      cfg);
}

}  // namespace
