// System-level graceful degradation: the detection/revocation pipeline
// under channel faults, with and without the ARQ layer, plus the
// bit-for-bit guarantee that a zero-fault FaultPlan reproduces the
// fault-free trial exactly.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/secure_localization.hpp"

namespace sld::core {
namespace {

/// Down-scaled deployment (same density as the paper) for fast trials.
SystemConfig small_config() {
  SystemConfig c;
  c.deployment.total_nodes = 300;
  c.deployment.beacon_count = 30;
  c.deployment.malicious_beacon_count = 3;
  c.deployment.field = util::Rect::square(550.0);
  c.rtt_calibration_samples = 2000;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(1.0);
  c.paper_wormhole = false;
  c.seed = 11;
  return c;
}

sim::ArqConfig retries_on() {
  sim::ArqConfig arq;
  arq.enabled = true;
  arq.initial_timeout_ns = 250 * sim::kMillisecond;
  arq.max_retries = 4;
  return arq;
}

void expect_equal_summaries(const TrialSummary& a, const TrialSummary& b) {
  EXPECT_EQ(a.malicious_revoked, b.malicious_revoked);
  EXPECT_EQ(a.benign_revoked, b.benign_revoked);
  EXPECT_EQ(a.raw.probes_sent, b.raw.probes_sent);
  EXPECT_EQ(a.raw.probe_replies, b.raw.probe_replies);
  EXPECT_EQ(a.raw.alerts_submitted, b.raw.alerts_submitted);
  EXPECT_EQ(a.raw.consistency_flags, b.raw.consistency_flags);
  EXPECT_EQ(a.raw.sensor_requests, b.raw.sensor_requests);
  EXPECT_EQ(a.raw.sensor_replies, b.raw.sensor_replies);
  EXPECT_EQ(a.sensors_localized, b.sensors_localized);
  EXPECT_EQ(a.affected_sensor_references, b.affected_sensor_references);
  EXPECT_DOUBLE_EQ(a.mean_localization_error_ft,
                   b.mean_localization_error_ft);
  EXPECT_DOUBLE_EQ(a.max_localization_error_ft, b.max_localization_error_ft);
  EXPECT_DOUBLE_EQ(a.rtt_x_max_cycles, b.rtt_x_max_cycles);
  EXPECT_DOUBLE_EQ(a.radio_energy_uj, b.radio_energy_uj);
  EXPECT_EQ(a.channel.transmissions, b.channel.transmissions);
  EXPECT_EQ(a.channel.deliveries, b.channel.deliveries);
}

TEST(FaultTolerance, ZeroFaultPlanReproducesSeedTrialBitForBit) {
  // Explicitly spelling out every fault-layer default must not perturb a
  // single RNG draw or event relative to the untouched configuration.
  SystemConfig plain = small_config();

  SystemConfig spelled = small_config();
  spelled.faults = sim::FaultPlan{};
  spelled.faults.burst = sim::GilbertElliottConfig{};
  spelled.faults.crashes.clear();
  spelled.arq = sim::ArqConfig{};
  spelled.rtt_probe_repeats = 1;
  spelled.alert_loss_probability = 0.0;

  SecureLocalizationSystem a(plain), b(spelled);
  expect_equal_summaries(a.run(), b.run());
}

TEST(FaultTolerance, FaultCountersStayZeroWithoutFaults) {
  SecureLocalizationSystem sys(small_config());
  const auto s = sys.run();
  EXPECT_EQ(s.channel.dropped_by_fault, 0u);
  EXPECT_EQ(s.channel.duplicates, 0u);
  EXPECT_EQ(s.channel.corrupted, 0u);
  EXPECT_EQ(s.channel.crashed_drops, 0u);
  EXPECT_EQ(s.raw.probe_retransmissions, 0u);
  EXPECT_EQ(s.raw.probe_no_response, 0u);
  EXPECT_EQ(s.raw.sensor_retransmissions, 0u);
  EXPECT_EQ(s.raw.sensor_no_response, 0u);
  EXPECT_EQ(s.raw.alert_retransmissions, 0u);
  EXPECT_EQ(s.raw.alerts_delivery_failed, 0u);
}

TEST(FaultTolerance, DetectionUnderLossWithRetriesStaysNearBaseline) {
  // 10% i.i.d. loss with retries enabled must hold the detection rate
  // within a stated margin of the lossless baseline, with no new false
  // positives.
  ExperimentConfig baseline;
  baseline.base = small_config();
  baseline.trials = 3;
  const auto clean = run_experiment(baseline);

  ExperimentConfig lossy = baseline;
  lossy.base.faults.loss_probability = 0.1;
  lossy.base.alert_loss_probability = 0.1;
  lossy.base.arq = retries_on();
  const auto degraded = run_experiment(lossy);

  EXPECT_GE(degraded.detection_rate.mean(),
            clean.detection_rate.mean() - 0.15);
  EXPECT_LE(degraded.false_positive_rate.mean(),
            clean.false_positive_rate.mean() + 1e-9);
}

TEST(FaultTolerance, TimeoutsAreAccountedExplicitly) {
  // Heavy loss, detection-only timeout (no retries): every lost exchange
  // must surface as an explicit no-response outcome, not vanish.
  SystemConfig c = small_config();
  c.faults.loss_probability = 0.4;
  c.arq.enabled = true;
  c.arq.max_retries = 0;
  SecureLocalizationSystem sys(c);
  const auto s = sys.run();
  EXPECT_GT(s.channel.dropped_by_fault, 0u);
  EXPECT_GT(s.raw.probe_no_response, 0u);
  EXPECT_GT(s.raw.sensor_no_response, 0u);
  EXPECT_EQ(s.raw.probe_retransmissions, 0u);
  // Every probe either answered or timed out; nothing silently missing.
  EXPECT_EQ(s.raw.probe_replies + s.raw.probe_no_response,
            s.raw.probes_sent);
}

TEST(FaultTolerance, RetriesRecoverLostExchanges) {
  SystemConfig c = small_config();
  c.faults.loss_probability = 0.2;
  c.arq = retries_on();
  SecureLocalizationSystem sys(c);
  const auto s = sys.run();
  EXPECT_GT(s.raw.probe_retransmissions, 0u);
  // With 4 retries at 20% loss, per-exchange failure is ~(0.36)^5 per
  // round-trip; nearly every probe must complete.
  EXPECT_GT(s.raw.probe_replies,
            (s.raw.probes_sent * 95) / 100);
}

TEST(FaultTolerance, MedianOfKProbingMatchesSingleShotWhenClean) {
  // k > 1 changes traffic volume but on a clean channel must not change
  // what gets detected or revoked.
  SystemConfig single = small_config();
  SystemConfig tripled = small_config();
  tripled.rtt_probe_repeats = 3;
  SecureLocalizationSystem a(single), b(tripled);
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sb.raw.probes_sent, 3 * sa.raw.probes_sent);
  EXPECT_EQ(sa.malicious_revoked, sb.malicious_revoked);
  EXPECT_EQ(sa.benign_revoked, sb.benign_revoked);
}

TEST(FaultTolerance, CrashedBeaconGoesUndetectedButAccounted) {
  // Crash one malicious beacon for the whole probing phase: its probes
  // time out, it cannot be detected, and the drops are counted.
  SystemConfig c = small_config();
  SecureLocalizationSystem probe_sys(c);
  // Find a malicious beacon id from ground truth.
  sim::NodeId victim = 0;
  for (const auto& [id, truth] : probe_sys.context().truth) {
    if (truth.malicious) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, 0u);

  SystemConfig crashed = c;
  crashed.faults.crashes.push_back(
      sim::CrashWindow{victim, 0, 3600 * sim::kSecond});
  crashed.arq.enabled = true;
  crashed.arq.max_retries = 1;
  SecureLocalizationSystem sys(crashed);
  const auto s = sys.run();
  EXPECT_GT(s.channel.crashed_drops, 0u);
  EXPECT_GT(s.raw.probe_no_response, 0u);
  EXPECT_FALSE(sys.context().bs().is_revoked(victim));
}

TEST(FaultTolerance, LostAlertsLowerDetectionButRetriesRestoreIt) {
  // Alert transport loss without retries loses revocations; the same loss
  // with ARQ enabled recovers them. Deterministic seeds, so >= holds
  // trial-for-trial in aggregate.
  ExperimentConfig no_arq;
  no_arq.base = small_config();
  no_arq.base.alert_loss_probability = 0.5;
  no_arq.trials = 3;
  const auto dropped = run_experiment(no_arq);

  ExperimentConfig with_arq = no_arq;
  with_arq.base.arq = retries_on();
  const auto recovered = run_experiment(with_arq);

  EXPECT_GE(recovered.detection_rate.mean(), dropped.detection_rate.mean());
  ExperimentConfig clean = no_arq;
  clean.base.alert_loss_probability = 0.0;
  const auto baseline = run_experiment(clean);
  EXPECT_NEAR(recovered.detection_rate.mean(),
              baseline.detection_rate.mean(), 0.2);
}

}  // namespace
}  // namespace sld::core
