// Serial-vs-parallel equivalence suite for the trial executor
// (core/experiment.hpp `jobs`): the headline guarantee is that
// `jobs = N` produces byte-identical results to `jobs = 1` — every
// AggregateSummary statistic, every kept TrialSummary, the trace stream,
// the timeseries stream (separate or aliased with the trace sink), and
// the per-trial metrics_json rollups. The ONLY tolerated difference is
// host wall clock: AggregateSummary::trial_wall_ms and the `phase.*_ms`
// gauges, which reach both metrics_json and any `ts.window` record the
// sampler closes after a phase timer publishes — normalize_metrics()
// masks exactly those before comparing. Fixed cases cover each
// observability wiring; the property
// test sweeps random config shapes (faults, storm, telemetry, SLO rules,
// jobs counts) with SLD_PROP_SEED shrinking repro.
#include <gtest/gtest.h>

#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "prop/prop.hpp"
#include "sim/deployment.hpp"

namespace {

using sld::core::AggregateSummary;
using sld::core::ExperimentConfig;
using sld::core::SystemConfig;
using sld::util::RunningStat;

/// Paper density at ~1/5 scale: big enough that trials do real work
/// (probes, localization, revocation), small enough that the property
/// sweep stays in test-suite budget.
SystemConfig small_config(std::uint64_t seed) {
  SystemConfig c;
  c.deployment.total_nodes = 200;
  c.deployment.beacon_count = 20;
  c.deployment.malicious_beacon_count = 2;
  c.deployment.field = sld::util::Rect::square(450.0);
  c.rtt_calibration_samples = 500;
  c.strategy = sld::attack::MaliciousStrategyConfig::with_effectiveness(0.5);
  c.seed = seed;
  return c;
}

/// Masks the wall-clock gauges — the one carve-out in metrics_json AND in
/// `ts.window` records (the sampler snapshots every gauge, including the
/// phase timers, which measure the host rather than the simulation).
std::string normalize_metrics(const std::string& json) {
  static const std::regex phase_ms(
      R"("phase\.[A-Za-z0-9_.]+_ms":[-+0-9.eE]+)");
  return std::regex_replace(json, phase_ms, "\"phase_ms\":0");
}

/// Applies the wall-clock mask line-by-line to a buffered JSONL stream.
/// Everything else in the stream — ordering included — stays byte-exact.
std::vector<std::string> normalize_lines(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (const auto& line : lines) out.push_back(normalize_metrics(line));
  return out;
}

/// Everything one run produces, flattened for exact comparison.
struct RunOutput {
  AggregateSummary agg;
  std::vector<std::string> trace_lines;
  std::vector<std::string> timeseries_lines;
};

struct RunSpec {
  SystemConfig base;
  std::size_t trials = 4;
  bool trace_on = false;
  bool telemetry_on = false;
  /// Telemetry writes into the SAME sink as the trace stream (the
  /// interleaving-preserving case).
  bool alias_sinks = false;
  std::string slo_spec;
};

RunOutput run_with(const RunSpec& spec, std::size_t jobs) {
  RunOutput out;
  sld::obs::MemorySink trace_sink;
  sld::obs::MemorySink timeseries_sink;
  ExperimentConfig e;
  e.base = spec.base;
  e.trials = spec.trials;
  e.jobs = jobs;
  e.keep_trial_summaries = true;
  if (spec.trace_on) e.base.trace_sink = &trace_sink;
  if (spec.telemetry_on) {
    e.base.telemetry.enabled = true;
    e.base.telemetry.sink =
        spec.alias_sinks && spec.trace_on ? &trace_sink : &timeseries_sink;
    if (!spec.slo_spec.empty())
      e.base.slo_rules = sld::obs::parse_slo_spec(spec.slo_spec);
  }
  out.agg = sld::core::run_experiment(e);
  out.trace_lines = trace_sink.take_lines();
  out.timeseries_lines = timeseries_sink.take_lines();
  return out;
}

void append_stat(std::ostringstream& os, const RunningStat& stat) {
  os << std::hexfloat << stat.count() << ',' << stat.mean() << ','
     << stat.variance() << ',' << stat.min() << ',' << stat.max() << ';';
}

/// A lossless textual fingerprint of everything a run produced except the
/// wall-clock carve-out — two runs are byte-equivalent iff their
/// fingerprints compare equal. (Doubles print as hexfloat, so equality is
/// bitwise, not rounded.)
std::string fingerprint(const RunOutput& run) {
  std::ostringstream os;
  const AggregateSummary& a = run.agg;
  append_stat(os, a.detection_rate);
  append_stat(os, a.false_positive_rate);
  append_stat(os, a.affected_per_malicious);
  append_stat(os, a.mean_localization_error_ft);
  append_stat(os, a.requesters_per_malicious);
  append_stat(os, a.sensors_localized);
  append_stat(os, a.revocation_latency_ms);
  append_stat(os, a.radio_energy_uj);
  os << a.trial_wall_ms.count() << ';' << a.total_sched_events << ';'
     << a.total_packets << ';' << a.total_slo_breaches << ';'
     << a.slo_unhealthy_trials << '\n';
  for (const auto& t : a.trials) {
    os << std::hexfloat << t.malicious_revoked << ',' << t.benign_revoked
       << ',' << t.detection_rate << ',' << t.sensors_localized << ','
       << t.sched_events << ',' << t.channel.transmissions << ','
       << t.slo.breaches << ',' << t.slo.healthy << '\n';
    os << normalize_metrics(t.metrics_json) << '\n';
  }
  os << "--trace--\n";
  for (const auto& line : run.trace_lines)
    os << normalize_metrics(line) << '\n';
  os << "--timeseries--\n";
  for (const auto& line : run.timeseries_lines)
    os << normalize_metrics(line) << '\n';
  return os.str();
}

void expect_stat_eq(const RunningStat& serial, const RunningStat& parallel,
                    const char* what) {
  EXPECT_EQ(serial.count(), parallel.count()) << what;
  EXPECT_EQ(serial.mean(), parallel.mean()) << what;
  EXPECT_EQ(serial.variance(), parallel.variance()) << what;
  EXPECT_EQ(serial.min(), parallel.min()) << what;
  EXPECT_EQ(serial.max(), parallel.max()) << what;
}

void expect_equivalent(const RunOutput& serial, const RunOutput& parallel) {
  const AggregateSummary& s = serial.agg;
  const AggregateSummary& p = parallel.agg;
  expect_stat_eq(s.detection_rate, p.detection_rate, "detection_rate");
  expect_stat_eq(s.false_positive_rate, p.false_positive_rate,
                 "false_positive_rate");
  expect_stat_eq(s.affected_per_malicious, p.affected_per_malicious,
                 "affected_per_malicious");
  expect_stat_eq(s.mean_localization_error_ft, p.mean_localization_error_ft,
                 "mean_localization_error_ft");
  expect_stat_eq(s.requesters_per_malicious, p.requesters_per_malicious,
                 "requesters_per_malicious");
  expect_stat_eq(s.sensors_localized, p.sensors_localized,
                 "sensors_localized");
  expect_stat_eq(s.revocation_latency_ms, p.revocation_latency_ms,
                 "revocation_latency_ms");
  expect_stat_eq(s.radio_energy_uj, p.radio_energy_uj, "radio_energy_uj");
  // trial_wall_ms is deliberately NOT compared: host wall clock is the
  // documented nondeterminism carve-out (same count though — one sample
  // per trial).
  EXPECT_EQ(s.trial_wall_ms.count(), p.trial_wall_ms.count());
  EXPECT_EQ(s.total_sched_events, p.total_sched_events);
  EXPECT_EQ(s.total_packets, p.total_packets);
  EXPECT_EQ(s.total_slo_breaches, p.total_slo_breaches);
  EXPECT_EQ(s.slo_unhealthy_trials, p.slo_unhealthy_trials);

  ASSERT_EQ(s.trials.size(), p.trials.size());
  for (std::size_t i = 0; i < s.trials.size(); ++i) {
    const auto& st = s.trials[i];
    const auto& pt = p.trials[i];
    EXPECT_EQ(st.malicious_revoked, pt.malicious_revoked) << "trial " << i;
    EXPECT_EQ(st.benign_revoked, pt.benign_revoked) << "trial " << i;
    EXPECT_EQ(st.detection_rate, pt.detection_rate) << "trial " << i;
    EXPECT_EQ(st.sensors_localized, pt.sensors_localized) << "trial " << i;
    EXPECT_EQ(st.sched_events, pt.sched_events) << "trial " << i;
    EXPECT_EQ(st.channel.transmissions, pt.channel.transmissions)
        << "trial " << i;
    EXPECT_EQ(st.slo.breaches, pt.slo.breaches) << "trial " << i;
    EXPECT_EQ(st.slo.healthy, pt.slo.healthy) << "trial " << i;
    EXPECT_EQ(normalize_metrics(st.metrics_json),
              normalize_metrics(pt.metrics_json))
        << "trial " << i;
  }

  EXPECT_EQ(normalize_lines(serial.trace_lines),
            normalize_lines(parallel.trace_lines));
  EXPECT_EQ(normalize_lines(serial.timeseries_lines),
            normalize_lines(parallel.timeseries_lines));
}

TEST(ExecutorEquivalenceTest, AggregatesMatchSerialAcrossJobsCounts) {
  RunSpec spec;
  spec.base = small_config(42);
  spec.trials = 6;
  const RunOutput serial = run_with(spec, 1);
  for (const std::size_t jobs : {2u, 3u, 6u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_equivalent(serial, run_with(spec, jobs));
  }
}

TEST(ExecutorEquivalenceTest, JobsZeroMeansHardwareAndStaysEquivalent) {
  RunSpec spec;
  spec.base = small_config(7);
  spec.trials = 4;
  expect_equivalent(run_with(spec, 1), run_with(spec, 0));
}

TEST(ExecutorEquivalenceTest, TraceStreamIsByteIdentical) {
  RunSpec spec;
  spec.base = small_config(11);
  spec.trials = 4;
  spec.trace_on = true;
  const RunOutput serial = run_with(spec, 1);
  ASSERT_FALSE(serial.trace_lines.empty());
  expect_equivalent(serial, run_with(spec, 4));
}

TEST(ExecutorEquivalenceTest, SeparateTimeseriesStreamIsByteIdentical) {
  RunSpec spec;
  spec.base = small_config(13);
  spec.trials = 4;
  spec.trace_on = true;
  spec.telemetry_on = true;
  spec.slo_spec = "tx rate(channel.tx) >= 0; hot rate(channel.tx) > 1e12";
  const RunOutput serial = run_with(spec, 1);
  ASSERT_FALSE(serial.timeseries_lines.empty());
  expect_equivalent(serial, run_with(spec, 4));
}

TEST(ExecutorEquivalenceTest, AliasedSinkPreservesInterleaving) {
  // Telemetry and trace share one sink: ts.meta / ts.window records must
  // land between the same trace records as in the serial run, not merely
  // in some order.
  RunSpec spec;
  spec.base = small_config(17);
  spec.trials = 5;
  spec.trace_on = true;
  spec.telemetry_on = true;
  spec.alias_sinks = true;
  const RunOutput serial = run_with(spec, 1);
  ASSERT_FALSE(serial.trace_lines.empty());
  bool saw_ts_line = false;
  for (const auto& line : serial.trace_lines)
    if (line.find("\"ts.") != std::string::npos) saw_ts_line = true;
  EXPECT_TRUE(saw_ts_line) << "aliased stream carries no telemetry";
  expect_equivalent(serial, run_with(spec, 3));
}

TEST(ExecutorEquivalenceTest, MoreJobsThanTrialsClampsAndMatches) {
  RunSpec spec;
  spec.base = small_config(19);
  spec.trials = 2;
  expect_equivalent(run_with(spec, 1), run_with(spec, 16));
}

TEST(ExecutorEquivalenceTest, PropRandomConfigShapesStayEquivalent) {
  // One 64-bit case seed drives every knob: deployment seed, trial count,
  // jobs, fault injection, alert storm, telemetry wiring. The predicate
  // reruns the identical experiment at jobs=1 and jobs=N and demands the
  // full fingerprint match; on failure prop shrinks toward the smallest
  // failing shape and prints the SLD_PROP_SEED repro line.
  auto gen = sld::prop::int_range(0, (1LL << 40));
  sld::prop::Config cfg;
  cfg.iterations = 6;
  sld::prop::forall<std::int64_t>(
      "jobs=N output equals jobs=1 output", gen,
      [](const std::int64_t& knobs) {
        const auto u = static_cast<std::uint64_t>(knobs);
        RunSpec spec;
        spec.base = small_config(1000 + (u & 0xffff));
        spec.trials = 2 + ((u >> 16) & 3);          // 2..5
        const std::size_t jobs = 2 + ((u >> 18) & 3);  // 2..5
        if ((u >> 20) & 1)
          spec.base.faults.loss_probability = 0.05;
        if ((u >> 21) & 1) {
          spec.base.collusion = true;
          spec.base.storm.flood_alerts_per_colluder = 20;
        }
        spec.trace_on = ((u >> 22) & 1) != 0;
        spec.telemetry_on = ((u >> 23) & 1) != 0;
        spec.alias_sinks = ((u >> 24) & 1) != 0;
        if (spec.telemetry_on && ((u >> 25) & 1))
          spec.slo_spec = "tx rate(channel.tx) >= 0";
        return fingerprint(run_with(spec, 1)) ==
               fingerprint(run_with(spec, jobs));
      },
      cfg);
}

}  // namespace
