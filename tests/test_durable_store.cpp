// Durable-store semantics: WAL append/flush, fsync loss windows, snapshot
// compaction, and restore() reproducing the station state exactly.
#include "revocation/durable_store.hpp"

#include <gtest/gtest.h>

namespace sld::revocation {
namespace {

RevocationConfig revocation(std::uint32_t tau1 = 10, std::uint32_t tau2 = 2) {
  RevocationConfig c;
  c.report_quota = tau1;
  c.alert_threshold = tau2;
  return c;
}

DurableConfig durable(std::uint32_t fsync = 1, std::uint32_t snap = 64) {
  DurableConfig d;
  d.enabled = true;
  d.fsync_every_records = fsync;
  d.snapshot_every_records = snap;
  return d;
}

/// Feeds `n` accepted alerts (distinct reporters, one target) through a
/// station + store pair, exactly the way the cluster journals them.
void feed(BaseStation& bs, DurableStore& store, sim::NodeId target,
          std::uint32_t n, std::uint64_t nonce_base = 1000) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const AlertKey key{100 + i, target, nonce_base + i};
    const auto d = bs.process_alert(key.reporter, key.target, key.nonce);
    ASSERT_TRUE(d == AlertDisposition::kAccepted ||
                d == AlertDisposition::kAcceptedAndRevoked);
    store.append(key, bs);
  }
}

TEST(DurableStore, DisabledStoreRestoresEmptyStation) {
  DurableStore store{DurableConfig{}};
  BaseStation bs(revocation());
  feed(bs, store, 50, 3);
  EXPECT_EQ(store.stats().appends, 0u);
  const BaseStation restored = store.restore(revocation());
  EXPECT_EQ(restored.alert_counter(50), 0u);
  EXPECT_FALSE(restored.is_revoked(50));
}

TEST(DurableStore, FsyncEveryRecordLosesNothing) {
  DurableStore store(durable(/*fsync=*/1));
  BaseStation bs(revocation());
  feed(bs, store, 50, 3);  // third alert crosses tau2 = 2
  EXPECT_TRUE(bs.is_revoked(50));
  store.drop_pending();  // crash: nothing pending, nothing lost
  EXPECT_EQ(store.stats().records_lost, 0u);
  const BaseStation restored = store.restore(revocation());
  EXPECT_TRUE(restored.is_revoked(50));
  EXPECT_EQ(restored.alert_counter(50), 3u);
  EXPECT_EQ(restored.revocation_order(), bs.revocation_order());
}

TEST(DurableStore, CrashLosesExactlyTheUnflushedSuffix) {
  // Group commit every 4 records; 6 appends -> 4 durable, 2 pending.
  DurableStore store(durable(/*fsync=*/4));
  BaseStation bs(revocation(10, 100));
  feed(bs, store, 50, 6);
  EXPECT_EQ(store.tail_records(), 4u);
  EXPECT_EQ(store.pending_records(), 2u);
  store.drop_pending();
  EXPECT_EQ(store.stats().records_lost, 2u);
  EXPECT_EQ(store.durable_alerts(50), 4u);
  EXPECT_EQ(store.lost_alerts(50), 2u);
  const BaseStation restored = store.restore(revocation(10, 100));
  // The loss is bounded by the fsync window: at most fsync - 1 records.
  EXPECT_EQ(restored.alert_counter(50), 4u);
  EXPECT_GE(restored.alert_counter(50) + store.config().fsync_every_records,
            bs.alert_counter(50) + 1);
}

TEST(DurableStore, SnapshotCompactionPreservesExactState) {
  // Snapshot every 4 flushed records: 11 appends -> at least one snapshot,
  // and restore() must still reproduce the live station exactly.
  DurableStore store(durable(/*fsync=*/1, /*snap=*/4));
  BaseStation bs(revocation(100, 5));
  feed(bs, store, 50, 6);  // sixth alert crosses tau2 = 5: 50 is revoked
  feed(bs, store, 60, 5, /*nonce_base=*/2000);
  EXPECT_TRUE(store.has_snapshot());
  EXPECT_GT(store.stats().snapshots, 0u);
  EXPECT_LT(store.tail_records(), 11u);
  const BaseStation restored = store.restore(revocation(100, 5));
  EXPECT_EQ(restored.alert_counter(50), bs.alert_counter(50));
  EXPECT_EQ(restored.alert_counter(60), bs.alert_counter(60));
  EXPECT_TRUE(restored.is_revoked(50));
  EXPECT_FALSE(restored.is_revoked(60));
  EXPECT_EQ(restored.revocation_order(), bs.revocation_order());
  EXPECT_EQ(store.durable_alerts(50), 6u);
  EXPECT_EQ(store.durable_alerts(60), 5u);
}

TEST(DurableStore, RestoredStationDedupsReplayedCopies) {
  DurableStore store(durable());
  BaseStation bs(revocation());
  feed(bs, store, 50, 2, /*nonce_base=*/7000);
  BaseStation restored = store.restore(revocation());
  // A transport copy of an already-journaled alert is a duplicate.
  EXPECT_EQ(restored.process_alert(100, 50, 7000),
            AlertDisposition::kIgnoredDuplicate);
  EXPECT_EQ(restored.alert_counter(50), 2u);
}

TEST(DurableStore, RestoreIsRepeatable) {
  // restore() is const: two restores from the same store agree.
  DurableStore store(durable(/*fsync=*/2, /*snap=*/3));
  BaseStation bs(revocation(100, 100));
  feed(bs, store, 50, 9);
  const BaseStation r1 = store.restore(revocation(100, 100));
  const BaseStation r2 = store.restore(revocation(100, 100));
  EXPECT_EQ(r1.alert_counter(50), r2.alert_counter(50));
  EXPECT_EQ(r1.revocation_order(), r2.revocation_order());
  EXPECT_EQ(r1.stats().alerts_accepted, r2.stats().alerts_accepted);
}

TEST(DurableStore, StalledAppendsStayPendingPastFsyncCadence) {
  // fsync-every-1 normally flushes each append; inside a stall window the
  // records ride the pending buffer instead, each counted as a stalled
  // append (the widened loss window the chaos oracle charges for).
  DurableConfig d = durable(/*fsync=*/1);
  d.stall_windows = {{1 * sim::kSecond, 3 * sim::kSecond}};
  DurableStore store(d);
  BaseStation bs(revocation(100, 100));

  store.advance(500 * sim::kMillisecond);
  EXPECT_FALSE(store.stalled());
  feed(bs, store, 50, 2);
  EXPECT_EQ(store.pending_records(), 0u);

  store.advance(1500 * sim::kMillisecond);
  EXPECT_TRUE(store.stalled());
  feed(bs, store, 50, 3, /*nonce_base=*/2000);
  EXPECT_EQ(store.stats().stalled_appends, 3u);
  EXPECT_EQ(store.pending_records(), 3u);
  EXPECT_EQ(store.durable_alerts(50), 2u);
  // flush() is a no-op while the device is stalled.
  store.flush();
  EXPECT_EQ(store.pending_records(), 3u);
}

TEST(DurableStore, StallClearanceFlushesTheBacklog) {
  DurableConfig d = durable(/*fsync=*/4);
  d.stall_windows = {{0, 2 * sim::kSecond}};
  DurableStore store(d);
  BaseStation bs(revocation(100, 100));

  store.advance(1 * sim::kSecond);
  feed(bs, store, 50, 5);
  EXPECT_EQ(store.pending_records(), 5u);
  // Advancing past the window end flushes the >= fsync backlog at once.
  store.advance(2500 * sim::kMillisecond);
  EXPECT_FALSE(store.stalled());
  EXPECT_EQ(store.pending_records(), 0u);
  EXPECT_EQ(store.durable_alerts(50), 5u);
  EXPECT_EQ(store.stats().records_lost, 0u);
}

TEST(DurableStore, CrashDuringStallLosesTheStalledRecords) {
  // A crash mid-stall loses every record the stall kept pending — more
  // than the fsync interval alone would bound, which is exactly what
  // stats().stalled_appends lets the oracles account for.
  DurableConfig d = durable(/*fsync=*/1);
  d.stall_windows = {{0, 10 * sim::kSecond}};
  DurableStore store(d);
  BaseStation bs(revocation(100, 100));

  store.advance(1 * sim::kSecond);
  feed(bs, store, 50, 4);
  ASSERT_EQ(store.pending_records(), 4u);
  store.drop_pending();
  EXPECT_EQ(store.stats().records_lost, 4u);
  EXPECT_EQ(store.lost_alerts(50), 4u);
  EXPECT_EQ(store.durable_alerts(50), 0u);
  const BaseStation restored = store.restore(revocation(100, 100));
  EXPECT_EQ(restored.alert_counter(50), 0u);
}

/// tau1 = 10, tau2 = 2, lifecycle on — the framing-resistant station.
RevocationConfig lifecycle_revocation() {
  RevocationConfig rc;
  rc.lifecycle.enabled = true;
  return rc;
}

/// The cross-shaped roster used by the lifecycle tests: target 50 plus
/// four geometrically independent witnesses in its cell.
std::vector<std::pair<sim::NodeId, util::Vec2>> cross_roster() {
  return {{50, {100.0, 100.0}},
          {1, {100.0, 140.0}},
          {2, {140.0, 100.0}},
          {3, {60.0, 100.0}},
          {4, {100.0, 60.0}}};
}

BaseStation lifecycle_station() {
  BaseStation bs(lifecycle_revocation());
  for (const auto& [id, pos] : cross_roster()) bs.register_beacon(id, pos);
  return bs;
}

/// Feeds timed accepted alerts through a station + store pair the way the
/// cluster journals them (timed WAL records).
void feed_timed(BaseStation& bs, DurableStore& store, sim::NodeId target,
                const std::vector<std::pair<sim::NodeId, sim::SimTime>>&
                    reporters_at) {
  std::uint64_t nonce = 5000;
  for (const auto& [reporter, at] : reporters_at) {
    const AlertKey key{reporter, target, nonce++};
    const auto d = bs.process_alert(key.reporter, key.target, key.nonce, at);
    ASSERT_TRUE(d == AlertDisposition::kAccepted ||
                d == AlertDisposition::kAcceptedAndRevoked);
    store.append(key, at, bs);
  }
}

TEST(DurableStoreLifecycle, MidQuarantineRestoreIsByteIdentical) {
  DurableStore store(durable(/*fsync=*/1));
  store.set_beacon_roster(cross_roster());
  BaseStation live = lifecycle_station();
  // Three independent witnesses over ~a minute: quarantined, not revoked.
  feed_timed(live, store, 50,
             {{1, 10 * sim::kSecond},
              {2, 30 * sim::kSecond},
              {3, 60 * sim::kSecond}});
  ASSERT_TRUE(live.is_quarantined(50, 60 * sim::kSecond));
  ASSERT_FALSE(live.is_revoked(50));

  const BaseStation restored = store.restore(lifecycle_revocation());
  // The full lifecycle image — decayed evidence doubles, phases, reporter
  // sets — survives the crash byte-for-byte.
  EXPECT_EQ(restored.export_state().lifecycle,
            live.export_state().lifecycle);
  EXPECT_TRUE(restored.is_quarantined(50, 60 * sim::kSecond));
  EXPECT_EQ(restored.evidence(50, 90 * sim::kSecond),
            live.evidence(50, 90 * sim::kSecond));

  // Both continue identically: a fourth witness + a repeat revoke on both.
  BaseStation continued = store.restore(lifecycle_revocation());
  BaseStation mirror = live;
  for (BaseStation* bs : {&continued, &mirror}) {
    bs->process_alert(4, 50, 9001, 70 * sim::kSecond);
    bs->process_alert(1, 50, 9002, 80 * sim::kSecond);
  }
  EXPECT_TRUE(continued.is_revoked(50));
  EXPECT_EQ(continued.export_state().lifecycle,
            mirror.export_state().lifecycle);
}

TEST(DurableStoreLifecycle, SnapshotCompactionKeepsDecayState) {
  // Snapshot every 2 flushed records: the image (not just the log tail)
  // must carry evidence and last_update.
  DurableStore store(durable(/*fsync=*/1, /*snap=*/2));
  store.set_beacon_roster(cross_roster());
  BaseStation live = lifecycle_station();
  feed_timed(live, store, 50,
             {{1, 10 * sim::kSecond},
              {2, 200 * sim::kSecond},
              {3, 500 * sim::kSecond},
              {4, 700 * sim::kSecond}});
  ASSERT_TRUE(store.has_snapshot());
  const BaseStation restored = store.restore(lifecycle_revocation());
  EXPECT_EQ(restored.export_state().lifecycle,
            live.export_state().lifecycle);
  EXPECT_EQ(restored.evidence(50, 900 * sim::kSecond),
            live.evidence(50, 900 * sim::kSecond));
  EXPECT_EQ(restored.lifecycle_phase(50, 700 * sim::kSecond),
            live.lifecycle_phase(50, 700 * sim::kSecond));
}

TEST(DurableStoreLifecycle, CrashLosesUnflushedEvidence) {
  // Group commit every 4: the 4th (revoking) record is durable, the 5th
  // is pending and dies with the crash — the restored station is back to
  // the durable prefix's lifecycle exactly.
  DurableStore store(durable(/*fsync=*/4));
  store.set_beacon_roster(cross_roster());
  BaseStation live = lifecycle_station();
  feed_timed(live, store, 50,
             {{1, 1 * sim::kSecond},
              {2, 2 * sim::kSecond},
              {3, 3 * sim::kSecond}});
  feed_timed(live, store, 60, {{4, 4 * sim::kSecond}});
  feed_timed(live, store, 50, {{4, 5 * sim::kSecond}});
  ASSERT_EQ(store.pending_records(), 1u);
  store.drop_pending();

  const BaseStation restored = store.restore(lifecycle_revocation());
  // Live saw 4 distinct reporters against 50; the durable prefix saw 3.
  EXPECT_EQ(live.lifecycle().distinct_reporters(50), 4u);
  EXPECT_EQ(restored.lifecycle().distinct_reporters(50), 3u);
  EXPECT_TRUE(restored.is_quarantined(50, 5 * sim::kSecond));
  EXPECT_LT(restored.evidence(50, 5 * sim::kSecond),
            live.evidence(50, 5 * sim::kSecond));
}

TEST(DurableStore, InvalidConfigRejected) {
  DurableConfig zero_fsync = durable();
  zero_fsync.fsync_every_records = 0;
  EXPECT_THROW(DurableStore{zero_fsync}, std::invalid_argument);
  DurableConfig zero_snap = durable();
  zero_snap.snapshot_every_records = 0;
  EXPECT_THROW(DurableStore{zero_snap}, std::invalid_argument);
}

}  // namespace
}  // namespace sld::revocation
