// Durable-store semantics: WAL append/flush, fsync loss windows, snapshot
// compaction, and restore() reproducing the station state exactly.
#include "revocation/durable_store.hpp"

#include <gtest/gtest.h>

namespace sld::revocation {
namespace {

RevocationConfig revocation(std::uint32_t tau1 = 10, std::uint32_t tau2 = 2) {
  return RevocationConfig{tau1, tau2};
}

DurableConfig durable(std::uint32_t fsync = 1, std::uint32_t snap = 64) {
  DurableConfig d;
  d.enabled = true;
  d.fsync_every_records = fsync;
  d.snapshot_every_records = snap;
  return d;
}

/// Feeds `n` accepted alerts (distinct reporters, one target) through a
/// station + store pair, exactly the way the cluster journals them.
void feed(BaseStation& bs, DurableStore& store, sim::NodeId target,
          std::uint32_t n, std::uint64_t nonce_base = 1000) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const AlertKey key{100 + i, target, nonce_base + i};
    const auto d = bs.process_alert(key.reporter, key.target, key.nonce);
    ASSERT_TRUE(d == AlertDisposition::kAccepted ||
                d == AlertDisposition::kAcceptedAndRevoked);
    store.append(key, bs);
  }
}

TEST(DurableStore, DisabledStoreRestoresEmptyStation) {
  DurableStore store{DurableConfig{}};
  BaseStation bs(revocation());
  feed(bs, store, 50, 3);
  EXPECT_EQ(store.stats().appends, 0u);
  const BaseStation restored = store.restore(revocation());
  EXPECT_EQ(restored.alert_counter(50), 0u);
  EXPECT_FALSE(restored.is_revoked(50));
}

TEST(DurableStore, FsyncEveryRecordLosesNothing) {
  DurableStore store(durable(/*fsync=*/1));
  BaseStation bs(revocation());
  feed(bs, store, 50, 3);  // third alert crosses tau2 = 2
  EXPECT_TRUE(bs.is_revoked(50));
  store.drop_pending();  // crash: nothing pending, nothing lost
  EXPECT_EQ(store.stats().records_lost, 0u);
  const BaseStation restored = store.restore(revocation());
  EXPECT_TRUE(restored.is_revoked(50));
  EXPECT_EQ(restored.alert_counter(50), 3u);
  EXPECT_EQ(restored.revocation_order(), bs.revocation_order());
}

TEST(DurableStore, CrashLosesExactlyTheUnflushedSuffix) {
  // Group commit every 4 records; 6 appends -> 4 durable, 2 pending.
  DurableStore store(durable(/*fsync=*/4));
  BaseStation bs(revocation(10, 100));
  feed(bs, store, 50, 6);
  EXPECT_EQ(store.tail_records(), 4u);
  EXPECT_EQ(store.pending_records(), 2u);
  store.drop_pending();
  EXPECT_EQ(store.stats().records_lost, 2u);
  EXPECT_EQ(store.durable_alerts(50), 4u);
  EXPECT_EQ(store.lost_alerts(50), 2u);
  const BaseStation restored = store.restore(revocation(10, 100));
  // The loss is bounded by the fsync window: at most fsync - 1 records.
  EXPECT_EQ(restored.alert_counter(50), 4u);
  EXPECT_GE(restored.alert_counter(50) + store.config().fsync_every_records,
            bs.alert_counter(50) + 1);
}

TEST(DurableStore, SnapshotCompactionPreservesExactState) {
  // Snapshot every 4 flushed records: 11 appends -> at least one snapshot,
  // and restore() must still reproduce the live station exactly.
  DurableStore store(durable(/*fsync=*/1, /*snap=*/4));
  BaseStation bs(revocation(100, 5));
  feed(bs, store, 50, 6);  // sixth alert crosses tau2 = 5: 50 is revoked
  feed(bs, store, 60, 5, /*nonce_base=*/2000);
  EXPECT_TRUE(store.has_snapshot());
  EXPECT_GT(store.stats().snapshots, 0u);
  EXPECT_LT(store.tail_records(), 11u);
  const BaseStation restored = store.restore(revocation(100, 5));
  EXPECT_EQ(restored.alert_counter(50), bs.alert_counter(50));
  EXPECT_EQ(restored.alert_counter(60), bs.alert_counter(60));
  EXPECT_TRUE(restored.is_revoked(50));
  EXPECT_FALSE(restored.is_revoked(60));
  EXPECT_EQ(restored.revocation_order(), bs.revocation_order());
  EXPECT_EQ(store.durable_alerts(50), 6u);
  EXPECT_EQ(store.durable_alerts(60), 5u);
}

TEST(DurableStore, RestoredStationDedupsReplayedCopies) {
  DurableStore store(durable());
  BaseStation bs(revocation());
  feed(bs, store, 50, 2, /*nonce_base=*/7000);
  BaseStation restored = store.restore(revocation());
  // A transport copy of an already-journaled alert is a duplicate.
  EXPECT_EQ(restored.process_alert(100, 50, 7000),
            AlertDisposition::kIgnoredDuplicate);
  EXPECT_EQ(restored.alert_counter(50), 2u);
}

TEST(DurableStore, RestoreIsRepeatable) {
  // restore() is const: two restores from the same store agree.
  DurableStore store(durable(/*fsync=*/2, /*snap=*/3));
  BaseStation bs(revocation(100, 100));
  feed(bs, store, 50, 9);
  const BaseStation r1 = store.restore(revocation(100, 100));
  const BaseStation r2 = store.restore(revocation(100, 100));
  EXPECT_EQ(r1.alert_counter(50), r2.alert_counter(50));
  EXPECT_EQ(r1.revocation_order(), r2.revocation_order());
  EXPECT_EQ(r1.stats().alerts_accepted, r2.stats().alerts_accepted);
}

TEST(DurableStore, StalledAppendsStayPendingPastFsyncCadence) {
  // fsync-every-1 normally flushes each append; inside a stall window the
  // records ride the pending buffer instead, each counted as a stalled
  // append (the widened loss window the chaos oracle charges for).
  DurableConfig d = durable(/*fsync=*/1);
  d.stall_windows = {{1 * sim::kSecond, 3 * sim::kSecond}};
  DurableStore store(d);
  BaseStation bs(revocation(100, 100));

  store.advance(500 * sim::kMillisecond);
  EXPECT_FALSE(store.stalled());
  feed(bs, store, 50, 2);
  EXPECT_EQ(store.pending_records(), 0u);

  store.advance(1500 * sim::kMillisecond);
  EXPECT_TRUE(store.stalled());
  feed(bs, store, 50, 3, /*nonce_base=*/2000);
  EXPECT_EQ(store.stats().stalled_appends, 3u);
  EXPECT_EQ(store.pending_records(), 3u);
  EXPECT_EQ(store.durable_alerts(50), 2u);
  // flush() is a no-op while the device is stalled.
  store.flush();
  EXPECT_EQ(store.pending_records(), 3u);
}

TEST(DurableStore, StallClearanceFlushesTheBacklog) {
  DurableConfig d = durable(/*fsync=*/4);
  d.stall_windows = {{0, 2 * sim::kSecond}};
  DurableStore store(d);
  BaseStation bs(revocation(100, 100));

  store.advance(1 * sim::kSecond);
  feed(bs, store, 50, 5);
  EXPECT_EQ(store.pending_records(), 5u);
  // Advancing past the window end flushes the >= fsync backlog at once.
  store.advance(2500 * sim::kMillisecond);
  EXPECT_FALSE(store.stalled());
  EXPECT_EQ(store.pending_records(), 0u);
  EXPECT_EQ(store.durable_alerts(50), 5u);
  EXPECT_EQ(store.stats().records_lost, 0u);
}

TEST(DurableStore, CrashDuringStallLosesTheStalledRecords) {
  // A crash mid-stall loses every record the stall kept pending — more
  // than the fsync interval alone would bound, which is exactly what
  // stats().stalled_appends lets the oracles account for.
  DurableConfig d = durable(/*fsync=*/1);
  d.stall_windows = {{0, 10 * sim::kSecond}};
  DurableStore store(d);
  BaseStation bs(revocation(100, 100));

  store.advance(1 * sim::kSecond);
  feed(bs, store, 50, 4);
  ASSERT_EQ(store.pending_records(), 4u);
  store.drop_pending();
  EXPECT_EQ(store.stats().records_lost, 4u);
  EXPECT_EQ(store.lost_alerts(50), 4u);
  EXPECT_EQ(store.durable_alerts(50), 0u);
  const BaseStation restored = store.restore(revocation(100, 100));
  EXPECT_EQ(restored.alert_counter(50), 0u);
}

TEST(DurableStore, InvalidConfigRejected) {
  DurableConfig zero_fsync = durable();
  zero_fsync.fsync_every_records = 0;
  EXPECT_THROW(DurableStore{zero_fsync}, std::invalid_argument);
  DurableConfig zero_snap = durable();
  zero_snap.snapshot_every_records = 0;
  EXPECT_THROW(DurableStore{zero_snap}, std::invalid_argument);
}

}  // namespace
}  // namespace sld::revocation
