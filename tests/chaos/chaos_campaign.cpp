// Chaos campaign: seeded randomized fault schedules against full trials.
//
// Each schedule is a pure function of one 64-bit seed: it draws node
// crash/reboot windows, network partitions, clock drift, packet loss /
// duplication / corruption, and base-station outages (always WAL-backed,
// sometimes with a standby), then runs one complete trial and checks the
// convergence oracles that must hold under ANY such schedule:
//
//   1. no benign beacon is ever revoked;
//   2. every sensor is accounted for (localized + unlocalized == sensors);
//   3. channel packet conservation across every fault outcome;
//   4. counter identity: for every alert target,
//        alert_counter(t) + wal.lost_alerts(t) == accepted_distinct(t),
//      and revocation fires exactly when the counter exceeds tau2 — i.e.
//      accepted evidence beyond the threshold (minus the bounded fsync
//      loss window) ALWAYS converges to revocation;
//   5. WAL loss is bounded by the fsync window per primary crash;
//   6. zero SLD_INVARIANT violations (meaningful when the binary is built
//      with -DSLD_INVARIANTS=ON; tools/run_chaos.sh does exactly that).
//
// A failing schedule prints a one-line repro:
//   SLD_CHAOS_SEED=<seed> ./chaos_campaign
// and, when --trace-dir is given, deterministically re-runs that schedule
// with a JSONL trace sink so CI can archive the full event forensics.
//
// Not a gtest: the campaign is a standalone binary so tools/run_chaos.sh
// and the ctest chaos_smoke entry can scale schedule counts independently.
//
// `--jobs N` fans the schedules across a WorkStealingPool (each schedule
// is an independent pure function of its seed); results are buffered per
// seed and reported in seed order, so the report — and the exit code — is
// identical to a serial campaign (`--selftest-jobs N` asserts exactly
// that). Invariant recording is thread-local, so concurrent schedules
// attribute violations to the schedule that raised them. Failure-trace
// re-runs and SLD_CHAOS_SEED replays always run serially.
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "core/executor.hpp"
#include "core/secure_localization.hpp"
#include "obs/trace.hpp"
#include "sim/deployment.hpp"
#include "util/rng.hpp"

namespace {

using namespace sld;

// ---------------------------------------------------------------------------
// Invariant recording. The handler and message buffer are thread-local:
// with --jobs, schedules run concurrently on pool workers, and each trial
// must capture exactly the violations its own thread raised
// (check::set_thread_invariant_handler overrides the process handler for
// the installing thread only).

thread_local std::vector<std::string> t_invariant_messages;

void recording_handler(const check::InvariantViolation& v) {
  if (t_invariant_messages.size() < 8) {
    std::ostringstream os;
    os << v.file << ":" << v.line << ": " << v.condition << " — "
       << v.message;
    t_invariant_messages.push_back(os.str());
  }
}

// ---------------------------------------------------------------------------
// Schedule generation: SystemConfig as a pure function of (seed, fast).

struct CampaignOptions {
  std::size_t schedules = 50;
  std::uint64_t base_seed = 1;
  bool fast = false;
  bool storm_only = false;
  bool framing_only = false;
  std::string trace_dir;
  /// Concurrent schedules: 1 = the classic serial campaign, 0 = hardware
  /// threads. Reporting is seed-ordered either way.
  std::size_t jobs = 1;
  /// When nonzero: run N schedules at --jobs 1 and again at --jobs 4 and
  /// demand identical per-seed verdicts and failure reports.
  std::size_t selftest_jobs = 0;
};

core::SystemConfig make_schedule(std::uint64_t seed, bool fast,
                                 bool storm_only, bool framing_only) {
  core::SystemConfig c;
  c.deployment.total_nodes = fast ? 200 : 300;
  c.deployment.beacon_count = fast ? 20 : 30;
  c.deployment.malicious_beacon_count = fast ? 2 : 3;
  c.deployment.field = util::Rect::square(fast ? 460.0 : 550.0);
  c.rtt_calibration_samples = fast ? 1000 : 2000;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(1.0);
  c.paper_wormhole = false;
  c.seed = seed;

  // All schedule randomness comes from a dedicated stream so the system's
  // own seed-derived streams stay untouched.
  util::Rng rng = util::Rng(seed).fork(0xc4a05);
  const std::uint32_t beacons =
      static_cast<std::uint32_t>(c.deployment.beacon_count);
  const std::uint32_t sensors = static_cast<std::uint32_t>(
      c.deployment.total_nodes - c.deployment.beacon_count);
  auto random_node = [&]() -> sim::NodeId {
    if (rng.bernoulli(0.5)) {
      return sim::kFirstBeaconId +
             static_cast<sim::NodeId>(rng.uniform_u64(beacons));
    }
    return sim::kNonBeaconIdBase +
           static_cast<sim::NodeId>(rng.uniform_u64(sensors));
  };

  // Alerts must survive transient outages: retries are always on.
  c.arq.enabled = true;
  c.arq.initial_timeout_ns = 250 * sim::kMillisecond;
  c.arq.max_retries = static_cast<std::size_t>(rng.uniform_int(4, 8));
  c.arq.jitter_fraction = 0.1;

  // Channel-level chaos.
  static constexpr double kLossChoices[] = {0.0, 0.05, 0.10};
  c.faults.loss_probability =
      kLossChoices[rng.uniform_u64(std::size(kLossChoices))];
  if (rng.bernoulli(0.3)) c.faults.duplicate_probability = 0.05;
  if (rng.bernoulli(0.2)) c.faults.corruption_probability = 0.01;
  if (rng.bernoulli(0.5)) {
    c.faults.clock_drift.max_drift_ppm = rng.uniform(10.0, 100.0);
  }

  // Crash/reboot windows: up to 4 distinct victims, windows inside the
  // probing + early sensor phase so both phases see reboots.
  const auto crash_count = rng.uniform_u64(5);  // 0..4
  for (std::uint64_t i = 0; i < crash_count; ++i) {
    const sim::NodeId victim = random_node();
    bool duplicate = false;
    for (const auto& w : c.faults.crashes) duplicate |= (w.node == victim);
    if (duplicate) continue;  // one window per node keeps reboots ordered
    const auto start = static_cast<sim::SimTime>(
        rng.uniform(0.0, 60.0) * static_cast<double>(sim::kSecond));
    const auto duration = static_cast<sim::SimTime>(
        rng.uniform(0.5, 20.0) * static_cast<double>(sim::kSecond));
    c.faults.crashes.push_back(sim::CrashWindow{victim, start, start + duration});
  }

  // Network bipartitions: up to 2 cuts of up to a quarter of the field.
  const auto partition_count = rng.uniform_u64(3);  // 0..2
  for (std::uint64_t i = 0; i < partition_count; ++i) {
    sim::PartitionWindow w;
    const auto side = 1 + rng.uniform_u64(c.deployment.total_nodes / 4);
    for (std::uint64_t k = 0; k < side; ++k) w.side_a.push_back(random_node());
    w.start = static_cast<sim::SimTime>(
        rng.uniform(0.0, 60.0) * static_cast<double>(sim::kSecond));
    w.end = w.start + static_cast<sim::SimTime>(
        rng.uniform(0.5, 10.0) * static_cast<double>(sim::kSecond));
    c.faults.partitions.push_back(std::move(w));
  }

  // Base-station chaos. Outages ALWAYS pair with a WAL: an outage without
  // durable state restores an empty station, which legitimately breaks the
  // convergence oracle (that pairing is rejected as a config error by the
  // oracle below, not a detection bug).
  switch (rng.uniform_u64(3)) {
    case 0:  // immortal station (but durable bookkeeping half the time)
      c.failover.durable.enabled = rng.bernoulli(0.5);
      break;
    case 1: {  // crash/restart: 1-2 short outages against the alert burst
      c.failover.durable.enabled = true;
      static constexpr std::uint32_t kFsyncChoices[] = {1, 2, 4};
      c.failover.durable.fsync_every_records =
          kFsyncChoices[rng.uniform_u64(std::size(kFsyncChoices))];
      c.failover.durable.snapshot_every_records = 16;
      sim::SimTime cursor = static_cast<sim::SimTime>(
          rng.uniform(0.0, 2.0) * static_cast<double>(sim::kSecond));
      const auto outages = 1 + rng.uniform_u64(2);
      for (std::uint64_t i = 0; i < outages; ++i) {
        const auto duration = static_cast<sim::SimTime>(
            rng.uniform(0.5, 5.0) * static_cast<double>(sim::kSecond));
        c.failover.primary_outages.push_back({cursor, cursor + duration});
        cursor += duration + static_cast<sim::SimTime>(
            rng.uniform(2.0, 10.0) * static_cast<double>(sim::kSecond));
      }
      break;
    }
    default: {  // standby failover: primary may never come back
      c.failover.durable.enabled = true;
      c.failover.standby_enabled = true;
      const auto start = static_cast<sim::SimTime>(
          rng.uniform(0.0, 5.0) * static_cast<double>(sim::kSecond));
      const auto duration = rng.bernoulli(0.5)
          ? 3600 * sim::kSecond  // dead for the rest of the trial
          : static_cast<sim::SimTime>(
                rng.uniform(3.0, 30.0) * static_cast<double>(sim::kSecond));
      c.failover.primary_outages.push_back({start, start + duration});
      break;
    }
  }

  // Alert-storm family: colluders flood Zipf-skewed benign victims through
  // the admission-controlled ingestion pipeline, on top of whatever channel
  // and base-station chaos was drawn above. tau2 is raised to N_a + 1 so
  // that admission pair-dedup (at most ONE accepted accusation per
  // (reporter, target) pair) caps every benign counter at N_a — zero benign
  // revocations are then achievable at ANY flood intensity, which is
  // exactly what the bounded-harm oracle checks. Without admission the same
  // flood WOULD frame benign beacons (fresh nonces bypass the base
  // station's triple dedup), so the family always turns admission on.
  const bool storm_family = storm_only || (!framing_only && rng.bernoulli(0.35));
  if (storm_family) {
    c.collusion = true;
    c.revocation.alert_threshold = static_cast<std::uint32_t>(
        c.deployment.malicious_beacon_count + 1);
    c.storm.flood_alerts_per_colluder =
        static_cast<std::size_t>(rng.uniform_int(fast ? 30 : 60,
                                                 fast ? 120 : 300));
    static constexpr double kZipfChoices[] = {0.8, 1.0, 1.5};
    c.storm.zipf_exponent = kZipfChoices[rng.uniform_u64(std::size(kZipfChoices))];
    c.storm.duration_ns = static_cast<sim::SimTime>(
        rng.uniform(10.0, 40.0) * static_cast<double>(sim::kSecond));

    c.ingest.admission.enabled = true;
    c.ingest.admission.reporter_rate_per_s = rng.uniform(2.0, 20.0);
    c.ingest.admission.reporter_burst = rng.uniform(4.0, 16.0);
    static constexpr std::uint32_t kShardChoices[] = {1, 2, 4};
    c.ingest.shard.count =
        kShardChoices[rng.uniform_u64(std::size(kShardChoices))];
    static constexpr std::size_t kCapacityChoices[] = {8, 16, 64};
    c.ingest.shard.queue_capacity =
        kCapacityChoices[rng.uniform_u64(std::size(kCapacityChoices))];
    c.ingest.shard.service_time_ns = static_cast<sim::SimTime>(
        rng.uniform_int(1, 5)) * sim::kMillisecond;

    // WAL commit stalls (only meaningful with a WAL): long enough windows
    // trip the circuit breaker into degraded counting mid-storm.
    if (c.failover.durable.enabled && rng.bernoulli(0.5)) {
      sim::SimTime cursor = static_cast<sim::SimTime>(
          rng.uniform(1.0, 10.0) * static_cast<double>(sim::kSecond));
      const auto stalls = 1 + rng.uniform_u64(2);
      for (std::uint64_t i = 0; i < stalls; ++i) {
        const auto duration = static_cast<sim::SimTime>(
            rng.uniform(0.5, 4.0) * static_cast<double>(sim::kSecond));
        c.failover.durable.stall_windows.push_back(
            {cursor, cursor + duration});
        cursor += duration + static_cast<sim::SimTime>(
            rng.uniform(2.0, 8.0) * static_cast<double>(sim::kSecond));
      }
      c.ingest.admission.breaker_trip_ns = 200 * sim::kMillisecond;
    }
  }

  // Framing family (mutually exclusive with the storm family, so the
  // evidence lifecycle — not admission pair-dedup — is the subsystem on
  // trial): the colluders run the coverage-directed framing plan against
  // the sparsest cells' benign beacons, paced under tau1 so every alert is
  // accepted, in waves that top decayed evidence back up — on top of
  // whatever channel and base-station chaos was drawn above (framing x
  // crash x partition x WAL restore). Same Byzantine-provisioning spirit
  // as the storm family's tau2 bump: the defender's corroboration quorum
  // and escalation bar sit above the worst colluding clique (N_a distinct
  // reporters) plus the bounded honest false-positive dribble (a benign
  // counter historically never exceeds tau2), so framing can sequester but
  // structurally can NEVER permanently revoke a benign beacon or override
  // the coverage floor — exactly what oracles 1 and 8 assert.
  if (framing_only || (!storm_family && rng.bernoulli(0.25))) {
    c.revocation.lifecycle.enabled = true;
    c.fallback.enabled = true;
    c.framing.enabled = true;
    c.framing.targets =
        static_cast<std::uint32_t>(rng.uniform_int(2, fast ? 4 : 5));
    c.framing.waves = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
    c.framing.window_ns = static_cast<sim::SimTime>(
        rng.uniform(10.0, 40.0) * static_cast<double>(sim::kSecond));
    c.framing.cell_ft = c.revocation.lifecycle.cell_ft;
    const auto n_a =
        static_cast<std::uint32_t>(c.deployment.malicious_beacon_count);
    c.revocation.lifecycle.corroboration_k = n_a + 3;
    c.revocation.lifecycle.escalation_threshold =
        static_cast<double>(n_a * c.framing.waves +
                            c.revocation.alert_threshold) + 2.0;
  }

  // Telemetry rides along on every schedule purely as a forensic recorder:
  // the sampler draws no randomness and schedules no events, so the chaos
  // schedules (and trial outcomes) are unchanged from the pre-telemetry
  // campaign. The bounded ring holds the last few seconds of windows — the
  // failure context below dumps them when an oracle trips.
  c.telemetry.enabled = true;
  c.telemetry.cadence_ns = 500 * sim::kMillisecond;
  c.telemetry.ring_capacity = 12;
  return c;
}

// ---------------------------------------------------------------------------
// Oracles.

struct ScheduleResult {
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
};

ScheduleResult run_schedule(std::uint64_t seed, const CampaignOptions& opts,
                            obs::TraceSink* sink) {
  ScheduleResult result;
  auto fail = [&result](const std::string& what) {
    result.failures.push_back(what);
  };

  core::SystemConfig config =
      make_schedule(seed, opts.fast, opts.storm_only, opts.framing_only);
  config.trace_sink = sink;

  t_invariant_messages.clear();
  const std::uint64_t violations_before =
      check::thread_invariant_failure_count();
  check::ScopedThreadInvariantHandler guard(&recording_handler);

  try {
    core::SecureLocalizationSystem sys(config);
    const auto s = sys.run();

    // Oracle 1: chaos never frames a benign beacon.
    if (s.benign_revoked != 0) {
      std::ostringstream os;
      os << "benign_revoked == " << s.benign_revoked << " (want 0)";
      fail(os.str());
    }

    // Oracle 2: every sensor is accounted for.
    if (s.sensors_localized + s.sensors_unlocalized != s.sensors) {
      std::ostringstream os;
      os << "sensor accounting: localized " << s.sensors_localized
         << " + unlocalized " << s.sensors_unlocalized << " != "
         << s.sensors;
      fail(os.str());
    }

    // Oracle 3: packet conservation across every fault outcome.
    const auto& ch = s.channel;
    const std::uint64_t accounted = ch.deliveries + ch.losses +
                                    ch.dropped_by_fault + ch.crashed_rx_drops +
                                    ch.partition_drops;
    if (accounted != ch.delivery_attempts + ch.duplicates) {
      std::ostringstream os;
      os << "channel conservation: " << accounted
         << " accounted != " << ch.delivery_attempts << " attempts + "
         << ch.duplicates << " duplicates";
      fail(os.str());
    }

    // Oracle 4: counter identity + revocation threshold, per target.
    const auto& cluster = sys.context().cluster;
    const auto& bs = sys.context().bs();
    const auto tau2 = config.revocation.alert_threshold;
    for (const auto& [target, accepted] : cluster.accepted_by_target()) {
      const std::uint32_t counter = bs.alert_counter(target);
      const std::uint32_t lost = cluster.wal().lost_alerts(target);
      if (counter + lost != accepted) {
        std::ostringstream os;
        os << "counter identity for target " << target << ": counter "
           << counter << " + wal-lost " << lost << " != accepted "
           << accepted;
        fail(os.str());
      }
      // With the lifecycle enabled, revocation is driven by decayed
      // evidence + corroboration, not the raw counter — the iff only holds
      // for the paper's permanent scheme.
      if (!config.revocation.lifecycle.enabled &&
          bs.is_revoked(target) != (counter > tau2)) {
        std::ostringstream os;
        os << "revocation threshold for target " << target << ": counter "
           << counter << " vs tau2 " << tau2 << " but is_revoked == "
           << bs.is_revoked(target);
        fail(os.str());
      }
    }

    // Oracle 5: WAL loss bounded by the fsync window per primary crash,
    // plus any appends that arrived while a commit stall held the log —
    // stalled records are pending (not yet durable) whatever the fsync
    // cadence says, so a crash can take all of them.
    const auto fsync = config.failover.durable.fsync_every_records;
    const std::uint64_t crash_bound =
        config.failover.primary_outages.size() *
            (fsync > 0 ? fsync - 1 : 0) +
        s.durable.stalled_appends;
    if (s.durable.records_lost > crash_bound) {
      std::ostringstream os;
      os << "WAL lost " << s.durable.records_lost
         << " records, bound is (fsync-1) * outages + stalled == "
         << crash_bound;
      fail(os.str());
    }

    // Oracle 7 (storm): bounded harm under overload. The zero-benign-harm
    // side is oracle 1 (pair-dedup caps benign counters at N_a < tau2 + 1
    // at ANY flood intensity, so it must hold even here); the liveness
    // side — accepted evidence beyond tau2 always converges to revocation
    // — is oracle 4. What is new here: the pipeline may not strand or
    // invent alerts, and every malicious revocation must land within the
    // service-model latency bound.
    if (config.ingest.enabled()) {
      const auto& in = s.ingest;
      if (in.submitted != in.accepted + in.rate_limited + in.shed +
                              in.pair_duplicates) {
        std::ostringstream os;
        os << "ingest conservation: submitted " << in.submitted
           << " != accepted " << in.accepted << " + rate_limited "
           << in.rate_limited << " + shed " << in.shed << " + pair_dup "
           << in.pair_duplicates;
        fail(os.str());
      }
      if (in.accepted != in.committed) {
        std::ostringstream os;
        os << "ingest drain: accepted " << in.accepted << " != committed "
           << in.committed << " (queued alerts stranded at end of trial)";
        fail(os.str());
      }
      if (in.deferred != in.deferred_journaled + in.deferred_lost) {
        std::ostringstream os;
        os << "deferred accounting: deferred " << in.deferred
           << " != journaled " << in.deferred_journaled << " + lost "
           << in.deferred_lost;
        fail(os.str());
      }
      // Bounded revocation latency: a commit slot never lands later than
      // the last executed event plus the whole accepted backlog served
      // back-to-back (the service model adds service_time per entry).
      const sim::SimTime horizon =
          static_cast<sim::SimTime>(sys.network().scheduler().now()) +
          static_cast<sim::SimTime>(in.accepted) *
              config.ingest.shard.service_time_ns;
      for (const auto& [target, at] : s.raw.revocation_times) {
        const auto truth_it = sys.context().truth.find(target);
        if (truth_it == sys.context().truth.end() ||
            !truth_it->second.malicious)
          continue;
        if (at > horizon) {
          std::ostringstream os;
          os << "revocation latency for malicious target " << target << ": "
             << at << " past service-model horizon " << horizon;
          fail(os.str());
        }
      }
    }

    // Oracle 8 (framing): the lifecycle sequesters, never frames. The
    // zero-permanent-harm side is oracle 1 (benign_revoked counts
    // PERMANENT revocations only — a quarantined beacon that exonerates
    // was never falsely revoked), and it must hold under framing at ANY
    // intensity because the corroboration quorum is provisioned above the
    // colluding clique. What is new here: the coverage guard never admits
    // a quarantine below the usable floor without escalated evidence
    // (impossible by construction — a violation is a lifecycle bug, not an
    // unlucky schedule), and the escalation bar provisioned by
    // make_schedule is genuinely out of the colluders' reach.
    if (config.revocation.lifecycle.enabled) {
      if (s.base_station.coverage_floor_violations != 0) {
        std::ostringstream os;
        os << "coverage guard admitted " << s.base_station.coverage_floor_violations
           << " quarantine(s) below the usable floor without escalation";
        fail(os.str());
      }
      if (config.framing.enabled && s.base_station.escalations != 0) {
        std::ostringstream os;
        os << "framing reached the escalation bar (" << s.base_station.escalations
           << " escalation(s)); the provisioned threshold is too low";
        fail(os.str());
      }
    }

    // Forensic context for any failure above: the durability/storm knobs
    // this seed drew plus the end-of-trial WAL and ingest counters, so a
    // repro line alone is enough to reason about the fault interleaving.
    if (!result.ok()) {
      std::ostringstream os;
      const auto& d = config.failover.durable;
      os << "context: fsync=" << d.fsync_every_records
         << " snapshot_every=" << d.snapshot_every_records
         << " standby=" << config.failover.standby_enabled << " outages=[";
      for (const auto& o : config.failover.primary_outages)
        os << "(" << o.start << "," << o.end << ")";
      os << "] stalls=[";
      for (const auto& w : d.stall_windows)
        os << "(" << w.start << "," << w.end << ")";
      os << "] wal{appends=" << s.durable.appends
         << " flushes=" << s.durable.flushes
         << " snapshots=" << s.durable.snapshots
         << " records_lost=" << s.durable.records_lost
         << " stalled=" << s.durable.stalled_appends
         << " deferred_lost=" << s.durable.deferred_lost << "}"
         << " ingest{accepted=" << s.ingest.accepted
         << " deferred=" << s.ingest.deferred
         << " journaled=" << s.ingest.deferred_journaled
         << " deferred_lost=" << s.ingest.deferred_lost
         << " reconciled=" << s.ingest.reconciled << "}";
      if (config.framing.enabled) {
        os << " framing{targets=" << config.framing.targets
           << " waves=" << config.framing.waves << " k="
           << config.revocation.lifecycle.corroboration_k << " esc="
           << config.revocation.lifecycle.escalation_threshold
           << "} lifecycle{quarantines=" << s.base_station.quarantines
           << " exonerations=" << s.base_station.exonerations
           << " guard_refusals=" << s.base_station.guard_refusals
           << " benign_quarantined=" << s.benign_quarantined
           << " min_cell_usable=" << s.min_cell_usable << "}";
      }
      fail(os.str());
      // Run-timeline forensics: the last telemetry windows before the end
      // of the trial — what the pipeline was doing when the oracle tripped.
      if (sys.context().timeseries != nullptr) {
        fail("telemetry tail:\n" + sys.context().timeseries->render_tail(8));
      }
    }
  } catch (const std::exception& e) {
    fail(std::string("trial threw: ") + e.what());
  }

  // Oracle 6: no invariant fired anywhere in the trial (counted on this
  // thread — the trial runs start to finish on the calling thread).
  const std::uint64_t delta =
      check::thread_invariant_failure_count() - violations_before;
  if (delta != 0) {
    std::ostringstream os;
    os << delta << " SLD_INVARIANT violation(s)";
    fail(os.str());
    for (const auto& msg : t_invariant_messages) fail("  " + msg);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Driver.

int usage(const char* argv0, int code) {
  std::cerr
      << "usage: " << argv0
      << " [--schedules N] [--base-seed S] [--fast] [--storm] [--framing]"
         " [--trace-dir DIR] [--jobs N] [--selftest-jobs N]\n"
         "Runs N seeded chaos schedules (seeds S, S+1, ...). --storm forces\n"
         "the alert-storm family on every schedule; --framing forces the\n"
         "lifecycle framing family. --jobs runs schedules\n"
         "concurrently (0 = hardware threads) with seed-ordered reporting;\n"
         "--selftest-jobs N instead runs N schedules at jobs 1 and jobs 4\n"
         "and fails on any verdict difference. Every failure\n"
         "prints a one-line repro; SLD_CHAOS_SEED=<seed> in the environment\n"
         "replays exactly that schedule serially (with a JSONL trace when\n"
         "--trace-dir is set). Exits nonzero if any schedule fails.\n";
  return code;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos, 0);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Prints a failed schedule's report and repro line, then re-runs it
/// serially with a JSONL sink if a trace dir was requested. Returns
/// r.ok().
bool report(std::uint64_t seed, const CampaignOptions& opts,
            const ScheduleResult& r) {
  if (r.ok()) return true;
  std::cerr << "FAIL schedule seed=" << seed << ":\n";
  for (const auto& f : r.failures) std::cerr << "  - " << f << "\n";
  std::cerr << "  repro: SLD_CHAOS_SEED=" << seed << " ./chaos_campaign"
            << (opts.fast ? " --fast" : "")
            << (opts.storm_only ? " --storm" : "")
            << (opts.framing_only ? " --framing" : "") << "\n";
  if (!opts.trace_dir.empty()) {
    const std::string path =
        opts.trace_dir + "/chaos_" + std::to_string(seed) + ".jsonl";
    try {
      obs::JsonlSink sink(path);
      (void)run_schedule(seed, opts, &sink);  // deterministic re-run
      std::cerr << "  trace: " << path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "  trace capture failed: " << e.what() << "\n";
    }
  }
  return false;
}

bool run_and_report(std::uint64_t seed, const CampaignOptions& opts) {
  return report(seed, opts, run_schedule(seed, opts, nullptr));
}

/// Runs the whole campaign at the given concurrency and returns the
/// per-seed results (index i is seed base_seed + i). The pool executes
/// schedules in whatever order stealing produces; the slot-per-seed
/// buffer makes the returned vector — and everything reported from it —
/// independent of that order.
std::vector<ScheduleResult> run_campaign(const CampaignOptions& opts,
                                         std::size_t jobs) {
  std::vector<ScheduleResult> results(opts.schedules);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < opts.schedules; ++i)
      results[i] = run_schedule(opts.base_seed + i, opts, nullptr);
    return results;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(opts.schedules);
  for (std::size_t i = 0; i < opts.schedules; ++i) {
    tasks.push_back([&results, &opts, i] {
      results[i] = run_schedule(opts.base_seed + i, opts, nullptr);
    });
  }
  core::WorkStealingPool pool(jobs);
  pool.run(std::move(tasks));
  return results;
}

/// --selftest-jobs: the campaign's own serial-vs-parallel equivalence
/// check — identical per-seed verdicts AND identical failure reports at
/// --jobs 1 and --jobs 4.
int run_jobs_selftest(CampaignOptions opts) {
  opts.schedules = opts.selftest_jobs;
  const auto serial = run_campaign(opts, 1);
  const auto parallel = run_campaign(opts, 4);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < opts.schedules; ++i) {
    if (serial[i].failures == parallel[i].failures) continue;
    ++mismatches;
    std::cerr << "MISMATCH seed=" << opts.base_seed + i << ": jobs=1 -> "
              << serial[i].failures.size() << " failure(s), jobs=4 -> "
              << parallel[i].failures.size() << " failure(s)\n";
    for (const auto& f : serial[i].failures)
      std::cerr << "  jobs=1: " << f << "\n";
    for (const auto& f : parallel[i].failures)
      std::cerr << "  jobs=4: " << f << "\n";
  }
  std::cout << "chaos jobs selftest: " << opts.schedules
            << " schedules, verdicts "
            << (mismatches == 0 ? "identical" : "DIFFER") << " at --jobs 1 "
            << "vs --jobs 4 (" << mismatches << " mismatch(es))\n";
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::optional<std::uint64_t> {
      if (i + 1 >= argc) return std::nullopt;
      return parse_u64(argv[++i]);
    };
    if (arg == "--schedules") {
      const auto v = value();
      if (!v) return usage(argv[0], 2);
      opts.schedules = static_cast<std::size_t>(*v);
    } else if (arg == "--base-seed") {
      const auto v = value();
      if (!v) return usage(argv[0], 2);
      opts.base_seed = *v;
    } else if (arg == "--jobs") {
      const auto v = value();
      if (!v) return usage(argv[0], 2);
      opts.jobs = static_cast<std::size_t>(*v);
    } else if (arg == "--selftest-jobs") {
      const auto v = value();
      if (!v || *v == 0) return usage(argv[0], 2);
      opts.selftest_jobs = static_cast<std::size_t>(*v);
    } else if (arg == "--fast") {
      opts.fast = true;
    } else if (arg == "--storm") {
      opts.storm_only = true;
    } else if (arg == "--framing") {
      opts.framing_only = true;
    } else if (arg == "--trace-dir") {
      if (i + 1 >= argc) return usage(argv[0], 2);
      opts.trace_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0], 2);
    }
  }

  if (!sld::check::invariants_enabled()) {
    std::cerr << "note: SLD_INVARIANT compiled out in this build; the "
                 "invariant oracle is vacuous (build with -DSLD_INVARIANTS=ON "
                 "or use tools/run_chaos.sh for the full campaign)\n";
  }

  // Single-schedule replay mode: always serial, whatever --jobs says —
  // a repro must not depend on pool scheduling.
  if (const char* env = std::getenv("SLD_CHAOS_SEED")) {
    const auto seed = parse_u64(env);
    if (!seed) {
      std::cerr << "SLD_CHAOS_SEED is not a number: " << env << "\n";
      return 2;
    }
    std::cerr << "replaying single schedule seed=" << *seed << "\n";
    return run_and_report(*seed, opts) ? 0 : 1;
  }

  if (opts.selftest_jobs > 0) return run_jobs_selftest(opts);

  const std::size_t jobs =
      sld::core::WorkStealingPool::resolve_jobs(opts.jobs);
  std::size_t failed = 0;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < opts.schedules; ++i) {
      const std::uint64_t seed = opts.base_seed + i;
      if (!run_and_report(seed, opts)) ++failed;
      if ((i + 1) % 50 == 0) {
        std::cerr << "... " << (i + 1) << "/" << opts.schedules
                  << " schedules, " << failed << " failed\n";
      }
    }
  } else {
    // Parallel: run everything first, then report strictly in seed order
    // (any failure-trace re-run happens serially during reporting).
    const auto results = run_campaign(opts, jobs);
    for (std::size_t i = 0; i < opts.schedules; ++i) {
      if (!report(opts.base_seed + i, opts, results[i])) ++failed;
    }
  }
  std::cout << "chaos campaign: " << opts.schedules << " schedules, "
            << (opts.schedules - failed) << " ok, " << failed
            << " failed (invariants "
            << (sld::check::invariants_enabled() ? "on" : "compiled out")
            << ")\n";
  return failed == 0 ? 0 : 1;
}
