// Clock-drift faults: deterministic per-node rate assignment, the signed
// RTT skew it induces, the drift-aware time-sync error bound (property
// test, replayable via SLD_PROP_SEED), the RTT filter's guard band keeping
// the false-positive budget under drift, and a system trial under drift
// revoking no benign beacon.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/secure_localization.hpp"
#include "prop/prop.hpp"
#include "ranging/rtt.hpp"
#include "ranging/time_sync.hpp"
#include "sim/faults.hpp"

namespace {

using namespace sld;

sim::FaultInjector drifting_injector(double max_ppm, std::uint64_t seed = 7) {
  sim::FaultPlan plan;
  plan.clock_drift.max_drift_ppm = max_ppm;
  return sim::FaultInjector(plan, util::Rng(seed));
}

TEST(ClockDrift, DisabledDriftIsExactlyZero) {
  sim::FaultInjector inj(sim::FaultPlan{}, util::Rng(1));
  for (sim::NodeId n = 0; n < 50; ++n) {
    EXPECT_EQ(inj.drift_ppm(n), 0.0);
    EXPECT_EQ(inj.rtt_skew_cycles(n, n + 1), 0.0);
  }
}

TEST(ClockDrift, AssignmentIsBoundedDeterministicAndOrderIndependent) {
  const double max_ppm = 50.0;
  auto a = drifting_injector(max_ppm);
  auto b = drifting_injector(max_ppm);
  // Query b backwards: the per-node rate is a pure hash of (seed, id), so
  // the order of queries cannot matter.
  for (sim::NodeId n = 200; n-- > 0;) {
    EXPECT_LE(std::abs(b.drift_ppm(n)), max_ppm);
  }
  bool any_differ = false;
  for (sim::NodeId n = 0; n < 200; ++n) {
    EXPECT_EQ(a.drift_ppm(n), b.drift_ppm(n)) << "node " << n;
    any_differ = any_differ || a.drift_ppm(n) != a.drift_ppm(0);
  }
  EXPECT_TRUE(any_differ) << "all 200 nodes drew the same rate";
}

TEST(ClockDrift, RttSkewIsAntisymmetricAndMatchesRateDifference) {
  const double max_ppm = 100.0;
  auto inj = drifting_injector(max_ppm);
  const double turnaround = inj.plan().clock_drift.turnaround_cycles;
  const double worst = 2.0 * max_ppm * 1e-6 * turnaround;
  for (sim::NodeId rx = 0; rx < 20; ++rx) {
    EXPECT_EQ(inj.rtt_skew_cycles(rx, rx), 0.0);
    for (sim::NodeId tx = 0; tx < 20; ++tx) {
      const double skew = inj.rtt_skew_cycles(rx, tx);
      EXPECT_DOUBLE_EQ(skew, -inj.rtt_skew_cycles(tx, rx));
      EXPECT_DOUBLE_EQ(
          skew, (inj.drift_ppm(rx) - inj.drift_ppm(tx)) * 1e-6 * turnaround);
      EXPECT_LE(std::abs(skew), worst + 1e-12);
    }
  }
}

struct SyncCase {
  double distance_ft = 0.0;
  double drift_ppm = 0.0;
  double offset_cycles = 0.0;
};

prop::Gen<SyncCase> sync_case_gen() {
  prop::Gen<SyncCase> g;
  g.generate = [](util::Rng& rng) {
    SyncCase c;
    c.distance_ft = rng.uniform(0.0, 150.0);
    c.drift_ppm = rng.uniform(-200.0, 200.0);
    c.offset_cycles = rng.uniform(-1e6, 1e6);
    return c;
  };
  g.show = [](const SyncCase& c) {
    std::ostringstream os;
    os << "{dist=" << c.distance_ft << "ft drift=" << c.drift_ppm
       << "ppm offset=" << c.offset_cycles << "}";
    return os.str();
  };
  return g;
}

TEST(ClockDrift, HonestSyncErrorStaysWithinDriftAwareBound) {
  // Satellite (c): for any drift within the declared envelope, one honest
  // exchange recovers the offset to within max_sync_error_cycles(model,
  // |drift|, distance). Replay a failure with SLD_PROP_SEED=<seed>.
  const ranging::MoteTimingModel model;
  EXPECT_TRUE(prop::forall(
      "drifting sync error <= drift-aware bound", sync_case_gen(),
      [&](const SyncCase& c, util::Rng& rng) {
        const auto r = ranging::synchronize_drifting(
            model, c.distance_ft, c.offset_cycles, c.drift_ppm, 0.0, rng);
        const double bound = ranging::max_sync_error_cycles(
            model, std::abs(c.drift_ppm), c.distance_ft);
        return std::abs(r.offset_cycles - c.offset_cycles) <= bound + 1e-9;
      },
      prop::Config{300, prop::env_seed_or(0x5afe5eedULL)}));
}

TEST(ClockDrift, DriftAwareBoundReducesToAsymmetryBoundAtZero) {
  const ranging::MoteTimingModel model;
  EXPECT_DOUBLE_EQ(ranging::max_sync_error_cycles(model, 0.0, 500.0),
                   ranging::max_sync_error_cycles(model));
  EXPECT_GT(ranging::max_sync_error_cycles(model, 100.0, 500.0),
            ranging::max_sync_error_cycles(model));
  EXPECT_THROW(ranging::max_sync_error_cycles(model, -1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(ranging::max_sync_error_cycles(model, 1e7, 1.0),
               std::invalid_argument);
  util::Rng rng(9);
  EXPECT_THROW(
      ranging::synchronize_drifting(model, 1.0, 0.0, -1e6, 0.0, rng),
      std::invalid_argument);
}

TEST(ClockDrift, DriftFreeCallReproducesSynchronizeBitForBit) {
  const ranging::MoteTimingModel model;
  util::Rng a(42), b(42);
  for (int i = 0; i < 200; ++i) {
    const auto plain = ranging::synchronize(model, 80.0, 1234.0, 0.0, a);
    const auto drifted =
        ranging::synchronize_drifting(model, 80.0, 1234.0, 0.0, 0.0, b);
    EXPECT_EQ(plain.offset_cycles, drifted.offset_cycles);
    EXPECT_EQ(plain.delay_cycles, drifted.delay_cycles);
  }
}

TEST(ClockDrift, GuardBandKeepsRttFilterFalsePositiveBudget) {
  // The system widens x_max by the worst-case skew
  // (2 * max_ppm * 1e-6 * turnaround). With an aggressive 2000 ppm
  // envelope the raw skew (~590 cycles against a 1728-cycle span) would
  // push honest measurements over the calibrated x_max; with the guard
  // band the false-positive rate must stay within a 1% budget.
  const ranging::MoteTimingModel model;
  const double max_ppm = 2000.0;
  util::Rng calib_rng(31);
  const auto calib = ranging::calibrate_rtt(model, 10'000, 150.0, calib_rng);
  auto inj = drifting_injector(max_ppm, /*seed=*/13);
  const double guard =
      2.0 * max_ppm * 1e-6 * inj.plan().clock_drift.turnaround_cycles;

  util::Rng rng(prop::env_seed_or(0xd41f7));
  int fp_guarded = 0, over_unguarded = 0;
  const int samples = 5000;
  for (int i = 0; i < samples; ++i) {
    const auto rx = static_cast<sim::NodeId>(rng.uniform_int(0, 299));
    const auto tx = static_cast<sim::NodeId>(rng.uniform_int(0, 299));
    const double dist = rng.uniform(0.0, 150.0);
    const double observed =
        model.sample_rtt_cycles(dist, rng) + inj.rtt_skew_cycles(rx, tx);
    if (observed > calib.x_max_cycles) ++over_unguarded;
    if (observed > calib.x_max_cycles + guard) ++fp_guarded;
  }
  // Drift genuinely stresses the unguarded threshold...
  EXPECT_GT(over_unguarded, 0);
  // ...and the guard band absorbs it within budget.
  EXPECT_LE(fp_guarded, samples / 100);
}

TEST(ClockDrift, SystemUnderDriftRevokesNoBenignBeacon) {
  core::SystemConfig c;
  c.deployment.total_nodes = 300;
  c.deployment.beacon_count = 30;
  c.deployment.malicious_beacon_count = 3;
  c.deployment.field = util::Rect::square(550.0);
  c.rtt_calibration_samples = 2000;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(1.0);
  c.paper_wormhole = false;
  c.seed = 11;
  c.faults.clock_drift.max_drift_ppm = 50.0;
  core::SecureLocalizationSystem sys(c);
  const auto s = sys.run();
  EXPECT_EQ(s.benign_revoked, 0u);
  EXPECT_GE(s.malicious_revoked, 2u);
}

}  // namespace
