#include "crypto/detecting_ids.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sld::crypto {
namespace {

TEST(DetectingIdRegistry, AllocatesRequestedCount) {
  util::Rng rng(1);
  DetectingIdRegistry reg(1000, 2000);
  const auto ids = reg.allocate(7, 8, rng);
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(reg.allocated_count(), 8u);
  for (const auto id : ids) {
    EXPECT_GE(id, 1000u);
    EXPECT_LT(id, 2000u);
  }
}

TEST(DetectingIdRegistry, IdsAreDistinctAcrossBeacons) {
  util::Rng rng(2);
  DetectingIdRegistry reg(0, 10000);
  std::set<std::uint32_t> all;
  for (std::uint32_t beacon = 1; beacon <= 20; ++beacon) {
    for (const auto id : reg.allocate(beacon, 8, rng)) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate detecting id";
    }
  }
  EXPECT_EQ(all.size(), 160u);
}

TEST(DetectingIdRegistry, OwnerLookup) {
  util::Rng rng(3);
  DetectingIdRegistry reg(100, 200);
  const auto ids = reg.allocate(42, 3, rng);
  for (const auto id : ids) {
    ASSERT_TRUE(reg.owner_of(id).has_value());
    EXPECT_EQ(*reg.owner_of(id), 42u);
  }
  // An id that was never allocated has no owner.
  std::uint32_t unallocated = 100;
  while (std::find(ids.begin(), ids.end(), unallocated) != ids.end())
    ++unallocated;
  EXPECT_FALSE(reg.owner_of(unallocated).has_value());
}

TEST(DetectingIdRegistry, IdsOfBeacon) {
  util::Rng rng(4);
  DetectingIdRegistry reg(0, 1000);
  const auto ids = reg.allocate(5, 4, rng);
  auto got = reg.ids_of(5);
  EXPECT_EQ(got, ids);
  EXPECT_TRUE(reg.ids_of(6).empty());
}

TEST(DetectingIdRegistry, RealIdsNeverCollide) {
  util::Rng rng(5);
  DetectingIdRegistry reg(0, 100);
  for (std::uint32_t id = 0; id < 50; ++id) reg.reserve_real_id(id);
  const auto ids = reg.allocate(1, 40, rng);
  for (const auto id : ids) EXPECT_GE(id, 50u);
}

TEST(DetectingIdRegistry, ReserveRejectsDuplicates) {
  DetectingIdRegistry reg(0, 10);
  reg.reserve_real_id(3);
  EXPECT_THROW(reg.reserve_real_id(3), std::invalid_argument);
}

TEST(DetectingIdRegistry, ReserveRejectsOutOfRange) {
  DetectingIdRegistry reg(10, 20);
  EXPECT_THROW(reg.reserve_real_id(5), std::invalid_argument);
  EXPECT_THROW(reg.reserve_real_id(20), std::invalid_argument);
}

TEST(DetectingIdRegistry, ExhaustionThrows) {
  util::Rng rng(6);
  DetectingIdRegistry reg(0, 10);
  reg.allocate(1, 10, rng);
  EXPECT_THROW(reg.allocate(2, 1, rng), std::runtime_error);
}

TEST(DetectingIdRegistry, EmptySpaceRejected) {
  EXPECT_THROW(DetectingIdRegistry(5, 5), std::invalid_argument);
}

}  // namespace
}  // namespace sld::crypto
