// Differential and metamorphic properties of the base-station revocation
// scheme: a naive reference implementation must agree disposition-for-
// disposition with BaseStation over arbitrary alert streams, counters are
// monotone, revocation fires exactly when a counter crosses tau2, and no
// target is revoked twice.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "prop/generators.hpp"
#include "prop/prop.hpp"
#include "revocation/base_station.hpp"

namespace {

using namespace sld;
using revocation::AlertDisposition;
using revocation::BaseStation;

/// Straight-line reference transcription of the paper's §3.1 algorithm,
/// with none of BaseStation's bookkeeping. Deliberately different data
/// structures (ordered maps) so shared bugs are unlikely.
class NaiveBaseStation {
 public:
  explicit NaiveBaseStation(revocation::RevocationConfig config)
      : config_(config) {}

  AlertDisposition process(sim::NodeId reporter, sim::NodeId target) {
    if (revoked_.count(target) > 0)
      return AlertDisposition::kIgnoredTargetRevoked;
    if (reports_[reporter] > config_.report_quota)
      return AlertDisposition::kIgnoredReporterQuota;
    reports_[reporter] += 1;
    alerts_[target] += 1;
    if (alerts_[target] > config_.alert_threshold) {
      revoked_.insert(target);
      order_.push_back(target);
      return AlertDisposition::kAcceptedAndRevoked;
    }
    return AlertDisposition::kAccepted;
  }

  std::uint32_t alerts(sim::NodeId t) const {
    const auto it = alerts_.find(t);
    return it == alerts_.end() ? 0 : it->second;
  }
  std::uint32_t reports(sim::NodeId r) const {
    const auto it = reports_.find(r);
    return it == reports_.end() ? 0 : it->second;
  }
  const std::set<sim::NodeId>& revoked() const { return revoked_; }
  const std::vector<sim::NodeId>& order() const { return order_; }

 private:
  revocation::RevocationConfig config_;
  std::map<sim::NodeId, std::uint32_t> alerts_;
  std::map<sim::NodeId, std::uint32_t> reports_;
  std::set<sim::NodeId> revoked_;
  std::vector<sim::NodeId> order_;
};

TEST(RevocationProperty, AgreesWithNaiveReferenceModel) {
  EXPECT_TRUE(prop::forall(
      "BaseStation == naive reference", prop::alert_stream(),
      [](const prop::AlertStream& s) {
        BaseStation bs(s.config);
        NaiveBaseStation ref(s.config);
        for (const auto& [reporter, target] : s.alerts) {
          if (bs.process_alert(reporter, target) !=
              ref.process(reporter, target))
            return false;
          if (bs.alert_counter(target) != ref.alerts(target)) return false;
          if (bs.report_counter(reporter) != ref.reports(reporter))
            return false;
        }
        if (bs.revoked_count() != ref.revoked().size()) return false;
        for (const auto id : ref.revoked())
          if (!bs.is_revoked(id)) return false;
        return bs.revocation_order() == ref.order();
      }));
}

TEST(RevocationProperty, CountersAreMonotone) {
  EXPECT_TRUE(prop::forall(
      "alert/report counters never decrease", prop::alert_stream(),
      [](const prop::AlertStream& s) {
        BaseStation bs(s.config);
        std::map<sim::NodeId, std::uint32_t> last_alert, last_report;
        for (const auto& [reporter, target] : s.alerts) {
          bs.process_alert(reporter, target);
          const auto a = bs.alert_counter(target);
          const auto r = bs.report_counter(reporter);
          if (a < last_alert[target] || r < last_report[reporter])
            return false;
          last_alert[target] = a;
          last_report[reporter] = r;
        }
        return true;
      }));
}

TEST(RevocationProperty, RevocationFiresExactlyPastThreshold) {
  // A target is revoked iff its counter exceeds tau2, the revoking alert is
  // the one that took the counter to exactly tau2 + 1, and the counter
  // freezes there (later alerts are ignored).
  EXPECT_TRUE(prop::forall(
      "revoked iff counter == tau2 + 1, frozen after", prop::alert_stream(),
      [](const prop::AlertStream& s) {
        BaseStation bs(s.config);
        for (const auto& [reporter, target] : s.alerts) {
          const auto disposition = bs.process_alert(reporter, target);
          if (disposition == AlertDisposition::kAcceptedAndRevoked &&
              bs.alert_counter(target) != s.config.alert_threshold + 1)
            return false;
          if (bs.is_revoked(target) !=
              (bs.alert_counter(target) > s.config.alert_threshold))
            return false;
          if (bs.alert_counter(target) > s.config.alert_threshold + 1)
            return false;
        }
        return true;
      }));
}

TEST(RevocationProperty, NoTargetRevokedTwice) {
  EXPECT_TRUE(prop::forall(
      "revocation order is duplicate-free", prop::alert_stream(),
      [](const prop::AlertStream& s) {
        BaseStation bs(s.config);
        std::size_t revoke_dispositions = 0;
        for (const auto& [reporter, target] : s.alerts)
          if (bs.process_alert(reporter, target) ==
              AlertDisposition::kAcceptedAndRevoked)
            ++revoke_dispositions;
        std::vector<sim::NodeId> order = bs.revocation_order();
        std::sort(order.begin(), order.end());
        if (std::adjacent_find(order.begin(), order.end()) != order.end())
          return false;
        return revoke_dispositions == order.size() &&
               order.size() == bs.revoked_count();
      }));
}

TEST(RevocationProperty, QuotaCapsAcceptedReportsPerReporter) {
  // tau1: each reporter gets at most tau1 + 1 accepted alerts.
  EXPECT_TRUE(prop::forall(
      "report counter <= tau1 + 1", prop::alert_stream(),
      [](const prop::AlertStream& s) {
        BaseStation bs(s.config);
        for (const auto& [reporter, target] : s.alerts) {
          bs.process_alert(reporter, target);
          if (bs.report_counter(reporter) > s.config.report_quota + 1)
            return false;
        }
        return true;
      }));
}

TEST(RevocationProperty, StatsPartitionTheAlertStream) {
  EXPECT_TRUE(prop::forall(
      "received == accepted + ignored_quota + ignored_revoked",
      prop::alert_stream(), [](const prop::AlertStream& s) {
        BaseStation bs(s.config);
        for (const auto& [reporter, target] : s.alerts)
          bs.process_alert(reporter, target);
        const auto& st = bs.stats();
        return st.alerts_received == s.alerts.size() &&
               st.alerts_received == st.alerts_accepted +
                                         st.alerts_ignored_quota +
                                         st.alerts_ignored_revoked &&
               st.revocations == bs.revoked_count();
      }));
}

}  // namespace
