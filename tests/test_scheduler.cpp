#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sld::sim {
namespace {

TEST(Scheduler, TimeStartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
}

TEST(Scheduler, RunAdvancesTimeToEventTimes) {
  Scheduler s;
  std::vector<SimTime> seen;
  s.schedule_at(10, [&]() { seen.push_back(s.now()); });
  s.schedule_at(25, [&]() { seen.push_back(s.now()); });
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 25}));
  EXPECT_EQ(s.now(), 25);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  SimTime fired_at = -1;
  s.schedule_at(100, [&]() {
    s.schedule_after(50, [&]() { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Scheduler, RejectsPastAndNegative) {
  Scheduler s;
  s.schedule_at(10, []() {});
  s.run();
  EXPECT_THROW(s.schedule_at(5, []() {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1, []() {}), std::invalid_argument);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&]() { ++fired; });
  s.schedule_at(20, [&]() { ++fired; });
  s.schedule_at(30, [&]() { ++fired; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWhenIdle) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, MaxEventsBoundsExecution) {
  Scheduler s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [&]() { ++fired; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, CascadingEventsRunToCompletion) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(Scheduler, ResetRestoresInitialState) {
  Scheduler s;
  s.schedule_at(10, []() {});
  s.run();
  s.schedule_at(20, []() {});
  s.reset();
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
}

}  // namespace
}  // namespace sld::sim
