// Evidence-lifecycle state machine (src/revocation/lifecycle): decay
// math, quarantine/corroboration/exoneration transitions, the coverage
// guard, and the BaseStation integration (stats, dispositions, durable
// image round-trip).
#include "revocation/lifecycle.hpp"

#include <gtest/gtest.h>

#include "revocation/base_station.hpp"

namespace sld::revocation {
namespace {

constexpr sim::SimTime kHalfLife = 300 * sim::kSecond;

LifecycleConfig lifecycle_config() {
  LifecycleConfig lc;
  lc.enabled = true;
  lc.half_life_ns = kHalfLife;
  return lc;
}

/// Station with the lifecycle on and the paper's tau1 = 10, tau2 = 2.
RevocationConfig station_config() {
  RevocationConfig rc;
  rc.lifecycle = lifecycle_config();
  return rc;
}

/// Target at (100, 100) with four geometrically independent reporters
/// within plausible probing range.
void register_cross_roster(LifecycleTracker& t) {
  t.register_beacon(50, {100.0, 100.0});
  t.register_beacon(1, {100.0, 140.0});
  t.register_beacon(2, {140.0, 100.0});
  t.register_beacon(3, {60.0, 100.0});
  t.register_beacon(4, {100.0, 60.0});
}

TEST(DecayFactor, ExactAtHalfLifeMultiples) {
  EXPECT_EQ(decay_factor(0, kHalfLife), 1.0);
  EXPECT_EQ(decay_factor(kHalfLife, kHalfLife), 0.5);
  EXPECT_EQ(decay_factor(2 * kHalfLife, kHalfLife), 0.25);
  EXPECT_EQ(decay_factor(10 * kHalfLife, kHalfLife), 1.0 / 1024.0);
}

TEST(DecayFactor, MonotoneNonIncreasing) {
  double prev = 1.0;
  for (sim::SimTime t = 0; t <= 4 * kHalfLife; t += kHalfLife / 64) {
    const double d = decay_factor(t, kHalfLife);
    EXPECT_LE(d, prev) << "at t = " << t;
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 1.0);
    prev = d;
  }
}

TEST(DecayFactor, CloseToTrueExponential) {
  for (sim::SimTime t = 0; t <= 3 * kHalfLife; t += kHalfLife / 7) {
    const double exact =
        std::exp2(-static_cast<double>(t) / static_cast<double>(kHalfLife));
    EXPECT_NEAR(decay_factor(t, kHalfLife), exact, 1e-12) << "at t = " << t;
  }
}

TEST(DecayFactor, UnderflowsToZero) {
  EXPECT_EQ(decay_factor(2000 * kHalfLife, kHalfLife), 0.0);
}

TEST(DecayFactor, DegenerateArguments) {
  EXPECT_EQ(decay_factor(-5, kHalfLife), 1.0);
  EXPECT_EQ(decay_factor(5, 0), 1.0);
}

TEST(Lifecycle, QuarantineNeedsEvidenceAboveThreshold) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  register_cross_roster(t);
  EXPECT_FALSE(t.observe(1, 50, 0).quarantined);
  EXPECT_FALSE(t.observe(2, 50, 1).quarantined);
  EXPECT_EQ(t.phase(50, 1), LifecyclePhase::kSuspected);
  const auto out = t.observe(3, 50, 2);
  EXPECT_TRUE(out.quarantined);
  EXPECT_FALSE(out.revoked);  // evidence 3.0 < revocation_evidence_min
  EXPECT_TRUE(t.is_quarantined(50, 2));
  EXPECT_FALSE(t.is_revoked(50));
  EXPECT_FALSE(t.usable(50, 2));
}

TEST(Lifecycle, IndependentWitnessesPermanentlyRevoke) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  register_cross_roster(t);
  t.observe(1, 50, 0);
  t.observe(2, 50, 1);
  t.observe(3, 50, 2);  // quarantined at evidence ~3
  // Four witnesses corroborate, but a nanosecond of decay keeps the
  // evidence a hair under revocation_evidence_min = 4.0 — the bar is
  // strict, so the fourth alert does not yet revoke.
  EXPECT_FALSE(t.observe(4, 50, 3).revoked);
  const auto out = t.observe(1, 50, 4);
  EXPECT_TRUE(out.revoked);  // evidence ~5, four independent witnesses
  EXPECT_TRUE(t.is_revoked(50));
  EXPECT_FALSE(t.usable(50, 4));
  EXPECT_EQ(t.phase(50, 4), LifecyclePhase::kRevoked);
}

TEST(Lifecycle, ClusteredCliqueCanQuarantineButNeverRevoke) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  t.register_beacon(50, {100.0, 100.0});
  // Three colluders within one vantage point (< independence_min_ft).
  t.register_beacon(11, {110.0, 100.0});
  t.register_beacon(12, {115.0, 100.0});
  t.register_beacon(13, {110.0, 105.0});
  // Give the cell company so the coverage guard is not the limiting factor.
  t.register_beacon(60, {120.0, 120.0});
  LifecycleOutcome out;
  for (int round = 0; round < 4; ++round) {
    out = t.observe(11, 50, round * 3 + 0);
    out = t.observe(12, 50, round * 3 + 1);
    out = t.observe(13, 50, round * 3 + 2);
  }
  // Evidence is far past every bar (12 alerts, ~no decay) but the clique
  // counts as a single witness — quarantined forever, revoked never.
  EXPECT_GE(out.evidence, 4.0);
  EXPECT_TRUE(t.is_quarantined(50, 100));
  EXPECT_FALSE(t.is_revoked(50));
}

TEST(Lifecycle, ImplausiblyFarReportersCarryNoCorroboration) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  t.register_beacon(50, {100.0, 100.0});
  // Independent of each other, but all farther than plausible_range_ft
  // from the target — none could have probed it.
  t.register_beacon(21, {400.0, 100.0});
  t.register_beacon(22, {100.0, 400.0});
  t.register_beacon(23, {400.0, 400.0});
  t.register_beacon(60, {120.0, 120.0});
  for (int i = 0; i < 6; ++i)
    t.observe(static_cast<sim::NodeId>(21 + (i % 3)), 50, i);
  EXPECT_TRUE(t.is_quarantined(50, 6));
  EXPECT_FALSE(t.is_revoked(50));
}

TEST(Lifecycle, EvidenceDecaysAndExonerates) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  register_cross_roster(t);
  t.observe(1, 50, 0);
  t.observe(2, 50, 1);
  t.observe(3, 50, 2);
  ASSERT_TRUE(t.is_quarantined(50, 2));
  // Evidence 3.0 decays below clear_threshold = 0.5 after log2(6) < 3
  // half-lives; the lazy view reports the exoneration without mutation.
  const sim::SimTime later = 2 + 3 * kHalfLife;
  EXPECT_LT(t.evidence(50, later), 0.5);
  EXPECT_EQ(t.phase(50, later), LifecyclePhase::kExonerated);
  EXPECT_TRUE(t.usable(50, later));
  // The next alert materializes the exoneration, then re-suspects.
  const auto out = t.observe(4, 50, later);
  EXPECT_TRUE(out.exonerated);
  EXPECT_TRUE(out.suspected);
  EXPECT_EQ(t.phase(50, later), LifecyclePhase::kSuspected);
  // Re-suspicion starts over: the old accusers were forgotten.
  EXPECT_EQ(t.distinct_reporters(50), 1u);
}

TEST(Lifecycle, SettleMaterializesExonerationOnce) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  register_cross_roster(t);
  t.observe(1, 50, 0);
  t.observe(2, 50, 1);
  t.observe(3, 50, 2);
  const sim::SimTime later = 2 + 4 * kHalfLife;
  auto settled = t.settle(later);
  ASSERT_EQ(settled.size(), 1u);
  EXPECT_EQ(settled[0].first, 50u);
  EXPECT_TRUE(settled[0].second.exonerated);
  EXPECT_EQ(t.phase(50, later), LifecyclePhase::kExonerated);
  // Idempotent: a second sweep (even later) finds nothing to do.
  EXPECT_TRUE(t.settle(later + kHalfLife).empty());
}

TEST(Lifecycle, CoverageGuardRefusesThenEscalates) {
  LifecycleConfig lc = lifecycle_config();
  lc.min_usable_per_cell = 1;
  LifecycleTracker t(lc, 2.0);
  // Target alone in its cell: quarantining it would zero the cell.
  t.register_beacon(50, {10.0, 10.0});
  t.register_beacon(60, {400.0, 400.0});
  LifecycleOutcome out;
  for (int i = 0; i < 6; ++i) {
    out = t.observe(static_cast<sim::NodeId>(100 + i), 50, i);
    EXPECT_FALSE(out.quarantined) << "alert " << i;
  }
  // Evidence ~6-eps: above tau2, (just) below escalation_threshold ->
  // still refused by the coverage guard.
  EXPECT_TRUE(out.guard_refused);
  EXPECT_TRUE(out.cell_known);
  EXPECT_EQ(out.cell_usable, 0u);
  EXPECT_EQ(t.phase(50, 5), LifecyclePhase::kSuspected);
  // The seventh alert pushes evidence past escalation_threshold = 6.0.
  out = t.observe(106, 50, 6);
  EXPECT_TRUE(out.quarantined);
  EXPECT_TRUE(out.escalated);
  EXPECT_TRUE(t.is_quarantined(50, 6));
}

TEST(Lifecycle, UnregisteredTargetCannotBePermanentlyRevoked) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  // No roster at all: quarantine works (no cell to guard), but permanent
  // revocation demands a known position to corroborate against.
  for (int i = 0; i < 10; ++i)
    t.observe(static_cast<sim::NodeId>(1 + i), 50, i);
  EXPECT_TRUE(t.is_quarantined(50, 9));
  EXPECT_FALSE(t.is_revoked(50));
}

TEST(Lifecycle, CensusCountsUsableBeaconsPerCell) {
  LifecycleTracker t(lifecycle_config(), 2.0);
  register_cross_roster(t);  // all five in cell (0, 0)
  t.register_beacon(70, {300.0, 100.0});  // cell (1, 0)
  auto cells = t.census_all(0);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].beacons, 5u);
  EXPECT_EQ(cells[0].usable, 5u);
  EXPECT_EQ(cells[1].beacons, 1u);
  // Quarantine the target: its cell loses one usable beacon.
  t.observe(1, 50, 0);
  t.observe(2, 50, 1);
  t.observe(3, 50, 2);
  cells = t.census_all(2);
  EXPECT_EQ(cells[0].usable, 4u);
}

TEST(Lifecycle, PhaseNames) {
  EXPECT_STREQ(lifecycle_phase_name(LifecyclePhase::kClear), "clear");
  EXPECT_STREQ(lifecycle_phase_name(LifecyclePhase::kSuspected), "suspected");
  EXPECT_STREQ(lifecycle_phase_name(LifecyclePhase::kQuarantined),
               "quarantined");
  EXPECT_STREQ(lifecycle_phase_name(LifecyclePhase::kRevoked), "revoked");
  EXPECT_STREQ(lifecycle_phase_name(LifecyclePhase::kExonerated),
               "exonerated");
}

TEST(LifecycleStation, QuarantineThenCorroboratedRevocation) {
  BaseStation bs(station_config());
  bs.register_beacon(50, {100.0, 100.0});
  bs.register_beacon(1, {100.0, 140.0});
  bs.register_beacon(2, {140.0, 100.0});
  bs.register_beacon(3, {60.0, 100.0});
  bs.register_beacon(4, {100.0, 60.0});

  EXPECT_EQ(bs.process_alert(1, 50, 101, 0), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(2, 50, 102, 1), AlertDisposition::kAccepted);
  // Third alert quarantines instead of permanently revoking.
  EXPECT_EQ(bs.process_alert(3, 50, 103, 2), AlertDisposition::kAccepted);
  EXPECT_TRUE(bs.is_quarantined(50, 2));
  EXPECT_FALSE(bs.is_revoked(50));
  EXPECT_FALSE(bs.usable(50, 2));
  EXPECT_EQ(bs.stats().quarantines, 1u);
  EXPECT_EQ(bs.stats().revocations, 0u);

  // Fourth independent witness corroborates, but decayed evidence is a
  // hair under the strict revocation_evidence_min = 4.0 bar.
  EXPECT_EQ(bs.process_alert(4, 50, 104, 3), AlertDisposition::kAccepted);
  EXPECT_FALSE(bs.is_revoked(50));

  // The fifth accepted alert clears both bars: permanent revocation.
  EXPECT_EQ(bs.process_alert(1, 50, 105, 4),
            AlertDisposition::kAcceptedAndRevoked);
  EXPECT_TRUE(bs.is_revoked(50));
  EXPECT_EQ(bs.stats().revocations, 1u);
  EXPECT_EQ(bs.lifecycle_phase(50, 4), LifecyclePhase::kRevoked);

  // Only now are further alerts ignored.
  EXPECT_EQ(bs.process_alert(2, 50, 106, 5),
            AlertDisposition::kIgnoredTargetRevoked);
}

TEST(LifecycleStation, AlertsAgainstQuarantinedTargetStillAccepted) {
  BaseStation bs(station_config());
  bs.register_beacon(50, {100.0, 100.0});
  // Company in the cell, or the coverage guard would refuse quarantine.
  bs.register_beacon(60, {120.0, 120.0});
  bs.process_alert(11, 50, 201, 0);
  bs.process_alert(12, 50, 202, 1);
  bs.process_alert(13, 50, 203, 2);
  ASSERT_TRUE(bs.is_quarantined(50, 2));
  // Quarantine is not revocation: accusers keep accruing corroboration.
  EXPECT_EQ(bs.process_alert(14, 50, 204, 3), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.stats().alerts_ignored_revoked, 0u);
}

TEST(LifecycleStation, SettleEmitsExonerationStats) {
  BaseStation bs(station_config());
  bs.register_beacon(50, {100.0, 100.0});
  bs.register_beacon(60, {120.0, 120.0});
  bs.process_alert(11, 50, 301, 0);
  bs.process_alert(12, 50, 302, 1);
  bs.process_alert(13, 50, 303, 2);
  ASSERT_TRUE(bs.is_quarantined(50, 2));
  bs.settle(2 + 4 * kHalfLife);
  EXPECT_EQ(bs.stats().exonerations, 1u);
  EXPECT_EQ(bs.lifecycle_phase(50, 2 + 4 * kHalfLife),
            LifecyclePhase::kExonerated);
  EXPECT_TRUE(bs.usable(50, 2 + 4 * kHalfLife));
}

TEST(LifecycleStation, ExportImportRoundTripsMidQuarantine) {
  BaseStation live(station_config());
  live.register_beacon(50, {100.0, 100.0});
  live.register_beacon(1, {100.0, 140.0});
  live.register_beacon(2, {140.0, 100.0});
  live.register_beacon(3, {60.0, 100.0});
  live.register_beacon(4, {100.0, 60.0});
  live.process_alert(1, 50, 401, 1000);
  live.process_alert(2, 50, 402, 2000);
  live.process_alert(3, 50, 403, 3000);
  ASSERT_TRUE(live.is_quarantined(50, 3000));

  BaseStation restored(station_config());
  // Roster is config-derived and re-registered before the image import.
  restored.register_beacon(50, {100.0, 100.0});
  restored.register_beacon(1, {100.0, 140.0});
  restored.register_beacon(2, {140.0, 100.0});
  restored.register_beacon(3, {60.0, 100.0});
  restored.register_beacon(4, {100.0, 60.0});
  restored.import_state(live.export_state());

  EXPECT_EQ(restored.export_state().lifecycle,
            live.export_state().lifecycle);
  EXPECT_TRUE(restored.is_quarantined(50, 3000));
  EXPECT_EQ(restored.evidence(50, 3000), live.evidence(50, 3000));

  // Both stations continue identically from the restored image.
  EXPECT_EQ(live.process_alert(4, 50, 404, 4000),
            restored.process_alert(4, 50, 404, 4000));
  const auto a = live.process_alert(1, 50, 405, 5000);
  const auto b = restored.process_alert(1, 50, 405, 5000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, AlertDisposition::kAcceptedAndRevoked);
  EXPECT_EQ(restored.export_state().lifecycle,
            live.export_state().lifecycle);
}

TEST(LifecycleStation, DisabledLifecycleKeepsSeedBehaviour) {
  RevocationConfig rc;  // lifecycle off
  BaseStation bs(rc);
  bs.register_beacon(50, {100.0, 100.0});  // no-op while disabled
  bs.process_alert(1, 50, 501, 0);
  bs.process_alert(2, 50, 502, 1);
  EXPECT_EQ(bs.process_alert(3, 50, 503, 2),
            AlertDisposition::kAcceptedAndRevoked);
  EXPECT_FALSE(bs.is_quarantined(50, 2));
  EXPECT_EQ(bs.stats().quarantines, 0u);
  EXPECT_TRUE(bs.export_state().lifecycle.empty());
}

}  // namespace
}  // namespace sld::revocation
