#include "revocation/distributed.hpp"

#include <gtest/gtest.h>

namespace sld::revocation {
namespace {

DistributedConfig config(std::uint32_t threshold = 3,
                         std::uint32_t quota = 11) {
  return DistributedConfig{threshold, quota};
}

TEST(VoteAggregator, BlacklistsAtThreshold) {
  VoteAggregator agg(config(3));
  EXPECT_TRUE(agg.on_vote(1, 50));
  EXPECT_TRUE(agg.on_vote(2, 50));
  EXPECT_FALSE(agg.is_blacklisted(50));
  EXPECT_TRUE(agg.on_vote(3, 50));
  EXPECT_TRUE(agg.is_blacklisted(50));
}

TEST(VoteAggregator, DuplicateReportersDoNotCount) {
  // The distinctness rule: one malicious reporter repeating itself can
  // never blacklist a benign target.
  VoteAggregator agg(config(2));
  EXPECT_TRUE(agg.on_vote(1, 50));
  EXPECT_FALSE(agg.on_vote(1, 50));
  EXPECT_FALSE(agg.on_vote(1, 50));
  EXPECT_FALSE(agg.is_blacklisted(50));
  EXPECT_EQ(agg.distinct_reporters_against(50), 1u);
  EXPECT_EQ(agg.stats().votes_duplicate, 2u);
}

TEST(VoteAggregator, PerReporterTargetQuota) {
  VoteAggregator agg(config(1, 2));  // one reporter can accuse 2 targets
  EXPECT_TRUE(agg.on_vote(1, 10));
  EXPECT_TRUE(agg.on_vote(1, 11));
  EXPECT_FALSE(agg.on_vote(1, 12));  // quota hit
  EXPECT_FALSE(agg.is_blacklisted(12));
  EXPECT_EQ(agg.stats().votes_quota_suppressed, 1u);
  // Re-voting an already-accused target is duplicate, not quota.
  EXPECT_FALSE(agg.on_vote(1, 10));
  EXPECT_EQ(agg.stats().votes_duplicate, 1u);
}

TEST(VoteAggregator, IndependentTargets) {
  VoteAggregator agg(config(2));
  agg.on_vote(1, 10);
  agg.on_vote(2, 10);
  agg.on_vote(1, 20);
  EXPECT_TRUE(agg.is_blacklisted(10));
  EXPECT_FALSE(agg.is_blacklisted(20));
}

TEST(VoteAggregator, CollusionBoundedByQuotaTimesColluders) {
  // N_a colluders with quota q can blacklist at most the targets they can
  // jointly push past the threshold: q * N_a / threshold.
  const std::uint32_t threshold = 3, quota = 6;
  VoteAggregator agg(config(threshold, quota));
  const std::vector<sim::NodeId> colluders{100, 101, 102};
  // They coordinate: all three accuse the same targets.
  for (sim::NodeId target = 1; target <= 20; ++target)
    for (const auto c : colluders) agg.on_vote(c, target);
  // Each colluder exhausts its quota after 6 targets -> 6 blacklisted.
  EXPECT_EQ(agg.blacklist().size(), 6u);
}

TEST(VoteAggregator, StatsAreConsistent) {
  VoteAggregator agg(config(2, 1));
  agg.on_vote(1, 10);
  agg.on_vote(1, 10);  // duplicate
  agg.on_vote(1, 11);  // quota suppressed
  agg.on_vote(2, 10);  // counted, blacklists 10
  const auto& s = agg.stats();
  EXPECT_EQ(s.votes_heard, 4u);
  EXPECT_EQ(s.votes_counted, 2u);
  EXPECT_EQ(s.votes_duplicate, 1u);
  EXPECT_EQ(s.votes_quota_suppressed, 1u);
}

TEST(LocalBlacklist, ConvenienceMatchesAggregator) {
  const std::vector<sim::AlertPayload> votes{
      {1, 50}, {2, 50}, {3, 50}, {1, 60}};
  const auto bl = local_blacklist(votes, config(3));
  EXPECT_EQ(bl.size(), 1u);
  EXPECT_TRUE(bl.contains(50));
}

TEST(LocalBlacklist, EmptyVotesEmptyBlacklist) {
  EXPECT_TRUE(local_blacklist({}, config()).empty());
}

}  // namespace
}  // namespace sld::revocation
