#include <gtest/gtest.h>

#include "ranging/echo.hpp"
#include "ranging/tdoa.hpp"
#include "util/rng.hpp"

namespace sld::ranging {
namespace {

// --- Echo protocol (related work [26]) ---------------------------------

TEST(Echo, AcceptsProversInsideRegion) {
  EchoVerifier v;
  EchoClaim claim{{0, 0}, 100.0};
  EXPECT_TRUE(v.accepts(claim, 0.0));
  EXPECT_TRUE(v.accepts(claim, 50.0));
  EXPECT_TRUE(v.accepts(claim, 100.0));
}

TEST(Echo, RejectsProversOutsideRegion) {
  EchoVerifier v;
  EchoClaim claim{{0, 0}, 100.0};
  // Sound dominates: a prover 150 ft away cannot echo in time even with
  // zero processing delay.
  EXPECT_FALSE(v.accepts(claim, 150.0));
  EXPECT_FALSE(v.accepts(claim, 1000.0));
}

TEST(Echo, ProverCannotPretendToBeCloser) {
  // The protocol's soundness: any delay only increases the round trip.
  EchoVerifier v;
  EchoClaim claim{{0, 0}, 100.0};
  const double honest = v.round_trip_s(150.0, 0.0);
  for (const double delay : {1e-6, 1e-3, 0.1}) {
    EXPECT_GT(v.round_trip_s(150.0, delay), honest);
    EXPECT_FALSE(v.accepts(claim, 150.0, delay));
  }
  // Negative delay (replying before receiving) is physically impossible.
  EXPECT_THROW(v.round_trip_s(150.0, -1e-9), std::invalid_argument);
}

TEST(Echo, ProverCanPretendToBeFarther) {
  // The asymmetry the paper exploits when explaining why verification
  // alone cannot stop compromised beacons: an in-region prover can always
  // stall and look out-of-region (deny being nearby), the reverse is
  // impossible.
  EchoVerifier v;
  EchoClaim claim{{0, 0}, 100.0};
  EXPECT_TRUE(v.accepts(claim, 50.0, 0.0));
  EXPECT_FALSE(v.accepts(claim, 50.0, 1.0));  // stalls a second: "far away"
}

TEST(Echo, ThresholdScalesWithRegion) {
  EchoVerifier v;
  EXPECT_LT(v.max_round_trip_s({{0, 0}, 50.0}),
            v.max_round_trip_s({{0, 0}, 200.0}));
}

TEST(Echo, Validation) {
  EchoConfig bad;
  bad.speed_of_sound_ft_per_s = 0.0;
  EXPECT_THROW(EchoVerifier{bad}, std::invalid_argument);
  EchoVerifier v;
  EXPECT_THROW(v.max_round_trip_s({{0, 0}, 0.0}), std::invalid_argument);
  EXPECT_THROW(v.round_trip_s(-1.0, 0.0), std::invalid_argument);
}

// --- TDoA and its §2.3 weakness -----------------------------------------

TEST(Tdoa, HonestErrorWithinBound) {
  TdoaRangingModel model;
  util::Rng rng(1);
  const double bound = model.max_error_ft();
  EXPECT_NEAR(bound, 4.0, 0.1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform(0.0, 150.0);
    EXPECT_LE(std::abs(model.measure(d, rng) - d), bound + 1e-9);
  }
}

TEST(Tdoa, InjectedPulseShrinksDistanceWithoutKeys) {
  // The §2.3 weakness: an attacker near the receiver injects an early
  // ultrasound pulse; the measured distance collapses toward the
  // attacker's distance even though every RF packet stays authentic.
  TdoaRangingModel model;
  util::Rng rng(2);
  const double true_d = 120.0;
  const double attacker_d = 20.0;
  for (int i = 0; i < 1000; ++i) {
    const double m =
        model.measure_with_injected_pulse(true_d, attacker_d, 0.0, rng);
    EXPECT_LT(m, 30.0);  // looks ~20 ft away instead of 120
  }
}

TEST(Tdoa, InjectionLeadShrinksFurther) {
  TdoaRangingModel model;
  util::Rng rng(3);
  // Leading the genuine pulse by 50 ms removes ~56 ft more.
  const double without_lead = model.measure_with_injected_pulse(
      120.0, 100.0, 0.0, rng);
  const double with_lead = model.measure_with_injected_pulse(
      120.0, 100.0, 0.05, rng);
  EXPECT_GT(without_lead - with_lead, 40.0);
}

TEST(Tdoa, LateInjectionIsHarmless) {
  // If the attacker is farther than the beacon and doesn't lead, the
  // genuine pulse wins the race.
  TdoaRangingModel model;
  util::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double m =
        model.measure_with_injected_pulse(50.0, 140.0, 0.0, rng);
    EXPECT_NEAR(m, 50.0, model.max_error_ft() + 1e-9);
  }
}

TEST(Tdoa, AttackEvadesDistanceConsistencyOnlyPartially) {
  // Why the paper's detector still helps: the shrunk distance is
  // inconsistent with the (authenticated) claimed location, so a
  // detecting node flags the signal — it just cannot attribute it to the
  // beacon, since the beacon never misbehaved. Detection of the *signal*
  // still protects the localization.
  TdoaRangingModel model;
  util::Rng rng(5);
  const double true_d = 120.0;
  const double measured =
      model.measure_with_injected_pulse(true_d, 20.0, 0.0, rng);
  EXPECT_GT(std::abs(true_d - measured), model.max_error_ft());
}

TEST(Tdoa, Validation) {
  TdoaConfig bad;
  bad.speed_of_sound_ft_per_s = -1.0;
  EXPECT_THROW(TdoaRangingModel{bad}, std::invalid_argument);
  TdoaRangingModel model;
  util::Rng rng(6);
  EXPECT_THROW(model.measure(-1.0, rng), std::invalid_argument);
  EXPECT_THROW(model.measure_with_injected_pulse(1.0, -1.0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(model.measure_with_injected_pulse(1.0, 1.0, -0.1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sld::ranging
