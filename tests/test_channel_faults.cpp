// Fault-injection coverage: i.i.d. and bursty loss, duplication,
// corruption-rejected-by-MAC, crash windows, delay jitter, and the ARQ
// timeout schedule — all with deterministic seeds.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/invariant.hpp"
#include "crypto/mac.hpp"
#include "sim/arq.hpp"
#include "sim/channel.hpp"
#include "sim/network.hpp"

namespace sld::sim {
namespace {

/// Records every delivery it receives.
class RecorderNode final : public Node {
 public:
  using Node::Node;
  void on_message(const Delivery& d) override { deliveries.push_back(d); }
  std::vector<Delivery> deliveries;
};

Message make_msg(NodeId src, NodeId dst) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = MsgType::kAppData;
  m.payload = {1, 2, 3};
  return m;
}

ChannelConfig with_faults(FaultPlan plan) {
  ChannelConfig cc;
  cc.faults = std::move(plan);
  return cc;
}

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  EXPECT_FALSE(FaultPlan{}.any_enabled());
  Network net{ChannelConfig{}, 42};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{50, 0}, 150.0);
  for (int i = 0; i < 100; ++i) net.channel().unicast(a, make_msg(1, 2));
  net.run();
  EXPECT_EQ(b.deliveries.size(), 100u);
  const auto& s = net.channel().stats();
  EXPECT_EQ(s.dropped_by_fault, 0u);
  EXPECT_EQ(s.duplicates, 0u);
  EXPECT_EQ(s.corrupted, 0u);
  EXPECT_EQ(s.crashed_drops, 0u);
}

TEST(FaultPlan, ZeroFaultPlanMatchesDefaultDeliveryTimesExactly) {
  // An explicitly constructed all-off plan must leave the event sequence
  // bit-for-bit identical to the default configuration.
  FaultPlan off;
  off.loss_probability = 0.0;
  off.burst = GilbertElliottConfig{};
  Network plain{ChannelConfig{}, 7};
  Network planned{with_faults(off), 7};
  std::vector<SimTime> rx_plain, rx_planned;
  for (Network* net : {&plain, &planned}) {
    auto& a = net->emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
    auto& b = net->emplace_node<RecorderNode>(2, util::Vec2{120, 30}, 150.0);
    for (int i = 0; i < 50; ++i) net->channel().unicast(a, make_msg(1, 2));
    net->run();
    auto& out = net == &plain ? rx_plain : rx_planned;
    for (const auto& d : b.deliveries) out.push_back(d.rx_time);
  }
  EXPECT_EQ(rx_plain, rx_planned);
}

TEST(FaultPlan, IidLossDropsRoughlyAtRate) {
  FaultPlan plan;
  plan.loss_probability = 0.3;
  Network net{with_faults(plan), 11};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{10, 0}, 150.0);
  for (int i = 0; i < 2000; ++i) net.channel().unicast(a, make_msg(1, 2));
  net.run();
  const auto& s = net.channel().stats();
  EXPECT_EQ(s.dropped_by_fault + b.deliveries.size(), 2000u);
  EXPECT_GT(s.dropped_by_fault, 480u);  // ~600 expected
  EXPECT_LT(s.dropped_by_fault, 720u);
  EXPECT_EQ(s.losses, 0u);  // the legacy iid path stayed quiet
}

TEST(FaultPlan, GilbertElliottAveragesToTargetAndBursts) {
  const auto ge = GilbertElliottConfig::for_average_loss(0.2, 5.0);
  EXPECT_NEAR(ge.p_enter_bad / (ge.p_enter_bad + ge.p_exit_bad), 0.2, 1e-12);

  FaultPlan plan;
  plan.burst = ge;
  Network net{with_faults(plan), 13};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{10, 0}, 150.0);
  const int kPackets = 5000;
  // Send strictly sequentially so the per-link chain sees an ordered
  // stream; tag packets through the payload to recover the drop pattern.
  for (int i = 0; i < kPackets; ++i) {
    Message m = make_msg(1, 2);
    m.payload = {static_cast<std::uint8_t>(i & 0xff),
                 static_cast<std::uint8_t>((i >> 8) & 0xff)};
    net.channel().unicast(a, m);
  }
  net.run();
  const double loss_rate =
      static_cast<double>(net.channel().stats().dropped_by_fault) / kPackets;
  EXPECT_GT(loss_rate, 0.12);
  EXPECT_LT(loss_rate, 0.28);

  // Losses must arrive in bursts: the longest run of consecutive drops
  // should far exceed what i.i.d. loss at the same rate would produce.
  std::vector<bool> delivered(kPackets, false);
  for (const auto& d : b.deliveries) {
    const int seq = d.msg.payload[0] | (d.msg.payload[1] << 8);
    delivered[static_cast<std::size_t>(seq)] = true;
  }
  int longest_run = 0, run = 0;
  for (int i = 0; i < kPackets; ++i) {
    run = delivered[static_cast<std::size_t>(i)] ? 0 : run + 1;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_GE(longest_run, 8);  // mean burst 5 => runs well beyond iid's ~3
}

TEST(FaultPlan, DuplicationDeliversExtraCopies) {
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  Network net{with_faults(plan), 17};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{50, 0}, 150.0);
  for (int i = 0; i < 10; ++i) net.channel().unicast(a, make_msg(1, 2));
  net.run();
  EXPECT_EQ(b.deliveries.size(), 20u);
  EXPECT_EQ(net.channel().stats().duplicates, 10u);
  // Duplicates trail the originals by one packet air time.
  EXPECT_GT(b.deliveries.back().rx_time, b.deliveries.front().rx_time);
}

TEST(FaultPlan, CorruptionIsRejectedByMac) {
  FaultPlan plan;
  plan.corruption_probability = 1.0;
  Network net{with_faults(plan), 19};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{50, 0}, 150.0);

  crypto::Key128 key{0x12, 0x34, 0x56, 0x78};
  Message m = make_msg(1, 2);
  m.mac = crypto::compute_mac(key, m.src, m.dst, m.payload);
  ASSERT_TRUE(crypto::verify_mac(key, m.src, m.dst, m.payload, m.mac));

  net.channel().unicast(a, m);
  net.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(net.channel().stats().corrupted, 1u);
  const auto& rx = b.deliveries[0].msg;
  // Same length, flipped content: authentication must fail.
  EXPECT_EQ(rx.payload.size(), m.payload.size());
  EXPECT_FALSE(crypto::verify_mac(key, rx.src, rx.dst, rx.payload, rx.mac));
}

TEST(FaultPlan, CrashWindowSilencesNodeBothWays) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{2, 0, kSecond});
  Network net{with_faults(plan), 23};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{50, 0}, 150.0);

  // Delivery would arrive inside the window: receiver is down.
  net.channel().unicast(a, make_msg(1, 2));
  // A crashed node cannot send either.
  net.scheduler().schedule_at(kSecond / 2, [&]() {
    net.channel().unicast(b, make_msg(2, 1));
  });
  // After reboot traffic flows again.
  net.scheduler().schedule_at(2 * kSecond, [&]() {
    net.channel().unicast(a, make_msg(1, 2));
  });
  net.run();
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_TRUE(a.deliveries.empty());
  EXPECT_EQ(net.channel().stats().crashed_drops, 2u);
}

TEST(FaultPlan, PartitionBlocksCrossCutTrafficBothWaysThenHeals) {
  FaultPlan plan;
  plan.partitions.push_back(PartitionWindow{{1}, 0, kSecond});
  Network net{with_faults(plan), 37};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{50, 0}, 150.0);
  auto& c = net.emplace_node<RecorderNode>(3, util::Vec2{0, 50}, 150.0);
  net.start_all();
  // Inside the window: anything crossing the {1} | {2, 3} cut dies in
  // both directions; traffic within one side flows.
  net.channel().unicast(a, make_msg(1, 2));
  net.channel().unicast(b, make_msg(2, 1));
  net.channel().unicast(b, make_msg(2, 3));
  // After the heal the same cut-crossing links deliver.
  net.scheduler().schedule_at(2 * kSecond, [&]() {
    net.channel().unicast(a, make_msg(1, 2));
    net.channel().unicast(b, make_msg(2, 1));
  });
  net.run();
  EXPECT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(a.deliveries.size(), 1u);
  const auto& s = net.channel().stats();
  EXPECT_EQ(s.partition_drops, 2u);
  EXPECT_EQ(s.dropped_by_fault, 0u);
  // Conservation across the new outcome class.
  EXPECT_EQ(s.deliveries + s.losses + s.dropped_by_fault +
                s.crashed_rx_drops + s.partition_drops,
            s.delivery_attempts + s.duplicates);
}

/// Node whose owned timers count their firings; lets tests observe the
/// crash/reboot timer fence from outside.
class TimerNode final : public Node {
 public:
  using Node::Node;
  void on_message(const Delivery&) override {}
  void arm(SimTime delay) {
    schedule_timer(delay, [this]() { ++fired; });
  }
  int fired = 0;
};

TEST(FaultPlan, CrashDropsOwnedTimersAndRebootFencesOldEpoch) {
  const auto violations_before = check::invariant_failure_count();
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{4, kSecond, 2 * kSecond});
  Network net{with_faults(plan), 41};
  auto& n = net.emplace_node<TimerNode>(4, util::Vec2{0, 0}, 150.0);
  net.start_all();
  // Armed before the crash, due inside the window: dropped (node down).
  n.arm(kSecond + kMillisecond);
  // Armed before the crash, due after the reboot: dropped too — volatile
  // timer state does not survive the crash (stale boot epoch).
  n.arm(3 * kSecond);
  // Armed after the reboot: fires normally.
  net.scheduler().schedule_at(2 * kSecond + kMillisecond,
                              [&]() { n.arm(kMillisecond); });
  net.run();
  EXPECT_EQ(n.fired, 1);
  EXPECT_EQ(n.timers_dropped(), 2u);
  EXPECT_EQ(n.boot_epoch(), 1u);
  // The drops were clean refusals, not invariant violations: no timer
  // body ever ran while its owner was down.
  EXPECT_EQ(check::invariant_failure_count(), violations_before);
}

TEST(FaultPlan, DriftAndPartitionValidationRejected) {
  FaultPlan bad_drift;
  bad_drift.clock_drift.max_drift_ppm = -1.0;
  EXPECT_THROW((Network{with_faults(bad_drift), 1}), std::invalid_argument);

  FaultPlan bad_turnaround;
  bad_turnaround.clock_drift.max_drift_ppm = 10.0;
  bad_turnaround.clock_drift.turnaround_cycles = 0.0;
  EXPECT_THROW((Network{with_faults(bad_turnaround), 1}),
               std::invalid_argument);

  FaultPlan empty_window;
  empty_window.partitions.push_back(PartitionWindow{{1}, 5, 5});
  EXPECT_THROW((Network{with_faults(empty_window), 1}),
               std::invalid_argument);

  FaultPlan empty_side;
  empty_side.partitions.push_back(PartitionWindow{{}, 0, 5});
  EXPECT_THROW((Network{with_faults(empty_side), 1}), std::invalid_argument);
}

TEST(FaultPlan, PerNodeAndPerLinkLossAreScoped) {
  FaultPlan plan;
  plan.node_loss[3] = 1.0;                         // node 3 hears nothing
  plan.link_loss[FaultPlan::link_key(1, 2)] = 1.0;  // link 1->2 is dead
  Network net{with_faults(plan), 29};
  auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{50, 0}, 150.0);
  auto& c = net.emplace_node<RecorderNode>(3, util::Vec2{0, 50}, 150.0);
  net.channel().unicast(a, make_msg(1, 2));  // dead link
  net.channel().unicast(a, make_msg(1, 3));  // deaf node
  net.channel().unicast(b, make_msg(2, 1));  // unaffected
  net.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_TRUE(c.deliveries.empty());
  EXPECT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(net.channel().stats().dropped_by_fault, 2u);
}

TEST(FaultPlan, DelayJitterIsBoundedAndDeterministic) {
  FaultPlan plan;
  plan.max_extra_delay_ns = 10 * kMillisecond;
  std::vector<SimTime> first_run;
  for (int rep = 0; rep < 2; ++rep) {
    Network net{with_faults(plan), 31};
    auto& a = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
    auto& b = net.emplace_node<RecorderNode>(2, util::Vec2{100, 0}, 150.0);
    for (int i = 0; i < 50; ++i) net.channel().unicast(a, make_msg(1, 2));
    net.run();
    ASSERT_EQ(b.deliveries.size(), 50u);
    std::vector<SimTime> times;
    for (const auto& d : b.deliveries) times.push_back(d.rx_time);
    // Base delay is ~8 ms air time; jitter adds [0, 10 ms).
    for (const auto t : times) {
      EXPECT_GE(t, 7 * kMillisecond);
      EXPECT_LE(t, 19 * kMillisecond);
    }
    if (rep == 0)
      first_run = times;
    else
      EXPECT_EQ(times, first_run);  // same seed => same jitter
  }
}

TEST(FaultPlan, InvalidParametersRejected) {
  FaultPlan bad_loss;
  bad_loss.loss_probability = 1.5;
  EXPECT_THROW((Network{with_faults(bad_loss), 1}), std::invalid_argument);

  FaultPlan bad_window;
  bad_window.crashes.push_back(CrashWindow{1, 100, 100});
  EXPECT_THROW((Network{with_faults(bad_window), 1}), std::invalid_argument);

  EXPECT_THROW(GilbertElliottConfig::for_average_loss(1.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliottConfig::for_average_loss(0.1, 0.5),
               std::invalid_argument);
}

TEST(Arq, TimeoutBacksOffExponentiallyWithBoundedJitter) {
  ArqConfig arq;
  arq.enabled = true;
  arq.initial_timeout_ns = 100 * kMillisecond;
  arq.backoff_factor = 2.0;
  arq.jitter_fraction = 0.1;
  util::Rng rng(5);
  for (std::size_t attempt = 0; attempt < 4; ++attempt) {
    const double nominal =
        static_cast<double>(arq.initial_timeout_ns) *
        std::pow(arq.backoff_factor, static_cast<double>(attempt));
    for (int i = 0; i < 100; ++i) {
      const SimTime t = arq_timeout(arq, attempt, rng);
      EXPECT_GE(static_cast<double>(t), nominal * 0.9);
      EXPECT_LE(static_cast<double>(t), nominal * 1.1);
    }
  }
}

TEST(Arq, NoJitterIsDeterministicAndDrawsNothing) {
  ArqConfig arq;
  arq.initial_timeout_ns = 100 * kMillisecond;
  arq.jitter_fraction = 0.0;
  util::Rng rng(5);
  const auto before = rng();
  util::Rng rng2(5);
  (void)rng2();
  EXPECT_EQ(arq_timeout(arq, 0, rng2), 100 * kMillisecond);
  EXPECT_EQ(arq_timeout(arq, 2, rng2), 400 * kMillisecond);
  // No randomness consumed: the next draw matches a fresh stream.
  util::Rng rng3(5);
  (void)rng3();
  EXPECT_EQ(rng2(), rng3());
  (void)before;
}

TEST(Arq, InvalidConfigRejected) {
  util::Rng rng(1);
  ArqConfig bad;
  bad.initial_timeout_ns = 0;
  EXPECT_THROW(arq_timeout(bad, 0, rng), std::invalid_argument);
  bad.initial_timeout_ns = kMillisecond;
  bad.backoff_factor = 0.5;
  EXPECT_THROW(arq_timeout(bad, 0, rng), std::invalid_argument);
  bad.backoff_factor = 2.0;
  bad.jitter_fraction = 1.0;
  EXPECT_THROW(arq_timeout(bad, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace sld::sim
