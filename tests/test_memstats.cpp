// Allocation-telemetry determinism: scope attribution (innermost tag
// wins, frees credited to the allocating scope), the headline invariant —
// a memstats-on trial is bit-for-bit identical to a memstats-off one on
// every simulation output — exact per-scope and roll-up stability across
// --jobs 1 vs 4, and a property test over random scope nestings (repro
// via SLD_PROP_SEED, like every prop test).
#include "obs/memstats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/secure_localization.hpp"
#include "obs/trace.hpp"
#include "prop/prop.hpp"
#include "util/geometry.hpp"

namespace sld {
namespace {

using obs::MemScopeStats;
using obs::Memstats;

// Defeats allocation elision: at -O2 the compiler may fold a matched
// new/delete pair away entirely (no operator call at all), which would
// make these tests vacuous. Passing the pointer through an opaque asm
// boundary forces the allocation to actually happen.
char* opaque(char* p) {
  asm volatile("" : "+r"(p) : : "memory");
  return p;
}

// A small paper-shaped trial, fast enough to run several times per test.
core::SystemConfig small_config(std::uint64_t seed) {
  core::SystemConfig c;
  c.deployment.total_nodes = 200;
  c.deployment.beacon_count = 20;
  c.deployment.malicious_beacon_count = 2;
  c.deployment.field = util::Rect::square(450.0);
  c.rtt_calibration_samples = 1000;
  c.seed = seed;
  return c;
}

// --- scope attribution -----------------------------------------------------

TEST(Memstats, DisabledScopeRecordsNothing) {
  Memstats::set_enabled(false);
  const MemScopeStats before = Memstats::thread_totals_for("ms_test_off");
  {
    SLD_MEM_SCOPE("ms_test_off");
    char* p = opaque(new char[512]);
    delete[] p;
  }
  const MemScopeStats after = Memstats::thread_totals_for("ms_test_off");
  EXPECT_EQ(after.allocs, before.allocs);
  EXPECT_EQ(after.alloc_bytes, before.alloc_bytes);
  EXPECT_EQ(after.frees, before.frees);
}

TEST(Memstats, ScopeCountsAllocsBytesAndMatchedFrees) {
  Memstats::set_enabled(true);
  const MemScopeStats before = Memstats::thread_totals_for("ms_test_a");
  char* p = nullptr;
  {
    SLD_MEM_SCOPE("ms_test_a");
    p = opaque(new char[1000]);
  }
  // The free happens OUTSIDE the scope: the pointer table must still
  // credit it back to the allocating scope.
  delete[] p;
  const MemScopeStats after = Memstats::thread_totals_for("ms_test_a");
  Memstats::set_enabled(false);
  EXPECT_EQ(after.allocs - before.allocs, 1u);
  EXPECT_GE(after.alloc_bytes - before.alloc_bytes, 1000u);
  EXPECT_EQ(after.frees - before.frees, 1u);
  EXPECT_EQ(after.freed_bytes - before.freed_bytes,
            after.alloc_bytes - before.alloc_bytes);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(Memstats, InnermostScopeWinsAndOuterResumesAfter) {
  Memstats::set_enabled(true);
  const MemScopeStats outer0 = Memstats::thread_totals_for("ms_test_out");
  const MemScopeStats inner0 = Memstats::thread_totals_for("ms_test_in");
  {
    SLD_MEM_SCOPE("ms_test_out");
    char* a = opaque(new char[64]);
    {
      SLD_MEM_SCOPE("ms_test_in");
      char* b = opaque(new char[128]);
      delete[] b;
    }
    char* c = opaque(new char[64]);
    delete[] a;
    delete[] c;
  }
  const MemScopeStats outer1 = Memstats::thread_totals_for("ms_test_out");
  const MemScopeStats inner1 = Memstats::thread_totals_for("ms_test_in");
  Memstats::set_enabled(false);
  // The inner allocation went to the inner tag only; the outer tag got
  // the allocations before AND after the nested scope.
  EXPECT_EQ(inner1.allocs - inner0.allocs, 1u);
  EXPECT_EQ(outer1.allocs - outer0.allocs, 2u);
  EXPECT_EQ(inner1.frees - inner0.frees, 1u);
  EXPECT_EQ(outer1.frees - outer0.frees, 2u);
}

TEST(Memstats, UnscopedAllocationsPassThroughUnrecorded) {
  Memstats::set_enabled(true);
  const auto snaps_before = Memstats::snapshot();
  std::uint64_t total_before = 0;
  for (const auto& s : snaps_before) total_before += s.stats.allocs;
  char* p = opaque(new char[2048]);  // no SLD_MEM_SCOPE anywhere
  delete[] p;
  const auto snaps_after = Memstats::snapshot();
  Memstats::set_enabled(false);
  std::uint64_t total_after = 0;
  for (const auto& s : snaps_after) total_after += s.stats.allocs;
  EXPECT_EQ(total_after, total_before);
}

// --- the headline invariant ------------------------------------------------

TEST(Memstats, MemstatsOnTrialIsBitForBitIdenticalToOff) {
  obs::MemorySink trace_off, trace_on;
  obs::MemorySink ts_off, ts_on;

  const auto run_with = [&](bool memstats, obs::MemorySink* trace,
                            obs::MemorySink* ts) {
    core::SystemConfig c = small_config(31);
    c.memstats = memstats;
    c.trace_sink = trace;
    c.telemetry.enabled = true;
    c.telemetry.cadence_ns = 250'000'000;
    c.telemetry.sink = ts;
    core::SecureLocalizationSystem sys(c);
    return sys.run();
  };
  const core::TrialSummary off = run_with(false, &trace_off, &ts_off);
  const core::TrialSummary on = run_with(true, &trace_on, &ts_on);
  Memstats::set_enabled(false);

  // The event trace is byte-identical: memstats drew no randomness,
  // scheduled nothing, and perturbed no event ordering.
  ASSERT_GT(trace_off.lines().size(), 0u);
  EXPECT_EQ(trace_on.lines(), trace_off.lines());

  // The telemetry stream keeps identical window timing (the on-stream
  // legitimately gains mem.*/hot.* instrument entries, so full lines are
  // compared only up to each record's timestamp field).
  ASSERT_EQ(ts_on.lines().size(), ts_off.lines().size());
  for (std::size_t i = 0; i < ts_on.lines().size(); ++i) {
    const auto stamp = [](const std::string& line) {
      return line.substr(0, line.find(','));
    };
    EXPECT_EQ(stamp(ts_on.lines()[i]), stamp(ts_off.lines()[i])) << i;
  }

  // Every simulation output matches exactly.
  EXPECT_EQ(on.sched_events, off.sched_events);
  EXPECT_EQ(on.channel.transmissions, off.channel.transmissions);
  EXPECT_EQ(on.channel.deliveries, off.channel.deliveries);
  EXPECT_EQ(on.channel.losses, off.channel.losses);
  EXPECT_EQ(on.malicious_revoked, off.malicious_revoked);
  EXPECT_EQ(on.benign_revoked, off.benign_revoked);
  EXPECT_EQ(on.sensors_localized, off.sensors_localized);
  EXPECT_EQ(on.detection_rate, off.detection_rate);
  EXPECT_EQ(on.false_positive_rate, off.false_positive_rate);
  EXPECT_EQ(on.mean_localization_error_ft, off.mean_localization_error_ft);
  EXPECT_EQ(on.radio_energy_uj, off.radio_energy_uj);

  // And only the on-run carries a memstats roll-up, with real content.
  EXPECT_FALSE(off.memhot.enabled);
  ASSERT_TRUE(on.memhot.enabled);
  EXPECT_GT(on.memhot.allocs, 0u);
  EXPECT_GT(on.memhot.scans, 0u);
  EXPECT_GT(on.memhot.max_queue_depth, 0u);
  EXPECT_GT(on.memhot.sift_down_steps, 0u);
}

// --- jobs invariance -------------------------------------------------------

// Sums each scope's (allocs, alloc_bytes, frees) across all threads.
std::map<std::string, std::array<std::uint64_t, 3>> scope_counts() {
  std::map<std::string, std::array<std::uint64_t, 3>> out;
  for (const auto& s : Memstats::snapshot()) {
    out[s.name] = {s.stats.allocs, s.stats.alloc_bytes, s.stats.frees};
  }
  return out;
}

TEST(Memstats, RollupAndPerScopeCountsIdenticalAcrossJobs1And4) {
  const auto run_jobs = [](std::size_t jobs) {
    core::ExperimentConfig e;
    e.base = small_config(7);
    e.base.memstats = true;
    e.trials = 4;
    e.jobs = jobs;
    return core::run_experiment(e);
  };

  const auto before1 = scope_counts();
  const auto agg1 = run_jobs(1);
  const auto mid = scope_counts();
  const auto agg4 = run_jobs(4);
  const auto after = scope_counts();
  Memstats::set_enabled(false);

  // The per-trial roll-up merged into the aggregate: every exact field
  // identical between serial and fanned-out execution.
  ASSERT_TRUE(agg1.memhot.enabled);
  ASSERT_TRUE(agg4.memhot.enabled);
  EXPECT_EQ(agg4.memhot.allocs, agg1.memhot.allocs);
  EXPECT_EQ(agg4.memhot.alloc_bytes, agg1.memhot.alloc_bytes);
  EXPECT_EQ(agg4.memhot.frees, agg1.memhot.frees);
  EXPECT_EQ(agg4.memhot.freed_bytes, agg1.memhot.freed_bytes);
  EXPECT_EQ(agg4.memhot.max_queue_depth, agg1.memhot.max_queue_depth);
  EXPECT_EQ(agg4.memhot.sift_up_steps, agg1.memhot.sift_up_steps);
  EXPECT_EQ(agg4.memhot.sift_down_steps, agg1.memhot.sift_down_steps);
  EXPECT_EQ(agg4.memhot.scans, agg1.memhot.scans);
  EXPECT_EQ(agg4.memhot.scan_nodes, agg1.memhot.scan_nodes);
  EXPECT_GT(agg1.memhot.allocs, 0u);

  // The simulation itself matched too (seed-ordered merge contract).
  EXPECT_EQ(agg4.total_sched_events, agg1.total_sched_events);
  EXPECT_EQ(agg4.detection_rate.mean(), agg1.detection_rate.mean());

  // Global per-scope counters advanced by the same amount in both runs:
  // trials are sealed to one worker, so fan-out cannot shift attribution.
  for (const auto& [scope, counts1] : mid) {
    const auto b = before1.count(scope) ? before1.at(scope)
                                        : std::array<std::uint64_t, 3>{};
    const auto a = after.at(scope);
    const std::array<std::uint64_t, 3> delta_jobs1{
        counts1[0] - b[0], counts1[1] - b[1], counts1[2] - b[2]};
    const std::array<std::uint64_t, 3> delta_jobs4{
        a[0] - counts1[0], a[1] - counts1[1], a[2] - counts1[2]};
    EXPECT_EQ(delta_jobs4, delta_jobs1) << "scope " << scope;
  }
}

// --- property: random scope nestings account exactly -----------------------

// Walks the case recursively: element i opens scope tags[v % 3], makes
// one v-sized allocation, recurses into the rest, then frees — an
// arbitrary nesting of scopes with interleaved lifetimes.
void nest_and_allocate(const std::vector<std::int64_t>& ops, std::size_t i,
                       const std::vector<const char*>& tags) {
  if (i >= ops.size()) return;
  const std::int64_t v = ops[i];
  SLD_MEM_SCOPE(tags[static_cast<std::size_t>(v) % tags.size()]);
  char* p = opaque(new char[static_cast<std::size_t>(16 + v)]);
  nest_and_allocate(ops, i + 1, tags);
  delete[] p;
}

TEST(Memstats, PropRandomScopeNestingsAccountExactly) {
  static const std::vector<const char*> kTags{"ms_prop_a", "ms_prop_b",
                                              "ms_prop_c"};
  Memstats::set_enabled(true);
  const bool ok = prop::forall(
      "random scope nestings account exactly",
      prop::vector_of(prop::int_range(0, 4096), 1, 16),
      [&](const std::vector<std::int64_t>& ops) {
        std::array<MemScopeStats, 3> before;
        for (std::size_t k = 0; k < kTags.size(); ++k)
          before[k] = Memstats::thread_totals_for(kTags[k]);

        nest_and_allocate(ops, 0, kTags);

        // Reference model: element v allocates 16+v bytes under tag v%3.
        std::array<std::uint64_t, 3> want_allocs{}, want_bytes{};
        for (const std::int64_t v : ops) {
          const auto k = static_cast<std::size_t>(v) % kTags.size();
          want_allocs[k] += 1;
          want_bytes[k] += static_cast<std::uint64_t>(16 + v);
        }
        for (std::size_t k = 0; k < kTags.size(); ++k) {
          const MemScopeStats now = Memstats::thread_totals_for(kTags[k]);
          if (now.allocs - before[k].allocs != want_allocs[k]) return false;
          if (now.alloc_bytes - before[k].alloc_bytes != want_bytes[k])
            return false;
          // Every pointer was freed, and matched back to its scope.
          if (now.frees - before[k].frees != want_allocs[k]) return false;
          if (now.live_bytes != before[k].live_bytes) return false;
        }
        return true;
      },
      prop::Config{});
  Memstats::set_enabled(false);
  EXPECT_TRUE(ok);
}

// --- roll-up merge ---------------------------------------------------------

TEST(Memstats, MemHotTotalsMergeSumsCountsAndMaxesDepths) {
  obs::MemHotTotals a;
  a.enabled = true;
  a.allocs = 10;
  a.alloc_bytes = 100;
  a.max_queue_depth = 5;
  a.queue_depth_p99 = 4.0;
  a.scans = 3;
  a.scan_nodes = 9;
  obs::MemHotTotals b;
  b.enabled = true;
  b.allocs = 7;
  b.alloc_bytes = 50;
  b.max_queue_depth = 9;
  b.queue_depth_p99 = 2.0;
  b.scans = 1;
  b.scan_nodes = 5;
  a.merge(b);
  EXPECT_TRUE(a.enabled);
  EXPECT_EQ(a.allocs, 17u);
  EXPECT_EQ(a.alloc_bytes, 150u);
  EXPECT_EQ(a.max_queue_depth, 9u);  // max, not sum
  EXPECT_EQ(a.queue_depth_p99, 4.0);
  EXPECT_EQ(a.scans, 4u);
  EXPECT_EQ(a.scan_nodes, 14u);
  EXPECT_DOUBLE_EQ(a.scan_fanout_mean(), 14.0 / 4.0);
}

}  // namespace
}  // namespace sld
