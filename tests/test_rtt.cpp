#include "ranging/rtt.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace sld::ranging {
namespace {

TEST(TimeConstants, CyclesPerBitIs384) {
  // 7.3728 MHz / 19.2 kbps = 384 exactly, as the paper states.
  EXPECT_DOUBLE_EQ(sim::kCyclesPerBit, 384.0);
}

TEST(MoteTimingModel, SamplesWithinTheoreticalEnvelope) {
  MoteTimingModel model;
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform(0.0, 150.0);
    const double rtt = model.sample_rtt_cycles(d, rng);
    EXPECT_GE(rtt, model.min_possible_cycles());
    EXPECT_LE(rtt, model.max_possible_cycles(150.0));
  }
}

TEST(MoteTimingModel, SpanIsAboutFourPointFiveBits) {
  // The calibrated envelope (ignoring the tiny propagation term) must match
  // the paper's "4.5 bits" span: 4 x 432 = 1728 cycles = 4.5 x 384.
  MoteTimingModel model;
  const double span =
      model.max_possible_cycles(0.0) - model.min_possible_cycles();
  EXPECT_DOUBLE_EQ(span, 4.5 * sim::kCyclesPerBit);
}

TEST(MoteTimingModel, PropagationTermIsTiny) {
  // 150 ft at the speed of light is ~0.15 us, about 1 CPU cycle each way:
  // "the value of D/c ... is negligible".
  const double cycles = sim::propagation_cycles(150.0);
  EXPECT_LT(cycles, 2.0);
  EXPECT_GT(cycles, 0.5);
}

TEST(MoteTimingModel, DistanceShiftsRttOnlySlightly) {
  MoteTimingConfig cfg;
  cfg.edge_jitter_cycles = 0.0;  // isolate the propagation term
  MoteTimingModel model(cfg);
  util::Rng rng(2);
  const double near = model.sample_rtt_cycles(0.0, rng);
  const double far = model.sample_rtt_cycles(150.0, rng);
  EXPECT_GT(far, near);
  EXPECT_LT(far - near, 3.0);
}

TEST(MoteTimingModel, RejectsNegativeInputs) {
  MoteTimingModel model;
  util::Rng rng(3);
  EXPECT_THROW(model.sample_rtt_cycles(-1.0, rng), std::invalid_argument);
  MoteTimingConfig bad;
  bad.edge_base_cycles = -1.0;
  EXPECT_THROW(MoteTimingModel{bad}, std::invalid_argument);
}

TEST(Calibration, TenThousandSamplesReproduceFigure4) {
  MoteTimingModel model;
  util::Rng rng(4);
  const auto cal = calibrate_rtt(model, 10000, 150.0, rng);
  EXPECT_EQ(cal.cdf.size(), 10000u);
  // The theoretical envelope is [5396, 7124] cycles; the empirical extremes
  // of 10,000 Irwin-Hall samples sit somewhat inside it (the corners of a
  // sum of four uniforms are rare), just as the paper's measured x_min and
  // x_max sit inside the hardware's true envelope.
  EXPECT_GE(cal.x_min_cycles, model.min_possible_cycles());
  EXPECT_LE(cal.x_min_cycles, model.min_possible_cycles() + 200.0);
  EXPECT_LE(cal.x_max_cycles, model.max_possible_cycles(150.0));
  EXPECT_GE(cal.x_max_cycles, model.max_possible_cycles(150.0) - 200.0);
  EXPECT_GT(cal.x_max_cycles, cal.x_min_cycles);
}

TEST(Calibration, CdfIsMonotone) {
  MoteTimingModel model;
  util::Rng rng(5);
  const auto cal = calibrate_rtt(model, 5000, 150.0, rng);
  double prev = -1.0;
  for (double x = cal.x_min_cycles; x <= cal.x_max_cycles; x += 50.0) {
    const double f = cal.cdf.at(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(cal.cdf.at(cal.x_max_cycles), 1.0);
}

TEST(Calibration, ReplayLongerThanSpanAlwaysExceedsXmax) {
  // The detector property the paper claims: "we can detect any replayed
  // signal if the delay introduced by this replay is longer than the
  // transmission time of [4.5] bits".
  MoteTimingModel model;
  util::Rng rng(6);
  const auto cal = calibrate_rtt(model, 10000, 150.0, rng);
  // Any replay adding more than 4.5 bit-times (the theoretical envelope
  // width) pushes even the fastest honest RTT past the calibrated x_max,
  // because x_max can never exceed the envelope's upper edge.
  const double span_4_5_bits = 4.5 * sim::kCyclesPerBit;
  for (int i = 0; i < 10000; ++i) {
    const double honest = model.sample_rtt_cycles(rng.uniform(0.0, 150.0), rng);
    EXPECT_GT(honest + span_4_5_bits, cal.x_max_cycles);
  }
}

TEST(Calibration, HonestRttNeverFlagged) {
  // No false positives from the RTT stage between benign neighbours: every
  // honest sample lies within [x_min, x_max] once calibration saturates.
  MoteTimingModel model;
  util::Rng rng(7);
  const auto cal = calibrate_rtt(model, 200000, 150.0, rng);
  for (int i = 0; i < 50000; ++i) {
    const double honest = model.sample_rtt_cycles(rng.uniform(0.0, 150.0), rng);
    EXPECT_LE(honest, cal.x_max_cycles + 2.0);
  }
}

TEST(Calibration, InputValidation) {
  MoteTimingModel model;
  util::Rng rng(8);
  EXPECT_THROW(calibrate_rtt(model, 0, 150.0, rng), std::invalid_argument);
  EXPECT_THROW(calibrate_rtt(model, 10, -1.0, rng), std::invalid_argument);
}

TEST(RttExchange, MacDelayCancelsOut) {
  // The paper's central claim for the RTT method: (t4-t1)-(t3-t2) removes
  // "the uncertainty introduced by the MAC layer protocol and the
  // processing delay". Sweep MAC delays over five orders of magnitude and
  // check the computed RTT stays inside the hardware envelope.
  MoteTimingModel model;
  util::Rng rng(20);
  for (const double mac : {0.0, 100.0, 1e4, 1e6, 1e8}) {
    for (int i = 0; i < 200; ++i) {
      const auto x = sample_rtt_exchange(model, 100.0, mac, rng);
      EXPECT_GE(x.rtt_cycles(), model.min_possible_cycles());
      EXPECT_LE(x.rtt_cycles(), model.max_possible_cycles(100.0));
    }
  }
}

TEST(RttExchange, TimestampsAreOrdered) {
  MoteTimingModel model;
  util::Rng rng(21);
  const auto x = sample_rtt_exchange(model, 50.0, 5000.0, rng);
  EXPECT_LT(x.t1_cycles, x.t2_cycles);
  EXPECT_LT(x.t2_cycles, x.t3_cycles + model.config().edge_base_cycles +
                             model.config().edge_jitter_cycles);
  EXPECT_LT(x.t3_cycles, x.t4_cycles);
}

TEST(RttExchange, MatchesDirectSampler) {
  // Both paths sample the same distribution.
  MoteTimingModel model;
  util::Rng rng(22);
  util::RunningStat via_exchange, direct;
  for (int i = 0; i < 20000; ++i) {
    via_exchange.add(
        sample_rtt_exchange(model, 75.0, 1e5, rng).rtt_cycles());
    direct.add(model.sample_rtt_cycles(75.0, rng));
  }
  EXPECT_NEAR(via_exchange.mean(), direct.mean(), 15.0);
  EXPECT_NEAR(via_exchange.stddev(), direct.stddev(), 15.0);
}

TEST(RttExchange, Validation) {
  MoteTimingModel model;
  util::Rng rng(23);
  EXPECT_THROW(sample_rtt_exchange(model, -1.0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(sample_rtt_exchange(model, 1.0, -1.0, rng),
               std::invalid_argument);
}

TEST(TimeConversion, CyclesToNs) {
  // 7.3728 cycles = 1 us.
  EXPECT_EQ(sim::cycles_to_ns(7372.8), 1000000);
}

}  // namespace
}  // namespace sld::ranging
