#include "localization/range_free.hpp"

#include <gtest/gtest.h>

#include "ranging/aoa.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sld::localization {
namespace {

TEST(RangeFree, SingleBeaconCentersOnIt) {
  const auto result = range_free_estimate({{100, 100}});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->position.x, 100.0, 3.0);
  EXPECT_NEAR(result->position.y, 100.0, 3.0);
}

TEST(RangeFree, EstimateLiesInEveryDisk) {
  util::Rng rng(1);
  RangeFreeConfig cfg;
  for (int trial = 0; trial < 50; ++trial) {
    const util::Vec2 truth{rng.uniform(200, 800), rng.uniform(200, 800)};
    std::vector<util::Vec2> heard;
    for (int i = 0; i < 5; ++i) {
      heard.push_back({truth.x + rng.uniform(-100, 100),
                       truth.y + rng.uniform(-100, 100)});
    }
    const auto result = range_free_estimate(heard, cfg);
    ASSERT_TRUE(result.has_value());
    for (const auto& b : heard) {
      EXPECT_LE(util::distance(result->position, b),
                cfg.comm_range_ft + cfg.grid_step_ft);
    }
  }
}

TEST(RangeFree, MoreBeaconsShrinkTheRegion) {
  util::Rng rng(2);
  const util::Vec2 truth{500, 500};
  std::vector<util::Vec2> few{{400, 500}, {600, 500}};
  std::vector<util::Vec2> many = few;
  many.push_back({500, 400});
  many.push_back({500, 620});
  const auto coarse = range_free_estimate(few);
  const auto fine = range_free_estimate(many);
  ASSERT_TRUE(coarse.has_value());
  ASSERT_TRUE(fine.has_value());
  EXPECT_LT(fine->region_samples, coarse->region_samples);
}

TEST(RangeFree, BoundedErrorForHonestBeacons) {
  util::Rng rng(3);
  util::RunningStat err;
  RangeFreeConfig cfg;
  for (int trial = 0; trial < 100; ++trial) {
    const util::Vec2 truth{rng.uniform(200, 800), rng.uniform(200, 800)};
    std::vector<util::Vec2> heard;
    for (int i = 0; i < 6; ++i) {
      // Beacons the sensor hears lie within its range, by definition.
      for (;;) {
        const util::Vec2 b{truth.x + rng.uniform(-150, 150),
                           truth.y + rng.uniform(-150, 150)};
        if (util::distance(truth, b) <= cfg.comm_range_ft) {
          heard.push_back(b);
          break;
        }
      }
    }
    const auto result = range_free_estimate(heard, cfg);
    ASSERT_TRUE(result.has_value());
    err.add(util::distance(result->position, truth));
  }
  // Range-free is coarse but sane: mean error well under one range.
  EXPECT_LT(err.mean(), 75.0);
}

TEST(RangeFree, LyingBeaconDragsTheEstimate) {
  // The related-work comparison: no amount of range-free robustness stops
  // a compromised beacon that claims a wrong location.
  const util::Vec2 truth{500, 500};
  std::vector<util::Vec2> honest{{450, 500}, {550, 500}, {500, 450}};
  const auto clean = range_free_estimate(honest);
  ASSERT_TRUE(clean.has_value());
  auto attacked = honest;
  attacked.push_back({640, 640});  // liar, still intersecting
  const auto skewed = range_free_estimate(attacked);
  ASSERT_TRUE(skewed.has_value());
  EXPECT_GT(util::distance(skewed->position, truth),
            util::distance(clean->position, truth) + 10.0);
}

TEST(RangeFree, InconsistentClaimsYieldNothing) {
  // Two "heard" beacons claiming positions > 2R apart cannot both be
  // heard — the empty intersection is itself a tamper signal.
  const auto result = range_free_estimate({{0, 0}, {400, 0}});
  EXPECT_FALSE(result.has_value());
}

TEST(Serloc, SectorsTightenTheEstimate) {
  // Same beacons, but each also reports the sector the sensor is in: the
  // feasible region shrinks and the estimate improves.
  const util::Vec2 truth{500, 500};
  const std::vector<util::Vec2> beacons{{400, 500}, {500, 400}, {430, 430}};
  std::vector<SectorReference> sectors;
  for (const auto& b : beacons) {
    SectorReference s;
    s.beacon_position = b;
    s.sector_bearing_rad = ranging::true_bearing(b, truth);
    s.sector_halfwidth_rad = 0.3;  // ~34 degree sectors
    sectors.push_back(s);
  }
  const auto disk_only = range_free_estimate(beacons);
  const auto sectored = serloc_estimate(sectors);
  ASSERT_TRUE(disk_only.has_value());
  ASSERT_TRUE(sectored.has_value());
  EXPECT_LT(sectored->region_samples, disk_only->region_samples);
  EXPECT_LE(util::distance(sectored->position, truth),
            util::distance(disk_only->position, truth) + 5.0);
}

TEST(Serloc, FullWidthSectorsMatchDiskIntersection) {
  const std::vector<util::Vec2> beacons{{100, 100}, {180, 100}};
  std::vector<SectorReference> sectors;
  for (const auto& b : beacons)
    sectors.push_back({b, 0.0, M_PI});  // omnidirectional
  const auto disk = range_free_estimate(beacons);
  const auto serloc = serloc_estimate(sectors);
  ASSERT_TRUE(disk.has_value());
  ASSERT_TRUE(serloc.has_value());
  EXPECT_EQ(serloc->region_samples, disk->region_samples);
  EXPECT_NEAR(util::distance(serloc->position, disk->position), 0.0, 1e-9);
}

TEST(Serloc, ContradictorySectorsYieldNothing) {
  // Two beacons pointing their sectors away from each other: no feasible
  // point — a tamper signal, just like empty disk intersections.
  std::vector<SectorReference> sectors{
      {{100, 100}, M_PI, 0.2},  // sensor claimed west of beacon 1
      {{180, 100}, 0.0, 0.2}};  // ... and east of beacon 2: impossible
  const auto result = serloc_estimate(sectors);
  EXPECT_FALSE(result.has_value());
}

TEST(Serloc, Validation) {
  EXPECT_FALSE(serloc_estimate({}).has_value());
  std::vector<SectorReference> bad{{{0, 0}, 0.0, 0.0}};
  EXPECT_THROW(serloc_estimate(bad), std::invalid_argument);
  bad[0].sector_halfwidth_rad = 4.0;
  EXPECT_THROW(serloc_estimate(bad), std::invalid_argument);
}

TEST(RangeFree, Validation) {
  EXPECT_FALSE(range_free_estimate({}).has_value());
  RangeFreeConfig bad;
  bad.comm_range_ft = 0.0;
  EXPECT_THROW(range_free_estimate({{0, 0}}, bad), std::invalid_argument);
  bad = RangeFreeConfig{};
  bad.grid_step_ft = 0.0;
  EXPECT_THROW(range_free_estimate({{0, 0}}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sld::localization
