#include "localization/multilateration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sld::localization {
namespace {

LocationReferences exact_refs(const util::Vec2& truth,
                              const std::vector<util::Vec2>& beacons) {
  LocationReferences refs;
  std::uint32_t id = 1;
  for (const auto& b : beacons)
    refs.push_back({id++, b, util::distance(truth, b)});
  return refs;
}

TEST(Multilateration, ExactRecoveryFromThreeBeacons) {
  const util::Vec2 truth{40.0, 70.0};
  const auto refs = exact_refs(truth, {{0, 0}, {100, 0}, {0, 100}});
  MultilaterationSolver solver;
  const auto fit = solver.solve(refs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->position.x, truth.x, 1e-6);
  EXPECT_NEAR(fit->position.y, truth.y, 1e-6);
  EXPECT_NEAR(fit->rms_residual_ft, 0.0, 1e-6);
}

TEST(Multilateration, ExactRecoveryManyBeacons) {
  const util::Vec2 truth{512.5, 417.25};
  const auto refs = exact_refs(
      truth, {{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}, {500, 0}, {0, 500}});
  MultilaterationSolver solver;
  const auto fit = solver.solve(refs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(util::distance(fit->position, truth), 0.0, 1e-6);
}

TEST(Multilateration, FewerThanThreeReferencesFails) {
  const util::Vec2 truth{1, 1};
  MultilaterationSolver solver;
  EXPECT_FALSE(solver.solve({}).has_value());
  EXPECT_FALSE(solver.solve(exact_refs(truth, {{0, 0}})).has_value());
  EXPECT_FALSE(
      solver.solve(exact_refs(truth, {{0, 0}, {10, 0}})).has_value());
}

TEST(Multilateration, CollinearBeaconsRejected) {
  const util::Vec2 truth{50, 50};
  const auto refs = exact_refs(truth, {{0, 0}, {100, 0}, {200, 0}});
  MultilaterationSolver solver;
  // Collinear geometry is ambiguous (mirror solutions); the linear stage
  // must refuse rather than pick silently.
  EXPECT_FALSE(solver.solve(refs).has_value());
}

TEST(Multilateration, BoundedNoiseGivesBoundedError) {
  util::Rng rng(1);
  MultilaterationSolver solver;
  for (int trial = 0; trial < 200; ++trial) {
    const util::Vec2 truth{rng.uniform(100, 900), rng.uniform(100, 900)};
    LocationReferences refs;
    for (std::uint32_t i = 0; i < 6; ++i) {
      const util::Vec2 b{truth.x + rng.uniform(-150, 150),
                         truth.y + rng.uniform(-150, 150)};
      refs.push_back({i, b, util::distance(truth, b) + rng.uniform(-4, 4)});
    }
    const auto fit = solver.solve(refs);
    ASSERT_TRUE(fit.has_value());
    EXPECT_LT(util::distance(fit->position, truth), 40.0);
  }
}

TEST(Multilateration, ResidualsMatchDefinition) {
  const util::Vec2 truth{10, 20};
  auto refs = exact_refs(truth, {{0, 0}, {50, 0}, {0, 50}});
  refs[0].measured_distance_ft += 5.0;  // inject a 5 ft error
  MultilaterationSolver solver;
  const auto fit = solver.solve(refs);
  ASSERT_TRUE(fit.has_value());
  ASSERT_EQ(fit->residuals_ft.size(), 3u);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const double expect = util::distance(fit->position,
                                         refs[i].beacon_position) -
                          refs[i].measured_distance_ft;
    EXPECT_NEAR(fit->residuals_ft[i], expect, 1e-9);
  }
}

TEST(Multilateration, MaliciousReferenceSkewsEstimate) {
  // The attack the paper defends against: one lying reference visibly
  // degrades the fix.
  const util::Vec2 truth{500, 500};
  auto refs = exact_refs(truth, {{400, 400}, {600, 400}, {500, 620}});
  MultilaterationSolver solver;
  const auto clean = solver.solve(refs);
  ASSERT_TRUE(clean.has_value());
  refs.push_back({99, {560, 500}, 200.0});  // beacon 60 ft away claims 200
  const auto attacked = solver.solve(refs);
  ASSERT_TRUE(attacked.has_value());
  EXPECT_GT(util::distance(attacked->position, truth),
            util::distance(clean->position, truth) + 10.0);
}

TEST(Multilateration, RmsResidualHelper) {
  const util::Vec2 truth{0, 0};
  const auto refs = exact_refs(truth, {{10, 0}, {0, 10}, {-10, 0}});
  EXPECT_NEAR(rms_residual(truth, refs), 0.0, 1e-12);
  EXPECT_GT(rms_residual({5, 5}, refs), 1.0);
  EXPECT_EQ(rms_residual(truth, {}), 0.0);
}

TEST(Multilateration, OptionsValidation) {
  MultilaterationOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(MultilaterationSolver{bad}, std::invalid_argument);
  bad = MultilaterationOptions{};
  bad.convergence_ft = 0.0;
  EXPECT_THROW(MultilaterationSolver{bad}, std::invalid_argument);
}

TEST(Multilateration, FarInitialGuessStillConverges) {
  // Beacons clustered on one side: linear initializer is poor, the damped
  // Gauss-Newton loop must still converge.
  const util::Vec2 truth{900, 900};
  const auto refs =
      exact_refs(truth, {{800, 850}, {850, 780}, {770, 880}, {820, 830}});
  MultilaterationSolver solver;
  const auto fit = solver.solve(refs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(util::distance(fit->position, truth), 1.0);
}

}  // namespace
}  // namespace sld::localization
