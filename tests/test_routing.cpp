#include "routing/gpsr.hpp"

#include <gtest/gtest.h>

#include "sim/deployment.hpp"
#include "util/rng.hpp"

namespace sld::routing {
namespace {

/// A 5x5 grid with 100 ft spacing and 150 ft range (8-connected).
Topology grid_topology() {
  Topology topo(150.0);
  for (sim::NodeId r = 0; r < 5; ++r)
    for (sim::NodeId c = 0; c < 5; ++c)
      topo.add_node(r * 5 + c, {static_cast<double>(c) * 100.0,
                                static_cast<double>(r) * 100.0});
  topo.build_links();
  return topo;
}

TEST(Topology, LinksUseTruePositions) {
  Topology topo(150.0);
  topo.add_node(1, {0, 0});
  topo.add_node(2, {100, 0});
  topo.add_node(3, {400, 0});
  topo.build_links();
  EXPECT_EQ(topo.neighbors(1).size(), 1u);
  EXPECT_EQ(topo.neighbors(1)[0], 2u);
  EXPECT_TRUE(topo.neighbors(3).empty());
  // Lying about believed positions does NOT create physical links.
  topo.set_believed_position(3, {50, 0});
  EXPECT_TRUE(topo.neighbors(3).empty());
}

TEST(Topology, BelievedDefaultsToTrue) {
  Topology topo(150.0);
  topo.add_node(1, {10, 20});
  EXPECT_EQ(topo.believed_position(1), topo.true_position(1));
  topo.set_believed_position(1, {99, 99});
  EXPECT_EQ(topo.believed_position(1), (util::Vec2{99, 99}));
  EXPECT_EQ(topo.true_position(1), (util::Vec2{10, 20}));
}

TEST(Topology, Validation) {
  EXPECT_THROW(Topology(0.0), std::invalid_argument);
  Topology topo(100.0);
  topo.add_node(1, {0, 0});
  EXPECT_THROW(topo.add_node(1, {1, 1}), std::invalid_argument);
  EXPECT_THROW(topo.neighbors(1), std::logic_error);  // before build_links
  topo.build_links();
  EXPECT_THROW(topo.neighbors(2), std::invalid_argument);
  EXPECT_THROW(topo.true_position(2), std::invalid_argument);
}

TEST(Gpsr, GreedyDeliversAcrossGrid) {
  const auto topo = grid_topology();
  GpsrRouter router(&topo);
  const auto result = router.route(0, 24);  // corner to corner
  EXPECT_TRUE(result.delivered());
  EXPECT_EQ(result.path.front(), 0u);
  EXPECT_EQ(result.path.back(), 24u);
  EXPECT_EQ(result.perimeter_hops, 0u);  // no voids on a full grid
  EXPECT_GE(result.path.size(), 4u);     // needs at least 4 hops diagonally
}

TEST(Gpsr, PathHopsArePhysicalLinks) {
  const auto topo = grid_topology();
  GpsrRouter router(&topo);
  const auto result = router.route(0, 24);
  ASSERT_TRUE(result.delivered());
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    EXPECT_LE(util::distance(topo.true_position(result.path[i - 1]),
                             topo.true_position(result.path[i])),
              150.0 + 1e-9);
  }
}

TEST(Gpsr, SelfRouteIsTrivial) {
  const auto topo = grid_topology();
  GpsrRouter router(&topo);
  const auto result = router.route(7, 7);
  EXPECT_TRUE(result.delivered());
  EXPECT_EQ(result.path.size(), 1u);
}

TEST(Gpsr, PerimeterModeRecoversFromVoid) {
  // A "U" shaped corridor: greedy gets stuck at the bottom of the U when
  // the destination is across the void; perimeter mode walks around.
  Topology topo(120.0);
  //   0 --- 1 --- 2
  //   |           |
  //   3           4
  //   |           |
  //   5 --- 6 --- 7      (void between the arms)
  topo.add_node(0, {0, 0});
  topo.add_node(1, {100, 0});
  topo.add_node(2, {200, 0});
  topo.add_node(3, {0, 100});
  topo.add_node(4, {200, 100});
  topo.add_node(5, {0, 200});
  topo.add_node(6, {100, 200});
  topo.add_node(7, {200, 200});
  topo.build_links();
  GpsrRouter router(&topo);
  // From 6 (bottom middle) to 1 (top middle): greedy from 6 can step to 5
  // or 7 (not closer? 5:(0,200)->1 d=~223; 7:(200,200) d=~223; 6 d=200):
  // both farther -> local minimum right away.
  const auto result = router.route(6, 1);
  EXPECT_TRUE(result.delivered());
  EXPECT_GT(result.perimeter_hops, 0u);
}

TEST(Gpsr, DisconnectedDestinationFails) {
  Topology topo(100.0);
  topo.add_node(1, {0, 0});
  topo.add_node(2, {50, 0});
  topo.add_node(3, {900, 900});  // unreachable island
  topo.build_links();
  GpsrRouter router(&topo);
  const auto result = router.route(1, 3);
  EXPECT_FALSE(result.delivered());
}

TEST(Gpsr, UnknownEndpointRejected) {
  const auto topo = grid_topology();
  GpsrRouter router(&topo);
  EXPECT_THROW(router.route(0, 999), std::invalid_argument);
}

TEST(Gpsr, GabrielGraphIsSubsetOfNeighbors) {
  const auto topo = grid_topology();
  GpsrRouter router(&topo);
  for (const auto id : topo.node_ids()) {
    const auto& all = topo.neighbors(id);
    for (const auto g : router.gabriel_neighbors(id)) {
      EXPECT_NE(std::find(all.begin(), all.end(), g), all.end());
    }
    // On a grid with diagonal links, Gabriel planarization removes the
    // diagonals (the orthogonal witnesses sit inside the diameter circle).
    EXPECT_LE(router.gabriel_neighbors(id).size(), 4u);
  }
}

TEST(Gpsr, CorruptedBelievedPositionsBreakDelivery) {
  // The paper's motivation quantified: physically identical network, but
  // nodes believe wrong positions -> geographic forwarding degrades.
  util::Rng rng(1);
  sim::DeploymentConfig dc;
  dc.total_nodes = 250;
  dc.beacon_count = 0;
  dc.malicious_beacon_count = 0;
  dc.field = util::Rect::square(1000.0);
  const auto deployment = sim::deploy_random(dc, rng);

  Topology honest(150.0);
  Topology corrupted(150.0);
  for (const auto& n : deployment.nodes) {
    honest.add_node(n.id, n.position);
    corrupted.add_node(n.id, n.position);
  }
  honest.build_links();
  corrupted.build_links();
  // A third of the nodes are badly mislocalized (150-400 ft off).
  for (const auto& n : deployment.nodes) {
    if (n.id % 3 == 0) {
      corrupted.set_believed_position(
          n.id, n.position + util::Vec2{rng.uniform(150, 400),
                                        rng.uniform(150, 400)});
    }
  }

  GpsrRouter honest_router(&honest);
  GpsrRouter corrupted_router(&corrupted);
  int honest_ok = 0, corrupted_ok = 0, trials = 0;
  const auto& nodes = deployment.nodes;
  for (std::size_t i = 0; i + 1 < nodes.size(); i += 7) {
    const auto src = nodes[i].id;
    const auto dst = nodes[nodes.size() - 1 - i].id;
    if (src == dst) continue;
    ++trials;
    if (honest_router.route(src, dst).delivered()) ++honest_ok;
    if (corrupted_router.route(src, dst).delivered()) ++corrupted_ok;
  }
  ASSERT_GT(trials, 20);
  EXPECT_GT(honest_ok, corrupted_ok);
}

TEST(Gpsr, ConfigValidation) {
  const auto topo = grid_topology();
  EXPECT_THROW(GpsrRouter(nullptr), std::invalid_argument);
  EXPECT_THROW(GpsrRouter(&topo, GpsrConfig{0}), std::invalid_argument);
}

}  // namespace
}  // namespace sld::routing
