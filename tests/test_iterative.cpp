#include "localization/iterative.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace sld::localization {
namespace {

/// Chain of clusters: seed beacons around the origin, then nodes marching
/// right in 100 ft steps, each only hearing the previous cluster.
struct ChainWorld {
  std::unordered_map<std::uint32_t, util::Vec2> seeds;
  std::unordered_map<std::uint32_t, util::Vec2> truths;
};

ChainWorld chain_world(std::size_t clusters) {
  ChainWorld w;
  w.seeds = {{1, {0, 0}}, {2, {100, 0}}, {3, {50, 90}}, {4, {50, -90}}};
  std::uint32_t next = 100;
  for (std::size_t c = 0; c < clusters; ++c) {
    const double x = 120.0 + static_cast<double>(c) * 100.0;
    w.truths[next++] = {x, 20.0};
    w.truths[next++] = {x, -20.0};
    w.truths[next++] = {x + 20.0, 0.0};
  }
  return w;
}

IterativeConfig config() {
  IterativeConfig c;
  c.comm_range_ft = 150.0;
  c.max_ranging_error_ft = 2.0;
  return c;
}

TEST(Iterative, SingleRoundMatchesPlainMultilateration) {
  util::Rng rng(1);
  ChainWorld w = chain_world(1);
  const auto result =
      iterative_multilateration(w.seeds, w.truths, config(), rng);
  EXPECT_EQ(result.localized.size(), w.truths.size());
  for (const auto& [id, node] : result.localized) {
    EXPECT_EQ(node.round, 1u);
    EXPECT_LT(util::distance(node.estimate, w.truths.at(id)), 15.0);
  }
}

TEST(Iterative, PromotionReachesNodesBeyondSeedRange) {
  util::Rng rng(2);
  ChainWorld w = chain_world(4);  // far clusters unreachable from seeds
  const auto result =
      iterative_multilateration(w.seeds, w.truths, config(), rng);
  EXPECT_EQ(result.localized.size(), w.truths.size());
  EXPECT_GT(result.rounds_run, 1u);
  bool saw_late_round = false;
  for (const auto& [id, node] : result.localized) {
    (void)id;
    if (node.round >= 3) saw_late_round = true;
  }
  EXPECT_TRUE(saw_late_round);
}

TEST(Iterative, ErrorAccumulatesAcrossRounds) {
  // The paper's §2.3 observation, measured: later-round fixes are worse
  // on average than first-round fixes.
  util::RunningStat round1, later;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    ChainWorld w = chain_world(6);
    const auto result =
        iterative_multilateration(w.seeds, w.truths, config(), rng);
    for (const auto& [id, node] : result.localized) {
      const double err = util::distance(node.estimate, w.truths.at(id));
      if (node.round == 1)
        round1.add(err);
      else if (node.round >= 4)
        later.add(err);
    }
  }
  ASSERT_GT(round1.count(), 10u);
  ASSERT_GT(later.count(), 10u);
  EXPECT_GT(later.mean(), round1.mean());
}

TEST(Iterative, IsolatedNodesStayUnlocalized) {
  util::Rng rng(3);
  ChainWorld w = chain_world(1);
  w.truths[999] = {5000, 5000};  // out of everyone's range
  const auto result =
      iterative_multilateration(w.seeds, w.truths, config(), rng);
  EXPECT_FALSE(result.localized.contains(999));
}

TEST(Iterative, RoundLimitRespected) {
  util::Rng rng(4);
  ChainWorld w = chain_world(8);
  IterativeConfig c = config();
  c.max_rounds = 2;
  const auto result = iterative_multilateration(w.seeds, w.truths, c, rng);
  EXPECT_LE(result.rounds_run, 2u);
  EXPECT_LT(result.localized.size(), w.truths.size());
}

TEST(Iterative, RobustModeFiltersLyingPromotedBeacon) {
  // The §2.3 remark made concrete: "there are still constraints between
  // estimated measurements and calculated measurements ... we can still
  // apply the proposed detector" to promoted beacons. A promoted node
  // that lies about its discovered position produces references whose
  // residuals blow past the error budget; robust mode discards them.
  const util::Vec2 truth{300, 0};
  // Seeds around the target plus one "promoted" reference that lies.
  std::unordered_map<std::uint32_t, util::Vec2> seeds{
      {1, {200, 0}}, {2, {300, 100}}, {3, {400, 0}}, {4, {300, -100}}};
  // Node 4's physical position stays where it is; only its *claim* lies.
  std::unordered_map<std::uint32_t, util::Vec2> truths{
      {50, truth}, {4, {300, -100}}};

  // Plain and robust runs over the same world, but with reference 4's
  // claimed position corrupted (as if it were a lying promoted beacon).
  auto lying_seeds = seeds;
  lying_seeds[4] = {300, -250};  // claims 150 ft south of where it is
  IterativeConfig plain = config();
  IterativeConfig robust = config();
  robust.robust = true;

  util::Rng rng1(9), rng2(9);
  const auto bad =
      iterative_multilateration(lying_seeds, truths, plain, rng1);
  const auto fixed =
      iterative_multilateration(lying_seeds, truths, robust, rng2);
  ASSERT_TRUE(bad.localized.contains(50));
  ASSERT_TRUE(fixed.localized.contains(50));
  const double bad_err =
      util::distance(bad.localized.at(50).estimate, truth);
  const double fixed_err =
      util::distance(fixed.localized.at(50).estimate, truth);
  EXPECT_GT(bad_err, 25.0);   // the lie drags the plain fit
  EXPECT_LT(fixed_err, 10.0); // robust mode discards the liar
  EXPECT_LT(fixed.localized.at(50).references, 4u);
}

TEST(Iterative, Validation) {
  util::Rng rng(5);
  IterativeConfig bad = config();
  bad.comm_range_ft = 0.0;
  EXPECT_THROW(iterative_multilateration({}, {}, bad, rng),
               std::invalid_argument);
  bad = config();
  bad.max_ranging_error_ft = -1.0;
  EXPECT_THROW(iterative_multilateration({}, {}, bad, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sld::localization
