// Hierarchical profiler: span-tree semantics, JSON schema stability, and
// the load-bearing guarantee that profiling never changes simulation
// results (the same determinism contract tracing honours in test_obs.cpp).
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/experiment.hpp"
#include "core/secure_localization.hpp"
#include "obs/profiler.hpp"

namespace sld {
namespace {

/// Re-disables and wipes the process-wide profiler around every test so
/// one test's spans never leak into another's snapshot.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Profiler::set_enabled(false);
    obs::Profiler::instance().reset();
  }
  void TearDown() override {
    obs::Profiler::set_enabled(false);
    obs::Profiler::instance().reset();
  }
};

const obs::ProfileNode* find(const obs::ProfileNode& parent,
                             const std::string& name) {
  for (const auto& c : parent.children)
    if (c.name == name) return &c;
  return nullptr;
}

TEST_F(ProfilerTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::Profiler::enabled());  // off is the default
  {
    SLD_PROF_SCOPE("ghost");
    SLD_PROF_SCOPE("ghost.child");
  }
  const auto root = obs::Profiler::instance().snapshot();
  EXPECT_TRUE(root.children.empty());
  EXPECT_TRUE(obs::Profiler::instance().flat_rows().empty());
}

TEST_F(ProfilerTest, SpanTreeNestsAndAggregates) {
  obs::Profiler::set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    SLD_PROF_SCOPE("outer");
    { SLD_PROF_SCOPE("inner"); }
    { SLD_PROF_SCOPE("inner"); }
  }
  { SLD_PROF_SCOPE("other"); }
  obs::Profiler::set_enabled(false);

  const auto root = obs::Profiler::instance().snapshot();
  ASSERT_EQ(root.children.size(), 2u);
  // Children are name-sorted: "other" < "outer".
  EXPECT_EQ(root.children[0].name, "other");
  EXPECT_EQ(root.children[1].name, "outer");

  const auto* outer = find(root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 3u);
  ASSERT_EQ(outer->children.size(), 1u);
  const auto* inner = find(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 6u);  // two per outer iteration
  // Parent time covers its child; self = total - children (clamped).
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  // A leaf's self time is its total time.
  EXPECT_EQ(inner->self_ns, inner->total_ns);

  // The same name at a different stack position is a distinct node.
  const auto* other = find(root, "other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->calls, 1u);
  EXPECT_TRUE(other->children.empty());
}

TEST_F(ProfilerTest, ReenteredScopesAccumulateCalls) {
  obs::Profiler::set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    SLD_PROF_SCOPE("hot");
  }
  obs::Profiler::set_enabled(false);
  const auto rows = obs::Profiler::instance().flat_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "hot");
  EXPECT_EQ(rows[0].calls, 10u);
  EXPECT_EQ(rows[0].self_ns, rows[0].total_ns);
}

TEST_F(ProfilerTest, ResetClearsCountsButKeepsWorking) {
  obs::Profiler::set_enabled(true);
  { SLD_PROF_SCOPE("before"); }
  obs::Profiler::instance().reset();
  { SLD_PROF_SCOPE("after"); }
  obs::Profiler::set_enabled(false);
  const auto root = obs::Profiler::instance().snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "after");
}

TEST_F(ProfilerTest, SnapshotJsonSchemaIsStable) {
  obs::Profiler::set_enabled(true);
  {
    SLD_PROF_SCOPE("alpha");
    { SLD_PROF_SCOPE("beta"); }
  }
  obs::Profiler::set_enabled(false);

  const std::string json = obs::Profiler::instance().snapshot_json();
  EXPECT_NE(json.find("\"schema\":\"sld-profile/v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"spans\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos) << json;
  // Every node carries exactly these fields, in this order.
  EXPECT_NE(json.find("\"name\":\"beta\",\"calls\":1,\"total_ns\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"self_ns\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":["), std::string::npos) << json;

  // An empty profiler is still a valid document.
  obs::Profiler::instance().reset();
  EXPECT_EQ(obs::Profiler::instance().snapshot_json(),
            "{\"schema\":\"sld-profile/v1\",\"spans\":[]}");
}

TEST_F(ProfilerTest, FormatTableListsTopSelfTimeSpans) {
  obs::Profiler::set_enabled(true);
  { SLD_PROF_SCOPE("tabled"); }
  obs::Profiler::set_enabled(false);
  const std::string table = obs::Profiler::instance().format_table();
  EXPECT_NE(table.find("# profile: top self-time spans"), std::string::npos);
  EXPECT_NE(table.find("tabled"), std::string::npos);
}

// --- whole-trial determinism ---------------------------------------------

core::SystemConfig tiny_config() {
  core::SystemConfig config;
  config.deployment.total_nodes = 60;
  config.deployment.beacon_count = 12;
  config.deployment.malicious_beacon_count = 3;
  config.deployment.field = util::Rect::square(300.0);
  config.rtt_calibration_samples = 500;
  config.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.9);
  config.seed = 11;
  return config;
}

TEST_F(ProfilerTest, ProfiledRunMatchesUnprofiledRunBitForBit) {
  core::SecureLocalizationSystem unprofiled(tiny_config());
  const auto a = unprofiled.run();

  obs::Profiler::set_enabled(true);
  core::SecureLocalizationSystem profiled(tiny_config());
  const auto b = profiled.run();
  obs::Profiler::set_enabled(false);

  // Profiling actually captured the instrumented hot paths.
  const auto rows = obs::Profiler::instance().flat_rows();
  EXPECT_FALSE(rows.empty());
  bool saw_sched = false, saw_mac = false;
  for (const auto& r : rows) {
    saw_sched = saw_sched || r.name == "sched.event";
    saw_mac = saw_mac || r.name == "crypto.mac";
  }
  EXPECT_TRUE(saw_sched);
  EXPECT_TRUE(saw_mac);

  // ...without perturbing a single simulation output (metrics_json is
  // excluded: its wall-clock phase gauges legitimately differ).
  EXPECT_EQ(a.malicious_revoked, b.malicious_revoked);
  EXPECT_EQ(a.benign_revoked, b.benign_revoked);
  EXPECT_EQ(a.detection_rate, b.detection_rate);
  EXPECT_EQ(a.false_positive_rate, b.false_positive_rate);
  EXPECT_EQ(a.sensors_localized, b.sensors_localized);
  EXPECT_EQ(a.sensors_unlocalized, b.sensors_unlocalized);
  EXPECT_EQ(a.mean_localization_error_ft, b.mean_localization_error_ft);
  EXPECT_EQ(a.max_localization_error_ft, b.max_localization_error_ft);
  EXPECT_EQ(a.avg_affected_per_malicious, b.avg_affected_per_malicious);
  EXPECT_EQ(a.radio_energy_uj, b.radio_energy_uj);
  EXPECT_EQ(a.rtt_x_max_cycles, b.rtt_x_max_cycles);
  EXPECT_EQ(a.sched_events, b.sched_events);
  EXPECT_EQ(a.raw.probes_sent, b.raw.probes_sent);
  EXPECT_EQ(a.raw.probe_replies, b.raw.probe_replies);
  EXPECT_EQ(a.raw.consistency_flags, b.raw.consistency_flags);
  EXPECT_EQ(a.raw.alerts_submitted, b.raw.alerts_submitted);
  EXPECT_EQ(a.base_station.alerts_received, b.base_station.alerts_received);
  EXPECT_EQ(a.base_station.revocations, b.base_station.revocations);
  EXPECT_EQ(a.channel.transmissions, b.channel.transmissions);
  EXPECT_EQ(a.channel.deliveries, b.channel.deliveries);
}

/// Renders a snapshot's structure — names and call counts, no times — so
/// two profiles can be compared shape-for-shape.
std::string shape_of(const obs::ProfileNode& node) {
  std::string out = node.name + "(" + std::to_string(node.calls) + ")";
  out += "[";
  for (const auto& c : node.children) out += shape_of(c);
  out += "]";
  return out;
}

TEST_F(ProfilerTest, ExitedThreadSpansSurviveInSnapshot) {
  obs::Profiler::set_enabled(true);
  { SLD_PROF_SCOPE("main.span"); }
  std::thread worker([] {
    SLD_PROF_SCOPE("worker.span");
    { SLD_PROF_SCOPE("worker.child"); }
  });
  worker.join();  // the thread's tree retires at exit
  obs::Profiler::set_enabled(false);
  const auto root = obs::Profiler::instance().snapshot();
  const auto* retired = find(root, "worker.span");
  ASSERT_NE(retired, nullptr)
      << "spans from an exited thread were dropped from the snapshot";
  EXPECT_EQ(retired->calls, 1u);
  EXPECT_NE(find(*retired, "worker.child"), nullptr);
  EXPECT_NE(find(root, "main.span"), nullptr);
}

TEST_F(ProfilerTest, ParallelExperimentProfileMatchesSerialShape) {
  // Regression for Profiler::instance() thread-safety: a profiled
  // `jobs = 4` experiment, after the name-sorted merge across worker
  // trees (live and retired), must have exactly the serial run's span
  // structure and call counts — only the recorded times may differ.
  core::ExperimentConfig e;
  e.base = tiny_config();
  e.trials = 6;

  obs::Profiler::set_enabled(true);
  e.jobs = 1;
  core::run_experiment(e);
  obs::Profiler::set_enabled(false);
  const std::string serial_shape =
      shape_of(obs::Profiler::instance().snapshot());
  EXPECT_NE(serial_shape.find("trial(6)"), std::string::npos)
      << serial_shape;

  obs::Profiler::instance().reset();
  obs::Profiler::set_enabled(true);
  e.jobs = 4;
  core::run_experiment(e);
  obs::Profiler::set_enabled(false);
  const std::string parallel_shape =
      shape_of(obs::Profiler::instance().snapshot());

  EXPECT_EQ(serial_shape, parallel_shape);
}

TEST_F(ProfilerTest, TrialSpansNestUnderTrialDuringExperiment) {
  obs::Profiler::set_enabled(true);
  {
    SLD_PROF_SCOPE("trial");
    {
      SLD_PROF_SCOPE("trial.run");
      core::SecureLocalizationSystem system(tiny_config());
      system.run();
    }
  }
  obs::Profiler::set_enabled(false);
  const auto root = obs::Profiler::instance().snapshot();
  const auto* trial = find(root, "trial");
  ASSERT_NE(trial, nullptr);
  const auto* run = find(*trial, "trial.run");
  ASSERT_NE(run, nullptr);
  EXPECT_NE(find(*run, "sched.event"), nullptr);
  // The parent's total time accounts for (at least) its children's.
  std::uint64_t child_total = 0;
  for (const auto& c : run->children) child_total += c.total_ns;
  EXPECT_GE(run->total_ns, child_total);
}

}  // namespace
}  // namespace sld
