// Self-tests of the property harness (tests/prop/prop.hpp): generator
// bounds, determinism, seed reporting, shrinking to a minimal
// counterexample, and the SLD_PROP_SEED replay override.
#include <gtest/gtest.h>
#include <gtest/gtest-spi.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "prop/generators.hpp"
#include "prop/prop.hpp"

namespace {

using namespace sld;

TEST(PropHarness, IntRangeStaysInBounds) {
  EXPECT_TRUE(prop::forall("int in [5,42]", prop::int_range(5, 42),
                           [](const std::int64_t& v) {
                             return v >= 5 && v <= 42;
                           }));
}

TEST(PropHarness, DoubleRangeStaysInBounds) {
  EXPECT_TRUE(prop::forall("double in [-1,1)", prop::double_range(-1.0, 1.0),
                           [](const double& v) { return v >= -1.0 && v < 1.0; }));
}

TEST(PropHarness, VectorOfRespectsSizeBounds) {
  const auto gen = prop::vector_of(prop::int_range(0, 9), 2, 7);
  EXPECT_TRUE(prop::forall("vector size in [2,7]", gen,
                           [](const std::vector<std::int64_t>& v) {
                             return v.size() >= 2 && v.size() <= 7;
                           }));
}

TEST(PropHarness, GenerationIsDeterministicPerSeed) {
  const auto gen = prop::int_range(0, 1'000'000);
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    util::Rng a(seed), b(seed);
    EXPECT_EQ(gen.generate(a), gen.generate(b)) << "seed " << seed;
  }
}

TEST(PropHarness, TwoArgPredicateRngIsDeterministic) {
  // The per-case Rng handed to a two-argument predicate must be a pure
  // function of the case seed: two identical runs observe identical draws.
  std::vector<std::uint64_t> first, second;
  auto record_into = [](std::vector<std::uint64_t>& sink) {
    return [&sink](const std::int64_t&, util::Rng& rng) {
      sink.push_back(rng());
      return true;
    };
  };
  prop::Config cfg;
  cfg.iterations = 20;
  EXPECT_TRUE(prop::forall("record rng", prop::int_range(0, 10),
                           record_into(first), cfg));
  EXPECT_TRUE(prop::forall("record rng", prop::int_range(0, 10),
                           record_into(second), cfg));
  EXPECT_EQ(first, second);
}

TEST(PropHarness, PlantedBugShrinksToMinimalAndPrintsSeed) {
  ::testing::TestPartResultArray failures;
  {
    ::testing::ScopedFakeTestPartResultReporter reporter(
        ::testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ONLY_CURRENT_THREAD,
        &failures);
    prop::forall("all ints below 50", prop::int_range(0, 1000),
                 [](const std::int64_t& v) { return v < 50; });
  }
  ASSERT_EQ(failures.size(), 1);
  const std::string message = failures.GetTestPartResult(0).message();
  // Greedy shrinking must land on the boundary counterexample...
  EXPECT_NE(message.find("counterexample: 50"), std::string::npos) << message;
  // ...and the failure must carry a deterministic repro seed.
  EXPECT_NE(message.find("SLD_PROP_SEED="), std::string::npos) << message;
  EXPECT_NE(message.find("--gtest_filter="), std::string::npos) << message;
}

TEST(PropHarness, EnvSeedReplaysExactlyOneCase) {
  ASSERT_EQ(setenv("SLD_PROP_SEED", "12345", /*overwrite=*/1), 0);
  std::vector<std::int64_t> seen;
  const auto gen = prop::int_range(0, 1'000'000'000);
  prop::forall("record forced case", gen, [&](const std::int64_t& v) {
    seen.push_back(v);
    return true;
  });
  ASSERT_EQ(unsetenv("SLD_PROP_SEED"), 0);

  util::Rng rng(12345);
  const std::int64_t expected = gen.generate(rng);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], expected);
}

TEST(PropHarness, DeploymentConfigGeneratorKeepsConstraints) {
  const auto gen = prop::deployment_config();
  EXPECT_TRUE(prop::forall(
      "deployment config valid (incl. shrinks)", gen,
      [&](const sld::sim::DeploymentConfig& c) {
        auto valid = [](const sld::sim::DeploymentConfig& d) {
          return d.beacon_count >= 1 && d.beacon_count <= d.total_nodes &&
                 d.malicious_beacon_count <= d.beacon_count &&
                 d.comm_range_ft > 0.0 && d.field.area() > 0.0;
        };
        if (!valid(c)) return false;
        for (const auto& shrunk : gen.shrink(c))
          if (!valid(shrunk)) return false;
        return true;
      }));
}

TEST(PropHarness, AlertStreamShrinkKeepsValidity) {
  const auto gen = prop::alert_stream();
  prop::Config cfg;
  cfg.iterations = 30;
  EXPECT_TRUE(prop::forall(
      "alert stream shrinks stay well-formed", gen,
      [&](const prop::AlertStream& s) {
        for (const auto& shrunk : gen.shrink(s)) {
          if (shrunk.alerts.size() > s.alerts.size()) return false;
          for (const auto& [reporter, target] : shrunk.alerts)
            if (reporter == target) return false;
        }
        return true;
      },
      cfg));
}

}  // namespace
