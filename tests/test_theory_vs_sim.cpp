// Property suite: the full event-driven simulation must track the paper's
// closed-form analysis (the comparison Figures 12 and 13 make). Runs at
// paper scale with a handful of trials per point, so tolerances are loose
// but directional properties are strict.
#include <gtest/gtest.h>

#include "analysis/formulas.hpp"
#include "core/experiment.hpp"

namespace sld::core {
namespace {

SystemConfig paper_config(double P, std::uint64_t seed) {
  SystemConfig c;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(P);
  c.seed = seed;
  return c;
}

class TheoryVsSim : public ::testing::TestWithParam<double> {};

TEST_P(TheoryVsSim, DetectionRateTracksAnalysis) {
  const double P = GetParam();
  ExperimentConfig e{paper_config(P, 100 + static_cast<std::uint64_t>(P * 100)),
                     3};
  const auto agg = run_experiment(e);

  const auto params =
      model_params_for(e.base, agg.requesters_per_malicious.mean());
  const double theory = analysis::revocation_probability(params, P);
  // 3 trials x 10 malicious beacons = 30 Bernoulli draws; allow a wide but
  // meaningful band.
  EXPECT_NEAR(agg.detection_rate.mean(), theory, 0.22)
      << "P = " << P << ", theory P_d = " << theory;
}

TEST_P(TheoryVsSim, AffectedNodesTrackAnalysis) {
  const double P = GetParam();
  ExperimentConfig e{paper_config(P, 300 + static_cast<std::uint64_t>(P * 100)),
                     3};
  const auto agg = run_experiment(e);

  const auto params =
      model_params_for(e.base, agg.requesters_per_malicious.mean());
  const double theory = analysis::affected_nonbeacon_nodes(params, P);
  const double measured = agg.affected_per_malicious.mean();
  // Within 35% relative or 2 absolute, like the paper's "observable but
  // small difference" between simulation and theory.
  EXPECT_NEAR(measured, theory, std::max(2.0, 0.35 * theory))
      << "P = " << P << ", theory N' = " << theory;
}

INSTANTIATE_TEST_SUITE_P(AttackEffectivenessSweep, TheoryVsSim,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8),
                         [](const auto& info) {
                           return "P" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(TheoryVsSim, HigherPMeansMoreRevocations) {
  ExperimentConfig lo{paper_config(0.05, 1), 3};
  ExperimentConfig hi{paper_config(0.9, 1), 3};
  const auto lo_agg = run_experiment(lo);
  const auto hi_agg = run_experiment(hi);
  EXPECT_GT(hi_agg.detection_rate.mean(), lo_agg.detection_rate.mean());
}

TEST(TheoryVsSim, FalsePositivesStayLowWithoutCollusion) {
  ExperimentConfig e{paper_config(0.5, 7), 3};
  const auto agg = run_experiment(e);
  EXPECT_LT(agg.false_positive_rate.mean(), 0.05);
}

}  // namespace
}  // namespace sld::core
