#include "localization/dv_hop.hpp"

#include <gtest/gtest.h>

#include "sim/deployment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sld::localization {
namespace {

/// Line graph 0 - 1 - 2 - 3 - 4.
Adjacency line_graph() {
  Adjacency g;
  for (std::uint32_t i = 0; i < 5; ++i) g[i] = {};
  for (std::uint32_t i = 0; i + 1 < 5; ++i) {
    g[i].push_back(i + 1);
    g[i + 1].push_back(i);
  }
  return g;
}

TEST(HopCounts, BfsOnLine) {
  const auto hops = hop_counts_from(line_graph(), 0);
  ASSERT_EQ(hops.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(hops.at(i), i);
}

TEST(HopCounts, UnreachableNodesAbsent) {
  Adjacency g = line_graph();
  g[99] = {};  // isolated node
  const auto hops = hop_counts_from(g, 0);
  EXPECT_FALSE(hops.contains(99));
}

TEST(HopCounts, UnknownSourceGivesEmpty) {
  EXPECT_TRUE(hop_counts_from(line_graph(), 42).empty());
}

TEST(DvHop, GridLocalizationIsReasonable) {
  // 6x6 grid, 100 ft pitch, 4-connected; beacons at three corners.
  Adjacency g;
  std::unordered_map<std::uint32_t, util::Vec2> pos;
  const auto id = [](std::uint32_t r, std::uint32_t c) { return r * 6 + c; };
  for (std::uint32_t r = 0; r < 6; ++r) {
    for (std::uint32_t c = 0; c < 6; ++c) {
      pos[id(r, c)] = {static_cast<double>(c) * 100.0,
                       static_cast<double>(r) * 100.0};
      g[id(r, c)] = {};
    }
  }
  for (std::uint32_t r = 0; r < 6; ++r) {
    for (std::uint32_t c = 0; c < 6; ++c) {
      if (c + 1 < 6) {
        g[id(r, c)].push_back(id(r, c + 1));
        g[id(r, c + 1)].push_back(id(r, c));
      }
      if (r + 1 < 6) {
        g[id(r, c)].push_back(id(r + 1, c));
        g[id(r + 1, c)].push_back(id(r, c));
      }
    }
  }
  const std::unordered_map<std::uint32_t, util::Vec2> beacons{
      {id(0, 0), pos[id(0, 0)]},
      {id(0, 5), pos[id(0, 5)]},
      {id(5, 0), pos[id(5, 0)]},
      {id(5, 5), pos[id(5, 5)]}};

  const auto target = id(2, 3);
  const auto result = dv_hop_localize(g, beacons, target);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->beacons_used, 4u);
  // Manhattan hops overestimate Euclidean beacon distances, so the hop
  // size is < 100 ft and estimates are coarse — DV-Hop is a coarse
  // scheme; within ~1.5 grid cells is the expected regime.
  EXPECT_LT(util::distance(result->position, pos[target]), 150.0);
  EXPECT_GT(result->avg_hop_size_ft, 50.0);
  EXPECT_LT(result->avg_hop_size_ft, 100.0 + 1e-9);
}

TEST(DvHop, RandomDeploymentMedianError) {
  util::Rng rng(3);
  sim::DeploymentConfig dc;
  dc.total_nodes = 300;
  dc.beacon_count = 12;
  dc.malicious_beacon_count = 0;
  dc.field = util::Rect::square(1000.0);
  const auto deployment = sim::deploy_random(dc, rng);

  Adjacency g;
  for (const auto& n : deployment.nodes) g[n.id] = {};
  for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < deployment.nodes.size(); ++j) {
      const auto& a = deployment.nodes[i];
      const auto& b = deployment.nodes[j];
      if (util::distance(a.position, b.position) <= dc.comm_range_ft) {
        g[a.id].push_back(b.id);
        g[b.id].push_back(a.id);
      }
    }
  }
  std::unordered_map<std::uint32_t, util::Vec2> beacons;
  for (const auto* b : deployment.beacons()) beacons[b->id] = b->position;

  util::RunningStat err;
  for (const auto* s : deployment.sensors()) {
    const auto result = dv_hop_localize(g, beacons, s->id);
    if (result) err.add(util::distance(result->position, s->position));
    if (err.count() >= 60) break;
  }
  ASSERT_GT(err.count(), 30u);
  // DV-Hop is hop-granular: mean error well under one radio range.
  EXPECT_LT(err.mean(), dc.comm_range_ft);
}

TEST(DvHop, LyingBeaconCorruptsEstimates) {
  Adjacency g = line_graph();
  // Positions along a line, beacons at 0, 2, 4.
  std::unordered_map<std::uint32_t, util::Vec2> honest{
      {0, {0, 0}}, {2, {200, 0}}, {4, {400, 0}}};
  // Node 1 (true (100, 0)). Give beacon geometry a second dimension so the
  // solver is not degenerate: lift beacon 2 slightly.
  honest[2] = {200, 50};
  const auto clean = dv_hop_localize(g, honest, 1);
  ASSERT_TRUE(clean.has_value());

  auto lying = honest;
  lying[4] = {400, 800};  // beacon 4 lies wildly
  const auto attacked = dv_hop_localize(g, lying, 1);
  ASSERT_TRUE(attacked.has_value());
  EXPECT_GT(util::distance(attacked->position, {100, 0}),
            util::distance(clean->position, {100, 0}));
}

TEST(DvHop, RequiresThreeBeacons) {
  const std::unordered_map<std::uint32_t, util::Vec2> two{{0, {0, 0}},
                                                          {4, {400, 0}}};
  EXPECT_FALSE(dv_hop_localize(line_graph(), two, 2).has_value());
}

}  // namespace
}  // namespace sld::localization
