#include "attack/collusion.hpp"

#include <gtest/gtest.h>

#include <map>

#include "revocation/base_station.hpp"

namespace sld::attack {
namespace {

TEST(Collusion, EmptyInputsGiveEmptyPlan) {
  EXPECT_TRUE(plan_collusion({}, {1, 2}, 10, 2).alerts.empty());
  EXPECT_TRUE(plan_collusion({1}, {}, 10, 2).alerts.empty());
}

TEST(Collusion, RespectsPerReporterQuota) {
  const std::vector<sim::NodeId> colluders{100, 101};
  const std::vector<sim::NodeId> targets{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto plan = plan_collusion(colluders, targets, 3, 1);
  std::map<sim::NodeId, int> per_reporter;
  for (const auto& a : plan.alerts) ++per_reporter[a.reporter];
  for (const auto& [reporter, count] : per_reporter) EXPECT_LE(count, 4);
  // Total budget = 2 reporters x (3+1) alerts.
  EXPECT_EQ(plan.alerts.size(), 8u);
}

TEST(Collusion, TargetsAreRevokedInSequence) {
  const std::vector<sim::NodeId> colluders{100, 101, 102};
  const std::vector<sim::NodeId> targets{1, 2, 3};
  const auto plan = plan_collusion(colluders, targets, 10, 2);
  // Each target gets tau2 + 1 = 3 consecutive alerts.
  ASSERT_EQ(plan.alerts.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_EQ(plan.alerts[i].target, targets[i / 3]);
}

TEST(Collusion, AchievesPaperRevocationBound) {
  // N_a colluders with quota tau1 revoke about N_a (tau1+1) / (tau2+1)
  // benign beacons (paper §4).
  const std::size_t tau1 = 10, tau2 = 2;
  std::vector<sim::NodeId> colluders;
  for (sim::NodeId i = 200; i < 210; ++i) colluders.push_back(i);  // N_a=10
  std::vector<sim::NodeId> targets;
  for (sim::NodeId i = 1; i <= 90; ++i) targets.push_back(i);

  const auto plan = plan_collusion(colluders, targets, tau1, tau2);

  revocation::RevocationConfig rc;
  rc.report_quota = static_cast<std::uint32_t>(tau1);
  rc.alert_threshold = static_cast<std::uint32_t>(tau2);
  revocation::BaseStation bs(rc);
  for (const auto& a : plan.alerts) bs.process_alert(a.reporter, a.target);

  const double expected = 10.0 * (tau1 + 1) / (tau2 + 1);  // ~36.7
  EXPECT_NEAR(static_cast<double>(bs.revoked_count()), expected, 1.0);
}

TEST(Collusion, StopsWhenBudgetExhausted) {
  const auto plan = plan_collusion({100}, {1, 2, 3, 4, 5}, 1, 2);
  // One colluder with 2 accepted alerts cannot finish even one target
  // needing 3, so the plan still emits its full budget and no more.
  EXPECT_EQ(plan.alerts.size(), 2u);
}

TEST(Collusion, AlertsComeFromColluders) {
  const std::vector<sim::NodeId> colluders{7, 8};
  const auto plan = plan_collusion(colluders, {1, 2}, 5, 1);
  for (const auto& a : plan.alerts) {
    EXPECT_TRUE(a.reporter == 7 || a.reporter == 8);
    EXPECT_TRUE(a.target == 1 || a.target == 2);
  }
}

}  // namespace
}  // namespace sld::attack
