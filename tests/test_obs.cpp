// Observability subsystem: metrics semantics, JSONL record shape, and the
// load-bearing guarantee that tracing never changes simulation results.
#include <gtest/gtest.h>

#include <cmath>
#include <regex>
#include <stdexcept>
#include <string>

#include "core/secure_localization.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sld {
namespace {

// --- metrics -------------------------------------------------------------

TEST(Metrics, CounterAndGauge) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("hits");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  auto& g = reg.gauge("depth");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  // Re-registration returns the same instrument.
  reg.counter("hits").inc();
  EXPECT_EQ(reg.counter("hits").value(), 6u);
}

TEST(Metrics, HistogramBasics) {
  obs::Histogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty: defined as 0
  h.observe(5.0);
  h.observe(15.0);
  h.observe(95.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 95.0);
  EXPECT_DOUBLE_EQ(h.mean(), (5.0 + 15.0 + 95.0) / 3.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Metrics, HistogramClampsOutOfRange) {
  obs::Histogram h(0.0, 10.0, 5);
  h.observe(-100.0);
  h.observe(1e9);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -100.0);  // extrema stay exact
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Metrics, PercentilesOnUniformFill) {
  // 1..100 into [0,100] x 100 buckets: percentile(p) ~ 100 p.
  obs::Histogram h(0.0, 100.0, 100);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 50.0, 1.5);
  EXPECT_NEAR(h.p90(), 90.0, 1.5);
  EXPECT_NEAR(h.p99(), 99.0, 1.5);
  EXPECT_LE(h.p99(), h.max());
  EXPECT_GE(h.p50(), h.min());
}

TEST(Metrics, PercentileOrderingIsMonotone) {
  obs::Histogram h(0.0, 1000.0, 20);
  for (int i = 0; i < 500; ++i) h.observe(static_cast<double>(i % 97) * 7.0);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
}

// --- log-bucket (exponential) histograms ---------------------------------

TEST(Metrics, LogHistogramBucketEdgesAreGeometric) {
  // [1, 1024] over 10 buckets: edges 1, 2, 4, ..., 1024.
  obs::Histogram h(1.0, 1024.0, 10, obs::HistogramScale::kLog);
  EXPECT_EQ(h.scale(), obs::HistogramScale::kLog);
  for (std::size_t i = 0; i <= 10; ++i)
    EXPECT_NEAR(h.edge(i), std::pow(2.0, static_cast<double>(i)),
                1e-9 * std::pow(2.0, static_cast<double>(i)));
  // A sample just above an edge lands in the bucket above it.
  h.observe(1.5);    // bucket 0: [1, 2)
  h.observe(3.0);    // bucket 1: [2, 4)
  h.observe(700.0);  // bucket 9: [512, 1024]
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Metrics, LogHistogramClampsAndAcceptsNonPositive) {
  obs::Histogram h(1.0, 100.0, 4, obs::HistogramScale::kLog);
  h.observe(0.0);    // non-positive: clamps to the first bucket
  h.observe(-5.0);
  h.observe(1e12);   // above hi: clamps to the last bucket
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);  // extrema stay exact
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
}

TEST(Metrics, LogHistogramPercentileInterpolatesGeometrically) {
  // All mass in one bucket [10, 100) of [1, 1000): the percentile seam
  // must interpolate along the geometric edge curve, inside the bucket.
  obs::Histogram h(1.0, 1000.0, 3, obs::HistogramScale::kLog);
  for (int i = 0; i < 100; ++i) h.observe(30.0);
  EXPECT_GE(h.p50(), 10.0);
  EXPECT_LE(h.p50(), 100.0);
  // Percentiles never escape the observed extrema.
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
}

TEST(Metrics, LogHistogramPercentilesMonotoneOnSkewedFill) {
  // Latency-shaped fill spanning four decades — the log histogram's home
  // turf, where a linear histogram would dump everything into bucket 0.
  obs::Histogram h(0.001, 10.0, 40, obs::HistogramScale::kLog);
  for (int i = 1; i <= 1000; ++i) h.observe(0.001 * static_cast<double>(i));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_NEAR(h.p50(), 0.5, 0.1);
  EXPECT_NEAR(h.p90(), 0.9, 0.1);
}

TEST(Metrics, LogHistogramSnapshotJsonCarriesScale) {
  obs::MetricsRegistry reg;
  reg.histogram("lat", 0.1, 100.0, 8, obs::HistogramScale::kLog)
      .observe(5.0);
  reg.histogram("lin", 0.0, 10.0, 2).observe(5.0);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"lat\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"scale\":\"log\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"scale\":\"linear\""), std::string::npos) << json;
}

TEST(Metrics, LogHistogramRejectsNonPositiveLowerBound) {
  EXPECT_THROW(obs::Histogram(0.0, 10.0, 4, obs::HistogramScale::kLog),
               std::invalid_argument);
  EXPECT_THROW(obs::Histogram(-1.0, 10.0, 4, obs::HistogramScale::kLog),
               std::invalid_argument);
}

TEST(Metrics, SnapshotJsonShape) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(3);
  reg.gauge("b").set(1.5);
  reg.histogram("c", 0.0, 10.0, 2).observe(7.0);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\":{\"a\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"b\":1.5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[0,1]"), std::string::npos) << json;
}

TEST(Metrics, ScopedTimerWritesGauge) {
  obs::MetricsRegistry reg;
  {
    obs::ScopedTimerMs timer(reg, "elapsed_ms");
  }
  EXPECT_GE(reg.gauge("elapsed_ms").value(), 0.0);
}

// --- trace records -------------------------------------------------------

TEST(Trace, EventBuildsJsonObject) {
  obs::Event e("pkt.send", 1234);
  e.f("node", std::uint32_t{7})
      .f("ok", true)
      .f("x", 1.5)
      .f("name", "alpha");
  EXPECT_EQ(e.finish(),
            "{\"t\":1234,\"e\":\"pkt.send\",\"node\":7,\"ok\":true,"
            "\"x\":1.5,\"name\":\"alpha\"}");
}

TEST(Trace, EventEscapesStringsAndNonFinite) {
  obs::Event e("x", 0);
  e.f("s", "a\"b\\c\nd").f("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(e.finish(),
            "{\"t\":0,\"e\":\"x\",\"s\":\"a\\\"b\\\\c\\nd\",\"inf\":null}");
}

TEST(Trace, DefaultTracerIsOffAndEmitsNothing) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.on());
  // emit on an off tracer is a no-op (and must not crash).
  tracer.emit(tracer.event("x").f("k", 1));
  obs::NullSink null_sink;
  obs::Tracer with_null(&null_sink, [] { return std::int64_t{0}; });
  EXPECT_FALSE(with_null.on());
}

TEST(Trace, MemorySinkCollectsStampedRecords) {
  obs::MemorySink sink;
  std::int64_t now = 42;
  obs::Tracer tracer(&sink, [&now] { return now; });
  ASSERT_TRUE(tracer.on());
  tracer.emit(tracer.event("a").f("v", 1));
  now = 99;
  tracer.emit(tracer.event("b"));
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.lines()[0], "{\"t\":42,\"e\":\"a\",\"v\":1}");
  EXPECT_EQ(sink.lines()[1], "{\"t\":99,\"e\":\"b\"}");
}

// --- whole-trial behaviour ----------------------------------------------

core::SystemConfig tiny_config() {
  core::SystemConfig config;
  config.deployment.total_nodes = 60;
  config.deployment.beacon_count = 12;
  config.deployment.malicious_beacon_count = 3;
  config.deployment.field = util::Rect::square(300.0);
  config.rtt_calibration_samples = 500;
  config.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.9);
  config.seed = 11;
  return config;
}

TEST(TraceTrial, RecordsAreSchemaShapedAndDeterministic) {
  obs::MemorySink sink;
  auto config = tiny_config();
  config.trace_sink = &sink;
  core::SecureLocalizationSystem system(config);
  system.run();
  ASSERT_FALSE(sink.lines().empty());

  // Every record matches {"t":<int>,"e":"<type>"...} and time is monotone.
  const std::regex shape("^\\{\"t\":\\d+,\"e\":\"[a-z_.]+\".*\\}$");
  std::int64_t last_t = 0;
  for (const auto& line : sink.lines()) {
    EXPECT_TRUE(std::regex_match(line, shape)) << line;
    const std::int64_t t = std::stoll(line.substr(5));
    EXPECT_GE(t, last_t) << line;
    last_t = t;
  }
  EXPECT_NE(sink.lines().front().find("trial.start"), std::string::npos);
  EXPECT_NE(sink.lines().back().find("\"e\":\"trial.end\""),
            std::string::npos);

  // Same config + seed => byte-identical trace.
  obs::MemorySink sink2;
  auto config2 = tiny_config();
  config2.trace_sink = &sink2;
  core::SecureLocalizationSystem system2(config2);
  system2.run();
  ASSERT_EQ(sink.lines().size(), sink2.lines().size());
  for (std::size_t i = 0; i < sink.lines().size(); ++i)
    ASSERT_EQ(sink.lines()[i], sink2.lines()[i]) << "record " << i;
}

TEST(TraceTrial, TracedRunMatchesUntracedRunBitForBit) {
  auto untraced_config = tiny_config();
  core::SecureLocalizationSystem untraced(untraced_config);
  const auto a = untraced.run();

  obs::MemorySink sink;
  auto traced_config = tiny_config();
  traced_config.trace_sink = &sink;
  core::SecureLocalizationSystem traced(traced_config);
  const auto b = traced.run();
  EXPECT_FALSE(sink.lines().empty());

  // Every simulation output is identical; metrics_json is excluded since
  // its wall-clock phase gauges legitimately differ between runs.
  EXPECT_EQ(a.malicious_revoked, b.malicious_revoked);
  EXPECT_EQ(a.benign_revoked, b.benign_revoked);
  EXPECT_EQ(a.detection_rate, b.detection_rate);
  EXPECT_EQ(a.false_positive_rate, b.false_positive_rate);
  EXPECT_EQ(a.sensors_localized, b.sensors_localized);
  EXPECT_EQ(a.sensors_unlocalized, b.sensors_unlocalized);
  EXPECT_EQ(a.mean_localization_error_ft, b.mean_localization_error_ft);
  EXPECT_EQ(a.max_localization_error_ft, b.max_localization_error_ft);
  EXPECT_EQ(a.avg_affected_per_malicious, b.avg_affected_per_malicious);
  EXPECT_EQ(a.radio_energy_uj, b.radio_energy_uj);
  EXPECT_EQ(a.rtt_x_max_cycles, b.rtt_x_max_cycles);
  EXPECT_EQ(a.raw.probes_sent, b.raw.probes_sent);
  EXPECT_EQ(a.raw.probe_replies, b.raw.probe_replies);
  EXPECT_EQ(a.raw.consistency_flags, b.raw.consistency_flags);
  EXPECT_EQ(a.raw.alerts_submitted, b.raw.alerts_submitted);
  EXPECT_EQ(a.base_station.alerts_received, b.base_station.alerts_received);
  EXPECT_EQ(a.base_station.revocations, b.base_station.revocations);
  EXPECT_EQ(a.channel.transmissions, b.channel.transmissions);
  EXPECT_EQ(a.channel.deliveries, b.channel.deliveries);
}

TEST(TraceTrial, MetricsSnapshotCarriesHistogramsAndPhases) {
  auto config = tiny_config();
  core::SecureLocalizationSystem system(config);
  const auto s = system.run();
  for (const char* needle :
       {"\"rtt.probe_cycles\"", "\"rtt.query_cycles\"",
        "\"ranging.residual_ft\"", "\"bs.alert_counter\"",
        "\"radio.node_energy_uj\"", "\"p50\"", "\"p90\"", "\"p99\"",
        "\"phase.calibration_ms\"", "\"phase.deployment_ms\"",
        "\"phase.provisioning_ms\"", "\"phase.probing_ms\"",
        "\"phase.localization_ms\"", "\"sched.events\"",
        "\"sched.max_queue_depth\""}) {
    EXPECT_NE(s.metrics_json.find(needle), std::string::npos)
        << "missing " << needle << " in " << s.metrics_json;
  }
}

TEST(TraceTrial, CausalChainReachesRevocation) {
  // With effectiveness 0.9 and seed 11 at this scale at least one
  // malicious beacon is revoked; its full causal chain must be present.
  obs::MemorySink sink;
  auto config = tiny_config();
  config.trace_sink = &sink;
  core::SecureLocalizationSystem system(config);
  const auto s = system.run();
  ASSERT_GE(s.malicious_revoked, 1u);

  bool saw_inconsistency = false, saw_alert_verdict = false;
  bool saw_submit = false, saw_bs_accept = false, saw_revoke = false;
  for (const auto& line : sink.lines()) {
    if (line.find("\"e\":\"detect.consistency\"") != std::string::npos &&
        line.find("\"malicious\":true") != std::string::npos)
      saw_inconsistency = true;
    if (line.find("\"e\":\"detect.verdict\"") != std::string::npos &&
        line.find("\"outcome\":\"alert\"") != std::string::npos)
      saw_alert_verdict = true;
    if (line.find("\"e\":\"alert.submit\"") != std::string::npos)
      saw_submit = true;
    if (line.find("\"e\":\"bs.alert\"") != std::string::npos &&
        line.find("\"disposition\":\"accepted") != std::string::npos)
      saw_bs_accept = true;
    if (line.find("\"e\":\"bs.revoke\"") != std::string::npos)
      saw_revoke = true;
  }
  EXPECT_TRUE(saw_inconsistency);
  EXPECT_TRUE(saw_alert_verdict);
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_bs_accept);
  EXPECT_TRUE(saw_revoke);
}

}  // namespace
}  // namespace sld
