#include "revocation/suspiciousness.hpp"

#include <gtest/gtest.h>

namespace sld::revocation {
namespace {

using sim::AlertPayload;

TEST(Suspiciousness, HonestConsensusRevokes) {
  // Three independent honest reporters (never accused themselves) accuse
  // the same target: suspicion = 3 >= threshold.
  const std::vector<AlertPayload> alerts{{1, 50}, {2, 50}, {3, 50}};
  const auto r = evaluate_suspiciousness(alerts);
  EXPECT_TRUE(r.revoked.contains(50));
  EXPECT_NEAR(r.suspicion.at(50), 3.0, 1e-9);
}

TEST(Suspiciousness, TwoReportersInsufficient) {
  const std::vector<AlertPayload> alerts{{1, 50}, {2, 50}};
  const auto r = evaluate_suspiciousness(alerts);
  EXPECT_FALSE(r.revoked.contains(50));
}

TEST(Suspiciousness, AccusedReportersLoseVotingPower) {
  // Colluders 100-102 are themselves accused by five honest reporters, so
  // their trust collapses to ~1/6 each and their joint flood (~0.5 mass)
  // cannot revoke the benign target 7.
  std::vector<AlertPayload> alerts;
  for (sim::NodeId honest = 1; honest <= 5; ++honest)
    for (sim::NodeId colluder = 100; colluder <= 102; ++colluder)
      alerts.push_back({honest, colluder});
  for (sim::NodeId colluder = 100; colluder <= 102; ++colluder)
    alerts.push_back({colluder, 7});

  const auto r = evaluate_suspiciousness(alerts);
  EXPECT_TRUE(r.revoked.contains(100));
  EXPECT_TRUE(r.revoked.contains(101));
  EXPECT_TRUE(r.revoked.contains(102));
  EXPECT_FALSE(r.revoked.contains(7));
  EXPECT_LT(r.trust.at(100), 0.25);
  EXPECT_LT(r.suspicion.at(7), 1.0);
}

TEST(Suspiciousness, UnaccusedColludersStillCapped) {
  // If nobody catches the colluders, they are fully trusted — but the
  // per-reporter quota still bounds the damage, like tau1 does.
  SuspiciousnessConfig cfg;
  cfg.per_reporter_target_quota = 4;
  std::vector<AlertPayload> alerts;
  for (sim::NodeId target = 1; target <= 20; ++target)
    for (sim::NodeId colluder = 100; colluder <= 102; ++colluder)
      alerts.push_back({colluder, target});
  const auto r = evaluate_suspiciousness(alerts, cfg);
  EXPECT_EQ(r.revoked.size(), 4u);  // quota: 4 targets x 3 trusted votes
}

TEST(Suspiciousness, DuplicateAccusationsCountOnce) {
  std::vector<AlertPayload> alerts;
  for (int i = 0; i < 10; ++i) alerts.push_back({1, 50});
  const auto r = evaluate_suspiciousness(alerts);
  EXPECT_NEAR(r.suspicion.at(50), 1.0, 1e-9);
  EXPECT_FALSE(r.revoked.contains(50));
}

TEST(Suspiciousness, MutualAccusationDampens) {
  // Two cliques accusing each other: everyone's trust drops, nobody
  // reaches the threshold on one vote.
  const std::vector<AlertPayload> alerts{{1, 2}, {2, 1}};
  const auto r = evaluate_suspiciousness(alerts);
  EXPECT_TRUE(r.revoked.empty());
  EXPECT_LT(r.trust.at(1), 1.0);
  EXPECT_LT(r.trust.at(2), 1.0);
}

TEST(Suspiciousness, EmptyInput) {
  const auto r = evaluate_suspiciousness({});
  EXPECT_TRUE(r.revoked.empty());
  EXPECT_TRUE(r.suspicion.empty());
}

TEST(Suspiciousness, Validation) {
  SuspiciousnessConfig bad;
  bad.iterations = 0;
  EXPECT_THROW(evaluate_suspiciousness({}, bad), std::invalid_argument);
  bad = SuspiciousnessConfig{};
  bad.revocation_threshold = 0.0;
  EXPECT_THROW(evaluate_suspiciousness({}, bad), std::invalid_argument);
}

TEST(Suspiciousness, CounterSchemeComparison) {
  // Same worst-case collusion the paper's N_f formula covers: with honest
  // detection catching the colluders, the trust-weighted model revokes
  // far fewer benign targets than the counter bound N_a(tau1+1)/(tau2+1).
  std::vector<AlertPayload> alerts;
  // 6 honest reporters catch all 10 colluders.
  for (sim::NodeId honest = 1; honest <= 6; ++honest)
    for (sim::NodeId colluder = 200; colluder < 210; ++colluder)
      alerts.push_back({honest, colluder});
  // Each colluder floods its full quota of 11 distinct benign targets.
  sim::NodeId benign = 20;
  for (sim::NodeId colluder = 200; colluder < 210; ++colluder)
    for (int k = 0; k < 11; ++k)
      alerts.push_back({colluder, benign++ % 110 + 20});

  const auto r = evaluate_suspiciousness(alerts);
  std::size_t benign_revoked = 0;
  for (const auto t : r.revoked)
    if (t < 200) ++benign_revoked;
  // Counter scheme would allow ~36; trust weighting nearly eliminates it.
  EXPECT_LT(benign_revoked, 5u);
  // And all colluders are revoked.
  for (sim::NodeId colluder = 200; colluder < 210; ++colluder)
    EXPECT_TRUE(r.revoked.contains(colluder));
}

}  // namespace
}  // namespace sld::revocation
