#include "ranging/time_sync.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace sld::ranging {
namespace {

TEST(TimeSync, RecoversOffsetWithinAsymmetryBound) {
  MoteTimingModel model;
  util::Rng rng(1);
  const double bound = max_sync_error_cycles(model);
  for (const double offset : {-50000.0, -7.0, 0.0, 123.0, 1e6}) {
    for (int i = 0; i < 500; ++i) {
      const auto r = synchronize(model, 100.0, offset, 0.0, rng);
      EXPECT_LE(std::abs(r.offset_cycles - offset), bound + 1e-9);
    }
  }
}

TEST(TimeSync, DelayEstimateMatchesHardware) {
  MoteTimingModel model;
  util::Rng rng(2);
  util::RunningStat delay;
  for (int i = 0; i < 5000; ++i)
    delay.add(synchronize(model, 100.0, 1234.0, 0.0, rng).delay_cycles);
  // One-way delay ~ two edges + flight ~ 2 * (1349 + 216) ~ 3130.
  EXPECT_NEAR(delay.mean(), 2.0 * (1349.0 + 216.0), 30.0);
}

TEST(TimeSync, PulseDelayAttackSkewsOffsetByHalf) {
  // The attack temporal leashes are vulnerable to without countermeasures:
  // holding the reply back by D shifts the estimated offset by -D/2.
  MoteTimingModel model;
  util::Rng rng(3);
  const double attack_cycles = 20000.0;
  util::RunningStat clean, attacked;
  for (int i = 0; i < 2000; ++i) {
    clean.add(synchronize(model, 100.0, 0.0, 0.0, rng).offset_cycles);
    attacked.add(
        synchronize(model, 100.0, 0.0, attack_cycles, rng).offset_cycles);
  }
  EXPECT_NEAR(clean.mean(), 0.0, 50.0);
  EXPECT_NEAR(attacked.mean(), -attack_cycles / 2.0, 50.0);
}

TEST(TimeSync, RttMethodIsImmuneToTheSameAttackSurface) {
  // The paper's §2.2.2 point: the RTT filter needs no synchronization at
  // all, so the pulse-delay attack that corrupts sync has no sync to
  // corrupt — an attacker delaying the reply only *raises* the observed
  // RTT, pushing the signal toward rejection, never acceptance.
  MoteTimingModel model;
  util::Rng rng(4);
  const double honest_max = model.max_possible_cycles(150.0);
  for (int i = 0; i < 1000; ++i) {
    const auto x = sample_rtt_exchange(model, 100.0, 0.0, rng);
    const double delayed_rtt = x.rtt_cycles() + 20000.0;  // attack delay
    EXPECT_GT(delayed_rtt, honest_max);  // always lands above x_max
  }
}

TEST(TimeSync, SyncPrecisionSupportsTemporalLeashes) {
  // A leash needs skew << the RTT span to be useful; the achievable
  // single-exchange precision (<= jitter = 432 cycles) is comfortably
  // below the 1728-cycle envelope.
  MoteTimingModel model;
  EXPECT_LT(max_sync_error_cycles(model), 4.5 * 384.0 / 2.0);
}

TEST(TimeSync, Validation) {
  MoteTimingModel model;
  util::Rng rng(5);
  EXPECT_THROW(synchronize(model, -1.0, 0.0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(synchronize(model, 1.0, 0.0, -1.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sld::ranging
