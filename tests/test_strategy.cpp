#include "attack/strategy.hpp"

#include "crypto/detecting_ids.hpp"
#include "sim/deployment.hpp"

#include <gtest/gtest.h>

#include <map>

namespace sld::attack {
namespace {

TEST(StrategyConfig, EffectivenessFormula) {
  MaliciousStrategyConfig c;
  c.p_normal = 0.2;
  c.p_fake_wormhole = 0.3;
  c.p_fake_local_replay = 0.5;
  EXPECT_NEAR(c.effectiveness(), 0.8 * 0.7 * 0.5, 1e-12);
}

TEST(StrategyConfig, WithEffectiveness) {
  const auto c = MaliciousStrategyConfig::with_effectiveness(0.35);
  EXPECT_NEAR(c.effectiveness(), 0.35, 1e-12);
  EXPECT_NEAR(c.p_normal, 0.65, 1e-12);
  EXPECT_THROW(MaliciousStrategyConfig::with_effectiveness(1.5),
               std::invalid_argument);
}

TEST(Strategy, BehaviorIsStickyPerRequester) {
  MaliciousStrategyConfig c;
  c.p_normal = 0.5;
  MaliciousBeaconStrategy s(c, 123);
  for (sim::NodeId req = 1; req < 200; ++req) {
    const auto first = s.behavior_for(req);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(s.behavior_for(req), first);
  }
}

TEST(Strategy, FractionsMatchConfiguration) {
  MaliciousStrategyConfig c;
  c.p_normal = 0.3;
  c.p_fake_wormhole = 0.4;
  c.p_fake_local_replay = 0.5;
  MaliciousBeaconStrategy s(c, 7);
  std::map<MaliciousBehavior, int> counts;
  constexpr int kN = 100000;
  for (sim::NodeId req = 0; req < kN; ++req) ++counts[s.behavior_for(req)];
  const double n = kN;
  EXPECT_NEAR(counts[MaliciousBehavior::kNormal] / n, 0.3, 0.01);
  EXPECT_NEAR(counts[MaliciousBehavior::kFakeWormhole] / n, 0.7 * 0.4, 0.01);
  EXPECT_NEAR(counts[MaliciousBehavior::kFakeLocalReplay] / n,
              0.7 * 0.6 * 0.5, 0.01);
  EXPECT_NEAR(counts[MaliciousBehavior::kEffective] / n, c.effectiveness(),
              0.01);
}

TEST(Strategy, DifferentSeedsPartitionDifferently) {
  const auto c = MaliciousStrategyConfig::with_effectiveness(0.5);
  MaliciousBeaconStrategy a(c, 1), b(c, 2);
  int differ = 0;
  for (sim::NodeId req = 0; req < 1000; ++req)
    if (a.behavior_for(req) != b.behavior_for(req)) ++differ;
  EXPECT_GT(differ, 300);
}

TEST(Strategy, PureStrategies) {
  MaliciousStrategyConfig c;
  c.p_normal = 1.0;
  MaliciousBeaconStrategy all_normal(c, 1);
  c.p_normal = 0.0;
  MaliciousBeaconStrategy all_effective(c, 1);
  for (sim::NodeId req = 0; req < 100; ++req) {
    EXPECT_EQ(all_normal.behavior_for(req), MaliciousBehavior::kNormal);
    EXPECT_EQ(all_effective.behavior_for(req), MaliciousBehavior::kEffective);
  }
}

TEST(Strategy, RejectsBadProbabilities) {
  MaliciousStrategyConfig c;
  c.p_normal = -0.1;
  EXPECT_THROW(MaliciousBeaconStrategy(c, 1), std::invalid_argument);
  c = MaliciousStrategyConfig{};
  c.p_fake_wormhole = 1.5;
  EXPECT_THROW(MaliciousBeaconStrategy(c, 1), std::invalid_argument);
}

TEST(CraftReply, NormalBehaviorIsTruthful) {
  MaliciousStrategyConfig c;
  c.p_normal = 1.0;
  MaliciousBeaconStrategy s(c, 9);
  const util::Vec2 pos{100, 200};
  const auto reply = s.craft_reply(42, 777, pos);
  EXPECT_EQ(reply.nonce, 777u);
  EXPECT_EQ(reply.claimed_position, pos);
  EXPECT_EQ(reply.processing_bias_cycles, 0.0);
  EXPECT_EQ(reply.range_manipulation_ft, 0.0);
  EXPECT_FALSE(reply.fake_wormhole_indication);
}

TEST(CraftReply, EffectiveBehaviorLiesAboutLocation) {
  MaliciousStrategyConfig c;
  c.p_normal = 0.0;
  c.location_lie_ft = 100.0;
  MaliciousBeaconStrategy s(c, 9);
  const util::Vec2 pos{100, 200};
  const auto reply = s.craft_reply(42, 1, pos);
  EXPECT_NEAR(util::distance(reply.claimed_position, pos), 100.0, 1e-9);
  EXPECT_FALSE(reply.fake_wormhole_indication);
  EXPECT_EQ(reply.processing_bias_cycles, 0.0);
}

TEST(CraftReply, FakeWormholeClaimsFarOrigin) {
  MaliciousStrategyConfig c;
  c.p_normal = 0.0;
  c.p_fake_wormhole = 1.0;
  c.far_claim_ft = 400.0;
  MaliciousBeaconStrategy s(c, 9);
  const util::Vec2 pos{500, 500};
  const auto reply = s.craft_reply(42, 1, pos);
  EXPECT_TRUE(reply.fake_wormhole_indication);
  EXPECT_NEAR(util::distance(reply.claimed_position, pos), 400.0, 1e-9);
}

TEST(CraftReply, FakeLocalReplayInflatesRtt) {
  MaliciousStrategyConfig c;
  c.p_normal = 0.0;
  c.p_fake_local_replay = 1.0;
  MaliciousBeaconStrategy s(c, 9);
  const auto reply = s.craft_reply(42, 1, {0, 0});
  EXPECT_GT(reply.processing_bias_cycles, 1728.0);  // > the 4.5-bit span
  EXPECT_FALSE(reply.fake_wormhole_indication);
}

TEST(Strategy, DetectingIdsAreIndistinguishableFromSensorIds) {
  // The scheme's crux (§2.1): "it is very difficult for an attacker to
  // distinguish the requests from detecting beacon nodes and those from
  // non-beacon nodes". Allocate detecting IDs and real sensor IDs from
  // the same space and check the malicious beacon treats both populations
  // statistically identically.
  crypto::DetectingIdRegistry registry(sim::kNonBeaconIdBase,
                                       sim::kNonBeaconIdBase + 1'000'000);
  util::Rng rng(55);
  std::vector<sim::NodeId> sensor_ids;
  for (sim::NodeId i = 0; i < 5000; ++i) {
    sensor_ids.push_back(sim::kNonBeaconIdBase + i * 200);
    registry.reserve_real_id(sensor_ids.back());
  }
  std::vector<sim::NodeId> detecting_ids;
  for (std::uint32_t beacon = 1; beacon <= 625; ++beacon) {
    for (const auto id : registry.allocate(beacon, 8, rng))
      detecting_ids.push_back(id);
  }

  const auto cfg = MaliciousStrategyConfig::with_effectiveness(0.4);
  MaliciousBeaconStrategy strategy(cfg, 777);
  const auto effective_fraction = [&](const std::vector<sim::NodeId>& ids) {
    int n = 0;
    for (const auto id : ids)
      if (strategy.behavior_for(id) == MaliciousBehavior::kEffective) ++n;
    return static_cast<double>(n) / static_cast<double>(ids.size());
  };
  const double sensors = effective_fraction(sensor_ids);
  const double detectors = effective_fraction(detecting_ids);
  EXPECT_NEAR(sensors, 0.4, 0.03);
  EXPECT_NEAR(detectors, 0.4, 0.03);
  EXPECT_NEAR(sensors, detectors, 0.04);
  // And both ID populations read as non-beacon IDs.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(sim::is_beacon_id(detecting_ids[static_cast<std::size_t>(
        i * 37 % static_cast<int>(detecting_ids.size()))]));
  }
}

TEST(CraftReply, LieDirectionIsStickyPerRequester) {
  MaliciousStrategyConfig c;
  c.p_normal = 0.0;
  MaliciousBeaconStrategy s(c, 9);
  const auto a = s.craft_reply(42, 1, {0, 0});
  const auto b = s.craft_reply(42, 2, {0, 0});
  EXPECT_EQ(a.claimed_position, b.claimed_position);
  const auto other = s.craft_reply(43, 1, {0, 0});
  EXPECT_NE(a.claimed_position, other.claimed_position);
}

}  // namespace
}  // namespace sld::attack
