// Admission-control semantics: token buckets, the (reporter, target) pair
// rule, and the circuit-breaker state machine — including property tests
// (tests/prop/prop.hpp) that the breaker always re-closes and that its
// state is a pure function of the stall schedule and last shed time.
#include "revocation/admission.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "prop/prop.hpp"
#include "sim/time.hpp"

namespace sld::revocation {
namespace {

AdmissionConfig admission(double rate = 5.0, double burst = 8.0) {
  AdmissionConfig a;
  a.enabled = true;
  a.reporter_rate_per_s = rate;
  a.reporter_burst = burst;
  return a;
}

AdmissionController make(const AdmissionConfig& cfg,
                         const std::vector<StallWindow>& stalls = {}) {
  return AdmissionController(cfg, stalls);
}

TEST(Admission, TokenBucketCapsSustainedRate) {
  // 2 tokens/s, burst 2: two immediate admits, then dry until refill.
  auto ctl = make(admission(/*rate=*/2.0, /*burst=*/2.0));
  EXPECT_EQ(ctl.admit(1, 50, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.admit(1, 51, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.admit(1, 52, 0),
            AdmissionController::Decision::kRateLimited);
  // Half a second refills one token.
  EXPECT_EQ(ctl.admit(1, 52, 500 * sim::kMillisecond),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.admit(1, 53, 500 * sim::kMillisecond),
            AdmissionController::Decision::kRateLimited);
}

TEST(Admission, BucketsArePerReporter) {
  auto ctl = make(admission(/*rate=*/1.0, /*burst=*/1.0));
  EXPECT_EQ(ctl.admit(1, 50, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.admit(1, 51, 0),
            AdmissionController::Decision::kRateLimited);
  // A different reporter has its own full bucket.
  EXPECT_EQ(ctl.admit(2, 51, 0), AdmissionController::Decision::kAdmit);
}

TEST(Admission, PairRuleAbsorbsRepeatAccusations) {
  auto ctl = make(admission());
  EXPECT_EQ(ctl.admit(1, 50, 0), AdmissionController::Decision::kAdmit);
  ctl.remember_pair(1, 50);
  EXPECT_EQ(ctl.admit(1, 50, 0),
            AdmissionController::Decision::kDuplicatePair);
  // Other targets (and other reporters at this target) still pass.
  EXPECT_EQ(ctl.admit(1, 51, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.admit(2, 50, 0), AdmissionController::Decision::kAdmit);
}

TEST(Admission, PairRuleChecksBeforeSpendingTokens) {
  // An absorbed repeat must not drain the bucket: with burst 1, the admit
  // after a duplicate still has its token.
  auto ctl = make(admission(/*rate=*/1.0, /*burst=*/1.0));
  EXPECT_EQ(ctl.admit(1, 50, 0), AdmissionController::Decision::kAdmit);
  ctl.remember_pair(1, 50);
  // Refill fully, then probe the duplicate repeatedly.
  const sim::SimTime t = 2 * sim::kSecond;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ctl.admit(1, 50, t),
              AdmissionController::Decision::kDuplicatePair);
  }
  EXPECT_EQ(ctl.admit(1, 51, t), AdmissionController::Decision::kAdmit);
}

TEST(Admission, BreakerFollowsStallSchedule) {
  AdmissionConfig cfg = admission();
  cfg.breaker_trip_ns = 500 * sim::kMillisecond;
  cfg.breaker_cooldown_ns = 2 * sim::kSecond;
  // Stall [1s, 3s): degraded from 1.5s, recovering [3s, 5s), then closed.
  auto ctl = make(cfg, {{1 * sim::kSecond, 3 * sim::kSecond}});
  EXPECT_EQ(ctl.state(0), BreakerState::kClosed);
  EXPECT_EQ(ctl.state(1200 * sim::kMillisecond), BreakerState::kClosed);
  EXPECT_EQ(ctl.state(1500 * sim::kMillisecond), BreakerState::kDegraded);
  EXPECT_EQ(ctl.state(2999 * sim::kMillisecond), BreakerState::kDegraded);
  EXPECT_EQ(ctl.state(3 * sim::kSecond), BreakerState::kRecovering);
  EXPECT_EQ(ctl.state(4999 * sim::kMillisecond), BreakerState::kRecovering);
  EXPECT_EQ(ctl.state(5 * sim::kSecond), BreakerState::kClosed);
}

TEST(Admission, ShortStallNeverTrips) {
  AdmissionConfig cfg = admission();
  cfg.breaker_trip_ns = 500 * sim::kMillisecond;
  // 300 ms stall < trip threshold: the breaker never reads degraded.
  auto ctl = make(cfg, {{1 * sim::kSecond, 1300 * sim::kMillisecond}});
  for (sim::SimTime t = 0; t < 3 * sim::kSecond;
       t += 50 * sim::kMillisecond) {
    EXPECT_NE(ctl.state(t), BreakerState::kDegraded) << "at t=" << t;
  }
}

TEST(Admission, ShedHoldsBreakerOpenForReopenWindow) {
  AdmissionConfig cfg = admission();
  cfg.shed_reopen_ns = 1 * sim::kSecond;
  auto ctl = make(cfg);
  EXPECT_EQ(ctl.state(10 * sim::kSecond), BreakerState::kClosed);
  ctl.note_shed(10 * sim::kSecond);
  EXPECT_EQ(ctl.state(10 * sim::kSecond), BreakerState::kShedding);
  EXPECT_EQ(ctl.state(10 * sim::kSecond + 999 * sim::kMillisecond),
            BreakerState::kShedding);
  EXPECT_EQ(ctl.state(11 * sim::kSecond), BreakerState::kClosed);
}

TEST(Admission, RejectsNonsenseConfig) {
  AdmissionConfig bad = admission();
  bad.reporter_rate_per_s = -1.0;
  EXPECT_THROW(make(bad), std::invalid_argument);
  bad = admission();
  bad.breaker_trip_ns = 0;
  EXPECT_THROW(make(bad), std::invalid_argument);
  EXPECT_THROW(make(admission(), {{2 * sim::kSecond, 1 * sim::kSecond}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Properties. Each case is a pure function of its SLD_PROP_SEED-replayable
// case seed (see tests/prop/prop.hpp).

/// Random sorted non-overlapping stall schedule: durations and gaps in
/// milliseconds, shrinking toward fewer/shorter stalls.
prop::Gen<std::vector<std::int64_t>> stall_spec() {
  return prop::vector_of(prop::int_range(1, 4000), 0, 6);
}

std::vector<StallWindow> windows_from(const std::vector<std::int64_t>& spec) {
  std::vector<StallWindow> out;
  sim::SimTime cursor = 500 * sim::kMillisecond;
  for (std::size_t i = 0; i + 1 < spec.size(); i += 2) {
    const sim::SimTime duration = spec[i] * sim::kMillisecond;
    const sim::SimTime gap = spec[i + 1] * sim::kMillisecond;
    out.push_back({cursor, cursor + duration});
    cursor += duration + gap + 1;  // +1 keeps windows strictly disjoint
  }
  return out;
}

TEST(AdmissionProperty, BreakerAlwaysReCloses) {
  // Whatever the stall schedule and shed history, once the last stall has
  // cleared and both the cooldown and shed-reopen windows have elapsed,
  // the breaker reads closed — degraded/shedding are never absorbing.
  prop::forall<std::vector<std::int64_t>>(
      "breaker re-closes after quiescence", stall_spec(),
      [](const std::vector<std::int64_t>& spec, util::Rng& rng) {
        AdmissionConfig cfg = admission();
        cfg.breaker_trip_ns = 200 * sim::kMillisecond;
        cfg.breaker_cooldown_ns = 1 * sim::kSecond;
        cfg.shed_reopen_ns = 1 * sim::kSecond;
        const auto windows = windows_from(spec);
        AdmissionController ctl(cfg, windows);
        sim::SimTime horizon = 0;
        for (const auto& w : windows) horizon = std::max(horizon, w.end);
        // A shed at a random instant inside the active region.
        const sim::SimTime shed_at = static_cast<sim::SimTime>(
            rng.uniform_u64(static_cast<std::uint64_t>(horizon + 1)));
        ctl.note_shed(shed_at);
        const sim::SimTime quiet =
            std::max(horizon, shed_at) + cfg.breaker_cooldown_ns +
            cfg.shed_reopen_ns;
        return ctl.state(quiet) == BreakerState::kClosed &&
               ctl.state(quiet + 7 * sim::kSecond) == BreakerState::kClosed;
      });
}

TEST(AdmissionProperty, BreakerStateIsPureAndMonotoneThroughSchedule) {
  // state(t) queried in any order gives identical answers (pure function,
  // no hidden latching), and degraded holds exactly inside
  // [start + trip, end) of some stall window.
  prop::forall<std::vector<std::int64_t>>(
      "breaker state pure in t", stall_spec(),
      [](const std::vector<std::int64_t>& spec, util::Rng& rng) {
        AdmissionConfig cfg = admission();
        cfg.breaker_trip_ns = 200 * sim::kMillisecond;
        const auto windows = windows_from(spec);
        AdmissionController ctl(cfg, windows);
        sim::SimTime horizon = sim::kSecond;
        for (const auto& w : windows) horizon = std::max(horizon, w.end);
        for (int i = 0; i < 64; ++i) {
          const sim::SimTime t = static_cast<sim::SimTime>(
              rng.uniform_u64(static_cast<std::uint64_t>(2 * horizon)));
          bool in_degraded_interval = false;
          for (const auto& w : windows) {
            in_degraded_interval |=
                t >= w.start + cfg.breaker_trip_ns && t < w.end;
          }
          const BreakerState s = ctl.state(t);
          if ((s == BreakerState::kDegraded) != in_degraded_interval)
            return false;
          if (ctl.state(t) != s) return false;  // re-query is identical
        }
        return true;
      });
}

}  // namespace
}  // namespace sld::revocation
