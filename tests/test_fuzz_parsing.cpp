// Adversarial-input fuzzing of everything that parses bytes off the wire:
// random and truncated buffers must either parse or throw TruncatedBuffer —
// never crash, never read out of bounds (run under sanitizers to enforce
// the latter). An in-network attacker controls these bytes completely.
#include <gtest/gtest.h>

#include "crypto/cipher.hpp"
#include "sim/message.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sld {
namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t len) {
  util::Bytes out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return out;
}

template <typename Payload>
void fuzz_parser(std::uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < 5000; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform_u64(64));
    const auto bytes = random_bytes(rng, len);
    try {
      (void)Payload::parse(bytes);
    } catch (const util::TruncatedBuffer&) {
      // acceptable: the only error a malformed packet may raise
    }
  }
}

TEST(FuzzParsing, BeaconRequestSurvivesGarbage) {
  fuzz_parser<sim::BeaconRequestPayload>(1);
}

TEST(FuzzParsing, BeaconReplySurvivesGarbage) {
  fuzz_parser<sim::BeaconReplyPayload>(2);
}

TEST(FuzzParsing, AlertSurvivesGarbage) { fuzz_parser<sim::AlertPayload>(3); }

TEST(FuzzParsing, RevocationSurvivesGarbage) {
  fuzz_parser<sim::RevocationPayload>(4);
}

TEST(FuzzParsing, TruncationSweepOfValidReply) {
  // Every strict prefix of a valid serialization must throw (the reply
  // payload has no variable-length tail that could accidentally parse).
  sim::BeaconReplyPayload p;
  p.nonce = 42;
  p.claimed_position = {1.0, 2.0};
  const auto full = p.serialize();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    util::Bytes prefix(full.begin(),
                       full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)sim::BeaconReplyPayload::parse(prefix),
                 util::TruncatedBuffer)
        << "prefix length " << cut;
  }
}

TEST(FuzzParsing, BitflipSweepStillParsesOrThrows) {
  // Single bit flips in a valid buffer parse to *something* (values are
  // attacker-controlled anyway) or throw; the MAC layer is what rejects
  // them semantically.
  sim::BeaconReplyPayload p;
  p.nonce = 7;
  const auto full = p.serialize();
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = full;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NO_THROW((void)sim::BeaconReplyPayload::parse(mutated));
    }
  }
}

TEST(FuzzParsing, SealedBoxGarbageNeverOpens) {
  util::Rng rng(5);
  crypto::Key128 key{};
  key.fill(0x11);
  int opened = 0;
  for (int i = 0; i < 2000; ++i) {
    crypto::SealedBox box;
    box.ciphertext = random_bytes(rng, rng.uniform_u64(48));
    box.tag = rng();
    if (crypto::open(key, rng(), 1, 2, box)) ++opened;
  }
  EXPECT_EQ(opened, 0);  // 64-bit tags: forgery chance ~ 2^-64
}

TEST(FuzzParsing, ByteReaderNeverReadsPastEnd) {
  util::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, rng.uniform_u64(16));
    util::ByteReader r(bytes);
    try {
      // Request a mix of reads larger than the buffer can hold.
      r.u32();
      r.sized_bytes();
      r.f64();
    } catch (const util::TruncatedBuffer&) {
    }
    EXPECT_LE(r.remaining(), bytes.size());
  }
}

}  // namespace
}  // namespace sld
