// Base-station failover: primary outages, standby takeover with WAL
// reconciliation, split-brain fencing by epoch, and the acceptance bounds
// (no counted alert lost beyond the fsync window; failover revokes the
// same set as an uninterrupted run).
#include "revocation/failover.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "check/invariant.hpp"

namespace sld::revocation {
namespace {

using sim::kMillisecond;
using sim::kSecond;

RevocationConfig revocation(std::uint32_t tau1 = 10, std::uint32_t tau2 = 2) {
  RevocationConfig c;
  c.report_quota = tau1;
  c.alert_threshold = tau2;
  return c;
}

FailoverConfig standby_config(std::vector<OutageWindow> outages,
                              std::uint32_t fsync = 1) {
  FailoverConfig f;
  f.standby_enabled = true;
  f.heartbeat_interval_ns = 500 * kMillisecond;
  f.takeover_timeout_ns = 2 * kSecond;
  f.durable.enabled = true;
  f.durable.fsync_every_records = fsync;
  f.primary_outages = std::move(outages);
  return f;
}

struct TimedAlert {
  sim::SimTime t = 0;
  sim::NodeId reporter = 0;
  sim::NodeId target = 0;
  std::uint64_t nonce = 0;
};

/// Drives a scripted alert schedule through a cluster the way the system's
/// ARQ would: an alert arriving while no station is up is retried 500 ms
/// later (up to 20 times), everything in timestamp order.
void drive(BaseStationCluster& cluster, std::vector<TimedAlert> alerts) {
  std::deque<TimedAlert> queue(alerts.begin(), alerts.end());
  int guard = 0;
  while (!queue.empty() && ++guard < 10'000) {
    std::stable_sort(queue.begin(), queue.end(),
                     [](const TimedAlert& a, const TimedAlert& b) {
                       return a.t < b.t;
                     });
    TimedAlert a = queue.front();
    queue.pop_front();
    if (!cluster.available(a.t)) {
      a.t += 500 * kMillisecond;
      queue.push_back(a);
      continue;
    }
    cluster.process_alert(a.t, a.reporter, a.target, a.nonce);
  }
  ASSERT_LT(guard, 10'000);
}

std::vector<TimedAlert> scripted_alerts() {
  // Three targets; target 50 and 60 cross tau2 = 2, target 70 does not.
  // Timestamps straddle the outage window used by the tests.
  std::vector<TimedAlert> alerts;
  std::uint64_t nonce = 1;
  const sim::SimTime times[] = {1 * kSecond,  2 * kSecond,  11 * kSecond,
                                12 * kSecond, 13 * kSecond, 21 * kSecond,
                                22 * kSecond};
  int i = 0;
  for (const sim::NodeId target : {50, 60}) {
    for (const sim::NodeId reporter : {101, 102, 103}) {
      alerts.push_back(
          {times[static_cast<std::size_t>(i++ % 7)], reporter, target,
           nonce++});
    }
  }
  alerts.push_back({times[6], 104, 70, nonce++});
  return alerts;
}

TEST(Failover, DefaultConfigIsPassThrough) {
  BaseStationCluster cluster(revocation(), FailoverConfig{});
  EXPECT_FALSE(FailoverConfig{}.any_enabled());
  EXPECT_TRUE(cluster.transitions().empty());
  EXPECT_TRUE(cluster.available(0));
  EXPECT_EQ(cluster.epoch(), 1u);
  cluster.process_alert(0, 1, 50, 1);
  cluster.process_alert(1, 2, 50, 2);
  cluster.process_alert(2, 3, 50, 3);
  EXPECT_TRUE(cluster.is_revoked(50));
  EXPECT_EQ(cluster.stats().failovers, 0u);
}

TEST(Failover, RestartWithoutStandbyResumesFromDurableState) {
  // No standby: the outage makes the service unavailable until the primary
  // returns, restored from the WAL.
  FailoverConfig f;
  f.durable.enabled = true;
  f.primary_outages = {{10 * kSecond, 14 * kSecond}};
  BaseStationCluster cluster(revocation(), f);
  cluster.process_alert(1 * kSecond, 101, 50, 1);
  cluster.process_alert(2 * kSecond, 102, 50, 2);
  EXPECT_FALSE(cluster.available(11 * kSecond));
  EXPECT_TRUE(cluster.available(14 * kSecond));
  EXPECT_EQ(cluster.stats().restarts, 1u);
  EXPECT_EQ(cluster.epoch(), 1u);  // no takeover happened
  // Durable alerts survived the restart; the next one still revokes.
  EXPECT_EQ(cluster.alert_counter(50), 2u);
  EXPECT_EQ(cluster.process_alert(15 * kSecond, 103, 50, 3),
            AlertDisposition::kAcceptedAndRevoked);
}

TEST(Failover, KillRestartLosesNoCountedAlertBeyondFsyncWindow) {
  // fsync every 4 records, 6 accepted before the kill: the restart must
  // recover at least 6 - (4 - 1) = 3 and exactly the flushed prefix (4).
  FailoverConfig f;
  f.durable.enabled = true;
  f.durable.fsync_every_records = 4;
  f.primary_outages = {{10 * kSecond, 12 * kSecond}};
  BaseStationCluster cluster(revocation(10, 100), f);
  for (std::uint32_t i = 0; i < 6; ++i)
    cluster.process_alert(static_cast<sim::SimTime>(i + 1) * kSecond,
                          101 + i, 50, 1000 + i);
  EXPECT_EQ(cluster.alert_counter(50), 6u);
  cluster.advance(12 * kSecond);  // kill + restart
  const std::uint32_t recovered = cluster.alert_counter(50);
  EXPECT_EQ(recovered, 4u);
  EXPECT_GE(recovered + f.durable.fsync_every_records, 6u + 1u);
  EXPECT_EQ(cluster.wal().stats().records_lost, 2u);
  EXPECT_EQ(cluster.accepted_distinct(50), 6u);
}

TEST(Failover, StandbyTakesOverAfterTimeoutAndBumpsEpoch) {
  BaseStationCluster cluster(revocation(),
                             standby_config({{10 * kSecond, 30 * kSecond}}));
  cluster.process_alert(1 * kSecond, 101, 50, 1);
  EXPECT_FALSE(cluster.available(11 * kSecond));
  // Last heartbeat at 10 s (interval 500 ms), takeover timeout 2 s: the
  // standby promotes itself at 12 s.
  EXPECT_FALSE(cluster.available(11'900 * kMillisecond));
  EXPECT_TRUE(cluster.available(12 * kSecond));
  EXPECT_EQ(cluster.epoch(), 2u);
  EXPECT_EQ(cluster.stats().failovers, 1u);
  // The standby reconciled from the WAL: earlier evidence still counts.
  EXPECT_EQ(cluster.alert_counter(50), 1u);
  cluster.process_alert(13 * kSecond, 102, 50, 2);
  EXPECT_EQ(cluster.process_alert(14 * kSecond, 103, 50, 3),
            AlertDisposition::kAcceptedAndRevoked);
}

TEST(Failover, ReturningPrimaryIsFencedBehindHigherEpoch) {
  BaseStationCluster cluster(revocation(),
                             standby_config({{10 * kSecond, 30 * kSecond}}));
  cluster.advance(31 * kSecond);
  EXPECT_EQ(cluster.stats().failovers, 1u);
  EXPECT_EQ(cluster.stats().fences, 1u);
  EXPECT_EQ(cluster.stats().restarts, 0u);
  EXPECT_EQ(cluster.epoch(), 2u);
  // The standby stays the authority after the primary's return.
  cluster.process_alert(32 * kSecond, 101, 50, 1);
  EXPECT_EQ(cluster.alert_counter(50), 1u);
}

TEST(Failover, OutageShorterThanTakeoverTimeoutNeverPromotes) {
  // 1 s outage < 2 s takeover timeout: the standby never fires; the
  // primary restarts in place.
  BaseStationCluster cluster(revocation(),
                             standby_config({{10 * kSecond, 11 * kSecond}}));
  cluster.advance(20 * kSecond);
  EXPECT_EQ(cluster.stats().failovers, 0u);
  EXPECT_EQ(cluster.stats().restarts, 1u);
  EXPECT_EQ(cluster.epoch(), 1u);
}

TEST(Failover, FailoverRevokesExactlyTheUninterruptedSet) {
  // Acceptance bound: the same alert schedule (with ARQ-style retries
  // around the outage) revokes the same target set with and without the
  // outage, because fsync = 1 loses nothing and nonce dedup absorbs the
  // retries.
  const auto alerts = scripted_alerts();

  BaseStationCluster uninterrupted(revocation(), FailoverConfig{});
  drive(uninterrupted, alerts);

  BaseStationCluster failover(
      revocation(), standby_config({{10 * kSecond, 60 * kSecond}}));
  drive(failover, alerts);

  EXPECT_EQ(failover.stats().failovers, 1u);
  EXPECT_EQ(failover.authority().revocation_order(),
            uninterrupted.authority().revocation_order());
  for (const sim::NodeId target : {50, 60, 70}) {
    EXPECT_EQ(failover.is_revoked(target), uninterrupted.is_revoked(target))
        << "target " << target;
    EXPECT_EQ(failover.alert_counter(target),
              uninterrupted.alert_counter(target))
        << "target " << target;
  }
}

TEST(Failover, AdvanceBackwardsViolatesInvariant) {
  if (!check::invariants_enabled()) GTEST_SKIP() << "invariants off";
  static int violations;
  violations = 0;
  check::ScopedInvariantHandler guard(
      [](const check::InvariantViolation&) { ++violations; });
  BaseStationCluster cluster(revocation(), FailoverConfig{});
  cluster.advance(10 * kSecond);
  cluster.advance(5 * kSecond);
  EXPECT_EQ(violations, 1);
}

TEST(Failover, InvalidConfigRejected) {
  FailoverConfig bad_hb;
  bad_hb.heartbeat_interval_ns = 0;
  EXPECT_THROW(BaseStationCluster(revocation(), bad_hb),
               std::invalid_argument);

  FailoverConfig empty_window;
  empty_window.primary_outages = {{5, 5}};
  EXPECT_THROW(BaseStationCluster(revocation(), empty_window),
               std::invalid_argument);

  FailoverConfig overlapping;
  overlapping.primary_outages = {{0, 10}, {5, 20}};
  EXPECT_THROW(BaseStationCluster(revocation(), overlapping),
               std::invalid_argument);
}

}  // namespace
}  // namespace sld::revocation
