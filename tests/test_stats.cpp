#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sld::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  RunningStat small, large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(EmpiricalCdf, SortedQueries) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, MinMaxMatchPaperNotation) {
  EmpiricalCdf cdf({5.0, 9.0, 7.0});
  EXPECT_EQ(cdf.x_min(), 5.0);  // largest x with F(x) = 0 is the minimum
  EXPECT_EQ(cdf.x_max(), 9.0);  // smallest x with F(x) = 1 is the maximum
}

TEST(EmpiricalCdf, Quantiles) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  EXPECT_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_EQ(cdf.quantile(1.0), 10.0);
}

TEST(EmpiricalCdf, ThrowsOnEmptyOrBadP) {
  EmpiricalCdf empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(empty.at(1.0), std::logic_error);
  EmpiricalCdf cdf({1.0});
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
}

TEST(LogGamma, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGamma, HalfIntegerValue) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), std::invalid_argument);
  EXPECT_THROW(log_gamma(-1.0), std::invalid_argument);
}

TEST(LogBinomialCoefficient, SmallValues) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-7);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(7, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(7, 7)), 1.0, 1e-12);
}

TEST(LogBinomialCoefficient, LargeValuesStayFinite) {
  const double v = log_binomial_coefficient(1000, 500);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 600.0);  // C(1000,500) ~ 2.7e299 -> log ~ 689
  EXPECT_LT(v, 700.0);
}

TEST(LogBinomialCoefficient, ThrowsWhenKExceedsN) {
  EXPECT_THROW(log_binomial_coefficient(3, 4), std::invalid_argument);
}

TEST(BinomialPmf, SumsToOne) {
  double sum = 0.0;
  for (std::uint64_t k = 0; k <= 20; ++k) sum += binomial_pmf(20, k, 0.3);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_EQ(binomial_pmf(10, 1, 0.0), 0.0);
  EXPECT_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(BinomialPmf, MatchesDirectComputation) {
  // P[X = 3], X ~ Bin(5, 0.5) = 10 / 32.
  EXPECT_NEAR(binomial_pmf(5, 3, 0.5), 0.3125, 1e-12);
}

TEST(BinomialPmf, KAboveNIsZero) { EXPECT_EQ(binomial_pmf(4, 5, 0.5), 0.0); }

TEST(BinomialTail, ComplementOfCdf) {
  for (std::uint64_t k = 0; k < 15; ++k) {
    EXPECT_NEAR(binomial_tail_above(15, k, 0.37) + binomial_cdf(15, k, 0.37),
                1.0, 1e-12);
  }
}

TEST(BinomialTail, KnownValue) {
  // P[X > 1], X ~ Bin(2, 0.5) = P[X = 2] = 0.25.
  EXPECT_NEAR(binomial_tail_above(2, 1, 0.5), 0.25, 1e-12);
}

TEST(BinomialTail, EdgeCases) {
  EXPECT_EQ(binomial_tail_above(10, 10, 0.9), 0.0);
  EXPECT_NEAR(binomial_tail_above(10, 0, 1.0), 1.0, 1e-12);
}

TEST(BinomialCdf, MonotoneInK) {
  double prev = 0.0;
  for (std::uint64_t k = 0; k <= 30; ++k) {
    const double c = binomial_cdf(30, k, 0.6);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

namespace {
double neg_parabola(double x, const void*) { return -(x - 0.3) * (x - 0.3); }
double linear_up(double x, const void*) { return x; }
}  // namespace

TEST(ArgmaxScalar, FindsParabolaPeak) {
  const double x = argmax_scalar(0.0, 1.0, 101, neg_parabola, nullptr);
  EXPECT_NEAR(x, 0.3, 1e-6);
}

TEST(ArgmaxScalar, MonotoneFunctionPicksBoundary) {
  const double x = argmax_scalar(0.0, 1.0, 11, linear_up, nullptr);
  EXPECT_NEAR(x, 1.0, 1e-6);
}

TEST(ArgmaxScalar, RejectsInvertedInterval) {
  EXPECT_THROW(argmax_scalar(1.0, 0.0, 10, linear_up, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace sld::util
