#include "sim/deployment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sld::sim {
namespace {

DeploymentConfig paper_config() { return DeploymentConfig{}; }

TEST(Deployment, PaperDefaults) {
  const DeploymentConfig c = paper_config();
  EXPECT_EQ(c.total_nodes, 1000u);
  EXPECT_EQ(c.beacon_count, 100u);
  EXPECT_EQ(c.malicious_beacon_count, 10u);
  EXPECT_EQ(c.comm_range_ft, 150.0);
  EXPECT_EQ(c.field.area(), 1e6);
}

TEST(Deployment, CountsMatchConfig) {
  util::Rng rng(1);
  const auto d = deploy_random(paper_config(), rng);
  EXPECT_EQ(d.nodes.size(), 1000u);
  EXPECT_EQ(d.beacons().size(), 100u);
  EXPECT_EQ(d.malicious_beacons().size(), 10u);
  EXPECT_EQ(d.benign_beacons().size(), 90u);
  EXPECT_EQ(d.sensors().size(), 900u);
}

TEST(Deployment, AllNodesInsideField) {
  util::Rng rng(2);
  const auto d = deploy_random(paper_config(), rng);
  for (const auto& n : d.nodes) EXPECT_TRUE(d.config.field.contains(n.position));
}

TEST(Deployment, IdsAreUniqueAndPartitioned) {
  util::Rng rng(3);
  const auto d = deploy_random(paper_config(), rng);
  std::set<NodeId> ids;
  for (const auto& n : d.nodes) {
    EXPECT_TRUE(ids.insert(n.id).second);
    if (n.beacon) {
      EXPECT_TRUE(is_beacon_id(n.id));
    } else {
      EXPECT_FALSE(is_beacon_id(n.id));
      EXPECT_GE(n.id, kNonBeaconIdBase);
    }
  }
}

TEST(Deployment, MaliciousAreBeacons) {
  util::Rng rng(4);
  const auto d = deploy_random(paper_config(), rng);
  for (const auto* m : d.malicious_beacons()) EXPECT_TRUE(m->beacon);
}

TEST(Deployment, MaliciousSubsetVariesWithSeed) {
  util::Rng rng1(5), rng2(6);
  const auto d1 = deploy_random(paper_config(), rng1);
  const auto d2 = deploy_random(paper_config(), rng2);
  std::set<NodeId> m1, m2;
  for (const auto* m : d1.malicious_beacons()) m1.insert(m->id);
  for (const auto* m : d2.malicious_beacons()) m2.insert(m->id);
  EXPECT_NE(m1, m2);
}

TEST(Deployment, DeterministicForSameSeed) {
  util::Rng rng1(7), rng2(7);
  const auto d1 = deploy_random(paper_config(), rng1);
  const auto d2 = deploy_random(paper_config(), rng2);
  ASSERT_EQ(d1.nodes.size(), d2.nodes.size());
  for (std::size_t i = 0; i < d1.nodes.size(); ++i) {
    EXPECT_EQ(d1.nodes[i].id, d2.nodes[i].id);
    EXPECT_EQ(d1.nodes[i].position, d2.nodes[i].position);
    EXPECT_EQ(d1.nodes[i].malicious, d2.nodes[i].malicious);
  }
}

TEST(Deployment, FindLocatesNodes) {
  util::Rng rng(8);
  const auto d = deploy_random(paper_config(), rng);
  const auto* first = d.find(d.nodes.front().id);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, d.nodes.front().id);
  EXPECT_EQ(d.find(0xdeadbeef), nullptr);
}

TEST(Deployment, ValidationRejectsBadConfigs) {
  util::Rng rng(9);
  DeploymentConfig c = paper_config();
  c.beacon_count = c.total_nodes + 1;
  EXPECT_THROW(deploy_random(c, rng), std::invalid_argument);

  c = paper_config();
  c.malicious_beacon_count = c.beacon_count + 1;
  EXPECT_THROW(deploy_random(c, rng), std::invalid_argument);

  c = paper_config();
  c.comm_range_ft = 0.0;
  EXPECT_THROW(deploy_random(c, rng), std::invalid_argument);

  c = paper_config();
  c.field = util::Rect{0, 0, 0, 0};
  EXPECT_THROW(deploy_random(c, rng), std::invalid_argument);
}

TEST(Deployment, ZeroMaliciousAllowed) {
  util::Rng rng(10);
  DeploymentConfig c = paper_config();
  c.malicious_beacon_count = 0;
  const auto d = deploy_random(c, rng);
  EXPECT_TRUE(d.malicious_beacons().empty());
  EXPECT_EQ(d.benign_beacons().size(), 100u);
}

TEST(GridDeployment, CountsAndContainment) {
  util::Rng rng(20);
  const auto d = deploy_grid(paper_config(), rng);
  EXPECT_EQ(d.nodes.size(), 1000u);
  EXPECT_EQ(d.beacons().size(), 100u);
  EXPECT_EQ(d.malicious_beacons().size(), 10u);
  for (const auto& n : d.nodes) EXPECT_TRUE(d.config.field.contains(n.position));
}

TEST(GridDeployment, PositionsFormLattice) {
  util::Rng rng(21);
  DeploymentConfig c = paper_config();
  c.total_nodes = 100;
  c.beacon_count = 10;
  c.malicious_beacon_count = 0;
  const auto d = deploy_grid(c, rng);
  // 10x10 lattice over 1000 ft: cells of 100 ft, centres at 50, 150, ...
  for (const auto& n : d.nodes) {
    EXPECT_NEAR(std::fmod(n.position.x - 50.0, 100.0), 0.0, 1e-9);
    EXPECT_NEAR(std::fmod(n.position.y - 50.0, 100.0), 0.0, 1e-9);
  }
}

TEST(GridDeployment, PositionsDeterministicMaliciousSeeded) {
  util::Rng rng1(22), rng2(23);
  const auto d1 = deploy_grid(paper_config(), rng1);
  const auto d2 = deploy_grid(paper_config(), rng2);
  for (std::size_t i = 0; i < d1.nodes.size(); ++i)
    EXPECT_EQ(d1.nodes[i].position, d2.nodes[i].position);
  std::set<NodeId> m1, m2;
  for (const auto* m : d1.malicious_beacons()) m1.insert(m->id);
  for (const auto* m : d2.malicious_beacons()) m2.insert(m->id);
  EXPECT_NE(m1, m2);  // malicious subset still randomized
}

TEST(Deployment, UniformCoverage) {
  // Coarse chi-square-ish check: each quadrant gets roughly a quarter.
  util::Rng rng(11);
  DeploymentConfig c = paper_config();
  c.total_nodes = 4000;
  c.beacon_count = 100;
  const auto d = deploy_random(c, rng);
  int q[4] = {0, 0, 0, 0};
  for (const auto& n : d.nodes) {
    const int idx = (n.position.x > 500.0 ? 1 : 0) +
                    (n.position.y > 500.0 ? 2 : 0);
    ++q[idx];
  }
  for (const int count : q) {
    EXPECT_GT(count, 850);
    EXPECT_LT(count, 1150);
  }
}

}  // namespace
}  // namespace sld::sim
