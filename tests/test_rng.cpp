#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace sld::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  // Forking with the same salt before any parent draw gives the same child.
  Rng parent2(7);
  Rng child2 = parent2.fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForkSaltsProduceDistinctStreams) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformThrowsOnInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformU64Bounded) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64ThrowsOnZeroBound) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(14);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(14);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(16);
  const auto idx = rng.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(17);
  const auto idx = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesThrowsWhenKExceedsN) {
  Rng rng(18);
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

}  // namespace
}  // namespace sld::util
