#include "crypto/pairwise.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sld::crypto {
namespace {

TEST(PairwiseKeyManager, SymmetricInNodeOrder) {
  const auto mgr = PairwiseKeyManager::from_seed(1);
  EXPECT_EQ(mgr.pairwise_key(3, 9), mgr.pairwise_key(9, 3));
}

TEST(PairwiseKeyManager, UniquePerPair) {
  const auto mgr = PairwiseKeyManager::from_seed(2);
  std::set<Key128> keys;
  for (std::uint32_t a = 0; a < 12; ++a)
    for (std::uint32_t b = a + 1; b < 12; ++b)
      keys.insert(mgr.pairwise_key(a, b));
  EXPECT_EQ(keys.size(), 12u * 11u / 2u);
}

TEST(PairwiseKeyManager, SelfPairRejected) {
  const auto mgr = PairwiseKeyManager::from_seed(3);
  EXPECT_THROW(mgr.pairwise_key(4, 4), std::invalid_argument);
}

TEST(PairwiseKeyManager, DifferentMastersDisagree) {
  const auto a = PairwiseKeyManager::from_seed(4);
  const auto b = PairwiseKeyManager::from_seed(5);
  EXPECT_NE(a.pairwise_key(1, 2), b.pairwise_key(1, 2));
}

TEST(PairwiseKeyManager, BaseStationKeysUniquePerNode) {
  const auto mgr = PairwiseKeyManager::from_seed(6);
  std::set<Key128> keys;
  for (std::uint32_t id = 0; id < 50; ++id)
    keys.insert(mgr.base_station_key(id));
  EXPECT_EQ(keys.size(), 50u);
}

TEST(PairwiseKeyManager, BaseStationKeyDistinctFromPairwise) {
  const auto mgr = PairwiseKeyManager::from_seed(7);
  EXPECT_NE(mgr.base_station_key(1), mgr.pairwise_key(1, 2));
}

TEST(PairwiseKeyManager, BaseStationIdRejected) {
  const auto mgr = PairwiseKeyManager::from_seed(8);
  EXPECT_THROW(mgr.base_station_key(kBaseStationId), std::invalid_argument);
}

TEST(PairwiseKeyManager, DeterministicFromSeed) {
  const auto a = PairwiseKeyManager::from_seed(9);
  const auto b = PairwiseKeyManager::from_seed(9);
  EXPECT_EQ(a.pairwise_key(10, 20), b.pairwise_key(10, 20));
  EXPECT_EQ(a.base_station_key(10), b.base_station_key(10));
}

}  // namespace
}  // namespace sld::crypto
