#include "attack/replay.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.hpp"

namespace sld::attack {
namespace {

class RecorderNode final : public sim::Node {
 public:
  using Node::Node;
  void on_message(const sim::Delivery& d) override {
    deliveries.push_back(d);
  }
  std::vector<sim::Delivery> deliveries;
};

sim::Message beacon_reply(sim::NodeId src, sim::NodeId dst) {
  sim::Message m;
  m.src = src;
  m.dst = dst;
  m.type = sim::MsgType::kBeaconReply;
  m.payload = sim::BeaconReplyPayload{}.serialize();
  return m;
}

class ReplayTest : public ::testing::Test {
 protected:
  sim::Network net{sim::ChannelConfig{}, 42};
};

TEST_F(ReplayTest, ReplayArrivesWithDelay) {
  auto& victim = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& requester =
      net.emplace_node<RecorderNode>(1000, util::Vec2{100, 0}, 150.0);

  LocalReplayConfig cfg;
  cfg.victim_beacon = 1;
  cfg.position = {50, 0};
  LocalReplayAttacker attacker(cfg, net.channel(), net.scheduler());
  net.channel().add_observer(&attacker);

  net.channel().unicast(victim, beacon_reply(1, 1000));
  net.run();

  ASSERT_EQ(requester.deliveries.size(), 2u);  // original + replay
  const auto& original = requester.deliveries[0];
  const auto& replay = requester.deliveries[1];
  EXPECT_FALSE(original.ctx.is_replay);
  EXPECT_TRUE(replay.ctx.is_replay);
  EXPECT_EQ(attacker.replays_sent(), 1u);
  // Store-and-forward costs at least one packet air time of RTT delay.
  EXPECT_GE(replay.ctx.extra_delay_cycles,
            net.channel().packet_airtime_cycles(original.msg.payload.size()));
  EXPECT_GT(replay.rx_time, original.rx_time);
  // The replayed energy radiates from the attacker's position.
  EXPECT_EQ(replay.ctx.radiating_position, (util::Vec2{50, 0}));
}

TEST_F(ReplayTest, ShieldedModeSuppressesOriginal) {
  auto& victim = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& requester =
      net.emplace_node<RecorderNode>(1000, util::Vec2{100, 0}, 150.0);

  LocalReplayConfig cfg;
  cfg.victim_beacon = 1;
  cfg.position = {50, 0};
  cfg.shield_original = true;
  LocalReplayAttacker attacker(cfg, net.channel(), net.scheduler());
  net.channel().add_observer(&attacker);

  net.channel().unicast(victim, beacon_reply(1, 1000));
  net.run();

  ASSERT_EQ(requester.deliveries.size(), 1u);
  EXPECT_TRUE(requester.deliveries[0].ctx.is_replay);
}

TEST_F(ReplayTest, IgnoresOtherSenders) {
  auto& other = net.emplace_node<RecorderNode>(2, util::Vec2{0, 0}, 150.0);
  auto& requester =
      net.emplace_node<RecorderNode>(1000, util::Vec2{100, 0}, 150.0);

  LocalReplayConfig cfg;
  cfg.victim_beacon = 1;  // not node 2
  cfg.position = {50, 0};
  LocalReplayAttacker attacker(cfg, net.channel(), net.scheduler());
  net.channel().add_observer(&attacker);

  net.channel().unicast(other, beacon_reply(2, 1000));
  net.run();

  EXPECT_EQ(attacker.replays_sent(), 0u);
  EXPECT_EQ(requester.deliveries.size(), 1u);
}

TEST_F(ReplayTest, DoesNotReplayItsOwnReplays) {
  auto& victim = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  net.emplace_node<RecorderNode>(1000, util::Vec2{100, 0}, 150.0);

  LocalReplayConfig cfg;
  cfg.victim_beacon = 1;
  cfg.position = {50, 0};
  LocalReplayAttacker attacker(cfg, net.channel(), net.scheduler());
  net.channel().add_observer(&attacker);

  net.channel().unicast(victim, beacon_reply(1, 1000));
  net.run();
  // Exactly one replay despite the attacker hearing its own transmission.
  EXPECT_EQ(attacker.replays_sent(), 1u);
}

TEST_F(ReplayTest, CustomDelayHonored) {
  auto& victim = net.emplace_node<RecorderNode>(1, util::Vec2{0, 0}, 150.0);
  auto& requester =
      net.emplace_node<RecorderNode>(1000, util::Vec2{100, 0}, 150.0);

  LocalReplayConfig cfg;
  cfg.victim_beacon = 1;
  cfg.position = {50, 0};
  cfg.replay_delay_cycles = 1000.0;  // sub-packet: the filter's blind spot
  LocalReplayAttacker attacker(cfg, net.channel(), net.scheduler());
  net.channel().add_observer(&attacker);

  net.channel().unicast(victim, beacon_reply(1, 1000));
  net.run();
  ASSERT_EQ(requester.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(requester.deliveries[1].ctx.extra_delay_cycles, 1000.0);
}

}  // namespace
}  // namespace sld::attack
