// Properties of the evidence lifecycle (src/revocation/lifecycle): decay
// is monotone in elapsed sim time, exoneration sweeps are idempotent and
// observationally neutral, and the state machine is replay-deterministic —
// the same timed accepted-alert history produces a byte-identical state
// image, even across an export/import split at an arbitrary point.
#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "prop/generators.hpp"
#include "prop/prop.hpp"
#include "revocation/lifecycle.hpp"

namespace {

using namespace sld;
using prop::TimedAlertStream;
using revocation::LifecyclePhase;
using revocation::LifecycleTracker;

/// Elapsed-time pairs over a random half-life for the decay property.
struct DecayCase {
  sim::SimTime half_life = 0;
  sim::SimTime t1 = 0;
  sim::SimTime t2 = 0;  // >= t1
};

prop::Gen<DecayCase> decay_case() {
  prop::Gen<DecayCase> g;
  g.generate = [](util::Rng& rng) {
    DecayCase c;
    c.half_life = static_cast<sim::SimTime>(
        1 + rng.uniform_u64(600 * sim::kSecond));
    const auto a = static_cast<sim::SimTime>(
        rng.uniform_u64(2000ULL * static_cast<std::uint64_t>(c.half_life)));
    const auto b = static_cast<sim::SimTime>(
        rng.uniform_u64(2000ULL * static_cast<std::uint64_t>(c.half_life)));
    c.t1 = std::min(a, b);
    c.t2 = std::max(a, b);
    return c;
  };
  g.show = [](const DecayCase& c) {
    std::ostringstream os;
    os << "{H=" << c.half_life << " t1=" << c.t1 << " t2=" << c.t2 << "}";
    return os.str();
  };
  return g;
}

LifecycleTracker build_tracker(const TimedAlertStream& s) {
  LifecycleTracker t(s.config, s.quarantine_threshold);
  for (const auto& [id, pos] : s.roster) t.register_beacon(id, pos);
  return t;
}

sim::SimTime end_time(const TimedAlertStream& s) {
  return s.alerts.empty() ? 0 : s.alerts.back().at;
}

TEST(LifecycleProperties, DecayMonotoneInElapsedSimTime) {
  prop::forall<DecayCase>(
      "decay_monotone", decay_case(), [](const DecayCase& c) {
        const double d1 = revocation::decay_factor(c.t1, c.half_life);
        const double d2 = revocation::decay_factor(c.t2, c.half_life);
        return d2 <= d1 && d1 <= 1.0 && d2 >= 0.0;
      });
}

TEST(LifecycleProperties, ExonerationIdempotentAndNeutral) {
  prop::forall<TimedAlertStream>(
      "exoneration_idempotent", prop::timed_alert_stream(),
      [](const TimedAlertStream& s) {
        LifecycleTracker t = build_tracker(s);
        for (const auto& a : s.alerts) t.observe(a.reporter, a.target, a.at);
        const sim::SimTime sweep =
            end_time(s) + 5 * s.config.half_life_ns;

        // The sweep must not change what any query already reported.
        std::vector<std::pair<LifecyclePhase, double>> before;
        for (const auto& [id, pos] : s.roster)
          before.emplace_back(t.phase(id, sweep), t.evidence(id, sweep));
        t.settle(sweep);
        for (std::size_t i = 0; i < s.roster.size(); ++i) {
          const sim::NodeId id = s.roster[i].first;
          if (t.phase(id, sweep) != before[i].first) return false;
          if (t.evidence(id, sweep) != before[i].second) return false;
        }

        // Idempotent: with no observes in between, a second sweep (at any
        // later time) has nothing left to exonerate.
        return t.settle(sweep).empty() &&
               t.settle(sweep + s.config.half_life_ns).empty();
      });
}

TEST(LifecycleProperties, ReplayDeterministicAcrossSnapshotSplit) {
  prop::forall<TimedAlertStream>(
      "replay_deterministic", prop::timed_alert_stream(),
      [](const TimedAlertStream& s, util::Rng& rng) {
        // Reference: the whole history folded into one tracker.
        LifecycleTracker whole = build_tracker(s);
        for (const auto& a : s.alerts)
          whole.observe(a.reporter, a.target, a.at);

        // Replayed: split at a random point, export the image, import it
        // into a fresh tracker (roster re-registered, as a WAL restore
        // does), and fold the remainder.
        const std::size_t split =
            static_cast<std::size_t>(rng.uniform_u64(s.alerts.size() + 1));
        LifecycleTracker first = build_tracker(s);
        for (std::size_t i = 0; i < split; ++i)
          first.observe(s.alerts[i].reporter, s.alerts[i].target,
                        s.alerts[i].at);
        LifecycleTracker second = build_tracker(s);
        second.import_state(first.export_state());
        for (std::size_t i = split; i < s.alerts.size(); ++i)
          second.observe(s.alerts[i].reporter, s.alerts[i].target,
                         s.alerts[i].at);

        if (whole.export_state() != second.export_state()) return false;
        const sim::SimTime at = end_time(s);
        for (const auto& [id, pos] : s.roster) {
          if (whole.phase(id, at) != second.phase(id, at)) return false;
          if (whole.evidence(id, at) != second.evidence(id, at)) return false;
        }
        return true;
      });
}

TEST(LifecycleProperties, RevokedIsAbsorbingAndQuarantinePrecedesIt) {
  prop::forall<TimedAlertStream>(
      "revoked_absorbing", prop::timed_alert_stream(),
      [](const TimedAlertStream& s) {
        LifecycleTracker t = build_tracker(s);
        std::vector<sim::NodeId> revoked;
        for (const auto& a : s.alerts) {
          const auto out = t.observe(a.reporter, a.target, a.at);
          // Permanent revocation only ever happens from quarantine, and a
          // beacon revoked earlier must still be revoked now.
          if (out.revoked && out.guard_refused) return false;
          for (const sim::NodeId id : revoked)
            if (!t.is_revoked(id)) return false;
          if (out.revoked) revoked.push_back(a.target);
        }
        return true;
      });
}

}  // namespace
