#include "crypto/tesla.hpp"

#include <gtest/gtest.h>

namespace sld::crypto {
namespace {

Key128 seed_key(std::uint8_t fill = 0x42) {
  Key128 k{};
  k.fill(fill);
  return k;
}

TeslaConfig config() {
  TeslaConfig c;
  c.interval = 100 * sim::kMillisecond;
  c.disclosure_lag = 2;
  c.max_clock_skew = 10 * sim::kMillisecond;
  c.chain_length = 50;
  return c;
}

TEST(TeslaKeyChain, ChainLinksViaOneWayFunction) {
  TeslaKeyChain chain(seed_key(), 10);
  EXPECT_EQ(chain.length(), 10u);
  for (std::size_t i = 10; i > 1; --i)
    EXPECT_EQ(tesla_one_way(chain.key(i)), chain.key(i - 1));
  EXPECT_EQ(tesla_one_way(chain.key(1)), chain.commitment());
}

TEST(TeslaKeyChain, OneWayFunctionChangesOutput) {
  const Key128 k = seed_key();
  EXPECT_NE(tesla_one_way(k), k);
  Key128 k2 = k;
  k2[0] ^= 1;
  EXPECT_NE(tesla_one_way(k), tesla_one_way(k2));
}

TEST(TeslaKeyChain, VerifyDisclosedWalksBackToCommitment) {
  TeslaKeyChain chain(seed_key(), 20);
  EXPECT_TRUE(TeslaKeyChain::verify_disclosed(chain.key(5), 5,
                                              chain.commitment(), 0));
  EXPECT_TRUE(
      TeslaKeyChain::verify_disclosed(chain.key(9), 9, chain.key(5), 5));
  // Wrong interval or wrong key must fail.
  EXPECT_FALSE(TeslaKeyChain::verify_disclosed(chain.key(5), 6,
                                               chain.commitment(), 0));
  Key128 forged = chain.key(5);
  forged[3] ^= 0x10;
  EXPECT_FALSE(
      TeslaKeyChain::verify_disclosed(forged, 5, chain.commitment(), 0));
  // Non-advancing disclosure is rejected.
  EXPECT_FALSE(
      TeslaKeyChain::verify_disclosed(chain.key(5), 5, chain.key(5), 5));
}

TEST(TeslaKeyChain, Validation) {
  EXPECT_THROW(TeslaKeyChain(seed_key(), 0), std::invalid_argument);
  TeslaKeyChain chain(seed_key(), 5);
  EXPECT_THROW(chain.key(0), std::out_of_range);
  EXPECT_THROW(chain.key(6), std::out_of_range);
}

TEST(TeslaBroadcaster, IntervalIndexing) {
  TeslaBroadcaster tx(config(), seed_key());
  EXPECT_EQ(tx.interval_at(0), 1u);
  EXPECT_EQ(tx.interval_at(99 * sim::kMillisecond), 1u);
  EXPECT_EQ(tx.interval_at(100 * sim::kMillisecond), 2u);
  EXPECT_EQ(tx.interval_at(250 * sim::kMillisecond), 3u);
}

TEST(TeslaBroadcaster, DisclosureLagsConfiguredIntervals) {
  TeslaBroadcaster tx(config(), seed_key());
  EXPECT_FALSE(tx.disclosure_at(0).has_value());
  EXPECT_FALSE(tx.disclosure_at(150 * sim::kMillisecond).has_value());
  const auto d = tx.disclosure_at(250 * sim::kMillisecond);  // interval 3
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->interval, 1u);
}

TEST(Tesla, EndToEndAuthenticatedBroadcast) {
  const auto cfg = config();
  TeslaBroadcaster tx(cfg, seed_key());
  TeslaReceiver rx(cfg, tx.commitment());

  const util::Bytes payload{1, 2, 3, 4};
  const sim::SimTime t_send = 50 * sim::kMillisecond;  // interval 1
  const auto packet = tx.authenticate(payload, t_send);
  EXPECT_TRUE(rx.on_packet(packet, t_send + 5 * sim::kMillisecond));
  EXPECT_TRUE(rx.take_authenticated().empty());  // buffered, not yet verified

  // Key for interval 1 is disclosed during interval 3.
  const auto disclosure = tx.disclosure_at(250 * sim::kMillisecond);
  ASSERT_TRUE(disclosure.has_value());
  EXPECT_TRUE(rx.on_disclosure(*disclosure));
  const auto released = rx.take_authenticated();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], payload);
  EXPECT_EQ(rx.stats().authenticated, 1u);
}

TEST(Tesla, LatePacketRejectedBySecurityCondition) {
  const auto cfg = config();
  TeslaBroadcaster tx(cfg, seed_key());
  TeslaReceiver rx(cfg, tx.commitment());

  const auto packet = tx.authenticate({9}, 50 * sim::kMillisecond);
  // Arrives after its key could have been disclosed (interval 1 key is
  // public from interval 3 = t >= 200 ms): must be rejected.
  EXPECT_FALSE(rx.on_packet(packet, 300 * sim::kMillisecond));
  EXPECT_EQ(rx.stats().rejected_unsafe, 1u);
}

TEST(Tesla, ForgedPacketFailsMacAfterDisclosure) {
  const auto cfg = config();
  TeslaBroadcaster tx(cfg, seed_key());
  TeslaReceiver rx(cfg, tx.commitment());

  auto packet = tx.authenticate({7, 7}, 50 * sim::kMillisecond);
  packet.payload[0] ^= 1;  // attacker flips a bit in flight
  EXPECT_TRUE(rx.on_packet(packet, 60 * sim::kMillisecond));
  const auto d = tx.disclosure_at(250 * sim::kMillisecond);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(rx.on_disclosure(*d));
  EXPECT_TRUE(rx.take_authenticated().empty());
  EXPECT_EQ(rx.stats().rejected_bad_mac, 1u);
}

TEST(Tesla, ForgedDisclosureRejected) {
  const auto cfg = config();
  TeslaBroadcaster tx(cfg, seed_key());
  TeslaReceiver rx(cfg, tx.commitment());

  TeslaDisclosure forged;
  forged.interval = 1;
  forged.key = seed_key(0x99);  // not on the chain
  EXPECT_FALSE(rx.on_disclosure(forged));
  EXPECT_EQ(rx.stats().rejected_bad_key, 1u);
}

TEST(Tesla, SkippedDisclosureStillReleasesOlderPackets) {
  // Receiver misses the interval-1 disclosure but gets interval 2's: the
  // chain walk must still derive K_1 and release interval-1 packets.
  const auto cfg = config();
  TeslaBroadcaster tx(cfg, seed_key());
  TeslaReceiver rx(cfg, tx.commitment());

  const auto p1 = tx.authenticate({1}, 50 * sim::kMillisecond);    // int 1
  const auto p2 = tx.authenticate({2}, 150 * sim::kMillisecond);   // int 2
  EXPECT_TRUE(rx.on_packet(p1, 55 * sim::kMillisecond));
  EXPECT_TRUE(rx.on_packet(p2, 155 * sim::kMillisecond));

  const auto d2 = tx.disclosure_at(350 * sim::kMillisecond);  // disclose K_2
  ASSERT_TRUE(d2.has_value());
  ASSERT_EQ(d2->interval, 2u);
  EXPECT_TRUE(rx.on_disclosure(*d2));
  const auto released = rx.take_authenticated();
  EXPECT_EQ(released.size(), 2u);
}

TEST(Tesla, StaleDisclosureIsHarmless) {
  const auto cfg = config();
  TeslaBroadcaster tx(cfg, seed_key());
  TeslaReceiver rx(cfg, tx.commitment());
  const auto d = tx.disclosure_at(250 * sim::kMillisecond);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(rx.on_disclosure(*d));
  EXPECT_TRUE(rx.on_disclosure(*d));  // replayed disclosure: no effect
}

TEST(Tesla, ConfigValidation) {
  TeslaConfig bad = config();
  bad.interval = 0;
  EXPECT_THROW(TeslaBroadcaster(bad, seed_key()), std::invalid_argument);
  bad = config();
  bad.disclosure_lag = 0;
  EXPECT_THROW(TeslaBroadcaster(bad, seed_key()), std::invalid_argument);
}

TEST(Tesla, ChainExhaustionDetected) {
  TeslaConfig cfg = config();
  cfg.chain_length = 3;
  TeslaBroadcaster tx(cfg, seed_key());
  EXPECT_NO_THROW(tx.interval_at(250 * sim::kMillisecond));
  EXPECT_THROW(tx.interval_at(350 * sim::kMillisecond), std::runtime_error);
}

}  // namespace
}  // namespace sld::crypto
