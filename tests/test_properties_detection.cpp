// Metamorphic and differential properties of the detection pipeline:
// honest signals never flag, verdicts are rigid-motion invariant, deviation
// grows monotonically with the attacker's claim offset, RTT cancels MAC
// delay exactly, and the strategy partition agrees with the closed-form
// attack effectiveness.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/formulas.hpp"
#include "attack/strategy.hpp"
#include "detection/beacon_check.hpp"
#include "prop/generators.hpp"
#include "prop/prop.hpp"
#include "ranging/rssi.hpp"
#include "ranging/rtt.hpp"
#include "util/geometry.hpp"

namespace {

using namespace sld;

constexpr double kPi = 3.14159265358979323846;

struct Placement {
  util::Vec2 detector;
  util::Vec2 beacon;
};

prop::Gen<Placement> placement_gen(double min_dist, double max_dist) {
  prop::Gen<Placement> g;
  g.generate = [min_dist, max_dist](util::Rng& rng) {
    Placement p;
    p.detector = {rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    const double angle = rng.uniform(-kPi, kPi);
    const double dist = rng.uniform(min_dist, max_dist);
    p.beacon = p.detector +
               util::Vec2{dist * std::cos(angle), dist * std::sin(angle)};
    return p;
  };
  g.show = [](const Placement& p) {
    std::ostringstream os;
    os << "{det=(" << p.detector.x << "," << p.detector.y << ") beacon=("
       << p.beacon.x << "," << p.beacon.y << ")}";
    return os.str();
  };
  return g;
}

TEST(DetectionProperty, HonestRssiMeasurementNeverFlags) {
  // An honest beacon at its claimed position measured by an honest
  // bounded-error RSSI model can never violate the consistency bound —
  // the paper's zero-false-positive premise.
  const ranging::RssiRangingModel rssi{ranging::RssiConfig{}};
  const detection::ConsistencyCheck check(rssi.config().max_error_ft);
  EXPECT_TRUE(prop::forall(
      "honest measurement stays within e_max", placement_gen(1.0, 600.0),
      [&](const Placement& p, util::Rng& rng) {
        const double truth = util::distance(p.detector, p.beacon);
        const double measured = rssi.measure(truth, rng);
        return !check.is_malicious(p.detector, p.beacon, measured);
      }));
}

TEST(DetectionProperty, ConsistencyVerdictIsRigidMotionInvariant) {
  // Distances are preserved by translation + rotation, so the verdict and
  // the deviation must be too (up to float noise, well below e_max).
  const detection::ConsistencyCheck check(4.0);
  struct Scene {
    Placement placement;
    double measured;
    util::Vec2 translation;
    double rotation;
  };
  prop::Gen<Scene> gen;
  const auto base = placement_gen(1.0, 600.0);
  gen.generate = [base](util::Rng& rng) {
    Scene s;
    s.placement = base.generate(rng);
    const double truth = util::distance(s.placement.detector, s.placement.beacon);
    // Mix honest and malicious measurements, away from the 4 ft knife edge.
    double offset;
    do {
      offset = rng.uniform(-30.0, 30.0);
    } while (std::abs(std::abs(offset) - 4.0) < 0.01);
    s.measured = std::max(0.0, truth + offset);
    s.translation = {rng.uniform(-3000.0, 3000.0), rng.uniform(-3000.0, 3000.0)};
    s.rotation = rng.uniform(-kPi, kPi);
    return s;
  };
  auto rotate = [](const util::Vec2& v, double a) {
    return util::Vec2{v.x * std::cos(a) - v.y * std::sin(a),
                      v.x * std::sin(a) + v.y * std::cos(a)};
  };
  EXPECT_TRUE(prop::forall(
      "consistency verdict invariant under rigid motion", gen,
      [&](const Scene& s) {
        const auto before = check.check(s.placement.detector,
                                        s.placement.beacon, s.measured);
        const util::Vec2 det2 =
            rotate(s.placement.detector, s.rotation) + s.translation;
        const util::Vec2 beacon2 =
            rotate(s.placement.beacon, s.rotation) + s.translation;
        const auto after = check.check(det2, beacon2, s.measured);
        return before.malicious == after.malicious &&
               std::abs(before.deviation_ft - after.deviation_ft) < 1e-6;
      }));
}

TEST(DetectionProperty, DeviationIsMonotoneInClaimOffset) {
  // Pushing the claimed position radially farther from the detector while
  // the measurement stays put can only grow the deviation; once flagged,
  // a larger lie stays flagged.
  const detection::ConsistencyCheck check(4.0);
  struct Case {
    Placement placement;
    double offset_a;
    double offset_b;  // >= offset_a
  };
  prop::Gen<Case> gen;
  const auto base = placement_gen(10.0, 400.0);
  gen.generate = [base](util::Rng& rng) {
    Case c;
    c.placement = base.generate(rng);
    c.offset_a = rng.uniform(0.0, 100.0);
    c.offset_b = c.offset_a + rng.uniform(0.0, 100.0);
    return c;
  };
  EXPECT_TRUE(prop::forall(
      "deviation monotone in radial claim offset", gen, [&](const Case& c) {
        const double truth =
            util::distance(c.placement.detector, c.placement.beacon);
        const util::Vec2 dir =
            (c.placement.beacon - c.placement.detector) / truth;
        const auto at = [&](double offset) {
          return check.check(c.placement.detector,
                             c.placement.beacon + dir * offset, truth);
        };
        const auto lo = at(c.offset_a);
        const auto hi = at(c.offset_b);
        if (hi.deviation_ft + 1e-9 < lo.deviation_ft) return false;
        return !(lo.malicious && !hi.malicious);
      }));
}

TEST(DetectionProperty, RttCancelsMacDelayExactly) {
  // RTT = (t4 - t1) - (t3 - t2): the receiver-side MAC/processing gap must
  // cancel bit-for-bit, so two exchanges differing only in MAC delay give
  // the same RTT when fed the same randomness.
  const ranging::MoteTimingModel model;
  struct Case {
    double distance;
    double mac_a;
    double mac_b;
  };
  prop::Gen<Case> gen;
  gen.generate = [](util::Rng& rng) {
    return Case{rng.uniform(0.0, 150.0), rng.uniform(0.0, 1e6),
                rng.uniform(0.0, 1e6)};
  };
  EXPECT_TRUE(prop::forall(
      "RTT independent of MAC delay", gen,
      [&](const Case& c, util::Rng& rng) {
        util::Rng rng_a = rng.fork(1);
        util::Rng rng_b = rng.fork(1);  // identical stream
        const auto xa =
            ranging::sample_rtt_exchange(model, c.distance, c.mac_a, rng_a);
        const auto xb =
            ranging::sample_rtt_exchange(model, c.distance, c.mac_b, rng_b);
        return std::abs(xa.rtt_cycles() - xb.rtt_cycles()) < 1e-6;
      }));
}

TEST(DetectionProperty, StrategyPartitionMatchesClosedFormEffectiveness) {
  // The sticky per-requester partition is a Bernoulli process with success
  // probability P = (1-p_n)(1-p_w)(1-p_l); over many requester IDs the
  // empirical effective fraction must concentrate near P, and the
  // closed-form in analysis/ must agree with the config's own arithmetic.
  EXPECT_TRUE(prop::forall(
      "empirical effective fraction ~ P", prop::strategy_config(),
      [&](const attack::MaliciousStrategyConfig& s, util::Rng& rng) {
        const double P = s.effectiveness();
        if (std::abs(analysis::attack_effectiveness(
                s.p_normal, s.p_fake_wormhole, s.p_fake_local_replay) -
                     P) > 1e-12)
          return false;
        const attack::MaliciousBeaconStrategy strategy(s, rng());
        const int kRequesters = 4000;
        int effective = 0;
        for (int i = 0; i < kRequesters; ++i) {
          const auto id = static_cast<sim::NodeId>(0x00100000u + i);
          if (strategy.behavior_for(id) == attack::MaliciousBehavior::kEffective)
            ++effective;
        }
        const double empirical = static_cast<double>(effective) / kRequesters;
        // 4000 draws: sigma <= 0.0079; 5 sigma ~ 0.04.
        return std::abs(empirical - P) < 0.04;
      }));
}

TEST(DetectionProperty, DetectionProbabilityMonotoneInDetectingIds) {
  // P_r = 1 - (1 - P)^m grows with m and with P.
  EXPECT_TRUE(prop::forall(
      "P_r monotone in m and P", prop::double_range(0.0, 1.0),
      [](const double& P, util::Rng& rng) {
        const auto m = static_cast<std::size_t>(1 + rng.uniform_u64(16));
        const double pr_m = analysis::detection_probability(P, m);
        const double pr_m1 = analysis::detection_probability(P, m + 1);
        if (pr_m1 + 1e-12 < pr_m) return false;
        const double P2 = std::min(1.0, P + 0.1);
        return analysis::detection_probability(P2, m) + 1e-12 >= pr_m;
      }));
}

}  // namespace
