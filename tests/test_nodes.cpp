// Protocol-level tests of the node classes: message handling, MAC
// enforcement, nonce deduplication, and one-alert-per-target behaviour,
// driven through hand-built micro-networks rather than full trials.
#include "core/nodes.hpp"

#include <gtest/gtest.h>

#include "crypto/mac.hpp"
#include "sim/network.hpp"

namespace sld::core {
namespace {

/// Captures everything addressed to it.
class ProbeNode final : public sim::Node {
 public:
  using Node::Node;
  void on_message(const sim::Delivery& d) override { inbox.push_back(d); }
  std::vector<sim::Delivery> inbox;
};

class NodeProtocolTest : public ::testing::Test {
 protected:
  NodeProtocolTest() : ctx_(config_) {
    ctx_.scheduler = &net_.scheduler();
  }

  static SystemConfig make_config() {
    SystemConfig c;
    c.rtt_calibration_samples = 500;
    c.seed = 5;
    return c;
  }

  sim::Message authed(sim::NodeId src, sim::NodeId dst, sim::MsgType type,
                      util::Bytes payload) {
    sim::Message m;
    m.src = src;
    m.dst = dst;
    m.type = type;
    m.payload = std::move(payload);
    m.mac = crypto::compute_mac(ctx_.keys.pairwise_key(src, dst), src, dst,
                                m.payload);
    return m;
  }

  SystemConfig config_ = make_config();
  SystemContext ctx_;
  sim::Network net_{sim::ChannelConfig{}, 77};
};

TEST_F(NodeProtocolTest, BenignBeaconRepliesTruthfully) {
  auto& beacon = net_.emplace_node<BeaconNode>(
      1, util::Vec2{100, 100}, 150.0, ctx_, std::vector<sim::NodeId>{});
  auto& requester = net_.emplace_node<ProbeNode>(
      sim::kNonBeaconIdBase, util::Vec2{150, 100}, 150.0);

  sim::BeaconRequestPayload req;
  req.nonce = 777;
  net_.channel().unicast(requester, authed(requester.id(), beacon.id(),
                                           sim::MsgType::kBeaconRequest,
                                           req.serialize()));
  net_.run();

  ASSERT_EQ(requester.inbox.size(), 1u);
  const auto& reply_msg = requester.inbox[0].msg;
  EXPECT_EQ(reply_msg.type, sim::MsgType::kBeaconReply);
  EXPECT_EQ(reply_msg.src, beacon.id());
  // Authenticated under the pairwise key.
  EXPECT_TRUE(crypto::verify_mac(
      ctx_.keys.pairwise_key(reply_msg.src, reply_msg.dst), reply_msg.src,
      reply_msg.dst, reply_msg.payload, reply_msg.mac));
  const auto reply = sim::BeaconReplyPayload::parse(reply_msg.payload);
  EXPECT_EQ(reply.nonce, 777u);
  EXPECT_EQ(reply.claimed_position, beacon.position());
  EXPECT_EQ(reply.range_manipulation_ft, 0.0);
  EXPECT_EQ(reply.processing_bias_cycles, 0.0);
  EXPECT_FALSE(reply.fake_wormhole_indication);
}

TEST_F(NodeProtocolTest, BeaconDropsForgedRequests) {
  auto& beacon = net_.emplace_node<BeaconNode>(
      1, util::Vec2{100, 100}, 150.0, ctx_, std::vector<sim::NodeId>{});
  auto& attacker = net_.emplace_node<ProbeNode>(
      sim::kNonBeaconIdBase + 7, util::Vec2{150, 100}, 150.0);

  sim::BeaconRequestPayload req;
  req.nonce = 1;
  sim::Message forged;
  forged.src = attacker.id();
  forged.dst = beacon.id();
  forged.type = sim::MsgType::kBeaconRequest;
  forged.payload = req.serialize();
  forged.mac = 0xdeadbeef;  // wrong tag
  net_.channel().unicast(attacker, forged);
  net_.run();

  EXPECT_TRUE(attacker.inbox.empty());
  EXPECT_EQ(ctx_.metrics.mac_failures, 1u);
}

TEST_F(NodeProtocolTest, MaliciousBeaconAppliesItsStrategy) {
  attack::MaliciousBeaconStrategy strategy(
      attack::MaliciousStrategyConfig::with_effectiveness(1.0), 99);
  auto& mal = net_.emplace_node<MaliciousBeaconNode>(
      2, util::Vec2{100, 100}, 150.0, ctx_, std::move(strategy));
  auto& requester = net_.emplace_node<ProbeNode>(
      sim::kNonBeaconIdBase + 1, util::Vec2{150, 100}, 150.0);

  sim::BeaconRequestPayload req;
  req.nonce = 5;
  net_.channel().unicast(requester, authed(requester.id(), mal.id(),
                                           sim::MsgType::kBeaconRequest,
                                           req.serialize()));
  net_.run();

  ASSERT_EQ(requester.inbox.size(), 1u);
  const auto reply =
      sim::BeaconReplyPayload::parse(requester.inbox[0].msg.payload);
  EXPECT_EQ(reply.nonce, 5u);
  // P = 1: the effective signal lies about location AND manipulates range.
  EXPECT_GT(util::distance(reply.claimed_position, mal.position()), 50.0);
  EXPECT_NE(reply.range_manipulation_ft, 0.0);
}

TEST_F(NodeProtocolTest, DetectingBeaconReportsEachTargetOnce) {
  // Benign beacon with 4 detecting IDs probes a fully malicious target:
  // all four probes detect, but exactly one alert reaches the station.
  std::vector<sim::NodeId> ids{sim::kNonBeaconIdBase + 100,
                               sim::kNonBeaconIdBase + 101,
                               sim::kNonBeaconIdBase + 102,
                               sim::kNonBeaconIdBase + 103};
  auto& detector = net_.emplace_node<BeaconNode>(
      1, util::Vec2{100, 100}, 150.0, ctx_, ids);
  for (const auto alias : ids) net_.add_alias(alias, detector);

  attack::MaliciousBeaconStrategy strategy(
      attack::MaliciousStrategyConfig::with_effectiveness(1.0), 42);
  auto& mal = net_.emplace_node<MaliciousBeaconNode>(
      2, util::Vec2{150, 100}, 150.0, ctx_, std::move(strategy));
  ctx_.truth[mal.id()] = BeaconTruth{mal.position(), true};

  detector.set_probe_targets({mal.id()});
  detector.start();
  net_.run();

  EXPECT_EQ(ctx_.metrics.probes_sent, 4u);
  EXPECT_EQ(ctx_.metrics.probe_replies, 4u);
  EXPECT_EQ(ctx_.metrics.consistency_flags, 4u);
  EXPECT_EQ(ctx_.metrics.alerts_submitted, 1u);
  EXPECT_EQ(ctx_.bs().alert_counter(mal.id()), 1u);
  EXPECT_EQ(detector.alerts_reported(), 1u);
}

TEST_F(NodeProtocolTest, DetectingBeaconStaysQuietForHonestTargets) {
  std::vector<sim::NodeId> ids{sim::kNonBeaconIdBase + 200,
                               sim::kNonBeaconIdBase + 201};
  auto& detector = net_.emplace_node<BeaconNode>(
      1, util::Vec2{100, 100}, 150.0, ctx_, ids);
  for (const auto alias : ids) net_.add_alias(alias, detector);
  auto& honest = net_.emplace_node<BeaconNode>(
      2, util::Vec2{150, 100}, 150.0, ctx_, std::vector<sim::NodeId>{});
  ctx_.truth[honest.id()] = BeaconTruth{honest.position(), false};

  detector.set_probe_targets({honest.id()});
  detector.start();
  net_.run();

  EXPECT_EQ(ctx_.metrics.probe_replies, 2u);
  EXPECT_EQ(ctx_.metrics.consistency_flags, 0u);
  EXPECT_EQ(ctx_.metrics.alerts_submitted, 0u);
}

TEST_F(NodeProtocolTest, SensorCollectsFiltersAndLocalizes) {
  auto& sensor = net_.emplace_node<SensorNode>(
      sim::kNonBeaconIdBase, util::Vec2{500, 500}, 150.0, ctx_);
  std::vector<sim::NodeId> beacon_ids;
  const util::Vec2 spots[] = {{450, 450}, {560, 470}, {480, 590}, {555, 555}};
  sim::NodeId next = 1;
  for (const auto& p : spots) {
    auto& b = net_.emplace_node<BeaconNode>(next, p, 150.0, ctx_,
                                            std::vector<sim::NodeId>{});
    ctx_.truth[b.id()] = BeaconTruth{p, false};
    beacon_ids.push_back(next++);
  }
  sensor.set_query_targets(beacon_ids);
  sensor.start();
  net_.run();
  sensor.finalize();

  EXPECT_EQ(ctx_.metrics.sensor_requests, 4u);
  EXPECT_EQ(ctx_.metrics.sensor_replies, 4u);
  ASSERT_TRUE(sensor.result().has_value());
  EXPECT_LT(util::distance(sensor.result()->position, sensor.position()),
            10.0);
  EXPECT_EQ(ctx_.metrics.sensors_localized, 1u);
}

TEST_F(NodeProtocolTest, SensorIgnoresDuplicateReplies) {
  // A wormhole between the sensor's area and the beacon's area makes the
  // reply arrive twice; the nonce table must accept only the first copy.
  auto& sensor = net_.emplace_node<SensorNode>(
      sim::kNonBeaconIdBase, util::Vec2{100, 100}, 150.0, ctx_);
  auto& beacon = net_.emplace_node<BeaconNode>(
      1, util::Vec2{150, 100}, 150.0, ctx_, std::vector<sim::NodeId>{});
  ctx_.truth[beacon.id()] = BeaconTruth{beacon.position(), false};
  sim::WormholeLink link;
  link.mouth_a = {120, 100};  // hears both endpoints
  link.mouth_b = {130, 100};
  link.exit_range_ft = 150.0;
  net_.channel().add_wormhole(link);

  sensor.set_query_targets({beacon.id()});
  sensor.start();
  net_.run();

  // The request and the reply each traverse direct + two tunnel paths,
  // but only one reply is counted.
  EXPECT_EQ(ctx_.metrics.sensor_replies, 1u);
}

}  // namespace
}  // namespace sld::core
