#include "crypto/siphash.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace sld::crypto {
namespace {

Key128 reference_key() {
  Key128 k{};
  for (std::uint8_t i = 0; i < 16; ++i) k[i] = i;
  return k;
}

// Official SipHash-2-4 test vectors (Aumasson & Bernstein reference
// implementation): key = 00..0f, message i = bytes 00..(i-1).
constexpr std::uint64_t kReferenceVectors[] = {
    0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
    0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
    0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
    0x9e0082df0ba9e4b0ULL, 0x7a5dbbc594ddb9f3ULL, 0xf4b32f46226bada7ULL,
    0x751e8fbc860ee5fbULL, 0x14ea5627c0843d90ULL, 0xf723ca908e7af2eeULL,
    0xa129ca6149be45e5ULL,
};

TEST(SipHash, OfficialVectors) {
  const Key128 key = reference_key();
  std::vector<std::uint8_t> msg;
  for (std::size_t len = 0; len < std::size(kReferenceVectors); ++len) {
    EXPECT_EQ(siphash24(key, msg), kReferenceVectors[len])
        << "message length " << len;
    msg.push_back(static_cast<std::uint8_t>(len));
  }
}

TEST(SipHash, Deterministic) {
  const Key128 key = reference_key();
  const std::vector<std::uint8_t> msg{1, 2, 3};
  EXPECT_EQ(siphash24(key, msg), siphash24(key, msg));
}

TEST(SipHash, KeySensitivity) {
  Key128 a = reference_key();
  Key128 b = reference_key();
  b[0] ^= 1;
  const std::vector<std::uint8_t> msg{1, 2, 3};
  EXPECT_NE(siphash24(a, msg), siphash24(b, msg));
}

TEST(SipHash, MessageSensitivity) {
  const Key128 key = reference_key();
  const std::vector<std::uint8_t> a{1, 2, 3};
  const std::vector<std::uint8_t> b{1, 2, 4};
  EXPECT_NE(siphash24(key, a), siphash24(key, b));
}

TEST(SipHash, LengthMattersEvenWithZeroPadding) {
  const Key128 key = reference_key();
  const std::vector<std::uint8_t> a{0, 0, 0};
  const std::vector<std::uint8_t> b{0, 0, 0, 0};
  EXPECT_NE(siphash24(key, a), siphash24(key, b));
}

TEST(SipHashU64, MatchesByteEncoding) {
  const Key128 key = reference_key();
  const std::uint64_t value = 0x0123456789abcdefULL;
  std::vector<std::uint8_t> le(8);
  for (int i = 0; i < 8; ++i)
    le[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  EXPECT_EQ(siphash24_u64(key, value), siphash24(key, le));
}

TEST(DeriveKey, DistinctLabelsGiveDistinctKeys) {
  const Key128 master = reference_key();
  EXPECT_NE(derive_key(master, 1), derive_key(master, 2));
  EXPECT_EQ(derive_key(master, 1), derive_key(master, 1));
}

TEST(DeriveKey, DistinctMastersGiveDistinctKeys) {
  Key128 a = reference_key();
  Key128 b = reference_key();
  b[15] ^= 0x80;
  EXPECT_NE(derive_key(a, 7), derive_key(b, 7));
}

}  // namespace
}  // namespace sld::crypto
