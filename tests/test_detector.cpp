#include "detection/detector.hpp"

#include <gtest/gtest.h>

#include "attack/strategy.hpp"
#include "ranging/rssi.hpp"
#include "ranging/rtt.hpp"
#include "util/rng.hpp"

namespace sld::detection {
namespace {

constexpr double kXmax = 7124.0;

DetectorConfig config() {
  DetectorConfig c;
  c.max_ranging_error_ft = 4.0;
  c.replay.rtt_x_max_cycles = kXmax;
  return c;
}

class DetectorTest : public ::testing::Test {
 protected:
  ranging::ProbabilisticWormholeDetector wh{0.9};
  Detector detector{config(), &wh};
  ranging::RssiRangingModel rssi{ranging::RssiConfig{}};
  ranging::MoteTimingModel timing;
  util::Rng rng{1};

  /// Builds the observation a detecting node at `det_pos` would assemble
  /// after probing a beacon at `true_pos` that replied with `reply`.
  SignalObservation observe(const util::Vec2& det_pos,
                            const util::Vec2& true_pos,
                            const sim::BeaconReplyPayload& reply) {
    SignalObservation o;
    o.receiver_position = det_pos;
    o.claimed_position = reply.claimed_position;
    const double d = util::distance(det_pos, true_pos);
    o.measured_distance_ft =
        rssi.measure_manipulated(d, reply.range_manipulation_ft, rng);
    o.observed_rtt_cycles =
        timing.sample_rtt_cycles(d, rng) + reply.processing_bias_cycles;
    o.target_range_ft = 150.0;
    o.sender_faked_wormhole_indication = reply.fake_wormhole_indication;
    return o;
  }
};

TEST_F(DetectorTest, HonestBeaconIsConsistent) {
  sim::BeaconReplyPayload honest;
  honest.claimed_position = {100, 0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(detector.evaluate(observe({0, 0}, {100, 0}, honest), rng),
              ProbeOutcome::kConsistent);
  }
}

TEST_F(DetectorTest, EffectiveMaliciousSignalRaisesAlert) {
  attack::MaliciousStrategyConfig cfg;
  cfg.p_normal = 0.0;  // always effective
  attack::MaliciousBeaconStrategy strategy(cfg, 7);
  const util::Vec2 true_pos{500, 500};
  for (sim::NodeId requester = 1; requester <= 500; ++requester) {
    const auto reply = strategy.craft_reply(requester, 1, true_pos);
    // The effective signal's ranging manipulation exceeds lie + e_max, so
    // the consistency check flags it for every geometry: alert, always.
    EXPECT_EQ(detector.evaluate(observe({450, 480}, true_pos, reply), rng),
              ProbeOutcome::kAlert);
  }
}

TEST_F(DetectorTest, NormalBehaviorNeverAlerts) {
  attack::MaliciousStrategyConfig cfg;
  cfg.p_normal = 1.0;
  attack::MaliciousBeaconStrategy strategy(cfg, 7);
  const util::Vec2 true_pos{500, 500};
  for (sim::NodeId requester = 1; requester <= 200; ++requester) {
    const auto reply = strategy.craft_reply(requester, 1, true_pos);
    EXPECT_EQ(detector.evaluate(observe({450, 480}, true_pos, reply), rng),
              ProbeOutcome::kConsistent);
  }
}

TEST_F(DetectorTest, FakeWormholeBehaviorIsIgnoredNotAlerted) {
  attack::MaliciousStrategyConfig cfg;
  cfg.p_normal = 0.0;
  cfg.p_fake_wormhole = 1.0;
  attack::MaliciousBeaconStrategy strategy(cfg, 7);
  const util::Vec2 true_pos{500, 500};
  for (sim::NodeId requester = 1; requester <= 200; ++requester) {
    const auto reply = strategy.craft_reply(requester, 1, true_pos);
    EXPECT_EQ(detector.evaluate(observe({450, 480}, true_pos, reply), rng),
              ProbeOutcome::kIgnoredWormholeReplay);
  }
}

TEST_F(DetectorTest, FakeLocalReplayBehaviorIsIgnoredNotAlerted) {
  attack::MaliciousStrategyConfig cfg;
  cfg.p_normal = 0.0;
  cfg.p_fake_local_replay = 1.0;
  attack::MaliciousBeaconStrategy strategy(cfg, 7);
  const util::Vec2 true_pos{500, 500};
  int ignored = 0;
  for (sim::NodeId requester = 1; requester <= 200; ++requester) {
    const auto reply = strategy.craft_reply(requester, 1, true_pos);
    const auto outcome =
        detector.evaluate(observe({450, 480}, true_pos, reply), rng);
    EXPECT_NE(outcome, ProbeOutcome::kAlert);
    if (outcome == ProbeOutcome::kIgnoredLocalReplay) ++ignored;
  }
  EXPECT_EQ(ignored, 200);
}

TEST_F(DetectorTest, DetectionRateMatchesPrFormula) {
  // Property check of P_r = 1 - (1 - P)^m over the full pipeline: probe a
  // malicious beacon with m distinct detecting IDs and count detections.
  const double P = 0.3;
  const std::size_t m = 4;
  attack::MaliciousStrategyConfig cfg =
      attack::MaliciousStrategyConfig::with_effectiveness(P);
  const util::Vec2 true_pos{500, 500};

  int detected_nodes = 0;
  constexpr int kDetectingNodes = 4000;
  sim::NodeId next_id = 1;
  for (int node = 0; node < kDetectingNodes; ++node) {
    attack::MaliciousBeaconStrategy strategy(cfg, 1000 + node);
    bool detected = false;
    for (std::size_t k = 0; k < m; ++k) {
      const sim::NodeId detecting_id = next_id++;
      const auto reply = strategy.craft_reply(detecting_id, 1, true_pos);
      if (detector.evaluate(observe({460, 470}, true_pos, reply), rng) ==
          ProbeOutcome::kAlert)
        detected = true;
    }
    if (detected) ++detected_nodes;
  }
  const double pr_expected = 1.0 - std::pow(1.0 - P, static_cast<double>(m));
  EXPECT_NEAR(static_cast<double>(detected_nodes) / kDetectingNodes,
              pr_expected, 0.03);
}

TEST_F(DetectorTest, AccessorsExposeStages) {
  EXPECT_EQ(detector.consistency().max_error_ft(), 4.0);
  EXPECT_EQ(detector.replay_filter().config().rtt_x_max_cycles, kXmax);
}

}  // namespace
}  // namespace sld::detection
