// Ingest-pipeline semantics: disabled pass-through, sharded service-model
// commits, bounded queues with priority-aware shedding, takeover/restart
// reconciliation of in-flight entries, and degraded-mode deferred
// durability — plus a property test that the accounting identities and
// the shed-only-first-sight rule hold on random submission schedules.
#include "revocation/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "prop/prop.hpp"
#include "revocation/failover.hpp"
#include "sim/time.hpp"

namespace sld::revocation {
namespace {

RevocationConfig revocation(std::uint32_t tau1 = 1000, std::uint32_t tau2 = 2) {
  RevocationConfig c;
  c.report_quota = tau1;
  c.alert_threshold = tau2;
  return c;
}

/// Admission with the rate gate and pair rule switched off — isolates the
/// queue/shed/breaker mechanics under test.
AdmissionConfig admission_no_gates(std::uint32_t suspect_after = 1000) {
  AdmissionConfig a;
  a.enabled = true;
  a.reporter_rate_per_s = 0;
  a.pair_window = 0;
  a.suspect_after = suspect_after;
  return a;
}

IngestConfig sharded(std::uint32_t shards, std::size_t capacity = 64,
                     sim::SimTime service = 2 * sim::kMillisecond) {
  IngestConfig c;
  c.shard.count = shards;
  c.shard.queue_capacity = capacity;
  c.shard.service_time_ns = service;
  return c;
}

TEST(IngestPipeline, DisabledConfigIsExactPassThrough) {
  // Same alert sequence straight into a cluster and through a default
  // (disabled) pipeline: identical dispositions, identical end state,
  // and the pipeline keeps no queues and counts nothing.
  BaseStationCluster direct(revocation(1, 2), FailoverConfig{});
  BaseStationCluster wrapped(revocation(1, 2), FailoverConfig{});
  IngestPipeline pipe(IngestConfig{}, wrapped);
  ASSERT_FALSE(pipe.enabled());

  std::uint64_t nonce = 0;
  // Revocation, quota overflow and a duplicate all in one schedule.
  const struct {
    sim::NodeId reporter, target;
  } alerts[] = {{1, 50}, {2, 50}, {3, 50}, {4, 50}, {1, 51}, {1, 52}, {2, 51}};
  for (const auto& a : alerts) {
    ++nonce;
    const auto want =
        direct.process_alert(static_cast<sim::SimTime>(nonce) *
                                 sim::kMillisecond,
                             a.reporter, a.target, nonce);
    const IngestResult got =
        pipe.submit(static_cast<sim::SimTime>(nonce) * sim::kMillisecond,
                    a.reporter, a.target, nonce);
    EXPECT_EQ(got.kind, IngestResult::Kind::kBypass);
    EXPECT_EQ(got.disposition, want);
  }
  // A replayed key is a duplicate through both paths.
  EXPECT_EQ(pipe.submit(sim::kSecond, 1, 50, 1).disposition,
            direct.process_alert(sim::kSecond, 1, 50, 1));

  EXPECT_EQ(wrapped.alert_counter(50), direct.alert_counter(50));
  EXPECT_EQ(wrapped.is_revoked(50), direct.is_revoked(50));
  EXPECT_EQ(wrapped.authority().revocation_order(),
            direct.authority().revocation_order());
  EXPECT_EQ(pipe.queue_depth(), 0u);
  EXPECT_EQ(pipe.stats().submitted, 0u);
  EXPECT_EQ(pipe.stats().committed, 0u);
}

TEST(IngestPipeline, EnabledPipelineReachesDirectOutcome) {
  // With shards > 1 (admission off) every alert is admitted; after the
  // queues drain the cluster must be in exactly the state the direct
  // path produces, and the commit hook must have seen every disposition.
  BaseStationCluster direct(revocation(1000, 2), FailoverConfig{});
  BaseStationCluster wrapped(revocation(1000, 2), FailoverConfig{});
  IngestPipeline pipe(sharded(3), wrapped);
  ASSERT_TRUE(pipe.enabled());

  std::vector<AlertDisposition> committed;
  pipe.set_commit_hook([&](sim::NodeId, sim::NodeId, AlertDisposition d,
                           sim::SimTime, sim::SimTime) {
    committed.push_back(d);
  });

  std::uint64_t nonce = 0;
  std::vector<AlertDisposition> want;
  for (sim::NodeId reporter = 1; reporter <= 4; ++reporter) {
    for (sim::NodeId target = 50; target <= 55; ++target) {
      ++nonce;
      want.push_back(direct.process_alert(0, reporter, target, nonce));
      const IngestResult r = pipe.submit(0, reporter, target, nonce);
      EXPECT_EQ(r.kind, IngestResult::Kind::kEnqueued);
    }
  }
  pipe.drain(sim::kSecond);

  EXPECT_EQ(pipe.stats().accepted, nonce);
  EXPECT_EQ(pipe.stats().committed, nonce);
  EXPECT_EQ(pipe.queue_depth(), 0u);
  for (sim::NodeId target = 50; target <= 55; ++target) {
    EXPECT_EQ(wrapped.alert_counter(target), direct.alert_counter(target));
    EXPECT_EQ(wrapped.is_revoked(target), direct.is_revoked(target));
  }
  // Shard order interleaves commits, but per-target disposition history is
  // order-independent here: compare as multisets of dispositions.
  std::vector<int> got_hist(8, 0), want_hist(8, 0);
  for (const auto d : committed) ++got_hist[static_cast<std::size_t>(d)];
  for (const auto d : want) ++want_hist[static_cast<std::size_t>(d)];
  EXPECT_EQ(got_hist, want_hist);
}

TEST(IngestPipeline, FullQueueShedsFirstSightAlerts) {
  BaseStationCluster cluster(revocation(), FailoverConfig{});
  IngestConfig cfg = sharded(1, /*capacity=*/2, /*service=*/sim::kSecond);
  cfg.admission = admission_no_gates();
  IngestPipeline pipe(cfg, cluster);

  EXPECT_EQ(pipe.submit(0, 1, 50, 1).kind, IngestResult::Kind::kEnqueued);
  EXPECT_EQ(pipe.submit(0, 2, 50, 2).kind, IngestResult::Kind::kEnqueued);
  // Queue is at capacity and target 50 is not suspected: LIFO shed.
  EXPECT_EQ(pipe.submit(0, 3, 50, 3).kind, IngestResult::Kind::kShed);
  EXPECT_EQ(pipe.stats().shed, 1u);
  EXPECT_EQ(pipe.breaker_state(0), BreakerState::kShedding);

  // The shed alert is really gone: only the two enqueued ones count.
  pipe.drain(10 * sim::kSecond);
  EXPECT_EQ(cluster.alert_counter(50), 2u);
  EXPECT_EQ(pipe.stats().committed, 2u);
}

TEST(IngestPipeline, SuspectedTargetRidesPastFullQueue) {
  BaseStationCluster cluster(revocation(1000, 5), FailoverConfig{});
  IngestConfig cfg = sharded(1, /*capacity=*/1, /*service=*/sim::kMillisecond);
  cfg.admission = admission_no_gates(/*suspect_after=*/1);
  IngestPipeline pipe(cfg, cluster);

  // First accusation commits: target 50's counter reaches suspect_after.
  EXPECT_EQ(pipe.submit(0, 1, 50, 1).kind, IngestResult::Kind::kEnqueued);
  pipe.advance(2 * sim::kMillisecond);
  ASSERT_EQ(cluster.alert_counter(50), 1u);

  // Fill the queue, then: a suspected-target alert is never shed even at
  // a full queue, while a first-sight target at the same queue is.
  const sim::SimTime t = 2 * sim::kMillisecond;
  EXPECT_EQ(pipe.submit(t, 2, 50, 2).kind, IngestResult::Kind::kEnqueued);
  EXPECT_EQ(pipe.submit(t, 3, 50, 3).kind, IngestResult::Kind::kEnqueued);
  EXPECT_EQ(pipe.stats().priority_admits, 1u);
  EXPECT_EQ(pipe.submit(t, 4, 51, 4).kind, IngestResult::Kind::kShed);
  EXPECT_EQ(pipe.stats().shed, 1u);

  pipe.drain(sim::kSecond);
  EXPECT_EQ(cluster.alert_counter(50), 3u);
  EXPECT_EQ(cluster.alert_counter(51), 0u);
}

TEST(IngestPipeline, TakeoverReconcileDrainsQueuedEntries) {
  // Satellite: entries queued when the primary dies stay queued across the
  // outage and drain into the promoted standby — none lost, none
  // double-counted, and none claims a commit time inside the outage.
  FailoverConfig fo;
  fo.standby_enabled = true;
  fo.durable.enabled = true;
  fo.durable.fsync_every_records = 1;
  fo.primary_outages = {{1 * sim::kSecond, 3600 * sim::kSecond}};
  BaseStationCluster cluster(revocation(1000, 2), fo);
  IngestPipeline pipe(sharded(2, 64, /*service=*/300 * sim::kMillisecond),
                      cluster);

  std::vector<sim::SimTime> commit_times;
  pipe.set_commit_hook([&](sim::NodeId, sim::NodeId, AlertDisposition,
                           sim::SimTime, sim::SimTime committed_at) {
    commit_times.push_back(committed_at);
  });

  // Six alerts land just before the outage; their service-model commit
  // slots (0.8s..1.4s per shard) fall inside it.
  for (sim::NodeId i = 0; i < 6; ++i) {
    const sim::NodeId target = 50 + (i % 2);
    EXPECT_EQ(pipe.submit(500 * sim::kMillisecond, 1 + i, target, 1 + i).kind,
              IngestResult::Kind::kEnqueued);
  }
  // Mid-outage (standby takes over at 2.5s): commits are due but the
  // station is down, so everything stays queued.
  pipe.advance(1200 * sim::kMillisecond);
  EXPECT_EQ(pipe.stats().committed, 0u);
  EXPECT_EQ(pipe.queue_depth(), 6u);

  // First in-service advance drains the backlog into the new primary.
  pipe.advance(3 * sim::kSecond);
  EXPECT_EQ(cluster.stats().failovers, 1u);
  EXPECT_EQ(pipe.stats().reconciled, 6u);
  EXPECT_EQ(pipe.stats().committed, 6u);
  EXPECT_EQ(pipe.queue_depth(), 0u);
  EXPECT_EQ(cluster.alert_counter(50), 3u);
  EXPECT_EQ(cluster.alert_counter(51), 3u);
  EXPECT_TRUE(cluster.is_revoked(50));
  EXPECT_TRUE(cluster.is_revoked(51));
  EXPECT_EQ(cluster.wal().stats().records_lost, 0u);
  // Reconciled entries committed no earlier than service resumption.
  ASSERT_EQ(commit_times.size(), 6u);
  for (const sim::SimTime t : commit_times) EXPECT_GE(t, 3 * sim::kSecond);
}

TEST(IngestPipeline, RestartReconcileAfterPrimaryCrash) {
  // Same drain guarantee without a standby: the backlog waits for the
  // primary's restart (WAL restore) instead of a takeover.
  FailoverConfig fo;
  fo.durable.enabled = true;
  fo.durable.fsync_every_records = 1;
  fo.primary_outages = {{1 * sim::kSecond, 3 * sim::kSecond}};
  BaseStationCluster cluster(revocation(1000, 2), fo);
  IngestPipeline pipe(sharded(2, 64, /*service=*/300 * sim::kMillisecond),
                      cluster);

  for (sim::NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(pipe.submit(500 * sim::kMillisecond, 1 + i, 50, 1 + i).kind,
              IngestResult::Kind::kEnqueued);
  }
  pipe.advance(1200 * sim::kMillisecond);
  EXPECT_EQ(pipe.stats().committed, 0u);

  pipe.advance(5 * sim::kSecond);
  EXPECT_EQ(cluster.stats().restarts, 1u);
  EXPECT_EQ(pipe.stats().reconciled, 3u);
  EXPECT_EQ(cluster.alert_counter(50), 3u);
  EXPECT_TRUE(cluster.is_revoked(50));
}

TEST(IngestPipeline, DegradedModeDefersThenRejournals) {
  // A WAL stall trips the breaker: commits keep counting without
  // durability, and once the stall clears every deferred record is
  // journaled in accept order — the restored station matches.
  FailoverConfig fo;
  fo.durable.enabled = true;
  fo.durable.fsync_every_records = 1;
  fo.durable.stall_windows = {{0, 3 * sim::kSecond}};
  BaseStationCluster cluster(revocation(1000, 2), fo);
  IngestConfig cfg = sharded(1, 64, /*service=*/sim::kMillisecond);
  cfg.admission = admission_no_gates();
  cfg.admission.breaker_trip_ns = 500 * sim::kMillisecond;
  cfg.admission.breaker_cooldown_ns = 1 * sim::kSecond;
  IngestPipeline pipe(cfg, cluster);

  for (sim::NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(pipe.submit(sim::kSecond, 1 + i, 50, 1 + i).kind,
              IngestResult::Kind::kEnqueued);
  }
  pipe.advance(1100 * sim::kMillisecond);
  ASSERT_EQ(pipe.breaker_state(1100 * sim::kMillisecond),
            BreakerState::kDegraded);
  EXPECT_EQ(pipe.stats().committed, 3u);
  EXPECT_EQ(pipe.stats().deferred, 3u);
  EXPECT_EQ(pipe.deferred_outstanding(), 3u);
  // Counting continued (the whole point of degraded mode)...
  EXPECT_EQ(cluster.alert_counter(50), 3u);
  EXPECT_TRUE(cluster.is_revoked(50));
  // ...but nothing reached the WAL yet.
  EXPECT_EQ(cluster.wal().stats().appends, 0u);

  // Stall clears at 3s; the next advance journals the parked records.
  pipe.advance(4500 * sim::kMillisecond);
  EXPECT_EQ(pipe.stats().deferred_journaled, 3u);
  EXPECT_EQ(pipe.deferred_outstanding(), 0u);
  EXPECT_EQ(cluster.wal().stats().appends, 3u);
  EXPECT_EQ(cluster.wal().durable_alerts(50), 3u);
  EXPECT_GE(pipe.stats().breaker_transitions, 2u);

  const BaseStation restored = cluster.wal().restore(revocation(1000, 2));
  EXPECT_EQ(restored.alert_counter(50), 3u);
  EXPECT_TRUE(restored.is_revoked(50));
}

TEST(IngestPipeline, DeferredRecordsLostToCrashJoinTheLostLedger) {
  // If the active station crashes while records are still deferred, they
  // are charged to the WAL's lost ledger — never silently dropped — and
  // the counter identity (accepted == durable counters + lost) holds.
  FailoverConfig fo;
  fo.durable.enabled = true;
  fo.durable.fsync_every_records = 1;
  fo.durable.stall_windows = {{0, 20 * sim::kSecond}};
  fo.primary_outages = {{2 * sim::kSecond, 3 * sim::kSecond}};
  BaseStationCluster cluster(revocation(1000, 5), fo);
  IngestConfig cfg = sharded(1, 64, /*service=*/sim::kMillisecond);
  cfg.admission = admission_no_gates();
  cfg.admission.breaker_trip_ns = 500 * sim::kMillisecond;
  IngestPipeline pipe(cfg, cluster);

  for (sim::NodeId i = 0; i < 2; ++i) {
    EXPECT_EQ(pipe.submit(sim::kSecond, 1 + i, 50, 1 + i).kind,
              IngestResult::Kind::kEnqueued);
  }
  pipe.advance(1200 * sim::kMillisecond);
  ASSERT_EQ(pipe.stats().deferred, 2u);
  ASSERT_EQ(cluster.alert_counter(50), 2u);

  // The crash at 2s destroys the volatile counters and the deferred list.
  pipe.advance(5 * sim::kSecond);
  EXPECT_EQ(cluster.stats().active_crashes, 1u);
  EXPECT_EQ(pipe.stats().deferred_lost, 2u);
  EXPECT_EQ(pipe.deferred_outstanding(), 0u);
  EXPECT_EQ(cluster.alert_counter(50), 0u);
  EXPECT_EQ(cluster.wal().lost_alerts(50), 2u);
  EXPECT_EQ(cluster.wal().stats().deferred_lost, 2u);
  EXPECT_EQ(cluster.accepted_by_target().at(50),
            cluster.alert_counter(50) + cluster.wal().lost_alerts(50));
}

TEST(IngestPipeline, SnapshotCompactionWaitsForDeferredJournal) {
  // Chaos-found double count (storm seed 10): while the journal loop was
  // re-appending deferred records, a flush crossed the snapshot threshold
  // and compacted the *live* station image — which already counted keys
  // the loop had not yet appended. A later crash then dropped those keys
  // from pending AND charged them to the lost ledger, so they were in the
  // restored counter twice over. The snapshot gate must hold compaction
  // until every deferred record is journaled.
  FailoverConfig fo;
  fo.durable.enabled = true;
  fo.durable.fsync_every_records = 3;
  fo.durable.snapshot_every_records = 1;
  fo.durable.stall_windows = {{0, 3 * sim::kSecond}};
  fo.primary_outages = {{5 * sim::kSecond, 6 * sim::kSecond}};
  BaseStationCluster cluster(revocation(1000, 1000), fo);
  IngestConfig cfg = sharded(1, 64, /*service=*/sim::kMillisecond);
  cfg.admission = admission_no_gates();
  cfg.admission.breaker_trip_ns = 500 * sim::kMillisecond;
  cfg.admission.breaker_cooldown_ns = 1 * sim::kSecond;
  IngestPipeline pipe(cfg, cluster);

  // Four distinct targets counted in degraded mode (stall trips the
  // breaker before any of them commits).
  for (sim::NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(pipe.submit(sim::kSecond, 1 + i, 50 + i, 1 + i).kind,
              IngestResult::Kind::kEnqueued);
  }
  pipe.advance(1100 * sim::kMillisecond);
  ASSERT_EQ(pipe.stats().deferred, 4u);
  ASSERT_EQ(cluster.wal().stats().appends, 0u);

  // Stall clears at 3s: the journal loop appends all four. With fsync 3
  // the flush lands mid-loop and the tail crosses snapshot_every — the
  // gate must keep compaction parked, leaving the fourth record pending.
  pipe.advance(4500 * sim::kMillisecond);
  EXPECT_EQ(pipe.stats().deferred_journaled, 4u);
  EXPECT_EQ(cluster.wal().stats().snapshots, 0u);
  EXPECT_EQ(cluster.wal().pending_records(), 1u);
  EXPECT_EQ(cluster.wal().tail_records(), 3u);

  // The 5s crash drops the pending fourth record; exactly one unit of
  // evidence is lost, and each target's identity still balances.
  pipe.advance(7 * sim::kSecond);
  EXPECT_EQ(cluster.stats().active_crashes, 1u);
  EXPECT_EQ(cluster.wal().stats().records_lost, 1u);
  EXPECT_EQ(cluster.alert_counter(53), 0u);
  EXPECT_EQ(cluster.wal().lost_alerts(53), 1u);
  for (sim::NodeId t = 50; t < 54; ++t) {
    EXPECT_EQ(cluster.accepted_by_target().at(t),
              cluster.alert_counter(t) + cluster.wal().lost_alerts(t))
        << "target " << t;
  }
}

// ---------------------------------------------------------------------------
// Property: on any submission schedule, the ingest accounting identities
// hold, sheds only ever hit first-sight targets, and after drain() the
// authority's counters equal the accepted-alert ledger.

TEST(IngestPipelineProperty, AccountingAndShedPriorityHold) {
  prop::forall<std::vector<std::int64_t>>(
      "ingest identities on random schedules",
      prop::vector_of(prop::int_range(0, (1 << 15) - 1), 0, 120),
      [](const std::vector<std::int64_t>& spec) {
        BaseStationCluster cluster(revocation(1000, 3), FailoverConfig{});
        IngestConfig cfg = sharded(2, /*capacity=*/4,
                                   /*service=*/5 * sim::kMillisecond);
        cfg.admission.enabled = true;
        cfg.admission.reporter_rate_per_s = 5.0;
        cfg.admission.reporter_burst = 2.0;
        cfg.admission.suspect_after = 2;
        IngestPipeline pipe(cfg, cluster);

        sim::SimTime now = 0;
        std::uint64_t nonce = 0;
        for (const std::int64_t v : spec) {
          const sim::NodeId reporter = 1 + static_cast<sim::NodeId>(v % 8);
          const sim::NodeId target =
              50 + static_cast<sim::NodeId>((v / 8) % 6);
          now += ((v / 48) % 20) * sim::kMillisecond;
          const IngestResult r = pipe.submit(now, reporter, target, ++nonce);
          // Priority rule: a suspected target is never shed.
          if (r.kind == IngestResult::Kind::kShed &&
              cluster.alert_counter(target) >= cfg.admission.suspect_after)
            return false;
          const IngestStats& s = pipe.stats();
          if (s.submitted != s.accepted + s.rate_limited + s.shed +
                                 s.pair_duplicates)
            return false;
          if (s.accepted != s.committed + pipe.queue_depth()) return false;
        }

        pipe.drain(now + 10 * sim::kSecond);
        const IngestStats& s = pipe.stats();
        if (s.accepted != s.committed || pipe.queue_depth() != 0) return false;
        if (s.deferred != 0) return false;  // no stall schedule configured
        // No faults: every accepted alert is in the authority's counters.
        for (const auto& [target, accepted] : cluster.accepted_by_target()) {
          if (cluster.alert_counter(target) != accepted) return false;
        }
        return true;
      });
}

}  // namespace
}  // namespace sld::revocation
