#include "detection/replay_filter.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sld::detection {
namespace {

constexpr double kXmax = 7124.0;

SignalObservation direct_obs() {
  SignalObservation o;
  o.receiver_position = {0, 0};
  o.claimed_position = {100, 0};
  o.measured_distance_ft = 100.0;
  o.target_range_ft = 150.0;
  o.observed_rtt_cycles = 6000.0;
  return o;
}

SignalObservation wormhole_obs() {
  SignalObservation o = direct_obs();
  o.via_wormhole = true;
  o.claimed_position = {800, 700};  // farther than one radio range
  o.measured_distance_ft = 20.0;
  return o;
}

class ReplayFilterTest : public ::testing::Test {
 protected:
  ranging::ProbabilisticWormholeDetector detector{0.9};
  ReplayFilter filter{ReplayFilterConfig{kXmax}, &detector};
  util::Rng rng{1};
};

TEST_F(ReplayFilterTest, DirectSignalPassesBothStages) {
  EXPECT_EQ(filter.evaluate_at_detecting_node(direct_obs(), rng),
            SignalVerdict::kGenuine);
  EXPECT_EQ(filter.evaluate_at_nonbeacon(direct_obs(), rng),
            SignalVerdict::kGenuine);
}

TEST_F(ReplayFilterTest, RttAboveXmaxIsLocalReplay) {
  SignalObservation o = direct_obs();
  o.observed_rtt_cycles = kXmax + 1.0;
  EXPECT_EQ(filter.evaluate_at_detecting_node(o, rng),
            SignalVerdict::kLocalReplay);
  EXPECT_EQ(filter.evaluate_at_nonbeacon(o, rng),
            SignalVerdict::kLocalReplay);
}

TEST_F(ReplayFilterTest, RttExactlyXmaxPasses) {
  SignalObservation o = direct_obs();
  o.observed_rtt_cycles = kXmax;  // paper: "When RTT <= x_max ... not replayed"
  EXPECT_EQ(filter.evaluate_at_detecting_node(o, rng),
            SignalVerdict::kGenuine);
}

TEST_F(ReplayFilterTest, WormholeCaughtAtDetectorRatePerLink) {
  // p_d applies per (receiver, sender) link; measure across many links.
  int caught = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    SignalObservation o = wormhole_obs();
    o.receiver_id = static_cast<std::uint32_t>(i);
    o.sender_id = static_cast<std::uint32_t>(i + kN);
    if (filter.evaluate_at_detecting_node(o, rng) ==
        SignalVerdict::kWormholeReplay)
      ++caught;
  }
  EXPECT_NEAR(static_cast<double>(caught) / kN, 0.9, 0.01);
}

TEST_F(ReplayFilterTest, GeographicPreconditionGatesWormholeStage) {
  // The §2.2.1 algorithm only consults the wormhole detector when the
  // calculated distance exceeds the target's radio range. A tunneled
  // signal claiming a *nearby* origin skips the wormhole stage entirely.
  ranging::ProbabilisticWormholeDetector always(1.0);
  ReplayFilter strict(ReplayFilterConfig{kXmax}, &always);
  SignalObservation o = wormhole_obs();
  o.claimed_position = {100, 0};  // within range -> precondition false
  EXPECT_EQ(strict.evaluate_at_detecting_node(o, rng),
            SignalVerdict::kGenuine);
}

TEST_F(ReplayFilterTest, NonBeaconHasNoGeographicPrecondition) {
  // Non-beacons don't know their own position, so their wormhole detector
  // runs unconditionally and still catches the same signal.
  ranging::ProbabilisticWormholeDetector always(1.0);
  ReplayFilter strict(ReplayFilterConfig{kXmax}, &always);
  SignalObservation o = wormhole_obs();
  o.claimed_position = {100, 0};
  o.receiver_knows_position = false;
  EXPECT_EQ(strict.evaluate_at_nonbeacon(o, rng),
            SignalVerdict::kWormholeReplay);
}

TEST_F(ReplayFilterTest, FakedWormholeIndicationDiscardsSignal) {
  // The malicious p_w strategy: far claim + faked indication always lands
  // in the wormhole branch.
  SignalObservation o = direct_obs();
  o.claimed_position = {500, 0};
  o.sender_faked_wormhole_indication = true;
  EXPECT_EQ(filter.evaluate_at_detecting_node(o, rng),
            SignalVerdict::kWormholeReplay);
  EXPECT_EQ(filter.evaluate_at_nonbeacon(o, rng),
            SignalVerdict::kWormholeReplay);
}

TEST_F(ReplayFilterTest, UndetectedWormholeFallsThroughToRtt) {
  // A missed wormhole with zero tunnel latency passes the RTT stage — the
  // residual false-positive path the paper's analysis quantifies.
  ranging::ProbabilisticWormholeDetector never(0.0);
  ReplayFilter blind(ReplayFilterConfig{kXmax}, &never);
  EXPECT_EQ(blind.evaluate_at_detecting_node(wormhole_obs(), rng),
            SignalVerdict::kGenuine);
  // ... but a slow tunnel is still caught by the RTT stage.
  SignalObservation slow = wormhole_obs();
  slow.observed_rtt_cycles = kXmax + 5000.0;
  EXPECT_EQ(blind.evaluate_at_detecting_node(slow, rng),
            SignalVerdict::kLocalReplay);
}

TEST_F(ReplayFilterTest, DetectingNodeRequiresKnownPosition) {
  SignalObservation o = direct_obs();
  o.receiver_knows_position = false;
  EXPECT_THROW(filter.evaluate_at_detecting_node(o, rng),
               std::invalid_argument);
}

TEST_F(ReplayFilterTest, ConfigValidation) {
  EXPECT_THROW(ReplayFilter(ReplayFilterConfig{0.0}, &detector),
               std::invalid_argument);
  EXPECT_THROW(ReplayFilter(ReplayFilterConfig{kXmax}, nullptr),
               std::invalid_argument);
}

TEST_F(ReplayFilterTest, RttHelper) {
  EXPECT_FALSE(filter.rtt_looks_replayed(kXmax));
  EXPECT_TRUE(filter.rtt_looks_replayed(kXmax + 0.5));
}

}  // namespace
}  // namespace sld::detection
