// Streaming telemetry and SLO monitors: sampler cadence determinism, ring
// eviction accounting, rate derivation, spec parsing, breach hysteresis
// (including a property test that a rule NEVER fires before its sustain
// window elapses), the gauge-lifecycle reset between trials, the scheduler
// time probe, and the headline invariant — a telemetry-enabled trial is
// bit-for-bit identical to an untelemetered one.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/secure_localization.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "prop/prop.hpp"
#include "revocation/failover.hpp"
#include "revocation/shard.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace sld {
namespace {

constexpr std::int64_t kMs = 1'000'000;

obs::TimeseriesOptions options(std::int64_t cadence_ns,
                               std::size_t ring = 64,
                               obs::TraceSink* sink = nullptr) {
  obs::TimeseriesOptions o;
  o.enabled = true;
  o.cadence_ns = cadence_ns;
  o.ring_capacity = ring;
  o.sink = sink;
  return o;
}

// --- sampler mechanics -----------------------------------------------------

TEST(Timeseries, CadenceIsDeterministicUnderIrregularAdvances) {
  obs::MetricsRegistry reg;
  reg.counter("c");
  obs::TimeseriesSampler ts(reg, options(250 * kMs));
  ts.begin(0, 1);
  // Irregular observation times; windows must land on exact multiples of
  // the cadence regardless.
  for (const std::int64_t t : {40 * kMs, 60 * kMs, 700 * kMs, 701 * kMs,
                               1499 * kMs, 2000 * kMs}) {
    ts.advance_to(t);
  }
  EXPECT_EQ(ts.windows_closed(), 8u);  // 2000 / 250
  std::uint64_t idx = 0;
  for (const auto& w : ts.ring()) {
    EXPECT_EQ(w.index, idx);
    EXPECT_EQ(w.t_start_ns, static_cast<std::int64_t>(idx) * 250 * kMs);
    EXPECT_EQ(w.t_end_ns, static_cast<std::int64_t>(idx + 1) * 250 * kMs);
    ++idx;
  }
}

TEST(Timeseries, EventAtWindowEdgeBelongsToNextWindow) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::TimeseriesSampler ts(reg, options(100 * kMs));
  ts.begin(0, 1);
  // The clock reaches the edge BEFORE the edge event runs (scheduler
  // probe contract), so a bump at exactly t=100ms lands in window 1.
  ts.advance_to(100 * kMs);
  c.inc();
  ts.advance_to(200 * kMs);
  ASSERT_EQ(ts.ring().size(), 2u);
  EXPECT_EQ(*ts.ring()[0].delta("c"), 0u);
  EXPECT_EQ(*ts.ring()[1].delta("c"), 1u);
}

TEST(Timeseries, RingEvictsOldestAndAccountsForIt) {
  obs::MetricsRegistry reg;
  reg.counter("c");
  obs::TimeseriesSampler ts(reg, options(10 * kMs, /*ring=*/4));
  ts.begin(0, 1);
  ts.advance_to(100 * kMs);  // 10 windows through a 4-window ring
  EXPECT_EQ(ts.windows_closed(), 10u);
  EXPECT_EQ(ts.evicted(), 6u);
  ASSERT_EQ(ts.ring().size(), 4u);
  EXPECT_EQ(ts.ring().front().index, 6u);
  EXPECT_EQ(ts.ring().back().index, 9u);
}

TEST(Timeseries, DeltasAndRatesMatchHandComputedValues) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  c.inc(5);  // pre-begin value: the baseline, not part of window 0's delta
  obs::TimeseriesSampler ts(reg, options(500 * kMs));
  ts.begin(0, 1);
  c.inc(10);
  g.set(3.5);
  ts.advance_to(500 * kMs);
  c.inc(2);
  ts.advance_to(1000 * kMs);
  ASSERT_EQ(ts.ring().size(), 2u);
  const auto& w0 = ts.ring()[0];
  const auto& w1 = ts.ring()[1];
  EXPECT_EQ(*w0.counter("c"), 15u);  // cumulative
  EXPECT_EQ(*w0.delta("c"), 10u);    // baseline 5 excluded
  EXPECT_DOUBLE_EQ(*w0.gauge("g"), 3.5);
  EXPECT_DOUBLE_EQ(w0.rate_per_s("c"), 20.0);  // 10 per 0.5 s
  EXPECT_EQ(*w1.counter("c"), 17u);
  EXPECT_EQ(*w1.delta("c"), 2u);
  EXPECT_DOUBLE_EQ(w1.rate_per_s("c"), 4.0);
  // Lookups for unknown metrics answer "absent", not garbage.
  EXPECT_EQ(w0.counter("nope"), nullptr);
  EXPECT_EQ(w0.gauge("nope"), nullptr);
  EXPECT_DOUBLE_EQ(w0.rate_per_s("nope"), 0.0);
}

TEST(Timeseries, FinishClosesPartialTailWindow) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::TimeseriesSampler ts(reg, options(100 * kMs));
  ts.begin(0, 1);
  ts.advance_to(100 * kMs);
  c.inc(4);
  ts.finish(150 * kMs);  // trial stops mid-window
  ASSERT_EQ(ts.ring().size(), 2u);
  const auto& tail = ts.ring().back();
  EXPECT_EQ(tail.t_start_ns, 100 * kMs);
  EXPECT_EQ(tail.t_end_ns, 150 * kMs);
  EXPECT_EQ(*tail.delta("c"), 4u);
  // Rates divide by the ACTUAL window length, not the cadence.
  EXPECT_DOUBLE_EQ(tail.rate_per_s("c"), 80.0);
  // Finishing exactly on a window edge must not create an empty window.
  obs::MetricsRegistry reg2;
  reg2.counter("c");
  obs::TimeseriesSampler ts2(reg2, options(100 * kMs));
  ts2.begin(0, 1);
  ts2.finish(200 * kMs);
  EXPECT_EQ(ts2.windows_closed(), 2u);
}

TEST(Timeseries, MidTrialCounterRegistrationDeltasFromZero) {
  obs::MetricsRegistry reg;
  reg.counter("early");
  obs::TimeseriesSampler ts(reg, options(100 * kMs));
  ts.begin(0, 1);
  ts.advance_to(100 * kMs);
  obs::Counter& late = reg.counter("late");
  late.inc(7);
  ts.advance_to(200 * kMs);
  EXPECT_EQ(ts.ring()[0].counter("late"), nullptr);
  EXPECT_EQ(*ts.ring()[1].delta("late"), 7u);
}

TEST(Timeseries, PresampleHookSeesWindowEdgeBeforeSnapshot) {
  obs::MetricsRegistry reg;
  obs::Counter& mirror = reg.counter("mirror");
  obs::TimeseriesSampler ts(reg, options(100 * kMs));
  std::vector<std::int64_t> hook_times;
  ts.set_presample_hook([&](std::int64_t t) {
    hook_times.push_back(t);
    mirror.inc(1);  // a mirror sync right at the edge is visible in-window
  });
  ts.begin(0, 1);
  ts.advance_to(250 * kMs);
  EXPECT_EQ(hook_times, (std::vector<std::int64_t>{100 * kMs, 200 * kMs}));
  EXPECT_EQ(*ts.ring()[0].delta("mirror"), 1u);
  EXPECT_EQ(*ts.ring()[1].delta("mirror"), 1u);
}

TEST(Timeseries, StreamEmitsMetaHeaderAndWindowRecords) {
  obs::MemorySink sink;
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x.count");
  obs::TimeseriesSampler ts(reg, options(100 * kMs, 64, &sink));
  ts.begin(0, 42);
  c.inc(3);
  ts.advance_to(100 * kMs);
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_NE(sink.lines()[0].find("\"e\":\"ts.meta\""), std::string::npos);
  EXPECT_NE(sink.lines()[0].find("\"schema\":\"timeseries/v1\""),
            std::string::npos);
  EXPECT_NE(sink.lines()[0].find("\"seed\":42"), std::string::npos);
  EXPECT_NE(sink.lines()[1].find("\"e\":\"ts.window\""), std::string::npos);
  EXPECT_NE(sink.lines()[1].find("\"deltas\":{\"x.count\":3}"),
            std::string::npos);
}

// --- SLO spec parsing ------------------------------------------------------

TEST(SloSpec, ParsesFullGrammar) {
  const auto rules = obs::parse_slo_spec(
      "# comment line\n"
      "shed  rate(bs.ingest.shed) > 50 sustain=2 clear=3;\n"
      "depth gauge(q.depth) >= 16\n"
      "slow  p99(lat_ms) <= 500;"
      "burny burn(bad/total, 0.01) > 1 sustain=4");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "shed");
  EXPECT_EQ(rules[0].source, obs::SloSource::kRate);
  EXPECT_EQ(rules[0].metric, "bs.ingest.shed");
  EXPECT_EQ(rules[0].cmp, obs::SloCmp::kGt);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 50.0);
  EXPECT_EQ(rules[0].sustain_windows, 2u);
  EXPECT_EQ(rules[0].clear_windows, 3u);
  EXPECT_EQ(rules[1].cmp, obs::SloCmp::kGe);
  EXPECT_EQ(rules[1].sustain_windows, 1u);
  EXPECT_EQ(rules[2].cmp, obs::SloCmp::kLe);
  EXPECT_EQ(rules[3].source, obs::SloSource::kBurn);
  EXPECT_EQ(rules[3].metric, "bad");
  EXPECT_EQ(rules[3].total_metric, "total");
  EXPECT_DOUBLE_EQ(rules[3].objective, 0.01);
}

TEST(SloSpec, RejectsMalformedRules) {
  EXPECT_THROW(obs::parse_slo_spec("x unknown(m) > 1"),
               std::invalid_argument);
  EXPECT_THROW(obs::parse_slo_spec("x rate(m > 1"), std::invalid_argument);
  EXPECT_THROW(obs::parse_slo_spec("x rate(m) >"), std::invalid_argument);
  EXPECT_THROW(obs::parse_slo_spec("x rate(m) > abc"),
               std::invalid_argument);
  EXPECT_THROW(obs::parse_slo_spec("x rate(m) !! 1"), std::invalid_argument);
  EXPECT_THROW(obs::parse_slo_spec("x rate(m) > 1 sustain=0"),
               std::invalid_argument);
  EXPECT_THROW(obs::parse_slo_spec("x burn(bad) > 1"),
               std::invalid_argument);
  EXPECT_THROW(obs::parse_slo_spec("rate(m) > 1"), std::invalid_argument);
}

// --- SLO monitor -----------------------------------------------------------

obs::WindowSample gauge_window(std::uint64_t idx, double value) {
  obs::WindowSample w;
  w.index = idx;
  w.t_start_ns = static_cast<std::int64_t>(idx) * 100 * kMs;
  w.t_end_ns = w.t_start_ns + 100 * kMs;
  w.gauges.emplace_back("x", value);
  return w;
}

TEST(SloMonitor, BreachesAfterSustainAndRecoversAfterClear) {
  obs::SloMonitor mon(
      obs::parse_slo_spec("r gauge(x) > 10 sustain=3 clear=2"));
  const double values[] = {20, 20, 0, 20, 20, 20, 20, 0, 0, 0};
  std::uint64_t idx = 0;
  for (const double v : values) mon.on_window(gauge_window(idx++, v));
  // Bad streak is broken at window 2, re-achieves 3 at window 5; two good
  // windows (7, 8) recover it.
  EXPECT_EQ(mon.breaches(), 1u);
  EXPECT_EQ(mon.recovers(), 1u);
  EXPECT_TRUE(mon.healthy());
  ASSERT_EQ(mon.log().size(), 2u);
  EXPECT_TRUE(mon.log()[0].breach);
  EXPECT_EQ(mon.log()[0].window, 5u);
  EXPECT_FALSE(mon.log()[1].breach);
  EXPECT_EQ(mon.log()[1].window, 8u);
}

TEST(SloMonitor, MissingMetricCountsAsGoodWindow) {
  obs::SloMonitor mon(obs::parse_slo_spec("r gauge(x) > 10 sustain=2"));
  mon.on_window(gauge_window(0, 20));
  obs::WindowSample empty;  // no metric "x" anywhere
  empty.index = 1;
  empty.t_end_ns = 200 * kMs;
  mon.on_window(empty);  // breaks the bad streak
  mon.on_window(gauge_window(2, 20));
  EXPECT_EQ(mon.breaches(), 0u);
  mon.on_window(gauge_window(3, 20));
  EXPECT_EQ(mon.breaches(), 1u);
}

TEST(SloMonitor, EmitsBreachAndRecoverEventsAndVerdictJson) {
  obs::MemorySink sink;
  std::int64_t now = 0;
  obs::SloMonitor mon(obs::parse_slo_spec("r gauge(x) > 10"));
  mon.add_tracer(obs::Tracer(&sink, [&now] { return now; }));
  now = 100 * kMs;
  mon.on_window(gauge_window(0, 20));
  now = 200 * kMs;
  mon.on_window(gauge_window(1, 0));
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_NE(sink.lines()[0].find("\"e\":\"slo.breach\""), std::string::npos);
  EXPECT_NE(sink.lines()[0].find("\"rule\":\"r\""), std::string::npos);
  EXPECT_NE(sink.lines()[1].find("\"e\":\"slo.recover\""), std::string::npos);
  const std::string verdict = mon.verdict_json();
  EXPECT_NE(verdict.find("\"breaches\":1"), std::string::npos);
  EXPECT_NE(verdict.find("\"recovers\":1"), std::string::npos);
  EXPECT_NE(verdict.find("\"healthy\":true"), std::string::npos);
}

TEST(SloMonitor, BurnRateDividesDeltaRatioByObjective) {
  obs::SloMonitor mon(
      obs::parse_slo_spec("b burn(bad/total, 0.1) > 1 sustain=1"));
  obs::WindowSample w;
  w.index = 0;
  w.t_end_ns = 100 * kMs;
  w.deltas.emplace_back("bad", std::uint64_t{5});
  w.deltas.emplace_back("total", std::uint64_t{25});
  mon.on_window(w);  // (5/25)/0.1 = 2 > 1 -> breach
  EXPECT_EQ(mon.breaches(), 1u);
  ASSERT_EQ(mon.log().size(), 1u);
  EXPECT_DOUBLE_EQ(mon.log()[0].value, 2.0);
}

// Property: over ANY window sequence, a rule's transitions exactly follow
// the sustain/clear streak semantics — in particular it NEVER breaches
// before `sustain` consecutive bad windows have elapsed.
struct HysteresisCase {
  std::size_t sustain = 1;
  std::size_t clear = 1;
  std::vector<bool> bad;  // window i exceeds the threshold
};

std::ostream& operator<<(std::ostream& os, const HysteresisCase& c) {
  os << "sustain=" << c.sustain << " clear=" << c.clear << " bad=";
  for (const bool b : c.bad) os << (b ? '1' : '0');
  return os;
}

TEST(SloMonitor, PropertyBreachNeverPrecedesSustainStreak) {
  using Case = HysteresisCase;
  prop::Gen<Case> gen;
  gen.generate = [](util::Rng& rng) {
    Case c;
    c.sustain = static_cast<std::size_t>(rng.uniform_int(1, 4));
    c.clear = static_cast<std::size_t>(rng.uniform_int(1, 3));
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    for (std::size_t i = 0; i < n; ++i) c.bad.push_back(rng.bernoulli(0.5));
    return c;
  };
  gen.shrink = [](const Case& c) {
    std::vector<Case> out;
    if (c.bad.size() > 1) {
      Case half = c;
      half.bad.resize(c.bad.size() / 2);
      out.push_back(half);
      Case tail = c;
      tail.bad.erase(tail.bad.begin());
      out.push_back(tail);
    }
    return out;
  };

  prop::forall<Case>(
      "slo breach hysteresis", gen,
      [](const Case& c) {
        obs::SloRule rule;
        rule.name = "r";
        rule.source = obs::SloSource::kGauge;
        rule.metric = "x";
        rule.cmp = obs::SloCmp::kGt;
        rule.threshold = 10.0;
        rule.sustain_windows = c.sustain;
        rule.clear_windows = c.clear;
        obs::SloMonitor mon({rule});

        // Reference streak machine, evolved window by window.
        bool breached = false;
        std::size_t bad_streak = 0;
        std::size_t good_streak = 0;
        std::uint64_t expect_breaches = 0;
        std::uint64_t expect_recovers = 0;
        for (std::size_t i = 0; i < c.bad.size(); ++i) {
          mon.on_window(gauge_window(i, c.bad[i] ? 20.0 : 0.0));
          if (c.bad[i]) {
            ++bad_streak;
            good_streak = 0;
            if (!breached && bad_streak >= c.sustain) {
              breached = true;
              ++expect_breaches;
            }
          } else {
            ++good_streak;
            bad_streak = 0;
            if (breached && good_streak >= c.clear) {
              breached = false;
              ++expect_recovers;
            }
          }
          if (mon.breaches() != expect_breaches) return false;
          if (mon.recovers() != expect_recovers) return false;
          if (mon.healthy() != !breached) return false;
        }
        // Every logged breach must sit at the end of a full sustain
        // streak — firing early would place it where the streak is short.
        for (const auto& e : mon.log()) {
          if (!e.breach) continue;
          if (e.window + 1 < c.sustain) return false;
          for (std::uint64_t k = 0; k < c.sustain; ++k) {
            if (!c.bad[static_cast<std::size_t>(e.window - k)]) return false;
          }
        }
        return true;
      },
      prop::Config{});
}

// --- gauge lifecycle between trials ----------------------------------------

TEST(GaugeLifecycle, SetInstrumentsResetsStaleGaugesFromPreviousTrial) {
  // A registry shared across trials (the bench pattern) carries the LAST
  // trial's gauge values; attaching instruments to a fresh pipeline must
  // overwrite them with the new pipeline's actual state, not leak them.
  obs::MetricsRegistry reg;
  obs::Gauge& depth = reg.gauge("bs.ingest.queue_depth.s0");
  obs::Gauge& breaker = reg.gauge("bs.ingest.breaker_state");
  depth.set(13.0);   // stale: previous trial ended with a deep queue
  breaker.set(2.0);  // stale: previous trial ended degraded

  revocation::RevocationConfig rc;
  revocation::BaseStationCluster cluster(rc, revocation::FailoverConfig{});
  revocation::IngestConfig ic;
  ic.admission.enabled = true;
  revocation::IngestPipeline pipeline(ic, cluster);
  revocation::IngestPipeline::Instruments ins;
  ins.queue_depth.push_back(&depth);
  ins.breaker_state = &breaker;
  pipeline.set_instruments(std::move(ins));

  EXPECT_DOUBLE_EQ(depth.value(), 0.0);    // fresh pipeline: empty queue
  EXPECT_DOUBLE_EQ(breaker.value(), 0.0);  // fresh pipeline: breaker closed
}

// --- scheduler time probe --------------------------------------------------

TEST(SchedulerTimeProbe, FiresOncePerClockAdvanceBeforeTheEdgeEvent) {
  sim::Scheduler sched;
  std::vector<std::pair<sim::SimTime, sim::SimTime>> probes;  // (t, now)
  sched.set_time_probe([&](sim::SimTime t) {
    probes.emplace_back(t, sched.now());
  });
  std::vector<sim::SimTime> executed;
  const auto record = [&] { executed.push_back(sched.now()); };
  sched.schedule_at(10, record);
  sched.schedule_at(10, record);  // same-time event: no second probe call
  sched.schedule_at(25, record);
  sched.run();
  ASSERT_EQ(probes.size(), 2u);
  // The probe sees the new time as its argument while now() still reads
  // the old time: it observes strictly pre-edge state.
  EXPECT_EQ(probes[0].first, 10);
  EXPECT_EQ(probes[0].second, 0);
  EXPECT_EQ(probes[1].first, 25);
  EXPECT_EQ(probes[1].second, 10);
  EXPECT_EQ(executed, (std::vector<sim::SimTime>{10, 10, 25}));
}

// --- the headline invariant ------------------------------------------------

core::SystemConfig telemetry_test_config() {
  core::SystemConfig c;
  c.deployment.total_nodes = 300;
  c.deployment.beacon_count = 30;
  c.deployment.malicious_beacon_count = 3;
  c.deployment.field = util::Rect::square(550.0);
  c.rtt_calibration_samples = 2000;
  c.seed = 11;
  return c;
}

TEST(Timeseries, SampledTrialIsBitForBitIdenticalToUnsampled) {
  core::TrialSummary plain;
  {
    core::SecureLocalizationSystem sys(telemetry_test_config());
    plain = sys.run();
  }
  core::TrialSummary sampled;
  obs::MemorySink sink;
  {
    core::SystemConfig c = telemetry_test_config();
    c.telemetry.enabled = true;
    c.telemetry.cadence_ns = 250 * kMs;
    c.telemetry.sink = &sink;
    c.slo_rules = obs::parse_slo_spec("r rate(channel.tx) >= 0");
    core::SecureLocalizationSystem sys(c);
    sampled = sys.run();
  }
  // The sampler observed a real stream...
  EXPECT_GT(sink.lines().size(), 1u);
  EXPECT_TRUE(sampled.slo.enabled);
  // ...and perturbed nothing: every simulation output matches exactly.
  // (metrics_json legitimately differs — telemetry registers its mirror
  // instruments and the SLO verdict — and slo is the new verdict itself.)
  EXPECT_EQ(sampled.sched_events, plain.sched_events);
  EXPECT_EQ(sampled.channel.transmissions, plain.channel.transmissions);
  EXPECT_EQ(sampled.channel.deliveries, plain.channel.deliveries);
  EXPECT_EQ(sampled.channel.losses, plain.channel.losses);
  EXPECT_EQ(sampled.malicious_revoked, plain.malicious_revoked);
  EXPECT_EQ(sampled.benign_revoked, plain.benign_revoked);
  EXPECT_EQ(sampled.sensors_localized, plain.sensors_localized);
  EXPECT_EQ(sampled.affected_sensor_references,
            plain.affected_sensor_references);
  EXPECT_EQ(sampled.detection_rate, plain.detection_rate);
  EXPECT_EQ(sampled.false_positive_rate, plain.false_positive_rate);
  EXPECT_EQ(sampled.mean_localization_error_ft,
            plain.mean_localization_error_ft);
  EXPECT_EQ(sampled.max_localization_error_ft,
            plain.max_localization_error_ft);
  EXPECT_EQ(sampled.mean_malicious_revocation_latency_ms,
            plain.mean_malicious_revocation_latency_ms);
  EXPECT_EQ(sampled.radio_energy_uj, plain.radio_energy_uj);
  EXPECT_EQ(sampled.rtt_x_max_cycles, plain.rtt_x_max_cycles);
  EXPECT_EQ(sampled.avg_requesters_per_malicious,
            plain.avg_requesters_per_malicious);
  EXPECT_EQ(sampled.avg_affected_per_malicious,
            plain.avg_affected_per_malicious);
}

TEST(Timeseries, TrialVerdictLandsInMetricsJsonAndSummary) {
  core::SystemConfig c = telemetry_test_config();
  c.telemetry.enabled = true;
  c.telemetry.cadence_ns = 250 * kMs;
  // A rule that trivially breaches on the first window and never recovers:
  // the verdict must report the trial unhealthy.
  c.slo_rules = obs::parse_slo_spec("always rate(channel.tx) >= 0");
  core::SecureLocalizationSystem sys(c);
  const auto s = sys.run();
  EXPECT_TRUE(s.slo.enabled);
  EXPECT_FALSE(s.slo.healthy);
  EXPECT_EQ(s.slo.breaches, 1u);
  EXPECT_NE(s.metrics_json.find("\"slo\":{"), std::string::npos);
  EXPECT_NE(s.metrics_json.find("\"rule\":\"always\""), std::string::npos);
}

}  // namespace
}  // namespace sld
