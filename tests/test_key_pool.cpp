#include "crypto/key_pool.hpp"

#include <gtest/gtest.h>

namespace sld::crypto {
namespace {

TEST(KeyPool, GeneratesRequestedSize) {
  util::Rng rng(1);
  KeyPool pool(100, rng);
  EXPECT_EQ(pool.size(), 100u);
}

TEST(KeyPool, KeysAreDistinct) {
  util::Rng rng(2);
  KeyPool pool(50, rng);
  for (PoolKeyId i = 0; i < 50; ++i)
    for (PoolKeyId j = i + 1; j < 50; ++j)
      EXPECT_NE(pool.key(i), pool.key(j));
}

TEST(KeyPool, RejectsEmptyPool) {
  util::Rng rng(3);
  EXPECT_THROW(KeyPool(0, rng), std::invalid_argument);
}

TEST(KeyPool, KeyLookupBoundsChecked) {
  util::Rng rng(4);
  KeyPool pool(10, rng);
  EXPECT_THROW(pool.key(10), std::out_of_range);
}

TEST(KeyPool, DrawRingDistinctSorted) {
  util::Rng rng(5);
  KeyPool pool(200, rng);
  const auto ring = pool.draw_ring(50, rng);
  EXPECT_EQ(ring.size(), 50u);
  for (std::size_t i = 1; i < ring.size(); ++i)
    EXPECT_LT(ring[i - 1], ring[i]);
}

TEST(KeyPool, DrawRingRejectsOversizedRing) {
  util::Rng rng(6);
  KeyPool pool(10, rng);
  EXPECT_THROW(pool.draw_ring(11, rng), std::invalid_argument);
}

TEST(KeyPool, ShareProbabilityFormulaSanity) {
  // EG connectivity: with ring = pool, sharing is certain.
  EXPECT_DOUBLE_EQ(KeyPool::share_probability(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(KeyPool::share_probability(100, 0), 0.0);
  // Known EG working point: pool 10000, ring 75 -> ~0.43.
  const double p = KeyPool::share_probability(10000, 75);
  EXPECT_NEAR(p, 0.43, 0.02);
}

TEST(KeyPool, ShareProbabilityMatchesMonteCarlo) {
  util::Rng rng(7);
  KeyPool pool(500, rng);
  constexpr std::size_t kRing = 30;
  const double analytic = KeyPool::share_probability(500, kRing);
  int shared = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    KeyRing a(pool.draw_ring(kRing, rng), pool);
    KeyRing b(pool.draw_ring(kRing, rng), pool);
    if (a.shared_key_id(b)) ++shared;
  }
  EXPECT_NEAR(static_cast<double>(shared) / kTrials, analytic, 0.05);
}

TEST(KeyRing, SharedKeyIsSymmetricAndLowest) {
  util::Rng rng(8);
  KeyPool pool(100, rng);
  KeyRing a({5, 10, 20}, pool);
  KeyRing b({10, 20, 30}, pool);
  ASSERT_TRUE(a.shared_key_id(b).has_value());
  EXPECT_EQ(*a.shared_key_id(b), 10u);
  EXPECT_EQ(*b.shared_key_id(a), 10u);
}

TEST(KeyRing, NoSharedKey) {
  util::Rng rng(9);
  KeyPool pool(100, rng);
  KeyRing a({1, 2, 3}, pool);
  KeyRing b({4, 5, 6}, pool);
  EXPECT_FALSE(a.shared_key_id(b).has_value());
}

TEST(KeyRing, LinkKeysMatchOnBothSidesAndBindPair) {
  util::Rng rng(10);
  KeyPool pool(100, rng);
  KeyRing a({7, 8}, pool);
  KeyRing b({8, 9}, pool);
  const auto shared = *a.shared_key_id(b);
  EXPECT_EQ(a.link_key(shared, 100, 200), b.link_key(shared, 200, 100));
  // Different node pair with the same pool key gets a different link key.
  EXPECT_NE(a.link_key(shared, 100, 200), a.link_key(shared, 100, 201));
}

TEST(KeyRing, LinkKeyRequiresMembership) {
  util::Rng rng(11);
  KeyPool pool(100, rng);
  KeyRing a({1, 2}, pool);
  EXPECT_THROW(a.link_key(3, 1, 2), std::invalid_argument);
}

}  // namespace
}  // namespace sld::crypto
