#include "attack/masquerade.hpp"

#include <gtest/gtest.h>

#include "crypto/mac.hpp"
#include "crypto/pairwise.hpp"
#include "sim/network.hpp"

namespace sld::attack {
namespace {

class RecorderNode final : public sim::Node {
 public:
  using Node::Node;
  void on_message(const sim::Delivery& d) override {
    deliveries.push_back(d);
  }
  std::vector<sim::Delivery> deliveries;
};

TEST(Masquerade, ForgeryIsDeliveredButFailsAuthentication) {
  sim::Network net(sim::ChannelConfig{}, 5);
  auto& victim = net.emplace_node<RecorderNode>(1000, util::Vec2{0, 0}, 150.0);

  MasqueradeConfig cfg;
  cfg.position = {50, 0};
  cfg.impersonated_beacon = 7;
  cfg.claimed_position = {999, 999};
  Masquerader attacker(cfg, net.channel());

  util::Rng rng(1);
  attacker.forge_reply(1000, 42, rng);
  net.run();

  ASSERT_EQ(victim.deliveries.size(), 1u);
  EXPECT_EQ(attacker.forgeries_sent(), 1u);
  const auto& d = victim.deliveries[0];
  EXPECT_EQ(d.msg.src, 7u);

  // The receiver's MAC check — the paper's first line of defence — rejects
  // the forgery because the attacker has no pairwise key material.
  const auto keys = crypto::PairwiseKeyManager::from_seed(99);
  EXPECT_FALSE(crypto::verify_mac(keys.pairwise_key(d.msg.src, d.msg.dst),
                                  d.msg.src, d.msg.dst, d.msg.payload,
                                  d.msg.mac));
}

TEST(Masquerade, ForgedPayloadParsesWithClaimedLocation) {
  sim::Network net(sim::ChannelConfig{}, 6);
  auto& victim = net.emplace_node<RecorderNode>(1000, util::Vec2{0, 0}, 150.0);

  MasqueradeConfig cfg;
  cfg.position = {10, 0};
  cfg.claimed_position = {123, 456};
  Masquerader attacker(cfg, net.channel());
  util::Rng rng(2);
  attacker.forge_reply(1000, 9, rng);
  net.run();

  ASSERT_EQ(victim.deliveries.size(), 1u);
  const auto payload =
      sim::BeaconReplyPayload::parse(victim.deliveries[0].msg.payload);
  EXPECT_EQ(payload.nonce, 9u);
  EXPECT_EQ(payload.claimed_position, (util::Vec2{123, 456}));
}

TEST(Masquerade, OutOfRangeForgeryNotDelivered) {
  sim::Network net(sim::ChannelConfig{}, 7);
  auto& victim =
      net.emplace_node<RecorderNode>(1000, util::Vec2{500, 500}, 150.0);

  MasqueradeConfig cfg;
  cfg.position = {0, 0};
  cfg.range_ft = 150.0;
  Masquerader attacker(cfg, net.channel());
  util::Rng rng(3);
  attacker.forge_reply(1000, 1, rng);
  net.run();
  EXPECT_TRUE(victim.deliveries.empty());
}

}  // namespace
}  // namespace sld::attack
