#include "revocation/base_station.hpp"

#include <gtest/gtest.h>

namespace sld::revocation {
namespace {

RevocationConfig config(std::uint32_t tau1 = 10, std::uint32_t tau2 = 2) {
  RevocationConfig c;
  c.report_quota = tau1;
  c.alert_threshold = tau2;
  return c;
}

TEST(BaseStation, RevokesAfterThresholdExceeded) {
  BaseStation bs(config(10, 2));
  EXPECT_EQ(bs.process_alert(1, 50), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(2, 50), AlertDisposition::kAccepted);
  EXPECT_FALSE(bs.is_revoked(50));
  // Third alert: counter exceeds tau2 = 2 -> revoked.
  EXPECT_EQ(bs.process_alert(3, 50), AlertDisposition::kAcceptedAndRevoked);
  EXPECT_TRUE(bs.is_revoked(50));
  EXPECT_EQ(bs.revoked_count(), 1u);
}

TEST(BaseStation, AlertsAgainstRevokedTargetIgnored) {
  BaseStation bs(config(10, 0));
  EXPECT_EQ(bs.process_alert(1, 50), AlertDisposition::kAcceptedAndRevoked);
  EXPECT_EQ(bs.process_alert(2, 50),
            AlertDisposition::kIgnoredTargetRevoked);
  // The late reporter's quota is NOT consumed by an ignored alert.
  EXPECT_EQ(bs.report_counter(2), 0u);
}

TEST(BaseStation, ReporterQuotaEnforced) {
  BaseStation bs(config(2, 100));  // tau1 = 2: 3 accepted alerts per reporter
  EXPECT_EQ(bs.process_alert(1, 10), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(1, 11), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(1, 12), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(1, 13),
            AlertDisposition::kIgnoredReporterQuota);
  EXPECT_EQ(bs.report_counter(1), 3u);
  EXPECT_EQ(bs.alert_counter(13), 0u);
}

TEST(BaseStation, QuotaIsTauPlusOneAccepted) {
  // Paper: accept while the counter "has not exceeded" tau1, so exactly
  // tau1 + 1 alerts are accepted — the N_a (tau1+1) term in N_f.
  const std::uint32_t tau1 = 5;
  BaseStation bs(config(tau1, 1000));
  int accepted = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    if (bs.process_alert(1, 100 + i) == AlertDisposition::kAccepted)
      ++accepted;
  }
  EXPECT_EQ(accepted, static_cast<int>(tau1 + 1));
}

TEST(BaseStation, RevokedReporterStillAccepted) {
  // Paper §3.1: "the alert from a revoked detecting node will still be
  // accepted" — malicious nodes cannot silence a benign beacon by revoking
  // it first.
  BaseStation bs(config(10, 0));
  bs.process_alert(1, 50);  // revokes 50 (tau2 = 0)
  EXPECT_TRUE(bs.is_revoked(50));
  EXPECT_EQ(bs.process_alert(50, 60), AlertDisposition::kAcceptedAndRevoked);
  EXPECT_TRUE(bs.is_revoked(60));
}

TEST(BaseStation, CountersStartAtZero) {
  BaseStation bs(config());
  EXPECT_EQ(bs.alert_counter(1), 0u);
  EXPECT_EQ(bs.report_counter(1), 0u);
  EXPECT_FALSE(bs.is_revoked(1));
}

TEST(BaseStation, DistinctReportersNeededToRevoke) {
  // One reporter sends many alerts against the same target: only the
  // first is meaningful per our one-alert-per-pair protocol, but even at
  // the base station each accepted alert counts once; tau2 = 2 needs 3.
  BaseStation bs(config(10, 2));
  bs.process_alert(1, 50);
  bs.process_alert(2, 50);
  EXPECT_FALSE(bs.is_revoked(50));
  bs.process_alert(3, 50);
  EXPECT_TRUE(bs.is_revoked(50));
}

TEST(BaseStation, RevocationOrderPreserved) {
  BaseStation bs(config(10, 0));
  bs.process_alert(1, 30);
  bs.process_alert(2, 20);
  bs.process_alert(3, 10);
  EXPECT_EQ(bs.revocation_order(),
            (std::vector<sim::NodeId>{30, 20, 10}));
}

TEST(BaseStation, StatsTrackDispositions) {
  BaseStation bs(config(0, 0));  // quota 1, threshold 1 alert
  bs.process_alert(1, 50);  // accepted + revoked
  bs.process_alert(1, 60);  // quota exceeded
  bs.process_alert(2, 50);  // target revoked
  const auto& st = bs.stats();
  EXPECT_EQ(st.alerts_received, 3u);
  EXPECT_EQ(st.alerts_accepted, 1u);
  EXPECT_EQ(st.alerts_ignored_quota, 1u);
  EXPECT_EQ(st.alerts_ignored_revoked, 1u);
  EXPECT_EQ(st.revocations, 1u);
}

TEST(BaseStation, DuplicatedAlertCannotDoubleCount) {
  // Regression for idempotent ingestion: a duplicated transport copy of
  // the same (reporter, target, nonce) alert must not double-increment the
  // counter past tau2. tau2 = 2 here, so two reporters' alerts duplicated
  // any number of times must never revoke.
  BaseStation bs(config(10, 2));
  EXPECT_EQ(bs.process_alert(1, 50, 0xaaa), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(2, 50, 0xbbb), AlertDisposition::kAccepted);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(bs.process_alert(1, 50, 0xaaa),
              AlertDisposition::kIgnoredDuplicate);
    EXPECT_EQ(bs.process_alert(2, 50, 0xbbb),
              AlertDisposition::kIgnoredDuplicate);
  }
  EXPECT_EQ(bs.alert_counter(50), 2u);
  EXPECT_FALSE(bs.is_revoked(50));
  EXPECT_EQ(bs.stats().alerts_ignored_duplicate, 20u);
  // A duplicate must not burn the reporter's quota either.
  EXPECT_EQ(bs.report_counter(1), 1u);
  // Fresh nonce = new evidence: the third distinct alert still revokes.
  EXPECT_EQ(bs.process_alert(3, 50, 0xccc),
            AlertDisposition::kAcceptedAndRevoked);
}

TEST(BaseStation, DuplicateDetectionIsPerNonceNotPerPair) {
  // The same reporter re-detecting the same target after a reboot submits
  // a fresh nonce; that is new evidence, not a duplicate.
  BaseStation bs(config(10, 5));
  EXPECT_EQ(bs.process_alert(1, 50, 1), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(1, 50, 2), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.alert_counter(50), 2u);
}

TEST(BaseStation, AutoNoncesNeverCollideWithCallerNonces) {
  // The 2-arg overload stamps internal nonces in a reserved namespace, so
  // mixing it with small caller-chosen nonces can never cause a spurious
  // duplicate verdict.
  BaseStation bs(config(10, 100));
  EXPECT_EQ(bs.process_alert(1, 50), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(2, 50, 1), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(3, 50), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.alert_counter(50), 3u);
  EXPECT_EQ(bs.stats().alerts_ignored_duplicate, 0u);
}

TEST(BaseStation, ExportImportRoundTripsState) {
  BaseStation bs(config(10, 2));
  bs.process_alert(1, 50, 11);
  bs.process_alert(2, 50, 12);
  bs.process_alert(3, 50, 13);  // revokes 50
  bs.process_alert(4, 60, 14);

  BaseStation restored(config(10, 2));
  restored.import_state(bs.export_state());
  EXPECT_TRUE(restored.is_revoked(50));
  EXPECT_EQ(restored.alert_counter(50), 3u);
  EXPECT_EQ(restored.alert_counter(60), 1u);
  EXPECT_EQ(restored.report_counter(1), 1u);
  EXPECT_EQ(restored.revocation_order(), bs.revocation_order());
  // The dedup set travels too: a replayed copy is still a duplicate.
  EXPECT_EQ(restored.process_alert(4, 60, 14),
            AlertDisposition::kIgnoredDuplicate);
}

TEST(BaseStation, IndependentTargetsIndependentCounters) {
  BaseStation bs(config(10, 2));
  bs.process_alert(1, 50);
  bs.process_alert(2, 60);
  EXPECT_EQ(bs.alert_counter(50), 1u);
  EXPECT_EQ(bs.alert_counter(60), 1u);
  EXPECT_FALSE(bs.is_revoked(50));
  EXPECT_FALSE(bs.is_revoked(60));
}

TEST(BaseStation, DedupWindowBoundsFootprint) {
  // 20 distinct keys through a window of 8: the resident set stays flat
  // at 8 and the 12 oldest keys are counted as evicted.
  RevocationConfig c = config(1000, 1000);
  c.dedup_window = 8;
  BaseStation bs(c);
  for (std::uint64_t i = 0; i < 20; ++i) {
    bs.process_alert(1 + static_cast<sim::NodeId>(i), 50, 100 + i);
    EXPECT_LE(bs.dedup_footprint(), 8u);
  }
  EXPECT_EQ(bs.dedup_footprint(), 8u);
  EXPECT_EQ(bs.stats().dedup_evictions, 12u);
  // Eviction is pure bookkeeping: every alert still counted exactly once.
  EXPECT_EQ(bs.alert_counter(50), 20u);
}

TEST(BaseStation, EvictedKeyIsCountedAgain) {
  // The documented tradeoff: a retransmission older than the window is no
  // longer recognized as a duplicate and double-counts. Window 2, so key
  // (1, 50, 100) ages out after two newer keys.
  RevocationConfig c = config(1000, 1000);
  c.dedup_window = 2;
  BaseStation bs(c);
  EXPECT_EQ(bs.process_alert(1, 50, 100), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.process_alert(1, 50, 100),
            AlertDisposition::kIgnoredDuplicate);
  bs.process_alert(2, 50, 101);
  bs.process_alert(3, 50, 102);
  EXPECT_EQ(bs.process_alert(1, 50, 100), AlertDisposition::kAccepted);
  EXPECT_EQ(bs.alert_counter(50), 4u);
}

TEST(BaseStation, UnboundedWindowNeverEvicts) {
  RevocationConfig c = config(1000, 1000);
  c.dedup_window = 0;  // the pre-window behaviour
  BaseStation bs(c);
  for (std::uint64_t i = 0; i < 500; ++i) {
    bs.process_alert(1 + static_cast<sim::NodeId>(i), 50, 100 + i);
  }
  EXPECT_EQ(bs.dedup_footprint(), 500u);
  EXPECT_EQ(bs.stats().dedup_evictions, 0u);
}

TEST(BaseStation, SnapshotRestoreRoundTripsDedupWindow) {
  // Export/import preserves the window's insertion order, so the restored
  // station evicts the same oldest key the original would have.
  RevocationConfig c = config(1000, 1000);
  c.dedup_window = 3;
  BaseStation bs(c);
  bs.process_alert(1, 50, 100);
  bs.process_alert(2, 50, 101);
  bs.process_alert(3, 50, 102);

  BaseStation restored(c);
  restored.import_state(bs.export_state());
  EXPECT_EQ(restored.dedup_footprint(), 3u);
  EXPECT_EQ(restored.process_alert(2, 50, 101),
            AlertDisposition::kIgnoredDuplicate);
  // One new key evicts exactly the oldest (1, 50, 100).
  restored.process_alert(4, 50, 103);
  EXPECT_EQ(restored.dedup_footprint(), 3u);
  EXPECT_EQ(restored.process_alert(1, 50, 100), AlertDisposition::kAccepted);
}

}  // namespace
}  // namespace sld::revocation
