#include "detection/beacon_check.hpp"

#include <gtest/gtest.h>

#include "ranging/rssi.hpp"
#include "util/rng.hpp"

namespace sld::detection {
namespace {

TEST(ConsistencyCheck, ConsistentSignalPasses) {
  ConsistencyCheck check(4.0);
  // Detector at origin, beacon claims (100, 0), measured 102 ft: within
  // the 4 ft bound.
  EXPECT_FALSE(check.is_malicious({0, 0}, {100, 0}, 102.0));
  EXPECT_FALSE(check.is_malicious({0, 0}, {100, 0}, 98.0));
}

TEST(ConsistencyCheck, BoundaryIsNotMalicious) {
  ConsistencyCheck check(4.0);
  // Exactly the maximum error: the paper flags only *larger* differences.
  EXPECT_FALSE(check.is_malicious({0, 0}, {100, 0}, 104.0));
  EXPECT_FALSE(check.is_malicious({0, 0}, {100, 0}, 96.0));
}

TEST(ConsistencyCheck, InconsistentSignalFlagged) {
  ConsistencyCheck check(4.0);
  EXPECT_TRUE(check.is_malicious({0, 0}, {100, 0}, 104.5));
  EXPECT_TRUE(check.is_malicious({0, 0}, {100, 0}, 95.0));
  EXPECT_TRUE(check.is_malicious({0, 0}, {100, 0}, 0.0));
}

TEST(ConsistencyCheck, CalculatedDistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(ConsistencyCheck::calculated_distance({0, 0}, {3, 4}),
                   5.0);
}

TEST(ConsistencyCheck, HonestMeasurementsNeverFlagged) {
  // Soundness: an honest beacon with honest ranging can never be flagged,
  // for any geometry — zero false positives by construction.
  ConsistencyCheck check(4.0);
  ranging::RssiRangingModel rssi(ranging::RssiConfig{});
  util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const util::Vec2 detector{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const util::Vec2 beacon{detector.x + rng.uniform(-150, 150),
                            detector.y + rng.uniform(-150, 150)};
    const double measured =
        rssi.measure(util::distance(detector, beacon), rng);
    EXPECT_FALSE(check.is_malicious(detector, beacon, measured));
  }
}

TEST(ConsistencyCheck, LocationLiesBeyondBoundAreCaught) {
  // Completeness on the attack the paper draws in Figure 2: claiming
  // (x', y') while the measured distance reflects the true position.
  ConsistencyCheck check(4.0);
  ranging::RssiRangingModel rssi(ranging::RssiConfig{});
  util::Rng rng(2);
  int caught = 0, trials = 0;
  for (int i = 0; i < 5000; ++i) {
    const util::Vec2 detector{500, 500};
    const util::Vec2 true_pos{detector.x + rng.uniform(-100, 100),
                              detector.y + rng.uniform(-100, 100)};
    // Lie radially: push the claim straight away from the detector, which
    // changes the calculated distance by exactly the lie magnitude.
    const util::Vec2 delta = true_pos - detector;
    const double d = delta.norm();
    if (d < 1.0) continue;
    const double lie = 20.0;
    const util::Vec2 claimed = detector + delta * ((d + lie) / d);
    const double measured = rssi.measure(d, rng);
    ++trials;
    if (check.is_malicious(detector, claimed, measured)) ++caught;
  }
  EXPECT_EQ(caught, trials);  // 20 ft radial lie >> 4 ft bound: always caught
}

TEST(ConsistencyCheck, RangeManipulationCaught) {
  ConsistencyCheck check(4.0);
  ranging::RssiRangingModel rssi(ranging::RssiConfig{});
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double d = rng.uniform(10.0, 150.0);
    const double measured = rssi.measure_manipulated(d, 60.0, rng);
    EXPECT_TRUE(check.is_malicious({0, 0}, {d, 0}, measured));
  }
}

TEST(ConsistencyCheck, DistanceConsistentLieIsInvisibleAndHarmless) {
  // The paper's §2.1 argument: a lie that keeps the measured distance
  // consistent "is equivalent to ... a benign beacon node located at
  // (x', y')" — the check must NOT flag it.
  ConsistencyCheck check(4.0);
  const util::Vec2 detector{0, 0};
  const util::Vec2 claimed{60, 80};  // calculated distance = 100
  EXPECT_FALSE(check.is_malicious(detector, claimed, 100.0));
}

TEST(ConsistencyCheck, Validation) {
  EXPECT_THROW(ConsistencyCheck(-1.0), std::invalid_argument);
  ConsistencyCheck check(4.0);
  EXPECT_THROW(check.is_malicious({0, 0}, {1, 1}, -0.1),
               std::invalid_argument);
}

TEST(ConsistencyCheck, ZeroErrorBoundFlagsAnyDeviation) {
  ConsistencyCheck check(0.0);
  EXPECT_TRUE(check.is_malicious({0, 0}, {100, 0}, 100.001));
  EXPECT_FALSE(check.is_malicious({0, 0}, {100, 0}, 100.0));
}

}  // namespace
}  // namespace sld::detection
