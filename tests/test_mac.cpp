#include "crypto/mac.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sld::crypto {
namespace {

Key128 key_a() {
  Key128 k{};
  k[0] = 1;
  return k;
}

Key128 key_b() {
  Key128 k{};
  k[0] = 2;
  return k;
}

const std::vector<std::uint8_t> kPayload{10, 20, 30};

TEST(Mac, RoundTripVerifies) {
  const MacTag tag = compute_mac(key_a(), 1, 2, kPayload);
  EXPECT_TRUE(verify_mac(key_a(), 1, 2, kPayload, tag));
}

TEST(Mac, WrongKeyFails) {
  const MacTag tag = compute_mac(key_a(), 1, 2, kPayload);
  EXPECT_FALSE(verify_mac(key_b(), 1, 2, kPayload, tag));
}

TEST(Mac, TamperedPayloadFails) {
  const MacTag tag = compute_mac(key_a(), 1, 2, kPayload);
  std::vector<std::uint8_t> tampered = kPayload;
  tampered[0] ^= 1;
  EXPECT_FALSE(verify_mac(key_a(), 1, 2, tampered, tag));
}

TEST(Mac, AddressBindingPreventsSplicing) {
  const MacTag tag = compute_mac(key_a(), 1, 2, kPayload);
  // Same payload and key, different claimed endpoints: must fail.
  EXPECT_FALSE(verify_mac(key_a(), 3, 2, kPayload, tag));
  EXPECT_FALSE(verify_mac(key_a(), 1, 4, kPayload, tag));
  EXPECT_FALSE(verify_mac(key_a(), 2, 1, kPayload, tag));
}

TEST(Mac, EmptyPayloadSupported) {
  const std::vector<std::uint8_t> empty;
  const MacTag tag = compute_mac(key_a(), 5, 6, empty);
  EXPECT_TRUE(verify_mac(key_a(), 5, 6, empty, tag));
  EXPECT_FALSE(verify_mac(key_a(), 5, 6, kPayload, tag));
}

TEST(Mac, RandomGuessFails) {
  // An external attacker guessing tags (Figure 1a) is filtered out.
  const MacTag tag = compute_mac(key_a(), 1, 2, kPayload);
  EXPECT_FALSE(verify_mac(key_a(), 1, 2, kPayload, tag ^ 0x1));
  EXPECT_FALSE(verify_mac(key_a(), 1, 2, kPayload, 0));
}

}  // namespace
}  // namespace sld::crypto
