#include "core/secure_localization.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sld::core {
namespace {

/// A down-scaled deployment for fast tests (same density as the paper:
/// ~0.001 nodes/ft^2, 10% beacons, 10% of beacons malicious).
SystemConfig small_config() {
  SystemConfig c;
  c.deployment.total_nodes = 300;
  c.deployment.beacon_count = 30;
  c.deployment.malicious_beacon_count = 3;
  c.deployment.field = util::Rect::square(550.0);
  c.rtt_calibration_samples = 2000;
  c.seed = 11;
  return c;
}

TEST(SystemIntegration, NoAttackersNothingRevoked) {
  SystemConfig c = small_config();
  c.deployment.malicious_beacon_count = 0;
  c.paper_wormhole = false;
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_EQ(s.malicious_beacons, 0u);
  EXPECT_EQ(s.benign_revoked, 0u);
  EXPECT_EQ(s.raw.alerts_submitted, 0u);
  EXPECT_EQ(s.raw.consistency_flags, 0u);
  EXPECT_EQ(s.avg_affected_per_malicious, 0.0);
}

TEST(SystemIntegration, NoAttackersSensorsLocalizeAccurately) {
  SystemConfig c = small_config();
  c.deployment.malicious_beacon_count = 0;
  c.paper_wormhole = false;
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_GT(s.sensors_localized, s.sensors / 2);
  // Bounded 4 ft ranging noise: mean error must stay small.
  EXPECT_LT(s.mean_localization_error_ft, 10.0);
}

TEST(SystemIntegration, FullyAggressiveMaliciousBeaconsAreRevoked) {
  SystemConfig c = small_config();
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(1.0);
  c.paper_wormhole = false;
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  // P = 1: every probing benign neighbour detects; revocation is certain
  // unless a malicious beacon has almost no benign beacon neighbours.
  EXPECT_GE(s.detection_rate, 0.6);
  EXPECT_EQ(s.benign_revoked, 0u);
  // Revoked beacons' signals are not used: impact collapses.
  EXPECT_LT(s.avg_affected_per_malicious, 10.0);
}

TEST(SystemIntegration, DormantMaliciousBeaconsStayHidden) {
  SystemConfig c = small_config();
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.0);
  c.paper_wormhole = false;
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_EQ(s.malicious_revoked, 0u);
  EXPECT_EQ(s.avg_affected_per_malicious, 0.0);  // dormant = harmless
}

TEST(SystemIntegration, DeterministicForSameSeed) {
  SystemConfig c = small_config();
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.5);
  SecureLocalizationSystem a(c), b(c);
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sa.malicious_revoked, sb.malicious_revoked);
  EXPECT_EQ(sa.benign_revoked, sb.benign_revoked);
  EXPECT_EQ(sa.raw.alerts_submitted, sb.raw.alerts_submitted);
  EXPECT_EQ(sa.affected_sensor_references, sb.affected_sensor_references);
  EXPECT_DOUBLE_EQ(sa.mean_localization_error_ft,
                   sb.mean_localization_error_ft);
}

TEST(SystemIntegration, RunTwiceRejected) {
  SecureLocalizationSystem system(small_config());
  system.run();
  EXPECT_THROW(system.run(), std::logic_error);
}

TEST(SystemIntegration, WormholeAloneCausesNoRevocations) {
  // Benign-only network with the paper wormhole: the detector catches 90%
  // of tunneled probes and tau2 = 2 absorbs the rest; benign beacons
  // should (almost) never be revoked. We assert none for this seed.
  SystemConfig c = small_config();
  c.deployment.total_nodes = 1000;
  c.deployment.beacon_count = 100;
  c.deployment.malicious_beacon_count = 0;
  c.deployment.field = util::Rect::square(1000.0);
  c.paper_wormhole = true;
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_LE(s.benign_revoked, 1u);
  // Sensors near the wormhole mouths discard most tunneled references.
  EXPECT_GT(s.raw.sensor_discarded_wormhole, 0u);
}

TEST(SystemIntegration, CollusionRevokesBoundedBenignSet) {
  SystemConfig c = small_config();
  c.deployment.total_nodes = 1000;
  c.deployment.beacon_count = 100;
  c.deployment.malicious_beacon_count = 10;
  c.deployment.field = util::Rect::square(1000.0);
  c.collusion = true;
  c.paper_wormhole = false;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.0);
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  // Paper bound: N_a (tau1+1) / (tau2+1) = 10 * 11 / 3 ~ 36.7.
  EXPECT_GE(s.benign_revoked, 30u);
  EXPECT_LE(s.benign_revoked, 40u);
  EXPECT_GT(s.raw.collusion_alerts_submitted, 0u);
}

TEST(SystemIntegration, MoreDetectingIdsImproveDetection) {
  SystemConfig c = small_config();
  c.deployment.total_nodes = 600;
  c.deployment.beacon_count = 60;
  c.deployment.malicious_beacon_count = 6;
  c.deployment.field = util::Rect::square(800.0);
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.15);
  c.paper_wormhole = false;

  ExperimentConfig weak{c, 4};
  weak.base.detecting_ids = 1;
  ExperimentConfig strong{c, 4};
  strong.base.detecting_ids = 8;
  const auto weak_result = run_experiment(weak);
  const auto strong_result = run_experiment(strong);
  EXPECT_GT(strong_result.detection_rate.mean(),
            weak_result.detection_rate.mean());
}

TEST(SystemIntegration, ProbesAreAnsweredAndMeasured) {
  SystemConfig c = small_config();
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_GT(s.raw.probes_sent, 0u);
  EXPECT_GT(s.raw.probe_replies, 0u);
  EXPECT_LE(s.raw.probe_replies, s.raw.probes_sent);
  EXPECT_GT(s.raw.sensor_requests, 0u);
  EXPECT_GT(s.raw.sensor_replies, 0u);
  EXPECT_EQ(s.raw.mac_failures, 0u);  // all traffic is authenticated
}

TEST(SystemIntegration, RttCalibrationMatchesFigure4Band) {
  SecureLocalizationSystem system(small_config());
  const auto s = system.run();
  // Empirical x_max from the Figure-4 calibration sits inside, but near,
  // the theoretical 7124-cycle envelope edge.
  EXPECT_GT(s.rtt_x_max_cycles, 6800.0);
  EXPECT_LE(s.rtt_x_max_cycles, 7130.0);
}

TEST(SystemIntegration, SummaryRatesConsistent) {
  SystemConfig c = small_config();
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.7);
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_NEAR(s.detection_rate,
              static_cast<double>(s.malicious_revoked) /
                  static_cast<double>(s.malicious_beacons),
              1e-12);
  EXPECT_NEAR(s.false_positive_rate,
              static_cast<double>(s.benign_revoked) /
                  static_cast<double>(s.benign_beacons),
              1e-12);
  EXPECT_EQ(s.sensors, s.sensors_localized + s.sensors_unlocalized);
}

TEST(SystemIntegration, GeographicLeashDetectorWorksEndToEnd) {
  // Swap the paper's p_d abstraction for the concrete geographic leash:
  // detecting beacons (who know their positions) catch every wormhole
  // crossing deterministically, so no benign beacon is ever revoked, and
  // malicious detection still works.
  SystemConfig c = small_config();
  c.deployment.total_nodes = 1000;
  c.deployment.beacon_count = 100;
  c.deployment.malicious_beacon_count = 10;
  c.deployment.field = util::Rect::square(1000.0);
  c.wormhole_detector_type =
      SystemConfig::WormholeDetectorType::kGeographicLeash;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.6);
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_EQ(s.benign_revoked, 0u);  // leash never misses a tunnel crossing
  EXPECT_GE(s.detection_rate, 0.6);
}

TEST(SystemIntegration, SlowWormholeCaughtByRttStage) {
  // A store-and-forward wormhole (one packet of latency per crossing)
  // with the wormhole detector fully disabled: the RTT stage alone must
  // keep benign beacons safe and make sensors drop the tunnelled
  // references — the §2.2.2 defence-in-depth path.
  SystemConfig c = small_config();
  c.deployment.total_nodes = 1000;
  c.deployment.beacon_count = 100;
  c.deployment.malicious_beacon_count = 0;
  c.deployment.field = util::Rect::square(1000.0);
  c.wormhole_detection_rate = 0.0;  // detector blind
  c.paper_wormhole = false;
  // Same mouths as the paper's wormhole, but slow (roughly one packet of
  // air time per crossing, like a real store-and-forward device).
  sim::WormholeLink link;
  link.mouth_a = {100, 100};
  link.mouth_b = {800, 700};
  link.exit_range_ft = c.deployment.comm_range_ft;
  link.extra_delay_cycles = 64.0 * 8.0 * sim::kCyclesPerBit;
  c.custom_wormholes.push_back(link);
  SecureLocalizationSystem system(c);

  const auto s = system.run();
  EXPECT_GT(s.channel.wormhole_deliveries, 0u);
  EXPECT_EQ(s.benign_revoked, 0u);
  EXPECT_EQ(s.raw.alerts_submitted, 0u);  // all flagged signals -> RTT stage
  EXPECT_GT(s.raw.probe_ignored_local_replay, 0u);
  EXPECT_GT(s.raw.sensor_discarded_rtt, 0u);
}

TEST(SystemIntegration, ToaRangingWorksEndToEnd) {
  // §2.3: the detector works with any bounded-error distance feature.
  // Swap RSSI for ToA and the whole pipeline must still function.
  SystemConfig c = small_config();
  c.ranging_type = RangingType::kToa;
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.8);
  c.paper_wormhole = false;
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_GE(s.detection_rate, 0.5);
  EXPECT_EQ(s.benign_revoked, 0u);
  EXPECT_GT(s.sensors_localized, s.sensors / 2);
  EXPECT_LT(s.mean_localization_error_ft, 10.0);
}

TEST(SystemIntegration, LossyRadioDegradesGracefully) {
  // Failure injection: 25% of deliveries dropped. The system must still
  // run to completion, lose some probes/replies, and detect less often —
  // but never crash or revoke benign beacons spuriously.
  SystemConfig c = small_config();
  c.deployment.total_nodes = 600;
  c.deployment.beacon_count = 60;
  c.deployment.malicious_beacon_count = 6;
  c.deployment.field = util::Rect::square(800.0);
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.5);
  c.paper_wormhole = false;

  ExperimentConfig lossless{c, 3};
  ExperimentConfig lossy{c, 3};
  lossy.base.channel_loss_probability = 0.25;

  const auto clean = run_experiment(lossless);
  const auto degraded = run_experiment(lossy);
  EXPECT_LE(degraded.detection_rate.mean(), clean.detection_rate.mean());
  EXPECT_GT(degraded.detection_rate.mean(), 0.0);
  EXPECT_LT(degraded.false_positive_rate.mean(), 0.05);
}

TEST(SystemIntegration, AlertLogMatchesCounters) {
  SystemConfig c = small_config();
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.8);
  SecureLocalizationSystem system(c);
  const auto s = system.run();
  EXPECT_EQ(s.raw.alert_log.size(),
            s.raw.alerts_submitted + s.raw.collusion_alerts_submitted);
  for (const auto& a : s.raw.alert_log) {
    EXPECT_TRUE(sim::is_beacon_id(a.reporter));
    EXPECT_TRUE(sim::is_beacon_id(a.target));
    EXPECT_FALSE(a.collusion);  // collusion disabled in this config
  }
}

TEST(SystemIntegration, DetectionImprovesLocalizationUnderAttack) {
  // The headline end-to-end claim: with the same deployment and the same
  // attackers, enabling the detection + revocation pipeline improves the
  // sensors' localization accuracy.
  SystemConfig attacked = small_config();
  attacked.deployment.total_nodes = 1000;
  attacked.deployment.beacon_count = 100;
  attacked.deployment.malicious_beacon_count = 15;
  attacked.deployment.field = util::Rect::square(1000.0);
  attacked.strategy =
      attack::MaliciousStrategyConfig::with_effectiveness(0.9);
  attacked.paper_wormhole = false;
  SystemConfig defended = attacked;  // identical seed -> same deployment
  attacked.revocation.alert_threshold = 1000000;  // revocation off

  SecureLocalizationSystem off(attacked), on(defended);
  const auto s_off = off.run();
  const auto s_on = on.run();
  EXPECT_GT(s_off.mean_localization_error_ft,
            2.0 * s_on.mean_localization_error_ft);
  EXPECT_GT(s_off.avg_affected_per_malicious,
            s_on.avg_affected_per_malicious);
  EXPECT_GT(s_on.detection_rate, 0.7);
}

TEST(SystemIntegration, PartialDisseminationLeavesResidualDamage) {
  // Paper §3.2 assumes revocations reach "most" sensors via
  // retransmission; if only half learn them, roughly half the revoked
  // beacons' signals stay in use — N' rises accordingly.
  SystemConfig c = small_config();
  c.deployment.total_nodes = 1000;
  c.deployment.beacon_count = 100;
  c.deployment.malicious_beacon_count = 10;
  c.deployment.field = util::Rect::square(1000.0);
  c.strategy = attack::MaliciousStrategyConfig::with_effectiveness(0.8);
  c.paper_wormhole = false;

  ExperimentConfig full{c, 3};
  ExperimentConfig partial{c, 3};
  partial.base.revocation_reach_probability = 0.3;
  const auto full_agg = run_experiment(full);
  const auto partial_agg = run_experiment(partial);
  EXPECT_GT(partial_agg.affected_per_malicious.mean(),
            full_agg.affected_per_malicious.mean());
}

TEST(Experiment, AggregatesRequestedTrials) {
  ExperimentConfig e{small_config(), 3};
  e.keep_trial_summaries = true;
  const auto agg = run_experiment(e);
  EXPECT_EQ(agg.detection_rate.count(), 3u);
  EXPECT_EQ(agg.trials.size(), 3u);
}

TEST(Experiment, ModelParamsMirrorConfig) {
  const SystemConfig c = small_config();
  const auto p = model_params_for(c, 12.4);
  EXPECT_EQ(p.total_nodes, c.deployment.total_nodes);
  EXPECT_EQ(p.beacon_count, c.deployment.beacon_count);
  EXPECT_EQ(p.malicious_count, c.deployment.malicious_beacon_count);
  EXPECT_EQ(p.requesters_per_beacon, 12u);
  EXPECT_EQ(p.wormhole_count, 1u);  // paper wormhole on by default
  EXPECT_EQ(p.detecting_ids, c.detecting_ids);
}

}  // namespace
}  // namespace sld::core
