// Properties of the simulation substrate: scheduler event ordering and the
// run_until boundary, packet conservation under arbitrary fault plans, ARQ
// backoff arithmetic, Gilbert-Elliott stationary statistics, and wire
// payload serialize/parse roundtrips.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prop/generators.hpp"
#include "prop/prop.hpp"
#include "sim/arq.hpp"
#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace sld;

TEST(SimProperty, SchedulerExecutesInNondecreasingTimeOrder) {
  EXPECT_TRUE(prop::forall(
      "events run in time order",
      prop::vector_of(prop::int_range(0, 1'000'000), 1, 40),
      [](const std::vector<std::int64_t>& times) {
        sim::Scheduler scheduler;
        std::vector<sim::SimTime> executed;
        for (const auto t : times)
          scheduler.schedule_at(t, [&executed, &scheduler]() {
            executed.push_back(scheduler.now());
          });
        scheduler.run();
        if (executed.size() != times.size()) return false;
        for (std::size_t i = 1; i < executed.size(); ++i)
          if (executed[i] < executed[i - 1]) return false;
        return true;
      }));
}

TEST(SimProperty, RunUntilNeverExecutesPastTheBoundary) {
  struct Case {
    std::vector<std::int64_t> times;
    std::int64_t until;
  };
  prop::Gen<Case> gen;
  const auto times_gen = prop::vector_of(prop::int_range(0, 1000), 1, 30);
  gen.generate = [times_gen](util::Rng& rng) {
    Case c;
    c.times = times_gen.generate(rng);
    c.until = rng.uniform_int(0, 1000);
    return c;
  };
  EXPECT_TRUE(prop::forall(
      "run_until(t) executes exactly the events with when <= t", gen,
      [](const Case& c) {
        sim::Scheduler scheduler;
        std::size_t ran = 0;
        for (const auto t : c.times)
          scheduler.schedule_at(t, [&ran]() { ++ran; });
        scheduler.run_until(c.until);
        std::size_t expected = 0;
        for (const auto t : c.times)
          if (t <= c.until) ++expected;
        return ran == expected && scheduler.now() >= c.until;
      }));
}

TEST(SimProperty, PacketConservationUnderArbitraryFaults) {
  // Fire random traffic through random fault plans and check the stats
  // conservation law on the public counters (the channel's own
  // SLD_INVARIANT re-checks it after every delivery in checking builds).
  struct Case {
    sim::FaultPlan plan;
    std::size_t nodes;
    std::size_t packets;
  };
  prop::Gen<Case> gen;
  const auto plan_gen = prop::fault_plan();
  gen.generate = [plan_gen](util::Rng& rng) {
    Case c;
    c.plan = plan_gen.generate(rng);
    c.nodes = 2 + static_cast<std::size_t>(rng.uniform_u64(8));
    c.packets = 1 + static_cast<std::size_t>(rng.uniform_u64(60));
    return c;
  };
  gen.show = [plan_gen](const Case& c) {
    std::ostringstream os;
    os << "{plan=" << plan_gen.describe(c.plan) << " nodes=" << c.nodes
       << " packets=" << c.packets << "}";
    return os.str();
  };

  class SinkNode final : public sim::Node {
   public:
    using Node::Node;
    void on_message(const sim::Delivery&) override {}
  };

  EXPECT_TRUE(prop::forall(
      "deliveries + losses + fault_drops + crashed_rx == attempts + dups",
      gen, [](const Case& c, util::Rng& rng) {
        sim::ChannelConfig config;
        config.faults = c.plan;
        sim::Network net(config, rng());
        std::vector<SinkNode*> nodes;
        for (std::size_t i = 0; i < c.nodes; ++i)
          // One tight cluster: everyone hears everyone.
          nodes.push_back(&net.emplace_node<SinkNode>(
              static_cast<sim::NodeId>(i + 1),
              util::Vec2{static_cast<double>(i), 0.0}, 150.0));
        for (std::size_t i = 0; i < c.packets; ++i) {
          const auto& src = *nodes[rng.uniform_u64(nodes.size())];
          const auto& dst = *nodes[rng.uniform_u64(nodes.size())];
          if (src.id() == dst.id()) continue;
          sim::Message msg;
          msg.src = src.id();
          msg.dst = dst.id();
          msg.type = sim::MsgType::kAppData;
          msg.payload = {0xab, 0xcd};
          net.channel().unicast(src, std::move(msg));
          net.run();
        }
        const auto& s = net.channel().stats();
        return s.deliveries + s.losses + s.dropped_by_fault +
                   s.crashed_rx_drops ==
               s.delivery_attempts + s.duplicates &&
               s.crashed_drops == s.crashed_tx_drops + s.crashed_rx_drops;
      }));
}

TEST(SimProperty, ArqTimeoutArithmetic) {
  // Zero jitter: timeout == initial * backoff^attempt exactly; with jitter
  // the draw stays inside the +-fraction envelope; both are monotone in
  // the attempt index (for backoff > 1).
  struct Case {
    sim::ArqConfig config;
    std::size_t attempt;
  };
  prop::Gen<Case> gen;
  gen.generate = [](util::Rng& rng) {
    Case c;
    c.config.initial_timeout_ns =
        static_cast<sim::SimTime>(1 + rng.uniform_u64(500'000'000));
    c.config.backoff_factor = rng.uniform(1.0, 3.0);
    c.config.jitter_fraction = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 0.5);
    c.config.max_retries = 8;
    c.attempt = static_cast<std::size_t>(rng.uniform_u64(7));
    return c;
  };
  EXPECT_TRUE(prop::forall(
      "arq_timeout = initial * backoff^attempt (+- jitter)", gen,
      [](const Case& c, util::Rng& rng) {
        const double exact =
            static_cast<double>(c.config.initial_timeout_ns) *
            std::pow(c.config.backoff_factor,
                     static_cast<double>(c.attempt));
        const auto t = sim::arq_timeout(c.config, c.attempt, rng);
        if (c.config.jitter_fraction == 0.0)
          return t == static_cast<sim::SimTime>(exact);
        const double lo = exact * (1.0 - c.config.jitter_fraction);
        const double hi = exact * (1.0 + c.config.jitter_fraction);
        return static_cast<double>(t) >= lo - 1.0 &&
               static_cast<double>(t) <= hi + 1.0;
      }));
}

TEST(SimProperty, GilbertElliottForAverageLossHitsTheTargets) {
  struct Case {
    double target_loss;
    double burst_len;
  };
  prop::Gen<Case> gen;
  gen.generate = [](util::Rng& rng) {
    return Case{rng.uniform(0.005, 0.5), rng.uniform(1.0, 10.0)};
  };
  EXPECT_TRUE(prop::forall(
      "stationary loss == target, mean burst == requested", gen,
      [](const Case& c) {
        const auto ge = sim::GilbertElliottConfig::for_average_loss(
            c.target_loss, c.burst_len);
        if (!ge.enabled()) return false;
        const double stationary =
            ge.p_enter_bad / (ge.p_enter_bad + ge.p_exit_bad);
        const double loss =
            stationary * ge.loss_bad + (1.0 - stationary) * ge.loss_good;
        const double mean_burst = 1.0 / ge.p_exit_bad;
        return std::abs(loss - c.target_loss) < 1e-9 &&
               std::abs(mean_burst - c.burst_len) < 1e-6 &&
               ge.p_enter_bad > 0.0 && ge.p_enter_bad <= 1.0 &&
               ge.p_exit_bad > 0.0 && ge.p_exit_bad <= 1.0;
      }));
}

TEST(SimProperty, PayloadSerializeParseRoundtrips) {
  EXPECT_TRUE(prop::forall(
      "BeaconRequestPayload roundtrip", prop::beacon_request_payload(),
      [](const sim::BeaconRequestPayload& p) {
        return sim::BeaconRequestPayload::parse(p.serialize()).nonce == p.nonce;
      }));
  EXPECT_TRUE(prop::forall(
      "BeaconReplyPayload roundtrip", prop::beacon_reply_payload(),
      [](const sim::BeaconReplyPayload& p) {
        const auto q = sim::BeaconReplyPayload::parse(p.serialize());
        return q.nonce == p.nonce && q.claimed_position == p.claimed_position &&
               q.processing_bias_cycles == p.processing_bias_cycles &&
               q.range_manipulation_ft == p.range_manipulation_ft &&
               q.fake_wormhole_indication == p.fake_wormhole_indication;
      }));
  EXPECT_TRUE(prop::forall(
      "AlertPayload roundtrip", prop::alert_payload(),
      [](const sim::AlertPayload& p) {
        const auto q = sim::AlertPayload::parse(p.serialize());
        return q.reporter == p.reporter && q.target == p.target;
      }));
  EXPECT_TRUE(prop::forall(
      "RevocationPayload roundtrip", prop::revocation_payload(),
      [](const sim::RevocationPayload& p) {
        return sim::RevocationPayload::parse(p.serialize()).revoked == p.revoked;
      }));
}

}  // namespace
