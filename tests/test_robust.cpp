#include "localization/robust.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sld::localization {
namespace {

LocationReferences honest_refs(const util::Vec2& truth, util::Rng& rng,
                               std::size_t count) {
  LocationReferences refs;
  for (std::uint32_t i = 0; i < count; ++i) {
    const util::Vec2 b{truth.x + rng.uniform(-140, 140),
                       truth.y + rng.uniform(-140, 140)};
    refs.push_back({i, b, util::distance(truth, b) + rng.uniform(-4, 4)});
  }
  return refs;
}

TEST(Robust, CleanDataNeedsNoDiscards) {
  util::Rng rng(1);
  const util::Vec2 truth{500, 500};
  const auto refs = honest_refs(truth, rng, 6);
  const auto result = robust_multilateration(refs);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->discarded.empty());
  EXPECT_LT(util::distance(result->fit.position, truth), 10.0);
}

TEST(Robust, DiscardsSingleOutlier) {
  util::Rng rng(2);
  const util::Vec2 truth{500, 500};
  auto refs = honest_refs(truth, rng, 6);
  refs.push_back({99, {560, 500}, 250.0});  // massive distance lie
  const auto result = robust_multilateration(refs);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->discarded.size(), 1u);
  EXPECT_EQ(result->discarded[0], 6u);  // original index of the outlier
  EXPECT_LT(util::distance(result->fit.position, truth), 10.0);
}

TEST(Robust, DiscardsMultipleOutliers) {
  util::Rng rng(3);
  const util::Vec2 truth{500, 500};
  auto refs = honest_refs(truth, rng, 8);
  refs.push_back({90, {400, 400}, 300.0});
  refs.push_back({91, {600, 600}, 280.0});
  const auto result = robust_multilateration(refs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->discarded.size(), 2u);
  EXPECT_LT(util::distance(result->fit.position, truth), 10.0);
}

TEST(Robust, RespectsMinReferences) {
  util::Rng rng(4);
  const util::Vec2 truth{500, 500};
  auto refs = honest_refs(truth, rng, 3);
  refs[0].measured_distance_ft += 300.0;  // poison one of only three
  RobustOptions opt;
  opt.min_references = 3;
  const auto result = robust_multilateration(refs, opt);
  // With only three references nothing can be dropped; the fit is bad but
  // reported rather than silently reduced below a solvable system.
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->discarded.empty());
  EXPECT_GT(result->fit.rms_residual_ft, opt.acceptable_rms_ft);
}

TEST(Robust, OptionValidation) {
  RobustOptions bad;
  bad.min_references = 2;
  EXPECT_THROW(robust_multilateration({}, bad), std::invalid_argument);
  bad = RobustOptions{};
  bad.acceptable_rms_ft = 0.0;
  EXPECT_THROW(robust_multilateration({}, bad), std::invalid_argument);
}

TEST(Robust, UnsolvableInputGivesNothing) {
  EXPECT_FALSE(robust_multilateration({}).has_value());
}

TEST(Robust, QuantifiesResidualVulnerability) {
  // With a majority of colluding liars pulling to the same fake point the
  // residual filter can be defeated — the reason detection/revocation is
  // still needed even with a robust estimator (paper §1 motivation).
  util::Rng rng(5);
  const util::Vec2 truth{500, 500};
  const util::Vec2 fake{700, 700};
  LocationReferences refs;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const util::Vec2 b{truth.x + rng.uniform(-140, 140),
                       truth.y + rng.uniform(-140, 140)};
    refs.push_back({i, b, util::distance(truth, b)});
  }
  for (std::uint32_t i = 10; i < 17; ++i) {
    const util::Vec2 b{truth.x + rng.uniform(-140, 140),
                       truth.y + rng.uniform(-140, 140)};
    refs.push_back({i, b, util::distance(fake, b)});  // coordinated lie
  }
  const auto result = robust_multilateration(refs);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(util::distance(result->fit.position, fake), 50.0);
}

}  // namespace
}  // namespace sld::localization
