#include "revocation/dissemination.hpp"

#include <gtest/gtest.h>

namespace sld::revocation {
namespace {

TEST(Dissemination, CertainDeliveryReachesEveryone) {
  DisseminationModel model(1.0, 1);
  for (sim::NodeId s = 0; s < 100; ++s)
    for (sim::NodeId b = 0; b < 10; ++b)
      EXPECT_TRUE(model.sensor_knows(s, b));
}

TEST(Dissemination, ZeroDeliveryReachesNoOne) {
  DisseminationModel model(0.0, 1);
  for (sim::NodeId s = 0; s < 100; ++s)
    EXPECT_FALSE(model.sensor_knows(s, 1));
}

TEST(Dissemination, FractionalRateApproximatelyHonored) {
  DisseminationModel model(0.8, 7);
  int knows = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (model.sensor_knows(static_cast<sim::NodeId>(i), 3)) ++knows;
  EXPECT_NEAR(static_cast<double>(knows) / kN, 0.8, 0.01);
}

TEST(Dissemination, DecisionIsStablePerPair) {
  DisseminationModel model(0.5, 9);
  for (sim::NodeId s = 0; s < 200; ++s) {
    const bool first = model.sensor_knows(s, 4);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(model.sensor_knows(s, 4), first);
  }
}

TEST(Dissemination, IndependentAcrossRevocations) {
  DisseminationModel model(0.5, 10);
  int differ = 0;
  for (sim::NodeId s = 0; s < 1000; ++s)
    if (model.sensor_knows(s, 1) != model.sensor_knows(s, 2)) ++differ;
  EXPECT_GT(differ, 300);
}

TEST(Dissemination, RejectsBadProbability) {
  EXPECT_THROW(DisseminationModel(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(DisseminationModel(1.1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sld::revocation
