#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sld::sim {
namespace {

class CountingNode final : public Node {
 public:
  using Node::Node;
  void start() override { ++started; }
  void on_message(const Delivery&) override { ++received; }
  int started = 0;
  int received = 0;
};

TEST(Network, NodeLookup) {
  Network net;
  auto& a = net.emplace_node<CountingNode>(1, util::Vec2{0, 0}, 100.0);
  EXPECT_EQ(net.node(1), &a);
  EXPECT_EQ(net.node(99), nullptr);
  EXPECT_EQ(net.node_count(), 1u);
}

TEST(Network, StartAllInvokesEveryNode) {
  Network net;
  auto& a = net.emplace_node<CountingNode>(1, util::Vec2{0, 0}, 100.0);
  auto& b = net.emplace_node<CountingNode>(2, util::Vec2{1, 0}, 100.0);
  net.start_all();
  EXPECT_EQ(a.started, 1);
  EXPECT_EQ(b.started, 1);
}

TEST(Network, DirectNeighborsRespectRange) {
  Network net;
  net.emplace_node<CountingNode>(1, util::Vec2{0, 0}, 100.0);
  net.emplace_node<CountingNode>(2, util::Vec2{50, 0}, 100.0);
  net.emplace_node<CountingNode>(3, util::Vec2{150, 0}, 100.0);
  const auto n1 = net.direct_neighbors(1);
  EXPECT_EQ(n1, (std::vector<NodeId>{2}));
  const auto n2 = net.direct_neighbors(2);
  EXPECT_EQ(n2.size(), 2u);
}

TEST(Network, ConnectedNodesIncludeWormholePeers) {
  Network net;
  net.emplace_node<CountingNode>(1, util::Vec2{0, 0}, 100.0);
  net.emplace_node<CountingNode>(2, util::Vec2{900, 900}, 100.0);
  WormholeLink link;
  link.mouth_a = {10, 0};
  link.mouth_b = {890, 900};
  link.exit_range_ft = 100.0;
  net.channel().add_wormhole(link);
  const auto connected = net.connected_nodes(1);
  EXPECT_NE(std::find(connected.begin(), connected.end(), 2u),
            connected.end());
  EXPECT_TRUE(net.direct_neighbors(1).empty());
}

TEST(Network, NeighborQueriesValidateId) {
  Network net;
  EXPECT_THROW(net.direct_neighbors(1), std::invalid_argument);
  EXPECT_THROW(net.connected_nodes(1), std::invalid_argument);
}

TEST(Network, RunExecutesScheduledEvents) {
  Network net;
  int fired = 0;
  net.scheduler().schedule_at(10, [&]() { ++fired; });
  EXPECT_EQ(net.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(Network, NodesListPreservesRegistrationOrder) {
  Network net;
  net.emplace_node<CountingNode>(3, util::Vec2{0, 0}, 100.0);
  net.emplace_node<CountingNode>(1, util::Vec2{0, 0}, 100.0);
  net.emplace_node<CountingNode>(2, util::Vec2{0, 0}, 100.0);
  ASSERT_EQ(net.nodes().size(), 3u);
  EXPECT_EQ(net.nodes()[0]->id(), 3u);
  EXPECT_EQ(net.nodes()[1]->id(), 1u);
  EXPECT_EQ(net.nodes()[2]->id(), 2u);
}

TEST(Node, AttachValidation) {
  CountingNode n(1, {0, 0}, 100.0);
  EXPECT_THROW(n.attach(nullptr, nullptr), std::invalid_argument);
}

TEST(Node, RejectsNonPositiveRange) {
  EXPECT_THROW(CountingNode(1, util::Vec2{0, 0}, 0.0), std::invalid_argument);
  EXPECT_THROW(CountingNode(1, util::Vec2{0, 0}, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace sld::sim
