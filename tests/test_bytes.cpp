#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace sld::util {
namespace {

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  const Bytes expected{0x34, 0x12, 0xef, 0xbe, 0xad, 0xde};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteRoundTrip, AllScalarTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xcdef);
  w.u32(0x01234567);
  w.u64(0x89abcdef01234567ULL);
  w.i64(-42);
  w.f64(3.14159);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xcdef);
  EXPECT_EQ(r.u32(), 0x01234567u);
  EXPECT_EQ(r.u64(), 0x89abcdef01234567ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteRoundTrip, DoubleSpecialValues) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  ByteReader r(w.data());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(ByteRoundTrip, SizedBytes) {
  ByteWriter w;
  const Bytes blob{1, 2, 3, 4, 5};
  w.sized_bytes(blob);
  w.u8(0xff);
  ByteReader r(w.data());
  EXPECT_EQ(r.sized_bytes(), blob);
  EXPECT_EQ(r.u8(), 0xff);
}

TEST(ByteReader, ThrowsOnTruncation) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_THROW(r.u32(), TruncatedBuffer);
}

TEST(ByteReader, ThrowsOnTruncatedSizedBytes) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow, but none do
  ByteReader r(w.data());
  EXPECT_THROW(r.sized_bytes(), TruncatedBuffer);
}

TEST(ByteReader, RemainingTracksPosition) {
  ByteWriter w;
  w.u64(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.u8(9);
  const Bytes taken = w.take();
  EXPECT_EQ(taken, Bytes{9});
}

TEST(ToHex, RendersLowercasePairs) {
  const Bytes data{0x00, 0xff, 0x1a};
  EXPECT_EQ(to_hex(data), "00ff1a");
  EXPECT_EQ(to_hex(Bytes{}), "");
}

}  // namespace
}  // namespace sld::util
