#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sld::util {
namespace {

TEST(Table, CsvOutputShape) {
  Table t({"x", "name", "value"});
  t.row().cell(1).cell("alpha").cell(0.5);
  t.row().cell(2).cell("beta").cell(1.25);
  std::ostringstream os;
  t.print_csv(os, "demo");
  EXPECT_EQ(os.str(),
            "# demo\n"
            "x,name,value\n"
            "1,alpha,0.5\n"
            "2,beta,1.25\n");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell(1);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, ScientificForExtremeDoubles) {
  Table t({"v"});
  t.row().cell(1e-9);
  std::ostringstream os;
  t.print_csv(os, "sci");
  EXPECT_NE(os.str().find("e-09"), std::string::npos);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell(1), std::logic_error);
}

TEST(Table, RejectsMisshapenRowAtPrint) {
  Table t({"a", "b"});
  t.row().cell(1);  // missing second cell
  std::ostringstream os;
  EXPECT_THROW(t.print_csv(os, "bad"), std::logic_error);
}

TEST(Table, Rfc4180QuotesSpecialCells) {
  Table t({"label", "note, with comma"});
  t.row().cell("plain").cell("says \"hi\"");
  t.row().cell("multi\nline").cell("trailing\r");
  std::ostringstream os;
  t.print_csv(os, "quoting");
  EXPECT_EQ(os.str(),
            "# quoting\n"
            "label,\"note, with comma\"\n"
            "plain,\"says \"\"hi\"\"\"\n"
            "\"multi\nline\",\"trailing\r\"\n");
}

TEST(Table, Rfc4180LeavesPlainCellsUnquoted) {
  Table t({"a", "b"});
  t.row().cell("x y").cell(3);
  std::ostringstream os;
  t.print_csv(os, "plain");
  EXPECT_EQ(os.str(),
            "# plain\n"
            "a,b\n"
            "x y,3\n");
}

}  // namespace
}  // namespace sld::util
