// Statistics utilities: running moments, empirical CDFs, and numerically
// stable binomial tail probabilities (log-gamma based) used by the
// analytical model in `sld::analysis`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sld::util {

/// Welford running mean / variance accumulator.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical cumulative distribution built from a sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// Smallest sample value q with F(q) >= p, p in [0, 1].
  double quantile(double p) const;

  /// Paper notation: largest x with F(x) = 0 (i.e. the sample minimum; all
  /// observed values exceed it or equal it).
  double x_min() const;
  /// Paper notation: smallest x with F(x) = 1 (the sample maximum).
  double x_max() const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Zipf(s) sampler over ranks 0..K-1: rank r is drawn with probability
/// proportional to 1/(r+1)^s. The CDF is precomputed once, so sampling is
/// a single uniform draw plus a binary search and the mapping from draw to
/// rank is deterministic and monotone.
class ZipfSampler {
 public:
  /// Requires ranks >= 1 and exponent > 0; throws std::invalid_argument
  /// otherwise.
  ZipfSampler(std::size_t ranks, double exponent);

  std::size_t size() const { return cdf_.size(); }

  /// Maps u in [0, 1) to a rank (0 is the most popular).
  std::size_t sample(double u01) const;

 private:
  std::vector<double> cdf_;
};

/// ln Gamma(x) for x > 0 (Lanczos approximation, ~1e-13 relative error).
double log_gamma(double x);

/// ln C(n, k); requires 0 <= k <= n.
double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// Binomial pmf P[X = k] for X ~ Bin(n, p), computed in log space.
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// Upper tail P[X > k] for X ~ Bin(n, p) (strictly greater).
double binomial_tail_above(std::uint64_t n, std::uint64_t k, double p);

/// Lower tail P[X <= k] for X ~ Bin(n, p).
double binomial_cdf(std::uint64_t n, std::uint64_t k, double p);

/// Maximizes a unimodal-ish f over [lo, hi] with a grid of `coarse` points
/// followed by golden-section refinement around the best cell. Returns the
/// argmax. Robust enough for the attacker's one-dimensional P sweep.
double argmax_scalar(double lo, double hi, std::size_t coarse,
                     double (*f)(double, const void*), const void* ctx);

}  // namespace sld::util
