// Little-endian byte serialization for wire messages. Kept deliberately
// simple: fixed-width integers, doubles (IEEE-754 bit pattern), and raw
// byte spans. Reads are bounds-checked and throw on truncation, which the
// message layer converts into "malformed packet, drop".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace sld::util {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by ByteReader when a read runs past the end of the buffer.
class TruncatedBuffer : public std::runtime_error {
 public:
  TruncatedBuffer() : std::runtime_error("truncated buffer") {}
};

/// Appends little-endian encoded values to a growing byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) byte string.
  void sized_bytes(std::span<const std::uint8_t> data);

  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

/// Reads little-endian encoded values from a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  Bytes bytes(std::size_t n);
  /// Length-prefixed (u32) byte string.
  Bytes sized_bytes();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw TruncatedBuffer();
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex rendering for debugging / logging.
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace sld::util
