// Planar geometry primitives used throughout the simulator and the
// localization code. Coordinates are in feet, matching the paper's units.
#pragma once

#include <cmath>
#include <iosfwd>

namespace sld::util {

/// A point / displacement in the 2-D sensing field, in feet.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_ft, double y_ft) : x(x_ft), y(y_ft) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2& o) const = default;

  /// Squared Euclidean norm (avoids the sqrt when only comparing).
  constexpr double norm_squared() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm_squared()); }
};

/// Euclidean distance between two points, in feet.
inline double distance(const Vec2& a, const Vec2& b) {
  return (a - b).norm();
}

/// Squared Euclidean distance, for range checks without sqrt.
constexpr double distance_squared(const Vec2& a, const Vec2& b) {
  return (a - b).norm_squared();
}

/// Axis-aligned rectangular sensing field, `[x0, x1] x [y0, y1]` in feet.
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  constexpr Rect() = default;
  constexpr Rect(double x_lo, double y_lo, double x_hi, double y_hi)
      : x0(x_lo), y0(y_lo), x1(x_hi), y1(y_hi) {}

  /// Square field `[0, side] x [0, side]`.
  static constexpr Rect square(double side) { return {0.0, 0.0, side, side}; }

  constexpr double width() const { return x1 - x0; }
  constexpr double height() const { return y1 - y0; }
  constexpr double area() const { return width() * height(); }

  constexpr bool contains(const Vec2& p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }

  /// Nearest point inside the rectangle to `p`.
  constexpr Vec2 clamp(const Vec2& p) const {
    const double cx = p.x < x0 ? x0 : (p.x > x1 ? x1 : p.x);
    const double cy = p.y < y0 ? y0 : (p.y > y1 ? y1 : p.y);
    return {cx, cy};
  }
};

std::ostream& operator<<(std::ostream& os, const Vec2& v);
std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace sld::util
