// Small CSV-style table printer used by the figure-reproduction benches so
// that every bench emits uniformly formatted, machine-parsable series.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace sld::util {

/// A column-oriented table: fixed header, rows of cells, CSV output.
class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> header);

  /// Starts a new row; follow with `cell()` calls. Rows are validated to
  /// have exactly `header.size()` cells when printed.
  Table& row();
  Table& cell(std::string v);
  Table& cell(const char* v);
  Table& cell(double v);
  Table& cell(long long v);
  Table& cell(int v) { return cell(static_cast<long long>(v)); }
  Table& cell(std::size_t v) { return cell(static_cast<long long>(v)); }

  std::size_t row_count() const { return rows_.size(); }

  /// Writes `# title`, a CSV header line, then one CSV line per row.
  void print_csv(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace sld::util
