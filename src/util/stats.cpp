#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sld::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.959963984540054 * stddev() / std::sqrt(static_cast<double>(n_));
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf::at: empty");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf::quantile: empty");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("EmpiricalCdf::quantile: p outside [0, 1]");
  if (p <= 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

double EmpiricalCdf::x_min() const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf::x_min: empty");
  return sorted_.front();
}

double EmpiricalCdf::x_max() const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf::x_max: empty");
  return sorted_.back();
}

ZipfSampler::ZipfSampler(std::size_t ranks, double exponent) {
  if (ranks == 0)
    throw std::invalid_argument("ZipfSampler: ranks must be >= 1");
  if (!(exponent > 0.0))
    throw std::invalid_argument("ZipfSampler: exponent must be > 0");
  cdf_.resize(ranks);
  double acc = 0.0;
  for (std::size_t r = 0; r < ranks; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_[r] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // Guard against round-off leaving the tail short.
}

std::size_t ZipfSampler::sample(double u01) const {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u01);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double log_gamma(double x) {
  if (x <= 0.0) throw std::invalid_argument("log_gamma: x must be > 0");
  // Lanczos approximation, g = 7, n = 9.
  static constexpr double kCoeffs[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double acc = kCoeffs[0];
  for (int i = 1; i < 9; ++i) acc += kCoeffs[i] / (z + static_cast<double>(i));
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(acc);
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n)
    throw std::invalid_argument("log_binomial_coefficient: k > n");
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return log_gamma(dn + 1.0) - log_gamma(dk + 1.0) - log_gamma(dn - dk + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("binomial_pmf: p outside [0, 1]");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_cdf(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 1.0;
  double sum = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) sum += binomial_pmf(n, i, p);
  return std::min(sum, 1.0);
}

double binomial_tail_above(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 0.0;
  // Sum the smaller side for accuracy.
  if (static_cast<double>(k) > static_cast<double>(n) * p) {
    double sum = 0.0;
    for (std::uint64_t i = k + 1; i <= n; ++i) sum += binomial_pmf(n, i, p);
    return std::min(sum, 1.0);
  }
  return std::max(0.0, 1.0 - binomial_cdf(n, k, p));
}

double argmax_scalar(double lo, double hi, std::size_t coarse,
                     double (*f)(double, const void*), const void* ctx) {
  if (!(lo <= hi)) throw std::invalid_argument("argmax_scalar: lo > hi");
  if (coarse < 2) coarse = 2;
  double best_x = lo;
  double best_v = f(lo, ctx);
  const double step = (hi - lo) / static_cast<double>(coarse - 1);
  for (std::size_t i = 1; i < coarse; ++i) {
    const double x = lo + step * static_cast<double>(i);
    const double v = f(x, ctx);
    if (v > best_v) {
      best_v = v;
      best_x = x;
    }
  }
  // Golden-section refinement in the bracket around the best grid point.
  double a = std::max(lo, best_x - step);
  double b = std::min(hi, best_x + step);
  constexpr double kInvPhi = 0.6180339887498949;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c, ctx);
  double fd = f(d, ctx);
  for (int iter = 0; iter < 60 && (b - a) > 1e-10; ++iter) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c, ctx);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d, ctx);
    }
  }
  const double mid = 0.5 * (a + b);
  return f(mid, ctx) >= best_v ? mid : best_x;
}

}  // namespace sld::util
