// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that a whole experiment is a pure function of (config, seed). The
// engine is xoshiro256** seeded through SplitMix64, which is fast, has a
// 256-bit state, and passes BigCrush — more than adequate for simulation.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace sld::util {

/// SplitMix64 step; used to expand a 64-bit seed into engine state and to
/// derive independent per-component streams from a master seed.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** random engine with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; `salt` distinguishes siblings.
  /// Children of the same (parent state, salt) are identical, so derive all
  /// children before drawing from the parent if reproducibility matters.
  Rng fork(std::uint64_t salt) const;

  /// Raw 64 uniform random bits (UniformRandomBitGenerator interface).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in `[0, bound)`. `bound` must be positive.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in `[lo, hi]` (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of randomness.
  double uniform01();

  /// Uniform double in `[lo, hi)`.
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draws `k` distinct indices from `[0, n)` (partial Fisher-Yates).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t next();

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sld::util
