#include "util/rng.hpp"

#include <cmath>

namespace sld::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t salt) const {
  // Hash the full parent state with the salt so sibling forks and the
  // parent stream are pairwise independent.
  std::uint64_t sm = salt ^ 0xd1b54a32d192ed03ULL;
  for (const auto word : state_) sm = splitmix64(sm) ^ word;
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform_u64: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("uniform: lo > hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  // 1 - uniform01() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_u64(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace sld::util
