#include "util/table.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sld::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(std::string v) {
  if (rows_.empty()) throw std::logic_error("Table::cell before row()");
  rows_.back().emplace_back(std::move(v));
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(double v) {
  if (rows_.empty()) throw std::logic_error("Table::cell before row()");
  rows_.back().emplace_back(v);
  return *this;
}

Table& Table::cell(long long v) {
  if (rows_.empty()) throw std::logic_error("Table::cell before row()");
  rows_.back().emplace_back(v);
  return *this;
}

namespace {
/// RFC 4180 quoting: a field containing a comma, quote, CR, or LF is
/// wrapped in double quotes, with embedded quotes doubled.
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string render(const Table::Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  const double d = std::get<double>(c);
  std::ostringstream os;
  if (std::abs(d) != 0.0 && (std::abs(d) < 1e-4 || std::abs(d) >= 1e7)) {
    os.precision(6);
    os << std::scientific << d;
  } else {
    os.precision(6);
    os << d;
  }
  return os.str();
}
}  // namespace

void Table::print_csv(std::ostream& os, const std::string& title) const {
  os << "# " << title << '\n';
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(header_[i]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    if (r.size() != header_.size())
      throw std::logic_error("Table: row width != header width");
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(render(r[i]));
    }
    os << '\n';
  }
}

}  // namespace sld::util
