#include "util/geometry.hpp"

#include <ostream>

namespace sld::util {

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.x0 << ", " << r.x1 << "] x [" << r.y0 << ", " << r.y1
            << ']';
}

}  // namespace sld::util
