#include "util/bytes.hpp"

#include <bit>
#include <cstring>

namespace sld::util {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::sized_bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  bytes(data);
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const auto lo = static_cast<std::uint16_t>(data_[pos_]);
  const auto hi = static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const auto lo = static_cast<std::uint32_t>(u16());
  const auto hi = static_cast<std::uint32_t>(u16());
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const auto lo = static_cast<std::uint64_t>(u32());
  const auto hi = static_cast<std::uint64_t>(u32());
  return lo | (hi << 32);
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

Bytes ByteReader::bytes(std::size_t n) {
  require(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::sized_bytes() {
  const std::uint32_t n = u32();
  return bytes(n);
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace sld::util
