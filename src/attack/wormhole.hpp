// Wormhole attack installation (paper Figure 1c, §4). The tunnel itself is
// modelled at the channel layer (see sim::WormholeLink); this header offers
// the attacker-facing API for planting tunnels and a helper matching the
// paper's simulated setup: one wormhole between (100,100) and (800,700) in
// a 1000x1000 ft field that "forwards every message received at one side
// immediately to the other side".
#pragma once

#include <cstddef>
#include <vector>

#include "sim/channel.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::attack {

/// Plants a zero-latency tunnel between `a` and `b` with the given exit
/// range. Returns the installed link.
sim::WormholeLink install_wormhole(sim::Channel& channel,
                                   const util::Vec2& a, const util::Vec2& b,
                                   double exit_range_ft,
                                   double extra_delay_cycles = 0.0);

/// The paper's §4 wormhole: (100,100) <-> (800,700), exit range = node
/// radio range.
sim::WormholeLink install_paper_wormhole(sim::Channel& channel,
                                         double exit_range_ft);

/// Plants `count` wormholes between uniformly random positions in `field`
/// (used by the false-positive analysis, which assumes N_w wormholes
/// between benign beacon pairs).
std::vector<sim::WormholeLink> install_random_wormholes(
    sim::Channel& channel, const util::Rect& field, std::size_t count,
    double exit_range_ft, util::Rng& rng);

}  // namespace sld::attack
