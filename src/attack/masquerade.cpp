#include "attack/masquerade.hpp"

namespace sld::attack {

Masquerader::Masquerader(MasqueradeConfig config, sim::Channel& channel)
    : config_(config), channel_(channel) {}

void Masquerader::forge_reply(sim::NodeId victim, std::uint64_t nonce,
                              util::Rng& rng) {
  sim::BeaconReplyPayload payload;
  payload.nonce = nonce;
  payload.claimed_position = config_.claimed_position;

  sim::Message msg;
  msg.src = config_.impersonated_beacon;
  msg.dst = victim;
  msg.type = sim::MsgType::kBeaconReply;
  msg.payload = payload.serialize();
  msg.mac = rng();  // no key material: the tag is a guess

  sim::TxContext ctx;
  ctx.radiating_position = config_.position;
  ctx.radiating_range = config_.range_ft;

  ++forgeries_sent_;
  channel_.inject(ctx, msg);
}

}  // namespace sld::attack
