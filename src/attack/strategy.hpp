// The compromised-beacon adversary (paper §2.3). A malicious beacon node
// partitions its requesters:
//   * a fraction p_n receive *normal* (truthful, consistent) signals;
//   * of the rest, a fraction p_w are convinced the signal came through a
//     wormhole (so the wormhole stage discards it);
//   * of the rest, a fraction p_l are convinced the signal was locally
//     replayed (inflated RTT, so the RTT stage discards it);
//   * the remaining fraction P = (1-p_n)(1-p_w)(1-p_l) receive the
//     *effective* malicious signal that actually corrupts localization —
//     and is what a detecting node catches.
//
// The paper notes the best strategy is to behave consistently toward the
// same requester ID; we make the choice a deterministic keyed hash of the
// requester ID, which is exactly why distinct detecting IDs draw fresh
// Bernoulli trials and P_r = 1 - (1 - P)^m.
#pragma once

#include <cstdint>

#include "crypto/siphash.hpp"
#include "sim/message.hpp"
#include "util/geometry.hpp"

namespace sld::attack {

enum class MaliciousBehavior {
  kNormal,           // truthful beacon signal
  kFakeWormhole,     // far location claim + faked wormhole indications
  kFakeLocalReplay,  // inflated RTT report
  kEffective,        // the damaging, detectable malicious signal
};

struct MaliciousStrategyConfig {
  double p_normal = 0.0;        // p_n
  double p_fake_wormhole = 0.0; // p_w
  double p_fake_local_replay = 0.0;  // p_l
  /// Location lie magnitude of the effective malicious signal, in feet.
  /// Must exceed the consistency threshold (max ranging error) to matter.
  double location_lie_ft = 100.0;
  /// Physical-layer ranging manipulation of malicious signals, in feet
  /// (negative: the receiver measures the beacon closer than it is). Its
  /// magnitude must exceed location_lie_ft + max ranging error so that the
  /// consistency check flags every effective signal — the paper's premise
  /// that a damaging signal is by definition inconsistent.
  double range_manipulation_ft = -120.0;
  /// Claimed-position offset for the fake-wormhole behaviour; must exceed
  /// the radio range so the geographic precondition of the wormhole stage
  /// holds. Feet.
  double far_claim_ft = 400.0;
  /// RTT inflation for the fake-local-replay behaviour, in CPU cycles;
  /// must exceed the calibrated x_max - x_min span.
  double rtt_inflation_cycles = 40'000.0;

  /// Attack effectiveness P = (1-p_n)(1-p_w)(1-p_l).
  double effectiveness() const {
    return (1.0 - p_normal) * (1.0 - p_fake_wormhole) *
           (1.0 - p_fake_local_replay);
  }

  /// Simplest strategy achieving effectiveness `P`: sends normal signals to
  /// a (1 - P) fraction of requesters and effective ones to the rest.
  static MaliciousStrategyConfig with_effectiveness(double P);
};

/// Per-requester sticky behaviour selection for one malicious beacon.
class MaliciousBeaconStrategy {
 public:
  /// `secret_seed` is the beacon's private randomness; two beacons with
  /// different seeds partition requesters independently.
  MaliciousBeaconStrategy(MaliciousStrategyConfig config,
                          std::uint64_t secret_seed);

  const MaliciousStrategyConfig& config() const { return config_; }

  /// The behaviour this beacon shows requester `requester` — stable across
  /// repeated requests from the same ID.
  MaliciousBehavior behavior_for(sim::NodeId requester) const;

  /// Fills a beacon reply for `requester` given the beacon's true position.
  /// `nonce` echoes the request nonce.
  sim::BeaconReplyPayload craft_reply(sim::NodeId requester,
                                      std::uint64_t nonce,
                                      const util::Vec2& true_position) const;

 private:
  /// Deterministic uniform draw in [0,1) keyed by (requester, salt).
  double keyed_uniform(sim::NodeId requester, std::uint64_t salt) const;

  MaliciousStrategyConfig config_;
  crypto::Key128 secret_{};
};

}  // namespace sld::attack
