#include "attack/strategy.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sld::attack {

MaliciousStrategyConfig MaliciousStrategyConfig::with_effectiveness(double P) {
  if (P < 0.0 || P > 1.0)
    throw std::invalid_argument("with_effectiveness: P outside [0, 1]");
  MaliciousStrategyConfig c;
  c.p_normal = 1.0 - P;
  return c;
}

MaliciousBeaconStrategy::MaliciousBeaconStrategy(
    MaliciousStrategyConfig config, std::uint64_t secret_seed)
    : config_(config) {
  for (const double p : {config_.p_normal, config_.p_fake_wormhole,
                         config_.p_fake_local_replay}) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument(
          "MaliciousBeaconStrategy: probability outside [0, 1]");
  }
  for (int i = 0; i < 8; ++i) {
    secret_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(secret_seed >> (8 * i));
    secret_[static_cast<std::size_t>(i + 8)] = static_cast<std::uint8_t>(
        (secret_seed ^ 0xa5a5a5a5a5a5a5a5ULL) >> (8 * i));
  }
}

double MaliciousBeaconStrategy::keyed_uniform(sim::NodeId requester,
                                              std::uint64_t salt) const {
  const std::uint64_t h = crypto::siphash24_u64(
      secret_, (static_cast<std::uint64_t>(requester) << 24) ^ salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

MaliciousBehavior MaliciousBeaconStrategy::behavior_for(
    sim::NodeId requester) const {
  if (keyed_uniform(requester, 1) < config_.p_normal)
    return MaliciousBehavior::kNormal;
  if (keyed_uniform(requester, 2) < config_.p_fake_wormhole)
    return MaliciousBehavior::kFakeWormhole;
  if (keyed_uniform(requester, 3) < config_.p_fake_local_replay)
    return MaliciousBehavior::kFakeLocalReplay;
  return MaliciousBehavior::kEffective;
}

sim::BeaconReplyPayload MaliciousBeaconStrategy::craft_reply(
    sim::NodeId requester, std::uint64_t nonce,
    const util::Vec2& true_position) const {
  sim::BeaconReplyPayload reply;
  reply.nonce = nonce;
  // A sticky per-requester lie direction so repeated probes are coherent.
  const double angle =
      keyed_uniform(requester, 4) * 2.0 * std::numbers::pi;
  const util::Vec2 dir{std::cos(angle), std::sin(angle)};

  switch (behavior_for(requester)) {
    case MaliciousBehavior::kNormal:
      reply.claimed_position = true_position;
      break;
    case MaliciousBehavior::kFakeWormhole:
      // Claim an origin farther than any radio range so the receiver's
      // geographic precondition holds, and make its wormhole detector fire.
      reply.claimed_position = true_position + dir * config_.far_claim_ft;
      reply.fake_wormhole_indication = true;
      break;
    case MaliciousBehavior::kFakeLocalReplay:
      // Still a malicious signal — the point of the strategy is to dodge
      // *attribution*, not to behave: the inflated RTT report makes the
      // receiver discard it as a local replay instead of raising an alert.
      reply.claimed_position = true_position + dir * config_.location_lie_ft;
      reply.range_manipulation_ft = config_.range_manipulation_ft;
      reply.processing_bias_cycles = config_.rtt_inflation_cycles;
      break;
    case MaliciousBehavior::kEffective:
      // The damaging signal: a location lie plus a ranging manipulation
      // whose magnitude exceeds lie + e_max, so the measured and calculated
      // distances are inconsistent for every receiver geometry — corrupting
      // localization and, symmetrically, guaranteeing that a probing
      // detecting ID flags it.
      reply.claimed_position = true_position + dir * config_.location_lie_ft;
      reply.range_manipulation_ft = config_.range_manipulation_ft;
      break;
  }
  return reply;
}

}  // namespace sld::attack
