#include "attack/active_wormhole.hpp"

namespace sld::attack {

ActiveWormholeEnd::ActiveWormholeEnd(const ActiveWormholeConfig& config,
                                     bool is_end_a, sim::Channel& channel,
                                     sim::Scheduler& scheduler)
    : config_(config),
      is_end_a_(is_end_a),
      channel_(channel),
      scheduler_(scheduler) {}

util::Vec2 ActiveWormholeEnd::observer_position() const {
  return is_end_a_ ? config_.end_a : config_.end_b;
}

bool ActiveWormholeEnd::on_overhear(const sim::Message& msg,
                                    const sim::TxContext& ctx) {
  if (ctx.is_replay) return false;  // never re-tunnel tunnelled copies

  // Store-and-forward: the packet must be fully received before the far
  // end can start re-transmitting it — one packet air time, plus the
  // tunnel electronics.
  const double delay_cycles =
      channel_.packet_airtime_cycles(msg.payload.size()) +
      config_.processing_cycles;

  sim::TxContext fwd;
  fwd.radiating_position = is_end_a_ ? config_.end_b : config_.end_a;
  fwd.radiating_range = config_.range_ft;
  fwd.extra_delay_cycles = ctx.extra_delay_cycles + delay_cycles;
  fwd.via_wormhole = true;
  fwd.is_replay = true;

  ++forwarded_;
  sim::Channel* ch = &channel_;
  sim::Message copy = msg;
  scheduler_.schedule_after(sim::cycles_to_ns(delay_cycles),
                            [ch, fwd, copy]() { ch->inject(fwd, copy); });
  return false;  // the original transmission proceeds untouched
}

ActiveWormhole::ActiveWormhole(ActiveWormholeConfig config,
                               sim::Channel& channel,
                               sim::Scheduler& scheduler)
    : end_a_(config, true, channel, scheduler),
      end_b_(config, false, channel, scheduler) {
  channel.add_observer(&end_a_);
  channel.add_observer(&end_b_);
}

}  // namespace sld::attack
