#include "attack/replay.hpp"

namespace sld::attack {

LocalReplayAttacker::LocalReplayAttacker(LocalReplayConfig config,
                                         sim::Channel& channel,
                                         sim::Scheduler& scheduler)
    : config_(config), channel_(channel), scheduler_(scheduler) {}

bool LocalReplayAttacker::on_overhear(const sim::Message& msg,
                                      const sim::TxContext& ctx) {
  if (msg.src != config_.victim_beacon) return false;
  if (ctx.is_replay) return false;  // don't replay our own replays

  const double delay_cycles =
      config_.replay_delay_cycles.value_or(
          channel_.packet_airtime_cycles(msg.payload.size()));

  sim::TxContext replay_ctx;
  replay_ctx.radiating_position = config_.position;
  replay_ctx.radiating_range = config_.range_ft;
  replay_ctx.extra_delay_cycles = ctx.extra_delay_cycles + delay_cycles;
  replay_ctx.is_replay = true;
  replay_ctx.via_wormhole = ctx.via_wormhole;

  ++replays_sent_;
  sim::Message copy = msg;
  // Inject after the capture completes; the channel adds air time again on
  // the replayed transmission.
  sim::Channel* ch = &channel_;
  scheduler_.schedule_after(
      sim::cycles_to_ns(delay_cycles),
      [ch, replay_ctx, copy]() { ch->inject(replay_ctx, copy); });

  return config_.shield_original;
}

}  // namespace sld::attack
