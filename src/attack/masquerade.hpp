// The external masquerader (paper Figure 1a): an attacker without any valid
// keys who forges beacon packets pretending to be a beacon node. Because
// every beacon packet is authenticated with the pairwise key of the two
// endpoints, these forgeries fail MAC verification at the receiver — the
// paper's baseline assumption ("beacon packets forged by external attackers
// that do not have the right keys can be easily filtered out").
#pragma once

#include <cstdint>

#include "sim/channel.hpp"
#include "sim/message.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::attack {

struct MasqueradeConfig {
  util::Vec2 position;
  double range_ft = 150.0;
  /// Beacon identity to impersonate.
  sim::NodeId impersonated_beacon = 1;
  /// Location the forged packets claim.
  util::Vec2 claimed_position;
};

/// Forges and injects beacon replies with random (invalid) MAC tags.
class Masquerader {
 public:
  Masquerader(MasqueradeConfig config, sim::Channel& channel);

  /// Sends one forged beacon reply to `victim`, echoing `nonce`.
  void forge_reply(sim::NodeId victim, std::uint64_t nonce, util::Rng& rng);

  std::uint64_t forgeries_sent() const { return forgeries_sent_; }

 private:
  MasqueradeConfig config_;
  sim::Channel& channel_;
  std::uint64_t forgeries_sent_ = 0;
};

}  // namespace sld::attack
