// The local replay attacker (paper §2.2.2, Figure 1c): a device that
// captures beacon signals from a victim beacon in its vicinity and replays
// them to requesters, either alongside the original or — in shielded mode —
// while suppressing the original ("the attacker has to physically shield
// the signal to the detecting node and replay the intercepted packet at the
// same time", which the paper argues is the only way to beat the RTT
// filter). Replaying costs at least one packet air-time of delay unless the
// attacker is given an (unrealistic) smaller value, which tests use to
// probe the filter's blind spot.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/channel.hpp"
#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "util/geometry.hpp"

namespace sld::attack {

struct LocalReplayConfig {
  /// The beacon whose signals are captured and replayed.
  sim::NodeId victim_beacon = 0;
  /// Replay device location and transmit range.
  util::Vec2 position;
  double range_ft = 150.0;
  /// Suppress the original transmission (shield-and-replay).
  bool shield_original = false;
  /// Delay the replay adds on top of capture, in CPU cycles. nullopt means
  /// "one full packet air time", the paper's physical lower bound for a
  /// store-and-forward replay.
  std::optional<double> replay_delay_cycles;
};

/// A radio observer that re-injects captured victim transmissions.
class LocalReplayAttacker final : public sim::RadioObserver {
 public:
  LocalReplayAttacker(LocalReplayConfig config, sim::Channel& channel,
                      sim::Scheduler& scheduler);

  bool on_overhear(const sim::Message& msg,
                   const sim::TxContext& ctx) override;
  util::Vec2 observer_position() const override { return config_.position; }

  std::uint64_t replays_sent() const { return replays_sent_; }

 private:
  LocalReplayConfig config_;
  sim::Channel& channel_;
  sim::Scheduler& scheduler_;
  std::uint64_t replays_sent_ = 0;
};

}  // namespace sld::attack
