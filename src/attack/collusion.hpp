// Colluding alert flooding (paper §4): "malicious beacon nodes collude
// together to report alerts against benign beacon nodes. Thus, they can
// always make the base station revoke about N_a (tau1 + 1) / (tau2 + 1)
// benign beacon nodes by simply reporting alerts." The planner distributes
// each colluder's full report quota (tau1 + 1 accepted alerts) across
// benign targets so that targets are revoked in sequence — the worst case
// the ROC evaluation (Figure 14) assumes.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/message.hpp"

namespace sld::attack {

struct CollusionPlan {
  /// Alerts in submission order: (reporter = malicious beacon, target =
  /// benign beacon).
  std::vector<sim::AlertPayload> alerts;
};

/// Builds the worst-case flooding plan. Each of `colluders` spends
/// `report_quota + 1` alerts; alerts are grouped so each targeted benign
/// beacon receives `alert_threshold + 1` alerts in a row (enough to revoke
/// it) before the plan moves to the next target.
CollusionPlan plan_collusion(const std::vector<sim::NodeId>& colluders,
                             const std::vector<sim::NodeId>& benign_targets,
                             std::size_t report_quota,
                             std::size_t alert_threshold);

}  // namespace sld::attack
