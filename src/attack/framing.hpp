// Coverage-directed framing attack (the lifecycle's adversary).
//
// Collusion (collusion.hpp) floods alerts to revoke *as many* benign
// beacons as possible. Framing is the patient variant aimed at the
// revocation scheme itself: the colluders pick the benign beacons whose
// loss hurts localization coverage the most (sparsest deployment cells
// first), pace their accusations under the per-reporter tau1 budget so
// every alert is accepted, and re-accuse in waves so the targets' decayed
// evidence is topped up just as it would clear. When the deployment has
// scheduled base-station outages, waves are aligned to the recovery
// instants — accusations landing while the station is rebuilding from the
// WAL are the hardest case for lifecycle agreement across failover.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::attack {

struct FramingConfig {
  bool enabled = false;
  /// Benign beacons to frame (capped at the colluders' tau1 budget).
  std::uint32_t targets = 4;
  /// Accusation window: waves are spread across it.
  sim::SimTime window_ns = 30 * sim::kSecond;
  /// Re-accusation waves per target (tops decayed evidence back up).
  std::uint32_t waves = 2;
  /// Cell size used to rank coverage criticality; should match the
  /// defender's LifecycleConfig::cell_ft for the sharpest attack.
  double cell_ft = 250.0;
};

struct FramingPlan {
  struct TimedAlert {
    sim::NodeId reporter = 0;
    sim::NodeId target = 0;
    sim::SimTime at = 0;
  };
  /// Accusations in schedule order.
  std::vector<TimedAlert> alerts;
  /// The framed beacons, most coverage-critical first.
  std::vector<sim::NodeId> targets;
};

/// Builds the framing schedule. `outages` (possibly empty) are the
/// scheduled primary outage windows; waves are snapped to just past their
/// recovery edges when available. Deterministic given `rng`'s state.
FramingPlan plan_framing(
    const std::vector<std::pair<sim::NodeId, util::Vec2>>& colluders,
    const std::vector<std::pair<sim::NodeId, util::Vec2>>& benign_beacons,
    const FramingConfig& config, std::size_t report_quota,
    sim::SimTime window_start,
    const std::vector<std::pair<sim::SimTime, sim::SimTime>>& outages,
    util::Rng& rng);

}  // namespace sld::attack
