#include "attack/wormhole.hpp"

namespace sld::attack {

sim::WormholeLink install_wormhole(sim::Channel& channel, const util::Vec2& a,
                                   const util::Vec2& b, double exit_range_ft,
                                   double extra_delay_cycles) {
  sim::WormholeLink link;
  link.mouth_a = a;
  link.mouth_b = b;
  link.exit_range_ft = exit_range_ft;
  link.extra_delay_cycles = extra_delay_cycles;
  channel.add_wormhole(link);
  return link;
}

sim::WormholeLink install_paper_wormhole(sim::Channel& channel,
                                         double exit_range_ft) {
  return install_wormhole(channel, {100.0, 100.0}, {800.0, 700.0},
                          exit_range_ft);
}

std::vector<sim::WormholeLink> install_random_wormholes(
    sim::Channel& channel, const util::Rect& field, std::size_t count,
    double exit_range_ft, util::Rng& rng) {
  std::vector<sim::WormholeLink> links;
  links.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const util::Vec2 a{rng.uniform(field.x0, field.x1),
                       rng.uniform(field.y0, field.y1)};
    const util::Vec2 b{rng.uniform(field.x0, field.x1),
                       rng.uniform(field.y0, field.y1)};
    links.push_back(install_wormhole(channel, a, b, exit_range_ft));
  }
  return links;
}

}  // namespace sld::attack
