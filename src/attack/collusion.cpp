#include "attack/collusion.hpp"

namespace sld::attack {

CollusionPlan plan_collusion(const std::vector<sim::NodeId>& colluders,
                             const std::vector<sim::NodeId>& benign_targets,
                             std::size_t report_quota,
                             std::size_t alert_threshold) {
  CollusionPlan plan;
  if (colluders.empty() || benign_targets.empty()) return plan;

  // Total accepted-alert budget and the cost of one revocation.
  const std::size_t per_reporter = report_quota + 1;
  const std::size_t per_target = alert_threshold + 1;

  std::vector<std::size_t> remaining(colluders.size(), per_reporter);
  std::size_t reporter = 0;
  auto next_reporter = [&]() -> bool {
    // Find a colluder with quota left, round-robin.
    for (std::size_t tries = 0; tries < colluders.size(); ++tries) {
      if (remaining[reporter] > 0) return true;
      reporter = (reporter + 1) % colluders.size();
    }
    return false;
  };

  for (const auto target : benign_targets) {
    for (std::size_t hit = 0; hit < per_target; ++hit) {
      if (!next_reporter()) return plan;  // budget exhausted
      plan.alerts.push_back(sim::AlertPayload{colluders[reporter], target});
      --remaining[reporter];
      reporter = (reporter + 1) % colluders.size();
    }
  }
  return plan;
}

}  // namespace sld::attack
