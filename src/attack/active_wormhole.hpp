// Active (store-and-forward) wormhole: two cooperating radio devices that
// capture packets at one end and re-transmit them at the other, unlike the
// idealized zero-latency channel tunnel (sim::WormholeLink). Forwarding a
// whole packet costs at least one packet air time per hop, so this wormhole
// is *visible to the RTT filter* even when the wormhole detector misses it
// — exercising the defence-in-depth path the paper's §2.2.2 describes for
// slow replays.
#pragma once

#include <cstdint>

#include "sim/channel.hpp"
#include "sim/scheduler.hpp"
#include "util/geometry.hpp"

namespace sld::attack {

struct ActiveWormholeConfig {
  util::Vec2 end_a;
  util::Vec2 end_b;
  /// Capture/re-transmit radio range at each end, feet.
  double range_ft = 150.0;
  /// Processing latency of the tunnel electronics per packet, cycles
  /// (on top of the unavoidable store-and-forward air time).
  double processing_cycles = 0.0;
};

/// One end of the tunnel; owns the forwarding toward the opposite end.
class ActiveWormholeEnd final : public sim::RadioObserver {
 public:
  ActiveWormholeEnd(const ActiveWormholeConfig& config, bool is_end_a,
                    sim::Channel& channel, sim::Scheduler& scheduler);

  bool on_overhear(const sim::Message& msg,
                   const sim::TxContext& ctx) override;
  util::Vec2 observer_position() const override;

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  ActiveWormholeConfig config_;
  bool is_end_a_;
  sim::Channel& channel_;
  sim::Scheduler& scheduler_;
  std::uint64_t forwarded_ = 0;
};

/// The full device: installs both ends as observers on the channel.
class ActiveWormhole {
 public:
  ActiveWormhole(ActiveWormholeConfig config, sim::Channel& channel,
                 sim::Scheduler& scheduler);

  std::uint64_t packets_tunneled() const {
    return end_a_.forwarded() + end_b_.forwarded();
  }

 private:
  ActiveWormholeEnd end_a_;
  ActiveWormholeEnd end_b_;
};

}  // namespace sld::attack
