#include "attack/framing.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sld::attack {

namespace {
std::uint64_t cell_key(const util::Vec2& p, double cell) {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell));
  return (static_cast<std::uint64_t>(cx) << 32) ^
         (static_cast<std::uint64_t>(cy) & 0xffffffffULL);
}
}  // namespace

FramingPlan plan_framing(
    const std::vector<std::pair<sim::NodeId, util::Vec2>>& colluders,
    const std::vector<std::pair<sim::NodeId, util::Vec2>>& benign_beacons,
    const FramingConfig& config, std::size_t report_quota,
    sim::SimTime window_start,
    const std::vector<std::pair<sim::SimTime, sim::SimTime>>& outages,
    util::Rng& rng) {
  FramingPlan plan;
  if (colluders.empty() || benign_beacons.empty()) return plan;

  // Rank targets by coverage criticality: fewest benign beacons in the
  // cell first (losing one of those starves the cell), id breaking ties.
  const double cell = config.cell_ft > 0 ? config.cell_ft : 1.0;
  std::unordered_map<std::uint64_t, std::uint32_t> census;
  for (const auto& [id, pos] : benign_beacons) ++census[cell_key(pos, cell)];
  std::vector<std::pair<sim::NodeId, std::uint32_t>> ranked;
  ranked.reserve(benign_beacons.size());
  for (const auto& [id, pos] : benign_beacons)
    ranked.emplace_back(id, census.at(cell_key(pos, cell)));
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });

  // tau1 pacing: each colluder accuses each framed target once per wave;
  // only the first accusation of a pair consumes accepted-alert quota
  // (later waves are pair repeats), so distinct targets are capped at the
  // quota and every framing alert is accepted, never quota-ignored.
  const std::size_t n_targets =
      std::min<std::size_t>({config.targets, ranked.size(),
                             report_quota > 0 ? report_quota : 1});
  plan.targets.reserve(n_targets);
  for (std::size_t i = 0; i < n_targets; ++i)
    plan.targets.push_back(ranked[i].first);

  const std::uint32_t waves = std::max<std::uint32_t>(1, config.waves);
  const sim::SimTime window = std::max<sim::SimTime>(config.window_ns, 1);
  for (std::uint32_t w = 0; w < waves; ++w) {
    // Wave anchor: evenly across the window — or snapped just past a
    // scheduled outage's recovery edge, accusing the station while it is
    // rebuilding lifecycle state from the WAL.
    sim::SimTime anchor =
        window_start + (window * static_cast<sim::SimTime>(w)) /
                           static_cast<sim::SimTime>(waves);
    if (!outages.empty()) {
      const auto& outage = outages[w % outages.size()];
      const sim::SimTime recovery = outage.second + sim::kMillisecond;
      if (recovery >= window_start && recovery < window_start + window)
        anchor = recovery;
    }
    for (std::size_t t = 0; t < plan.targets.size(); ++t) {
      for (std::size_t c = 0; c < colluders.size(); ++c) {
        // Small deterministic jitter spreads the clique's accusations so
        // they interleave with honest traffic instead of arriving as one
        // burst the admission layer would trivially fingerprint.
        const sim::SimTime jitter =
            static_cast<sim::SimTime>(rng.uniform_u64(5 * sim::kMillisecond));
        plan.alerts.push_back(FramingPlan::TimedAlert{
            colluders[c].first, plan.targets[t],
            anchor + static_cast<sim::SimTime>(t) * sim::kMillisecond +
                jitter});
      }
    }
  }
  std::sort(plan.alerts.begin(), plan.alerts.end(),
            [](const FramingPlan::TimedAlert& a,
               const FramingPlan::TimedAlert& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.target != b.target) return a.target < b.target;
              return a.reporter < b.reporter;
            });
  return plan;
}

}  // namespace sld::attack
