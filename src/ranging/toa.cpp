#include "ranging/toa.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/time.hpp"

namespace sld::ranging {

namespace {
constexpr double kFeetPerNanosecond = sim::kSpeedOfLightFtPerSec * 1e-9;
}

ToaRangingModel::ToaRangingModel(ToaConfig config) : config_(config) {
  if (config_.max_sync_error_ns < 0.0)
    throw std::invalid_argument("ToaRangingModel: negative sync error bound");
}

double ToaRangingModel::max_error_ft() const {
  return config_.max_sync_error_ns * kFeetPerNanosecond;
}

double ToaRangingModel::measure(double true_distance_ft,
                                util::Rng& rng) const {
  if (true_distance_ft < 0.0)
    throw std::invalid_argument("ToaRangingModel::measure: negative distance");
  const double err_ns =
      rng.uniform(-config_.max_sync_error_ns, config_.max_sync_error_ns);
  return std::max(0.0, true_distance_ft + err_ns * kFeetPerNanosecond);
}

double ToaRangingModel::measure_manipulated(double true_distance_ft,
                                            double manipulation_ns,
                                            util::Rng& rng) const {
  return std::max(0.0, measure(true_distance_ft, rng) +
                           manipulation_ns * kFeetPerNanosecond);
}

}  // namespace sld::ranging
