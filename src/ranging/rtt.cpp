#include "ranging/rtt.hpp"

#include <stdexcept>
#include <vector>

namespace sld::ranging {

MoteTimingModel::MoteTimingModel(MoteTimingConfig config) : config_(config) {
  if (config_.edge_base_cycles < 0.0 || config_.edge_jitter_cycles < 0.0)
    throw std::invalid_argument("MoteTimingModel: negative timing parameter");
}

double MoteTimingModel::sample_rtt_cycles(double distance_ft,
                                          util::Rng& rng) const {
  if (distance_ft < 0.0)
    throw std::invalid_argument("MoteTimingModel: negative distance");
  double rtt = 2.0 * sim::propagation_cycles(distance_ft);
  for (int edge = 0; edge < 4; ++edge) {
    rtt += config_.edge_base_cycles +
           rng.uniform(0.0, config_.edge_jitter_cycles);
  }
  return rtt;
}

double MoteTimingModel::min_possible_cycles() const {
  return 4.0 * config_.edge_base_cycles;
}

double MoteTimingModel::max_possible_cycles(double max_distance_ft) const {
  return 4.0 * (config_.edge_base_cycles + config_.edge_jitter_cycles) +
         2.0 * sim::propagation_cycles(max_distance_ft);
}

RttExchange sample_rtt_exchange(const MoteTimingModel& model,
                                double distance_ft, double mac_delay_cycles,
                                util::Rng& rng) {
  if (distance_ft < 0.0 || mac_delay_cycles < 0.0)
    throw std::invalid_argument("sample_rtt_exchange: negative input");
  const auto& cfg = model.config();
  const auto edge = [&]() {
    return cfg.edge_base_cycles + rng.uniform(0.0, cfg.edge_jitter_cycles);
  };
  const double flight = sim::propagation_cycles(distance_ft);

  RttExchange x;
  // Request: t1 at the sender (after its shift-out delay d1 relative to
  // the true on-air instant), arrival at the receiver after the flight,
  // then the receiver's shift-in delay d2 before t2.
  const double on_air_request = 100.0;  // arbitrary origin
  x.t1_cycles = on_air_request - edge();          // t1 + d1 = on-air time
  x.t2_cycles = on_air_request + flight + edge();  // t2 = arrival + d2
  // The receiver spends arbitrary MAC/processing time before replying.
  const double on_air_reply = x.t2_cycles + mac_delay_cycles;
  x.t3_cycles = on_air_reply - edge();
  x.t4_cycles = on_air_reply + flight + edge();
  return x;
}

RttCalibration calibrate_rtt(const MoteTimingModel& model,
                             std::size_t samples, double max_distance_ft,
                             util::Rng& rng) {
  if (samples == 0)
    throw std::invalid_argument("calibrate_rtt: need at least one sample");
  if (max_distance_ft < 0.0)
    throw std::invalid_argument("calibrate_rtt: negative distance");
  std::vector<double> observed;
  observed.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double d = rng.uniform(0.0, max_distance_ft);
    observed.push_back(model.sample_rtt_cycles(d, rng));
  }
  RttCalibration cal;
  cal.cdf = util::EmpiricalCdf(std::move(observed));
  cal.x_min_cycles = cal.cdf.x_min();
  cal.x_max_cycles = cal.cdf.x_max();
  return cal;
}

}  // namespace sld::ranging
