// Wormhole detectors. The paper assumes "a wormhole detector installed on
// every beacon and non-beacon node" that "can tell whether two communicating
// nodes are neighbor nodes or not with certain accuracy" — abstracted in the
// analysis to a detection rate p_d (0.9 in §4).
//
// Two implementations:
//  * ProbabilisticWormholeDetector — the paper's abstraction: fires on a
//    genuine wormhole crossing with probability p_d, never on direct
//    traffic, and always fires when the sender fakes wormhole indications
//    (the malicious "convince them it's a wormhole" strategy).
//  * GeographicLeashDetector — a concrete detector in the spirit of packet
//    leashes [Hu-Perrig-Johnson 03]: flags a delivery whose claimed origin
//    is farther than the maximum plausible radio range (plus the ranging
//    error margin). Its effective p_d emerges from geometry instead of
//    being assumed.
#pragma once

#include "sim/message.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::ranging {

/// What a detector sees about one delivery at the receiving node.
struct WormholeEvidence {
  /// Endpoint identities. Leash-style detectors give the same verdict for
  /// every packet on the same link, so the probabilistic model's p_d draw
  /// is sticky per (receiver, claimed sender) pair.
  std::uint32_t receiver_id = 0;
  std::uint32_t sender_id = 0;
  /// Ground truth from the channel: the copy crossed a tunnel.
  bool via_wormhole = false;
  /// The sender set the "this is a wormhole" manipulation bit.
  bool sender_faked_indication = false;
  /// Receiver's own (known or estimated) position, and whether it knows
  /// one at all (non-beacon sensors do not until they localize; detectors
  /// that need geometry must stand down without it).
  util::Vec2 receiver_position;
  bool receiver_knows_position = true;
  /// Location claimed inside the beacon packet.
  util::Vec2 claimed_sender_position;
  /// Distance the receiver measured from the signal, in feet.
  double measured_distance_ft = 0.0;
  /// Nominal radio range of the claimed sender, in feet.
  double sender_range_ft = 0.0;

  /// Temporal-leash inputs (valid only when `has_timestamps`): the
  /// sender's authenticated transmission timestamp and the receiver's
  /// arrival timestamp, both in CPU cycles of a loosely synchronized
  /// network clock.
  bool has_timestamps = false;
  double tx_timestamp_cycles = 0.0;
  double rx_timestamp_cycles = 0.0;
};

class WormholeDetector {
 public:
  virtual ~WormholeDetector() = default;

  /// True if the detector reports a wormhole for this delivery.
  virtual bool detects(const WormholeEvidence& evidence,
                       util::Rng& rng) const = 0;
};

class ProbabilisticWormholeDetector final : public WormholeDetector {
 public:
  /// `seed` fixes the per-link verdicts for one trial: whether the link
  /// (receiver, sender) is caught is drawn once (probability
  /// `detection_rate`) and stays the same for every packet on it — the
  /// paper's per-pair (1 - p_d) false-alert bound depends on this.
  explicit ProbabilisticWormholeDetector(double detection_rate,
                                         std::uint64_t seed = 0x9d);

  double detection_rate() const { return detection_rate_; }

  bool detects(const WormholeEvidence& evidence,
               util::Rng& rng) const override;

 private:
  double detection_rate_;
  std::uint64_t seed_;
};

class GeographicLeashDetector final : public WormholeDetector {
 public:
  /// `margin_ft` absorbs honest ranging error before flagging.
  explicit GeographicLeashDetector(double margin_ft = 0.0);

  bool detects(const WormholeEvidence& evidence,
               util::Rng& rng) const override;

 private:
  double margin_ft_;
};

/// Temporal packet leash [Hu-Perrig-Johnson 03]: with loosely synchronized
/// clocks, a packet whose measured flight time exceeds one radio range's
/// propagation time (plus the clock-skew budget) must have been tunnelled.
/// Requires `WormholeEvidence::has_timestamps`; evidence without
/// timestamps is never flagged (except for faked indications).
class TemporalLeashDetector final : public WormholeDetector {
 public:
  /// `max_clock_skew_cycles`: bound on |sender clock - receiver clock|.
  /// `range_ft`: nominal radio range bounding legitimate flight time.
  TemporalLeashDetector(double max_clock_skew_cycles, double range_ft);

  bool detects(const WormholeEvidence& evidence,
               util::Rng& rng) const override;

  /// The largest flight time (cycles) a direct packet can exhibit.
  double max_legitimate_flight_cycles() const;

 private:
  double max_clock_skew_cycles_;
  double range_ft_;
};

}  // namespace sld::ranging
