// Distance measurement from received beacon signals. The paper assumes
// "location estimation is based on the distances measured from beacon
// signals (through, e.g., RSSI)" with a known *maximum* measurement error
// e_max; the consistency detector's threshold is exactly that bound.
//
// Two honest-measurement models are provided:
//  * BoundedUniform — error ~ U(-e_max, +e_max): the paper's abstraction.
//  * LogNormalShadowing — a physical RSSI chain (log-distance path loss
//    with shadowing, inverted back to distance) whose error is then clipped
//    to +-e_max, modelling the calibrated bound real deployments assume.
//
// On top of the honest measurement, an attacker-controlled additive
// manipulation (from BeaconReplyPayload::range_manipulation_ft) shifts what
// the receiver observes.
#pragma once

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::ranging {

enum class RssiModelKind {
  kBoundedUniform,
  kLogNormalShadowing,
};

struct RssiConfig {
  RssiModelKind kind = RssiModelKind::kBoundedUniform;
  /// Maximum honest measurement error, in feet (paper §4: 4 ft).
  double max_error_ft = 4.0;
  /// Path-loss exponent and shadowing sigma (dB) for the physical model.
  double path_loss_exponent = 2.7;
  double shadowing_sigma_db = 1.0;
  /// Reference distance for the path-loss model, in feet.
  double reference_distance_ft = 3.0;
};

/// Samples distance measurements.
class RssiRangingModel {
 public:
  explicit RssiRangingModel(RssiConfig config);

  const RssiConfig& config() const { return config_; }

  /// Honest measured distance for a true distance (>= 0); the result is
  /// non-negative and within +-max_error_ft of the truth.
  double measure(double true_distance_ft, util::Rng& rng) const;

  /// Measurement including an attacker's physical-layer manipulation.
  double measure_manipulated(double true_distance_ft,
                             double manipulation_ft, util::Rng& rng) const;

 private:
  RssiConfig config_;
};

}  // namespace sld::ranging
