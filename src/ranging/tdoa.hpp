// Time-Difference-of-Arrival ranging (RF + ultrasound, as in AHLoS /
// Cricket): the beacon emits an RF packet and an ultrasound pulse
// together; the receiver converts the arrival gap into distance using the
// speed of sound. Paper §2.3 singles this feature out as the weak one for
// the detection scheme: "it is usually more difficult to protect
// ultrasound signals, especially when ultrasound signals cannot carry data
// packets" — the ultrasound pulse is unauthenticated, so an attacker can
// inject an *earlier* pulse and shrink the measured distance without
// touching the (authenticated) RF packet at all. The model exposes that
// attack surface explicitly so the weakness can be demonstrated.
#pragma once

#include "util/rng.hpp"

namespace sld::ranging {

struct TdoaConfig {
  double speed_of_sound_ft_per_s = 1125.0;
  /// Bound on the honest arrival-gap timing error, seconds
  /// (~3.5 ms of jitter ~ 4 ft).
  double max_timing_error_s = 0.00355;
};

class TdoaRangingModel {
 public:
  explicit TdoaRangingModel(TdoaConfig config = {});

  const TdoaConfig& config() const { return config_; }

  /// Maximum honest distance error implied by the timing bound, feet.
  double max_error_ft() const;

  /// Honest TDoA distance measurement.
  double measure(double true_distance_ft, util::Rng& rng) const;

  /// Measurement when an attacker injects its own ultrasound pulse from
  /// `attacker_distance_ft` away, `injection_lead_s` before the genuine
  /// pulse would be due (0 = alongside the RF packet). The receiver locks
  /// onto the first pulse it hears, so the attacker can only ever make the
  /// beacon look *closer* — and needs no key material to do it, which is
  /// the §2.3 weakness.
  double measure_with_injected_pulse(double true_distance_ft,
                                     double attacker_distance_ft,
                                     double injection_lead_s,
                                     util::Rng& rng) const;

 private:
  TdoaConfig config_;
};

}  // namespace sld::ranging
