// Angle-of-Arrival measurement (paper §1: AoA is one of the features used
// for location determination; §2.3: the detector revises naturally to
// angle constraints). A node with a directional antenna array measures the
// bearing the signal arrived from, with a bounded angular error.
#pragma once

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::ranging {

/// Normalizes an angle to (-pi, pi].
double normalize_angle(double radians);

/// True bearing of `to` as seen from `from`, in (-pi, pi].
double true_bearing(const util::Vec2& from, const util::Vec2& to);

/// Absolute angular difference |a - b| folded to [0, pi].
double angular_distance(double a, double b);

struct AoaConfig {
  /// Bound on the bearing measurement error, radians (~3 degrees).
  double max_error_rad = 0.05;
};

class AoaModel {
 public:
  explicit AoaModel(AoaConfig config = {});

  const AoaConfig& config() const { return config_; }

  /// Honest bearing measurement of a signal radiating from
  /// `radiating_position`, taken at `receiver_position`.
  double measure_bearing(const util::Vec2& receiver_position,
                         const util::Vec2& radiating_position,
                         util::Rng& rng) const;

 private:
  AoaConfig config_;
};

}  // namespace sld::ranging
