#include "ranging/aoa.hpp"

#include <cmath>
#include <stdexcept>

namespace sld::ranging {

double normalize_angle(double radians) {
  while (radians > M_PI) radians -= 2.0 * M_PI;
  while (radians <= -M_PI) radians += 2.0 * M_PI;
  return radians;
}

double true_bearing(const util::Vec2& from, const util::Vec2& to) {
  return std::atan2(to.y - from.y, to.x - from.x);
}

double angular_distance(double a, double b) {
  return std::abs(normalize_angle(a - b));
}

AoaModel::AoaModel(AoaConfig config) : config_(config) {
  if (config_.max_error_rad < 0.0 || config_.max_error_rad > M_PI)
    throw std::invalid_argument("AoaModel: bad angular error bound");
}

double AoaModel::measure_bearing(const util::Vec2& receiver_position,
                                 const util::Vec2& radiating_position,
                                 util::Rng& rng) const {
  const double truth = true_bearing(receiver_position, radiating_position);
  return normalize_angle(
      truth + rng.uniform(-config_.max_error_rad, config_.max_error_rad));
}

}  // namespace sld::ranging
