#include "ranging/rssi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sld::ranging {

RssiRangingModel::RssiRangingModel(RssiConfig config) : config_(config) {
  if (config_.max_error_ft < 0.0)
    throw std::invalid_argument("RssiRangingModel: negative max error");
  if (config_.path_loss_exponent <= 0.0)
    throw std::invalid_argument("RssiRangingModel: bad path-loss exponent");
  if (config_.reference_distance_ft <= 0.0)
    throw std::invalid_argument("RssiRangingModel: bad reference distance");
}

double RssiRangingModel::measure(double true_distance_ft,
                                 util::Rng& rng) const {
  if (true_distance_ft < 0.0)
    throw std::invalid_argument("RssiRangingModel::measure: negative distance");

  double error = 0.0;
  switch (config_.kind) {
    case RssiModelKind::kBoundedUniform:
      error = rng.uniform(-config_.max_error_ft, config_.max_error_ft);
      break;
    case RssiModelKind::kLogNormalShadowing: {
      // Path loss PL(d) = PL(d0) + 10 n log10(d/d0) + X_sigma. The receiver
      // inverts the mean model, so the distance error is multiplicative:
      // d_hat = d * 10^(X / (10 n)). Clip to the calibrated bound.
      const double d = std::max(true_distance_ft,
                                config_.reference_distance_ft);
      const double shadow_db = rng.normal(0.0, config_.shadowing_sigma_db);
      const double d_hat =
          d * std::pow(10.0, shadow_db / (10.0 * config_.path_loss_exponent));
      error = std::clamp(d_hat - true_distance_ft, -config_.max_error_ft,
                         config_.max_error_ft);
      break;
    }
  }
  return std::max(0.0, true_distance_ft + error);
}

double RssiRangingModel::measure_manipulated(double true_distance_ft,
                                             double manipulation_ft,
                                             util::Rng& rng) const {
  return std::max(0.0, measure(true_distance_ft, rng) + manipulation_ft);
}

}  // namespace sld::ranging
