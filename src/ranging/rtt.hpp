// The round-trip-time substrate (paper §2.2.2 and Figure 4).
//
// The paper measures RTT = (t4 - t1) - (t3 - t2) on MICA motes, where the
// four timestamps bracket the first byte of the request/reply at the SPDR
// shift register. That cancels MAC and processing delay, leaving
//
//     RTT = d1 + d2 + d3 + d4 + 2 D / c
//
// with d1..d4 the radio-hardware byte-shift delays and D the node distance.
// The distribution is therefore narrow; the paper reports a span of about
// 4.5 bit-times (1 bit = 384 CPU cycles -> span ~= 1728 cycles), and any
// replay adding more than that span is detectable against the calibrated
// maximum x_max.
//
// MoteTimingModel reproduces that decomposition with per-edge base delays
// plus bounded jitter, calibrated so the no-attack span is 4.5 bit-times.
// RttCalibration runs the paper's 10,000-measurement experiment and
// extracts x_min / x_max; LocalReplayFilter (in sld::detection) compares
// observed RTTs against x_max.
#pragma once

#include <cstddef>

#include "sim/time.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sld::ranging {

struct MoteTimingConfig {
  /// Base hardware latency of each of the four byte-shift edges, cycles.
  double edge_base_cycles = 1349.0;
  /// Uniform jitter added to each edge, cycles. Four edges at 432 each
  /// give a total span of 1728 cycles = 4.5 bit-times, matching Figure 4.
  double edge_jitter_cycles = 432.0;
};

/// Samples honest RTTs between two motes a given distance apart.
class MoteTimingModel {
 public:
  explicit MoteTimingModel(MoteTimingConfig config = {});

  const MoteTimingConfig& config() const { return config_; }

  /// One honest RTT sample, in CPU cycles: hardware delays + 2D/c.
  double sample_rtt_cycles(double distance_ft, util::Rng& rng) const;

  /// Smallest possible honest RTT (zero jitter, zero distance).
  double min_possible_cycles() const;

  /// Largest possible honest RTT at `max_distance_ft`.
  double max_possible_cycles(double max_distance_ft) const;

 private:
  MoteTimingConfig config_;
};

/// One request/reply exchange with the paper's Figure-3 timestamps:
///   t1  sender finishes putting the request's first byte on the air
///   t2  receiver finishes taking that byte off the air
///   t3  receiver finishes putting the reply's first byte on the air
///   t4  sender finishes taking that byte off the air
/// RTT = (t4 - t1) - (t3 - t2). The receiver-side gap (t3 - t2) contains
/// all MAC backoff and processing delay, so subtracting it leaves only the
/// four hardware byte-shift delays plus 2D/c — the paper's key claim, and
/// the reason the no-attack distribution is narrow.
struct RttExchange {
  double t1_cycles = 0.0;
  double t2_cycles = 0.0;
  double t3_cycles = 0.0;
  double t4_cycles = 0.0;

  double rtt_cycles() const {
    return (t4_cycles - t1_cycles) - (t3_cycles - t2_cycles);
  }
};

/// Simulates a full Figure-3 exchange, including arbitrary MAC/processing
/// delay at the receiver (`mac_delay_cycles`) which must cancel out of the
/// computed RTT.
RttExchange sample_rtt_exchange(const MoteTimingModel& model,
                                double distance_ft, double mac_delay_cycles,
                                util::Rng& rng);

/// The no-attack RTT experiment: `samples` request/reply exchanges between
/// neighbour motes at uniformly random in-range distances.
struct RttCalibration {
  util::EmpiricalCdf cdf;
  double x_min_cycles = 0.0;  // max x with F(x) = 0
  double x_max_cycles = 0.0;  // min x with F(x) = 1
};

RttCalibration calibrate_rtt(const MoteTimingModel& model,
                             std::size_t samples, double max_distance_ft,
                             util::Rng& rng);

}  // namespace sld::ranging
