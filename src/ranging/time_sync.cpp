#include "ranging/time_sync.hpp"

#include <stdexcept>

namespace sld::ranging {

TimeSyncResult synchronize(const MoteTimingModel& model, double distance_ft,
                           double true_offset_cycles,
                           double attacker_delay_cycles, util::Rng& rng) {
  if (distance_ft < 0.0)
    throw std::invalid_argument("synchronize: negative distance");
  if (attacker_delay_cycles < 0.0)
    throw std::invalid_argument("synchronize: negative attacker delay");

  const auto& cfg = model.config();
  const auto edge = [&]() {
    return cfg.edge_base_cycles + rng.uniform(0.0, cfg.edge_jitter_cycles);
  };
  const double flight = sim::propagation_cycles(distance_ft);

  // Sender clock = reference; receiver clock = reference + offset. The
  // pulse-delay attacker jams the *reply in flight* and replays it late:
  // an asymmetric path delay, which is exactly what the symmetric
  // exchange cannot cancel (unlike the receiver's own turnaround time,
  // which drops out of the computation).
  const double t1 = 1000.0;                      // sender clock
  const double arrive = t1 + edge() + flight + edge();  // reference time
  const double t2 = arrive + true_offset_cycles;        // receiver clock
  const double t3 = t2 + 500.0;                         // receiver clock
  const double depart = t3 - true_offset_cycles;        // reference time
  const double t4 = depart + edge() + flight + attacker_delay_cycles +
                    edge();                             // sender clock

  TimeSyncResult r;
  r.offset_cycles = ((t2 - t1) - (t4 - t3)) / 2.0;
  r.delay_cycles = ((t2 - t1) + (t4 - t3)) / 2.0;
  return r;
}

double max_sync_error_cycles(const MoteTimingModel& model) {
  // offset error = (forward delays - backward delays) / 2; each direction
  // is two edges, so the asymmetry is at most 2 * jitter / ... precisely:
  // |(e1 + e2) - (e3 + e4)| / 2 <= jitter (each pair differs by at most
  // 2 * jitter, halved).
  return model.config().edge_jitter_cycles;
}

}  // namespace sld::ranging
