#include "ranging/time_sync.hpp"

#include <stdexcept>

namespace sld::ranging {

TimeSyncResult synchronize(const MoteTimingModel& model, double distance_ft,
                           double true_offset_cycles,
                           double attacker_delay_cycles, util::Rng& rng) {
  return synchronize_drifting(model, distance_ft, true_offset_cycles,
                              /*drift_ppm=*/0.0, attacker_delay_cycles, rng);
}

TimeSyncResult synchronize_drifting(const MoteTimingModel& model,
                                    double distance_ft,
                                    double true_offset_cycles,
                                    double drift_ppm,
                                    double attacker_delay_cycles,
                                    util::Rng& rng) {
  if (distance_ft < 0.0)
    throw std::invalid_argument("synchronize: negative distance");
  if (attacker_delay_cycles < 0.0)
    throw std::invalid_argument("synchronize: negative attacker delay");
  const double rho = drift_ppm * 1e-6;
  if (rho <= -1.0)
    throw std::invalid_argument("synchronize: drift stops the clock");

  const auto& cfg = model.config();
  const auto edge = [&]() {
    return cfg.edge_base_cycles + rng.uniform(0.0, cfg.edge_jitter_cycles);
  };
  const double flight = sim::propagation_cycles(distance_ft);

  // Sender clock = reference; the receiver clock reads
  // offset + (T - t1) * (1 + rho) ahead of reference time T — the offset
  // is what it was when the exchange began, and drift accrues over the
  // exchange itself. The pulse-delay attacker jams the *reply in flight*
  // and replays it late: an asymmetric path delay, which is exactly what
  // the symmetric exchange cannot cancel (unlike the receiver's own
  // turnaround time, which drops out — exactly at rho = 0, approximately
  // under drift).
  const double t1 = 1000.0;                             // sender clock
  const double arrive = t1 + edge() + flight + edge();  // reference time
  const double t2 = arrive + true_offset_cycles +
                    rho * (arrive - t1);                // receiver clock
  const double t3 = t2 + kSyncTurnaroundCycles;         // receiver clock
  // The turnaround was measured by the skewed crystal: its reference-time
  // duration is turnaround / (1 + rho).
  const double depart =
      arrive + kSyncTurnaroundCycles / (1.0 + rho);     // reference time
  const double t4 = depart + edge() + flight + attacker_delay_cycles +
                    edge();                             // sender clock

  TimeSyncResult r;
  r.offset_cycles = ((t2 - t1) - (t4 - t3)) / 2.0;
  r.delay_cycles = ((t2 - t1) + (t4 - t3)) / 2.0;
  return r;
}

double max_sync_error_cycles(const MoteTimingModel& model) {
  // offset error = (forward delays - backward delays) / 2; each direction
  // is two edges, so the asymmetry is at most 2 * jitter / ... precisely:
  // |(e1 + e2) - (e3 + e4)| / 2 <= jitter (each pair differs by at most
  // 2 * jitter, halved).
  return model.config().edge_jitter_cycles;
}

double max_sync_error_cycles(const MoteTimingModel& model,
                             double max_drift_ppm, double max_distance_ft) {
  if (max_drift_ppm < 0.0)
    throw std::invalid_argument("max_sync_error_cycles: negative drift bound");
  if (max_distance_ft < 0.0)
    throw std::invalid_argument("max_sync_error_cycles: negative distance");
  const auto& cfg = model.config();
  const double rho = max_drift_ppm * 1e-6;
  if (rho >= 1.0)
    throw std::invalid_argument("max_sync_error_cycles: drift bound >= 1");
  // Drift adds rho * (e1 + flight + e2) (the forward path observed through
  // the skewed clock) and turnaround * (1 - 1 / (1 + rho)) / 2 (the skewed
  // turnaround's residual) to the asymmetry bound. |1 - 1 / (1 + rho)| <=
  // |rho| / (1 - |rho|) for either sign, so one safety factor covers both
  // terms.
  const double forward =
      2.0 * (cfg.edge_base_cycles + cfg.edge_jitter_cycles) +
      sim::propagation_cycles(max_distance_ft);
  return cfg.edge_jitter_cycles +
         rho / (1.0 - rho) * (forward + kSyncTurnaroundCycles / 2.0);
}

}  // namespace sld::ranging
