#include "ranging/tdoa.hpp"

#include <algorithm>
#include <stdexcept>

namespace sld::ranging {

TdoaRangingModel::TdoaRangingModel(TdoaConfig config) : config_(config) {
  if (config_.speed_of_sound_ft_per_s <= 0.0)
    throw std::invalid_argument("TdoaRangingModel: bad speed of sound");
  if (config_.max_timing_error_s < 0.0)
    throw std::invalid_argument("TdoaRangingModel: negative timing bound");
}

double TdoaRangingModel::max_error_ft() const {
  return config_.max_timing_error_s * config_.speed_of_sound_ft_per_s;
}

double TdoaRangingModel::measure(double true_distance_ft,
                                 util::Rng& rng) const {
  if (true_distance_ft < 0.0)
    throw std::invalid_argument("TdoaRangingModel::measure: negative distance");
  const double err_s =
      rng.uniform(-config_.max_timing_error_s, config_.max_timing_error_s);
  return std::max(0.0, true_distance_ft +
                           err_s * config_.speed_of_sound_ft_per_s);
}

double TdoaRangingModel::measure_with_injected_pulse(
    double true_distance_ft, double attacker_distance_ft,
    double injection_lead_s, util::Rng& rng) const {
  if (attacker_distance_ft < 0.0)
    throw std::invalid_argument("TdoaRangingModel: negative attacker distance");
  if (injection_lead_s < 0.0)
    throw std::invalid_argument("TdoaRangingModel: negative injection lead");
  // Arrival times of the two ultrasound pulses, relative to the RF packet
  // (whose propagation is negligible at these scales).
  const double genuine_s =
      true_distance_ft / config_.speed_of_sound_ft_per_s;
  const double injected_s =
      attacker_distance_ft / config_.speed_of_sound_ft_per_s -
      injection_lead_s;
  const double first_s = std::min(genuine_s, std::max(0.0, injected_s));
  const double err_s =
      rng.uniform(-config_.max_timing_error_s, config_.max_timing_error_s);
  return std::max(0.0,
                  (first_s + err_s) * config_.speed_of_sound_ft_per_s);
}

}  // namespace sld::ranging
