// The Echo protocol (Sastry, Shankar & Wagner, WiSe'03 — the paper's
// related-work reference [26]: "can verify the relative distance between a
// verifying node and a beacon node", but "cannot ensure correct location
// discovery when beacon nodes are compromised"). A verifier accepts the
// claim "I am inside region R" iff a packet sent by RF and echoed back by
// ultrasound returns within d/c_rf + d/c_sound for the farthest in-region
// distance d: sound's slowness makes the prover unable to pretend to be
// closer than it is (it cannot make sound travel faster), while nothing
// stops it from pretending to be *farther* — the asymmetry this module's
// tests pin down.
#pragma once

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::ranging {

struct EchoConfig {
  /// Speed of sound, feet per second (~1125 ft/s in air).
  double speed_of_sound_ft_per_s = 1125.0;
  /// Processing allowance at the prover, seconds.
  double processing_allowance_s = 1e-6;
};

/// An in-region claim to verify.
struct EchoClaim {
  /// Verifier's own position and the region it vouches for (a disk).
  util::Vec2 verifier_position;
  double region_radius_ft = 0.0;
};

class EchoVerifier {
 public:
  explicit EchoVerifier(EchoConfig config = {});

  const EchoConfig& config() const { return config_; }

  /// Threshold round-trip time for a prover anywhere inside the region.
  double max_round_trip_s(const EchoClaim& claim) const;

  /// Honest round-trip time for a prover at `true_distance_ft` that echoes
  /// after `prover_delay_s` of (adversarially chosen) processing time.
  double round_trip_s(double true_distance_ft, double prover_delay_s) const;

  /// Verifies the claim for a prover at `true_distance_ft` replying after
  /// `prover_delay_s`. A delay of 0 is the fastest physically possible
  /// echo; positive delays only make the prover look farther.
  bool accepts(const EchoClaim& claim, double true_distance_ft,
               double prover_delay_s = 0.0) const;

 private:
  EchoConfig config_;
};

}  // namespace sld::ranging
