#include "ranging/echo.hpp"

#include <stdexcept>

#include "sim/time.hpp"

namespace sld::ranging {

EchoVerifier::EchoVerifier(EchoConfig config) : config_(config) {
  if (config_.speed_of_sound_ft_per_s <= 0.0)
    throw std::invalid_argument("EchoVerifier: bad speed of sound");
  if (config_.processing_allowance_s < 0.0)
    throw std::invalid_argument("EchoVerifier: negative allowance");
}

double EchoVerifier::max_round_trip_s(const EchoClaim& claim) const {
  if (claim.region_radius_ft <= 0.0)
    throw std::invalid_argument("EchoVerifier: empty region");
  return claim.region_radius_ft / sim::kSpeedOfLightFtPerSec +
         claim.region_radius_ft / config_.speed_of_sound_ft_per_s +
         config_.processing_allowance_s;
}

double EchoVerifier::round_trip_s(double true_distance_ft,
                                  double prover_delay_s) const {
  if (true_distance_ft < 0.0)
    throw std::invalid_argument("EchoVerifier: negative distance");
  if (prover_delay_s < 0.0)
    throw std::invalid_argument(
        "EchoVerifier: the prover cannot reply before receiving");
  return true_distance_ft / sim::kSpeedOfLightFtPerSec + prover_delay_s +
         true_distance_ft / config_.speed_of_sound_ft_per_s;
}

bool EchoVerifier::accepts(const EchoClaim& claim, double true_distance_ft,
                           double prover_delay_s) const {
  return round_trip_s(true_distance_ft, prover_delay_s) <=
         max_round_trip_s(claim);
}

}  // namespace sld::ranging
